// Integration tests for the harness: task bundles, the full submission
// flow, the submission checker, the audit, the result store, and the app.
#include <gtest/gtest.h>

#include "harness/app.h"
#include "harness/audit.h"
#include "harness/checker.h"
#include "harness/report.h"
#include "backends/vendor_policy.h"
#include "core/dataset_qsl.h"
#include "harness/package.h"
#include "harness/result_store.h"

namespace mlpm::harness {
namespace {

// Bundles are expensive (teacher labelling); share them across all tests in
// this binary.
SuiteBundles& Bundles() {
  static SuiteBundles bundles;
  return bundles;
}

RunOptions FastOptions() {
  RunOptions o;
  o.performance_settings.min_query_count = 64;
  o.performance_settings.min_duration = loadgen::Seconds{0.5};
  o.performance_settings.offline_sample_count = 2048;
  o.cooldown_s = 30.0;
  return o;
}

const SubmissionResult& CachedD1100Run() {
  static const SubmissionResult r = RunSubmission(
      soc::Dimensity1100(), models::SuiteVersion::kV1_0, Bundles(),
      FastOptions());
  return r;
}

TEST(TaskBundle, CreatesAllFourTasks) {
  for (const auto& e : models::SuiteFor(models::SuiteVersion::kV1_0)) {
    const TaskBundle& b = Bundles().Get(e, models::SuiteVersion::kV1_0);
    EXPECT_GT(b.dataset().size(), 0u);
    EXPECT_GT(b.mini_graph().ParameterCount(), 0);
  }
}

TEST(TaskBundle, Fp32ScoreCachedAndStable) {
  const auto e = models::SuiteFor(models::SuiteVersion::kV1_0)[0];
  const TaskBundle& b = Bundles().Get(e, models::SuiteVersion::kV1_0);
  const double a = b.Fp32Score();
  EXPECT_DOUBLE_EQ(a, b.Fp32Score());
  EXPECT_GT(a, 0.5);
}

TEST(TaskBundle, Int8PreparationUsesApprovedCalibration) {
  const auto e = models::SuiteFor(models::SuiteVersion::kV1_0)[0];
  const TaskBundle& b = Bundles().Get(e, models::SuiteVersion::kV1_0);
  const TaskBundle::PreparedModel p = b.Prepare(infer::NumericsMode::kInt8);
  EXPECT_EQ(p.calibration_indices.size(), kCalibrationSetSize);
  EXPECT_NE(p.executor, nullptr);
}

TEST(TaskBundle, Fp16PreparationHasNoCalibration) {
  const auto e = models::SuiteFor(models::SuiteVersion::kV1_0)[0];
  const TaskBundle& b = Bundles().Get(e, models::SuiteVersion::kV1_0);
  EXPECT_TRUE(b.Prepare(infer::NumericsMode::kFp16)
                  .calibration_indices.empty());
}

TEST(RunSubmission, ProducesAllTasksWithResults) {
  const SubmissionResult& r = CachedD1100Run();
  ASSERT_EQ(r.tasks.size(), 4u);
  for (const TaskRunResult& t : r.tasks) {
    EXPECT_GT(t.accuracy, 0.0);
    EXPECT_GT(t.ratio_to_fp32, 0.8);
    EXPECT_TRUE(t.quality_passed);
    ASSERT_TRUE(t.single_stream.has_value());
    EXPECT_GT(t.single_stream->percentile_latency_s, 0.0);
    EXPECT_GT(t.energy_per_inference_j, 0.0);
  }
}

TEST(RunSubmission, QualityPassesAcrossAllEightChipsets) {
  // The headline integration property: every vendor submission in both
  // rounds clears its quality target and validates.
  const SubmissionResult& r = CachedD1100Run();
  for (const TaskRunResult& t : r.tasks)
    EXPECT_TRUE(t.quality_passed) << t.entry.id;
}

TEST(RunSubmission, PerformanceOnlySkipsAccuracy) {
  RunOptions o = FastOptions();
  o.run_accuracy = false;
  const SubmissionResult r = RunSubmission(
      soc::Snapdragon888(), models::SuiteVersion::kV1_0, Bundles(), o);
  for (const TaskRunResult& t : r.tasks) {
    EXPECT_EQ(t.accuracy, 0.0);
    EXPECT_TRUE(t.single_stream.has_value());
  }
}

TEST(RunSubmission, EndToEndModeIsSlower) {
  RunOptions base = FastOptions();
  base.run_accuracy = false;
  base.run_offline = false;
  RunOptions e2e = base;
  e2e.end_to_end = true;
  const SubmissionResult a = RunSubmission(
      soc::Dimensity1100(), models::SuiteVersion::kV1_0, Bundles(), base);
  const SubmissionResult b = RunSubmission(
      soc::Dimensity1100(), models::SuiteVersion::kV1_0, Bundles(), e2e);
  for (std::size_t i = 0; i < a.tasks.size(); ++i)
    EXPECT_GT(b.tasks[i].single_stream->percentile_latency_s,
              a.tasks[i].single_stream->percentile_latency_s);
}

TEST(RunSubmission, OfflineOnlyWhereSubmitted) {
  RunOptions o = FastOptions();
  o.run_accuracy = false;
  const SubmissionResult mediatek = RunSubmission(
      soc::Dimensity1100(), models::SuiteVersion::kV1_0, Bundles(), o);
  EXPECT_FALSE(mediatek.tasks[0].offline.has_value());
  const SubmissionResult samsung = RunSubmission(
      soc::Exynos2100(), models::SuiteVersion::kV1_0, Bundles(), o);
  ASSERT_TRUE(samsung.tasks[0].offline.has_value());
  EXPECT_EQ(samsung.tasks[0].offline->sample_count, 2048u);
}

// ---- checker ----

TEST(Checker, AcceptsValidSubmission) {
  const CheckReport r =
      CheckSubmission(CachedD1100Run(), FastOptions().performance_settings);
  EXPECT_TRUE(r.valid) << FormatCheckReport(r);
}

TEST(Checker, RejectsBelowQualityTarget) {
  SubmissionResult bad = CachedD1100Run();
  bad.tasks[0].quality_passed = false;
  bad.tasks[0].ratio_to_fp32 = 0.5;
  const CheckReport r =
      CheckSubmission(bad, FastOptions().performance_settings);
  EXPECT_FALSE(r.valid);
}

TEST(Checker, RejectsWrongSeed) {
  const SubmissionResult& good = CachedD1100Run();
  loadgen::TestSettings expected = FastOptions().performance_settings;
  expected.seed = 999;  // checker expects this seed; the log has the default
  const CheckReport r = CheckSubmission(good, expected);
  EXPECT_FALSE(r.valid);
}

TEST(Checker, RejectsEditedLog) {
  const SubmissionResult& good = CachedD1100Run();
  std::string log = good.tasks[0].single_stream->log.Serialize();
  // "Improve" the reported percentile: the checker recomputes from events.
  const std::string key = "field result_percentile_latency_s ";
  const auto pos = log.find(key);
  ASSERT_NE(pos, std::string::npos);
  const auto eol = log.find('\n', pos);
  log.replace(pos, eol - pos, key + "0.000001");
  loadgen::TestSettings expected = FastOptions().performance_settings;
  expected.scenario = loadgen::TestScenario::kSingleStream;
  expected.mode = loadgen::TestMode::kPerformanceOnly;
  const CheckReport r = CheckPerformanceLog(log, expected);
  EXPECT_FALSE(r.valid);
}

TEST(Checker, RejectsTruncatedLog) {
  const SubmissionResult& good = CachedD1100Run();
  std::string log = good.tasks[0].single_stream->log.Serialize();
  log.resize(log.size() / 2);
  log.resize(log.find_last_of('\n'));  // cut at a line boundary
  loadgen::TestSettings expected = FastOptions().performance_settings;
  const CheckReport r = CheckPerformanceLog(log, expected);
  EXPECT_FALSE(r.valid);
}

TEST(Checker, RejectsUnapprovedCalibration) {
  SubmissionResult bad = CachedD1100Run();
  bad.tasks[0].calibration_indices.push_back(999'999);
  const CheckReport r =
      CheckSubmission(bad, FastOptions().performance_settings);
  EXPECT_FALSE(r.valid);
}

TEST(Checker, RejectsTooShortRun) {
  const SubmissionResult& good = CachedD1100Run();
  loadgen::TestSettings expected = FastOptions().performance_settings;
  expected.min_query_count = 1'000'000;  // impossible floor
  const CheckReport r = CheckSubmission(good, expected);
  EXPECT_FALSE(r.valid);
}


TEST(Checker, ValidatesServerLogs) {
  loadgen::VirtualClock clock;
  const soc::ChipsetDesc chip = soc::Dimensity1100();
  const graph::Graph model = models::BuildReferenceGraph(
      models::SuiteFor(models::SuiteVersion::kV1_0)[0],
      models::SuiteVersion::kV1_0, models::ModelScale::kFull);
  const backends::SubmissionConfig sub = backends::GetSubmission(
      chip, models::TaskType::kImageClassification,
      models::SuiteVersion::kV1_0);
  backends::SimulatedBackend sut("srv", soc::SocSimulator(chip),
                                 backends::CompileSubmission(chip, sub,
                                                             model),
                                 {}, clock);
  const TaskBundle& bundle = Bundles().Get(
      models::SuiteFor(models::SuiteVersion::kV1_0)[0],
      models::SuiteVersion::kV1_0);
  loadgen::DatasetQsl qsl(bundle.dataset());
  loadgen::TestSettings s;
  s.scenario = loadgen::TestScenario::kServer;
  s.server_target_qps = 100.0;
  s.server_query_count = 256;
  s.server_latency_bound = loadgen::Seconds{0.02};
  const loadgen::TestResult r = loadgen::RunTest(sut, qsl, s, clock);
  EXPECT_TRUE(r.latency_bound_met);
  const CheckReport ok = CheckPerformanceLog(r.log.Serialize(), s);
  EXPECT_TRUE(ok.valid) << FormatCheckReport(ok);
  // An impossible bound must be flagged from the raw events.
  loadgen::TestSettings strict = s;
  strict.server_latency_bound = loadgen::Seconds{1e-6};
  EXPECT_FALSE(CheckPerformanceLog(r.log.Serialize(), strict).valid);
}


TEST(Checker, AccountsForShedQueriesInServerLogs) {
  // A server run with admission control sheds part of a 2x overload; the
  // checker must accept the log when the declared shed budget covers it
  // (completions + shed + rejected must tally to the offered count) and
  // flag it when the budget is tighter than what the run shed.
  class FixedLatencySut final : public loadgen::SystemUnderTest {
   public:
    explicit FixedLatencySut(loadgen::VirtualClock& clock) : clock_(clock) {}
    [[nodiscard]] std::string_view name() const override { return "fixed"; }
    void IssueQuery(std::span<const loadgen::QuerySample> samples,
                    loadgen::ResponseSink& sink) override {
      for (const loadgen::QuerySample& s : samples) {
        clock_.Advance(loadgen::Seconds{0.001});
        sink.Complete(loadgen::QuerySampleResponse{s.id, {}});
      }
    }

   private:
    loadgen::VirtualClock& clock_;
  };
  loadgen::VirtualClock clock;
  FixedLatencySut sut(clock);
  const TaskBundle& bundle = Bundles().Get(
      models::SuiteFor(models::SuiteVersion::kV1_0)[0],
      models::SuiteVersion::kV1_0);
  loadgen::DatasetQsl qsl(bundle.dataset());
  loadgen::TestSettings s;
  s.scenario = loadgen::TestScenario::kServer;
  s.server_target_qps = 2000.0;  // 2x the 1 ms service capacity
  s.server_query_count = 512;
  s.server_latency_bound = loadgen::Seconds{0.01};
  s.server_max_queue_depth = 8;
  s.server_max_shed_fraction = 0.6;
  const loadgen::TestResult r = loadgen::RunTest(sut, qsl, s, clock);
  ASSERT_GT(r.shed_count, 0u);
  EXPECT_TRUE(r.shed_bound_met);
  const CheckReport ok = CheckPerformanceLog(r.log.Serialize(), s);
  EXPECT_TRUE(ok.valid) << FormatCheckReport(ok);
  // The same log fails a submission that only declared a 1% shed budget.
  loadgen::TestSettings strict = s;
  strict.server_max_shed_fraction = 0.01;
  EXPECT_FALSE(CheckPerformanceLog(r.log.Serialize(), strict).valid);
}

TEST(QualityAnchors, EveryNumericsModeClearsItsTable1Target) {
  // Covers all (task, numerics) combinations any vendor submits: vision
  // INT8 on phones and laptops, NLP FP16 on phones, NLP INT8 on laptops.
  // Samsung v0.7 + Intel v1.0 together span that set.
  const SubmissionResult samsung = RunSubmission(
      soc::Exynos990(), models::SuiteVersion::kV0_7, Bundles(),
      FastOptions());
  for (const TaskRunResult& t : samsung.tasks)
    EXPECT_TRUE(t.quality_passed)
        << "Exynos990 " << t.entry.id << " ratio " << t.ratio_to_fp32;
  RunOptions acc_only = FastOptions();
  acc_only.run_performance = false;
  const SubmissionResult intel = RunSubmission(
      soc::CoreI7_11375H(), models::SuiteVersion::kV1_0, Bundles(),
      acc_only);
  for (const TaskRunResult& t : intel.tasks)
    EXPECT_TRUE(t.quality_passed)
        << "i7 " << t.entry.id << " ratio " << t.ratio_to_fp32;
}

TEST(Checker, RejectsScenarioMismatch) {
  const SubmissionResult& good = CachedD1100Run();
  loadgen::TestSettings expected = FastOptions().performance_settings;
  expected.scenario = loadgen::TestScenario::kOffline;  // log says SS
  expected.mode = loadgen::TestMode::kPerformanceOnly;
  const CheckReport r = CheckPerformanceLog(
      good.tasks[0].single_stream->log.Serialize(), expected);
  EXPECT_FALSE(r.valid);
}

TEST(Checker, RejectsPartialAccuracyCoverage) {
  SubmissionResult bad = CachedD1100Run();
  bad.tasks[0].accuracy_sample_count = bad.tasks[0].dataset_size / 2;
  const CheckReport r =
      CheckSubmission(bad, FastOptions().performance_settings);
  EXPECT_FALSE(r.valid);
}

// ---- audit ----

TEST(Audit, ReproducibleSubmissionAccepted) {
  const AuditReport r = AuditSubmission(
      soc::Dimensity1100(), CachedD1100Run(), Bundles(), FastOptions());
  EXPECT_TRUE(r.accepted) << FormatAuditReport(r);
  EXPECT_FALSE(r.findings.empty());
  for (const AuditFinding& f : r.findings)
    EXPECT_LT(f.relative_delta, 0.05);
}

TEST(Audit, InflatedClaimRejected) {
  SubmissionResult inflated = CachedD1100Run();
  inflated.tasks[0].single_stream->percentile_latency_s /= 2.0;  // claim 2x
  const AuditReport r = AuditSubmission(
      soc::Dimensity1100(), inflated, Bundles(), FastOptions());
  EXPECT_FALSE(r.accepted);
}

TEST(Audit, WrongAccuracyClaimRejected) {
  SubmissionResult inflated = CachedD1100Run();
  inflated.tasks[0].accuracy = 1.0;
  const AuditReport r = AuditSubmission(
      soc::Dimensity1100(), inflated, Bundles(), FastOptions());
  EXPECT_FALSE(r.accepted);
}


// ---- submission package ----

TEST(Package, ValidPackagePassesAudit) {
  const harness::SubmissionPackage pkg =
      PackageSubmission(CachedD1100Run(), Bundles());
  EXPECT_TRUE(pkg.files.contains("MANIFEST"));
  EXPECT_TRUE(pkg.files.contains("results.csv"));
  EXPECT_TRUE(pkg.files.contains("models/image_classification.graph"));
  EXPECT_TRUE(
      pkg.files.contains("logs/image_classification.single_stream.log"));
  const CheckReport r =
      AuditPackage(pkg, Bundles(), FastOptions().performance_settings);
  EXPECT_TRUE(r.valid) << FormatCheckReport(r);
}

TEST(Package, TamperedModelFileRejected) {
  harness::SubmissionPackage pkg =
      PackageSubmission(CachedD1100Run(), Bundles());
  // Swap the classification model for the (differently-shaped) detection
  // model — the paper's pruning/substitution scenario.
  pkg.files["models/image_classification.graph"] =
      pkg.files["models/object_detection.graph"];
  // Keep MANIFEST consistent so only the fingerprint check fires... the
  // sizes differ, so both checks fire; either must reject.
  const CheckReport r =
      AuditPackage(pkg, Bundles(), FastOptions().performance_settings);
  EXPECT_FALSE(r.valid);
}

TEST(Package, EditedLogRejectedBySizeOrContent) {
  harness::SubmissionPackage pkg =
      PackageSubmission(CachedD1100Run(), Bundles());
  auto& log = pkg.files["logs/image_classification.single_stream.log"];
  const auto pos = log.find("complete ");
  ASSERT_NE(pos, std::string::npos);
  log.insert(pos, "complete 99999 0.0\n");  // forged completion
  const CheckReport r =
      AuditPackage(pkg, Bundles(), FastOptions().performance_settings);
  EXPECT_FALSE(r.valid);
}

TEST(Package, MissingLogRejected) {
  harness::SubmissionPackage pkg =
      PackageSubmission(CachedD1100Run(), Bundles());
  pkg.files.erase("logs/question_answering.single_stream.log");
  const CheckReport r =
      AuditPackage(pkg, Bundles(), FastOptions().performance_settings);
  EXPECT_FALSE(r.valid);
}

TEST(Package, GarbageModelFileRejectedGracefully) {
  harness::SubmissionPackage pkg =
      PackageSubmission(CachedD1100Run(), Bundles());
  pkg.files["models/image_classification.graph"] = "not a graph at all";
  const CheckReport r =
      AuditPackage(pkg, Bundles(), FastOptions().performance_settings);
  EXPECT_FALSE(r.valid);
}

// ---- result store ----

TEST(ResultStore, LatestPerDeviceKeepsNewest) {
  ResultStore store;
  SubmissionResult a;
  a.chipset_name = "X";
  a.version = models::SuiteVersion::kV1_0;
  store.Add("2021-01-01", a);
  store.Add("2021-06-01", a);
  store.Add("2021-03-01", a);
  const auto latest = store.LatestPerDevice();
  ASSERT_EQ(latest.size(), 1u);
  EXPECT_EQ(latest[0].date_iso, "2021-06-01");
  EXPECT_EQ(store.HistoryFor("X").size(), 3u);
}

TEST(ResultStore, DistinguishesVersions) {
  ResultStore store;
  SubmissionResult a;
  a.chipset_name = "X";
  a.version = models::SuiteVersion::kV0_7;
  store.Add("2020-10-01", a);
  a.version = models::SuiteVersion::kV1_0;
  store.Add("2021-04-01", a);
  EXPECT_EQ(store.LatestPerDevice().size(), 2u);
}

TEST(ResultStore, HistorySortedByDate) {
  ResultStore store;
  SubmissionResult a;
  a.chipset_name = "X";
  store.Add("2021-06-01", a);
  store.Add("2021-01-01", a);
  const auto h = store.HistoryFor("X");
  ASSERT_EQ(h.size(), 2u);
  EXPECT_LT(h[0].date_iso, h[1].date_iso);
}

TEST(ResultStore, RejectsBadDate) {
  ResultStore store;
  EXPECT_THROW(store.Add("June 1st", SubmissionResult{}), CheckError);
}

// ---- report / app ----

TEST(Report, SubmissionTableContainsConfiguration) {
  const std::string s = FormatSubmission(CachedD1100Run());
  EXPECT_NE(s.find("Dimensity 1100"), std::string::npos);
  EXPECT_NE(s.find("Neuron Delegate"), std::string::npos);
  EXPECT_NE(s.find("FP16"), std::string::npos);  // transparency: numerics
  EXPECT_NE(s.find("PASS"), std::string::npos);
}

TEST(App, RunsAndValidates) {
  const AppRunOutput out = RunMobileApp(
      soc::Exynos2100(), models::SuiteVersion::kV1_0, Bundles(),
      FastOptions());
  EXPECT_TRUE(out.submission_valid) << out.checker_text;
  EXPECT_NE(out.report_text.find("Exynos 2100"), std::string::npos);
  EXPECT_EQ(out.result.tasks.size(), 4u);
}

}  // namespace
}  // namespace mlpm::harness
