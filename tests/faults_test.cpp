// Tests for the fault-injection framework and the fault-tolerant run
// pipeline: seeded determinism, recovery policy (retry / CPU fallback /
// emergency cooldown), the LoadGen watchdog, and the degraded-run states
// the harness reports.
#include <gtest/gtest.h>

#include "backends/fault_tolerant_backend.h"
#include "backends/vendor_policy.h"
#include "core/loadgen.h"
#include "harness/run_session.h"
#include "models/mobilenet_edgetpu.h"
#include "models/zoo.h"
#include "soc/faults.h"
#include "soc/simulator.h"

namespace mlpm {
namespace {

soc::CompiledModel AcceleratedPlan(const soc::ChipsetDesc& chip,
                                   const graph::Graph& model) {
  const backends::SubmissionConfig sub = backends::GetSubmission(
      chip, models::TaskType::kImageClassification,
      models::SuiteVersion::kV1_0);
  return backends::CompileSubmission(chip, sub, model);
}

struct CountingSink final : loadgen::ResponseSink {
  void Complete(loadgen::QuerySampleResponse r) override {
    ids.push_back(r.id);
  }
  std::vector<std::uint64_t> ids;
};

TEST(FaultInjector, RejectsOutOfRangeProbability) {
  soc::FaultPlan bad;
  bad.DriverCrashes(1.5);
  EXPECT_THROW(soc::FaultInjector{bad}, CheckError);
  soc::FaultPlan negative;
  negative.TransientStalls(-0.1);
  EXPECT_THROW(soc::FaultInjector{negative}, CheckError);
}

TEST(FaultInjector, SameSeedSameSchedule) {
  const soc::FaultPlan plan = soc::FaultPlan{}
                                  .TransientStalls(0.1)
                                  .DriverCrashes(0.05)
                                  .SampleDrops(0.02);
  const auto schedule = [&plan](std::uint64_t seed) {
    soc::FaultPlan p = plan;
    p.seed = seed;
    soc::FaultInjector inj(p);
    std::string s;
    for (int i = 0; i < 500; ++i) {
      if (const soc::FaultSpec* spec = inj.NextAttempt()) {
        inj.RecordFault(*spec, static_cast<double>(i), 0.001);
        s += ToString(spec->kind);
        s += ';';
      }
    }
    return s + inj.EventLogText();
  };
  EXPECT_EQ(schedule(7), schedule(7));    // byte-identical repro
  EXPECT_NE(schedule(7), schedule(8));    // and actually seed-dependent
}

TEST(FaultInjector, DrawsOncePerSpecPerAttempt) {
  // The schedule of a given spec must not shift when another spec is
  // added in front of it at probability zero.
  soc::FaultPlan lone;
  lone.DriverCrashes(0.1);
  soc::FaultPlan padded;
  padded.TransientStalls(0.0);  // never fires, still draws
  padded.DriverCrashes(0.1);
  soc::FaultInjector a(lone), b(padded);
  int fires_a = 0, fires_b = 0;
  for (int i = 0; i < 300; ++i) {
    if (a.NextAttempt() != nullptr) ++fires_a;
    if (b.NextAttempt() != nullptr) ++fires_b;
  }
  EXPECT_GT(fires_a, 0);
  // The padded plan consumes two draws per attempt, so its crash schedule
  // legitimately differs from the lone plan's — what must hold is that
  // probability-zero specs never fire and both plans fire *some* crashes.
  EXPECT_GT(fires_b, 0);
}

TEST(SocSimulator, CpuOnlyPlansAreImmuneToFaults) {
  const soc::ChipsetDesc chip = soc::Dimensity1100();
  const graph::Graph model =
      models::BuildMobileNetEdgeTpu(models::ModelScale::kFull);
  const soc::CompiledModel cpu_plan =
      backends::CompileCpuFallback(chip, model, DataType::kInt8);

  soc::SocSimulator sim(chip);
  EXPECT_TRUE(sim.IsCpuOnly(cpu_plan));
  EXPECT_FALSE(sim.IsCpuOnly(AcceleratedPlan(chip, model)));

  sim.InjectFaults(soc::FaultPlan{}.DriverCrashes(1.0));
  for (int i = 0; i < 10; ++i) {
    const soc::InferenceResult r = sim.RunInference(cpu_plan);
    EXPECT_EQ(r.outcome, soc::InferenceOutcome::kOk);
    EXPECT_TRUE(r.completed);
  }
  EXPECT_EQ(sim.fault_count(), 0u);
}

TEST(SocSimulator, CertainCrashFailsEveryAcceleratedInference) {
  const soc::ChipsetDesc chip = soc::Dimensity1100();
  const graph::Graph model =
      models::BuildMobileNetEdgeTpu(models::ModelScale::kFull);
  const soc::CompiledModel plan = AcceleratedPlan(chip, model);

  soc::SocSimulator faulty(chip), clean(chip);
  faulty.InjectFaults(soc::FaultPlan{}.DriverCrashes(1.0, 0.1));
  const soc::InferenceResult bad = faulty.RunInference(plan);
  const soc::InferenceResult good = clean.RunInference(plan);
  EXPECT_EQ(bad.outcome, soc::InferenceOutcome::kDriverCrash);
  EXPECT_FALSE(bad.completed);
  // The crash burns only a fraction of the nominal inference.
  EXPECT_LT(bad.latency_s, good.latency_s);
  EXPECT_GT(bad.latency_s, 0.0);
  EXPECT_EQ(faulty.fault_count(), 1u);
}

TEST(FaultTolerantBackend, DegradesAfterExactlyNConsecutiveCrashes) {
  const soc::ChipsetDesc chip = soc::Dimensity1100();
  const graph::Graph model =
      models::BuildMobileNetEdgeTpu(models::ModelScale::kFull);

  soc::SocSimulator sim(chip);
  sim.InjectFaults(soc::FaultPlan{}.DriverCrashes(1.0));
  backends::FaultToleranceOptions opts;
  opts.crash_fallback_threshold = 3;
  opts.max_attempts = 5;  // enough room to fall back within one query
  loadgen::VirtualClock clock;
  backends::FaultTolerantBackend sut(
      "ft", std::move(sim), AcceleratedPlan(chip, model),
      backends::CompileCpuFallback(chip, model, DataType::kInt8), {}, clock,
      opts);

  CountingSink sink;
  const loadgen::QuerySample q{1, 0};
  sut.IssueQuery({&q, 1}, sink);

  // Attempts 1-3 crash on the accelerator; the 3rd trips the fallback and
  // attempt 4 completes on the immune CPU plan.
  ASSERT_EQ(sink.ids.size(), 1u);
  EXPECT_TRUE(sut.degraded_to_cpu());
  EXPECT_EQ(sut.stats().driver_crashes, 3u);
  EXPECT_EQ(sut.stats().completed, 1u);
  ASSERT_FALSE(sut.events().empty());
  bool saw_fallback = false;
  for (const backends::DegradationEvent& e : sut.events())
    if (e.action == backends::RecoveryAction::kCpuFallback) {
      saw_fallback = true;
      EXPECT_EQ(e.attempt, 3);
    }
  EXPECT_TRUE(saw_fallback);
}

TEST(FaultTolerantBackend, ThermalEmergencyCompletesThenCoolsDown) {
  const soc::ChipsetDesc chip = soc::Dimensity1100();
  const graph::Graph model =
      models::BuildMobileNetEdgeTpu(models::ModelScale::kFull);

  soc::SocSimulator sim(chip);
  sim.InjectFaults(soc::FaultPlan{}.ThermalEmergencies(1.0));
  backends::FaultToleranceOptions opts;
  opts.emergency_cooldown_s = 2.0;
  loadgen::VirtualClock clock;
  backends::FaultTolerantBackend sut(
      "ft", std::move(sim), AcceleratedPlan(chip, model),
      backends::CompileCpuFallback(chip, model, DataType::kInt8), {}, clock,
      opts);

  CountingSink sink;
  const loadgen::QuerySample q{1, 0};
  sut.IssueQuery({&q, 1}, sink);
  EXPECT_EQ(sink.ids.size(), 1u);  // the query still completes
  EXPECT_EQ(sut.stats().thermal_emergencies, 1u);
  EXPECT_GE(clock.Now().count(), opts.emergency_cooldown_s);
  EXPECT_FALSE(sut.degraded_to_cpu());
}

TEST(FaultTolerantBackend, FullyFaultedAcceleratorStillYieldsValidRun) {
  // Acceptance: a 100%-crashing accelerator must still produce a valid
  // (degraded) single-stream result via the CPU fallback.
  const soc::ChipsetDesc chip = soc::Dimensity1100();
  const graph::Graph model =
      models::BuildMobileNetEdgeTpu(models::ModelScale::kFull);

  soc::SocSimulator sim(chip);
  sim.InjectFaults(soc::FaultPlan{}.DriverCrashes(1.0));
  loadgen::VirtualClock clock;
  backends::FaultTolerantBackend sut(
      "ft", std::move(sim), AcceleratedPlan(chip, model),
      backends::CompileCpuFallback(chip, model, DataType::kInt8), {}, clock);

  struct TinyQsl final : loadgen::QuerySampleLibrary {
    [[nodiscard]] std::string_view name() const override { return "tiny"; }
    [[nodiscard]] std::size_t TotalSampleCount() const override { return 4; }
    [[nodiscard]] std::size_t PerformanceSampleCount() const override {
      return 4;
    }
    void LoadSamplesToRam(std::span<const std::size_t>) override {}
    void UnloadSamplesFromRam(std::span<const std::size_t>) override {}
  } qsl;

  loadgen::TestSettings s;
  s.min_query_count = 16;
  s.min_duration = loadgen::Seconds{0.1};
  const loadgen::TestResult r = RunTest(sut, qsl, s, clock);
  EXPECT_FALSE(r.Errored());
  EXPECT_GT(r.sample_count, 0u);
  EXPECT_TRUE(sut.degraded_to_cpu());
  EXPECT_GT(sut.stats().DegradationCount(), 0u);
}

TEST(FaultTolerantBackend, SampleDropsExpireUnderTheWatchdog) {
  // Lost completions are not retried (the work ran); the LoadGen watchdog
  // expires them at the configured virtual-clock deadline and the run
  // stays valid.
  const soc::ChipsetDesc chip = soc::Dimensity1100();
  const graph::Graph model =
      models::BuildMobileNetEdgeTpu(models::ModelScale::kFull);

  soc::SocSimulator sim(chip);
  sim.InjectFaults(soc::FaultPlan{}.SampleDrops(0.3));
  loadgen::VirtualClock clock;
  backends::FaultTolerantBackend sut(
      "ft", std::move(sim), AcceleratedPlan(chip, model),
      backends::CompileCpuFallback(chip, model, DataType::kInt8), {}, clock);

  struct TinyQsl final : loadgen::QuerySampleLibrary {
    [[nodiscard]] std::string_view name() const override { return "tiny"; }
    [[nodiscard]] std::size_t TotalSampleCount() const override { return 4; }
    [[nodiscard]] std::size_t PerformanceSampleCount() const override {
      return 4;
    }
    void LoadSamplesToRam(std::span<const std::size_t>) override {}
    void UnloadSamplesFromRam(std::span<const std::size_t>) override {}
  } qsl;

  loadgen::TestSettings s;
  s.min_query_count = 64;
  s.min_duration = loadgen::Seconds{0.1};
  s.query_timeout = loadgen::Seconds{1.0};
  const loadgen::TestResult r = RunTest(sut, qsl, s, clock);
  EXPECT_FALSE(r.Errored());
  EXPECT_GT(r.timed_out_count, 0u);
  EXPECT_EQ(r.dropped_count, 0u);  // watchdog reclassifies drops
  EXPECT_EQ(r.timed_out_count, sut.stats().lost_completions);
  EXPECT_GT(r.sample_count, 0u);
}

// ---- the full pipeline: RunSubmission under a seeded fault plan ----

harness::SuiteBundles& Bundles() {
  static harness::SuiteBundles bundles;
  return bundles;
}

harness::RunOptions FaultyOptions() {
  harness::RunOptions o;
  o.run_accuracy = false;  // faults target the performance plane
  o.performance_settings.min_query_count = 64;
  o.performance_settings.min_duration = loadgen::Seconds{0.5};
  o.performance_settings.offline_sample_count = 2048;
  o.performance_settings.query_timeout = loadgen::Seconds{10.0};
  o.cooldown_s = 30.0;
  o.fault_plan = soc::FaultPlan{}.DriverCrashes(0.9).TransientStalls(0.05);
  return o;
}

TEST(RunSubmissionFaults, CrashPlanYieldsValidDegradedTasks) {
  const harness::SubmissionResult r = harness::RunSubmission(
      soc::Dimensity1100(), models::SuiteVersion::kV1_0, Bundles(),
      FaultyOptions());
  ASSERT_EQ(r.tasks.size(), 4u);
  for (const harness::TaskRunResult& t : r.tasks) {
    // With 90% crash probability the accelerator plan collapses quickly;
    // every task must still finish, degraded, with a usable result.
    EXPECT_EQ(t.status, harness::TaskStatus::kValidDegraded)
        << t.entry.id << ": " << t.status_detail;
    ASSERT_TRUE(t.single_stream.has_value());
    EXPECT_FALSE(t.single_stream->Errored());
    EXPECT_GT(t.single_stream->sample_count, 0u);
    EXPECT_GT(t.fault_count, 0u);
    EXPECT_GT(t.degradation_count, 0u);
    EXPECT_GE(t.performance_attempts, 1);
    EXPECT_FALSE(t.fault_log.empty());
  }
}

TEST(RunSubmissionFaults, SameSeedReproducesByteIdenticalFaultLogs) {
  const harness::SubmissionResult a = harness::RunSubmission(
      soc::Dimensity1100(), models::SuiteVersion::kV1_0, Bundles(),
      FaultyOptions());
  const harness::SubmissionResult b = harness::RunSubmission(
      soc::Dimensity1100(), models::SuiteVersion::kV1_0, Bundles(),
      FaultyOptions());
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_FALSE(a.tasks[i].fault_log.empty());
    EXPECT_EQ(a.tasks[i].fault_log, b.tasks[i].fault_log);
    EXPECT_EQ(a.tasks[i].fault_count, b.tasks[i].fault_count);
    EXPECT_EQ(a.tasks[i].status, b.tasks[i].status);
  }
}

TEST(RunSubmissionFaults, NoPlanMeansNoFaultMachinery) {
  harness::RunOptions o = FaultyOptions();
  o.fault_plan.reset();
  const harness::SubmissionResult r = harness::RunSubmission(
      soc::Dimensity1100(), models::SuiteVersion::kV1_0, Bundles(), o);
  for (const harness::TaskRunResult& t : r.tasks) {
    EXPECT_EQ(t.status, harness::TaskStatus::kValid);
    EXPECT_EQ(t.fault_count, 0u);
    EXPECT_EQ(t.degradation_count, 0u);
    EXPECT_TRUE(t.fault_log.empty());
    EXPECT_EQ(t.performance_attempts, 1);
  }
}

}  // namespace
}  // namespace mlpm
