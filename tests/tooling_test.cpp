// Tests for the tooling layer: model summaries and CSV result export.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/summary.h"
#include "harness/export.h"
#include "models/mobilenet_edgetpu.h"

namespace mlpm {
namespace {

TEST(Summary, ContainsLayersAndTotals) {
  const graph::Graph g =
      models::BuildMobileNetEdgeTpu(models::ModelScale::kMini);
  const std::string s = graph::Summarize(g);
  EXPECT_NE(s.find("mobilenet_edgetpu"), std::string::npos);
  EXPECT_NE(s.find("Conv2d"), std::string::npos);
  EXPECT_NE(s.find("total"), std::string::npos);
  EXPECT_NE(s.find(std::to_string(g.ParameterCount())), std::string::npos);
}

TEST(Summary, OneLineFormat) {
  const graph::Graph g =
      models::BuildMobileNetEdgeTpu(models::ModelScale::kFull);
  const std::string s = graph::OneLineSummary(g);
  EXPECT_NE(s.find("mobilenet_edgetpu:"), std::string::npos);
  EXPECT_NE(s.find("GMACs"), std::string::npos);
  EXPECT_NE(s.find("3.95M params"), std::string::npos);
}

harness::SubmissionResult FakeResult() {
  harness::SubmissionResult r;
  r.chipset_name = "Test, SoC";  // comma forces CSV quoting
  r.version = models::SuiteVersion::kV1_0;
  harness::TaskRunResult t;
  t.entry = models::SuiteFor(models::SuiteVersion::kV1_0)[0];
  t.numerics = DataType::kUInt8;
  t.framework_name = "SDK";
  t.accelerator_label = "NPU";
  t.accuracy = 0.8;
  t.fp32_reference = 0.81;
  t.ratio_to_fp32 = 0.8 / 0.81;
  t.quality_passed = true;
  loadgen::TestResult perf;
  perf.percentile_latency_s = 0.002;
  perf.mean_latency_s = 0.0019;
  t.single_stream = perf;
  t.energy_per_inference_j = 0.004;
  r.tasks.push_back(std::move(t));
  return r;
}

TEST(Csv, HeaderAndRowCount) {
  const std::string csv = harness::ToCsv(FakeResult());
  std::istringstream is(csv);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) ++lines;
  EXPECT_EQ(lines, 2u);  // header + one task
  EXPECT_EQ(csv.substr(0, 7), "chipset");
}

TEST(Csv, QuotesFieldsWithCommas) {
  const std::string csv = harness::ToCsv(FakeResult());
  EXPECT_NE(csv.find("\"Test, SoC\""), std::string::npos);
}

TEST(Csv, ContainsTransparencyColumns) {
  const std::string csv = harness::ToCsv(FakeResult());
  EXPECT_NE(csv.find("UINT8"), std::string::npos);
  EXPECT_NE(csv.find("SDK"), std::string::npos);
  EXPECT_NE(csv.find("NPU"), std::string::npos);
  EXPECT_NE(csv.find("true"), std::string::npos);
}

TEST(Csv, MissingOfflineLeavesEmptyField) {
  const std::string csv = harness::ToCsv(FakeResult(), false);
  // ...,p90,mean,<empty offline>,energy
  EXPECT_NE(csv.find(",,4"), std::string::npos);
}

TEST(Csv, StoreExportPrependsDate) {
  harness::ResultStore store;
  store.Add("2021-04-01", FakeResult());
  const std::string csv = harness::ToCsv(store);
  EXPECT_EQ(csv.substr(0, 5), "date,");
  EXPECT_NE(csv.find("2021-04-01,"), std::string::npos);
}

}  // namespace
}  // namespace mlpm
