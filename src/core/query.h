// Query vocabulary shared between the LoadGen and systems under test.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "infer/tensor.h"

namespace mlpm::loadgen {

// One inference request for one dataset sample.
struct QuerySample {
  std::uint64_t id = 0;     // unique per issued sample within a test
  std::size_t index = 0;    // dataset sample index
};

// Completion record the SUT hands back.  `outputs` is only populated in
// accuracy mode (performance mode discards model outputs, as the real
// LoadGen does).
struct QuerySampleResponse {
  std::uint64_t id = 0;
  std::vector<infer::Tensor> outputs;
};

// The LoadGen-side sink the SUT completes queries into.  Completion time is
// taken from the test clock at the moment Complete() is called.
class ResponseSink {
 public:
  virtual ~ResponseSink() = default;
  virtual void Complete(QuerySampleResponse response) = 0;

  // Fast-fail path (DESIGN.md §12): a SUT-side admission layer (e.g. an open
  // circuit breaker) refuses an issued sample without running it.  Rejected
  // queries are accounted separately from drops/timeouts so the watchdog
  // never waits on them.  Default is a no-op so plain SUTs ignore it.
  virtual void Reject(std::uint64_t /*id*/, std::string_view /*reason*/) {}
};

// System under test (paper §4.3): anything that can run queries — the
// reference TFLite-style functional backend, a vendor-backend simulation on
// a simulated chipset, or a laptop OpenVINO-style backend.
class SystemUnderTest {
 public:
  virtual ~SystemUnderTest() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;

  // Process the given samples, calling sink.Complete() once per sample.
  // Single-stream issues one sample per call; offline issues the whole
  // 24,576-sample burst in one call.
  virtual void IssueQuery(std::span<const QuerySample> samples,
                          ResponseSink& sink) = 0;

  // Finalize any batched work (end of test).
  virtual void FlushQueries() {}
};

// Query sample library (paper Fig. 4): wraps a data set; the LoadGen tells
// it which samples to stage into memory before timing starts.
class QuerySampleLibrary {
 public:
  virtual ~QuerySampleLibrary() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual std::size_t TotalSampleCount() const = 0;
  // How many samples fit in RAM for performance mode (the subset size).
  [[nodiscard]] virtual std::size_t PerformanceSampleCount() const = 0;
  virtual void LoadSamplesToRam(std::span<const std::size_t> indices) = 0;
  virtual void UnloadSamplesFromRam(std::span<const std::size_t> indices) = 0;
};

}  // namespace mlpm::loadgen
