// Rolling submissions (paper App. E): vendors submit continuously as new
// devices ship; the result store keeps the full history and reports the
// latest score per device, which is what roadmaps like IRDS consume.
#include <cstdio>

#include "common/table.h"
#include "harness/result_store.h"

int main() {
  using namespace mlpm;

  harness::SuiteBundles bundles;
  harness::ResultStore store;
  harness::RunOptions perf_only;
  perf_only.run_accuracy = false;  // keep the demo fast

  // v0.7 round (October 2020), then the v1.0 round (April 2021), then a
  // rolling re-submission with an improved driver three months later.
  store.Add("2020-10-28",
            harness::RunSubmission(soc::Exynos990(),
                                   models::SuiteVersion::kV0_7, bundles,
                                   perf_only));
  store.Add("2021-04-21",
            harness::RunSubmission(soc::Exynos2100(),
                                   models::SuiteVersion::kV1_0, bundles,
                                   perf_only));
  store.Add("2021-07-15",
            harness::RunSubmission(soc::Exynos2100(),
                                   models::SuiteVersion::kV1_0, bundles,
                                   perf_only));
  store.Add("2020-10-28",
            harness::RunSubmission(soc::Snapdragon865Plus(),
                                   models::SuiteVersion::kV0_7, bundles,
                                   perf_only));

  TextTable table("rolling result store: latest submission per device");
  table.SetHeader({"Date", "Chipset", "Round", "IC p90", "NLP p90"});
  for (const harness::DatedSubmission& s : store.LatestPerDevice()) {
    const auto& tasks = s.result.tasks;
    table.AddRow({s.date_iso, s.result.chipset_name,
                  std::string(ToString(s.result.version)),
                  tasks[0].single_stream
                      ? FormatMs(tasks[0].single_stream->percentile_latency_s)
                      : "-",
                  tasks[3].single_stream
                      ? FormatMs(tasks[3].single_stream->percentile_latency_s)
                      : "-"});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nhistory for Exynos 2100: %zu dated submissions\n",
              store.HistoryFor("Exynos 2100").size());
  return 0;
}
