# Empty dependencies file for mlpm_backends.
# This may be replaced when dependencies are built.
