// AArch64 NEON (Advanced SIMD) microkernel table.  Compiled on aarch64
// builds only; ASIMD is architecturally mandatory there, but the registry
// still confirms it via HWCAP before dispatching here.
//
// Exactness mirrors avx2.cpp: u8 kernels widen to u16 products (exact) and
// accumulate with wrapping 32-bit adds — bit-identical to the scalar oracle
// mod 2^32; f32 kernels reassociate across 4 lanes and fuse with vfmaq, so
// they match the oracle within the documented tolerance only.
#include "infer/kernels/registry.h"

#if defined(MLPM_KERNELS_HAVE_NEON) && defined(__aarch64__)

#include <arm_neon.h>

#include <cstddef>
#include <cstdint>

namespace mlpm::infer::kernels {
namespace {

inline float DotF32(const float* x, const float* y, std::size_t k) {
  float32x4_t acc = vdupq_n_f32(0.0f);
  std::size_t i = 0;
  for (; i + 4 <= k; i += 4)
    acc = vfmaq_f32(acc, vld1q_f32(x + i), vld1q_f32(y + i));
  float s = vaddvq_f32(acc);
  for (; i < k; ++i) s += x[i] * y[i];
  return s;
}

// 16 bytes per step: vmull_u8 produces exact u16 products, vpadalq_u16
// pairwise-accumulates them into wrapping u32 lanes — exact mod 2^32.
inline std::uint32_t DotU8(const std::uint8_t* x, const std::uint8_t* y,
                           std::size_t k) {
  uint32x4_t acc = vdupq_n_u32(0);
  std::size_t i = 0;
  for (; i + 16 <= k; i += 16) {
    const uint8x16_t xv = vld1q_u8(x + i);
    const uint8x16_t yv = vld1q_u8(y + i);
    acc = vpadalq_u16(acc, vmull_u8(vget_low_u8(xv), vget_low_u8(yv)));
    acc = vpadalq_u16(acc, vmull_u8(vget_high_u8(xv), vget_high_u8(yv)));
  }
  std::uint32_t s = vaddvq_u32(acc);
  for (; i < k; ++i)
    s += static_cast<std::uint32_t>(x[i]) * static_cast<std::uint32_t>(y[i]);
  return s;
}

inline std::uint32_t RowSumU8(const std::uint8_t* row, std::size_t k) {
  uint32x4_t acc = vdupq_n_u32(0);
  std::size_t i = 0;
  for (; i + 16 <= k; i += 16)
    acc = vpadalq_u16(acc, vpaddlq_u8(vld1q_u8(row + i)));
  std::uint32_t s = vaddvq_u32(acc);
  for (; i < k; ++i) s += row[i];
  return s;
}

void GemmF32RowsNeon(const float* a, const float* b_t, std::int64_t i_begin,
                     std::int64_t i_end, std::size_t n, std::size_t k,
                     float* c) {
  std::int64_t i = i_begin;
  for (; i + 4 <= i_end; i += 4) {
    const float* a0 = a + static_cast<std::size_t>(i) * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    std::size_t j = 0;
    for (; j + 2 <= n; j += 2) {
      const float* b0 = b_t + j * k;
      const float* b1 = b0 + k;
      float32x4_t acc00 = vdupq_n_f32(0.0f), acc01 = vdupq_n_f32(0.0f);
      float32x4_t acc10 = vdupq_n_f32(0.0f), acc11 = vdupq_n_f32(0.0f);
      float32x4_t acc20 = vdupq_n_f32(0.0f), acc21 = vdupq_n_f32(0.0f);
      float32x4_t acc30 = vdupq_n_f32(0.0f), acc31 = vdupq_n_f32(0.0f);
      std::size_t kk = 0;
      for (; kk + 4 <= k; kk += 4) {
        const float32x4_t bv0 = vld1q_f32(b0 + kk);
        const float32x4_t bv1 = vld1q_f32(b1 + kk);
        const float32x4_t av0 = vld1q_f32(a0 + kk);
        acc00 = vfmaq_f32(acc00, av0, bv0);
        acc01 = vfmaq_f32(acc01, av0, bv1);
        const float32x4_t av1 = vld1q_f32(a1 + kk);
        acc10 = vfmaq_f32(acc10, av1, bv0);
        acc11 = vfmaq_f32(acc11, av1, bv1);
        const float32x4_t av2 = vld1q_f32(a2 + kk);
        acc20 = vfmaq_f32(acc20, av2, bv0);
        acc21 = vfmaq_f32(acc21, av2, bv1);
        const float32x4_t av3 = vld1q_f32(a3 + kk);
        acc30 = vfmaq_f32(acc30, av3, bv0);
        acc31 = vfmaq_f32(acc31, av3, bv1);
      }
      float s[4][2] = {{vaddvq_f32(acc00), vaddvq_f32(acc01)},
                       {vaddvq_f32(acc10), vaddvq_f32(acc11)},
                       {vaddvq_f32(acc20), vaddvq_f32(acc21)},
                       {vaddvq_f32(acc30), vaddvq_f32(acc31)}};
      for (; kk < k; ++kk) {
        const float bv0 = b0[kk], bv1 = b1[kk];
        s[0][0] += a0[kk] * bv0; s[0][1] += a0[kk] * bv1;
        s[1][0] += a1[kk] * bv0; s[1][1] += a1[kk] * bv1;
        s[2][0] += a2[kk] * bv0; s[2][1] += a2[kk] * bv1;
        s[3][0] += a3[kk] * bv0; s[3][1] += a3[kk] * bv1;
      }
      for (std::size_t r = 0; r < 4; ++r) {
        c[(static_cast<std::size_t>(i) + r) * n + j] = s[r][0];
        c[(static_cast<std::size_t>(i) + r) * n + j + 1] = s[r][1];
      }
    }
    for (; j < n; ++j) {
      const float* bj = b_t + j * k;
      c[static_cast<std::size_t>(i) * n + j] = DotF32(a0, bj, k);
      c[static_cast<std::size_t>(i + 1) * n + j] = DotF32(a1, bj, k);
      c[static_cast<std::size_t>(i + 2) * n + j] = DotF32(a2, bj, k);
      c[static_cast<std::size_t>(i + 3) * n + j] = DotF32(a3, bj, k);
    }
  }
  for (; i < i_end; ++i) {
    const float* ai = a + static_cast<std::size_t>(i) * k;
    for (std::size_t j = 0; j < n; ++j)
      c[static_cast<std::size_t>(i) * n + j] = DotF32(ai, b_t + j * k, k);
  }
}

void GemmU8RowsNeon(const std::uint8_t* a, const std::uint8_t* b_t,
                    std::int64_t i_begin, std::int64_t i_end, std::size_t n,
                    std::size_t k, std::uint32_t a_zp, std::uint32_t b_zp,
                    const std::uint32_t* b_sums, std::int32_t* c) {
  const std::uint32_t kzz = static_cast<std::uint32_t>(k) * a_zp * b_zp;
  for (std::int64_t i = i_begin; i < i_end; ++i) {
    const std::uint8_t* ai = a + static_cast<std::size_t>(i) * k;
    const std::uint32_t base = kzz - b_zp * RowSumU8(ai, k);
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint32_t s = DotU8(ai, b_t + j * k, k);
      c[static_cast<std::size_t>(i) * n + j] =
          static_cast<std::int32_t>(s + base - a_zp * b_sums[j]);
    }
  }
}

void RowSumsU8Neon(const std::uint8_t* b_t, std::int64_t j_begin,
                   std::int64_t j_end, std::size_t k, std::uint32_t* sums) {
  for (std::int64_t j = j_begin; j < j_end; ++j)
    sums[j] = RowSumU8(b_t + static_cast<std::size_t>(j) * k, k);
}

void Dot4F32Neon(const float* x, const float* w0, const float* w1,
                 const float* w2, const float* w3, std::int64_t len,
                 float* acc) {
  float32x4_t s0 = vdupq_n_f32(0.0f), s1 = vdupq_n_f32(0.0f);
  float32x4_t s2 = vdupq_n_f32(0.0f), s3 = vdupq_n_f32(0.0f);
  std::int64_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const float32x4_t xv = vld1q_f32(x + i);
    s0 = vfmaq_f32(s0, xv, vld1q_f32(w0 + i));
    s1 = vfmaq_f32(s1, xv, vld1q_f32(w1 + i));
    s2 = vfmaq_f32(s2, xv, vld1q_f32(w2 + i));
    s3 = vfmaq_f32(s3, xv, vld1q_f32(w3 + i));
  }
  float r0 = vaddvq_f32(s0), r1 = vaddvq_f32(s1), r2 = vaddvq_f32(s2),
        r3 = vaddvq_f32(s3);
  for (; i < len; ++i) {
    const float v = x[i];
    r0 += v * w0[i];
    r1 += v * w1[i];
    r2 += v * w2[i];
    r3 += v * w3[i];
  }
  acc[0] += r0;
  acc[1] += r1;
  acc[2] += r2;
  acc[3] += r3;
}

void DwMaddF32Neon(const float* x, const float* w, float* acc,
                   std::int64_t channels) {
  std::int64_t c = 0;
  for (; c + 4 <= channels; c += 4)
    vst1q_f32(acc + c,
              vfmaq_f32(vld1q_f32(acc + c), vld1q_f32(x + c),
                        vld1q_f32(w + c)));
  for (; c < channels; ++c) acc[c] += x[c] * w[c];
}

}  // namespace

const KernelTable* NeonKernelsOrNull() {
  static constexpr KernelTable kTable = {
      KernelIsa::kNeon, "neon",      GemmF32RowsNeon, GemmU8RowsNeon,
      RowSumsU8Neon,    Dot4F32Neon, DwMaddF32Neon};
  return &kTable;
}

}  // namespace mlpm::infer::kernels

#endif  // MLPM_KERNELS_HAVE_NEON && __aarch64__
