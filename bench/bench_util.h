// Shared helpers for the table/figure report generators.
#pragma once

#include <string>
#include <vector>

#include "backends/simulated_backend.h"
#include "backends/vendor_policy.h"
#include "core/dataset_qsl.h"
#include "core/loadgen.h"
#include "datasets/task_dataset.h"
#include "models/zoo.h"
#include "soc/chipset.h"

namespace mlpm::benchutil {

// A minimal query-sample source for performance-only runs: the simulated
// backend never reads sample contents, so eight 1-element tensors suffice.
class StubDataset final : public datasets::TaskDataset {
 public:
  [[nodiscard]] std::size_t size() const override { return 8; }
  [[nodiscard]] std::vector<infer::Tensor> InputsFor(
      std::size_t) const override {
    std::vector<infer::Tensor> v;
    v.emplace_back(graph::TensorShape({1}));
    return v;
  }
  [[nodiscard]] double ScoreOutputs(
      std::span<const std::vector<infer::Tensor>>) const override {
    return 0.0;
  }
  [[nodiscard]] std::string_view metric_name() const override {
    return "none";
  }
  [[nodiscard]] std::vector<infer::Tensor> CalibrationInputsFor(
      std::size_t index) const override {
    return InputsFor(index);
  }
};

struct PerfOutcome {
  double p90_latency_s = 0.0;
  double mean_latency_s = 0.0;
  double throughput_sps = 0.0;  // single-stream: completed samples / time
  std::size_t samples = 0;
};

// Compliant single-stream run (>=1024 samples, >=60 virtual seconds).
inline PerfOutcome RunSingleStream(const soc::ChipsetDesc& chipset,
                                   models::SuiteVersion version,
                                   models::TaskType task) {
  const models::BenchmarkEntry* entry = nullptr;
  const auto suite = models::SuiteFor(version);
  for (const auto& e : suite)
    if (e.task == task) entry = &e;
  Expects(entry != nullptr, "task not in suite");

  const graph::Graph model = models::BuildReferenceGraph(
      *entry, version, models::ModelScale::kFull);
  const backends::SubmissionConfig sub =
      backends::GetSubmission(chipset, task, version);

  loadgen::VirtualClock clock;
  backends::SimulatedBackend sut(
      chipset.name, soc::SocSimulator(chipset),
      backends::CompileSubmission(chipset, sub, model),
      backends::CompileOfflineReplicas(chipset, sub, model), clock);
  StubDataset stub;
  loadgen::DatasetQsl qsl(stub);
  loadgen::TestSettings settings;
  const loadgen::TestResult r = loadgen::RunTest(sut, qsl, settings, clock);

  PerfOutcome out;
  out.p90_latency_s = r.percentile_latency_s;
  out.mean_latency_s = r.mean_latency_s;
  out.throughput_sps = r.throughput_sps;
  out.samples = r.sample_count;
  return out;
}

// Compliant offline run (24,576 samples in one burst, ALP per policy).
inline PerfOutcome RunOffline(const soc::ChipsetDesc& chipset,
                              models::SuiteVersion version,
                              models::TaskType task) {
  const auto suite = models::SuiteFor(version);
  const models::BenchmarkEntry* entry = nullptr;
  for (const auto& e : suite)
    if (e.task == task) entry = &e;
  Expects(entry != nullptr, "task not in suite");

  const graph::Graph model = models::BuildReferenceGraph(
      *entry, version, models::ModelScale::kFull);
  const backends::SubmissionConfig sub =
      backends::GetSubmission(chipset, task, version);
  Expects(!sub.offline_replicas.empty(),
          chipset.name + " has no offline submission for this task");

  loadgen::VirtualClock clock;
  backends::SimulatedBackend sut(
      chipset.name, soc::SocSimulator(chipset),
      backends::CompileSubmission(chipset, sub, model),
      backends::CompileOfflineReplicas(chipset, sub, model), clock);
  StubDataset stub;
  loadgen::DatasetQsl qsl(stub);
  loadgen::TestSettings settings;
  settings.scenario = loadgen::TestScenario::kOffline;
  const loadgen::TestResult r = loadgen::RunTest(sut, qsl, settings, clock);

  PerfOutcome out;
  out.throughput_sps = r.throughput_sps;
  out.samples = r.sample_count;
  return out;
}

}  // namespace mlpm::benchutil
