// Crop-aware kernels for tiled segment execution.
//
// Each runner computes a *band of output rows* of one NHWC (batch-1) op,
// reading inputs through RowBand views that expose global coordinates over
// a partially-materialized buffer (a tile slab holding rows
// [origin, origin + rows) of the logical tensor, or a fully-materialized
// tensor with origin 0).
//
// Bit-identity contract (DESIGN.md §15): every runner mirrors the
// whole-op executor kernel exactly — bias-first accumulators, the same
// (kh, kw) tap order, the same dot4/dw_madd microkernel calls keyed on the
// same absolute output-channel index, taps skipped outside the *logical*
// tensor bounds (not the slab bounds).  Because each output element is
// produced by the identical sequence of operations on identical inputs,
// tiled execution equals whole-op execution bitwise — for every kernel
// table, including vectorized ones.
#pragma once

#include <cstdint>

#include "graph/ops.h"
#include "infer/executor.h"
#include "infer/kernels/registry.h"
#include "infer/quant_params.h"
#include "infer/tensor.h"

namespace mlpm::infer {

// Rows [origin, origin + rows) of a logical [1, height, width, channels]
// tensor; data points at row `origin`.  A fully-materialized tensor is the
// band {data, 0, height, height, width, channels}.
struct RowBand {
  const float* data = nullptr;
  std::int64_t origin = 0;
  std::int64_t rows = 0;
  std::int64_t height = 0;  // full logical H, the padding/clamp bound
  std::int64_t width = 0;
  std::int64_t channels = 0;
};

struct MutableRowBand {
  float* data = nullptr;
  std::int64_t origin = 0;
  std::int64_t rows = 0;
  std::int64_t height = 0;
  std::int64_t width = 0;
  std::int64_t channels = 0;

  [[nodiscard]] RowBand AsConst() const {
    return RowBand{data, origin, rows, height, width, channels};
  }
};

// Whole-tensor band over a rank-4 batch-1 tensor.
[[nodiscard]] RowBand FullBand(const Tensor& t);

// Conv2d over output rows [out.origin, out.origin + out.rows).  `w` is the
// executor's prepared [OC, KH, KW, IC] weight, `bias` its prepared bias.
void RunConv2dRows(const graph::Conv2dAttrs& a, const RowBand& in,
                   const Tensor& w, const Tensor& bias,
                   const MutableRowBand& out, const kernels::KernelTable& kt);

// Depthwise conv; `w` is the executor's prepacked [KH, KW, C] weight.
void RunDepthwiseConv2dRows(const graph::DepthwiseConv2dAttrs& a,
                            const RowBand& in, const Tensor& w,
                            const Tensor& bias, const MutableRowBand& out,
                            const kernels::KernelTable& kt);

// Max / average pool (op is kMaxPool or kAvgPool).
void RunPoolRows(graph::OpType op, const graph::PoolAttrs& a,
                 const RowBand& in, const MutableRowBand& out);

// Elementwise add / mul (op is kAdd or kMul); `y` is the exterior operand,
// read at the same global rows as the output band.
void RunBinaryRows(graph::OpType op, const RowBand& x, const RowBand& y,
                   const MutableRowBand& out);

// Standalone activation.
void RunActivationRows(graph::Activation act, const RowBand& in,
                       const MutableRowBand& out);

// Bilinear resize over an output row band; half-pixel centers clamped to
// the logical input, reproducing the whole-op kernel's tap math verbatim.
void RunResizeBilinearRows(const RowBand& in, const MutableRowBand& out);

// Per-node output numerics over just the band (fp16 rounding / activation
// fake-quant) — elementwise and identical to the whole-op post-pass.
void ApplyNumericsRows(NumericsMode mode, const QuantParams& quant,
                       graph::TensorId output_id, const MutableRowBand& out);

}  // namespace mlpm::infer
