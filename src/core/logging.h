// Structured test log (paper §4.1: the LoadGen "logs information about the
// system during execution to enable post-run validation"; §6.2: submissions
// include all log files unedited, and the checker validates them).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/clock.h"

namespace mlpm::loadgen {

enum class LogEventKind : std::uint8_t {
  kQueryIssued,
  kQueryCompleted,
  // Admission-control taxonomy (DESIGN.md §12): `shed` = the LoadGen's
  // bounded issue queue refused the arrival before it reached the SUT;
  // `rejected` = the SUT-side breaker fast-failed an issued query.
  kQueryShed,
  kQueryRejected,
};

struct LogEvent {
  LogEventKind kind = LogEventKind::kQueryIssued;
  std::uint64_t query_id = 0;
  Seconds timestamp{0.0};
};

// Header fields + per-query event trace.  Serializes to a line-oriented
// text format; the submission checker parses it back and cross-checks the
// summary against the raw events.
class TestLog {
 public:
  void SetField(const std::string& key, std::string value);
  [[nodiscard]] const std::string* FieldOrNull(const std::string& key) const;
  [[nodiscard]] const std::map<std::string, std::string>& fields() const {
    return fields_;
  }

  void Record(LogEventKind kind, std::uint64_t query_id, Seconds t);
  [[nodiscard]] const std::vector<LogEvent>& events() const { return events_; }

  [[nodiscard]] std::string Serialize() const;
  // Throws CheckError on malformed input.
  [[nodiscard]] static TestLog Parse(const std::string& text);

 private:
  std::map<std::string, std::string> fields_;
  std::vector<LogEvent> events_;
};

}  // namespace mlpm::loadgen
