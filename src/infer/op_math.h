// Scalar math shared by the whole-op executor and the crop-aware tiled
// kernels.  Both paths must apply the exact same per-element operations in
// the exact same order for the tiled engine's bit-identity guarantee
// (DESIGN.md §15), so the shared pieces live here instead of being
// duplicated per translation unit.
#pragma once

#include <algorithm>
#include <cmath>

#include "graph/ops.h"

namespace mlpm::infer {

// Fused/standalone activation applied to one accumulator.
inline float ApplyActivation(float v, graph::Activation a) {
  switch (a) {
    case graph::Activation::kNone:
      return v;
    case graph::Activation::kRelu:
      return v > 0.0f ? v : 0.0f;
    case graph::Activation::kRelu6:
      return std::clamp(v, 0.0f, 6.0f);
    case graph::Activation::kSigmoid:
      return 1.0f / (1.0f + std::exp(-v));
    case graph::Activation::kTanh:
      return std::tanh(v);
    case graph::Activation::kGelu: {
      // tanh approximation of GELU.
      const float c = 0.7978845608f;  // sqrt(2/pi)
      const float inner = c * (v + 0.044715f * v * v * v);
      return 0.5f * v * (1.0f + std::tanh(inner));
    }
  }
  return v;
}

}  // namespace mlpm::infer
