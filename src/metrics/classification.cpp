#include "metrics/classification.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace mlpm::metrics {

int ArgMax(std::span<const float> logits) {
  Expects(!logits.empty(), "ArgMax of empty logits");
  return static_cast<int>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

bool InTopK(std::span<const float> logits, int label, int k) {
  Expects(label >= 0 && static_cast<std::size_t>(label) < logits.size(),
          "label out of range");
  Expects(k > 0, "k must be positive");
  const float lv = logits[static_cast<std::size_t>(label)];
  int strictly_higher = 0;
  for (float v : logits)
    if (v > lv) ++strictly_higher;
  return strictly_higher < k;
}

double TopOneAccuracy(std::span<const int> predictions,
                      std::span<const int> labels) {
  Expects(predictions.size() == labels.size(), "size mismatch");
  Expects(!predictions.empty(), "empty prediction set");
  std::size_t hits = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i)
    if (predictions[i] == labels[i]) ++hits;
  return static_cast<double>(hits) / static_cast<double>(predictions.size());
}

}  // namespace mlpm::metrics
