# Empty compiler generated dependencies file for mlpm_models.
# This may be replaced when dependencies are built.
