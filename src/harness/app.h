// The headless "mobile app" (paper §4.3, App. A): one call runs the whole
// suite under the run rules — the programmatic equivalent of tapping "Go".
#pragma once

#include <string>

#include "harness/run_session.h"

namespace mlpm::harness {

struct AppRunOutput {
  SubmissionResult result;
  std::string report_text;     // the results screen
  std::string checker_text;    // submission-checker verdict
  bool submission_valid = false;
};

// Runs accuracy + performance for every task on the given chipset and
// validates the outcome with the submission checker.
[[nodiscard]] AppRunOutput RunMobileApp(const soc::ChipsetDesc& chipset,
                                        models::SuiteVersion version,
                                        SuiteBundles& bundles,
                                        const RunOptions& options = {});

}  // namespace mlpm::harness
