// Machine-readable result export (paper App. B: technical analysts and
// performance-crowdsourcing platforms consume benchmark results for
// apples-to-apples comparisons; roadmaps like IRDS consume rolling data).
#pragma once

#include <string>
#include <vector>

#include "harness/result_store.h"
#include "harness/run_session.h"

namespace mlpm::harness {

// One CSV row per (submission, task).  Columns:
// chipset,version,task,model,numerics,framework,accelerator,accuracy,
// fp32_reference,ratio_to_fp32,quality_passed,p90_latency_ms,
// mean_latency_ms,offline_fps,energy_mj_per_inference,status,fault_count,
// degradation_count,dropped,timed_out,lint_errors,lint_warnings,
// peak_arena_bytes,naive_activation_bytes
[[nodiscard]] std::string ToCsv(const SubmissionResult& result,
                                bool include_header = true);

// Whole store, one header, rows ordered as stored; `date` column prepended.
[[nodiscard]] std::string ToCsv(const ResultStore& store);

// RFC 4180 parser for the exports above: records of fields, handling quoted
// fields with embedded commas, doubled quotes and line breaks (CRLF or LF).
// The exact inverse of the writer — ParseCsv(ToCsv(r)) round-trips every
// field byte-for-byte.  A trailing newline does not produce an empty record.
[[nodiscard]] std::vector<std::vector<std::string>> ParseCsv(
    const std::string& text);

}  // namespace mlpm::harness
