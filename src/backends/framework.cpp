#include "backends/framework.h"

namespace mlpm::backends {

FrameworkTraits VendorSdkTraits(std::string name) {
  FrameworkTraits t;
  t.name = std::move(name);
  t.kind = FrameworkKind::kVendorSdk;
  t.per_inference_overhead_us = 40.0;
  t.per_partition_sync_us = 8.0;  // direct driver submission
  t.copies_boundary_tensors = false;
  t.multi_accelerator_offline = true;
  t.fuses_elementwise = true;
  return t;
}

FrameworkTraits NnapiTraits(std::string driver_label) {
  FrameworkTraits t;
  t.name = "NNAPI (" + std::move(driver_label) + ")";
  t.kind = FrameworkKind::kNnapi;
  t.per_inference_overhead_us = 60.0;
  t.per_partition_sync_us = 65.0;  // HAL synchronization (Table 3 / §7.1)
  t.force_partition_every = 18;
  t.copies_boundary_tensors = true;
  // NNAPI's intermediate abstraction cannot drive multiple accelerators
  // concurrently (e.g. no multi-MDLA support, §7.4).
  t.multi_accelerator_offline = false;
  return t;
}

FrameworkTraits NnapiBuggyTraits(std::string driver_label,
                                 double fallback_fraction) {
  FrameworkTraits t = NnapiTraits(std::move(driver_label));
  t.name += " [buggy ops]";
  t.cpu_fallback_fraction = fallback_fraction;
  return t;
}

FrameworkTraits TfliteGpuDelegateTraits() {
  FrameworkTraits t;
  t.name = "TFLite delegate";
  t.kind = FrameworkKind::kTfliteDelegate;
  t.per_inference_overhead_us = 80.0;
  t.per_partition_sync_us = 15.0;
  t.copies_boundary_tensors = false;
  t.multi_accelerator_offline = false;
  return t;
}

FrameworkTraits OpenVinoTraits() {
  FrameworkTraits t;
  t.name = "OpenVINO";
  t.kind = FrameworkKind::kOpenVino;
  t.per_inference_overhead_us = 30.0;
  t.per_partition_sync_us = 5.0;
  t.copies_boundary_tensors = false;
  t.multi_accelerator_offline = true;
  t.fuses_elementwise = true;
  return t;
}

}  // namespace mlpm::backends
