file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_ios.dir/bench_extension_ios.cpp.o"
  "CMakeFiles/bench_extension_ios.dir/bench_extension_ios.cpp.o.d"
  "bench_extension_ios"
  "bench_extension_ios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_ios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
