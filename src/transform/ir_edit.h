// Mutable working copy of a graph::Graph for the transform layer.
//
// graph::Graph is immutable by design (frozen reference models, §5.1), so
// rewrites happen on an editable copy: passes mutate nodes and tensors
// through the helpers below, then Freeze() compacts dead nodes and orphaned
// tensors back into an immutable Graph via graph::AssembleGraphUnchecked.
// A MutableGraph performs no validation of its own — the PassManager
// (pass_manager.h) statically verifies every frozen candidate against the
// full analysis suite and rolls the pass back on violation, which keeps the
// edit API small and the trust boundary in one place.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace mlpm::transform {

// Result of MutableGraph::Freeze: the compacted graph plus the dense
// renumbering applied to surviving tensors.
struct FrozenGraph {
  graph::Graph graph;
  // Old tensor id -> new tensor id; graph::kInvalidTensor for tensors
  // dropped because no live node or graph input/output references them.
  std::vector<graph::TensorId> tensor_map;
};

class MutableGraph {
 public:
  explicit MutableGraph(const graph::Graph& g);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::vector<graph::Node>& nodes() { return nodes_; }
  [[nodiscard]] const std::vector<graph::Node>& nodes() const {
    return nodes_;
  }
  [[nodiscard]] const std::vector<graph::TensorInfo>& tensors() const {
    return tensors_;
  }
  [[nodiscard]] const graph::TensorInfo& tensor(graph::TensorId id) const;
  [[nodiscard]] const std::vector<graph::TensorId>& input_ids() const {
    return inputs_;
  }
  [[nodiscard]] const std::vector<graph::TensorId>& output_ids() const {
    return outputs_;
  }

  [[nodiscard]] bool alive(std::size_t node_index) const {
    return alive_[node_index];
  }
  [[nodiscard]] std::size_t live_node_count() const;

  // Producing live-node index per tensor id (-1 for graph inputs, weights
  // and dropped producers).  Recomputed on call.
  [[nodiscard]] std::vector<std::int32_t> BuildProducers() const;
  // Consuming live-node indices per tensor id.  Recomputed on call.
  [[nodiscard]] std::vector<std::vector<std::size_t>> BuildConsumers() const;
  [[nodiscard]] bool IsGraphInput(graph::TensorId id) const;
  [[nodiscard]] bool IsGraphOutput(graph::TensorId id) const;

  graph::TensorId AddTensor(std::string name, graph::TensorShape shape,
                            graph::TensorKind kind);
  // Inserts `n` immediately after node `index`.  Storage order stays
  // topological as long as `n` only consumes tensors produced at or before
  // `index` — the PassManager's XFM001 check re-proves this on the result.
  // Returns the new node's index (existing indices above it shift by one).
  std::size_t InsertNodeAfter(std::size_t index, graph::Node n);
  void Kill(std::size_t node_index);
  // Replaces every use of `from` — live node inputs and graph outputs —
  // with `to`.  Weight references are never rewritten.
  void RedirectUses(graph::TensorId from, graph::TensorId to);

  // Compacts live nodes (in storage order) and referenced tensors into an
  // immutable Graph.  Tensor ids are renumbered densely in ascending old-id
  // order, so an edit sequence that restores the original structure also
  // restores the original ids (and structural fingerprint).
  [[nodiscard]] FrozenGraph Freeze() const;

 private:
  std::string name_;
  std::vector<graph::Node> nodes_;
  std::vector<bool> alive_;
  std::vector<graph::TensorInfo> tensors_;
  std::vector<graph::TensorId> inputs_;
  std::vector<graph::TensorId> outputs_;
};

}  // namespace mlpm::transform
