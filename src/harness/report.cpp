#include "harness/report.h"

#include <sstream>

#include "common/statistics.h"
#include "common/table.h"

namespace mlpm::harness {
namespace {

// Activation bytes render in KiB/MiB; raw byte counts are unreadable at
// full-scale-model sizes.
std::string FormatBytes(std::size_t bytes) {
  const double b = static_cast<double>(bytes);
  if (bytes >= 1024 * 1024)
    return FormatDouble(b / (1024.0 * 1024.0), 2) + " MiB";
  if (bytes >= 1024) return FormatDouble(b / 1024.0, 1) + " KiB";
  return std::to_string(bytes) + " B";
}

}  // namespace

std::string FormatSubmission(const SubmissionResult& result) {
  TextTable t("MLPerf Mobile " + std::string(ToString(result.version)) +
              " — " + result.chipset_name);
  t.SetHeader({"Task", "Numerics", "Framework", "Accelerator", "Kernels",
               "Accuracy", "vs FP32", "Quality", "p90 latency",
               "1/latency (q/s)", "Offline FPS", "mJ/inf", "Arena",
               "Act. saved"});
  for (const TaskRunResult& task : result.tasks) {
    std::vector<std::string> row;
    row.push_back(task.entry.id);
    row.push_back(std::string(ToString(task.numerics)));
    row.push_back(task.framework_name);
    row.push_back(task.accelerator_label);
    row.push_back(task.kernel_isa.empty() ? "-" : task.kernel_isa);
    row.push_back(FormatDouble(task.accuracy, 4) + " " +
                  task.entry.metric_name);
    row.push_back(FormatPercent(task.ratio_to_fp32, 1));
    row.push_back(task.quality_passed ? "PASS" : "FAIL");
    if (task.single_stream) {
      row.push_back(FormatMs(task.single_stream->percentile_latency_s));
      row.push_back(FormatDouble(
          task.single_stream->percentile_latency_s > 0
              ? 1.0 / task.single_stream->percentile_latency_s
              : 0.0,
          1));
    } else {
      row.push_back("-");
      row.push_back("-");
    }
    row.push_back(task.offline
                      ? FormatDouble(task.offline->throughput_sps, 1)
                      : "-");
    row.push_back(FormatDouble(task.energy_per_inference_j * 1e3, 2));
    // Planned activation arena vs the naive per-tensor footprint
    // (DESIGN.md §10); "saved" is the fraction the planner recovered.
    if (task.naive_activation_bytes > 0) {
      row.push_back(FormatBytes(task.peak_arena_bytes));
      row.push_back(FormatPercent(
          1.0 - static_cast<double>(task.peak_arena_bytes) /
                    static_cast<double>(task.naive_activation_bytes),
          1));
    } else {
      row.push_back("-");
      row.push_back("-");
    }
    t.AddRow(std::move(row));
  }
  std::string out = t.Render();

  // Latency distribution: the paper's headline metric is the 90th
  // percentile, but tail behaviour (p97/p99) distinguishes thermally
  // stable chipsets from ones coasting on burst clocks.  One sort per
  // task via Percentiles.
  bool any_latencies = false;
  for (const TaskRunResult& task : result.tasks)
    any_latencies |=
        task.single_stream && !task.single_stream->latencies_s.empty();
  if (any_latencies) {
    TextTable d("single-stream latency percentiles");
    d.SetHeader({"Task", "p50", "p90", "p97", "p99"});
    constexpr double kPercentiles[] = {50.0, 90.0, 97.0, 99.0};
    for (const TaskRunResult& task : result.tasks) {
      if (!task.single_stream || task.single_stream->latencies_s.empty())
        continue;
      const std::vector<double> p =
          Percentiles(task.single_stream->latencies_s, kPercentiles);
      d.AddRow({task.entry.id, FormatMs(p[0]), FormatMs(p[1]), FormatMs(p[2]),
                FormatMs(p[3])});
    }
    out += "\n";
    out += d.Render();
  }

  // Degraded-run transparency: if anything went wrong anywhere in the
  // submission, the reader sees it next to the scores, not buried in logs.
  bool any_fault = false;
  for (const TaskRunResult& task : result.tasks)
    any_fault |= task.status != TaskStatus::kValid || task.fault_count > 0;
  if (any_fault) {
    TextTable f("fault / degradation summary");
    f.SetHeader({"Task", "Status", "Faults", "Recoveries", "Dropped",
                 "Timed out", "Shed", "Rejected", "Trips", "Attempts",
                 "Detail"});
    for (const TaskRunResult& task : result.tasks) {
      const std::size_t dropped =
          (task.single_stream ? task.single_stream->dropped_count : 0) +
          (task.offline ? task.offline->dropped_count : 0);
      const std::size_t timed_out =
          (task.single_stream ? task.single_stream->timed_out_count : 0) +
          (task.offline ? task.offline->timed_out_count : 0);
      f.AddRow({task.entry.id, std::string(ToString(task.status)),
                std::to_string(task.fault_count),
                std::to_string(task.degradation_count),
                std::to_string(dropped), std::to_string(timed_out),
                std::to_string(task.shed_count),
                std::to_string(task.rejected_count),
                std::to_string(task.breaker_trips),
                std::to_string(task.performance_attempts),
                task.status_detail});
    }
    out += "\n";
    out += f.Render();
  }

  // Static-verification transparency (DESIGN.md §9): diagnostics from the
  // pre-run analysis passes appear next to the scores they gate.
  bool any_lint = false;
  for (const TaskRunResult& task : result.tasks)
    any_lint |= task.lint_error_count > 0 || task.lint_warning_count > 0;
  if (any_lint) {
    TextTable l("static analysis");
    l.SetHeader({"Task", "Errors", "Warnings", "First diagnostic"});
    for (const TaskRunResult& task : result.tasks) {
      std::string first = task.lint_log.substr(0, task.lint_log.find('\n'));
      if (first.size() > 72) first = first.substr(0, 69) + "...";
      l.AddRow({task.entry.id, std::to_string(task.lint_error_count),
                std::to_string(task.lint_warning_count), std::move(first)});
    }
    out += "\n";
    out += l.Render();
  }

  // Transform-stage transparency (DESIGN.md §14): when the verified rewrite
  // pipeline was requested, the report shows per task whether the rewritten
  // graph actually ran, how much smaller it got, and — on fallback — why.
  bool any_transform = false;
  for (const TaskRunResult& task : result.tasks)
    any_transform |= task.transform_requested;
  if (any_transform) {
    TextTable x("graph transforms");
    x.SetHeader({"Task", "Applied", "Rewrites", "Nodes", "Passes / detail"});
    for (const TaskRunResult& task : result.tasks) {
      if (!task.transform_requested) continue;
      std::string tail = task.transform_applied ? task.transform_passes
                                                : task.transform_detail;
      if (tail.size() > 72) tail = tail.substr(0, 69) + "...";
      x.AddRow({task.entry.id, task.transform_applied ? "yes" : "FALLBACK",
                std::to_string(task.transform_rewrites),
                std::to_string(task.transform_nodes_before) + " -> " +
                    std::to_string(task.transform_nodes_after),
                std::move(tail)});
    }
    out += "\n";
    out += x.Render();
  }

  // Tiled-execution transparency (DESIGN.md §15): when tiling was
  // requested, the report shows per task whether the accuracy executors
  // actually ran fused tile segments, how many chains fused, the tile
  // height in effect, and the per-worker slab footprint that replaced the
  // segment interiors' arena share.
  bool any_tiling = false;
  for (const TaskRunResult& task : result.tasks)
    any_tiling |= task.tiling_requested;
  if (any_tiling) {
    TextTable g("tiled execution");
    g.SetHeader({"Task", "Applied", "Segments", "Tile rows", "Slab"});
    for (const TaskRunResult& task : result.tasks) {
      if (!task.tiling_requested) continue;
      // "planned": the plan fused segments (the arena figures above are
      // tile-aware) but no accuracy executor ran, so nothing executed
      // tiled — performance-only runs land here.
      const char* applied = task.tiling_applied    ? "yes"
                            : task.tile_segments > 0 ? "planned"
                                                     : "WHOLE-OP";
      g.AddRow({task.entry.id, applied,
                std::to_string(task.tile_segments),
                task.tile_rows == -1 ? "auto"
                                     : std::to_string(task.tile_rows),
                task.tile_segments > 0 ? FormatBytes(task.tile_slab_bytes)
                                       : "-"});
    }
    out += "\n";
    out += g.Render();
  }

  // Interruption transparency (DESIGN.md §12): a partial run says so in
  // the report body, never silently.  An uninterrupted (or fully resumed)
  // run emits nothing here, keeping resumed reports byte-identical to
  // their uninterrupted baselines.
  if (result.interrupted) {
    out += "\nrun state: interrupted — " +
           std::to_string(result.tasks.size()) + " of " +
           std::to_string(models::SuiteFor(result.version).size()) +
           " suite tasks completed; resume from the journal to finish\n";
  }
  return out;
}

std::string FormatCheckReport(const CheckReport& report) {
  std::ostringstream os;
  os << "submission checker: " << (report.valid ? "VALID" : "INVALID")
     << '\n';
  for (const std::string& p : report.problems) os << "  problem: " << p
                                                  << '\n';
  return os.str();
}

std::string FormatAuditReport(const AuditReport& report) {
  TextTable t(std::string("audit (5% tolerance): ") +
              (report.accepted ? "ACCEPTED" : "REJECTED"));
  t.SetHeader({"Metric", "Submitted", "Reproduced", "Delta", "OK"});
  for (const AuditFinding& f : report.findings) {
    t.AddRow({f.what, FormatDouble(f.submitted, 6),
              FormatDouble(f.reproduced, 6),
              FormatPercent(f.relative_delta, 2),
              f.within_tolerance ? "yes" : "NO"});
  }
  return t.Render();
}

}  // namespace mlpm::harness
