// Tensor shapes.
//
// Vision tensors use NHWC layout (as TFLite does); sequence tensors are
// [seq_len, features].  Shapes are small, value-typed and cheap to copy.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.h"

namespace mlpm::graph {

class TensorShape {
 public:
  TensorShape() = default;
  TensorShape(std::initializer_list<std::int64_t> dims) : dims_(dims) {
    for (auto d : dims_) Expects(d > 0, "shape dims must be positive");
  }
  explicit TensorShape(std::vector<std::int64_t> dims)
      : dims_(std::move(dims)) {
    for (auto d : dims_) Expects(d > 0, "shape dims must be positive");
  }

  [[nodiscard]] std::size_t rank() const { return dims_.size(); }
  [[nodiscard]] std::int64_t dim(std::size_t i) const {
    Expects(i < dims_.size(), "shape dim index out of range");
    return dims_[i];
  }
  [[nodiscard]] const std::vector<std::int64_t>& dims() const { return dims_; }

  // Total element count (1 for a scalar / rank-0 shape).
  [[nodiscard]] std::int64_t elements() const {
    std::int64_t n = 1;
    for (auto d : dims_) n *= d;
    return n;
  }

  // NHWC accessors; valid only for rank-4 shapes.
  [[nodiscard]] std::int64_t batch() const { return dim4(0); }
  [[nodiscard]] std::int64_t height() const { return dim4(1); }
  [[nodiscard]] std::int64_t width() const { return dim4(2); }
  [[nodiscard]] std::int64_t channels() const { return dim4(3); }

  [[nodiscard]] bool operator==(const TensorShape& o) const {
    return dims_ == o.dims_;
  }

  [[nodiscard]] std::string ToString() const;

 private:
  [[nodiscard]] std::int64_t dim4(std::size_t i) const {
    Expects(dims_.size() == 4, "NHWC accessor on non rank-4 shape");
    return dims_[i];
  }
  std::vector<std::int64_t> dims_;
};

}  // namespace mlpm::graph
