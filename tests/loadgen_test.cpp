// Tests for the LoadGen: scenario run rules, seeded sampling, accuracy
// mode, clock behavior, the structured log, and run-rule conformance as
// observed through the trace recorder (issue discipline, phase-mark order,
// query async spans).
#include <gtest/gtest.h>

#include "core/dataset_qsl.h"
#include "core/loadgen.h"
#include "core/logging.h"
#include "obs/trace.h"
#include "obs/trace_check.h"

namespace mlpm::loadgen {
namespace {

// A trivial in-memory QSL with `n` samples.
class FakeQsl final : public QuerySampleLibrary {
 public:
  explicit FakeQsl(std::size_t n, std::size_t perf_count = 0)
      : n_(n), perf_(perf_count == 0 ? n : perf_count) {}
  [[nodiscard]] std::string_view name() const override { return "fake_qsl"; }
  [[nodiscard]] std::size_t TotalSampleCount() const override { return n_; }
  [[nodiscard]] std::size_t PerformanceSampleCount() const override {
    return perf_;
  }
  void LoadSamplesToRam(std::span<const std::size_t> idx) override {
    loaded_ += idx.size();
  }
  void UnloadSamplesFromRam(std::span<const std::size_t> idx) override {
    unloaded_ += idx.size();
  }
  std::size_t loaded_ = 0, unloaded_ = 0;

 private:
  std::size_t n_, perf_;
};

// SUT with a fixed simulated latency per query, driven by a VirtualClock.
class FixedLatencySut final : public SystemUnderTest {
 public:
  FixedLatencySut(VirtualClock& clock, double latency_s)
      : clock_(clock), latency_s_(latency_s) {}
  [[nodiscard]] std::string_view name() const override { return "fixed"; }
  void IssueQuery(std::span<const QuerySample> samples,
                  ResponseSink& sink) override {
    for (const QuerySample& s : samples) {
      clock_.Advance(Seconds{latency_s_});
      seen_indices_.push_back(s.index);
      sink.Complete(QuerySampleResponse{s.id, {}});
      ++issued_;
    }
  }
  std::size_t issued_ = 0;
  std::vector<std::size_t> seen_indices_;

 private:
  VirtualClock& clock_;
  double latency_s_;
};

TestSettings FastSettings() {
  TestSettings s;
  s.min_query_count = 32;
  s.min_duration = Seconds{0.5};
  s.offline_sample_count = 100;
  return s;
}

TEST(Clock, VirtualAdvances) {
  VirtualClock c;
  EXPECT_EQ(c.Now().count(), 0.0);
  c.Advance(Seconds{1.5});
  EXPECT_DOUBLE_EQ(c.Now().count(), 1.5);
  c.AdvanceTo(Seconds{2.0});
  EXPECT_DOUBLE_EQ(c.Now().count(), 2.0);
  EXPECT_THROW(c.AdvanceTo(Seconds{1.0}), CheckError);
  EXPECT_THROW(c.Advance(Seconds{-0.1}), CheckError);
}

TEST(Clock, RealClockIsMonotonic) {
  RealClock c;
  const Seconds a = c.Now();
  const Seconds b = c.Now();
  EXPECT_GE(b.count(), a.count());
}

TEST(LoadGen, SingleStreamMeetsQueryFloor) {
  VirtualClock clock;
  FixedLatencySut sut(clock, 0.001);  // 1 ms -> duration floor dominates
  FakeQsl qsl(16);
  TestSettings s = FastSettings();
  const TestResult r = RunTest(sut, qsl, s, clock);
  // 0.5 s at 1 ms/query = 500 queries > 32 floor.
  EXPECT_GE(r.sample_count, 500u);
  EXPECT_TRUE(r.min_query_count_met);
  EXPECT_TRUE(r.min_duration_met);
}

TEST(LoadGen, SingleStreamMeetsDurationFloor) {
  VirtualClock clock;
  FixedLatencySut sut(clock, 0.1);  // slow: query floor dominates
  FakeQsl qsl(16);
  TestSettings s = FastSettings();
  const TestResult r = RunTest(sut, qsl, s, clock);
  EXPECT_EQ(r.sample_count, 32u);
  EXPECT_GE(r.duration_s, 0.5);
}

TEST(LoadGen, SingleStreamPercentileMatchesFixedLatency) {
  VirtualClock clock;
  FixedLatencySut sut(clock, 0.004);
  FakeQsl qsl(16);
  const TestResult r = RunTest(sut, qsl, FastSettings(), clock);
  EXPECT_NEAR(r.percentile_latency_s, 0.004, 1e-9);
  EXPECT_NEAR(r.mean_latency_s, 0.004, 1e-9);
  EXPECT_NEAR(r.throughput_sps, 250.0, 1.0);
}

TEST(LoadGen, SampleSelectionIsSeededAndReproducible) {
  const auto run = [](std::uint64_t seed) {
    VirtualClock clock;
    FixedLatencySut sut(clock, 0.01);
    FakeQsl qsl(16);
    TestSettings s = FastSettings();
    s.seed = seed;
    (void)RunTest(sut, qsl, s, clock);
    return sut.seen_indices_;
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(2));
}

TEST(LoadGen, SampleIndicesComeFromPerformanceSet) {
  VirtualClock clock;
  FixedLatencySut sut(clock, 0.01);
  FakeQsl qsl(100, /*perf_count=*/8);
  const TestResult r = RunTest(sut, qsl, FastSettings(), clock);
  (void)r;
  for (std::size_t idx : sut.seen_indices_) EXPECT_LT(idx, 8u);
}

TEST(LoadGen, OfflineIssuesFullBurst) {
  VirtualClock clock;
  FixedLatencySut sut(clock, 0.001);
  FakeQsl qsl(16);
  TestSettings s = FastSettings();
  s.scenario = TestScenario::kOffline;
  const TestResult r = RunTest(sut, qsl, s, clock);
  EXPECT_EQ(r.sample_count, 100u);
  EXPECT_NEAR(r.throughput_sps, 1000.0, 10.0);
}

TEST(LoadGen, QslLoadUnloadBalanced) {
  VirtualClock clock;
  FixedLatencySut sut(clock, 0.01);
  FakeQsl qsl(16);
  (void)RunTest(sut, qsl, FastSettings(), clock);
  EXPECT_EQ(qsl.loaded_, qsl.unloaded_);
  EXPECT_GT(qsl.loaded_, 0u);
}

TEST(LoadGen, AccuracyModeCoversWholeDatasetInOrder) {
  VirtualClock clock;
  FixedLatencySut sut(clock, 0.001);
  FakeQsl qsl(24);
  TestSettings s = FastSettings();
  s.mode = TestMode::kAccuracyOnly;
  const TestResult r = RunTest(sut, qsl, s, clock);
  EXPECT_EQ(r.sample_count, 24u);
  ASSERT_EQ(sut.seen_indices_.size(), 24u);
  for (std::size_t i = 0; i < 24; ++i) EXPECT_EQ(sut.seen_indices_[i], i);
  EXPECT_EQ(r.accuracy_outputs.size(), 24u);
}

TEST(LoadGen, EmptyQslRejected) {
  VirtualClock clock;
  FixedLatencySut sut(clock, 0.001);
  FakeQsl qsl(0);
  EXPECT_THROW((void)RunTest(sut, qsl, FastSettings(), clock), CheckError);
}

TEST(LoadGen, LogRecordsIssueAndCompletePairs) {
  VirtualClock clock;
  FixedLatencySut sut(clock, 0.01);
  FakeQsl qsl(4);
  const TestResult r = RunTest(sut, qsl, FastSettings(), clock);
  std::size_t issues = 0, completes = 0;
  for (const LogEvent& e : r.log.events()) {
    if (e.kind == LogEventKind::kQueryIssued) ++issues;
    else ++completes;
  }
  EXPECT_EQ(issues, r.sample_count);
  EXPECT_EQ(completes, r.sample_count);
}

// A hostile SUT that completes a query twice.
class DoubleCompleteSut final : public SystemUnderTest {
 public:
  explicit DoubleCompleteSut(VirtualClock& clock) : clock_(clock) {}
  [[nodiscard]] std::string_view name() const override { return "evil"; }
  void IssueQuery(std::span<const QuerySample> samples,
                  ResponseSink& sink) override {
    clock_.Advance(Seconds{0.001});
    sink.Complete(QuerySampleResponse{samples[0].id, {}});
    sink.Complete(QuerySampleResponse{samples[0].id, {}});
  }

 private:
  VirtualClock& clock_;
};

TEST(LoadGen, DoubleCompletionCountedNotFatal) {
  VirtualClock clock;
  DoubleCompleteSut sut(clock);
  FakeQsl qsl(4);
  const TestResult r = RunTest(sut, qsl, FastSettings(), clock);
  // Each query completes twice; the repeats are counted and ignored.
  EXPECT_FALSE(r.Errored());
  EXPECT_GT(r.sample_count, 0u);
  EXPECT_EQ(r.duplicate_count, r.sample_count);
  EXPECT_FALSE(r.error_log.empty());
}

// A hostile SUT that completes with an id the LoadGen never issued.
class UnknownIdSut final : public SystemUnderTest {
 public:
  explicit UnknownIdSut(VirtualClock& clock) : clock_(clock) {}
  [[nodiscard]] std::string_view name() const override { return "unknown"; }
  void IssueQuery(std::span<const QuerySample> samples,
                  ResponseSink& sink) override {
    clock_.Advance(Seconds{0.001});
    sink.Complete(QuerySampleResponse{samples[0].id + 100000, {}});
    sink.Complete(QuerySampleResponse{samples[0].id, {}});
  }

 private:
  VirtualClock& clock_;
};

TEST(LoadGen, UnknownCompletionCountedNotFatal) {
  VirtualClock clock;
  UnknownIdSut sut(clock);
  FakeQsl qsl(4);
  const TestResult r = RunTest(sut, qsl, FastSettings(), clock);
  EXPECT_FALSE(r.Errored());
  EXPECT_GT(r.sample_count, 0u);
  EXPECT_EQ(r.unknown_count, r.sample_count);
}

// A hostile SUT that never completes.
class SilentSut final : public SystemUnderTest {
 public:
  [[nodiscard]] std::string_view name() const override { return "silent"; }
  void IssueQuery(std::span<const QuerySample>, ResponseSink&) override {}
};

TEST(LoadGen, SilentSutYieldsErroredResult) {
  VirtualClock clock;
  SilentSut sut;
  FakeQsl qsl(4);
  const TestResult r = RunTest(sut, qsl, FastSettings(), clock);
  EXPECT_TRUE(r.Errored());
  EXPECT_FALSE(r.invalid_reason.empty());
  EXPECT_EQ(r.sample_count, 0u);
}

// An SUT that burns time but drops every k-th completion.
class DroppySut final : public SystemUnderTest {
 public:
  DroppySut(VirtualClock& clock, std::size_t drop_every)
      : clock_(clock), drop_every_(drop_every) {}
  [[nodiscard]] std::string_view name() const override { return "droppy"; }
  void IssueQuery(std::span<const QuerySample> samples,
                  ResponseSink& sink) override {
    for (const QuerySample& s : samples) {
      clock_.Advance(Seconds{0.001});
      if (++count_ % drop_every_ != 0)
        sink.Complete(QuerySampleResponse{s.id, {}});
    }
  }

 private:
  VirtualClock& clock_;
  std::size_t drop_every_;
  std::size_t count_ = 0;
};

TEST(LoadGen, DroppedCompletionsCountedWithoutWatchdog) {
  VirtualClock clock;
  DroppySut sut(clock, 4);  // every 4th sample never completes
  FakeQsl qsl(8);
  const TestResult r = RunTest(sut, qsl, FastSettings(), clock);
  EXPECT_FALSE(r.Errored());
  EXPECT_GT(r.dropped_count, 0u);
  EXPECT_EQ(r.timed_out_count, 0u);
  EXPECT_FALSE(r.error_log.empty());
}

TEST(LoadGen, WatchdogExpiresDroppedCompletions) {
  VirtualClock clock;
  DroppySut sut(clock, 4);
  FakeQsl qsl(8);
  TestSettings s = FastSettings();
  s.query_timeout = Seconds{0.5};  // virtual-clock watchdog armed
  const TestResult r = RunTest(sut, qsl, s, clock);
  EXPECT_FALSE(r.Errored());
  EXPECT_GT(r.timed_out_count, 0u);
  EXPECT_EQ(r.dropped_count, 0u);
}

// A slow SUT against a tight watchdog: completions past the deadline are
// expired rather than scored.
TEST(LoadGen, WatchdogExpiresLateCompletions) {
  VirtualClock clock;
  FixedLatencySut sut(clock, 0.050);  // 50 ms latency
  FakeQsl qsl(8);
  TestSettings s = FastSettings();
  s.min_query_count = 8;
  s.min_duration = Seconds{0.0};
  s.query_timeout = Seconds{0.010};  // 10 ms deadline < 50 ms latency
  const TestResult r = RunTest(sut, qsl, s, clock);
  EXPECT_EQ(r.sample_count, 0u);
  EXPECT_EQ(r.timed_out_count, 8u);
  // Nothing completed in time -> the run is structurally invalid.
  EXPECT_TRUE(r.Errored());
}


// ---- server scenario ----

TEST(LoadGen, ServerLowLoadLatencyNearServiceTime) {
  VirtualClock clock;
  FixedLatencySut sut(clock, 0.001);  // 1 ms service
  FakeQsl qsl(16);
  TestSettings s = FastSettings();
  s.scenario = TestScenario::kServer;
  s.server_target_qps = 10.0;  // utilization 1%
  s.server_query_count = 256;
  s.server_latency_bound = Seconds{0.01};
  const TestResult r = RunTest(sut, qsl, s, clock);
  EXPECT_EQ(r.sample_count, 256u);
  EXPECT_NEAR(r.percentile_latency_s, 0.001, 2e-4);
  EXPECT_TRUE(r.latency_bound_met);
}

TEST(LoadGen, ServerOverloadQueuesAndMissesBound) {
  VirtualClock clock;
  FixedLatencySut sut(clock, 0.001);
  FakeQsl qsl(16);
  TestSettings s = FastSettings();
  s.scenario = TestScenario::kServer;
  s.server_target_qps = 2000.0;  // utilization 2: queue grows unboundedly
  s.server_query_count = 512;
  s.server_latency_bound = Seconds{0.01};
  const TestResult r = RunTest(sut, qsl, s, clock);
  EXPECT_FALSE(r.latency_bound_met);
  EXPECT_GT(r.percentile_latency_s, 0.05);  // long queueing delays
}

TEST(LoadGen, ServerLatencyGrowsWithUtilization) {
  const auto p90_at = [](double qps) {
    VirtualClock clock;
    FixedLatencySut sut(clock, 0.001);
    FakeQsl qsl(16);
    TestSettings s = FastSettings();
    s.scenario = TestScenario::kServer;
    s.server_target_qps = qps;
    s.server_query_count = 1024;
    return RunTest(sut, qsl, s, clock).percentile_latency_s;
  };
  EXPECT_LT(p90_at(100.0), p90_at(800.0));
  EXPECT_LT(p90_at(800.0), p90_at(950.0));
}

TEST(LoadGen, ServerArrivalsAreSeeded) {
  const auto run = [](std::uint64_t seed) {
    VirtualClock clock;
    FixedLatencySut sut(clock, 0.0005);
    FakeQsl qsl(16);
    TestSettings s = FastSettings();
    s.scenario = TestScenario::kServer;
    s.server_target_qps = 500.0;
    s.server_query_count = 128;
    s.seed = seed;
    return RunTest(sut, qsl, s, clock).percentile_latency_s;
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(2));
}

TEST(LoadGen, FindMaxServerQpsBracketsSaturation) {
  // Deterministic service at 1 ms: saturation at ~1000 QPS; with queueing
  // at the 90th percentile the passing rate lands somewhat below that.
  const auto run_at = [](double qps) {
    VirtualClock clock;
    FixedLatencySut sut(clock, 0.001);
    FakeQsl qsl(16);
    TestSettings s = FastSettings();
    s.scenario = TestScenario::kServer;
    s.server_target_qps = qps;
    s.server_query_count = 2048;
    s.server_latency_bound = Seconds{0.01};
    return RunTest(sut, qsl, s, clock);
  };
  const double max_qps = FindMaxServerQps(run_at, 50.0, 5000.0, 10);
  EXPECT_GT(max_qps, 300.0);
  EXPECT_LT(max_qps, 1100.0);
}

TEST(LoadGen, FindMaxServerQpsZeroWhenLowFails) {
  const auto run_at = [](double qps) {
    VirtualClock clock;
    FixedLatencySut sut(clock, 1.0);  // 1 s service: hopeless
    FakeQsl qsl(4);
    TestSettings s = FastSettings();
    s.scenario = TestScenario::kServer;
    s.server_target_qps = qps;
    s.server_query_count = 16;
    s.server_latency_bound = Seconds{0.01};
    return RunTest(sut, qsl, s, clock);
  };
  EXPECT_EQ(FindMaxServerQps(run_at, 1.0, 100.0, 4), 0.0);
}

TEST(LoadGen, FindMaxServerQpsStopsOnErroredProbe) {
  // An errored run (nothing completed) must not be mistaken for "bound
  // met": the search gives up immediately instead of converging on
  // garbage.
  int probes = 0;
  const auto run_at = [&probes](double) {
    ++probes;
    TestResult r;
    r.invalid_reason = "SUT stalled";
    r.latency_bound_met = false;
    return r;
  };
  EXPECT_EQ(FindMaxServerQps(run_at, 1.0, 100.0, 8), 0.0);
  EXPECT_EQ(probes, 1);  // the low-end probe errored; no binary search ran
}

TEST(LoadGen, ErroredRunNeverMeetsLatencyBound) {
  // An empty latency vector must not satisfy the server bound via a 0.0
  // percentile.
  VirtualClock clock;
  SilentSut sut;
  FakeQsl qsl(4);
  TestSettings s = FastSettings();
  s.scenario = TestScenario::kServer;
  s.server_target_qps = 10.0;
  s.server_query_count = 16;
  s.server_latency_bound = Seconds{0.01};
  const TestResult r = RunTest(sut, qsl, s, clock);
  EXPECT_TRUE(r.Errored());
  EXPECT_FALSE(r.latency_bound_met);
}

// ---- server admission control (DESIGN.md §12) ----

// Overload settings shared by the admission-control tests: offered load is
// 2x the SUT's capacity (2000 QPS against a 1 ms service time).
TestSettings OverloadSettings() {
  TestSettings s;
  s.scenario = TestScenario::kServer;
  s.server_target_qps = 2000.0;
  s.server_query_count = 512;
  s.server_latency_bound = Seconds{0.01};
  s.offline_sample_count = 100;
  return s;
}

TEST(LoadGen, ServerAdmissionControlShedsUnderOverload) {
  VirtualClock clock;
  FixedLatencySut sut(clock, 0.001);
  FakeQsl qsl(16);
  TestSettings s = OverloadSettings();
  s.server_max_queue_depth = 8;
  const TestResult r = RunTest(sut, qsl, s, clock);
  // Every offered query is accounted for: completed or shed.
  EXPECT_GT(r.shed_count, 0u);
  EXPECT_EQ(r.sample_count + r.shed_count, 512u);
  // Accepted queries wait behind at most `depth` in-flight queries:
  // 8 x 1 ms < the 10 ms bound, so the accepted-query p90 holds even
  // though the same offered load without shedding misses it badly
  // (ServerOverloadQueuesAndMissesBound above).
  EXPECT_TRUE(r.latency_bound_met);
  EXPECT_LT(r.percentile_latency_s, 0.01);
  // ...but refusing ~half the offered load blows the default 10% shed
  // budget, so the run as a whole is still not a passing server run.
  EXPECT_FALSE(r.shed_bound_met);
}

TEST(LoadGen, ServerSheddingIsDeterministic) {
  const auto run = [](std::uint64_t seed) {
    VirtualClock clock;
    FixedLatencySut sut(clock, 0.001);
    FakeQsl qsl(16);
    TestSettings s = OverloadSettings();
    s.server_max_queue_depth = 8;
    s.seed = seed;
    return RunTest(sut, qsl, s, clock);
  };
  const TestResult a = run(1), b = run(1), c = run(2);
  EXPECT_EQ(a.shed_count, b.shed_count);
  EXPECT_EQ(a.sample_count, b.sample_count);
  EXPECT_EQ(a.percentile_latency_s, b.percentile_latency_s);
  // A different seed sheds a different arrival pattern.
  EXPECT_NE(a.percentile_latency_s, c.percentile_latency_s);
}

TEST(LoadGen, ServerShedBudgetIsConfigurable) {
  VirtualClock clock;
  FixedLatencySut sut(clock, 0.001);
  FakeQsl qsl(16);
  TestSettings s = OverloadSettings();
  s.server_max_queue_depth = 8;
  s.server_max_shed_fraction = 0.6;  // accept heavy shedding explicitly
  const TestResult r = RunTest(sut, qsl, s, clock);
  EXPECT_GT(r.shed_count, 0u);
  EXPECT_TRUE(r.shed_bound_met);
}

TEST(LoadGen, ServerUnboundedQueueNeverSheds) {
  VirtualClock clock;
  FixedLatencySut sut(clock, 0.001);
  FakeQsl qsl(16);
  const TestSettings s = OverloadSettings();  // depth 0 = disabled
  const TestResult r = RunTest(sut, qsl, s, clock);
  EXPECT_EQ(r.shed_count, 0u);
  EXPECT_TRUE(r.shed_bound_met);
}

TEST(LoadGen, ServerSheddingDoesNotPerturbSampleSelection) {
  // The sample index is drawn before the shed decision, so the accepted
  // queries see the same sample sequence whether or not shedding is on:
  // the k-th *issued* query under shedding matches some prefix-preserving
  // subsequence of the unshedded run's samples.
  const auto seen = [](std::size_t depth) {
    VirtualClock clock;
    FixedLatencySut sut(clock, 0.001);
    FakeQsl qsl(16);
    TestSettings s = OverloadSettings();
    s.server_max_queue_depth = depth;
    RunTest(sut, qsl, s, clock);
    return sut.seen_indices_;
  };
  const std::vector<std::size_t> unshed = seen(0);
  const std::vector<std::size_t> shed = seen(8);
  ASSERT_EQ(unshed.size(), 512u);
  ASSERT_LT(shed.size(), unshed.size());
  // Every accepted query's sample matches the unshedded run at the same
  // offered-query position; verify via subsequence containment.
  std::size_t j = 0;
  for (std::size_t idx : shed) {
    while (j < unshed.size() && unshed[j] != idx) ++j;
    ASSERT_LT(j, unshed.size()) << "sample stream diverged under shedding";
    ++j;
  }
}

TEST(LoadGen, ShedEventsRoundTripThroughTheLog) {
  VirtualClock clock;
  FixedLatencySut sut(clock, 0.001);
  FakeQsl qsl(16);
  TestSettings s = OverloadSettings();
  s.server_max_queue_depth = 8;
  const TestResult r = RunTest(sut, qsl, s, clock);
  ASSERT_GT(r.shed_count, 0u);

  const std::string serialized = r.log.Serialize();
  const TestLog parsed = TestLog::Parse(serialized);
  EXPECT_EQ(parsed.Serialize(), serialized);
  std::size_t shed_events = 0;
  for (const LogEvent& e : parsed.events())
    shed_events += e.kind == LogEventKind::kQueryShed ? 1 : 0;
  EXPECT_EQ(shed_events, r.shed_count);
  ASSERT_NE(parsed.FieldOrNull("result_shed_count"), nullptr);
  EXPECT_EQ(*parsed.FieldOrNull("result_shed_count"),
            std::to_string(r.shed_count));
}


// ---- multi-stream scenario ----

TEST(LoadGen, MultiStreamIssuesNSamplesPerQuery) {
  VirtualClock clock;
  FixedLatencySut sut(clock, 0.0005);
  FakeQsl qsl(16);
  TestSettings s = FastSettings();
  s.scenario = TestScenario::kMultiStream;
  s.multistream_samples_per_query = 4;
  s.multistream_query_count = 32;
  s.multistream_interval = Seconds{0.01};
  const TestResult r = RunTest(sut, qsl, s, clock);
  EXPECT_EQ(r.sample_count, 128u);
  EXPECT_EQ(r.latencies_s.size(), 32u);  // per-query metric
  // 4 samples x 0.5 ms each, back to back = 2 ms per query.
  EXPECT_NEAR(r.percentile_latency_s, 0.002, 5e-4);
  EXPECT_TRUE(r.latency_bound_met);
}

TEST(LoadGen, MultiStreamOverflowDetected) {
  VirtualClock clock;
  FixedLatencySut sut(clock, 0.004);
  FakeQsl qsl(16);
  TestSettings s = FastSettings();
  s.scenario = TestScenario::kMultiStream;
  s.multistream_samples_per_query = 4;  // 16 ms of work per 10 ms frame
  s.multistream_query_count = 16;
  s.multistream_interval = Seconds{0.01};
  const TestResult r = RunTest(sut, qsl, s, clock);
  EXPECT_FALSE(r.latency_bound_met);
  // Backlog grows: the last query waits behind earlier ones.
  EXPECT_GT(r.latencies_s.back(), r.latencies_s.front());
}

TEST(LoadGen, MultiStreamQueriesArePaced) {
  VirtualClock clock;
  FixedLatencySut sut(clock, 0.0001);  // fast: device idles between ticks
  FakeQsl qsl(16);
  TestSettings s = FastSettings();
  s.scenario = TestScenario::kMultiStream;
  s.multistream_samples_per_query = 2;
  s.multistream_query_count = 10;
  s.multistream_interval = Seconds{0.02};
  const TestResult r = RunTest(sut, qsl, s, clock);
  // Total runtime spans the full 9 intervals even though work is tiny.
  EXPECT_GE(clock.Now().count(), 0.02 * 9);
  EXPECT_TRUE(r.latency_bound_met);
}


TEST(DatasetQslContract, UnstagedSampleAccessThrows) {
  // Protocol violation guard: an SUT reading a sample the LoadGen never
  // staged must fail loudly.
  class OneSample final : public mlpm::datasets::TaskDataset {
   public:
    [[nodiscard]] std::size_t size() const override { return 2; }
    [[nodiscard]] std::vector<mlpm::infer::Tensor> InputsFor(
        std::size_t) const override {
      std::vector<mlpm::infer::Tensor> v;
      v.emplace_back(mlpm::graph::TensorShape({1}));
      return v;
    }
    [[nodiscard]] double ScoreOutputs(
        std::span<const std::vector<mlpm::infer::Tensor>>) const override {
      return 0.0;
    }
    [[nodiscard]] std::string_view metric_name() const override {
      return "none";
    }
    [[nodiscard]] std::vector<mlpm::infer::Tensor> CalibrationInputsFor(
        std::size_t index) const override {
      return InputsFor(index);
    }
  } dataset;
  DatasetQsl qsl(dataset);
  const std::size_t zero = 0;
  qsl.LoadSamplesToRam({&zero, 1});
  EXPECT_NO_THROW((void)qsl.Loaded(0));
  EXPECT_THROW((void)qsl.Loaded(1), CheckError);
  qsl.UnloadSamplesFromRam({&zero, 1});
  EXPECT_THROW((void)qsl.Loaded(0), CheckError);
}

// ---- logging ----

TEST(TestLog, SerializeParseRoundTrip) {
  TestLog log;
  log.SetField("seed", "12345");
  log.SetField("scenario", "single_stream");
  log.Record(LogEventKind::kQueryIssued, 1, Seconds{0.5});
  log.Record(LogEventKind::kQueryCompleted, 1, Seconds{0.75});
  const TestLog parsed = TestLog::Parse(log.Serialize());
  ASSERT_NE(parsed.FieldOrNull("seed"), nullptr);
  EXPECT_EQ(*parsed.FieldOrNull("seed"), "12345");
  ASSERT_EQ(parsed.events().size(), 2u);
  EXPECT_EQ(parsed.events()[0].kind, LogEventKind::kQueryIssued);
  EXPECT_EQ(parsed.events()[1].query_id, 1u);
  EXPECT_NEAR(parsed.events()[1].timestamp.count(), 0.75, 1e-9);
}

TEST(TestLog, ParseRejectsGarbage) {
  EXPECT_THROW((void)TestLog::Parse("not a log"), CheckError);
  EXPECT_THROW((void)TestLog::Parse(""), CheckError);
  EXPECT_THROW((void)TestLog::Parse("mlpm_loadgen_log v1\nbogus line here"),
               CheckError);
}

TEST(TestLog, FieldKeysValidated) {
  TestLog log;
  EXPECT_THROW(log.SetField("bad key", "v"), CheckError);
  EXPECT_THROW(log.SetField("key", "multi\nline"), CheckError);
}

TEST(TestLog, TimestampPrecisionSurvivesRoundTrip) {
  TestLog log;
  log.Record(LogEventKind::kQueryIssued, 7, Seconds{1.234567891});
  const TestLog parsed = TestLog::Parse(log.Serialize());
  EXPECT_NEAR(parsed.events()[0].timestamp.count(), 1.234567891, 1e-8);
}

// ---- conformance: run rules observed through the log and the trace ----

TEST(LoadGenConformance, SingleStreamIssuesNextQueryOnlyAfterCompletion) {
  VirtualClock clock;
  FixedLatencySut sut(clock, 0.002);
  FakeQsl qsl(16);
  const TestResult r = RunTest(sut, qsl, FastSettings(), clock);
  ASSERT_FALSE(r.Errored());
  // The raw event stream must strictly alternate issue(id) -> complete(id):
  // single-stream never has two queries in flight (paper §4.2).
  const std::vector<LogEvent>& events = r.log.events();
  ASSERT_FALSE(events.empty());
  ASSERT_EQ(events.size() % 2, 0u);
  for (std::size_t i = 0; i < events.size(); i += 2) {
    EXPECT_EQ(events[i].kind, LogEventKind::kQueryIssued);
    EXPECT_EQ(events[i + 1].kind, LogEventKind::kQueryCompleted);
    EXPECT_EQ(events[i].query_id, events[i + 1].query_id);
    EXPECT_GE(events[i + 1].timestamp.count(), events[i].timestamp.count());
    if (i + 2 < events.size()) {
      EXPECT_GE(events[i + 2].timestamp.count(),
                events[i + 1].timestamp.count())
          << "next query issued before the previous one completed";
    }
  }
}

TEST(LoadGenConformance, OfflineIssuesEveryQueryAtTimeZero) {
  VirtualClock clock;
  FixedLatencySut sut(clock, 0.001);
  FakeQsl qsl(16);
  TestSettings s = FastSettings();
  s.scenario = TestScenario::kOffline;
  const TestResult r = RunTest(sut, qsl, s, clock);
  ASSERT_FALSE(r.Errored());
  std::size_t issued = 0;
  for (const LogEvent& e : r.log.events())
    if (e.kind == LogEventKind::kQueryIssued) {
      ++issued;
      EXPECT_DOUBLE_EQ(e.timestamp.count(), 0.0)
          << "offline burst must be issued up front, before any work runs";
    }
  EXPECT_EQ(issued, s.offline_sample_count);
}

TEST(LoadGenConformance, QueryFloorAndDurationFloorBothHonored) {
  // Query floor dominating: 200 queries x 2 ms = 0.4 s > 0.2 s duration
  // floor -> exactly the query floor runs.
  {
    VirtualClock clock;
    FixedLatencySut sut(clock, 0.002);
    FakeQsl qsl(16);
    TestSettings s = FastSettings();
    s.min_query_count = 200;
    s.min_duration = Seconds{0.2};
    const TestResult r = RunTest(sut, qsl, s, clock);
    EXPECT_EQ(r.sample_count, 200u);
    EXPECT_TRUE(r.min_query_count_met);
    EXPECT_TRUE(r.min_duration_met);
    EXPECT_GE(r.duration_s, 0.2);
  }
  // Duration floor dominating: the run must keep issuing past the query
  // floor until the elapsed floor is met.
  {
    VirtualClock clock;
    FixedLatencySut sut(clock, 0.002);
    FakeQsl qsl(16);
    TestSettings s = FastSettings();
    s.min_query_count = 10;
    s.min_duration = Seconds{0.3};
    const TestResult r = RunTest(sut, qsl, s, clock);
    // 0.3 s / 2 ms = 150, +1 tolerance for clock rounding at the boundary.
    EXPECT_GE(r.sample_count, 150u);
    EXPECT_LE(r.sample_count, 151u);
    EXPECT_GE(r.duration_s, 0.3);
    EXPECT_TRUE(r.min_query_count_met);
    EXPECT_TRUE(r.min_duration_met);
  }
}

// Phase-mark names of one traced run, in timeline order.
std::vector<std::string> TracedPhases(TestScenario scenario, TestMode mode) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Enable();
  VirtualClock clock;
  FixedLatencySut sut(clock, 0.001);
  FakeQsl qsl(16);
  TestSettings s = FastSettings();
  s.scenario = scenario;
  s.mode = mode;
  if (scenario == TestScenario::kServer) {
    s.server_target_qps = 100.0;
    s.server_query_count = 32;
  }
  if (scenario == TestScenario::kMultiStream) {
    s.multistream_samples_per_query = 2;
    s.multistream_query_count = 8;
    s.multistream_interval = Seconds{0.01};
  }
  (void)RunTest(sut, qsl, s, clock);
  rec.Disable();
  std::vector<std::string> names;
  for (const obs::TraceEvent& e : rec.Snapshot())
    if (e.domain == obs::Domain::kLoadGen && e.category == "phase")
      names.push_back(e.name);
  return names;
}

TEST(LoadGenConformance, PhaseMarksAppearInOrderForEveryScenario) {
  const std::vector<std::string> want = {"phase:load_samples", "phase:issue",
                                        "phase:flush", "phase:done"};
  for (const TestScenario scenario :
       {TestScenario::kSingleStream, TestScenario::kOffline,
        TestScenario::kServer, TestScenario::kMultiStream})
    EXPECT_EQ(TracedPhases(scenario, TestMode::kPerformanceOnly), want)
        << "scenario " << ToString(scenario);
  EXPECT_EQ(TracedPhases(TestScenario::kSingleStream, TestMode::kAccuracyOnly),
            want);
}

TEST(LoadGenConformance, QueryAsyncSpansPairUpAndValidate) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Enable();
  VirtualClock clock;
  FixedLatencySut sut(clock, 0.002);
  FakeQsl qsl(16);
  const TestResult r = RunTest(sut, qsl, FastSettings(), clock);
  rec.Disable();
  ASSERT_FALSE(r.Errored());

  std::size_t begins = 0, ends = 0;
  for (const obs::TraceEvent& e : rec.Snapshot()) {
    if (e.category != "query") continue;
    begins += e.phase == obs::EventPhase::kAsyncBegin;
    ends += e.phase == obs::EventPhase::kAsyncEnd;
  }
  EXPECT_EQ(begins, r.sample_count);
  EXPECT_EQ(ends, r.sample_count);

  obs::TraceCheckStats stats;
  const std::vector<std::string> problems =
      obs::ValidateChromeTrace(rec.ToChromeJson(), &stats);
  for (const std::string& p : problems) ADD_FAILURE() << p;
  EXPECT_EQ(stats.unmatched_async_begins, 0u);
}

TEST(LoadGenConformance, DroppedQueriesLeaveUnmatchedAsyncBegins) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Enable();
  VirtualClock clock;
  DroppySut sut(clock, 4);  // every 4th completion never arrives
  FakeQsl qsl(8);
  const TestResult r = RunTest(sut, qsl, FastSettings(), clock);
  rec.Disable();
  ASSERT_GT(r.dropped_count, 0u);

  obs::TraceCheckStats stats;
  const std::vector<std::string> problems =
      obs::ValidateChromeTrace(rec.ToChromeJson(), &stats);
  for (const std::string& p : problems) ADD_FAILURE() << p;
  EXPECT_EQ(stats.unmatched_async_begins, r.dropped_count);
}

TEST(OfficialSeed, MatchesSpec) {
  EXPECT_EQ(kOfficialSeed, 0x4D4C50657266ULL);
  TestSettings s;
  EXPECT_EQ(s.seed, kOfficialSeed);
  EXPECT_EQ(s.min_query_count, 1024u);
  EXPECT_DOUBLE_EQ(s.min_duration.count(), 60.0);
  EXPECT_EQ(s.offline_sample_count, 24'576u);
  EXPECT_DOUBLE_EQ(s.latency_percentile, 90.0);
}

}  // namespace
}  // namespace mlpm::loadgen
