#include "quant/rules.h"

#include <algorithm>
#include <unordered_set>

namespace mlpm::quant {

LegalityReport CheckModelEquivalence(const graph::Graph& reference,
                                     const graph::Graph& submitted) {
  LegalityReport r;
  if (reference.nodes().size() != submitted.nodes().size())
    r.Violate("node count differs from frozen reference (" +
              std::to_string(reference.nodes().size()) + " vs " +
              std::to_string(submitted.nodes().size()) + ")");
  if (reference.ParameterCount() != submitted.ParameterCount())
    r.Violate("parameter count differs from frozen reference");
  if (reference.StructuralFingerprint() != submitted.StructuralFingerprint())
    r.Violate("structural fingerprint mismatch (pruning / op substitution)");
  return r;
}

LegalityReport CheckCalibrationSet(std::span<const std::size_t> approved,
                                   std::span<const std::size_t> used) {
  LegalityReport r;
  const std::unordered_set<std::size_t> ok(approved.begin(), approved.end());
  for (std::size_t idx : used) {
    if (!ok.contains(idx))
      r.Violate("calibration sample " + std::to_string(idx) +
                " is not in the approved calibration set");
  }
  return r;
}

}  // namespace mlpm::quant
