// Tests for PTQ calibration, fake quantization and the submission-rule
// legality checks (paper §5.1).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "infer/executor.h"
#include "infer/weights.h"
#include "quant/calibration.h"
#include "quant/rules.h"

namespace mlpm::quant {
namespace {

using graph::Activation;
using graph::GraphBuilder;
using graph::TensorId;
using graph::TensorShape;
using infer::Tensor;

graph::Graph TinyNet() {
  GraphBuilder b("tiny");
  TensorId x = b.Input("in", {1, 4, 4, 2});
  x = b.Conv2d(x, 4, 3, 1, Activation::kRelu);
  x = b.GlobalAvgPool(x);
  x = b.Reshape(x, {1, 4});
  x = b.FullyConnected(x, 3);
  b.MarkOutput(x);
  return std::move(b).Build();
}

std::vector<CalibrationSample> MakeSamples(const graph::Graph& g, int n,
                                           std::uint64_t seed) {
  std::vector<CalibrationSample> samples;
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    Tensor t(g.tensor(g.input_ids()[0]).shape);
    for (auto& v : t.values())
      v = static_cast<float>(rng.NextUniform(-1.0, 1.0));
    CalibrationSample s;
    s.push_back(std::move(t));
    samples.push_back(std::move(s));
  }
  return samples;
}

TEST(FakeQuant, ZeroIsExactlyRepresentable) {
  const infer::TensorRange r{-0.37f, 1.11f};
  EXPECT_EQ(infer::FakeQuantActivation(0.0f, r, 8), 0.0f);
}

TEST(FakeQuant, DegenerateRangePassesThrough) {
  const infer::TensorRange r{0.0f, 0.0f};
  EXPECT_EQ(infer::FakeQuantActivation(1.234f, r, 8), 1.234f);
}

TEST(FakeQuant, ClampsOutOfRangeValues) {
  const infer::TensorRange r{0.0f, 1.0f};
  EXPECT_LE(infer::FakeQuantActivation(5.0f, r, 8), 1.0f + 1e-4f);
  EXPECT_GE(infer::FakeQuantActivation(-5.0f, r, 8), -1e-4f);
}

TEST(FakeQuant, ErrorBoundedByHalfStep) {
  const infer::TensorRange r{-2.0f, 2.0f};
  const float step = 4.0f / 255.0f;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const float v = static_cast<float>(rng.NextUniform(-2.0, 2.0));
    const float q = infer::FakeQuantActivation(v, r, 8);
    EXPECT_LE(std::abs(q - v), step / 2 + 1e-6f);
  }
}

TEST(FakeQuant, MoreBitsLessError) {
  const infer::TensorRange r{-1.0f, 1.0f};
  Rng rng(6);
  double err8 = 0.0, err4 = 0.0;
  for (int i = 0; i < 500; ++i) {
    const float v = static_cast<float>(rng.NextUniform(-1.0, 1.0));
    err8 += std::abs(infer::FakeQuantActivation(v, r, 8) - v);
    err4 += std::abs(infer::FakeQuantActivation(v, r, 4) - v);
  }
  EXPECT_LT(err8, err4);
}

TEST(Calibration, RecordsRangesForAllActivations) {
  const graph::Graph g = TinyNet();
  const infer::WeightStore w = infer::InitializeWeights(g, 3);
  const auto samples = MakeSamples(g, 8, 11);
  const infer::QuantParams qp = CalibratePtq(g, w, samples);
  // Every node output should have a range (4 nodes).
  EXPECT_EQ(qp.activation_ranges.size(), g.nodes().size());
}

TEST(Calibration, MinMaxCoversObservedValues) {
  const graph::Graph g = TinyNet();
  const infer::WeightStore w = infer::InitializeWeights(g, 3);
  const auto samples = MakeSamples(g, 8, 11);
  const infer::QuantParams qp = CalibratePtq(g, w, samples);

  // Re-run one calibration sample and verify outputs fall inside ranges.
  const infer::Executor fp32(g, w);
  (void)fp32.Run(samples[0], [&](graph::TensorId id, const Tensor& t) {
    const auto it = qp.activation_ranges.find(id);
    ASSERT_NE(it, qp.activation_ranges.end());
    for (float v : t.values()) {
      EXPECT_GE(v, it->second.min - 1e-6f);
      EXPECT_LE(v, it->second.max + 1e-6f);
    }
  });
}

TEST(Calibration, MoreSamplesWidenMinMaxRanges) {
  const graph::Graph g = TinyNet();
  const infer::WeightStore w = infer::InitializeWeights(g, 3);
  const auto few = MakeSamples(g, 2, 11);
  const auto many = MakeSamples(g, 32, 11);
  const infer::QuantParams qa = CalibratePtq(g, w, few);
  const infer::QuantParams qb = CalibratePtq(g, w, many);
  for (const auto& [id, ra] : qa.activation_ranges) {
    const auto& rb = qb.activation_ranges.at(id);
    EXPECT_LE(rb.min, ra.min + 1e-6f);
    EXPECT_GE(rb.max, ra.max - 1e-6f);
  }
}

TEST(Calibration, MovingAverageNarrowerThanMinMax) {
  const graph::Graph g = TinyNet();
  const infer::WeightStore w = infer::InitializeWeights(g, 3);
  const auto samples = MakeSamples(g, 32, 11);
  const infer::QuantParams mm = CalibratePtq(g, w, samples);
  CalibrationConfig cc;
  cc.method = RangeMethod::kMovingAverage;
  const infer::QuantParams ema = CalibratePtq(g, w, samples, cc);
  double mm_width = 0.0, ema_width = 0.0;
  for (const auto& [id, r] : mm.activation_ranges) {
    mm_width += r.max - r.min;
    const auto& e = ema.activation_ranges.at(id);
    ema_width += e.max - e.min;
  }
  EXPECT_LE(ema_width, mm_width + 1e-9);
}

TEST(Calibration, EmptySampleSetRejected) {
  const graph::Graph g = TinyNet();
  const infer::WeightStore w = infer::InitializeWeights(g, 3);
  const std::vector<CalibrationSample> empty;
  EXPECT_THROW((void)CalibratePtq(g, w, empty), CheckError);
}

TEST(Calibration, Int8OutputsDifferFromFp32ButTrack) {
  const graph::Graph g = TinyNet();
  const infer::WeightStore w = infer::InitializeWeights(g, 3);
  const auto samples = MakeSamples(g, 16, 11);
  const infer::QuantParams qp = CalibratePtq(g, w, samples);
  const infer::Executor fp32(g, w);
  const infer::Executor int8(g, w, infer::NumericsMode::kInt8, &qp);
  const auto probe = MakeSamples(g, 1, 99);
  const auto o32 = fp32.Run(probe[0]);
  const auto o8 = int8.Run(probe[0]);
  double max_err = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < o32[0].size(); ++i) {
    max_err = std::max(max_err, static_cast<double>(std::abs(
                                    o32[0].data()[i] - o8[0].data()[i])));
    scale = std::max(scale,
                     static_cast<double>(std::abs(o32[0].data()[i])));
  }
  EXPECT_GT(max_err, 0.0);           // quantization does something
  EXPECT_LT(max_err, 0.3 * scale + 0.05);  // but stays in the same ballpark
}

TEST(QatRefinement, ReducesWeightQuantizationMse) {
  const graph::Graph g = TinyNet();
  const infer::WeightStore w = infer::InitializeWeights(g, 3);
  const infer::WeightStore refined = RefineWeightsMseOptimal(g, w);
  // The refined weights are clipped versions of the originals.
  const auto& orig = w.Get("Conv2d_0/w").values();
  const auto& ref = refined.Get("Conv2d_0/w").values();
  float orig_max = 0.0f, ref_max = 0.0f;
  for (std::size_t i = 0; i < orig.size(); ++i) {
    orig_max = std::max(orig_max, std::abs(orig[i]));
    ref_max = std::max(ref_max, std::abs(ref[i]));
  }
  EXPECT_LE(ref_max, orig_max + 1e-6f);
}

TEST(QatRefinement, PreservesBiasesExactly) {
  const graph::Graph g = TinyNet();
  const infer::WeightStore w = infer::InitializeWeights(g, 3);
  const infer::WeightStore refined = RefineWeightsMseOptimal(g, w);
  const auto& ob = w.Get("Conv2d_0/b").values();
  const auto& rb = refined.Get("Conv2d_0/b").values();
  for (std::size_t i = 0; i < ob.size(); ++i) EXPECT_EQ(ob[i], rb[i]);
}

// ---- rules ----

TEST(Rules, IdenticalGraphsAreLegal) {
  const graph::Graph a = TinyNet();
  const graph::Graph b = TinyNet();
  EXPECT_TRUE(CheckModelEquivalence(a, b).legal);
}

TEST(Rules, PrunedGraphIsIllegal) {
  const graph::Graph reference = TinyNet();
  GraphBuilder b("pruned");
  TensorId x = b.Input("in", {1, 4, 4, 2});
  x = b.Conv2d(x, 3, 3, 1, Activation::kRelu);  // channel-pruned: 4 -> 3
  x = b.GlobalAvgPool(x);
  x = b.Reshape(x, {1, 3});
  x = b.FullyConnected(x, 3);
  b.MarkOutput(x);
  const LegalityReport r =
      CheckModelEquivalence(reference, std::move(b).Build());
  EXPECT_FALSE(r.legal);
  EXPECT_FALSE(r.violations.empty());
}

TEST(Rules, DroppedLayerIsIllegal) {
  const graph::Graph reference = TinyNet();
  GraphBuilder b("skipped");
  TensorId x = b.Input("in", {1, 4, 4, 2});
  x = b.Conv2d(x, 4, 3, 1, Activation::kRelu);
  x = b.GlobalAvgPool(x);
  x = b.Reshape(x, {1, 4});
  b.MarkOutput(x);  // final FC removed
  EXPECT_FALSE(CheckModelEquivalence(reference, std::move(b).Build()).legal);
}

TEST(Rules, CalibrationSubsetIsLegal) {
  const std::vector<std::size_t> approved{1, 2, 3, 5, 8};
  const std::vector<std::size_t> used{2, 5};
  EXPECT_TRUE(CheckCalibrationSet(approved, used).legal);
}

TEST(Rules, UnapprovedCalibrationSampleIsIllegal) {
  const std::vector<std::size_t> approved{1, 2, 3};
  const std::vector<std::size_t> used{2, 4};
  const LegalityReport r = CheckCalibrationSet(approved, used);
  EXPECT_FALSE(r.legal);
  EXPECT_EQ(r.violations.size(), 1u);
}

TEST(Rules, EmptyCalibrationUseIsLegal) {
  const std::vector<std::size_t> approved{1};
  const std::vector<std::size_t> used;
  EXPECT_TRUE(CheckCalibrationSet(approved, used).legal);
}

}  // namespace
}  // namespace mlpm::quant
