// Canonicalization: un-fuse conv/dwconv/fc activations into standalone
// kActivation nodes.  The reference models ship pre-fused, so without this
// step the fusion pass would have nothing to match; with it, the pipeline
// measures its node-count reduction against the canonical (split) form.
//
// The split itself is numerics-gated: a standalone activation inserts one
// extra ApplyOutputNumerics point, so it is only performed where that point
// is provably a no-op (FP32 always; FP16 only for clamp-family activations,
// which commute with binary16 rounding).  Under INT8 the pass is inert —
// splitting would add a fake-quantization point that re-fusion might not
// remove if a later gate refuses it.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "transform/pass_util.h"
#include "transform/passes.h"

namespace mlpm::transform {
namespace {

class SplitActivationsPass final : public TransformPass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "split-activations";
  }
  [[nodiscard]] std::span<const Invariant> preserved() const override {
    return kAllInvariants;
  }

  void Run(MutableGraph& g, PassContext& ctx) const override {
    using graph::Activation;
    std::vector<bool> reachable = detail::ReachableNodes(g);
    for (std::size_t i = 0; i < g.nodes().size(); ++i) {
      if (!g.alive(i)) continue;
      if (!detail::IsConvLike(g.nodes()[i].op)) continue;
      const Activation act = detail::FusedActivation(g.nodes()[i]);
      if (act == Activation::kNone) continue;
      // Splitting dead code would mint a brand-new unreachable node — a
      // new GRAPH002 finding, which the XFM007 gate rightly vetoes.  Leave
      // dead convs for dead-node-elim.
      if (!reachable[i]) continue;

      if (ctx.mode == infer::NumericsMode::kInt8) {
        ctx.Skip("splitting '" + g.nodes()[i].name +
                 "' would add a quantization point under INT8");
        continue;
      }
      if (ctx.mode == infer::NumericsMode::kFp16 &&
          !detail::IsClampFamily(act)) {
        ctx.Skip("splitting '" + g.nodes()[i].name + "' (" +
                 std::string(graph::ToString(act)) +
                 ") would add an FP16 rounding point");
        continue;
      }

      const std::string conv_name = g.nodes()[i].name;
      const graph::TensorId conv_out = g.nodes()[i].output;
      const std::string act_name = conv_name + "/act";
      const graph::TensorId act_out = g.AddTensor(
          act_name + ":0", g.tensor(conv_out).shape,
          graph::TensorKind::kActivation);

      detail::Rewire(g, ctx, conv_out, act_out);
      detail::SetFusedActivation(g.nodes()[i], Activation::kNone);

      graph::Node split;
      split.name = act_name;
      split.op = graph::OpType::kActivation;
      split.attrs = graph::ActivationAttrs{act};
      split.inputs = {conv_out};
      split.output = act_out;
      i = g.InsertNodeAfter(i, std::move(split));
      // The synthetic activation inherits the conv's consumers, so it is
      // reachable by construction; keep the vector index-aligned.
      reachable.insert(reachable.begin() + static_cast<std::ptrdiff_t>(i),
                       true);

      ctx.synthetic_activations.insert(act_name);
      ctx.Touch(conv_name);
      ctx.Touch(act_name);
      ++ctx.rewrites;
    }
  }
};

}  // namespace

std::unique_ptr<TransformPass> MakeSplitActivationsPass() {
  return std::make_unique<SplitActivationsPass>();
}

}  // namespace mlpm::transform
