// Journal validate/inspect tool (DESIGN.md §12, §16).  Reads a crash-safe
// journal — submission or fleet, auto-detected from the meta frame (a fleet
// meta has a shard count, a submission meta has a chipset; neither decodes
// as the other) — verifies the header, meta frame and every record
// checksum, and prints what a --resume run would replay: which suite tasks
// or fleet shards are already on disk, which would re-run, and whether a
// torn tail will be truncated.
//
// Usage:
//   mlpm_journal [--verbose] FILE
//
// Exit codes:
//   0  journal is clean (valid meta, no torn tail)
//   1  journal is damaged but resumable (torn tail / bad records were cut)
//   2  journal is unreadable (missing file, bad header or meta frame)
#include <cstdio>
#include <string>
#include <vector>

#include "fleet/journal.h"
#include "harness/journal.h"
#include "models/zoo.h"

namespace {

using namespace mlpm;

int Usage() {
  std::fprintf(stderr, "usage: mlpm_journal [--verbose] FILE\n");
  return 2;
}

// The meta frame stores the suite version as text; map it back to the enum
// so the tool can list which suite tasks are still missing from the file.
std::vector<models::BenchmarkEntry> SuiteForVersionName(
    const std::string& name) {
  for (models::SuiteVersion v :
       {models::SuiteVersion::kV0_7, models::SuiteVersion::kV1_0})
    if (name == ToString(v)) return models::SuiteFor(v);
  return {};
}

// Fleet-journal path (DESIGN.md §16): shard frames keyed by id, resume
// replays intact shards and re-runs the rest.
int InspectFleetJournal(const std::string& path,
                        const fleet::FleetJournalLoad& load, bool verbose) {
  std::printf("fleet journal: %s\n", path.c_str());
  std::printf("  version:     %s\n", load.meta.version.c_str());
  std::printf("  seed:        %llu\n",
              static_cast<unsigned long long>(load.meta.seed));
  std::printf("  shards:      %llu\n",
              static_cast<unsigned long long>(load.meta.shard_count));
  std::printf("  config hash: %016llx\n",
              static_cast<unsigned long long>(load.meta.config_hash));
  std::printf("  records:     %zu intact shard(s)\n", load.shards.size());

  for (const auto& [id, shard] : load.shards) {
    const std::string status{ToString(shard.state)};
    std::printf("  shard %-4zu %-15s slo=%s %s\n", id, status.c_str(),
                shard.slo_met ? "yes" : "no", shard.config_key.c_str());
    if (verbose) {
      std::printf("      issued=%zu shed=%zu trips=%zu faults=%zu\n",
                  shard.result.issued_count, shard.result.shed_count,
                  shard.breaker_trips, shard.fault_count);
    }
  }

  for (const std::string& n : load.notes)
    std::printf("  note: %s\n", n.c_str());
  if (load.torn_tail)
    std::printf("  torn tail: byte(s) after offset %zu would be truncated "
                "on resume\n",
                load.valid_prefix_bytes);

  std::string pending;
  std::size_t missing = 0;
  for (std::size_t id = 0; id < load.meta.shard_count; ++id) {
    if (load.shards.count(id) != 0) continue;
    ++missing;
    if (missing <= 8) {
      if (!pending.empty()) pending += ", ";
      pending += std::to_string(id);
    }
  }
  if (missing > 8) pending += ", ...";
  std::printf("  resume: %zu of %llu shard(s) replayable%s%s\n",
              load.shards.size(),
              static_cast<unsigned long long>(load.meta.shard_count),
              pending.empty() ? "" : "; pending: ", pending.c_str());

  return load.torn_tail ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool verbose = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verbose") {
      verbose = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return Usage();
    }
  }
  if (path.empty()) return Usage();

  const harness::JournalLoad load = harness::LoadJournal(path);
  if (!load.meta_valid) {
    // Same file format, different meta: maybe it's a fleet journal.
    const fleet::FleetJournalLoad fload = fleet::LoadFleetJournal(path);
    if (fload.meta_valid) return InspectFleetJournal(path, fload, verbose);
    std::fprintf(stderr, "%s: not a readable journal\n", path.c_str());
    for (const std::string& n : load.notes)
      std::fprintf(stderr, "  %s\n", n.c_str());
    return 2;
  }

  std::printf("journal: %s\n", path.c_str());
  std::printf("  chipset:     %s\n", load.meta.chipset.c_str());
  std::printf("  version:     %s\n", load.meta.version.c_str());
  std::printf("  seed:        %llu\n",
              static_cast<unsigned long long>(load.meta.seed));
  std::printf("  config hash: %016llx\n",
              static_cast<unsigned long long>(load.meta.config_hash));
  std::printf("  records:     %zu intact\n", load.intact_records);

  for (const harness::TaskRunResult& t : load.tasks) {
    const std::string status{ToString(t.status)};
    std::printf("  rec %-24s status=%s accuracy=%.4f quality=%s\n",
                t.entry.id.c_str(), status.c_str(), t.accuracy,
                t.quality_passed ? "pass" : "FAIL");
    if (verbose) {
      std::printf("      faults=%zu shed=%zu rejected=%zu trips=%zu "
                  "attempts=%zu\n",
                  t.fault_count, t.shed_count, t.rejected_count,
                  t.breaker_trips, t.performance_attempts);
    }
  }

  for (const std::string& n : load.notes)
    std::printf("  note: %s\n", n.c_str());
  if (load.torn_tail)
    std::printf("  torn tail: %zu byte(s) after offset %zu would be "
                "truncated on resume\n",
                load.torn_bytes, load.valid_prefix_bytes);

  // What a --resume run would actually do: errored records re-run, intact
  // non-errored ones replay, anything absent from the file runs fresh.
  const std::vector<models::BenchmarkEntry> suite =
      SuiteForVersionName(load.meta.version);
  if (!suite.empty()) {
    std::size_t replayable = 0;
    std::string pending;
    for (const models::BenchmarkEntry& entry : suite) {
      bool done = false;
      for (const harness::TaskRunResult& t : load.tasks)
        done |= t.entry.id == entry.id &&
                t.status != harness::TaskStatus::kErrored;
      if (done) {
        ++replayable;
      } else {
        if (!pending.empty()) pending += ", ";
        pending += entry.id;
      }
    }
    std::printf("  resume: %zu of %zu suite task(s) replayable%s%s\n",
                replayable, suite.size(),
                pending.empty() ? "" : "; pending: ", pending.c_str());
  }

  return load.torn_tail ? 1 : 0;
}
