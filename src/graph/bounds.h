// Bounds inference: output crop -> required input box.
//
// For the ops the tiled executor can run crop-by-crop (hannk-style
// interpreter tiling), this maps a crop of a node's output back to the box
// of its first input the crop needs.  The mapping is the *inverse* of the
// kernel's index arithmetic — for a conv row band [b, e) with stride s,
// effective kernel k and SAME pad p, the input rows touched are
// [b*s - p, (e-1)*s - p + k), clamped to the tensor — so a tile executor
// that materializes exactly the inferred box computes every output element
// from the same inputs as the whole-op kernel (DESIGN.md §15).
//
// Contracts:
//   * Inference covers input[0] only.  Binary elementwise ops read their
//     second operand at the *same* coordinates as the output crop, so the
//     required box of input[1] equals the crop itself.
//   * The returned box is clamped to the input shape.  Padding (SAME conv
//     edges, pool edge windows) is handled by the kernels skipping taps
//     outside the clamped box, exactly as the whole-op path skips taps
//     outside the tensor.
//   * Crops split N and H only; inference keeps W and C spans full-range
//     in the same spirit, but the math is exact for W crops too.
#pragma once

#include "graph/box.h"
#include "graph/graph.h"

namespace mlpm::graph {

// Padding offset at the start of one spatial dimension for SAME padding.
// Shared by the whole-op kernels and the crop-aware kernels so both sides
// of the equivalence proof use one definition.
[[nodiscard]] std::int64_t SamePadBegin(std::int64_t in, std::int64_t out,
                                        int kernel, int stride, int dilation,
                                        Padding pad);

// True if the op has an exact crop -> input-box mapping (and a crop-aware
// kernel in the tiled executor).  Everything else forces a segment break.
[[nodiscard]] bool SupportsBoundsInference(OpType op);

// The box of `n`'s first input required to compute the output crop.
// `crop` must have the output's rank and lie inside the output shape.
// Requires SupportsBoundsInference(n.op).
[[nodiscard]] Box InferInputBounds(const Node& n, const TensorShape& in_shape,
                                   const TensorShape& out_shape,
                                   const Box& crop);

}  // namespace mlpm::graph
