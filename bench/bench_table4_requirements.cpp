// Table 4 — requirements comparison against other mobile ML benchmarks.
//
// The five requirements (paper §8):
//   1. system-level benchmark        4. vendor backends / SDK support
//   2. accuracy-first quality targets 5. industry-driven and audited
//   3. open-source + result audits
// This bench renders the matrix and then *demonstrates* each requirement
// with the corresponding artifact in this repository.
#include <cstdio>

#include "common/table.h"
#include "harness/checker.h"

int main() {
  using namespace mlpm;

  struct Row {
    const char* name;
    bool r1, r2, r3, r4, r5;
  };
  // As published (Table 4).
  const Row rows[] = {
      {"Aitutu", true, false, false, true, false},
      {"AI-Benchmark", true, false, false, false, false},
      {"AIMark", true, false, false, true, false},
      {"Android MLTS", false, false, true, true, false},
      {"GeekBenchML", true, false, false, false, false},
      {"Neural Scope", true, false, false, false, false},
      {"TF Lite", false, false, true, true, false},
      {"UL Procyon AI", true, false, false, false, false},
      {"Xiaomi", true, false, true, false, false},
      {"MLPerf Mobile", true, true, true, true, true},
  };

  TextTable t("Table 4 — requirement coverage across mobile ML benchmarks");
  t.SetHeader({"Benchmark", "R1 system-level", "R2 accuracy-first",
               "R3 open + audited", "R4 vendor backends",
               "R5 industry-driven"});
  for (const Row& r : rows) {
    const auto mark = [](bool b) { return std::string(b ? "yes" : "X"); };
    if (std::string(r.name) == "MLPerf Mobile") t.AddSeparator();
    t.AddRow({r.name, mark(r.r1), mark(r.r2), mark(r.r3), mark(r.r4),
              mark(r.r5)});
  }
  std::printf("%s\n", t.Render().c_str());

  // Demonstrate R2 in this implementation: the checker refuses performance
  // results below the quality target (GeekBench-style 52%-of-FP32 object
  // detection would be rejected).
  harness::SuiteBundles bundles;
  const models::BenchmarkEntry od =
      models::SuiteFor(models::SuiteVersion::kV1_0)[1];
  harness::TaskRunResult fake;
  fake.entry = od;
  fake.numerics = DataType::kInt8;
  fake.fp32_reference = 0.285;
  fake.accuracy = 0.285 * 0.52;  // 52% of FP32 (App. D's example)
  fake.ratio_to_fp32 = 0.52;
  fake.quality_passed = fake.ratio_to_fp32 >= od.quality_target;
  const harness::CheckReport check =
      harness::CheckTaskRun(fake, loadgen::TestSettings{});
  std::printf(
      "R2 demonstration: a 52%%-of-FP32 object-detection result is %s by "
      "the submission checker\n",
      check.valid ? "ACCEPTED (bug!)" : "REJECTED");
  return check.valid ? 1 : 0;
}
