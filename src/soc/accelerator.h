// Accelerator performance descriptions (paper §2.1: a mobile SoC is a
// heterogeneous complex of CPU clusters, GPU, DSP, NPU, APU, AIP blocks,
// any of which can run ML work).
//
// Each engine is an analytical roofline: per-layer latency is
// max(compute-time, memory-time) plus a dispatch overhead, where compute
// throughput depends on the numerics and the op class (a DSP is superb at
// dense INT8 conv and poor at attention; a GPU is the reverse — §7.5).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"
#include "graph/ops.h"

namespace mlpm::soc {

enum class EngineClass : std::uint8_t {
  kCpuBig,
  kCpuLittle,
  kGpu,
  kDsp,
  kNpu,   // dedicated neural engines (Exynos NPU, MediaTek APU/MDLA)
  kAip,   // Qualcomm AI-processing cluster (HTA + HVX)
  kIGpu,  // laptop integrated GPU
};

[[nodiscard]] constexpr std::string_view ToString(EngineClass c) {
  switch (c) {
    case EngineClass::kCpuBig: return "CPU(big)";
    case EngineClass::kCpuLittle: return "CPU(little)";
    case EngineClass::kGpu: return "GPU";
    case EngineClass::kDsp: return "DSP";
    case EngineClass::kNpu: return "NPU";
    case EngineClass::kAip: return "AIP";
    case EngineClass::kIGpu: return "iGPU";
  }
  return "?";
}

// Fraction of peak throughput achieved per op class (0 disables the class
// on this engine — the scheduler will not place such ops here).
struct EfficiencyTable {
  double conv_dense = 0.7;
  double conv_depthwise = 0.35;  // bandwidth-bound on most engines
  double gemm = 0.6;
  double attention = 0.3;
  double elementwise = 0.5;
  // Extra multiplier applied to *dilated* (atrous) convolutions: most
  // mobile accelerators lower to space-to-batch or strided gathers and run
  // them at a fraction of the dense rate.
  double dilated_scale = 1.0;

  [[nodiscard]] double For(graph::OpClass c) const {
    switch (c) {
      case graph::OpClass::kConvDense: return conv_dense;
      case graph::OpClass::kConvDepthwise: return conv_depthwise;
      case graph::OpClass::kGemm: return gemm;
      case graph::OpClass::kAttention: return attention;
      case graph::OpClass::kElementwise: return elementwise;
      case graph::OpClass::kMemory: return 1.0;  // pure data movement
    }
    return 0.5;
  }
};

struct AcceleratorDesc {
  std::string name;
  EngineClass cls = EngineClass::kCpuBig;

  // Peak arithmetic throughput in giga-MACs per second, by numerics.
  // 0 means the format is unsupported on this engine (paper §7.5: most AI
  // engines lack efficient non-vision / FP16 support or vice versa).
  double peak_gmacs_int8 = 0.0;
  double peak_gmacs_fp16 = 0.0;
  double peak_gmacs_fp32 = 0.0;

  double mem_bw_gbps = 10.0;          // effective DRAM bandwidth, GB/s
  EfficiencyTable efficiency;
  double per_layer_overhead_us = 1.0;  // kernel dispatch per node
  double active_power_w = 1.0;         // while executing
  double idle_power_w = 0.05;

  [[nodiscard]] double PeakFor(DataType t) const {
    switch (t) {
      case DataType::kInt8:
      case DataType::kUInt8:
        return peak_gmacs_int8;
      case DataType::kFloat16:
        return peak_gmacs_fp16;
      case DataType::kFloat32:
      case DataType::kInt32:
        return peak_gmacs_fp32;
    }
    return 0.0;
  }

  [[nodiscard]] bool Supports(DataType t) const { return PeakFor(t) > 0.0; }
};

}  // namespace mlpm::soc
