// Run-configuration determinism lints (RUN001-RUN008).
//
// These catch the configuration mistakes that turn a benchmark run into
// noise: impossible thread counts, fault probabilities outside [0, 1],
// negative retry budgets, and the two threading pathologies the paper's
// reproducibility rules exist to prevent — scratch buffers shared across
// worker threads (data races → nondeterministic numerics) and ad-hoc
// spawn-per-query threading (scheduler jitter → nondeterministic latency).
#include <cmath>
#include <string>

#include "analysis/passes.h"

namespace mlpm::analysis {

void CheckRunConfig(const RunConfigView& rc, DiagnosticEngine& de) {
  if (rc.threads < 0)
    de.Report("RUN001", ConfigSource("run.threads"),
              "thread count " + std::to_string(rc.threads) +
                  " is invalid; use >= 1, or 0 for hardware concurrency");

  if (rc.cooldown_s < 0.0 || rc.cooldown_s > 300.0)
    de.Report("RUN002", ConfigSource("run.cooldown_s"),
              "cooldown of " + std::to_string(rc.cooldown_s) +
                  "s is outside the plausible 0-300s window; thermal state "
                  "will differ between benchmark and power modes");

  for (const auto& [name, p] : rc.fault_probabilities)
    if (!std::isfinite(p) || p < 0.0 || p > 1.0)
      de.Report("RUN003", ConfigSource("run.fault_plan." + name),
                "fault probability " + std::to_string(p) +
                    " is not a probability in [0, 1]");

  if (rc.max_test_retries < 0)
    de.Report("RUN004", ConfigSource("run.max_test_retries"),
              "retry budget " + std::to_string(rc.max_test_retries) +
                  " is negative");

  if (rc.threads != 1 && rc.shared_scratch_across_threads)
    de.Report("RUN005", ConfigSource("run.shared_scratch_across_threads"),
              "scratch buffers are shared across " +
                  std::to_string(rc.threads) +
                  " worker threads; concurrent inferences will race and the "
                  "run is not reproducible");

  if (rc.threads != 1 && !rc.uses_thread_pool)
    de.Report("RUN006", ConfigSource("run.uses_thread_pool"),
              "multi-threaded run without a fixed thread pool; per-query "
              "thread spawning adds scheduler jitter to every latency "
              "sample");

  const bool known_isa = rc.kernel_isa == "auto" ||
                         rc.kernel_isa == "scalar" ||
                         rc.kernel_isa == "avx2" || rc.kernel_isa == "neon";
  if (!known_isa)
    de.Report("RUN007", ConfigSource("run.kernel_isa"),
              "unknown kernel ISA \"" + rc.kernel_isa +
                  "\"; expected auto, scalar, avx2 or neon");
  else if (!rc.kernel_isa_available)
    de.Report("RUN007", ConfigSource("run.kernel_isa"),
              "kernel ISA \"" + rc.kernel_isa +
                  "\" is unavailable on this host; the run falls back to "
                  "the portable scalar kernels and its performance is not "
                  "representative of a " + rc.kernel_isa + " build");

  if (rc.tiling_requested) {
    if (rc.tile_rows != -1 && rc.tile_rows < 1)
      de.Report("RUN008", ConfigSource("run.tile_rows"),
                "tile height " + std::to_string(rc.tile_rows) +
                    " is invalid; use a positive row count, or -1 for "
                    "automatic selection against the cache budget");
    else if (!rc.graph_has_fusable_segment)
      // Valid configuration, no effect: warn, don't block the run.
      de.Report("RUN008", Severity::kWarning, ConfigSource("run.tiling"),
                "tiling requested but the model has no fusable segment "
                "(no chain of two-plus bounds-inference-capable NHWC ops "
                "with a conv); the run executes whole-op and tiling's "
                "memory/latency effects do not apply");
  }
}

}  // namespace mlpm::analysis
