// Shared vocabulary for the reference model zoo (paper §3.2, Table 1).
#pragma once

#include <cstdint>
#include <string_view>

#include "graph/graph.h"

namespace mlpm::models {

// The four benchmark task areas of MLPerf Mobile v0.7/v1.0.
enum class TaskType : std::uint8_t {
  kImageClassification,  // MobileNetEdgeTPU on ImageNet
  kObjectDetection,      // SSD-MobileNet v2 (v0.7) / MobileDet-SSD (v1.0)
  kImageSegmentation,    // DeepLab v3+ with MobileNet v2 backbone on ADE20K
  kQuestionAnswering,    // MobileBERT on SQuAD v1.1
};

[[nodiscard]] constexpr std::string_view ToString(TaskType t) {
  switch (t) {
    case TaskType::kImageClassification: return "image_classification";
    case TaskType::kObjectDetection: return "object_detection";
    case TaskType::kImageSegmentation: return "image_segmentation";
    case TaskType::kQuestionAnswering: return "question_answering";
  }
  return "?";
}

// Scale of a model build.
//   kFull — the paper's architecture at full resolution; feeds the SoC
//           timing simulator (never executed numerically).
//   kMini — same block structure at reduced width/resolution; feeds the
//           functional executor for accuracy/quantization experiments
//           (DESIGN.md "two execution planes").
enum class ModelScale : std::uint8_t { kFull, kMini };

// Inverted-bottleneck block (MobileNet v2 family).  If `fused`, the expansion
// and depthwise stages are a single regular KxK convolution
// (MobileNetEdgeTPU / MobileDet "fused-IBN" — better accelerator
// utilization, paper §3.2).  Adds a residual when stride==1 and channels
// match.  Returns the block output tensor.
graph::TensorId InvertedBottleneck(graph::GraphBuilder& b, graph::TensorId in,
                                   std::int64_t out_ch, int expand_ratio,
                                   int stride, int kernel = 3,
                                   bool fused = false, int dilation = 1);

}  // namespace mlpm::models
