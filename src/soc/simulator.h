// The SoC simulator: executes compiled models against a chipset's thermal
// state, in single-stream (one inference at a time) or offline batch mode
// with accelerator-level parallelism (paper §7.3: vendors run multiple
// accelerators concurrently to maximize offline throughput).
//
// An optional seeded FaultPlan (soc/faults.h) makes individual inferences
// fail the way real mobile runtimes do — stalls, driver crashes, thermal
// emergencies, lost completions.  Without a plan the simulator behaves
// exactly as before: the fault machinery is a no-op.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "soc/chipset.h"
#include "soc/compile.h"
#include "soc/faults.h"
#include "soc/thermal.h"

namespace mlpm::soc {

// How one simulated inference attempt ended.
enum class InferenceOutcome : std::uint8_t {
  kOk,                // completed normally
  kStalledRetryable,  // watchdog killed a hung attempt; retry may succeed
  kDriverCrash,       // the driver failed the partition; no result
  kThermalEmergency,  // completed, but the die hit the hard thermal limit
  kDropped,           // ran to completion but the completion signal was lost
};

[[nodiscard]] constexpr std::string_view ToString(InferenceOutcome o) {
  switch (o) {
    case InferenceOutcome::kOk: return "ok";
    case InferenceOutcome::kStalledRetryable: return "stalled";
    case InferenceOutcome::kDriverCrash: return "driver_crash";
    case InferenceOutcome::kThermalEmergency: return "thermal_emergency";
    case InferenceOutcome::kDropped: return "dropped";
  }
  return "?";
}

struct InferenceResult {
  double latency_s = 0.0;
  double energy_j = 0.0;
  double throttle_factor = 1.0;  // at the start of the inference
  double temperature_c = 0.0;    // at the end of the inference
  InferenceOutcome outcome = InferenceOutcome::kOk;
  // Whether a completion signal reaches the caller.  False for stalls,
  // crashes, and drops — the time and energy above were still consumed.
  bool completed = true;
};

struct BatchOptions {
  // Offline batches amortize kernel dispatch (larger effective batch per
  // accelerator command) and runtime dispatch.
  double dispatch_scale = 0.25;
  double per_inference_overhead_scale = 0.1;
  // Utilization gain from large effective batches (weights stay staged,
  // pipelines stay full); multiplies each replica's throughput.
  double batched_efficiency_gain = 1.28;
  // Thermal integration step for long batch runs.
  double step_s = 0.25;
};

struct BatchResult {
  double makespan_s = 0.0;
  double energy_j = 0.0;
  // Completion time of each sample (monotonic), length == sample_count.
  std::vector<double> completion_times_s;
  double final_temperature_c = 0.0;
  // Per-sample completion-signal flags under fault injection; empty means
  // every sample completed (the no-fault fast path allocates nothing).
  std::vector<std::uint8_t> completed;

  [[nodiscard]] bool SampleCompleted(std::size_t i) const {
    return completed.empty() || completed[i] != 0;
  }
};

class SocSimulator {
 public:
  explicit SocSimulator(ChipsetDesc chipset);

  // Runs one single-stream inference; advances the thermal state.  With a
  // fault plan installed, the attempt may stall, crash, overheat, or lose
  // its completion — see InferenceResult::outcome.
  InferenceResult RunInference(const CompiledModel& model);

  // Runs `sample_count` samples split across the given replicas with
  // data-parallel ALP: each replica consumes samples at its own throughput
  // and all run concurrently.  Replicas are typically one per engine
  // (e.g. Exynos: NPU replica + CPU replica; Snapdragon: HTA + HVX).
  BatchResult RunBatch(std::span<const CompiledModel> replicas,
                       std::size_t sample_count,
                       const BatchOptions& options = {});

  // Cooldown interval between tests (run rules §6.1: 0-5 minutes).
  void Cooldown(double seconds) { thermal_.Cool(seconds); }

  // Installs a seeded fault plan; replaces any previous one and resets the
  // fault schedule to the plan's seed.
  void InjectFaults(FaultPlan plan) { injector_.emplace(std::move(plan)); }
  [[nodiscard]] const FaultInjector* fault_injector() const {
    return injector_ ? &*injector_ : nullptr;
  }
  // Faults observed so far (0 without a plan).
  [[nodiscard]] std::size_t fault_count() const {
    return injector_ ? injector_->events().size() : 0;
  }

  // True if every segment of `model` runs on a CPU-class engine — such a
  // plan has no accelerator driver, so injected faults do not apply to it.
  [[nodiscard]] bool IsCpuOnly(const CompiledModel& model) const;

  // Cumulative simulated busy time across all inferences/batches (the
  // timeline fault events are stamped on).
  [[nodiscard]] double busy_time_s() const { return busy_time_s_; }

  [[nodiscard]] const ThermalModel& thermal() const { return thermal_; }
  [[nodiscard]] const ChipsetDesc& chipset() const { return chipset_; }
  void ResetThermal() { thermal_.Reset(); }

  // Prefix for every trace lane this simulator emits ("shard-3/").  Fleet
  // shards run concurrent simulators; without per-shard lanes their spans
  // would interleave on the shared engine rows and the exported trace
  // would fail structural validation (DESIGN.md §16).
  void SetTraceLanePrefix(std::string prefix) {
    trace_lane_prefix_ = std::move(prefix);
  }
  [[nodiscard]] const std::string& trace_lane_prefix() const {
    return trace_lane_prefix_;
  }

 private:
  // Maps this simulator's local busy time onto the process-wide simulated
  // timeline (obs::Domain::kSim).  Every test builds a fresh simulator whose
  // busy time restarts at zero; without an epoch the traces of consecutive
  // tests would overlap on the shared engine lanes.  The epoch is claimed
  // lazily at the first traced event and published back after each run, so
  // sequential simulators occupy disjoint windows.
  [[nodiscard]] double TraceBaseSeconds();
  static void PublishTraceEnd(double end_s);
  // The given lane with this simulator's prefix applied.
  [[nodiscard]] std::string Lane(std::string_view lane) const;

  ChipsetDesc chipset_;
  ThermalModel thermal_;
  std::optional<FaultInjector> injector_;
  double busy_time_s_ = 0.0;
  double trace_epoch_s_ = -1.0;  // <0: not claimed yet
  std::string trace_lane_prefix_;
};

}  // namespace mlpm::soc
