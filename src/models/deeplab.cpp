#include "models/deeplab.h"

#include "models/mobilenet_v2.h"

namespace mlpm::models {

using graph::Activation;
using graph::GraphBuilder;
using graph::TensorId;

SegmentationConfig MiniSegmentationConfig() {
  return SegmentationConfig{/*input_size=*/32, /*num_classes=*/8,
                            /*aspp_channels=*/32};
}

graph::Graph BuildDeepLabV3Plus(ModelScale scale) {
  return BuildDeepLabV3Plus(scale == ModelScale::kFull
                                ? SegmentationConfig{}
                                : MiniSegmentationConfig(),
                            scale);
}

graph::Graph BuildDeepLabV3Plus(const SegmentationConfig& cfg,
                                ModelScale scale) {
  GraphBuilder b("deeplab_v3plus_mnv2");
  TensorId input =
      b.Input("images", {1, cfg.input_size, cfg.input_size, 3});

  MobileNetV2Options opts;
  opts.scale = scale;
  opts.output_stride16 = true;
  const BackboneFeatures f = BuildMobileNetV2Backbone(b, input, opts);

  const auto& hs = b.ShapeOf(f.high);
  const std::int64_t fh = hs.height();
  const std::int64_t fw = hs.width();

  // Slim ASPP: 1x1 conv branch + global image pooling branch.
  const TensorId branch1 =
      b.Conv2d(f.high, cfg.aspp_channels, 1, 1, Activation::kRelu6,
               graph::Padding::kSame, 1, "aspp_1x1");
  TensorId pool = b.GlobalAvgPool(f.high, "aspp_pool");
  pool = b.Conv2d(pool, cfg.aspp_channels, 1, 1, Activation::kRelu6,
                  graph::Padding::kSame, 1, "aspp_pool_conv");
  pool = b.ResizeBilinear(pool, fh, fw, "aspp_pool_up");
  TensorId x = b.Concat({branch1, pool}, /*axis=*/-1, "aspp_concat");
  x = b.Conv2d(x, cfg.aspp_channels, 1, 1, Activation::kRelu6,
               graph::Padding::kSame, 1, "aspp_project");

  // Classifier + upsample to input resolution.
  x = b.Conv2d(x, cfg.num_classes, 1, 1, Activation::kNone,
               graph::Padding::kSame, 1, "logits_conv");
  x = b.ResizeBilinear(x, cfg.input_size, cfg.input_size, "logits_up");
  b.MarkOutput(x);
  return std::move(b).Build();
}

}  // namespace mlpm::models
