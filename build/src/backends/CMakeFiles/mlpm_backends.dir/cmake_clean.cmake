file(REMOVE_RECURSE
  "CMakeFiles/mlpm_backends.dir/framework.cpp.o"
  "CMakeFiles/mlpm_backends.dir/framework.cpp.o.d"
  "CMakeFiles/mlpm_backends.dir/reference_backend.cpp.o"
  "CMakeFiles/mlpm_backends.dir/reference_backend.cpp.o.d"
  "CMakeFiles/mlpm_backends.dir/simulated_backend.cpp.o"
  "CMakeFiles/mlpm_backends.dir/simulated_backend.cpp.o.d"
  "CMakeFiles/mlpm_backends.dir/vendor_policy.cpp.o"
  "CMakeFiles/mlpm_backends.dir/vendor_policy.cpp.o.d"
  "libmlpm_backends.a"
  "libmlpm_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlpm_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
