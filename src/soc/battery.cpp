#include "soc/battery.h"

namespace mlpm::soc {

double AveragePowerWatts(const WorkloadDraw& w) {
  Expects(w.energy_per_inference_j >= 0.0, "negative energy");
  if (w.inferences_per_second > 0.0)
    return w.energy_per_inference_j * w.inferences_per_second;
  Expects(w.latency_s > 0.0,
          "back-to-back workload needs a per-inference latency");
  return w.energy_per_inference_j / w.latency_s;
}

double HoursOfOperation(const BatterySpec& battery, const WorkloadDraw& w) {
  Expects(battery.capacity_wh > 0.0, "battery capacity must be positive");
  const double total_power = AveragePowerWatts(w) + battery.baseline_power_w;
  Expects(total_power > 0.0, "total draw must be positive");
  return battery.capacity_wh / total_power;
}

double InferencesPerCharge(const BatterySpec& battery,
                           const WorkloadDraw& w) {
  const double hours = HoursOfOperation(battery, w);
  const double rate = w.inferences_per_second > 0.0
                          ? w.inferences_per_second
                          : 1.0 / w.latency_s;
  return hours * 3600.0 * rate;
}

}  // namespace mlpm::soc
