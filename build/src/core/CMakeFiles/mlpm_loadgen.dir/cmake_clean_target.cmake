file(REMOVE_RECURSE
  "libmlpm_loadgen.a"
)
