# Empty dependencies file for bench_figure6_generational.
# This may be replaced when dependencies are built.
