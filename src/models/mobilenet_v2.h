// MobileNet v2 backbone, shared by SSD-MobileNet v2 (object detection,
// v0.7) and DeepLab v3+ (segmentation) — paper §3.2.
#pragma once

#include "graph/graph.h"
#include "models/common.h"

namespace mlpm::models {

struct MobileNetV2Options {
  double width = 1.0;          // channel width multiplier
  bool output_stride16 = false;  // DeepLab: last stride-2 stage dilated
  ModelScale scale = ModelScale::kFull;
};

// Tensors a downstream head can attach to.
struct BackboneFeatures {
  graph::TensorId low = graph::kInvalidTensor;   // stride-4, for decoders
  graph::TensorId mid = graph::kInvalidTensor;   // stride-16 expansion
  graph::TensorId high = graph::kInvalidTensor;  // final feature map
};

// Appends the backbone to `b`, starting from `input` (NHWC image tensor).
BackboneFeatures BuildMobileNetV2Backbone(graph::GraphBuilder& b,
                                          graph::TensorId input,
                                          const MobileNetV2Options& opts);

}  // namespace mlpm::models
