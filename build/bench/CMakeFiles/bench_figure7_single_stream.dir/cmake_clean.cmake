file(REMOVE_RECURSE
  "CMakeFiles/bench_figure7_single_stream.dir/bench_figure7_single_stream.cpp.o"
  "CMakeFiles/bench_figure7_single_stream.dir/bench_figure7_single_stream.cpp.o.d"
  "bench_figure7_single_stream"
  "bench_figure7_single_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure7_single_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
