// Descriptive statistics used by the LoadGen result summariser and the
// benchmark report generators (90th-percentile latency is the paper's
// single-stream metric, §6.1).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mlpm {

// Summary of a latency (or any scalar) sample set.
struct SampleStats {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
  double p50 = 0.0;
  double p90 = 0.0;
  double p97 = 0.0;
  double p99 = 0.0;
};

// Percentile with linear interpolation between closest ranks; `p` in [0,100].
// The input need not be sorted.  Empty input throws CheckError.
[[nodiscard]] double Percentile(std::span<const double> values, double p);

// As Percentile, but `sorted` must already be in ascending order — no copy,
// no sort.  The building block for multi-percentile extraction.
[[nodiscard]] double PercentileOfSorted(std::span<const double> sorted,
                                        double p);

// Several percentiles from one sort: copies and sorts `values` once, then
// reads each requested percentile off the sorted data.  Returns one value
// per entry of `ps`, in order.  Report tables want p50/p90/p97/p99 of the
// same latency vector; calling Percentile four times would sort four times.
[[nodiscard]] std::vector<double> Percentiles(std::span<const double> values,
                                              std::span<const double> ps);

// Full summary in one pass over a copy (values need not be sorted).
[[nodiscard]] SampleStats Summarize(std::span<const double> values);

// Geometric mean; all values must be positive.
[[nodiscard]] double GeometricMean(std::span<const double> values);

}  // namespace mlpm
