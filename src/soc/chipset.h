// Chipset catalog: declarative descriptions of the eight systems whose
// results the paper reports (§7.1, Appendix C).
//
// Chipsets are data, not code — the transparency argument of the paper
// applied to the simulator itself.  Parameters are *sustained effective*
// rates calibrated so the anchor numbers published in the paper (Table 3,
// Figure 6 ratios, §7.2 offline FPS) emerge from the per-layer roofline
// model; they are not marketing TOPS.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "soc/accelerator.h"
#include "soc/thermal.h"

namespace mlpm::soc {

struct ChipsetDesc {
  std::string name;
  std::string generation;  // benchmark round it was submitted to
  std::vector<AcceleratorDesc> engines;
  // Effective inter-IP-block transfer bandwidth, GB/s (Appendix C: the
  // Exynos 2100's key win was "critical features that reduce data transfer
  // between IP blocks").
  double interconnect_gbps = 8.0;
  double tdp_w = 3.0;  // smartphone thermal ceiling (Appendix E)
  ThermalParams thermal;

  [[nodiscard]] const AcceleratorDesc& Engine(std::string_view name) const;
  [[nodiscard]] bool HasEngine(std::string_view name) const;
};

// v0.7 submission round (paper Figure 7 / Table 2).
[[nodiscard]] ChipsetDesc Dimensity820();
[[nodiscard]] ChipsetDesc Exynos990();
[[nodiscard]] ChipsetDesc Snapdragon865Plus();
[[nodiscard]] ChipsetDesc CoreI7_1165G7();

// v1.0 submission round (paper Figure 6 / Table 3, Appendix C).
[[nodiscard]] ChipsetDesc Dimensity1100();
[[nodiscard]] ChipsetDesc Exynos2100();
[[nodiscard]] ChipsetDesc Snapdragon888();
[[nodiscard]] ChipsetDesc CoreI7_11375H();

// iOS support extension (paper App. E: "Apple's iOS is a major
// AI-performance player... we expect results in the near future").  Not
// part of either published round's catalog; exercised by the extension
// benches and the rolling-submission flow.
[[nodiscard]] ChipsetDesc AppleA14();

// All chipsets of one round, smartphone-only or including laptops.
[[nodiscard]] std::vector<ChipsetDesc> CatalogV07();
[[nodiscard]] std::vector<ChipsetDesc> CatalogV10();

}  // namespace mlpm::soc
