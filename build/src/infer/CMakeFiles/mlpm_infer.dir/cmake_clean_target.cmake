file(REMOVE_RECURSE
  "libmlpm_infer.a"
)
