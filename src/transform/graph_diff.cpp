#include "transform/graph_diff.h"

#include <sstream>
#include <unordered_map>
#include <variant>

namespace mlpm::transform {
namespace {

// Prints every attribute field that affects execution.  A new attr struct
// added to OpAttrs without a case here fails to compile (exhaustive visit),
// so the diff can never silently ignore an attribute change.
struct AttrPrinter {
  std::ostringstream& os;
  void operator()(const graph::EmptyAttrs&) const {}
  void operator()(const graph::Conv2dAttrs& a) const {
    os << " oc=" << a.out_channels << " k=" << a.kernel_h << 'x' << a.kernel_w
       << " s=" << a.stride << " d=" << a.dilation
       << " p=" << static_cast<int>(a.padding)
       << " act=" << graph::ToString(a.activation);
  }
  void operator()(const graph::DepthwiseConv2dAttrs& a) const {
    os << " k=" << a.kernel_h << 'x' << a.kernel_w << " s=" << a.stride
       << " d=" << a.dilation << " p=" << static_cast<int>(a.padding)
       << " act=" << graph::ToString(a.activation);
  }
  void operator()(const graph::FullyConnectedAttrs& a) const {
    os << " of=" << a.out_features
       << " act=" << graph::ToString(a.activation);
  }
  void operator()(const graph::PoolAttrs& a) const {
    os << " k=" << a.kernel << " s=" << a.stride
       << " p=" << static_cast<int>(a.padding);
  }
  void operator()(const graph::ResizeAttrs& a) const {
    os << " oh=" << a.out_h << " ow=" << a.out_w;
  }
  void operator()(const graph::ConcatAttrs& a) const {
    os << " axis=" << a.axis;
  }
  void operator()(const graph::ReshapeAttrs& a) const {
    os << " dims=";
    for (const auto d : a.new_dims) os << d << ',';
  }
  void operator()(const graph::SoftmaxAttrs& a) const {
    os << " axis=" << a.axis;
  }
  void operator()(const graph::ActivationAttrs& a) const {
    os << " act=" << graph::ToString(a.activation);
  }
  void operator()(const graph::LayerNormAttrs& a) const {
    os << " eps=" << a.epsilon;
  }
  void operator()(const graph::EmbeddingAttrs& a) const {
    os << " vocab=" << a.vocab_size << " dim=" << a.embed_dim;
  }
  void operator()(const graph::AttentionAttrs& a) const {
    os << " heads=" << a.num_heads << " hd=" << a.head_dim;
  }
  void operator()(const graph::LstmAttrs& a) const {
    os << " hidden=" << a.hidden_dim;
  }
};

using RenameMap = std::unordered_map<std::string, std::string>;

// Follows declared edge replacements to a fixed point; the iteration cap
// makes an (illegal) rename cycle terminate instead of hanging the gate.
const std::string& Resolve(const std::string& name, const RenameMap* renames) {
  if (renames == nullptr) return name;
  const std::string* cur = &name;
  for (std::size_t hops = 0; hops <= renames->size(); ++hops) {
    const auto it = renames->find(*cur);
    if (it == renames->end()) break;
    cur = &it->second;
  }
  return *cur;
}

void PrintTensor(std::ostringstream& os, const graph::Graph& g,
                 graph::TensorId id, const RenameMap* renames) {
  if (id < 0 || static_cast<std::size_t>(id) >= g.tensors().size()) {
    os << "<invalid#" << id << '>';
    return;
  }
  const auto& t = g.tensors()[static_cast<std::size_t>(id)];
  os << Resolve(t.name, renames) << t.shape.ToString();
}

std::string Signature(const graph::Graph& g, const graph::Node& n,
                      const RenameMap* renames) {
  std::ostringstream os;
  os << graph::ToString(n.op);
  std::visit(AttrPrinter{os}, n.attrs);
  os << " in=[";
  for (const graph::TensorId id : n.inputs) {
    PrintTensor(os, g, id, renames);
    os << ' ';
  }
  os << "] w=[";
  for (const graph::TensorId id : n.weights) {
    PrintTensor(os, g, id, renames);
    os << ' ';
  }
  os << "] out=";
  PrintTensor(os, g, n.output, renames);
  return os.str();
}

}  // namespace

std::string NodeSignature(const graph::Graph& g, const graph::Node& n) {
  return Signature(g, n, nullptr);
}

std::vector<std::string> DiffOutsideTouched(
    const graph::Graph& before, const graph::Graph& after,
    const std::unordered_set<std::string>& touched,
    const std::unordered_map<std::string, std::string>& edge_renames) {
  std::vector<std::string> violations;

  // Untouched node names in storage order, plus name -> signature maps.
  // Before-side signatures are resolved through the declared renames.
  const auto collect = [&](const graph::Graph& g, const RenameMap* renames,
                           std::vector<std::string>& order,
                           std::unordered_map<std::string, std::string>& sig) {
    for (const graph::Node& n : g.nodes()) {
      if (touched.contains(n.name)) continue;
      order.push_back(n.name);
      sig.emplace(n.name, Signature(g, n, renames));
    }
  };
  std::vector<std::string> before_order, after_order;
  std::unordered_map<std::string, std::string> before_sig, after_sig;
  collect(before, &edge_renames, before_order, before_sig);
  collect(after, nullptr, after_order, after_sig);

  for (const std::string& name : before_order)
    if (!after_sig.contains(name))
      violations.push_back("node '" + name +
                           "' removed but not declared touched");
  for (const std::string& name : after_order) {
    const auto b = before_sig.find(name);
    if (b == before_sig.end()) {
      violations.push_back("node '" + name +
                           "' added but not declared touched");
    } else if (b->second != after_sig.at(name)) {
      violations.push_back("node '" + name +
                           "' rewritten but not declared touched (" +
                           b->second + " -> " + after_sig.at(name) + ")");
    }
  }
  if (violations.empty() && before_order != after_order)
    violations.push_back(
        "untouched nodes were reordered relative to each other");
  return violations;
}

}  // namespace mlpm::transform
