// SQuAD-style span F1 (question-answering task metric).
//
// Predicted and ground-truth answers are token spans [start, end]
// (inclusive); F1 is the harmonic mean of token-level precision and recall,
// averaged over the evaluation set — the standard SQuAD v1.1 protocol
// applied to span indices.
#pragma once

#include <span>

namespace mlpm::metrics {

struct TokenSpan {
  int start = 0;
  int end = 0;  // inclusive

  [[nodiscard]] int length() const { return end >= start ? end - start + 1 : 0; }
};

// Token-overlap F1 between a prediction and one ground-truth span.
[[nodiscard]] double SpanF1(const TokenSpan& prediction,
                            const TokenSpan& truth);

// Mean F1 over a set (SQuAD "dev F1", as a fraction in [0,1]).
[[nodiscard]] double MeanSpanF1(std::span<const TokenSpan> predictions,
                                std::span<const TokenSpan> truths);

// Exact-match rate (secondary SQuAD metric).
[[nodiscard]] double ExactMatch(std::span<const TokenSpan> predictions,
                                std::span<const TokenSpan> truths);

// Picks the best (start, end) span from per-position start/end logits with
// the standard constraints: end >= start, span length <= max_length.
// `start_logits` / `end_logits` have one entry per sequence position.
[[nodiscard]] TokenSpan BestSpan(std::span<const float> start_logits,
                                 std::span<const float> end_logits,
                                 int max_length = 30);

}  // namespace mlpm::metrics
