// Generic crash-safe frame log: the storage layer under the submission
// journal (DESIGN.md §12) and the fleet journal (§16).  A frame log is an
// append-only text file of checksummed frames,
//
//   mlpm_journal v1\n
//   <kind> <len> <fnv64-hex>\n
//   <len bytes of payload>\n
//   ...
//
// where `kind` names the frame type (the *interpretation* of kinds — which
// one must come first, what a payload decodes to — belongs to the caller).
// `len` counts the payload bytes excluding the trailing newline and the
// checksum is FNV-1a 64 over exactly those bytes.  Appends are flushed and
// fsync'd before returning; the loader never throws on damage, it recovers
// the longest physically-valid prefix and describes what it cut.
//
// The `wire` namespace holds the shared payload codec: line-oriented
// tag/key/value entries with length-prefixed byte blocks (arbitrary bytes
// round-trip) and hexfloat doubles (bit-exact round trip).
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mlpm::harness {

// FNV-1a 64-bit over a byte string; the frame checksum.
[[nodiscard]] std::uint64_t Fnv1a64(std::string_view bytes);

namespace wire {

// ---- payload encoding --------------------------------------------------
//
// Entries are one of:
//   u <key> <uint>\n
//   d <key> <hexfloat>\n            (bit-exact double round trip)
//   b <key> 0|1\n
//   s <key> <len>\n<len bytes>\n    (arbitrary bytes, incl. newlines)
//   D <key> <n> <hexfloat>...\n
//   U <key> <n> <uint>...\n
//   L <key> <n>\n  then n x  <len>\n<len bytes>\n

[[nodiscard]] std::string HexDouble(double v);
void PutU(std::string& out, std::string_view key, std::uint64_t v);
void PutD(std::string& out, std::string_view key, double v);
void PutB(std::string& out, std::string_view key, bool v);
void PutS(std::string& out, std::string_view key, std::string_view bytes);
void PutDV(std::string& out, std::string_view key,
           const std::vector<double>& v);
void PutUV(std::string& out, std::string_view key,
           const std::vector<std::size_t>& v);
void PutL(std::string& out, std::string_view key,
          const std::vector<std::string>& v);

// ---- payload decoding --------------------------------------------------

struct Field {
  char tag = '?';
  std::string key;
  std::string scalar;                // u/d/b value text
  std::string bytes;                 // s payload
  std::vector<double> doubles;       // D
  std::vector<std::uint64_t> uints;  // U
  std::vector<std::string> strings;  // L
};

// Strict scalar parsers; throw CheckError on anything but a full match.
[[nodiscard]] std::uint64_t ParseU64(const std::string& text);
[[nodiscard]] double ParseDouble(const std::string& text);

// Walks a payload, yielding entries.  Throws CheckError on any structural
// damage — the caller decides whether that aborts (writer-side) or just
// truncates the valid prefix (loader-side).
class PayloadParser {
 public:
  explicit PayloadParser(const std::string& payload) : payload_(payload) {}

  [[nodiscard]] bool Next(Field& f);

 private:
  [[nodiscard]] std::string TakeLine();
  [[nodiscard]] std::string TakeBlock(std::uint64_t len);

  const std::string& payload_;
  std::size_t pos_ = 0;
};

}  // namespace wire

// ---- frame-level loader ------------------------------------------------

struct RawFrame {
  std::string kind;
  std::string payload;
  std::size_t offset = 0;  // byte offset of the frame header line
  std::size_t end = 0;     // one past the payload terminator
};

struct FrameLogLoad {
  bool header_valid = false;  // file starts with the mlpm_journal header
  std::vector<RawFrame> frames;
  std::size_t file_size = 0;
  // Bytes past the last intact frame (a torn append, or corruption).
  bool torn_tail = false;
  std::size_t torn_bytes = 0;
  // Offset where the physically-valid prefix ends.
  std::size_t valid_prefix_bytes = 0;
  // Human-readable findings (torn record, checksum mismatch, ...).
  std::vector<std::string> notes;
};

// Reads every physically intact frame (header parses, payload present and
// terminated, checksum matches).  Never throws on damaged or missing files.
[[nodiscard]] FrameLogLoad LoadFrameLog(const std::string& path);

// Append-side handle.  Create() starts a fresh log (truncating whatever was
// at `path` and writing the header); OpenAt() re-opens an existing one for
// append after rewriting its first `valid_prefix_bytes` bytes (cutting any
// torn tail so the next append lands on a frame boundary).  AppendFrame is
// flushed and fsync'd before returning, and is NOT thread-safe — callers
// appending from several threads serialize externally.
class FrameLogWriter {
 public:
  [[nodiscard]] static FrameLogWriter Create(const std::string& path);
  [[nodiscard]] static FrameLogWriter OpenAt(const std::string& path,
                                             std::size_t valid_prefix_bytes);

  void AppendFrame(std::string_view kind, const std::string& payload);
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };

  FrameLogWriter(std::string path,
                 std::unique_ptr<std::FILE, FileCloser> file)
      : path_(std::move(path)), file_(std::move(file)) {}

  std::string path_;
  std::unique_ptr<std::FILE, FileCloser> file_;
};

}  // namespace mlpm::harness
