file(REMOVE_RECURSE
  "libmlpm_metrics.a"
)
