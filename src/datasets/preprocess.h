// Image preprocessing stages (paper §4.1): every submitter must run the
// same resize / crop / normalize steps; they are dataset-specific and
// implemented here once.  Operates on NHWC batch-1 float tensors.
#pragma once

#include "infer/tensor.h"

namespace mlpm::datasets {

// Bilinear resize to out_h x out_w (half-pixel centers).
[[nodiscard]] infer::Tensor ResizeBilinear(const infer::Tensor& image,
                                           std::int64_t out_h,
                                           std::int64_t out_w);

// Center crop to size x size; image must be at least that large.
[[nodiscard]] infer::Tensor CenterCrop(const infer::Tensor& image,
                                       std::int64_t size);

// In-place channel-uniform normalization: (v - mean) / std.
void Normalize(infer::Tensor& image, float mean, float stddev);

// The classification pipeline from the paper: resize (shorter side to
// size*1.143, the 256/224 ratio), center-crop to size, normalize to [-1,1].
[[nodiscard]] infer::Tensor ClassificationPreprocess(
    const infer::Tensor& raw_image, std::int64_t size);

// Detection / segmentation pipeline: direct resize to size x size plus
// normalization (COCO / ADE20K treatment in the reference app).
[[nodiscard]] infer::Tensor DirectResizePreprocess(
    const infer::Tensor& raw_image, std::int64_t size);

}  // namespace mlpm::datasets
