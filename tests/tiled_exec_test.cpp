// Tiled, fused pipeline execution (DESIGN.md §15).
//
// Two contracts are checked here.  Structural: bounds inference returns
// exactly the input box the kernels read; the planner's crops partition
// every segment output with no gap or overlap and never outgrow their
// slabs.  Behavioural: tiled execution is bit-identical to the whole-op
// oracle (the legacy Run overloads) for every reference model, numerics
// mode, kernel table, and thread count — and the tile-aware memory plan
// strictly shrinks the packed arena on every model with a fusable segment.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "graph/bounds.h"
#include "graph/box.h"
#include "graph/graph.h"
#include "infer/executor.h"
#include "infer/kernels/registry.h"
#include "infer/memory_plan.h"
#include "infer/tile_planner.h"
#include "infer/weights.h"
#include "models/zoo.h"
#include "quant/calibration.h"

namespace mlpm {
namespace {

std::vector<infer::Tensor> GraphInputs(const graph::Graph& g,
                                       std::uint64_t seed) {
  std::vector<infer::Tensor> inputs;
  Rng rng(seed);
  for (const graph::TensorId id : g.input_ids()) {
    infer::Tensor t(g.tensor(id).shape);
    for (auto& v : t.values())
      v = static_cast<float>(rng.NextUniform(0.0, 1.0));
    inputs.push_back(std::move(t));
  }
  return inputs;
}

void ExpectBitIdentical(const std::vector<infer::Tensor>& want,
                        const std::vector<infer::Tensor>& got,
                        const std::string& what) {
  ASSERT_EQ(want.size(), got.size()) << what;
  for (std::size_t o = 0; o < want.size(); ++o) {
    ASSERT_EQ(want[o].size(), got[o].size()) << what;
    for (std::size_t i = 0; i < want[o].size(); ++i)
      ASSERT_EQ(want[o].at(i), got[o].at(i))
          << what << " output " << o << " element " << i;
  }
}

// --- Bounds inference ------------------------------------------------------

TEST(BoundsInference, SameConvRowBandMatchesHandComputation) {
  graph::GraphBuilder b("conv");
  const auto in = b.Input("in", graph::TensorShape({1, 8, 8, 3}));
  const auto out = b.Conv2d(in, 4, 3, 1);  // k3 s1 SAME: pad_begin = 1
  b.MarkOutput(out);
  const graph::Graph g = std::move(b).Build();
  const graph::Node& n = g.nodes()[0];
  const graph::TensorShape& ish = g.tensor(in).shape;
  const graph::TensorShape& osh = g.tensor(out).shape;

  // Interior band [2, 5): input rows [2-1, 4-1+3) = [1, 6).
  graph::Box crop = graph::Box::FromShape(osh);
  crop.dims[1] = {2, 5};
  graph::Box box = graph::InferInputBounds(n, ish, osh, crop);
  EXPECT_EQ(box.dims[1], (graph::Interval{1, 6}));
  // W and C stay full-range for row-band crops.
  EXPECT_EQ(box.dims[2], (graph::Interval{0, 8}));
  EXPECT_EQ(box.dims[3], (graph::Interval{0, 3}));

  // Edge band [0, 2): the pad row is clamped away, input rows [0, 3).
  crop.dims[1] = {0, 2};
  box = graph::InferInputBounds(n, ish, osh, crop);
  EXPECT_EQ(box.dims[1], (graph::Interval{0, 3}));

  // The full crop maps to the full input box.
  EXPECT_EQ(graph::InferInputBounds(n, ish, osh, graph::Box::FromShape(osh)),
            graph::Box::FromShape(ish));
}

TEST(BoundsInference, StridedConvUsesStrideTimesBandPlusKernel) {
  graph::GraphBuilder b("strided");
  const auto in = b.Input("in", graph::TensorShape({1, 8, 8, 3}));
  const auto out = b.Conv2d(in, 4, 3, 2);  // k3 s2 SAME: out H = 4
  b.MarkOutput(out);
  const graph::Graph g = std::move(b).Build();
  const graph::Node& n = g.nodes()[0];
  const graph::TensorShape& ish = g.tensor(in).shape;
  const graph::TensorShape& osh = g.tensor(out).shape;
  ASSERT_EQ(osh.dim(1), 4);
  // SAME with in=8, out=4, k=3, s=2: pad_total = 1, pad_begin = 0.
  // Output rows [1, 3) read input rows [1*2-0, 2*2-0+3) = [2, 7).
  graph::Box crop = graph::Box::FromShape(osh);
  crop.dims[1] = {1, 3};
  const graph::Box box = graph::InferInputBounds(n, ish, osh, crop);
  EXPECT_EQ(box.dims[1], (graph::Interval{2, 7}));
}

TEST(BoundsInference, ElementwiseAndActivationCropsPassThrough) {
  graph::GraphBuilder b("ew");
  const auto in = b.Input("in", graph::TensorShape({1, 8, 8, 4}));
  const auto conv = b.Conv2d(in, 4, 3, 1);
  const auto act = b.Activate(conv, graph::Activation::kRelu);
  const auto sum = b.Add(act, in);
  b.MarkOutput(sum);
  const graph::Graph g = std::move(b).Build();
  const graph::TensorShape& shape = g.tensor(sum).shape;
  graph::Box crop = graph::Box::FromShape(shape);
  crop.dims[1] = {3, 6};
  for (std::size_t node : {std::size_t{1}, std::size_t{2}}) {  // act, add
    const graph::Node& n = g.nodes()[node];
    EXPECT_EQ(graph::InferInputBounds(n, shape, shape, crop), crop)
        << "node " << node;
  }
}

TEST(BoundsInference, PoolWindowHasNoPadding) {
  graph::GraphBuilder b("pool");
  const auto in = b.Input("in", graph::TensorShape({1, 8, 8, 4}));
  const auto pool = b.MaxPool(in, 2, 2);  // out H = 4, window starts at 2*oh
  b.MarkOutput(pool);
  const graph::Graph g = std::move(b).Build();
  const graph::Node& n = g.nodes()[0];
  graph::Box crop = graph::Box::FromShape(g.tensor(pool).shape);
  crop.dims[1] = {1, 2};
  const graph::Box box = graph::InferInputBounds(
      n, g.tensor(in).shape, g.tensor(pool).shape, crop);
  EXPECT_EQ(box.dims[1], (graph::Interval{2, 4}));
}

TEST(BoundsInference, ResizeBilinearSpansBothTapsOfTheBand) {
  graph::GraphBuilder b("resize");
  const auto in = b.Input("in", graph::TensorShape({1, 4, 4, 2}));
  const auto up = b.ResizeBilinear(in, 8, 8);  // 2x upsample, scale = 0.5
  b.MarkOutput(up);
  const graph::Graph g = std::move(b).Build();
  const graph::Node& n = g.nodes()[0];
  const graph::TensorShape& ish = g.tensor(in).shape;
  const graph::TensorShape& osh = g.tensor(up).shape;

  // Half-pixel centers: src(o) = (o+0.5)*0.5 - 0.5, clamped at 0.
  // Band [2, 4): y0(2) = floor(0.75) = 0, y0(3) = floor(1.25) = 1, so the
  // band reads taps y0..y1 of rows 0..1 -> input rows [0, 3).
  graph::Box crop = graph::Box::FromShape(osh);
  crop.dims[1] = {2, 4};
  graph::Box box = graph::InferInputBounds(n, ish, osh, crop);
  EXPECT_EQ(box.dims[1], (graph::Interval{0, 3}));
  EXPECT_EQ(box.dims[2], (graph::Interval{0, 4}));  // full-width crop

  // The first band clamps the half-pixel center at 0 but still reads both
  // taps y0 = 0 and y1 = 1 (y1's weight is zero; the kernel reads it
  // regardless, so the box must cover it).
  crop.dims[1] = {0, 1};
  box = graph::InferInputBounds(n, ish, osh, crop);
  EXPECT_EQ(box.dims[1], (graph::Interval{0, 2}));
  EXPECT_EQ(graph::InferInputBounds(n, ish, osh, graph::Box::FromShape(osh)),
            graph::Box::FromShape(ish));
}

// --- Tile planner structure ------------------------------------------------

graph::Graph MiniModel(const models::BenchmarkEntry& e) {
  return models::BuildReferenceGraph(e, models::SuiteVersion::kV1_0,
                                     models::ModelScale::kMini);
}

TEST(TilePlanner, DisabledRequestYieldsEmptyPlan) {
  const auto e = models::SuiteFor(models::SuiteVersion::kV1_0)[0];
  const graph::Graph g = MiniModel(e);
  EXPECT_TRUE(infer::BuildTilePlan(g, {}).empty());
  infer::TileOptions on;
  on.enabled = true;
  EXPECT_FALSE(infer::BuildTilePlan(g, on).empty());
}

TEST(TilePlanner, HasFusableSegmentAgreesWithBuildTilePlan) {
  infer::TileOptions on;
  on.enabled = true;
  std::size_t fusable = 0;
  for (const models::BenchmarkEntry& e :
       models::SuiteFor(models::SuiteVersion::kV1_0)) {
    const graph::Graph g = MiniModel(e);
    const bool has = infer::HasFusableSegment(g);
    EXPECT_EQ(has, !infer::BuildTilePlan(g, on).empty()) << e.id;
    fusable += has ? 1 : 0;
  }
  // The three vision models fuse; MobileBERT (no NHWC conv chain) does not.
  EXPECT_EQ(fusable, 3u);
}

// The partition property: for every segment, the planner's crops cover the
// output row range [0, out_rows) exactly once, and back-propagating each
// crop through the chain never needs more rows than the slab provisioned.
void CheckPartition(const graph::Graph& g, const infer::TilePlan& plan,
                    const std::string& what) {
  for (std::size_t si = 0; si < plan.segments.size(); ++si) {
    const infer::TileSegment& s = plan.segments[si];
    const std::string where = what + " segment " + std::to_string(si);
    ASSERT_GE(s.tile_rows, 1) << where;
    ASSERT_GT(s.out_rows, 0) << where;
    const std::size_t n_nodes =
        static_cast<std::size_t>(s.last_node - s.first_node + 1);
    ASSERT_EQ(s.interior.size(), n_nodes - 1) << where;
    ASSERT_EQ(s.slab_rows.size(), s.interior.size()) << where;

    std::int64_t covered = 0;
    for (std::int64_t t = 0; t < s.tile_count(); ++t) {
      const std::int64_t r0 = t * s.tile_rows;
      const std::int64_t r1 =
          r0 + s.tile_rows < s.out_rows ? r0 + s.tile_rows : s.out_rows;
      // No gap, no overlap: each tile starts where the last one ended.
      EXPECT_EQ(r0, covered) << where << " tile " << t;
      covered = r1;

      // Back-propagate the band tail -> head exactly as the executor does
      // and check every interior band fits the slab the planner sized.
      graph::Interval rows{r0, r1};
      for (std::size_t j = n_nodes; j-- > 1;) {
        const graph::Node& n =
            g.nodes()[static_cast<std::size_t>(s.first_node) + j];
        const graph::TensorShape& ish = g.tensor(n.inputs[0]).shape;
        const graph::TensorShape& osh = g.tensor(n.output).shape;
        graph::Box crop = graph::Box::FromShape(osh);
        crop.dims[1] = rows;
        rows = graph::InferInputBounds(n, ish, osh, crop).dims[1];
        EXPECT_LE(rows.length(), s.slab_rows[j - 1])
            << where << " tile " << t << " node " << j;
        EXPECT_GE(rows.begin, 0) << where;
        EXPECT_LE(rows.end, ish.dim(1)) << where;
      }
    }
    EXPECT_EQ(covered, s.out_rows) << where << " does not cover the output";
  }
}

TEST(TilePlanner, CropsExactlyPartitionEveryOutputBox) {
  for (const models::BenchmarkEntry& e :
       models::SuiteFor(models::SuiteVersion::kV1_0)) {
    const graph::Graph g = MiniModel(e);
    // Auto plus a sweep of forced bands, including one larger than any
    // segment's output (clamped) and the degenerate single-row band.
    for (const std::int64_t rows : {std::int64_t{-1}, std::int64_t{1},
                                    std::int64_t{2}, std::int64_t{3},
                                    std::int64_t{5}, std::int64_t{512}}) {
      infer::TileOptions opt;
      opt.enabled = true;
      opt.rows = rows;
      const infer::TilePlan plan = infer::BuildTilePlan(g, opt);
      CheckPartition(g, plan,
                     e.id + " rows=" + std::to_string(rows));
    }
  }
}

TEST(TilePlanner, SegmentNodeMapAndInteriorFlagsAreConsistent) {
  infer::TileOptions on;
  on.enabled = true;
  for (const models::BenchmarkEntry& e :
       models::SuiteFor(models::SuiteVersion::kV1_0)) {
    const graph::Graph g = MiniModel(e);
    const infer::TilePlan plan = infer::BuildTilePlan(g, on);
    if (plan.empty()) continue;
    ASSERT_EQ(plan.segment_of_node.size(), g.nodes().size()) << e.id;
    ASSERT_EQ(plan.interior.size(), g.tensors().size()) << e.id;
    std::size_t interior_count = 0;
    for (std::size_t si = 0; si < plan.segments.size(); ++si) {
      const infer::TileSegment& s = plan.segments[si];
      for (std::int32_t m = s.first_node; m <= s.last_node; ++m)
        EXPECT_EQ(plan.segment_of_node[static_cast<std::size_t>(m)],
                  static_cast<std::int32_t>(si))
            << e.id;
      for (const graph::TensorId id : s.interior) {
        EXPECT_TRUE(plan.interior[static_cast<std::size_t>(id)]) << e.id;
        ++interior_count;
      }
      // The segment's final output is not interior: it lands in the arena.
      const graph::Node& tail =
          g.nodes()[static_cast<std::size_t>(s.last_node)];
      EXPECT_FALSE(plan.interior[static_cast<std::size_t>(tail.output)])
          << e.id;
    }
    std::size_t flagged = 0;
    for (const bool f : plan.interior) flagged += f ? 1 : 0;
    EXPECT_EQ(flagged, interior_count) << e.id;
  }
}

// --- Tile-aware memory plan ------------------------------------------------

TEST(TiledMemoryPlan, ShrinksPeakArenaOnEverySegmentedModel) {
  infer::TileOptions on;
  on.enabled = true;
  std::size_t segmented = 0;
  for (const models::BenchmarkEntry& e :
       models::SuiteFor(models::SuiteVersion::kV1_0)) {
    const graph::Graph g = MiniModel(e);
    const infer::MemoryPlan untiled = infer::MemoryPlan::Build(g);
    const infer::TilePlan tiles = infer::BuildTilePlan(g, on);
    if (tiles.empty()) continue;
    ++segmented;
    const infer::MemoryPlan tiled = infer::MemoryPlan::Build(g, &tiles);
    // Interiors leave the arena, so the packed arena strictly shrinks.
    EXPECT_LT(tiled.peak_arena_bytes(), untiled.peak_arena_bytes()) << e.id;
    EXPECT_EQ(tiled.tile_slab_bytes(), tiles.slab_bytes()) << e.id;
    EXPECT_EQ(tiled.planned_activation_bytes(),
              tiled.peak_arena_bytes() + tiled.tile_slab_bytes())
        << e.id;
    EXPECT_EQ(untiled.tile_slab_bytes(), 0u) << e.id;
  }
  EXPECT_EQ(segmented, 3u);
}

TEST(TiledMemoryPlan, IntervalBytesCoverArenaBuffersAndSlabs) {
  const auto e = models::SuiteFor(models::SuiteVersion::kV1_0)[0];
  const graph::Graph g = MiniModel(e);
  infer::TileOptions on;
  on.enabled = true;
  const infer::TilePlan tiles = infer::BuildTilePlan(g, on);
  ASSERT_FALSE(tiles.empty());
  const infer::MemoryPlan plan = infer::MemoryPlan::Build(g, &tiles);

  std::size_t arena_intervals = 0;
  std::size_t slab_intervals = 0;
  std::int64_t last_def = -2;
  for (const infer::IntervalBytes& iv : plan.interval_bytes()) {
    EXPECT_GE(iv.def, last_def) << "intervals must be (def, root)-sorted";
    last_def = iv.def;
    EXPECT_GT(iv.bytes, 0u);
    if (iv.kind == infer::PlacementKind::kArena) ++arena_intervals;
    else if (iv.kind == infer::PlacementKind::kTileSlab) ++slab_intervals;
    else FAIL() << "unexpected interval kind";
  }
  EXPECT_EQ(arena_intervals, plan.buffers().size());
  std::size_t interiors = 0;
  for (const infer::TileSegment& s : tiles.segments)
    interiors += s.interior.size();
  EXPECT_EQ(slab_intervals, interiors);
}

// --- Tiled execution vs the whole-op oracle --------------------------------

// The equivalence matrix the acceptance criteria name: every v1.0 reference
// model x {fp32, fp16, int8} x {scalar, auto ISA} x {serial, 4 threads},
// tiled (auto band and a deliberately awkward 3-row band) vs the legacy
// whole-op overload of the *same* executor, which ignores tiling and is the
// oracle.  INT8 must be bitwise; fp32/fp16 are too, because tiled kernels
// perform identical per-element operations in identical order.
TEST(TiledExecution, BitIdenticalToWholeOpOracleEverywhere) {
  ThreadPool pool(4);
  for (const models::BenchmarkEntry& e :
       models::SuiteFor(models::SuiteVersion::kV1_0)) {
    const graph::Graph g = MiniModel(e);
    const infer::WeightStore w = infer::InitializeWeights(g, 7);
    const std::vector<infer::Tensor> inputs = GraphInputs(g, 42);
    const std::vector<quant::CalibrationSample> samples{GraphInputs(g, 1),
                                                        GraphInputs(g, 2)};
    const infer::QuantParams qp = quant::CalibratePtq(g, w, samples);

    for (const infer::kernels::KernelIsa isa :
         {infer::kernels::KernelIsa::kScalar,
          infer::kernels::KernelIsa::kAuto}) {
      for (const infer::NumericsMode mode :
           {infer::NumericsMode::kFp32, infer::NumericsMode::kFp16,
            infer::NumericsMode::kInt8}) {
        for (const std::int64_t rows : {std::int64_t{-1}, std::int64_t{3}}) {
          infer::TileOptions opt;
          opt.enabled = true;
          opt.rows = rows;
          const infer::Executor exec(
              g, w, mode,
              mode == infer::NumericsMode::kInt8 ? &qp : nullptr, isa, opt);
          const std::string what = e.id + "/" +
                                   std::string(ToString(mode)) + "/isa" +
                                   std::to_string(static_cast<int>(isa)) +
                                   "/rows" + std::to_string(rows);
          if (infer::HasFusableSegment(g)) {
            ASSERT_TRUE(exec.tiled()) << what;
          }

          const auto oracle = exec.Run(inputs);  // legacy = whole-op
          infer::ExecutionContext ctx = exec.CreateContext();
          // Twice through one context: stale slab or arena state from the
          // first tiled run would surface in the second.
          ExpectBitIdentical(oracle, exec.Run(inputs, ctx), what + " run1");
          ExpectBitIdentical(oracle, exec.Run(inputs, ctx), what + " run2");
          ExpectBitIdentical(oracle, exec.Run(inputs, ctx, {}, &pool),
                             what + " threaded");
        }
      }
    }
  }
}

// Tiling plus an observer falls back to whole-op execution (calibration
// needs full intermediates), still bit-identical and still arena-backed.
TEST(TiledExecution, ObserverRunsFallBackToWholeOp) {
  const auto e = models::SuiteFor(models::SuiteVersion::kV1_0)[0];
  const graph::Graph g = MiniModel(e);
  const infer::WeightStore w = infer::InitializeWeights(g, 7);
  infer::TileOptions opt;
  opt.enabled = true;
  const infer::Executor exec(g, w, infer::NumericsMode::kFp32, nullptr,
                             infer::kernels::KernelIsa::kAuto, opt);
  ASSERT_TRUE(exec.tiled());
  const auto inputs = GraphInputs(g, 11);
  const auto oracle = exec.Run(inputs);
  infer::ExecutionContext ctx = exec.CreateContext();
  std::size_t observed = 0;
  const auto observer = [&](graph::TensorId, const infer::Tensor&) {
    ++observed;
  };
  ExpectBitIdentical(oracle, exec.Run(inputs, ctx, observer), "observer");
  // The observer saw every node, including segment interiors — proof the
  // run went through the whole-op path.
  EXPECT_EQ(observed, g.nodes().size());
}

}  // namespace
}  // namespace mlpm
