// Quantization legality (QUANT001-QUANT008).
//
// The run rules (paper §5.1) freeze what a submission may do to the
// numerics: start from the frozen FP32 graph, quantize post-training against
// the approved calibration subset, and use retrained (QAT) weights only
// where mutually agreed — in practice, for INT8.  This pass checks a
// submission's declared quantization recipe against those rules plus the
// grid-level invariants an 8-bit asymmetric scheme needs to be executable at
// all (finite positive scales, in-range zero-points, a representable zero).
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "analysis/passes.h"
#include "quant/rules.h"

namespace mlpm::analysis {
namespace {

using infer::TensorRange;

void CheckBits(const QuantConfigView& q, DiagnosticEngine& de) {
  if (q.activation_bits != 8)
    de.Report("QUANT001", ConfigSource("quant.activation_bits"),
              "activation bit width " + std::to_string(q.activation_bits) +
                  " is illegal; the rules freeze the 8-bit grid");
  if (q.weight_bits != 8)
    de.Report("QUANT001", ConfigSource("quant.weight_bits"),
              "weight bit width " + std::to_string(q.weight_bits) +
                  " is illegal; the rules freeze the 8-bit grid");
}

void CheckDtypeMixing(const QuantConfigView& q, DiagnosticEngine& de) {
  if (!IsQuantized(q.weight_dtype))
    de.Report("QUANT004", ConfigSource("quant.weight_dtype"),
              std::string("weight dtype ") + std::string(ToString(q.weight_dtype)) +
                  " is not a quantized format");
  // s8 activations with u8 weights has no legal TFLite lowering; u8
  // activations with s8 per-channel weights is the standard scheme.
  if (q.weight_dtype == DataType::kUInt8 &&
      q.activation_dtype == DataType::kInt8)
    de.Report("QUANT004", ConfigSource("quant.weight_dtype"),
              "UINT8 weights cannot be mixed with INT8 activations");
  if (q.per_channel_weights && q.weight_dtype == DataType::kUInt8)
    de.Report("QUANT004", ConfigSource("quant.per_channel_weights"),
              "per-channel weights are symmetric INT8; UINT8 weights are "
              "per-tensor only");
}

void CheckPerChannelAxis(const graph::Graph& g, const QuantConfigView& q,
                         DiagnosticEngine& de) {
  if (!q.per_channel_weights) return;
  if (q.per_channel_axis != 0) {
    de.Report("QUANT003", ConfigSource("quant.per_channel_axis"),
              "per-channel axis " + std::to_string(q.per_channel_axis) +
                  " is invalid: weight tensors are laid out "
                  "[out_channels, ...], so the only legal axis is 0");
    return;
  }
  // Axis 0 must exist on every weight tensor it quantizes.
  for (std::size_t i = 0; i < g.tensors().size(); ++i) {
    const graph::TensorInfo& t = g.tensors()[i];
    if (t.kind == graph::TensorKind::kWeight && t.shape.rank() == 0)
      de.Report("QUANT003", TensorSource(t.name, static_cast<std::int32_t>(i)),
                "rank-0 weight tensor has no channel axis");
  }
}

void CheckQatRules(const QuantConfigView& q, DiagnosticEngine& de) {
  if (q.qat_weights && !IsQuantized(q.activation_dtype))
    de.Report("QUANT005", ConfigSource("quant.use_qat_weights"),
              std::string("QAT weights requested for a ") +
                  std::string(ToString(q.activation_dtype)) +
                  " submission; the mutually-agreed QAT checkpoints exist "
                  "for INT8 only (submitter retraining is forbidden)");
}

void CheckRanges(const graph::Graph& g, const QuantConfigView& q,
                 DiagnosticEngine& de) {
  if (q.params == nullptr) return;
  const double levels =
      std::pow(2.0, q.params->activation_bits > 0 ? q.params->activation_bits
                                                  : q.activation_bits) -
      1.0;
  // activation_ranges is unordered; fix the report order by tensor id so
  // the diagnostic stream (and its JSON snapshot) is deterministic.
  std::vector<graph::TensorId> ids;
  ids.reserve(q.params->activation_ranges.size());
  for (const auto& [tid, range] : q.params->activation_ranges)
    ids.push_back(tid);
  std::sort(ids.begin(), ids.end());
  for (const graph::TensorId tid : ids) {
    const TensorRange& range = q.params->activation_ranges.at(tid);
    const bool known =
        tid >= 0 && static_cast<std::size_t>(tid) < g.tensors().size();
    const SourceRef src =
        known ? TensorSource(g.tensor(tid).name, tid)
              : TensorSource("<missing>", tid);
    if (!known) {
      de.Report("QUANT007", src,
                "activation range refers to a tensor id not in the graph");
      continue;
    }
    if (g.tensor(tid).kind != graph::TensorKind::kActivation) {
      de.Report("QUANT007", src,
                "activation range recorded for weight tensor '" +
                    g.tensor(tid).name + "'");
      continue;
    }
    if (!std::isfinite(range.min) || !std::isfinite(range.max)) {
      de.Report("QUANT002", src, "activation range is not finite");
      continue;
    }
    if (range.min > range.max) {
      de.Report("QUANT002", src,
                "activation range has min > max (" +
                    std::to_string(range.min) + " > " +
                    std::to_string(range.max) + ")");
      continue;
    }
    if (range.min == range.max) continue;  // degenerate: passthrough
    const double scale = (static_cast<double>(range.max) - range.min) / levels;
    if (!(scale > 0.0) || !std::isfinite(scale)) {
      de.Report("QUANT002", src,
                "derived scale " + std::to_string(scale) + " is illegal");
      continue;
    }
    if (range.min > 0.0f || range.max < 0.0f)
      de.Report("QUANT008", src,
                "range [" + std::to_string(range.min) + ", " +
                    std::to_string(range.max) +
                    "] cannot represent zero exactly; zero-padding and "
                    "zero-points will be biased");
  }
}

void CheckCalibration(const QuantConfigView& q, DiagnosticEngine& de) {
  if (q.approved_calibration.empty() && q.used_calibration.empty()) return;
  const quant::LegalityReport r =
      quant::CheckCalibrationSet(q.approved_calibration, q.used_calibration);
  for (const std::string& v : r.violations)
    de.Report("QUANT006", ConfigSource("quant.calibration_indices"), v);
}

}  // namespace

void CheckQuantLegality(const graph::Graph& g, const QuantConfigView& q,
                        DiagnosticEngine& de) {
  // QAT misuse is checkable (and worth reporting) even for float
  // submissions; the grid checks only make sense for quantized ones.
  CheckQatRules(q, de);
  if (!IsQuantized(q.activation_dtype)) return;
  CheckBits(q, de);
  CheckDtypeMixing(q, de);
  CheckPerChannelAxis(g, q, de);
  CheckRanges(g, q, de);
  CheckCalibration(q, de);
}

}  // namespace mlpm::analysis
