// Elementwise-chain fusion: collapses two adjacent standalone clamp
// activations into one when their composition is itself a single clamp:
//
//   relu(relu(x))  = relu(x)      relu6(relu(x))  = relu6(x)
//   relu(relu6(x)) = relu6(x)     relu6(relu6(x)) = relu6(x)
//
// The composition is an algebraic identity on reals and both sides round
// identically under FP16 (clamp bounds are binary16-exact), so the rewrite
// runs under FP32 and FP16.  Under INT8 it removes a fake-quantization
// point and is refused (XFM004).

#include <optional>
#include <string>
#include <vector>

#include "transform/pass_util.h"
#include "transform/passes.h"

namespace mlpm::transform {
namespace {

using graph::Activation;

// Composition b∘a restricted to the clamp family; nullopt otherwise.
std::optional<Activation> Compose(Activation a, Activation b) {
  if (!detail::IsClampFamily(a) || !detail::IsClampFamily(b))
    return std::nullopt;
  return (a == Activation::kRelu6 || b == Activation::kRelu6)
             ? Activation::kRelu6
             : Activation::kRelu;
}

class ElementwiseChainPass final : public TransformPass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "elementwise-chain";
  }
  [[nodiscard]] std::span<const Invariant> preserved() const override {
    return kAllInvariants;
  }

  void Run(MutableGraph& g, PassContext& ctx) const override {
    auto producers = g.BuildProducers();
    auto consumers = g.BuildConsumers();
    for (std::size_t i = 0; i < g.nodes().size(); ++i) {
      if (!g.alive(i)) continue;
      graph::Node& second = g.nodes()[i];
      if (second.op != graph::OpType::kActivation) continue;

      const graph::TensorId mid = second.inputs[0];
      const std::int32_t p =
          (mid >= 0 && static_cast<std::size_t>(mid) < producers.size())
              ? producers[static_cast<std::size_t>(mid)]
              : -1;
      if (p < 0) continue;
      const auto pi = static_cast<std::size_t>(p);
      const graph::Node& first = g.nodes()[pi];
      if (first.op != graph::OpType::kActivation) continue;

      const auto composed = Compose(
          std::get<graph::ActivationAttrs>(first.attrs).activation,
          std::get<graph::ActivationAttrs>(second.attrs).activation);
      if (!composed) continue;
      if (consumers[static_cast<std::size_t>(mid)].size() != 1 ||
          g.IsGraphOutput(mid))
        continue;

      if (ctx.mode == infer::NumericsMode::kInt8) {
        ctx.Skip("collapsing '" + first.name + "' into '" + second.name +
                 "' would remove a quantization point under INT8");
        continue;
      }

      second.attrs = graph::ActivationAttrs{*composed};
      second.inputs[0] = first.inputs[0];
      g.Kill(pi);
      ctx.Touch(first.name);
      ctx.Touch(second.name);
      ++ctx.rewrites;
      // Edges changed; rebuild the indices so longer chains keep folding.
      producers = g.BuildProducers();
      consumers = g.BuildConsumers();
    }
  }
};

}  // namespace

std::unique_ptr<TransformPass> MakeElementwiseChainPass() {
  return std::make_unique<ElementwiseChainPass>();
}

}  // namespace mlpm::transform
