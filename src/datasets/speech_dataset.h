// Synthetic speech data set for the RNN-T encoder extension (paper App. E).
//
// Samples are smooth synthetic feature sequences (a stand-in for log-mel
// spectrograms); reference transcripts are the FP32 teacher's own greedy
// CTC decode with seeded token drops/substitutions.  The score is
// 1 - token error rate, clamped to [0, 1].
#pragma once

#include <cstdint>
#include <vector>

#include "datasets/task_dataset.h"
#include "infer/weights.h"
#include "models/rnnt.h"

namespace mlpm::datasets {

struct SpeechDatasetConfig {
  std::size_t num_samples = 48;
  double token_drop_rate = 0.04;
  double token_substitution_rate = 0.04;
  std::uint64_t seed = 0x5BEECB;
};

class SpeechDataset final : public TaskDataset {
 public:
  SpeechDataset(const graph::Graph& model, const infer::WeightStore& weights,
                models::RnntConfig model_cfg, SpeechDatasetConfig config);

  [[nodiscard]] std::size_t size() const override { return refs_.size(); }
  [[nodiscard]] std::vector<infer::Tensor> InputsFor(
      std::size_t index) const override;
  [[nodiscard]] double ScoreOutputs(
      std::span<const std::vector<infer::Tensor>> outputs) const override;
  [[nodiscard]] std::string_view metric_name() const override {
    return "1-WER";
  }
  [[nodiscard]] std::vector<infer::Tensor> CalibrationInputsFor(
      std::size_t index) const override;

  [[nodiscard]] const std::vector<int>& ReferenceFor(std::size_t index) const;

 private:
  [[nodiscard]] infer::Tensor MakeFeatures(std::uint64_t name_space,
                                           std::size_t index) const;

  models::RnntConfig model_cfg_;
  SpeechDatasetConfig cfg_;
  std::vector<std::vector<int>> refs_;
};

}  // namespace mlpm::datasets
