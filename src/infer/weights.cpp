#include "infer/weights.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

#include "common/rng.h"

namespace mlpm::infer {

const Tensor& WeightStore::Get(const std::string& name) const {
  const auto it = store_.find(name);
  Expects(it != store_.end(), "weight not found: " + name);
  return it->second;
}

bool WeightStore::Contains(const std::string& name) const {
  return store_.contains(name);
}

void WeightStore::Put(std::string name, Tensor t) {
  store_.insert_or_assign(std::move(name), std::move(t));
}

WeightStore InitializeWeights(const graph::Graph& g, std::uint64_t seed) {
  WeightStore ws;
  const Rng base(seed);
  std::uint64_t tag = 0;
  for (const auto& info : g.tensors()) {
    ++tag;
    if (info.kind != graph::TensorKind::kWeight) continue;
    Rng rng = base.Split(tag);
    Tensor t(info.shape);

    const bool is_bias = info.shape.rank() == 1;
    const bool is_norm_param = info.name.ends_with("/gamma") ||
                               info.name.ends_with("/beta");
    if (is_norm_param) {
      const float v = info.name.ends_with("/gamma") ? 1.0f : 0.0f;
      for (auto& x : t.values()) x = v;
      ws.Put(info.name, std::move(t));
      continue;
    }
    if (is_bias) {
      // Small biases; zero-mean so quantization zero-points stay sane.
      for (auto& x : t.values())
        x = static_cast<float>(rng.NextGaussian() * 0.01);
      ws.Put(info.name, std::move(t));
      continue;
    }

    // Fan-in = product of all dims except the first (output) dim.
    std::int64_t fan_in = 1;
    for (std::size_t d = 1; d < info.shape.rank(); ++d)
      fan_in *= info.shape.dim(d);
    if (fan_in == 0) fan_in = 1;
    const double scale = std::sqrt(2.0 / static_cast<double>(fan_in));
    for (auto& x : t.values())
      x = static_cast<float>(rng.NextGaussian() * scale);
    ws.Put(info.name, std::move(t));
  }
  return ws;
}

std::string SerializeWeights(const WeightStore& store) {
  // Deterministic output: tensors sorted by name.
  std::map<std::string, const Tensor*> sorted;
  for (const auto& [name, tensor] : store.raw()) sorted[name] = &tensor;

  std::ostringstream os;
  os << "mlpm_weights v1\n";
  char buf[64];
  for (const auto& [name, tensor] : sorted) {
    os << "tensor " << tensor->shape().rank();
    for (auto d : tensor->shape().dims()) os << ' ' << d;
    os << ' ' << name << '\n';
    for (std::size_t i = 0; i < tensor->size(); ++i) {
      // Hexfloat: exact binary round-trip.
      std::snprintf(buf, sizeof buf, "%a",
                    static_cast<double>(tensor->data()[i]));
      os << buf << (i + 1 == tensor->size() ? '\n' : ' ');
    }
  }
  return os.str();
}

WeightStore ParseWeights(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  Expects(static_cast<bool>(std::getline(is, line)) &&
              line == "mlpm_weights v1",
          "unknown weights format");
  WeightStore store;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream header(line);
    std::string tag;
    std::size_t rank = 0;
    header >> tag >> rank;
    Expects(tag == "tensor" && !header.fail(),
            "malformed weight header: " + line);
    std::vector<std::int64_t> dims(rank);
    for (auto& d : dims) header >> d;
    std::string name;
    header >> name;
    Expects(!header.fail() && !name.empty(),
            "malformed weight header: " + line);

    Tensor t{graph::TensorShape(std::move(dims))};
    Expects(static_cast<bool>(std::getline(is, line)),
            "missing values for weight " + name);
    std::istringstream values(line);
    for (std::size_t i = 0; i < t.size(); ++i) {
      std::string tok;
      Expects(static_cast<bool>(values >> tok),
              "too few values for weight " + name);
      t.data()[i] = std::strtof(tok.c_str(), nullptr);
    }
    std::string extra;
    Expects(!(values >> extra), "too many values for weight " + name);
    store.Put(name, std::move(t));
  }
  return store;
}

}  // namespace mlpm::infer
