// Tests for the reference executor: kernel correctness against
// hand-computed values, numerics modes, weight determinism, and the
// integer GEMM.
#include <gtest/gtest.h>

#include <cmath>

#include "common/fp16.h"
#include "common/rng.h"
#include "infer/executor.h"
#include "infer/int8_gemm.h"
#include "infer/weights.h"

namespace mlpm::infer {
namespace {

using graph::Activation;
using graph::GraphBuilder;
using graph::TensorId;
using graph::TensorShape;

// Builds a graph with one op and runs it with explicit weights.
struct SingleOpRig {
  graph::Graph g;
  WeightStore weights;

  std::vector<Tensor> Run(Tensor input, NumericsMode mode = NumericsMode::kFp32,
                          const QuantParams* qp = nullptr) const {
    const Executor exec(g, weights, mode, qp);
    const std::vector<Tensor> in{std::move(input)};
    return exec.Run(in);
  }
};

TEST(Executor, ConvIdentityKernel) {
  GraphBuilder b("t");
  TensorId x = b.Input("in", {1, 3, 3, 1});
  b.MarkOutput(b.Conv2d(x, 1, 1, 1, Activation::kNone, graph::Padding::kSame,
                        1, "c"));
  SingleOpRig rig{std::move(b).Build(), {}};
  rig.weights.Put("c/w", Tensor(TensorShape({1, 1, 1, 1}), {2.0f}));
  rig.weights.Put("c/b", Tensor(TensorShape({1}), {0.5f}));

  Tensor in(TensorShape({1, 3, 3, 1}));
  for (std::size_t i = 0; i < 9; ++i) in.data()[i] = static_cast<float>(i);
  const auto out = rig.Run(std::move(in));
  for (std::size_t i = 0; i < 9; ++i)
    EXPECT_FLOAT_EQ(out[0].data()[i], 2.0f * static_cast<float>(i) + 0.5f);
}

TEST(Executor, Conv3x3SumKernelSamePadding) {
  GraphBuilder b("t");
  TensorId x = b.Input("in", {1, 3, 3, 1});
  b.MarkOutput(b.Conv2d(x, 1, 3, 1, Activation::kNone, graph::Padding::kSame,
                        1, "c"));
  SingleOpRig rig{std::move(b).Build(), {}};
  rig.weights.Put("c/w",
                  Tensor(TensorShape({1, 3, 3, 1}),
                         std::vector<float>(9, 1.0f)));
  rig.weights.Put("c/b", Tensor(TensorShape({1}), {0.0f}));

  Tensor in(TensorShape({1, 3, 3, 1}));
  for (auto& v : in.values()) v = 1.0f;
  const auto out = rig.Run(std::move(in));
  // Center pixel sees all 9 ones; corner sees 4.
  EXPECT_FLOAT_EQ(out[0].data()[4], 9.0f);
  EXPECT_FLOAT_EQ(out[0].data()[0], 4.0f);
  EXPECT_FLOAT_EQ(out[0].data()[2], 4.0f);
  EXPECT_FLOAT_EQ(out[0].data()[1], 6.0f);
}

TEST(Executor, ConvStrideTwoPicksAlternatePixels) {
  GraphBuilder b("t");
  TensorId x = b.Input("in", {1, 4, 4, 1});
  b.MarkOutput(b.Conv2d(x, 1, 1, 2, Activation::kNone, graph::Padding::kSame,
                        1, "c"));
  SingleOpRig rig{std::move(b).Build(), {}};
  rig.weights.Put("c/w", Tensor(TensorShape({1, 1, 1, 1}), {1.0f}));
  rig.weights.Put("c/b", Tensor(TensorShape({1}), {0.0f}));
  Tensor in(TensorShape({1, 4, 4, 1}));
  for (std::size_t i = 0; i < 16; ++i) in.data()[i] = static_cast<float>(i);
  const auto out = rig.Run(std::move(in));
  EXPECT_EQ(out[0].shape(), TensorShape({1, 2, 2, 1}));
  EXPECT_FLOAT_EQ(out[0].data()[0], 0.0f);
  EXPECT_FLOAT_EQ(out[0].data()[1], 2.0f);
  EXPECT_FLOAT_EQ(out[0].data()[2], 8.0f);
  EXPECT_FLOAT_EQ(out[0].data()[3], 10.0f);
}

TEST(Executor, ReluActivationClamps) {
  GraphBuilder b("t");
  TensorId x = b.Input("in", {4});
  b.MarkOutput(b.Activate(x, Activation::kRelu));
  SingleOpRig rig{std::move(b).Build(), {}};
  const auto out =
      rig.Run(Tensor(TensorShape({4}), {-1.0f, 0.0f, 2.0f, -0.5f}));
  EXPECT_FLOAT_EQ(out[0].data()[0], 0.0f);
  EXPECT_FLOAT_EQ(out[0].data()[2], 2.0f);
}

TEST(Executor, Relu6Caps) {
  GraphBuilder b("t");
  TensorId x = b.Input("in", {3});
  b.MarkOutput(b.Activate(x, Activation::kRelu6));
  SingleOpRig rig{std::move(b).Build(), {}};
  const auto out = rig.Run(Tensor(TensorShape({3}), {-1.0f, 3.0f, 9.0f}));
  EXPECT_FLOAT_EQ(out[0].data()[0], 0.0f);
  EXPECT_FLOAT_EQ(out[0].data()[1], 3.0f);
  EXPECT_FLOAT_EQ(out[0].data()[2], 6.0f);
}

TEST(Executor, SoftmaxSumsToOne) {
  GraphBuilder b("t");
  TensorId x = b.Input("in", {2, 4});
  b.MarkOutput(b.Softmax(x));
  SingleOpRig rig{std::move(b).Build(), {}};
  Tensor in(TensorShape({2, 4}));
  Rng rng(3);
  for (auto& v : in.values()) v = static_cast<float>(rng.NextGaussian() * 5);
  const auto out = rig.Run(std::move(in));
  for (int row = 0; row < 2; ++row) {
    double sum = 0.0;
    for (int i = 0; i < 4; ++i) sum += out[0].data()[row * 4 + i];
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Executor, SoftmaxIsShiftInvariant) {
  GraphBuilder b("t");
  TensorId x = b.Input("in", {1, 3});
  b.MarkOutput(b.Softmax(x));
  SingleOpRig rig{std::move(b).Build(), {}};
  const auto out1 = rig.Run(Tensor(TensorShape({1, 3}), {1.0f, 2.0f, 3.0f}));
  const auto out2 =
      rig.Run(Tensor(TensorShape({1, 3}), {101.0f, 102.0f, 103.0f}));
  for (int i = 0; i < 3; ++i)
    EXPECT_NEAR(out1[0].data()[i], out2[0].data()[i], 1e-5);
}

TEST(Executor, MaxPoolTakesMaxima) {
  GraphBuilder b("t");
  TensorId x = b.Input("in", {1, 2, 2, 1});
  b.MarkOutput(b.MaxPool(x, 2, 2));
  SingleOpRig rig{std::move(b).Build(), {}};
  const auto out =
      rig.Run(Tensor(TensorShape({1, 2, 2, 1}), {1.0f, 7.0f, 3.0f, 2.0f}));
  EXPECT_FLOAT_EQ(out[0].data()[0], 7.0f);
}

TEST(Executor, AvgPoolAverages) {
  GraphBuilder b("t");
  TensorId x = b.Input("in", {1, 2, 2, 1});
  b.MarkOutput(b.AvgPool(x, 2, 2));
  SingleOpRig rig{std::move(b).Build(), {}};
  const auto out =
      rig.Run(Tensor(TensorShape({1, 2, 2, 1}), {1.0f, 7.0f, 3.0f, 1.0f}));
  EXPECT_FLOAT_EQ(out[0].data()[0], 3.0f);
}

TEST(Executor, GlobalAvgPool) {
  GraphBuilder b("t");
  TensorId x = b.Input("in", {1, 2, 2, 2});
  b.MarkOutput(b.GlobalAvgPool(x));
  SingleOpRig rig{std::move(b).Build(), {}};
  const auto out = rig.Run(Tensor(
      TensorShape({1, 2, 2, 2}),
      {1.0f, 10.0f, 2.0f, 20.0f, 3.0f, 30.0f, 4.0f, 40.0f}));
  EXPECT_FLOAT_EQ(out[0].data()[0], 2.5f);
  EXPECT_FLOAT_EQ(out[0].data()[1], 25.0f);
}

TEST(Executor, ResizeBilinearIdentityAtSameSize) {
  GraphBuilder b("t");
  TensorId x = b.Input("in", {1, 3, 3, 1});
  b.MarkOutput(b.ResizeBilinear(x, 3, 3));
  SingleOpRig rig{std::move(b).Build(), {}};
  Tensor in(TensorShape({1, 3, 3, 1}));
  for (std::size_t i = 0; i < 9; ++i) in.data()[i] = static_cast<float>(i);
  const auto out = rig.Run(std::move(in));
  for (std::size_t i = 0; i < 9; ++i)
    EXPECT_NEAR(out[0].data()[i], static_cast<float>(i), 1e-5);
}

TEST(Executor, ResizeBilinearConstantField) {
  GraphBuilder b("t");
  TensorId x = b.Input("in", {1, 2, 2, 1});
  b.MarkOutput(b.ResizeBilinear(x, 7, 7));
  SingleOpRig rig{std::move(b).Build(), {}};
  Tensor in(TensorShape({1, 2, 2, 1}));
  for (auto& v : in.values()) v = 4.5f;
  const auto out = rig.Run(std::move(in));
  for (const float v : out[0].values()) EXPECT_NEAR(v, 4.5f, 1e-5);
}

TEST(Executor, ConcatOnLastAxis) {
  GraphBuilder b("t");
  TensorId x = b.Input("a", {1, 1, 1, 2});
  TensorId y = b.Input("bb", {1, 1, 1, 1});
  b.MarkOutput(b.Concat({x, y}, -1));
  const graph::Graph g = std::move(b).Build();
  WeightStore ws;
  const Executor exec(g, ws);
  std::vector<Tensor> in;
  in.emplace_back(TensorShape({1, 1, 1, 2}), std::vector<float>{1.0f, 2.0f});
  in.emplace_back(TensorShape({1, 1, 1, 1}), std::vector<float>{3.0f});
  const auto out = exec.Run(in);
  EXPECT_FLOAT_EQ(out[0].data()[0], 1.0f);
  EXPECT_FLOAT_EQ(out[0].data()[1], 2.0f);
  EXPECT_FLOAT_EQ(out[0].data()[2], 3.0f);
}

TEST(Executor, ConcatAxisZeroStacksRows) {
  GraphBuilder b("t");
  TensorId x = b.Input("a", {2, 2});
  TensorId y = b.Input("bb", {1, 2});
  b.MarkOutput(b.Concat({x, y}, 0));
  const graph::Graph g = std::move(b).Build();
  WeightStore ws;
  const Executor exec(g, ws);
  std::vector<Tensor> in;
  in.emplace_back(TensorShape({2, 2}), std::vector<float>{1, 2, 3, 4});
  in.emplace_back(TensorShape({1, 2}), std::vector<float>{5, 6});
  const auto out = exec.Run(in);
  const float expect[] = {1, 2, 3, 4, 5, 6};
  for (int i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(out[0].data()[i], expect[i]);
}

TEST(Executor, LayerNormNormalizesRows) {
  GraphBuilder b("t");
  TensorId x = b.Input("in", {1, 4});
  b.MarkOutput(b.LayerNorm(x, "ln"));
  SingleOpRig rig{std::move(b).Build(), {}};
  rig.weights.Put("ln/gamma",
                  Tensor(TensorShape({4}), std::vector<float>(4, 1.0f)));
  rig.weights.Put("ln/beta",
                  Tensor(TensorShape({4}), std::vector<float>(4, 0.0f)));
  const auto out =
      rig.Run(Tensor(TensorShape({1, 4}), {1.0f, 2.0f, 3.0f, 4.0f}));
  double mean = 0.0, var = 0.0;
  for (int i = 0; i < 4; ++i) mean += out[0].data()[i];
  mean /= 4;
  for (int i = 0; i < 4; ++i)
    var += (out[0].data()[i] - mean) * (out[0].data()[i] - mean);
  EXPECT_NEAR(mean, 0.0, 1e-5);
  EXPECT_NEAR(var / 4, 1.0, 1e-3);
}

TEST(Executor, EmbeddingLooksUpRows) {
  GraphBuilder b("t");
  TensorId ids = b.Input("ids", {2});
  b.MarkOutput(b.Embedding(ids, 3, 2, "e"));
  SingleOpRig rig{std::move(b).Build(), {}};
  rig.weights.Put("e/table", Tensor(TensorShape({3, 2}),
                                    {0.0f, 1.0f, 10.0f, 11.0f, 20.0f, 21.0f}));
  const auto out = rig.Run(Tensor(TensorShape({2}), {2.0f, 0.0f}));
  EXPECT_FLOAT_EQ(out[0].data()[0], 20.0f);
  EXPECT_FLOAT_EQ(out[0].data()[1], 21.0f);
  EXPECT_FLOAT_EQ(out[0].data()[2], 0.0f);
}

TEST(Executor, EmbeddingClampsOutOfVocabIds) {
  GraphBuilder b("t");
  TensorId ids = b.Input("ids", {1});
  b.MarkOutput(b.Embedding(ids, 3, 1, "e"));
  SingleOpRig rig{std::move(b).Build(), {}};
  rig.weights.Put("e/table",
                  Tensor(TensorShape({3, 1}), {1.0f, 2.0f, 3.0f}));
  EXPECT_FLOAT_EQ(rig.Run(Tensor(TensorShape({1}), {99.0f}))[0].data()[0],
                  3.0f);
  EXPECT_FLOAT_EQ(rig.Run(Tensor(TensorShape({1}), {-5.0f}))[0].data()[0],
                  1.0f);
}

TEST(Executor, AttentionUniformWhenQueriesZero) {
  // With Wq = 0 the attention weights are uniform, so the context is the
  // mean of V rows; with Wv = Wo = I the output is that mean.
  GraphBuilder b("t");
  TensorId x = b.Input("in", {2, 2});
  b.MarkOutput(b.MultiHeadAttention(x, 1, 2, "a"));
  SingleOpRig rig{std::move(b).Build(), {}};
  const std::vector<float> zero(4, 0.0f);
  const std::vector<float> identity{1.0f, 0.0f, 0.0f, 1.0f};
  rig.weights.Put("a/wq", Tensor(TensorShape({2, 2}), zero));
  rig.weights.Put("a/wk", Tensor(TensorShape({2, 2}), identity));
  rig.weights.Put("a/wv", Tensor(TensorShape({2, 2}), identity));
  rig.weights.Put("a/wo", Tensor(TensorShape({2, 2}), identity));
  const auto out =
      rig.Run(Tensor(TensorShape({2, 2}), {2.0f, 4.0f, 6.0f, 8.0f}));
  EXPECT_NEAR(out[0].data()[0], 4.0f, 1e-4);
  EXPECT_NEAR(out[0].data()[1], 6.0f, 1e-4);
  EXPECT_NEAR(out[0].data()[2], 4.0f, 1e-4);
  EXPECT_NEAR(out[0].data()[3], 6.0f, 1e-4);
}

TEST(Executor, RejectsWrongInputShape) {
  GraphBuilder b("t");
  TensorId x = b.Input("in", {1, 4, 4, 3});
  b.MarkOutput(b.Conv2d(x, 2, 1, 1));
  const graph::Graph g = std::move(b).Build();
  const WeightStore ws = InitializeWeights(g, 1);
  const Executor exec(g, ws);
  std::vector<Tensor> in;
  in.emplace_back(TensorShape({1, 3, 3, 3}));
  EXPECT_THROW((void)exec.Run(in), CheckError);
}

TEST(Executor, RejectsWrongInputCount) {
  GraphBuilder b("t");
  TensorId x = b.Input("in", {2});
  b.MarkOutput(b.Activate(x, Activation::kRelu));
  const graph::Graph g = std::move(b).Build();
  const WeightStore ws;
  const Executor exec(g, ws);
  const std::vector<Tensor> none;
  EXPECT_THROW((void)exec.Run(none), CheckError);
}

TEST(Executor, Int8ModeRequiresQuantParams) {
  GraphBuilder b("t");
  TensorId x = b.Input("in", {2});
  b.MarkOutput(b.Activate(x, Activation::kRelu));
  const graph::Graph g = std::move(b).Build();
  const WeightStore ws;
  EXPECT_THROW(Executor(g, ws, NumericsMode::kInt8, nullptr), CheckError);
}

TEST(Executor, Fp16ModeMatchesManualRounding) {
  GraphBuilder b("t");
  TensorId x = b.Input("in", {1});
  b.MarkOutput(b.Activate(x, Activation::kNone));
  SingleOpRig rig{std::move(b).Build(), {}};
  const float v = 0.1f;  // not representable in half
  const auto out = rig.Run(Tensor(TensorShape({1}), {v}),
                           NumericsMode::kFp16);
  EXPECT_EQ(out[0].data()[0], RoundToHalf(v));
  EXPECT_NE(out[0].data()[0], v);
}

TEST(Executor, ObserverSeesEveryNodeOutput) {
  GraphBuilder b("t");
  TensorId x = b.Input("in", {2});
  x = b.Activate(x, Activation::kRelu);
  x = b.Activate(x, Activation::kTanh);
  b.MarkOutput(x);
  const graph::Graph g = std::move(b).Build();
  const WeightStore ws;
  const Executor exec(g, ws);
  std::vector<Tensor> in;
  in.emplace_back(TensorShape({2}), std::vector<float>{1.0f, -1.0f});
  int observed = 0;
  (void)exec.Run(in, [&](graph::TensorId, const Tensor&) { ++observed; });
  EXPECT_EQ(observed, 2);
}


TEST(Executor, MulIsElementwise) {
  GraphBuilder b("t");
  TensorId x = b.Input("a", {3});
  TensorId y = b.Input("bb", {3});
  b.MarkOutput(b.Mul(x, y));
  const graph::Graph g = std::move(b).Build();
  const WeightStore ws;
  const Executor exec(g, ws);
  std::vector<Tensor> in;
  in.emplace_back(TensorShape({3}), std::vector<float>{1.0f, 2.0f, -3.0f});
  in.emplace_back(TensorShape({3}), std::vector<float>{4.0f, -5.0f, 6.0f});
  const auto out = exec.Run(in);
  EXPECT_FLOAT_EQ(out[0].data()[0], 4.0f);
  EXPECT_FLOAT_EQ(out[0].data()[1], -10.0f);
  EXPECT_FLOAT_EQ(out[0].data()[2], -18.0f);
}

TEST(Executor, DilatedConvSkipsNeighbors) {
  // 3x3 dilation-2 conv with an identity-like kernel reads pixels 2 apart.
  GraphBuilder b("t");
  TensorId x = b.Input("in", {1, 5, 5, 1});
  b.MarkOutput(b.Conv2d(x, 1, 3, 1, Activation::kNone,
                        graph::Padding::kValid, 2, "c"));
  const graph::Graph g = std::move(b).Build();
  WeightStore ws;
  std::vector<float> kernel(9, 0.0f);
  kernel[0] = 1.0f;  // top-left tap only
  ws.Put("c/w", Tensor(TensorShape({1, 3, 3, 1}), std::move(kernel)));
  ws.Put("c/b", Tensor(TensorShape({1}), {0.0f}));
  const Executor exec(g, ws);
  Tensor in(TensorShape({1, 5, 5, 1}));
  for (std::size_t i = 0; i < 25; ++i) in.data()[i] = static_cast<float>(i);
  const std::vector<Tensor> inputs{in};
  const auto out = exec.Run(inputs);
  // Output is 1x1 (5 - (2*(3-1)+1) + 1); top-left tap reads pixel (0,0).
  EXPECT_EQ(out[0].shape(), TensorShape({1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(out[0].data()[0], 0.0f);
}

// ---- weights ----

TEST(Weights, DeterministicForSameSeed) {
  GraphBuilder b1("t");
  TensorId x1 = b1.Input("in", {1, 4, 4, 3});
  b1.MarkOutput(b1.Conv2d(x1, 8, 3, 1, Activation::kNone,
                          graph::Padding::kSame, 1, "c"));
  const graph::Graph g = std::move(b1).Build();
  const WeightStore a = InitializeWeights(g, 99);
  const WeightStore bw = InitializeWeights(g, 99);
  const auto& wa = a.Get("c/w").values();
  const auto& wb = bw.Get("c/w").values();
  ASSERT_EQ(wa.size(), wb.size());
  for (std::size_t i = 0; i < wa.size(); ++i) EXPECT_EQ(wa[i], wb[i]);
}

TEST(Weights, DifferentSeedsDiffer) {
  GraphBuilder b1("t");
  TensorId x1 = b1.Input("in", {1, 4, 4, 3});
  b1.MarkOutput(b1.Conv2d(x1, 8, 3, 1, Activation::kNone,
                          graph::Padding::kSame, 1, "c"));
  const graph::Graph g = std::move(b1).Build();
  const WeightStore sa = InitializeWeights(g, 1);
  const WeightStore sb = InitializeWeights(g, 2);
  const auto wa = sa.Get("c/w").values();
  const auto wb = sb.Get("c/w").values();
  bool any_diff = false;
  for (std::size_t i = 0; i < wa.size(); ++i)
    if (wa[i] != wb[i]) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Weights, NormParamsInitializedToIdentity) {
  GraphBuilder b("t");
  TensorId x = b.Input("in", {1, 4});
  b.MarkOutput(b.LayerNorm(x, "ln"));
  const graph::Graph g = std::move(b).Build();
  const WeightStore w = InitializeWeights(g, 1);
  for (float v : w.Get("ln/gamma").values()) EXPECT_EQ(v, 1.0f);
  for (float v : w.Get("ln/beta").values()) EXPECT_EQ(v, 0.0f);
}

TEST(Weights, MissingWeightThrows) {
  const WeightStore ws;
  EXPECT_THROW((void)ws.Get("nope"), CheckError);
}

// ---- int8 gemm ----

TEST(Int8Gemm, MatchesFloatReferenceAfterDequant) {
  constexpr std::size_t m = 4, n = 5, k = 8;
  Rng rng(17);
  std::vector<float> a(m * k), bt(n * k), c_f32(m * n);
  for (auto& v : a) v = static_cast<float>(rng.NextUniform(-1.0, 1.0));
  for (auto& v : bt) v = static_cast<float>(rng.NextUniform(-1.0, 1.0));
  GemmF32(a, bt, m, n, k, c_f32);

  const float scale = 2.0f / 255.0f;
  std::vector<std::uint8_t> aq(m * k), bq(n * k);
  QuantizeU8(a, scale, 128, aq);
  QuantizeU8(bt, scale, 128, bq);
  std::vector<std::int32_t> acc(m * n);
  GemmU8U8I32(aq, 128, bq, 128, m, n, k, acc);

  for (std::size_t i = 0; i < m * n; ++i) {
    const float deq = DequantizeAcc(acc[i], scale, scale);
    EXPECT_NEAR(deq, c_f32[i], 0.05f);
  }
}

TEST(Int8Gemm, QuantizeClampsToRange) {
  const std::vector<float> src{-100.0f, 0.0f, 100.0f};
  std::vector<std::uint8_t> dst(3);
  QuantizeU8(src, 0.1f, 128, dst);
  EXPECT_EQ(dst[0], 0);
  EXPECT_EQ(dst[1], 128);
  EXPECT_EQ(dst[2], 255);
}

TEST(Int8Gemm, SizeMismatchThrows) {
  std::vector<std::uint8_t> a(4), bt(4);
  std::vector<std::int32_t> c(3);  // wrong
  EXPECT_THROW(GemmU8U8I32(a, 0, bt, 0, 2, 2, 2, c), CheckError);
}

}  // namespace
}  // namespace mlpm::infer
