file(REMOVE_RECURSE
  "CMakeFiles/mlpm_quant.dir/calibration.cpp.o"
  "CMakeFiles/mlpm_quant.dir/calibration.cpp.o.d"
  "CMakeFiles/mlpm_quant.dir/rules.cpp.o"
  "CMakeFiles/mlpm_quant.dir/rules.cpp.o.d"
  "libmlpm_quant.a"
  "libmlpm_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlpm_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
