// Tests for the SoC simulator: thermal model, layer cost roofline, model
// compilation (segments, partitions, fallbacks), and batch execution.
#include <gtest/gtest.h>

#include "graph/cost.h"
#include "soc/chipset.h"
#include "soc/compile.h"
#include "soc/simulator.h"
#include "soc/thermal.h"

namespace mlpm::soc {
namespace {

using graph::Activation;
using graph::GraphBuilder;
using graph::TensorId;

// ---- thermal ----

TEST(Thermal, StartsAtAmbient) {
  const ThermalModel t{ThermalParams{}};
  EXPECT_DOUBLE_EQ(t.temperature_c(), ThermalParams{}.ambient_c);
  EXPECT_DOUBLE_EQ(t.ThrottleFactor(), 1.0);
}

TEST(Thermal, HeatsUnderPower) {
  ThermalModel t{ThermalParams{}};
  t.Step(3.0, 10.0);
  EXPECT_GT(t.temperature_c(), ThermalParams{}.ambient_c);
}

TEST(Thermal, ApproachesSteadyState) {
  ThermalParams p;
  ThermalModel t{p};
  t.Step(2.0, 10000.0);  // long time
  EXPECT_NEAR(t.temperature_c(), p.ambient_c + 2.0 * p.resistance_c_per_w,
              0.01);
}

TEST(Thermal, CoolsBackToAmbient) {
  ThermalModel t{ThermalParams{}};
  t.Step(3.0, 100.0);
  t.Cool(10000.0);
  EXPECT_NEAR(t.temperature_c(), ThermalParams{}.ambient_c, 0.01);
}

TEST(Thermal, ThrottleRampsLinearly) {
  ThermalParams p;
  ThermalModel t{p};
  // Heat to the midpoint of the throttle band.
  const double mid = (p.throttle_start_c + p.throttle_limit_c) / 2;
  const double power = (mid - p.ambient_c) / p.resistance_c_per_w;
  t.Step(power, 100000.0);
  const double expected = 1.0 - 0.5 * (1.0 - p.min_throttle_factor);
  EXPECT_NEAR(t.ThrottleFactor(), expected, 0.01);
}

TEST(Thermal, ThrottleFloorsAtMinimum) {
  ThermalParams p;
  ThermalModel t{p};
  t.Step(100.0, 100000.0);  // way past the limit
  EXPECT_DOUBLE_EQ(t.ThrottleFactor(), p.min_throttle_factor);
}

TEST(Thermal, ResetRestoresAmbient) {
  ThermalModel t{ThermalParams{}};
  t.Step(3.0, 100.0);
  t.Reset();
  EXPECT_DOUBLE_EQ(t.temperature_c(), ThermalParams{}.ambient_c);
}

TEST(Thermal, RejectsBadParams) {
  ThermalParams p;
  p.min_throttle_factor = 0.0;
  EXPECT_THROW(ThermalModel{p}, CheckError);
  p = ThermalParams{};
  p.throttle_limit_c = p.throttle_start_c;
  EXPECT_THROW(ThermalModel{p}, CheckError);
}

TEST(Thermal, NegativeInputsRejected) {
  ThermalModel t{ThermalParams{}};
  EXPECT_THROW(t.Step(-1.0, 1.0), CheckError);
  EXPECT_THROW(t.Step(1.0, -1.0), CheckError);
}

// ---- layer cost ----

AcceleratorDesc TestEngine() {
  AcceleratorDesc a;
  a.name = "test";
  a.peak_gmacs_int8 = 100.0;  // 1e11 MAC/s
  a.peak_gmacs_fp16 = 50.0;
  a.mem_bw_gbps = 10.0;  // 1e10 B/s
  a.efficiency = {1.0, 1.0, 1.0, 1.0, 1.0};
  a.per_layer_overhead_us = 0.0;
  a.active_power_w = 2.0;
  return a;
}

graph::NodeCost ComputeBoundCost() {
  graph::NodeCost c;
  c.macs = 100'000'000;  // 1e8 MACs -> 1 ms at 1e11 MAC/s
  c.input_elems = 100;
  c.output_elems = 100;
  c.op_class = graph::OpClass::kConvDense;
  return c;
}

TEST(LayerCost, ComputeBoundUsesArithmeticTime) {
  const LayerTiming t = LayerCost(ComputeBoundCost(), DataType::kInt8,
                                  TestEngine());
  EXPECT_NEAR(t.seconds, 1e-3, 1e-9);
}

TEST(LayerCost, MemoryBoundUsesBandwidthTime) {
  graph::NodeCost c;
  c.macs = 1;
  c.input_elems = 10'000'000;  // 1e7 B at int8 -> 1 ms at 1e10 B/s
  c.op_class = graph::OpClass::kElementwise;
  const LayerTiming t = LayerCost(c, DataType::kInt8, TestEngine());
  EXPECT_NEAR(t.seconds, 1e-3, 1e-6);
}

TEST(LayerCost, Fp16HalvesPeakDoublesBytes) {
  const LayerTiming i8 =
      LayerCost(ComputeBoundCost(), DataType::kInt8, TestEngine());
  const LayerTiming f16 =
      LayerCost(ComputeBoundCost(), DataType::kFloat16, TestEngine());
  EXPECT_NEAR(f16.seconds / i8.seconds, 2.0, 0.01);
}

TEST(LayerCost, UnsupportedNumericsThrows) {
  EXPECT_THROW(
      (void)LayerCost(ComputeBoundCost(), DataType::kFloat32, TestEngine()),
      CheckError);
}

TEST(LayerCost, DilatedPenaltyApplies) {
  AcceleratorDesc e = TestEngine();
  e.efficiency.dilated_scale = 0.1;
  graph::NodeCost c = ComputeBoundCost();
  c.dilated = true;
  const LayerTiming t = LayerCost(c, DataType::kInt8, e);
  EXPECT_NEAR(t.seconds, 1e-2, 1e-6);  // 10x slower
}

TEST(LayerCost, WeightTrafficScaleAmortizesWeights) {
  graph::NodeCost c;
  c.macs = 1;
  c.weight_elems = 10'000'000;
  c.op_class = graph::OpClass::kConvDense;
  const LayerTiming full = LayerCost(c, DataType::kInt8, TestEngine(), 1.0);
  const LayerTiming amortized =
      LayerCost(c, DataType::kInt8, TestEngine(), 0.1);
  EXPECT_NEAR(amortized.seconds / full.seconds, 0.1, 0.01);
}

TEST(LayerCost, EnergyIsPowerTimesTime) {
  const LayerTiming t = LayerCost(ComputeBoundCost(), DataType::kInt8,
                                  TestEngine());
  EXPECT_NEAR(t.joules, t.seconds * 2.0, 1e-12);
}

// ---- compile ----

ChipsetDesc TwoEngineChip() {
  ChipsetDesc c;
  c.name = "testchip";
  c.interconnect_gbps = 1.0;  // 1e9 B/s
  AcceleratorDesc npu = TestEngine();
  npu.name = "npu";
  npu.cls = EngineClass::kNpu;
  c.engines.push_back(npu);
  AcceleratorDesc cpu = TestEngine();
  cpu.name = "cpu";
  cpu.cls = EngineClass::kCpuBig;
  cpu.peak_gmacs_int8 = 10.0;  // 10x slower
  c.engines.push_back(cpu);
  return c;
}

graph::Graph FourConvNet() {
  GraphBuilder b("net");
  TensorId x = b.Input("in", {1, 16, 16, 4});
  for (int i = 0; i < 4; ++i) x = b.Conv2d(x, 4, 3, 1, Activation::kRelu);
  b.MarkOutput(x);
  return std::move(b).Build();
}

TEST(Compile, SingleEngineMakesOneSegment) {
  const graph::Graph g = FourConvNet();
  ExecutionPolicy p;
  p.engines = {"npu"};
  const CompiledModel m =
      Compile(g, DataType::kInt8, TwoEngineChip(), p, RuntimeOverheads{});
  EXPECT_EQ(m.segments.size(), 1u);
  EXPECT_EQ(m.segments[0].engine_index, 0u);
  EXPECT_DOUBLE_EQ(m.segments.back().boundary_bytes, 0.0);
}

TEST(Compile, AlternatingPolicyCreatesSegments) {
  const graph::Graph g = FourConvNet();
  ExecutionPolicy p;
  p.engines = {"npu", "cpu"};
  p.alternate_every = 1;
  const CompiledModel m =
      Compile(g, DataType::kInt8, TwoEngineChip(), p, RuntimeOverheads{});
  EXPECT_EQ(m.segments.size(), 4u);
  EXPECT_NE(m.segments[0].engine_index, m.segments[1].engine_index);
}

TEST(Compile, ForcedPartitionSplitsSameEngine) {
  const graph::Graph g = FourConvNet();
  ExecutionPolicy p;
  p.engines = {"npu"};
  p.force_partition_every = 2;
  const CompiledModel m =
      Compile(g, DataType::kInt8, TwoEngineChip(), p, RuntimeOverheads{});
  EXPECT_EQ(m.segments.size(), 2u);
  EXPECT_EQ(m.segments[0].engine_index, m.segments[1].engine_index);
}

TEST(Compile, TailOnSecondaryEngine) {
  const graph::Graph g = FourConvNet();
  ExecutionPolicy p;
  p.engines = {"npu", "cpu"};
  p.tail_nodes_on_secondary = 1;
  const CompiledModel m =
      Compile(g, DataType::kInt8, TwoEngineChip(), p, RuntimeOverheads{});
  ASSERT_EQ(m.segments.size(), 2u);
  EXPECT_EQ(m.segments.back().engine_index, 1u);
}

TEST(Compile, FallbackFractionRoutesNodesToCpu) {
  const graph::Graph g = FourConvNet();
  ExecutionPolicy p;
  p.engines = {"npu"};
  p.cpu_fallback_fraction = 0.5;  // every 2nd node to CPU
  const CompiledModel m =
      Compile(g, DataType::kInt8, TwoEngineChip(), p, RuntimeOverheads{});
  EXPECT_GE(m.segments.size(), 3u);
}

TEST(Compile, UnknownEngineRejected) {
  const graph::Graph g = FourConvNet();
  ExecutionPolicy p;
  p.engines = {"tpu"};
  EXPECT_THROW((void)Compile(g, DataType::kInt8, TwoEngineChip(), p,
                             RuntimeOverheads{}),
               CheckError);
}

TEST(Compile, BadToolchainEfficiencyRejected) {
  const graph::Graph g = FourConvNet();
  ExecutionPolicy p;
  p.engines = {"npu"};
  p.toolchain_efficiency = 0.0;
  EXPECT_THROW((void)Compile(g, DataType::kInt8, TwoEngineChip(), p,
                             RuntimeOverheads{}),
               CheckError);
  p.toolchain_efficiency = 1.5;
  EXPECT_THROW((void)Compile(g, DataType::kInt8, TwoEngineChip(), p,
                             RuntimeOverheads{}),
               CheckError);
}

TEST(Compile, ToolchainEfficiencyScalesRoofline) {
  const graph::Graph g = FourConvNet();
  ExecutionPolicy fast;
  fast.engines = {"npu"};
  ExecutionPolicy slow = fast;
  slow.toolchain_efficiency = 0.5;
  const ChipsetDesc chip = TwoEngineChip();
  const double t_fast =
      Compile(g, DataType::kInt8, chip, fast, RuntimeOverheads{})
          .LatencySeconds();
  const double t_slow =
      Compile(g, DataType::kInt8, chip, slow, RuntimeOverheads{})
          .LatencySeconds();
  EXPECT_NEAR(t_slow / t_fast, 2.0, 0.01);
}

TEST(Compile, PartitionSyncAddsPerBoundaryCost) {
  const graph::Graph g = FourConvNet();
  ExecutionPolicy p;
  p.engines = {"npu"};
  p.force_partition_every = 1;  // 4 segments -> 3 boundaries
  RuntimeOverheads cheap;
  RuntimeOverheads costly;
  costly.per_partition_sync_s = 1e-3;
  costly.copy_boundary_tensors = false;
  cheap.copy_boundary_tensors = false;
  const ChipsetDesc chip = TwoEngineChip();
  const double t0 =
      Compile(g, DataType::kInt8, chip, p, cheap).LatencySeconds();
  const double t1 =
      Compile(g, DataType::kInt8, chip, p, costly).LatencySeconds();
  EXPECT_NEAR(t1 - t0, 3e-3, 1e-6);
}

TEST(Compile, EngineChangeCopiesBoundaryTensor) {
  const graph::Graph g = FourConvNet();
  ExecutionPolicy p;
  p.engines = {"npu", "cpu"};
  p.alternate_every = 2;  // one engine change
  RuntimeOverheads o;
  o.copy_boundary_tensors = false;  // copies still apply at engine changes
  const CompiledModel m = Compile(g, DataType::kInt8, TwoEngineChip(), p, o);
  ASSERT_EQ(m.segments.size(), 2u);
  // boundary tensor: 16*16*4 = 1024 B at 1 GB/s = ~1 us.
  const double with_copy = m.LatencySeconds();
  ExecutionPolicy single;
  single.engines = {"npu"};
  // Rough check: latency difference includes a positive transfer term.
  EXPECT_GT(with_copy, 0.0);
  EXPECT_GT(m.segments[0].boundary_bytes, 0.0);
}

TEST(Compile, ThrottleScalesRooflineNotDispatch) {
  const graph::Graph g = FourConvNet();
  ExecutionPolicy p;
  p.engines = {"npu"};
  ChipsetDesc chip = TwoEngineChip();
  chip.engines[0].per_layer_overhead_us = 100.0;
  const CompiledModel m =
      Compile(g, DataType::kInt8, chip, p, RuntimeOverheads{});
  const double full = m.LatencySeconds(1.0);
  const double throttled = m.LatencySeconds(0.5);
  // Dispatch (4 * 100us) unchanged; roofline doubled.
  const double dispatch = 4 * 100e-6;
  EXPECT_NEAR(throttled - dispatch, (full - dispatch) * 2.0, 1e-9);
}

// ---- simulator ----

TEST(Simulator, InferenceAdvancesThermalState) {
  SocSimulator sim(Dimensity1100());
  const graph::Graph g = FourConvNet();
  ExecutionPolicy p;
  p.engines = {"apu"};
  const CompiledModel m = Compile(g, DataType::kInt8, sim.chipset(), p,
                                  RuntimeOverheads{});
  const double t0 = sim.thermal().temperature_c();
  for (int i = 0; i < 100; ++i) (void)sim.RunInference(m);
  EXPECT_GT(sim.thermal().temperature_c(), t0);
}

TEST(Simulator, SustainedLoadThrottles) {
  SocSimulator sim(Snapdragon888());
  ExecutionPolicy p;
  p.engines = {"hta"};
  GraphBuilder b("big");
  TensorId x = b.Input("in", {1, 96, 96, 64});
  for (int i = 0; i < 8; ++i) x = b.Conv2d(x, 64, 3, 1, Activation::kRelu);
  b.MarkOutput(x);
  const CompiledModel m = Compile(std::move(b).Build(), DataType::kInt8,
                                  sim.chipset(), p, RuntimeOverheads{});
  // A couple of thermal time constants of sustained heavy inference.
  const double first = sim.RunInference(m).latency_s;
  double last = first;
  for (int i = 0; i < 40000; ++i) last = sim.RunInference(m).latency_s;
  EXPECT_GT(last, first * 1.05);  // visible thermal degradation
}

TEST(Simulator, CooldownRestoresLatency) {
  SocSimulator sim(Snapdragon888());
  ExecutionPolicy p;
  p.engines = {"hta"};
  const graph::Graph g = FourConvNet();
  const CompiledModel m = Compile(g, DataType::kInt8, sim.chipset(), p,
                                  RuntimeOverheads{});
  const double fresh = sim.RunInference(m).latency_s;
  for (int i = 0; i < 50000; ++i) (void)sim.RunInference(m);
  sim.Cooldown(3600.0);
  EXPECT_NEAR(sim.RunInference(m).latency_s, fresh, fresh * 0.01);
}

TEST(Simulator, BatchCompletionTimesMonotone) {
  SocSimulator sim(Exynos990());
  ExecutionPolicy p;
  p.engines = {"npu"};
  const graph::Graph g = FourConvNet();
  const CompiledModel m = Compile(g, DataType::kInt8, sim.chipset(), p,
                                  RuntimeOverheads{}, /*batched=*/true);
  const BatchResult r = sim.RunBatch({&m, 1}, 500);
  ASSERT_EQ(r.completion_times_s.size(), 500u);
  for (std::size_t i = 1; i < 500; ++i)
    EXPECT_GE(r.completion_times_s[i], r.completion_times_s[i - 1]);
  EXPECT_DOUBLE_EQ(r.makespan_s, r.completion_times_s.back());
}

TEST(Simulator, TwoReplicasBeatOne) {
  const ChipsetDesc chip = Exynos990();
  const graph::Graph g = FourConvNet();
  ExecutionPolicy npu;
  npu.engines = {"npu"};
  ExecutionPolicy cpu;
  cpu.engines = {"cpu"};
  const CompiledModel m_npu = Compile(g, DataType::kInt8, chip, npu,
                                      RuntimeOverheads{}, true);
  const CompiledModel m_cpu = Compile(g, DataType::kInt8, chip, cpu,
                                      RuntimeOverheads{}, true);
  SocSimulator sim1(chip), sim2(chip);
  const std::vector<CompiledModel> both{m_npu, m_cpu};
  const double fps_alp =
      1000.0 / sim1.RunBatch(both, 1000).makespan_s;
  const double fps_single =
      1000.0 / sim2.RunBatch({&both[0], 1}, 1000).makespan_s;
  EXPECT_GT(fps_alp, fps_single);
}

TEST(Simulator, BatchEnergyPositiveAndTdpBounded) {
  SocSimulator sim(Snapdragon865Plus());
  ExecutionPolicy p;
  p.engines = {"hta"};
  const graph::Graph g = FourConvNet();
  const CompiledModel m = Compile(g, DataType::kInt8, sim.chipset(), p,
                                  RuntimeOverheads{}, true);
  const BatchResult r = sim.RunBatch({&m, 1}, 200);
  EXPECT_GT(r.energy_j, 0.0);
  EXPECT_LE(r.energy_j, sim.chipset().tdp_w * r.makespan_s + 1e-9);
}

// ---- catalog ----

TEST(Catalog, AllChipsetsWellFormed) {
  for (const auto& chips : {CatalogV07(), CatalogV10()}) {
    ASSERT_EQ(chips.size(), 4u);
    for (const ChipsetDesc& c : chips) {
      EXPECT_FALSE(c.engines.empty());
      EXPECT_GT(c.interconnect_gbps, 0.0);
      EXPECT_GT(c.tdp_w, 0.0);
      for (const AcceleratorDesc& e : c.engines) {
        EXPECT_FALSE(e.name.empty());
        EXPECT_GT(e.mem_bw_gbps, 0.0);
        EXPECT_GT(e.active_power_w, 0.0);
        EXPECT_TRUE(e.peak_gmacs_int8 > 0 || e.peak_gmacs_fp16 > 0 ||
                    e.peak_gmacs_fp32 > 0);
      }
    }
  }
}

TEST(Catalog, GenerationTagsCorrect) {
  for (const ChipsetDesc& c : CatalogV07()) EXPECT_EQ(c.generation, "v0.7");
  for (const ChipsetDesc& c : CatalogV10()) EXPECT_EQ(c.generation, "v1.0");
}

TEST(Catalog, V10HardwareIsFasterPerFamily) {
  EXPECT_GT(Dimensity1100().Engine("apu").peak_gmacs_int8,
            Dimensity820().Engine("apu").peak_gmacs_int8);
  EXPECT_GT(Exynos2100().Engine("npu").peak_gmacs_int8,
            Exynos990().Engine("npu").peak_gmacs_int8);
  EXPECT_GT(Snapdragon888().Engine("hta").peak_gmacs_int8,
            Snapdragon865Plus().Engine("hta").peak_gmacs_int8);
}

TEST(Catalog, Exynos2100FixesInterconnect) {
  // Appendix C: reduced data transfer between IP blocks.
  EXPECT_GT(Exynos2100().interconnect_gbps,
            10.0 * Exynos990().interconnect_gbps);
}

TEST(Catalog, EngineLookup) {
  const ChipsetDesc c = Snapdragon888();
  EXPECT_TRUE(c.HasEngine("hta"));
  EXPECT_TRUE(c.HasEngine("hvx"));
  EXPECT_FALSE(c.HasEngine("npu"));
  EXPECT_THROW((void)c.Engine("npu"), CheckError);
}

}  // namespace
}  // namespace mlpm::soc
