// Synthetic COCO-2017 stand-in for the object-detection task.
//
// Ground-truth boxes are the FP32 teacher's own post-NMS detections with
// seeded corruption (box jitter, class flips, drops), so the FP32 model
// scores high-but-imperfect mAP and quantized models degrade through real
// box/score perturbations.
#pragma once

#include <cstdint>
#include <vector>

#include "datasets/task_dataset.h"
#include "infer/weights.h"
#include "metrics/map.h"
#include "models/ssd.h"

namespace mlpm::datasets {

struct DetectionDatasetConfig {
  std::size_t num_samples = 64;
  // Corruption knobs applied to teacher detections to form ground truth.
  double box_jitter = 0.10;     // stddev as a fraction of box size
  double class_agreement = 0.9;  // else flipped to a random class
  double drop_rate = 0.1;        // GT box dropped entirely
  // Only teacher detections above this score become ground truth (margin
  // against quantization-induced score flapping near the decode threshold).
  double gt_score_threshold = 0.45;
  std::uint64_t seed = 0x5E7EC7;
  models::DecodeConfig decode;   // shared by teacher and evaluation
};

class DetectionDataset final : public TaskDataset {
 public:
  // `model` must outlive the dataset (the anchor set is referenced for
  // decoding model outputs during scoring).
  DetectionDataset(const models::DetectionModel& model,
                   const infer::WeightStore& weights,
                   DetectionDatasetConfig config);

  [[nodiscard]] std::size_t size() const override {
    return ground_truth_.size();
  }
  [[nodiscard]] std::vector<infer::Tensor> InputsFor(
      std::size_t index) const override;
  [[nodiscard]] double ScoreOutputs(
      std::span<const std::vector<infer::Tensor>> outputs) const override;
  [[nodiscard]] std::string_view metric_name() const override { return "mAP"; }
  [[nodiscard]] std::vector<infer::Tensor> CalibrationInputsFor(
      std::size_t index) const override;

  [[nodiscard]] const metrics::ImageGroundTruth& GroundTruthFor(
      std::size_t index) const;

 private:
  [[nodiscard]] infer::Tensor MakeInput(std::uint64_t name_space,
                                        std::size_t index) const;

  const models::DetectionModel& model_;
  DetectionDatasetConfig cfg_;
  std::vector<metrics::ImageGroundTruth> ground_truth_;
};

}  // namespace mlpm::datasets
