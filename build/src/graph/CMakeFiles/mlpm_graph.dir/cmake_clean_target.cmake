file(REMOVE_RECURSE
  "libmlpm_graph.a"
)
