#include "datasets/preprocess.h"

#include <algorithm>
#include <cmath>

namespace mlpm::datasets {

infer::Tensor ResizeBilinear(const infer::Tensor& image, std::int64_t out_h,
                             std::int64_t out_w) {
  const auto& s = image.shape();
  Expects(s.rank() == 4 && s.batch() == 1, "expected NHWC batch-1 image");
  const std::int64_t ih = s.height(), iw = s.width(), c = s.channels();
  infer::Tensor out(graph::TensorShape({1, out_h, out_w, c}));
  const double sh = static_cast<double>(ih) / static_cast<double>(out_h);
  const double sw = static_cast<double>(iw) / static_cast<double>(out_w);
  const float* ip = image.data();
  float* op = out.data();
  for (std::int64_t y = 0; y < out_h; ++y) {
    const double fy =
        std::max(0.0, (static_cast<double>(y) + 0.5) * sh - 0.5);
    const auto y0 = std::min<std::int64_t>(static_cast<std::int64_t>(fy),
                                           ih - 1);
    const auto y1 = std::min<std::int64_t>(y0 + 1, ih - 1);
    const float wy = static_cast<float>(fy - static_cast<double>(y0));
    for (std::int64_t x = 0; x < out_w; ++x) {
      const double fx =
          std::max(0.0, (static_cast<double>(x) + 0.5) * sw - 0.5);
      const auto x0 = std::min<std::int64_t>(static_cast<std::int64_t>(fx),
                                             iw - 1);
      const auto x1 = std::min<std::int64_t>(x0 + 1, iw - 1);
      const float wx = static_cast<float>(fx - static_cast<double>(x0));
      for (std::int64_t ch = 0; ch < c; ++ch) {
        const auto px = [&](std::int64_t yy, std::int64_t xx) {
          return ip[(yy * iw + xx) * c + ch];
        };
        const float top = px(y0, x0) * (1 - wx) + px(y0, x1) * wx;
        const float bot = px(y1, x0) * (1 - wx) + px(y1, x1) * wx;
        op[(y * out_w + x) * c + ch] = top * (1 - wy) + bot * wy;
      }
    }
  }
  return out;
}

infer::Tensor CenterCrop(const infer::Tensor& image, std::int64_t size) {
  const auto& s = image.shape();
  Expects(s.rank() == 4 && s.batch() == 1, "expected NHWC batch-1 image");
  Expects(s.height() >= size && s.width() >= size,
          "image smaller than crop size");
  const std::int64_t ih = s.height(), iw = s.width(), c = s.channels();
  const std::int64_t oy = (ih - size) / 2;
  const std::int64_t ox = (iw - size) / 2;
  infer::Tensor out(graph::TensorShape({1, size, size, c}));
  const float* ip = image.data();
  float* op = out.data();
  for (std::int64_t y = 0; y < size; ++y)
    for (std::int64_t x = 0; x < size; ++x)
      for (std::int64_t ch = 0; ch < c; ++ch)
        op[(y * size + x) * c + ch] =
            ip[((y + oy) * iw + (x + ox)) * c + ch];
  return out;
}

void Normalize(infer::Tensor& image, float mean, float stddev) {
  Expects(stddev > 0.0f, "stddev must be positive");
  const float inv = 1.0f / stddev;
  for (auto& v : image.values()) v = (v - mean) * inv;
}

infer::Tensor ClassificationPreprocess(const infer::Tensor& raw_image,
                                       std::int64_t size) {
  // 256/224 resize-then-crop ratio used by the ImageNet pipeline.
  const auto resize_to = static_cast<std::int64_t>(
      std::llround(static_cast<double>(size) * 256.0 / 224.0));
  infer::Tensor t = ResizeBilinear(raw_image, resize_to, resize_to);
  t = CenterCrop(t, size);
  Normalize(t, 0.5f, 0.5f);  // [0,1] -> [-1,1]
  return t;
}

infer::Tensor DirectResizePreprocess(const infer::Tensor& raw_image,
                                     std::int64_t size) {
  infer::Tensor t = ResizeBilinear(raw_image, size, size);
  Normalize(t, 0.5f, 0.5f);
  return t;
}

}  // namespace mlpm::datasets
