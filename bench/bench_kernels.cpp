// Engineering microbenchmarks (google-benchmark): the numeric kernels the
// functional plane runs on, the INT8-vs-FP32 arithmetic gap motivating
// §7.5, and the LoadGen bookkeeping overhead per query.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/fp16.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "infer/executor.h"
#include "infer/int8_conv.h"
#include "infer/int8_gemm.h"
#include "infer/weights.h"
#include "models/mobilenet_edgetpu.h"

namespace {

using namespace mlpm;

void BM_GemmF32(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (auto& v : a) v = static_cast<float>(rng.NextGaussian());
  for (auto& v : b) v = static_cast<float>(rng.NextGaussian());
  for (auto _ : state) {
    infer::GemmF32(a, b, n, n, n, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_GemmF32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmU8(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<std::uint8_t> a(n * n), b(n * n);
  std::vector<std::int32_t> c(n * n);
  for (auto& v : a) v = static_cast<std::uint8_t>(rng.NextBelow(256));
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.NextBelow(256));
  for (auto _ : state) {
    infer::GemmU8U8I32(a, 128, b, 128, n, n, n, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_GemmU8)->Arg(64)->Arg(128)->Arg(256);

void BM_ConvInt8Im2col(benchmark::State& state) {
  const auto c = static_cast<std::int64_t>(state.range(0));
  Rng rng(7);
  infer::Tensor input(graph::TensorShape({1, 16, 16, c}));
  infer::Tensor weights(graph::TensorShape({c, 3, 3, c}));
  infer::Tensor bias(graph::TensorShape({c}));
  for (auto& v : input.values())
    v = static_cast<float>(rng.NextUniform(-1, 1));
  for (auto& v : weights.values())
    v = static_cast<float>(rng.NextUniform(-0.5, 0.5));
  const infer::QuantizationParams in_q =
      infer::ChooseQuantParams(-1.0f, 1.0f);
  const infer::QuantizationParams w_q =
      infer::ChooseQuantParams(-0.5f, 0.5f);
  for (auto _ : state) {
    auto out = infer::ConvInt8NHWC(input, weights, bias, 1,
                                   graph::Padding::kSame, in_q, w_q);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          16 * 16 * c * 9 * c);
}
BENCHMARK(BM_ConvInt8Im2col)->Arg(16)->Arg(32)->Arg(64);

void BM_Fp16RoundTrip(benchmark::State& state) {
  Rng rng(2);
  std::vector<float> v(4096);
  for (auto& x : v) x = static_cast<float>(rng.NextGaussian());
  for (auto _ : state) {
    for (auto& x : v) x = RoundToHalf(x);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_Fp16RoundTrip);

void BM_MiniClassifierInference(benchmark::State& state) {
  const graph::Graph g =
      models::BuildMobileNetEdgeTpu(models::ModelScale::kMini);
  const infer::WeightStore w = infer::InitializeWeights(g, 7);
  const infer::Executor exec(g, w);
  infer::Tensor input(g.tensor(g.input_ids()[0]).shape);
  Rng rng(3);
  for (auto& v : input.values()) v = static_cast<float>(rng.NextDouble());
  const std::vector<infer::Tensor> inputs{input};
  for (auto _ : state) {
    auto out = exec.Run(inputs);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MiniClassifierInference);

void BM_Percentile(benchmark::State& state) {
  Rng rng(4);
  std::vector<double> lat(static_cast<std::size_t>(state.range(0)));
  for (auto& v : lat) v = rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Percentile(lat, 90.0));
  }
}
BENCHMARK(BM_Percentile)->Arg(1024)->Arg(24576);

}  // namespace

BENCHMARK_MAIN();
