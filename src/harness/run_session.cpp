#include "harness/run_session.h"

#include <optional>
#include <utility>

#include "analysis/passes.h"
#include "backends/reference_backend.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "core/dataset_qsl.h"
#include "harness/journal.h"
#include "infer/memory_plan.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mlpm::harness {
namespace {

infer::NumericsMode ModeFor(DataType numerics) {
  switch (numerics) {
    case DataType::kInt8:
    case DataType::kUInt8:
      return infer::NumericsMode::kInt8;
    case DataType::kFloat16:
      return infer::NumericsMode::kFp16;
    case DataType::kFloat32:
    case DataType::kInt32:
      return infer::NumericsMode::kFp32;
  }
  return infer::NumericsMode::kFp32;
}

// Analytical pre/post-processing cost on the CPU (the "AI tax" the
// end-to-end extension includes; paper App. E).
backends::EndToEndCosts EstimateEndToEndCosts(
    const models::BenchmarkEntry& e) {
  backends::EndToEndCosts c;
  const double cpu_elem_rate = 2.0e9;  // elementwise ops per second
  const double pixels = static_cast<double>(e.input_size * e.input_size);
  switch (e.task) {
    case models::TaskType::kImageClassification:
      c.preprocess_s = pixels * 3 * 12 / cpu_elem_rate;  // resize+crop+norm
      c.postprocess_s = 1e-5;                            // top-k
      break;
    case models::TaskType::kObjectDetection:
      c.preprocess_s = pixels * 3 * 8 / cpu_elem_rate;
      c.postprocess_s = 4e-4;  // decode + NMS
      break;
    case models::TaskType::kImageSegmentation:
      c.preprocess_s = pixels * 3 * 8 / cpu_elem_rate;
      c.postprocess_s = pixels * 32 / cpu_elem_rate;  // per-pixel argmax
      break;
    case models::TaskType::kQuestionAnswering:
      c.preprocess_s = 5e-5;   // tokenization of one question
      c.postprocess_s = 1e-4;  // span search
      break;
  }
  return c;
}

}  // namespace

const TaskBundle& SuiteBundles::Get(const models::BenchmarkEntry& e,
                                    models::SuiteVersion version) {
  const std::string key =
      std::string(ToString(version)) + "/" + e.id;
  auto it = cache_.find(key);
  if (it == cache_.end())
    it = cache_.emplace(key, TaskBundle::Create(e, version)).first;
  return *it->second;
}

loadgen::TestResult RunSingleStreamPerformance(
    const soc::ChipsetDesc& chipset, const backends::SubmissionConfig& config,
    const graph::Graph& full_graph, const datasets::TaskDataset& dataset,
    const loadgen::TestSettings& settings) {
  loadgen::TestSettings s = settings;
  s.scenario = loadgen::TestScenario::kSingleStream;
  s.mode = loadgen::TestMode::kPerformanceOnly;

  loadgen::VirtualClock clock;
  backends::SimulatedBackend sut(
      chipset.name + "/" + config.framework.name,
      soc::SocSimulator(chipset),
      backends::CompileSubmission(chipset, config, full_graph),
      backends::CompileOfflineReplicas(chipset, config, full_graph), clock);
  loadgen::DatasetQsl qsl(dataset);
  return loadgen::RunTest(sut, qsl, s, clock);
}

namespace {

// One full performance attempt (single-stream + optional offline) on a
// fresh simulator and clock.  Returns everything the harness accounts for.
struct PerformanceAttempt {
  loadgen::TestResult single_stream;
  std::optional<loadgen::TestResult> offline;
  double energy_j = 0.0;
  double peak_temperature_c = 0.0;
  std::size_t fault_count = 0;
  std::size_t degradation_count = 0;
  std::size_t breaker_trips = 0;
  bool degraded_to_cpu = false;
  std::string fault_log;

  [[nodiscard]] bool Errored() const {
    return single_stream.Errored() || (offline && offline->Errored());
  }
};

// `backend` owns the simulator/energy accounting; `front` is the SUT the
// LoadGen actually issues to.  They are the same object except when an
// admission layer (circuit breaker) is interposed between them.
template <typename Backend>
PerformanceAttempt RunPerformanceWith(Backend& backend,
                                      loadgen::SystemUnderTest& front,
                                      loadgen::DatasetQsl& qsl,
                                      loadgen::VirtualClock& clock,
                                      const RunOptions& options,
                                      bool has_offline) {
  PerformanceAttempt a;
  loadgen::TestSettings ss = options.performance_settings;
  ss.scenario = loadgen::TestScenario::kSingleStream;
  ss.mode = loadgen::TestMode::kPerformanceOnly;
  a.single_stream = loadgen::RunTest(front, qsl, ss, clock);
  a.peak_temperature_c = backend.simulator().thermal().temperature_c();

  if (has_offline) {
    // Cooldown interval between the two performance tests (§6.1).
    backend.Cooldown(options.cooldown_s);
    loadgen::TestSettings off = options.performance_settings;
    off.scenario = loadgen::TestScenario::kOffline;
    off.mode = loadgen::TestMode::kPerformanceOnly;
    a.offline = loadgen::RunTest(front, qsl, off, clock);
    a.peak_temperature_c =
        std::max(a.peak_temperature_c,
                 backend.simulator().thermal().temperature_c());
  }
  a.energy_j = backend.total_energy_j();
  a.fault_count = backend.simulator().fault_count();
  if (const soc::FaultInjector* inj = backend.simulator().fault_injector())
    a.fault_log = inj->EventLogText();
  return a;
}

void RunTask(const soc::ChipsetDesc& chipset, models::SuiteVersion version,
             SuiteBundles& bundles, const RunOptions& options,
             const ThreadPool* pool, TaskRunResult& tr);

}  // namespace

SubmissionResult RunSubmission(const soc::ChipsetDesc& chipset,
                               models::SuiteVersion version,
                               SuiteBundles& bundles,
                               const RunOptions& options) {
  SubmissionResult result;
  result.chipset_name = chipset.name;
  result.version = version;

  // Observability (DESIGN.md §11): either flag turns the process-wide
  // recorder on for the whole submission.  Enabling resets the epoch and
  // clears prior events, so each submission traces from t=0.
  if (options.profile || !options.trace_path.empty())
    obs::TraceRecorder::Global().Enable();

  // Pool for the accuracy phase.  Scoped to this submission: cached
  // executors in `bundles` outlive it, so nothing below may retain the
  // pointer past RunTask.
  std::optional<ThreadPool> pool_storage;
  const ThreadPool* pool = nullptr;
  if (options.run_accuracy && options.threads != 1) {
    pool_storage.emplace(static_cast<std::size_t>(
        std::max(0, options.threads)));
    if (pool_storage->thread_count() > 1) pool = &*pool_storage;
  }

  // Crash-safe journaling + resume (DESIGN.md §12).  With a journal path
  // set, every finished task is fsync'd to the write-ahead log before the
  // next one starts; with `resume`, intact records from a prior run of the
  // identical configuration are replayed instead of re-run.  An errored
  // record is never replayed — a resumed run retries it.
  std::map<std::string, TaskRunResult> replayable;
  std::optional<JournalWriter> journal;
  if (!options.journal_path.empty()) {
    JournalMeta meta;
    meta.chipset = chipset.name;
    meta.version = std::string(ToString(version));
    meta.seed = options.performance_settings.seed;
    meta.config_hash = HashRunConfig(chipset, version, options);
    if (options.resume) {
      JournalLoad prior = LoadJournal(options.journal_path);
      if (prior.meta_valid && prior.meta.Matches(meta))
        for (TaskRunResult& t : prior.tasks)
          if (t.status != TaskStatus::kErrored)
            replayable.insert_or_assign(t.entry.id, std::move(t));
    }
    journal.emplace(
        JournalWriter::Open(options.journal_path, meta, options.resume));
  }

  // The prescribed task order is the suite order (§6.1).  One task blowing
  // up must not take the submission down with it: each task is isolated,
  // and a throw marks it errored while the rest of the suite proceeds.
  for (const models::BenchmarkEntry& entry : models::SuiteFor(version)) {
    if (options.cancel && options.cancel()) {
      // Cooperative interruption: stop cleanly between tasks.  Everything
      // finished so far is already durable in the journal.
      result.interrupted = true;
      break;
    }
    if (const auto it = replayable.find(entry.id); it != replayable.end()) {
      TaskRunResult tr = std::move(it->second);
      replayable.erase(it);
      // Journal records carry only the task id; rebind the live entry.
      tr.entry = entry;
      ++result.resumed_tasks;
      result.tasks.push_back(std::move(tr));
      continue;
    }
    TaskRunResult tr;
    tr.entry = entry;
    try {
      RunTask(chipset, version, bundles, options, pool, tr);
    } catch (const std::exception& e) {
      tr.status = TaskStatus::kErrored;
      tr.status_detail = e.what();
    }
    if (journal) journal->Append(tr);
    result.tasks.push_back(std::move(tr));
  }

  // Snapshot the worker pool's counters into the metrics registry (pool
  // queue depth analog for the report).  Gauges so repeated submissions
  // keep the high-water mark.
  if (pool != nullptr) {
    obs::MetricsRegistry& mr = obs::MetricsRegistry::Global();
    mr.MaxGauge("threadpool.lanes", static_cast<double>(pool->thread_count()));
    mr.MaxGauge("threadpool.jobs_dispatched",
                static_cast<double>(pool->jobs_dispatched()));
    mr.MaxGauge("threadpool.peak_chunks",
                static_cast<double>(pool->peak_chunks()));
  }
  return result;
}

namespace {

// Static verification of one task's model, quantization recipe, SoC
// mapping and run configuration (DESIGN.md §9).  Runs entirely before
// anything is compiled or timed.
analysis::DiagnosticEngine LintTask(const soc::ChipsetDesc& chipset,
                                    const backends::SubmissionConfig& sub,
                                    const graph::Graph& full,
                                    const RunOptions& options) {
  analysis::DiagnosticEngine de;
  analysis::RunModelPasses(full, de);

  analysis::QuantConfigView q;
  q.activation_dtype = sub.numerics;
  q.qat_weights = options.use_qat_weights;
  analysis::CheckQuantLegality(full, q, de);

  const std::string prefix = chipset.name + "/" + sub.framework.name;
  analysis::MappingConfigView m;
  m.chipset = &chipset;
  m.numerics = sub.numerics;
  m.policy = &sub.single_stream;
  m.label = prefix + "/single_stream";
  analysis::CheckSocMapping(full, m, de);
  for (std::size_t i = 0; i < sub.offline_replicas.size(); ++i) {
    m.policy = &sub.offline_replicas[i];
    m.label = prefix + "/offline[" + std::to_string(i) + "]";
    analysis::CheckSocMapping(full, m, de);
  }

  analysis::RunConfigView rc;
  rc.threads = options.threads;
  rc.cooldown_s = options.cooldown_s;
  rc.max_test_retries = options.max_test_retries;
  rc.kernel_isa = std::string(ToString(options.kernel_isa));
  rc.kernel_isa_available =
      infer::kernels::KernelRegistry::Global().Available(options.kernel_isa);
  rc.tiling_requested = options.tiling.enabled;
  rc.tile_rows = options.tiling.rows;
  rc.graph_has_fusable_segment = infer::HasFusableSegment(full);
  if (options.fault_plan)
    for (const soc::FaultSpec& spec : options.fault_plan->specs)
      rc.fault_probabilities.emplace_back(std::string(ToString(spec.kind)),
                                          spec.probability);
  analysis::CheckRunConfig(rc, de);
  return de;
}

void RunTask(const soc::ChipsetDesc& chipset, models::SuiteVersion version,
             SuiteBundles& bundles, const RunOptions& options,
             const ThreadPool* pool, TaskRunResult& tr) {
  const models::BenchmarkEntry& entry = tr.entry;
  const TaskBundle& bundle = bundles.Get(entry, version);
  const backends::SubmissionConfig sub =
      backends::GetSubmission(chipset, entry.task, version);

  tr.numerics = sub.numerics;
  tr.framework_name = sub.framework.name;
  tr.accelerator_label = sub.accelerator_label;
  // Resolved unconditionally (also in performance-only runs) so exported
  // rows are byte-identical whether or not the accuracy phase ran.
  tr.kernel_isa = std::string(infer::kernels::ToString(
      infer::kernels::KernelRegistry::Global().Resolve(options.kernel_isa)));

  // Built once: the lint gate, the memory plan, and the performance phase
  // all read the same full-scale graph.
  const graph::Graph full =
      models::BuildReferenceGraph(entry, version, models::ModelScale::kFull);

  // Activation footprint of the full-scale model under the static planner
  // (reported per task; the arena itself is only exercised by the accuracy
  // phase's mini models).  With tiling requested the plan is tile-aware:
  // segment interiors leave the arena for per-worker slabs, and the
  // reported arena/slab split reflects that.
  tr.tiling_requested = options.tiling.enabled;
  tr.tile_rows = options.tiling.enabled ? options.tiling.rows : 0;
  // An invalid tile height (rows == 0 or negative explicit) is RUN008 — an
  // error under the lint gate.  Under kReport the run must still proceed,
  // so the invalid request degrades to untiled execution here.
  infer::TileOptions tile_opt = options.tiling;
  if (tile_opt.enabled && tile_opt.rows != -1 && tile_opt.rows < 1)
    tile_opt.enabled = false;
  const infer::TilePlan full_tiles = infer::BuildTilePlan(full, tile_opt);
  const infer::MemoryPlan plan = infer::MemoryPlan::Build(
      full, full_tiles.empty() ? nullptr : &full_tiles);
  tr.peak_arena_bytes = plan.peak_arena_bytes();
  tr.naive_activation_bytes = plan.naive_bytes();
  tr.tile_segments = full_tiles.segments.size();
  tr.tile_slab_bytes = plan.tile_slab_bytes();

  if (options.lint != LintMode::kOff) {
    const analysis::DiagnosticEngine de = LintTask(chipset, sub, full, options);
    tr.lint_error_count = de.error_count();
    tr.lint_warning_count = de.warning_count();
    tr.lint_log = de.ToText();
    if (options.lint == LintMode::kStrict && de.HasErrors()) {
      tr.status = TaskStatus::kInvalid;
      tr.status_detail =
          "static verification failed with " +
          std::to_string(de.error_count()) + " error(s); see lint log";
      return;
    }
  }

  if (options.run_accuracy) {
    // Accuracy mode: the whole validation set through the LoadGen and
    // the functional reference backend at the submission numerics.
    const infer::NumericsMode mode = ModeFor(sub.numerics);
    const TaskBundle::PreparedModel prepared =
        bundle.Prepare(mode,
                       options.use_qat_weights &&
                           mode == infer::NumericsMode::kInt8,
                       options.kernel_isa, options.transform, tile_opt);
    tr.calibration_indices = prepared.calibration_indices;
    tr.tiling_applied = prepared.executor != nullptr &&
                        prepared.executor->tiled();
    tr.transform_requested = prepared.transform.requested;
    tr.transform_applied = prepared.transform.applied;
    tr.transform_passes = prepared.transform.passes;
    tr.transform_rewrites = prepared.transform.rewrites;
    tr.transform_nodes_before = prepared.transform.nodes_before;
    tr.transform_nodes_after = prepared.transform.nodes_after;
    tr.transform_detail = prepared.transform.detail;

    loadgen::DatasetQsl qsl(bundle.dataset());
    loadgen::RealClock clock;
    backends::ReferenceBackend ref_sut(
        "reference/" + entry.id,
        *NotNull(prepared.executor,
                 "TaskBundle::Prepare returned no executor"),
        qsl, pool);
    loadgen::TestSettings acc;
    acc.mode = loadgen::TestMode::kAccuracyOnly;
    const loadgen::TestResult acc_result =
        loadgen::RunTest(ref_sut, qsl, acc, clock);
    tr.accuracy = bundle.dataset().ScoreOutputs(acc_result.accuracy_outputs);
    tr.accuracy_sample_count = acc_result.sample_count;
    tr.dataset_size = bundle.dataset().size();
    tr.fp32_reference = bundle.Fp32Score(pool, options.kernel_isa);
    tr.ratio_to_fp32 =
        tr.fp32_reference > 0 ? tr.accuracy / tr.fp32_reference : 0.0;
    tr.quality_passed = tr.ratio_to_fp32 >= entry.quality_target;

    // Per-kernel dispatch counters for the profile report.  MaxGauge, not
    // Increment: cached executors accumulate across tasks and submissions,
    // so the gauge tracks the executor's cumulative high-water mark.
    const infer::Executor& exec = *prepared.executor;
    const infer::KernelDispatchCounts counts = exec.dispatch_counts();
    const std::string isa_prefix =
        "kernels.dispatch." +
        std::string(infer::kernels::ToString(exec.kernel_isa())) + ".";
    obs::MetricsRegistry& mr = obs::MetricsRegistry::Global();
    mr.MaxGauge(isa_prefix + "conv2d", static_cast<double>(counts.conv2d));
    mr.MaxGauge(isa_prefix + "depthwise_conv2d",
                static_cast<double>(counts.depthwise_conv2d));
    mr.MaxGauge(isa_prefix + "fully_connected",
                static_cast<double>(counts.fully_connected));
  }

  if (options.run_performance) {
    const backends::EndToEndCosts e2e =
        options.end_to_end ? EstimateEndToEndCosts(entry)
                           : backends::EndToEndCosts{};
    const std::string sut_name = chipset.name + "/" + sub.framework.name;
    const bool has_offline =
        options.run_offline && !sub.offline_replicas.empty();
    loadgen::DatasetQsl qsl(bundle.dataset());

    // The run rules allow re-running a test; an errored run (stalled SUT,
    // nothing completed) is retried on a fresh simulator before the task
    // is declared invalid.
    const int attempts = 1 + std::max(0, options.max_test_retries);
    PerformanceAttempt attempt;
    for (int i = 0; i < attempts; ++i) {
      loadgen::VirtualClock clock;
      if (options.fault_plan) {
        soc::SocSimulator sim(chipset);
        sim.InjectFaults(*options.fault_plan);
        backends::FaultTolerantBackend sut(
            sut_name, std::move(sim),
            backends::CompileSubmission(chipset, sub, full),
            backends::CompileCpuFallback(chipset, full, sub.numerics),
            backends::CompileOfflineReplicas(chipset, sub, full), clock,
            options.fault_tolerance, e2e);
        if (options.circuit_breaker) {
          // Admission layer between the LoadGen and the recovery layer:
          // consecutive never-completed queries trip it open and later
          // queries fast-fail instead of burning the retry budget.
          backends::CircuitBreakerBackend breaker(sut, clock,
                                                  *options.circuit_breaker);
          attempt =
              RunPerformanceWith(sut, breaker, qsl, clock, options,
                                 has_offline);
          attempt.breaker_trips = breaker.stats().trips;
          attempt.fault_log += sut.EventLogText();
          attempt.fault_log += breaker.EventLogText();
        } else {
          attempt =
              RunPerformanceWith(sut, sut, qsl, clock, options, has_offline);
          attempt.fault_log += sut.EventLogText();
        }
        attempt.degradation_count = sut.stats().DegradationCount();
        attempt.degraded_to_cpu = sut.degraded_to_cpu();
      } else {
        backends::SimulatedBackend sut(
            sut_name, soc::SocSimulator(chipset),
            backends::CompileSubmission(chipset, sub, full),
            backends::CompileOfflineReplicas(chipset, sub, full), clock,
            e2e);
        attempt =
            RunPerformanceWith(sut, sut, qsl, clock, options, has_offline);
      }
      tr.performance_attempts = i + 1;
      if (!attempt.Errored()) break;
    }

    tr.single_stream = std::move(attempt.single_stream);
    tr.offline = std::move(attempt.offline);
    tr.peak_temperature_c = attempt.peak_temperature_c;
    tr.fault_count = attempt.fault_count;
    tr.degradation_count = attempt.degradation_count;
    tr.shed_count = tr.single_stream->shed_count +
                    (tr.offline ? tr.offline->shed_count : 0);
    tr.rejected_count = tr.single_stream->rejected_count +
                        (tr.offline ? tr.offline->rejected_count : 0);
    tr.breaker_trips = attempt.breaker_trips;
    tr.degraded_to_cpu = attempt.degraded_to_cpu;
    tr.fault_log = std::move(attempt.fault_log);
    if (tr.single_stream->sample_count > 0)
      tr.energy_per_inference_j =
          attempt.energy_j /
          static_cast<double>(tr.single_stream->sample_count);

    if (tr.single_stream->Errored() || (tr.offline && tr.offline->Errored())) {
      tr.status = TaskStatus::kInvalid;
      tr.status_detail = tr.single_stream->Errored()
                             ? tr.single_stream->invalid_reason
                             : tr.offline->invalid_reason;
      return;
    }
  }

  const std::size_t anomalies =
      (tr.single_stream ? tr.single_stream->AnomalyCount() : 0) +
      (tr.offline ? tr.offline->AnomalyCount() : 0);
  if (tr.fault_count > 0 || tr.degradation_count > 0 || anomalies > 0) {
    tr.status = TaskStatus::kValidDegraded;
    if (tr.degraded_to_cpu)
      tr.status_detail = "degraded to CPU fallback after repeated driver "
                         "crashes";
  }
}

}  // namespace

}  // namespace mlpm::harness
