# Empty dependencies file for mlpm_metrics.
# This may be replaced when dependencies are built.
