#include "models/common.h"

namespace mlpm::models {

using graph::Activation;
using graph::GraphBuilder;
using graph::TensorId;

TensorId InvertedBottleneck(GraphBuilder& b, TensorId in, std::int64_t out_ch,
                            int expand_ratio, int stride, int kernel,
                            bool fused, int dilation) {
  const std::int64_t in_ch = b.ShapeOf(in).channels();
  const std::int64_t expanded = in_ch * expand_ratio;

  TensorId x = in;
  if (fused) {
    // Fused-IBN: expansion + spatial filtering in one dense KxK conv.
    x = b.Conv2d(x, expanded, kernel, stride, Activation::kRelu6,
                 graph::Padding::kSame, dilation);
  } else {
    if (expand_ratio != 1)
      x = b.Conv2d(x, expanded, 1, 1, Activation::kRelu6);
    x = b.DepthwiseConv2d(x, kernel, stride, Activation::kRelu6,
                          graph::Padding::kSame, dilation);
  }
  // Linear bottleneck projection (no activation).
  x = b.Conv2d(x, out_ch, 1, 1, Activation::kNone);

  if (stride == 1 && in_ch == out_ch) x = b.Add(in, x);
  return x;
}

}  // namespace mlpm::models
