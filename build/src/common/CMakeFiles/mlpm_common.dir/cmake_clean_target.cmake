file(REMOVE_RECURSE
  "libmlpm_common.a"
)
