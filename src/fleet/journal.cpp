#include "fleet/journal.h"

#include <utility>

#include "common/check.h"
#include "harness/journal.h"

namespace mlpm::fleet {

using harness::Fnv1a64;
using harness::wire::Field;
using harness::wire::HexDouble;
using harness::wire::ParseDouble;
using harness::wire::ParseU64;
using harness::wire::PayloadParser;
using harness::wire::PutB;
using harness::wire::PutD;
using harness::wire::PutS;
using harness::wire::PutU;

std::uint64_t HashFleetConfig(const FleetOptions& options,
                              const std::vector<FleetMixEntry>& mix) {
  // Canonical text of everything result-shaping, then FNV-1a 64 — the same
  // scheme as harness::HashRunConfig.  Workers and the journal/cancel
  // plumbing are deliberately absent.
  std::string canon;
  canon += "version=";
  canon += ToString(options.version);
  canon += "\nmix=" + FormatFleetMix(mix) + '\n';
  const loadgen::TestSettings& s = options.settings;
  canon += "scenario=";
  canon += ToString(s.scenario);
  canon += "\nseed=" + std::to_string(s.seed);
  canon += "\nmin_query_count=" + std::to_string(s.min_query_count);
  canon += "\nmin_duration_s=" + HexDouble(s.min_duration.count());
  canon += "\noffline_sample_count=" + std::to_string(s.offline_sample_count);
  canon += "\nlatency_percentile=" + HexDouble(s.latency_percentile);
  canon += "\nserver_target_qps=" + HexDouble(s.server_target_qps);
  canon +=
      "\nserver_latency_bound_s=" + HexDouble(s.server_latency_bound.count());
  canon += "\nserver_query_count=" + std::to_string(s.server_query_count);
  canon +=
      "\nserver_max_queue_depth=" + std::to_string(s.server_max_queue_depth);
  canon +=
      "\nserver_max_shed_fraction=" + HexDouble(s.server_max_shed_fraction);
  canon += "\nperformance_sample_count=" +
           std::to_string(s.performance_sample_count);
  canon += "\nquery_timeout_s=" + HexDouble(s.query_timeout.count());
  canon += "\nsplit_seed_per_shard=" +
           std::to_string(options.split_seed_per_shard ? 1 : 0);
  canon += "\naccuracy=" + std::to_string(options.accuracy ? 1 : 0);
  canon += "\nkernel_isa=";
  canon += ToString(options.kernel_isa);
  if (options.fault_plan.has_value()) {
    const soc::FaultPlan& p = *options.fault_plan;
    canon += "\nfault_seed=" + std::to_string(p.seed);
    for (const soc::FaultSpec& spec : p.specs) {
      canon += "\nfault_kind=";
      canon += ToString(spec.kind);
      canon += "\nfault_probability=" + HexDouble(spec.probability);
      canon += "\nfault_stall_scale=" + HexDouble(spec.stall_scale);
      canon += "\nfault_crash_latency_fraction=" +
               HexDouble(spec.crash_latency_fraction);
    }
  }
  if (options.circuit_breaker.has_value()) {
    const backends::CircuitBreakerOptions& b = *options.circuit_breaker;
    canon += "\nbreaker_trip=" + std::to_string(b.trip_threshold);
    canon += "\nbreaker_open_s=" + HexDouble(b.open_duration_s);
    canon += "\nbreaker_backoff=" + HexDouble(b.backoff_factor);
    canon += "\nbreaker_max_open_s=" + HexDouble(b.max_open_duration_s);
    canon += "\nbreaker_jitter=" + HexDouble(b.probe_jitter_frac);
    canon += "\nbreaker_seed=" + std::to_string(b.seed);
    canon += "\nbreaker_reject_s=" + HexDouble(b.rejection_latency_s);
  }
  canon += '\n';
  return Fnv1a64(canon);
}

std::string EncodeFleetMeta(const FleetJournalMeta& meta) {
  std::string out;
  PutS(out, "version", meta.version);
  PutU(out, "seed", meta.seed);
  PutU(out, "shard_count", meta.shard_count);
  PutU(out, "config_hash", meta.config_hash);
  return out;
}

FleetJournalMeta DecodeFleetMeta(const std::string& payload) {
  FleetJournalMeta meta;
  bool saw_shard_count = false;
  PayloadParser parser(payload);
  Field f;
  while (parser.Next(f)) {
    if (f.key == "version") {
      meta.version = std::move(f.bytes);
    } else if (f.key == "seed") {
      meta.seed = ParseU64(f.scalar);
    } else if (f.key == "shard_count") {
      meta.shard_count = ParseU64(f.scalar);
      saw_shard_count = true;
    } else if (f.key == "config_hash") {
      meta.config_hash = ParseU64(f.scalar);
    }
  }
  Expects(!meta.version.empty(), "fleet journal: meta has no version");
  Expects(saw_shard_count, "fleet journal: meta has no shard_count");
  return meta;
}

std::string EncodeShardResult(const ShardResult& shard) {
  std::string out;
  PutU(out, "shard_id", shard.shard_id);
  PutS(out, "chipset", shard.chipset);
  PutS(out, "task_id", shard.task_id);
  PutU(out, "numerics", static_cast<std::uint64_t>(shard.numerics));
  PutS(out, "config_key", shard.config_key);
  PutU(out, "state", static_cast<std::uint64_t>(shard.state));
  PutB(out, "slo_met", shard.slo_met);
  PutU(out, "breaker_trips", shard.breaker_trips);
  PutU(out, "fault_count", shard.fault_count);
  PutD(out, "energy_j", shard.energy_j);
  PutD(out, "peak_temperature_c", shard.peak_temperature_c);
  PutD(out, "accuracy", shard.accuracy);
  PutD(out, "fp32_reference", shard.fp32_reference);
  PutD(out, "ratio_to_fp32", shard.ratio_to_fp32);
  PutB(out, "quality_passed", shard.quality_passed);
  PutS(out, "result", harness::EncodeTestResult(shard.result));
  return out;
}

ShardResult DecodeShardResult(const std::string& payload) {
  ShardResult shard;
  PayloadParser parser(payload);
  Field f;
  while (parser.Next(f)) {
    if (f.key == "shard_id") {
      shard.shard_id = ParseU64(f.scalar);
    } else if (f.key == "chipset") {
      shard.chipset = std::move(f.bytes);
    } else if (f.key == "task_id") {
      shard.task_id = std::move(f.bytes);
    } else if (f.key == "numerics") {
      shard.numerics = static_cast<DataType>(ParseU64(f.scalar));
    } else if (f.key == "config_key") {
      shard.config_key = std::move(f.bytes);
    } else if (f.key == "state") {
      const std::uint64_t v = ParseU64(f.scalar);
      Expects(v <= 3, "fleet journal: bad shard state " + f.scalar);
      shard.state = static_cast<harness::TaskStatus>(v);
    } else if (f.key == "slo_met") {
      shard.slo_met = f.scalar == "1";
    } else if (f.key == "breaker_trips") {
      shard.breaker_trips = ParseU64(f.scalar);
    } else if (f.key == "fault_count") {
      shard.fault_count = ParseU64(f.scalar);
    } else if (f.key == "energy_j") {
      shard.energy_j = ParseDouble(f.scalar);
    } else if (f.key == "peak_temperature_c") {
      shard.peak_temperature_c = ParseDouble(f.scalar);
    } else if (f.key == "accuracy") {
      shard.accuracy = ParseDouble(f.scalar);
    } else if (f.key == "fp32_reference") {
      shard.fp32_reference = ParseDouble(f.scalar);
    } else if (f.key == "ratio_to_fp32") {
      shard.ratio_to_fp32 = ParseDouble(f.scalar);
    } else if (f.key == "quality_passed") {
      shard.quality_passed = f.scalar == "1";
    } else if (f.key == "result") {
      shard.result = harness::DecodeTestResult(f.bytes);
    }
    // Unknown keys are skipped: older binaries read newer journals.
  }
  return shard;
}

FleetJournalLoad LoadFleetJournal(const std::string& path) {
  FleetJournalLoad load;
  const harness::FrameLogLoad raw = harness::LoadFrameLog(path);
  load.notes = raw.notes;
  load.torn_tail = raw.torn_tail;
  load.valid_prefix_bytes = raw.header_valid ? raw.valid_prefix_bytes : 0;

  // Interpret frames until the first semantic failure; everything after a
  // bad frame is untrusted (same policy as the submission journal).
  std::size_t pos = load.valid_prefix_bytes;
  bool interpreted_all = true;
  for (std::size_t i = 0; i < raw.frames.size(); ++i) {
    const harness::RawFrame& frame = raw.frames[i];
    try {
      if (i == 0) {
        Expects(frame.kind == "meta",
                "fleet journal: first frame is '" + frame.kind + "'");
        load.meta = DecodeFleetMeta(frame.payload);
        load.meta_valid = true;
      } else {
        Expects(frame.kind == "shard",
                "fleet journal: unexpected frame kind '" + frame.kind + "'");
        ShardResult shard = DecodeShardResult(frame.payload);
        load.shards[shard.shard_id] = std::move(shard);
      }
    } catch (const CheckError& e) {
      load.notes.push_back(e.what());
      pos = frame.offset;
      interpreted_all = false;
      break;
    }
  }
  load.valid_prefix_bytes = pos;
  if (!interpreted_all) {
    load.torn_tail = true;
    // Physical-damage notes describe bytes past the semantic cut; keep only
    // the semantic note (mirrors harness::LoadJournal).
    load.notes.erase(load.notes.begin(),
                     load.notes.begin() +
                         static_cast<std::ptrdiff_t>(raw.notes.size()));
  }
  return load;
}

std::unique_ptr<FleetJournalWriter> FleetJournalWriter::Create(
    const std::string& path, const FleetJournalMeta& meta) {
  harness::FrameLogWriter log = harness::FrameLogWriter::Create(path);
  log.AppendFrame("meta", EncodeFleetMeta(meta));
  return std::unique_ptr<FleetJournalWriter>(
      new FleetJournalWriter(std::move(log)));
}

std::unique_ptr<FleetJournalWriter> FleetJournalWriter::Resume(
    const std::string& path, std::size_t valid_prefix_bytes) {
  return std::unique_ptr<FleetJournalWriter>(new FleetJournalWriter(
      harness::FrameLogWriter::OpenAt(path, valid_prefix_bytes)));
}

void FleetJournalWriter::Append(const ShardResult& shard) {
  std::scoped_lock lock(mu_);
  log_.AppendFrame("shard", EncodeShardResult(shard));
}

}  // namespace mlpm::fleet
