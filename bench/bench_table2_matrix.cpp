// Table 2 — "myriad combinations of numerics, software run times, and
// hardware": the v0.7 submission matrix.  Each cell reports the numerics,
// framework, and accelerator a vendor used, plus the simulated
// single-stream latency (and offline throughput for image classification,
// where submitted).
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"

namespace {

void PrintMatrix(mlpm::models::SuiteVersion version) {
  using namespace mlpm;

  TextTable t("Table 2 — " + std::string(ToString(version)) +
              " submission matrix (numerics / framework / "
              "accelerator / simulated result)");
  t.SetHeader({"Chipset", "IC single-stream", "IC offline",
               "OD single-stream", "IS single-stream", "NLP single-stream"});

  const auto catalog = version == models::SuiteVersion::kV0_7
                           ? soc::CatalogV07()
                           : soc::CatalogV10();
  for (const soc::ChipsetDesc& chipset : catalog) {
    std::vector<std::string> row{chipset.name};
    // Single-stream cells, in Table 2's column order.
    const models::TaskType order[] = {
        models::TaskType::kImageClassification,
        models::TaskType::kObjectDetection,
        models::TaskType::kImageSegmentation,
        models::TaskType::kQuestionAnswering,
    };
    std::vector<std::string> cells;
    for (const models::TaskType task : order) {
      const backends::SubmissionConfig sub =
          backends::GetSubmission(chipset, task, version);
      const benchutil::PerfOutcome p =
          benchutil::RunSingleStream(chipset, version, task);
      cells.push_back(std::string(ToString(sub.numerics)) + ", " +
                      sub.framework.name + ", " + sub.accelerator_label +
                      ": " + FormatMs(p.p90_latency_s));
    }
    // Offline IC (only some vendors submitted).
    std::string offline_cell = "not submitted";
    const backends::SubmissionConfig ic = backends::GetSubmission(
        chipset, models::TaskType::kImageClassification, version);
    if (!ic.offline_replicas.empty()) {
      const benchutil::PerfOutcome p = benchutil::RunOffline(
          chipset, version, models::TaskType::kImageClassification);
      offline_cell = FormatDouble(p.throughput_sps, 1) + " FPS";
    }
    row.push_back(cells[0]);
    row.push_back(offline_cell);
    row.push_back(cells[1]);
    row.push_back(cells[2]);
    row.push_back(cells[3]);
    t.AddRow(std::move(row));
  }
  std::printf("%s\n", t.Render().c_str());
}

}  // namespace

int main() {
  // The paper prints the v0.7 matrix and notes the same trends hold in
  // v1.0; both rounds are regenerated here.
  PrintMatrix(mlpm::models::SuiteVersion::kV0_7);
  PrintMatrix(mlpm::models::SuiteVersion::kV1_0);
  std::printf(
      "shape vs paper Table 2: vision is INT8/UINT8 on NPUs/DSPs, NLP is "
      "FP16 on\nGPUs, laptops are INT8 OpenVINO; offline uses ALP "
      "(NPU+CPU, AIP=HTA+HVX,\nCPU+iGPU).\n");
  return 0;
}
