// LoadGen server scenario — latency-bounded throughput (paper §4.1 lists
// it among what the LoadGen measures; phones running assistant-style
// services see exactly this Poisson-arrival pattern).
//
// For each v1.0 phone: the highest Poisson arrival rate at which the p90
// image-classification latency stays under a 15 ms bound, found by binary
// search, plus the p90 latency at 50% of that rate.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"

namespace {

using namespace mlpm;

loadgen::TestResult RunServer(const soc::ChipsetDesc& chip, double qps,
                              loadgen::Seconds bound,
                              std::size_t max_queue_depth = 0) {
  const models::SuiteVersion version = models::SuiteVersion::kV1_0;
  const auto suite = models::SuiteFor(version);
  const graph::Graph model = models::BuildReferenceGraph(
      suite[0], version, models::ModelScale::kFull);
  const backends::SubmissionConfig sub = backends::GetSubmission(
      chip, models::TaskType::kImageClassification, version);

  loadgen::VirtualClock clock;
  backends::SimulatedBackend sut(
      chip.name, soc::SocSimulator(chip),
      backends::CompileSubmission(chip, sub, model), {}, clock);
  benchutil::StubDataset stub;
  loadgen::DatasetQsl qsl(stub);
  loadgen::TestSettings s;
  s.scenario = loadgen::TestScenario::kServer;
  s.server_target_qps = qps;
  s.server_latency_bound = bound;
  s.server_query_count = 4096;
  s.server_max_queue_depth = max_queue_depth;
  s.server_max_shed_fraction = 1.0;  // report, don't gate, in this bench
  return loadgen::RunTest(sut, qsl, s, clock);
}

}  // namespace

int main() {
  const loadgen::Seconds bound{0.015};
  TextTable t("server scenario — image classification, p90 bound 15 ms");
  t.SetHeader({"Chipset", "max QPS under bound", "p90 at 50% load",
               "single-stream 1/latency"});
  for (const soc::ChipsetDesc& chip :
       {soc::Dimensity1100(), soc::Exynos2100(), soc::Snapdragon888()}) {
    const double max_qps = loadgen::FindMaxServerQps(
        [&](double qps) { return RunServer(chip, qps, bound); }, 20.0,
        2000.0, 9);
    const loadgen::TestResult half = RunServer(chip, max_qps / 2, bound);
    const benchutil::PerfOutcome ss = benchutil::RunSingleStream(
        chip, models::SuiteVersion::kV1_0,
        models::TaskType::kImageClassification);
    t.AddRow({chip.name, FormatDouble(max_qps, 0),
              FormatMs(half.percentile_latency_s),
              FormatDouble(1.0 / ss.p90_latency_s, 0) + " q/s"});
  }
  std::printf("%s", t.Render().c_str());
  std::printf(
      "\nqueueing pushes the sustainable service rate well below the\n"
      "single-stream inverse latency — the reason latency-bounded\n"
      "throughput is its own LoadGen scenario.\n");

  // Overload with admission control (DESIGN.md §12): offer 2x the rate
  // each chipset can sustain, once with an unbounded queue and once with a
  // bounded issue queue that sheds.  Shedding trades a fraction of the
  // offered load for an accepted-query p90 that stays near the bound.
  TextTable o("2x overload — unbounded queue vs admission control (depth 8)");
  o.SetHeader({"Chipset", "p90 unbounded", "p90 with shedding",
               "shed fraction", "accepted bound met"});
  for (const soc::ChipsetDesc& chip :
       {soc::Dimensity1100(), soc::Exynos2100(), soc::Snapdragon888()}) {
    const double max_qps = loadgen::FindMaxServerQps(
        [&](double qps) { return RunServer(chip, qps, bound); }, 20.0,
        2000.0, 9);
    const loadgen::TestResult unbounded =
        RunServer(chip, 2 * max_qps, bound);
    const loadgen::TestResult shed = RunServer(chip, 2 * max_qps, bound, 8);
    o.AddRow({chip.name, FormatMs(unbounded.percentile_latency_s),
              FormatMs(shed.percentile_latency_s),
              FormatPercent(static_cast<double>(shed.shed_count) / 4096.0, 1),
              shed.latency_bound_met ? "yes" : "no"});
  }
  std::printf("\n%s", o.Render().c_str());
  std::printf(
      "\nload shedding keeps the accepted-query tail flat under overload;\n"
      "the cost is explicit — the shed fraction — instead of an unbounded\n"
      "latency blow-up.\n");
  return 0;
}
