// MobileNetEdgeTPU — the image-classification reference model (paper §3.2).
//
// A MobileNet-v2 descendant optimized for mobile accelerators: early stages
// use *fused* inverted bottlenecks (dense KxK expansion convs improve
// hardware utilization), hard-swish and squeeze-excite blocks are removed,
// later stages use regular depthwise inverted bottlenecks.  ~4M parameters,
// 224x224 input, 1000 ImageNet classes (Table 1).
#pragma once

#include "graph/graph.h"
#include "models/common.h"

namespace mlpm::models {

struct ClassifierConfig {
  std::int64_t input_size = 224;
  std::int64_t num_classes = 1000;
};

// Mini configuration used by the functional accuracy plane.
[[nodiscard]] ClassifierConfig MiniClassifierConfig();

[[nodiscard]] graph::Graph BuildMobileNetEdgeTpu(ModelScale scale);
[[nodiscard]] graph::Graph BuildMobileNetEdgeTpu(const ClassifierConfig& cfg,
                                                 ModelScale scale);

}  // namespace mlpm::models
