// Model "compilation" for the simulator: maps a graph onto a chipset's
// engines under an execution policy and a runtime's overhead profile,
// producing a segmented execution plan with per-segment base latency,
// energy, and inter-segment transfer volumes.
//
// This models the two things a software stack decides (paper §2.2, §7.4):
// where each op runs, and how much it costs to cross runtime / IP-block
// boundaries.  Vendor SDKs produce few segments with cheap boundaries;
// NNAPI's hardware-abstraction layer introduces extra partitions and
// synchronization; buggy delegates force op fallbacks onto the CPU.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "graph/cost.h"
#include "graph/graph.h"
#include "soc/chipset.h"

namespace mlpm::soc {

// How a model is laid onto engines.
struct ExecutionPolicy {
  // Engine names (must exist on the chipset); the first is the primary.
  std::vector<std::string> engines;
  // 0: everything on the primary engine.  k > 0: alternate between the
  // listed engines every k nodes — models schedulers that bounce a graph
  // between IP blocks (the Exynos 990 segmentation pathology, App. C).
  int alternate_every = 0;
  // Fraction of nodes the runtime cannot place on the accelerator and
  // falls back to the CPU (NNAPI op-coverage holes; 0 for vendor SDKs).
  double cpu_fallback_fraction = 0.0;
  // k > 0: force a partition boundary every k nodes even within one engine
  // — models HAL-level partitioning (NNAPI), which costs a sync and a
  // buffer copy per boundary.  0 for vendor SDKs (direct execution).
  int force_partition_every = 0;
  // n > 0: the last n nodes run on engines[1] (e.g. Exynos "NPU+CPU":
  // pooling / FC / detection-head tails execute on the CPU).
  int tail_nodes_on_secondary = 0;
  // Software/toolchain maturity for this network family on this stack, in
  // (0,1]: the fraction of the hardware roofline the vendor compiler
  // actually sustains.  The paper attributes generation gains largely to
  // software ("the software uplift was 6x", App. C); this is that variable,
  // reported transparently per submission.
  double toolchain_efficiency = 1.0;
};

// Overheads contributed by the runtime / framework layer.
struct RuntimeOverheads {
  double per_inference_s = 0.0;       // dispatch cost per inference
  double per_partition_sync_s = 0.0;  // HAL sync per segment boundary
  bool copy_boundary_tensors = true;  // boundary tensors cross interconnect
  // Vendor compilers fuse elementwise ops (residual adds, activations,
  // norms) into the preceding compute kernel, eliminating their dispatch;
  // generic HAL paths submit them as separate kernels.
  bool fuse_elementwise = false;
};

struct CompiledSegment {
  std::size_t engine_index = 0;  // into ChipsetDesc::engines
  std::size_t node_count = 0;    // graph nodes folded into this segment
  double roofline_s = 0.0;       // sum of per-layer max(compute, memory)
  double dispatch_s = 0.0;       // sum of per-layer dispatch overheads
  double energy_j = 0.0;
  // Bytes of the segment's final activation that must cross to the next
  // segment's engine (0 for the last segment).
  double boundary_bytes = 0.0;
};

struct CompiledModel {
  std::string model_name;
  std::string chipset_name;
  DataType numerics = DataType::kInt8;
  std::vector<CompiledSegment> segments;
  RuntimeOverheads overheads;
  double interconnect_gbps = 8.0;
  std::size_t node_count = 0;
  double total_macs = 0.0;

  // Single-inference latency at a given thermal throttle factor.
  // `dispatch_scale` discounts per-layer dispatch overhead (batched offline
  // execution amortizes kernel launches; 1.0 for single-stream).
  [[nodiscard]] double LatencySeconds(double throttle_factor = 1.0,
                                      double dispatch_scale = 1.0) const;
  // Energy for one inference (throttle-independent in this model).
  [[nodiscard]] double EnergyJoules() const;
  // Average power drawn while this model executes, watts.
  [[nodiscard]] double AveragePowerWatts() const;
};

// Per-layer roofline cost on one engine (exposed for tests / benches).
struct LayerTiming {
  double seconds = 0.0;   // roofline + dispatch
  double roofline_s = 0.0;
  double dispatch_s = 0.0;
  double joules = 0.0;
};
// `weight_traffic_scale` < 1 amortizes weight reads across a batch
// (offline mode re-uses staged weights across samples).
[[nodiscard]] LayerTiming LayerCost(const graph::NodeCost& cost,
                                    DataType numerics,
                                    const AcceleratorDesc& engine,
                                    double weight_traffic_scale = 1.0);

// Compiles `graph` for `chipset` under `policy` and `overheads`.
// `batched` produces an offline-mode plan (weight traffic amortized across
// the batch).  Throws CheckError if a policy engine is missing or does not
// support the numerics.
[[nodiscard]] CompiledModel Compile(const graph::Graph& graph,
                                    DataType numerics,
                                    const ChipsetDesc& chipset,
                                    const ExecutionPolicy& policy,
                                    const RuntimeOverheads& overheads,
                                    bool batched = false);

}  // namespace mlpm::soc
