#include "fleet/report.h"

#include <cstdio>

#include "common/statistics.h"

namespace mlpm::fleet {
namespace {

[[nodiscard]] std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, v);
  return buf;
}

}  // namespace

std::string FormatFleetReport(const FleetReport& report) {
  std::string out;
  char line[256];

  out += "fleet report (";
  out += ToString(report.version);
  std::snprintf(line, sizeof line, ", seed 0x%llx, %zu shards)%s\n",
                static_cast<unsigned long long>(report.seed),
                report.shard_count,
                report.interrupted ? " [interrupted]" : "");
  out += line;
  out += "  mix: " + report.mix_spec + "\n";
  out += "  fleet qps: " + Fmt("%.3f", report.fleet_qps) + "\n";
  std::size_t slo_met = 0;
  for (const ShardResult& s : report.shards)
    if (s.slo_met) ++slo_met;
  std::snprintf(line, sizeof line, "  slo met: %zu/%zu (%s)\n", slo_met,
                report.shards.size(),
                Fmt("%.1f%%", report.slo_met_fraction * 100.0).c_str());
  out += line;
  std::snprintf(line, sizeof line,
                "  shards: %zu valid, %zu degraded, %zu invalid\n",
                report.valid_count, report.degraded_count,
                report.invalid_count);
  out += line;
  std::snprintf(line, sizeof line,
                "  queries: offered %zu, issued %zu, completed %zu, "
                "shed %zu, rejected %zu, timed out %zu, dropped %zu\n",
                report.offered, report.issued, report.completed, report.shed,
                report.rejected, report.timed_out, report.dropped);
  out += line;
  out += "  latency p50/p90/p99 ms: " + Fmt("%.3f", report.p50_ms) + " / " +
         Fmt("%.3f", report.p90_ms) + " / " + Fmt("%.3f", report.p99_ms) +
         "\n";
  // Deliberately omits this run's build count: replayed shards build
  // nothing, and the text must stay byte-identical across resume.
  std::snprintf(line, sizeof line,
                "  prepared models: %zu distinct configs shared across "
                "%zu shards\n",
                report.distinct_configs, report.shard_count);
  out += line;
  if (report.breaker_trips > 0) {
    std::snprintf(line, sizeof line, "  breaker trips: %zu\n",
                  report.breaker_trips);
    out += line;
  }
  // resumed_shards is likewise run-local (how this process got the
  // results, not what they are) and stays out of the text.

  out += "\n  shard  state           slo  qps        p99_ms   issued  shed  "
         "config\n";
  for (const ShardResult& s : report.shards) {
    const double p99_ms =
        s.result.latencies_s.empty()
            ? 0.0
            : Percentile(s.result.latencies_s, 99.0) * 1e3;
    std::snprintf(line, sizeof line,
                  "  %-6zu %-15s %-4s %-10s %-8s %-7zu %-5zu %s\n",
                  s.shard_id, std::string(ToString(s.state)).c_str(),
                  s.slo_met ? "yes" : "no",
                  Fmt("%.3f", s.result.throughput_sps).c_str(),
                  Fmt("%.3f", p99_ms).c_str(), s.result.issued_count,
                  s.result.shed_count, s.config_key.c_str());
    out += line;
    if (s.accuracy > 0.0) {
      std::snprintf(line, sizeof line,
                    "         accuracy %s (%s of fp32 %s) %s\n",
                    Fmt("%.4f", s.accuracy).c_str(),
                    Fmt("%.4f", s.ratio_to_fp32).c_str(),
                    Fmt("%.4f", s.fp32_reference).c_str(),
                    s.quality_passed ? "pass" : "FAIL");
      out += line;
    }
  }
  return out;
}

}  // namespace mlpm::fleet
