#include "harness/run_session.h"

#include <utility>

#include "backends/reference_backend.h"
#include "core/dataset_qsl.h"

namespace mlpm::harness {
namespace {

infer::NumericsMode ModeFor(DataType numerics) {
  switch (numerics) {
    case DataType::kInt8:
    case DataType::kUInt8:
      return infer::NumericsMode::kInt8;
    case DataType::kFloat16:
      return infer::NumericsMode::kFp16;
    case DataType::kFloat32:
    case DataType::kInt32:
      return infer::NumericsMode::kFp32;
  }
  return infer::NumericsMode::kFp32;
}

// Analytical pre/post-processing cost on the CPU (the "AI tax" the
// end-to-end extension includes; paper App. E).
backends::EndToEndCosts EstimateEndToEndCosts(
    const models::BenchmarkEntry& e) {
  backends::EndToEndCosts c;
  const double cpu_elem_rate = 2.0e9;  // elementwise ops per second
  const double pixels = static_cast<double>(e.input_size * e.input_size);
  switch (e.task) {
    case models::TaskType::kImageClassification:
      c.preprocess_s = pixels * 3 * 12 / cpu_elem_rate;  // resize+crop+norm
      c.postprocess_s = 1e-5;                            // top-k
      break;
    case models::TaskType::kObjectDetection:
      c.preprocess_s = pixels * 3 * 8 / cpu_elem_rate;
      c.postprocess_s = 4e-4;  // decode + NMS
      break;
    case models::TaskType::kImageSegmentation:
      c.preprocess_s = pixels * 3 * 8 / cpu_elem_rate;
      c.postprocess_s = pixels * 32 / cpu_elem_rate;  // per-pixel argmax
      break;
    case models::TaskType::kQuestionAnswering:
      c.preprocess_s = 5e-5;   // tokenization of one question
      c.postprocess_s = 1e-4;  // span search
      break;
  }
  return c;
}

}  // namespace

const TaskBundle& SuiteBundles::Get(const models::BenchmarkEntry& e,
                                    models::SuiteVersion version) {
  const std::string key =
      std::string(ToString(version)) + "/" + e.id;
  auto it = cache_.find(key);
  if (it == cache_.end())
    it = cache_.emplace(key, TaskBundle::Create(e, version)).first;
  return *it->second;
}

loadgen::TestResult RunSingleStreamPerformance(
    const soc::ChipsetDesc& chipset, const backends::SubmissionConfig& config,
    const graph::Graph& full_graph, const datasets::TaskDataset& dataset,
    const loadgen::TestSettings& settings) {
  loadgen::TestSettings s = settings;
  s.scenario = loadgen::TestScenario::kSingleStream;
  s.mode = loadgen::TestMode::kPerformanceOnly;

  loadgen::VirtualClock clock;
  backends::SimulatedBackend sut(
      chipset.name + "/" + config.framework.name,
      soc::SocSimulator(chipset),
      backends::CompileSubmission(chipset, config, full_graph),
      backends::CompileOfflineReplicas(chipset, config, full_graph), clock);
  loadgen::DatasetQsl qsl(dataset);
  return loadgen::RunTest(sut, qsl, s, clock);
}

SubmissionResult RunSubmission(const soc::ChipsetDesc& chipset,
                               models::SuiteVersion version,
                               SuiteBundles& bundles,
                               const RunOptions& options) {
  SubmissionResult result;
  result.chipset_name = chipset.name;
  result.version = version;

  // The prescribed task order is the suite order (§6.1).
  for (const models::BenchmarkEntry& entry : models::SuiteFor(version)) {
    const TaskBundle& bundle = bundles.Get(entry, version);
    const backends::SubmissionConfig sub =
        backends::GetSubmission(chipset, entry.task, version);

    TaskRunResult tr;
    tr.entry = entry;
    tr.numerics = sub.numerics;
    tr.framework_name = sub.framework.name;
    tr.accelerator_label = sub.accelerator_label;

    if (options.run_accuracy) {
      // Accuracy mode: the whole validation set through the LoadGen and
      // the functional reference backend at the submission numerics.
      const infer::NumericsMode mode = ModeFor(sub.numerics);
      const TaskBundle::PreparedModel prepared =
          bundle.Prepare(mode, options.use_qat_weights &&
                                   mode == infer::NumericsMode::kInt8);
      tr.calibration_indices = prepared.calibration_indices;

      loadgen::DatasetQsl qsl(bundle.dataset());
      loadgen::RealClock clock;
      backends::ReferenceBackend ref_sut("reference/" + entry.id,
                                         *prepared.executor, qsl);
      loadgen::TestSettings acc;
      acc.mode = loadgen::TestMode::kAccuracyOnly;
      const loadgen::TestResult acc_result =
          loadgen::RunTest(ref_sut, qsl, acc, clock);
      tr.accuracy = bundle.dataset().ScoreOutputs(acc_result.accuracy_outputs);
      tr.accuracy_sample_count = acc_result.sample_count;
      tr.dataset_size = bundle.dataset().size();
      tr.fp32_reference = bundle.Fp32Score();
      tr.ratio_to_fp32 =
          tr.fp32_reference > 0 ? tr.accuracy / tr.fp32_reference : 0.0;
      tr.quality_passed = tr.ratio_to_fp32 >= entry.quality_target;
    }

    if (options.run_performance) {
      const graph::Graph full =
          models::BuildReferenceGraph(entry, version,
                                      models::ModelScale::kFull);
      const backends::EndToEndCosts e2e =
          options.end_to_end ? EstimateEndToEndCosts(entry)
                             : backends::EndToEndCosts{};

      loadgen::VirtualClock clock;
      backends::SimulatedBackend sut(
          chipset.name + "/" + sub.framework.name,
          soc::SocSimulator(chipset),
          backends::CompileSubmission(chipset, sub, full),
          backends::CompileOfflineReplicas(chipset, sub, full), clock, e2e);
      loadgen::DatasetQsl qsl(bundle.dataset());

      loadgen::TestSettings ss = options.performance_settings;
      ss.scenario = loadgen::TestScenario::kSingleStream;
      ss.mode = loadgen::TestMode::kPerformanceOnly;
      tr.single_stream = loadgen::RunTest(sut, qsl, ss, clock);
      tr.peak_temperature_c = sut.simulator().thermal().temperature_c();
      if (tr.single_stream->sample_count > 0)
        tr.energy_per_inference_j =
            sut.total_energy_j() /
            static_cast<double>(tr.single_stream->sample_count);

      const bool has_offline =
          options.run_offline && !sub.offline_replicas.empty();
      if (has_offline) {
        // Cooldown interval between the two performance tests (§6.1).
        sut.Cooldown(options.cooldown_s);
        loadgen::TestSettings off = options.performance_settings;
        off.scenario = loadgen::TestScenario::kOffline;
        off.mode = loadgen::TestMode::kPerformanceOnly;
        tr.offline = loadgen::RunTest(sut, qsl, off, clock);
        tr.peak_temperature_c = std::max(
            tr.peak_temperature_c,
            sut.simulator().thermal().temperature_c());
      }
    }
    result.tasks.push_back(std::move(tr));
  }
  return result;
}

}  // namespace mlpm::harness
