// The Load Generator (paper §4).
//
// Creates inference requests in the scenario's pattern, measures latency /
// throughput against the test clock, selects samples with the official
// seeded RNG (precluding data-set-specific optimizations), and logs every
// issue/completion for post-run validation.  Submitters may not modify this
// component — nothing in it is backend- or vendor-specific.
#pragma once

#include <functional>
#include <vector>

#include "core/logging.h"
#include "core/query.h"
#include "core/settings.h"

namespace mlpm::loadgen {

struct TestResult {
  TestScenario scenario = TestScenario::kSingleStream;
  TestMode mode = TestMode::kPerformanceOnly;

  // Performance outcomes.
  std::vector<double> latencies_s;   // per-sample latency (seconds)
  double duration_s = 0.0;           // first issue -> last completion
  std::size_t sample_count = 0;
  double percentile_latency_s = 0.0;  // at settings.latency_percentile
  double mean_latency_s = 0.0;
  double throughput_sps = 0.0;        // samples per second

  // Run-rule validity (checked again, independently, by the submission
  // checker from the raw log).
  bool min_duration_met = false;
  bool min_query_count_met = false;
  // Server scenario: percentile latency within the latency bound.
  bool latency_bound_met = false;
  // Server scenario: shed + rejected queries within the allowed fraction
  // of offered load (settings.server_max_shed_fraction).  Always true for
  // other scenarios.
  bool shed_bound_met = true;

  // Error taxonomy (paper App. D: buggy delegates, dropped inferences,
  // watchdog-killed drivers are routine on mobile).  A misbehaving SUT
  // degrades the run instead of aborting it: each anomaly is counted and
  // logged, and a run that is structurally unusable gets an invalid_reason
  // instead of a thrown exception.
  std::size_t dropped_count = 0;    // issued, never completed (no watchdog)
  std::size_t timed_out_count = 0;  // expired by the per-query watchdog
  std::size_t duplicate_count = 0;  // repeat completions, ignored
  std::size_t unknown_count = 0;    // completions for unissued ids, ignored
  std::size_t shed_count = 0;       // refused by LoadGen admission control
  std::size_t rejected_count = 0;   // fast-failed by the SUT (breaker open)
  // Queries actually handed to the SUT.  Every issued query resolves as
  // exactly one of {on-time completion, timed_out, dropped, rejected}, so
  //   issued_count == sample_count + timed_out_count + dropped_count
  //                   + rejected_count
  // holds for every run (fleet conformance tests pin this identity).
  std::size_t issued_count = 0;
  std::vector<std::string> error_log;
  // Empty for a structurally valid run.  Nonempty means the run produced
  // no usable measurement (no completions, stalled SUT, incomplete
  // accuracy coverage) — distinct from a valid run that misses a bound.
  std::string invalid_reason;

  [[nodiscard]] bool Errored() const { return !invalid_reason.empty(); }
  // Anomalies observed (the run may still be valid, just degraded).
  [[nodiscard]] std::size_t AnomalyCount() const {
    return dropped_count + timed_out_count + duplicate_count +
           unknown_count + shed_count + rejected_count;
  }

  // Accuracy mode: model outputs per dataset sample index, for the
  // harness to score against the data set.
  std::vector<std::vector<infer::Tensor>> accuracy_outputs;

  TestLog log;
};

// Runs one test.  The clock must be the same one the SUT uses to report
// completions (wall clock for functional backends, the simulator's virtual
// clock otherwise).
[[nodiscard]] TestResult RunTest(SystemUnderTest& sut,
                                 QuerySampleLibrary& qsl,
                                 const TestSettings& settings, Clock& clock);

// Binary-searches the highest server QPS whose run still meets the latency
// bound and the shed bound (a rate "served" only by refusing offered load
// past server_max_shed_fraction does not count).  `run_at_qps` must execute
// a fresh server-scenario test at the given rate (fresh SUT + clock per
// probe) and return its result.
// Returns 0 if even `lo` fails.  An errored probe (TestResult::Errored())
// is an invalid run, not a latency-bound miss: if the `lo` probe errors the
// search stops immediately without further probes, and an errored mid
// probe counts as a failure so the search cannot converge on garbage.
[[nodiscard]] double FindMaxServerQps(
    const std::function<TestResult(double qps)>& run_at_qps, double lo,
    double hi, int iterations = 10);

}  // namespace mlpm::loadgen
