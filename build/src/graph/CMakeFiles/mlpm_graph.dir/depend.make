# Empty dependencies file for mlpm_graph.
# This may be replaced when dependencies are built.
