// Post-training-quantization study (paper §5.1): how calibration-set size,
// range method, per-channel weights and the QAT-agreed weights affect the
// quality ratio against the FP32 reference, per task.
//
// The run rules only allow PTQ from the frozen graph using the approved
// calibration set; this study shows why the approved ~500-sample set and
// per-channel quantization are enough to clear the Table 1 targets.
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "datasets/calibration_set.h"
#include "harness/run_session.h"
#include "quant/calibration.h"

namespace {

using namespace mlpm;

double ScoreInt8(const harness::TaskBundle& bundle,
                 const quant::CalibrationConfig& cc,
                 std::size_t calibration_samples, bool qat) {
  const infer::WeightStore* weights = &bundle.weights();
  infer::WeightStore refined;
  if (qat) {
    refined = quant::RefineWeightsMseOptimal(bundle.mini_graph(),
                                             bundle.weights());
    weights = &refined;
  }
  const std::vector<std::size_t> idx = datasets::ApprovedCalibrationIndices(
      harness::kCalibrationPoolSize, calibration_samples,
      harness::kCalibrationSeed);
  const auto samples =
      datasets::GatherCalibrationSamples(bundle.dataset(), idx);
  const infer::QuantParams qp =
      quant::CalibratePtq(bundle.mini_graph(), *weights, samples, cc);
  const infer::Executor int8(bundle.mini_graph(), *weights,
                             infer::NumericsMode::kInt8, &qp);
  return bundle.ScoreAccuracy(int8);
}

}  // namespace

int main() {
  harness::SuiteBundles bundles;
  TextTable table(
      "INT8 PTQ quality ratio vs FP32 (mini functional plane, v1.0 suite)");
  table.SetHeader({"Task", "target", "calib=8", "calib=32", "calib=128",
                   "per-tensor", "moving-avg", "QAT weights"});

  for (const models::BenchmarkEntry& e :
       models::SuiteFor(models::SuiteVersion::kV1_0)) {
    const harness::TaskBundle& bundle =
        bundles.Get(e, models::SuiteVersion::kV1_0);
    const double fp32 = bundle.Fp32Score();

    const auto ratio = [&](const quant::CalibrationConfig& cc,
                           std::size_t n, bool qat) {
      return FormatPercent(ScoreInt8(bundle, cc, n, qat) / fp32, 1);
    };
    quant::CalibrationConfig base;  // min-max, per-channel
    quant::CalibrationConfig per_tensor = base;
    per_tensor.per_channel_weights = false;
    quant::CalibrationConfig ema = base;
    ema.method = quant::RangeMethod::kMovingAverage;

    table.AddRow({e.id, FormatPercent(e.quality_target, 0),
                  ratio(base, 8, false), ratio(base, 32, false),
                  ratio(base, 128, false), ratio(per_tensor, 128, false),
                  ratio(ema, 128, false), ratio(base, 128, true)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nvision tasks clear their targets with plain PTQ; NLP sits closest\n"
      "to its threshold — the reason phone submissions run MobileBERT in\n"
      "FP16 on the GPU (paper insight 5).\n");
  return 0;
}
