file(REMOVE_RECURSE
  "libmlpm_quant.a"
)
