// Graph structure lints (GRAPH001-GRAPH005).
//
// graph/validate.cpp answers "is this graph acceptable" with one bool; this
// pass answers "what exactly is wrong" with coded, severity-graded
// diagnostics, and adds the checks validate cannot express: true cycle
// detection over the producer/consumer relation (validate only catches
// use-before-definition in storage order) and reachability from the graph
// outputs.
#include <cstddef>
#include <queue>
#include <unordered_set>
#include <vector>

#include "analysis/passes.h"

namespace mlpm::analysis {
namespace {

using graph::Graph;
using graph::Node;
using graph::TensorId;
using graph::TensorKind;

bool InRange(const Graph& g, TensorId id) {
  return id >= 0 && static_cast<std::size_t>(id) < g.tensors().size();
}

// Id-range and tensor-kind integrity.  Returns true when every id the later
// sub-passes dereference is in range.
bool CheckIntegrity(const Graph& g, DiagnosticEngine& de) {
  bool sound = true;
  const auto bad = [&](const SourceRef& src, std::string what) {
    de.Report("GRAPH005", src, std::move(what));
    sound = false;
  };

  for (const TensorId id : g.input_ids())
    if (!InRange(g, id))
      bad(GraphSource(g.name()),
          "graph input id " + std::to_string(id) + " is out of range");
  for (const TensorId id : g.output_ids())
    if (!InRange(g, id))
      bad(GraphSource(g.name()),
          "graph output id " + std::to_string(id) + " is out of range");

  for (std::size_t ni = 0; ni < g.nodes().size(); ++ni) {
    const Node& n = g.nodes()[ni];
    const SourceRef src = NodeSource(n.name, static_cast<std::int32_t>(ni));
    for (const TensorId id : n.inputs) {
      if (!InRange(g, id)) {
        bad(src, "input id " + std::to_string(id) + " is out of range");
      } else if (g.tensor(id).kind != TensorKind::kActivation) {
        de.Report("GRAPH005", src,
                  "input references weight tensor '" + g.tensor(id).name +
                      "'");
      }
    }
    for (const TensorId id : n.weights) {
      if (!InRange(g, id)) {
        bad(src, "weight id " + std::to_string(id) + " is out of range");
      } else if (g.tensor(id).kind != TensorKind::kWeight) {
        de.Report("GRAPH005", src,
                  "weight references activation tensor '" + g.tensor(id).name +
                      "'");
      }
    }
    if (!InRange(g, n.output))
      bad(src, "output id " + std::to_string(n.output) + " is out of range");
  }
  return sound;
}

// Aliasing writes (GRAPH003): double production, in-place aliasing, writes
// onto graph inputs or weight tensors.
void CheckAliasing(const Graph& g, DiagnosticEngine& de) {
  const std::unordered_set<TensorId> graph_inputs(g.input_ids().begin(),
                                                  g.input_ids().end());
  std::unordered_set<TensorId> produced;
  for (std::size_t ni = 0; ni < g.nodes().size(); ++ni) {
    const Node& n = g.nodes()[ni];
    const SourceRef src = NodeSource(n.name, static_cast<std::int32_t>(ni));
    if (!produced.insert(n.output).second)
      de.Report("GRAPH003", src,
                "output tensor '" + g.tensor(n.output).name +
                    "' is produced by more than one node");
    for (const TensorId in : n.inputs)
      if (in == n.output)
        de.Report("GRAPH003", src,
                  "output aliases its own input tensor '" +
                      g.tensor(in).name + "' (in-place write)");
    if (graph_inputs.contains(n.output))
      de.Report("GRAPH003", src,
                "output overwrites graph input '" + g.tensor(n.output).name +
                    "'");
    if (g.tensor(n.output).kind == TensorKind::kWeight)
      de.Report("GRAPH003", src,
                "output overwrites weight tensor '" + g.tensor(n.output).name +
                    "'");
  }
}

// Cycle detection (GRAPH004) over the node dependency relation via Kahn's
// algorithm.  A graph whose nodes permit *some* topological order is a DAG
// even if the storage order has forward references.
void CheckCycles(const Graph& g, DiagnosticEngine& de) {
  const std::size_t n = g.nodes().size();
  // producer[t] = node index writing tensor t, from node records (the
  // TensorInfo::producer field is untrusted here).
  std::vector<std::int32_t> producer(g.tensors().size(), -1);
  for (std::size_t ni = 0; ni < n; ++ni)
    producer[static_cast<std::size_t>(g.nodes()[ni].output)] =
        static_cast<std::int32_t>(ni);

  std::vector<std::vector<std::size_t>> consumers(n);
  std::vector<std::size_t> indegree(n, 0);
  for (std::size_t ni = 0; ni < n; ++ni) {
    for (const TensorId in : g.nodes()[ni].inputs) {
      const std::int32_t p = producer[static_cast<std::size_t>(in)];
      if (p >= 0 && static_cast<std::size_t>(p) != ni) {
        consumers[static_cast<std::size_t>(p)].push_back(ni);
        ++indegree[ni];
      }
    }
  }

  std::queue<std::size_t> ready;
  for (std::size_t ni = 0; ni < n; ++ni)
    if (indegree[ni] == 0) ready.push(ni);
  std::size_t processed = 0;
  while (!ready.empty()) {
    const std::size_t ni = ready.front();
    ready.pop();
    ++processed;
    for (const std::size_t c : consumers[ni])
      if (--indegree[c] == 0) ready.push(c);
  }
  if (processed == n) return;
  for (std::size_t ni = 0; ni < n; ++ni) {
    if (indegree[ni] == 0) continue;
    de.Report("GRAPH004", NodeSource(g.nodes()[ni].name,
                                     static_cast<std::int32_t>(ni)),
              "node is part of a dataflow cycle (" +
                  std::to_string(n - processed) + " node(s) unorderable)");
  }
}

// Dead tensors (GRAPH001) and unreachable nodes (GRAPH002).
void CheckLiveness(const Graph& g, DiagnosticEngine& de) {
  std::unordered_set<TensorId> consumed;
  std::vector<std::int32_t> producer(g.tensors().size(), -1);
  for (std::size_t ni = 0; ni < g.nodes().size(); ++ni) {
    for (const TensorId in : g.nodes()[ni].inputs) consumed.insert(in);
    producer[static_cast<std::size_t>(g.nodes()[ni].output)] =
        static_cast<std::int32_t>(ni);
  }
  const std::unordered_set<TensorId> outputs(g.output_ids().begin(),
                                             g.output_ids().end());

  for (const Node& n : g.nodes())
    if (!consumed.contains(n.output) && !outputs.contains(n.output))
      de.Report("GRAPH001",
                TensorSource(g.tensor(n.output).name, n.output),
                "tensor is produced by node '" + n.name +
                    "' but never consumed nor marked as a graph output");

  // Reverse reachability from the graph outputs through producers.
  std::vector<bool> reachable(g.nodes().size(), false);
  std::queue<std::size_t> frontier;
  for (const TensorId out : g.output_ids()) {
    const std::int32_t p = producer[static_cast<std::size_t>(out)];
    if (p >= 0 && !reachable[static_cast<std::size_t>(p)]) {
      reachable[static_cast<std::size_t>(p)] = true;
      frontier.push(static_cast<std::size_t>(p));
    }
  }
  while (!frontier.empty()) {
    const std::size_t ni = frontier.front();
    frontier.pop();
    for (const TensorId in : g.nodes()[ni].inputs) {
      const std::int32_t p = producer[static_cast<std::size_t>(in)];
      if (p >= 0 && !reachable[static_cast<std::size_t>(p)]) {
        reachable[static_cast<std::size_t>(p)] = true;
        frontier.push(static_cast<std::size_t>(p));
      }
    }
  }
  for (std::size_t ni = 0; ni < g.nodes().size(); ++ni)
    if (!reachable[ni])
      de.Report("GRAPH002", NodeSource(g.nodes()[ni].name,
                                       static_cast<std::int32_t>(ni)),
                "no dataflow path from this node to any graph output");
}

}  // namespace

void CheckGraphStructure(const Graph& g, DiagnosticEngine& de) {
  if (!CheckIntegrity(g, de)) return;  // later sub-passes dereference ids
  CheckAliasing(g, de);
  CheckCycles(g, de);
  CheckLiveness(g, de);
}

void RunModelPasses(const Graph& g, DiagnosticEngine& de) {
  CheckGraphStructure(g, de);
  if (!de.SeenCode("GRAPH005")) CheckShapeDataflow(g, de);
}

}  // namespace mlpm::analysis
