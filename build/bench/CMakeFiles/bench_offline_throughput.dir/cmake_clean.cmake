file(REMOVE_RECURSE
  "CMakeFiles/bench_offline_throughput.dir/bench_offline_throughput.cpp.o"
  "CMakeFiles/bench_offline_throughput.dir/bench_offline_throughput.cpp.o.d"
  "bench_offline_throughput"
  "bench_offline_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_offline_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
