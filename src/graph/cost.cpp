#include "graph/cost.h"

#include <variant>

namespace mlpm::graph {
namespace {

std::int64_t SumInputElems(const Graph& g, const Node& n) {
  std::int64_t e = 0;
  for (TensorId t : n.inputs) e += g.tensor(t).shape.elements();
  return e;
}

std::int64_t SumWeightElems(const Graph& g, const Node& n) {
  std::int64_t e = 0;
  for (TensorId t : n.weights) e += g.tensor(t).shape.elements();
  return e;
}

}  // namespace

NodeCost AnalyzeNode(const Graph& g, const Node& n) {
  NodeCost c;
  c.op_class = ClassOf(n.op);
  c.input_elems = SumInputElems(g, n);
  c.weight_elems = SumWeightElems(g, n);
  c.output_elems = g.tensor(n.output).shape.elements();

  const TensorShape& out = g.tensor(n.output).shape;
  switch (n.op) {
    case OpType::kConv2d: {
      const auto& a = std::get<Conv2dAttrs>(n.attrs);
      const TensorShape& in = g.tensor(n.inputs[0]).shape;
      // out_elems * (kh*kw*in_channels) MACs.
      c.macs = out.elements() * a.kernel_h * a.kernel_w * in.channels();
      c.dilated = a.dilation > 1;
      break;
    }
    case OpType::kDepthwiseConv2d: {
      const auto& a = std::get<DepthwiseConv2dAttrs>(n.attrs);
      c.macs = out.elements() * a.kernel_h * a.kernel_w;
      c.dilated = a.dilation > 1;
      break;
    }
    case OpType::kFullyConnected: {
      const TensorShape& in = g.tensor(n.inputs[0]).shape;
      const std::int64_t in_features = in.dim(in.rank() - 1);
      c.macs = out.elements() * in_features;
      break;
    }
    case OpType::kLstm: {
      const auto& a = std::get<LstmAttrs>(n.attrs);
      const TensorShape& in = g.tensor(n.inputs[0]).shape;
      const std::int64_t seq = in.dim(0);
      const std::int64_t d = in.dim(1);
      // Per step: 4 gates, each H x (D + H) MACs.
      c.macs = seq * 4 * a.hidden_dim * (d + a.hidden_dim);
      break;
    }
    case OpType::kMultiHeadAttention: {
      const auto& a = std::get<AttentionAttrs>(n.attrs);
      const TensorShape& in = g.tensor(n.inputs[0]).shape;
      const std::int64_t seq = in.dim(0);
      const std::int64_t model = in.dim(1);
      // Q/K/V/O projections + QK^T + attention-weighted V.
      const std::int64_t proj = 4 * seq * model * model;
      const std::int64_t scores =
          2 * a.num_heads * seq * seq * a.head_dim;
      c.macs = proj + scores;
      break;
    }
    case OpType::kAvgPool:
    case OpType::kMaxPool: {
      const auto& a = std::get<PoolAttrs>(n.attrs);
      // Window reductions counted as one op per window element.
      c.macs = out.elements() * a.kernel * a.kernel;
      break;
    }
    case OpType::kGlobalAvgPool:
      c.macs = c.input_elems;
      break;
    case OpType::kResizeBilinear:
      c.macs = 4 * out.elements();  // 4-tap interpolation
      break;
    case OpType::kLayerNorm:
      c.macs = 4 * c.input_elems;  // mean, var, scale, shift
      break;
    case OpType::kSoftmax:
      c.macs = 3 * c.input_elems;  // exp, sum, divide
      break;
    case OpType::kAdd:
    case OpType::kMul:
    case OpType::kActivation:
      c.macs = c.output_elems;
      break;
    case OpType::kInput:
    case OpType::kConcat:
    case OpType::kReshape:
    case OpType::kEmbeddingLookup:
    case OpType::kConstant:
      c.macs = 0;  // pure data movement
      break;
  }
  return c;
}

GraphCost AnalyzeGraph(const Graph& g) {
  GraphCost gc;
  gc.per_node.reserve(g.nodes().size());
  for (const auto& n : g.nodes()) {
    NodeCost c = AnalyzeNode(g, n);
    gc.total_macs += c.macs;
    gc.total_weight_elems += c.weight_elems;
    gc.per_node.push_back(c);
  }
  return gc;
}

}  // namespace mlpm::graph
