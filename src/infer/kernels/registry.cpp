#include "infer/kernels/registry.h"

#if defined(__aarch64__) && __has_include(<sys/auxv.h>)
#include <sys/auxv.h>
#if defined(HWCAP_ASIMD)
#define MLPM_KERNELS_USE_HWCAP 1
#endif
#endif

namespace mlpm::infer::kernels {

std::optional<KernelIsa> ParseKernelIsa(std::string_view name) {
  if (name == "auto") return KernelIsa::kAuto;
  if (name == "scalar") return KernelIsa::kScalar;
  if (name == "avx2") return KernelIsa::kAvx2;
  if (name == "neon") return KernelIsa::kNeon;
  return std::nullopt;
}

CpuFeatures DetectCpuFeatures() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
#if defined(__GNUC__) || defined(__clang__)
  // cpuid-backed: both AVX2 and FMA3 must be present (the avx2 table
  // assumes fused multiply-add).
  f.avx2 = __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#endif
#elif defined(__aarch64__)
#if defined(MLPM_KERNELS_USE_HWCAP)
  f.neon = (getauxval(AT_HWCAP) & HWCAP_ASIMD) != 0;
#else
  // ASIMD is architecturally mandatory on AArch64.
  f.neon = true;
#endif
#endif
  return f;
}

// Fallback definitions for tables not compiled into this binary.  The real
// definitions live in avx2.cpp / neon.cpp behind the same macros, so exactly
// one definition of each exists per build.
#if !defined(MLPM_KERNELS_HAVE_AVX2)
const KernelTable* Avx2KernelsOrNull() { return nullptr; }
#endif
#if !(defined(MLPM_KERNELS_HAVE_NEON) && defined(__aarch64__))
const KernelTable* NeonKernelsOrNull() { return nullptr; }
#endif

const KernelRegistry& KernelRegistry::Global() {
  static const KernelRegistry registry;
  return registry;
}

bool KernelRegistry::Available(KernelIsa isa) const {
  switch (isa) {
    case KernelIsa::kAuto:
    case KernelIsa::kScalar:
      return true;
    case KernelIsa::kAvx2:
      return features_.avx2 && Avx2KernelsOrNull() != nullptr;
    case KernelIsa::kNeon:
      return features_.neon && NeonKernelsOrNull() != nullptr;
  }
  return false;
}

KernelIsa KernelRegistry::Resolve(KernelIsa requested) const {
  if (requested == KernelIsa::kAuto) {
    if (Available(KernelIsa::kAvx2)) return KernelIsa::kAvx2;
    if (Available(KernelIsa::kNeon)) return KernelIsa::kNeon;
    return KernelIsa::kScalar;
  }
  return Available(requested) ? requested : KernelIsa::kScalar;
}

const KernelTable& KernelRegistry::Select(KernelIsa requested) const {
  switch (Resolve(requested)) {
    case KernelIsa::kAvx2:
      return *Avx2KernelsOrNull();
    case KernelIsa::kNeon:
      return *NeonKernelsOrNull();
    default:
      return ScalarKernels();
  }
}

std::vector<KernelIsa> KernelRegistry::AvailableIsas() const {
  std::vector<KernelIsa> isas;
  if (Available(KernelIsa::kAvx2)) isas.push_back(KernelIsa::kAvx2);
  if (Available(KernelIsa::kNeon)) isas.push_back(KernelIsa::kNeon);
  isas.push_back(KernelIsa::kScalar);
  return isas;
}

}  // namespace mlpm::infer::kernels
