// Submission runner: executes the full benchmark flow for one chipset and
// one suite version, exactly as the mobile app does (paper §6.1): for each
// task in the prescribed order, accuracy mode over the whole validation set
// first, then performance mode; cooldown intervals between tests.
//
// Accuracy runs on the functional plane (mini models through the reference
// executor at the submission's numerics); performance runs on the simulated
// plane (full-scale graphs on the chipset model through the LoadGen with a
// virtual clock).  See DESIGN.md §1.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "backends/circuit_breaker.h"
#include "backends/fault_tolerant_backend.h"
#include "backends/simulated_backend.h"
#include "backends/vendor_policy.h"
#include "core/loadgen.h"
#include "harness/task_bundle.h"
#include "models/zoo.h"
#include "soc/chipset.h"
#include "soc/faults.h"

namespace mlpm::harness {

// Cache of task bundles so repeated submissions (multiple chipsets, audit
// re-runs) reuse the expensive teacher-labelled data sets.
class SuiteBundles {
 public:
  [[nodiscard]] const TaskBundle& Get(const models::BenchmarkEntry& e,
                                      models::SuiteVersion version);

 private:
  std::map<std::string, std::unique_ptr<TaskBundle>> cache_;
};

// Pre-run static verification (DESIGN.md §9).
//   kOff     — skip the analysis passes entirely;
//   kReport  — run them, record diagnostics in the task result (default);
//   kStrict  — additionally refuse to run a task whose model or
//              configuration has error-severity diagnostics (the task is
//              marked invalid without executing anything).
enum class LintMode : std::uint8_t { kOff, kReport, kStrict };

struct RunOptions {
  bool run_accuracy = true;
  bool run_performance = true;
  bool run_offline = true;
  // Cooldown between tests, seconds (run rules: 0-5 minutes).
  double cooldown_s = 60.0;
  // Include pre/post-processing in the measured latency (App. E extension).
  bool end_to_end = false;
  loadgen::TestSettings performance_settings;  // scenario set internally
  // Use the mutually-agreed QAT weights for INT8 accuracy (paper §5.1).
  bool use_qat_weights = false;

  // Fault tolerance.  A fault plan injects seeded runtime pathologies into
  // the performance simulators (App. D); when set, performance tests run
  // through the FaultTolerantBackend with the recovery policy below.  The
  // run rules allow re-running a test: an errored performance test is
  // retried up to `max_test_retries` times before the task is marked
  // invalid.  No plan (the default) leaves behavior byte-identical.
  std::optional<soc::FaultPlan> fault_plan;
  backends::FaultToleranceOptions fault_tolerance;
  int max_test_retries = 1;

  // Overload admission control (DESIGN.md §12).  When set, fault-tolerant
  // performance runs go through a CircuitBreakerBackend that fast-fails
  // queries while the backend keeps failing to complete them.  Requires a
  // fault_plan (a fault-free backend never trips the breaker).
  std::optional<backends::CircuitBreakerOptions> circuit_breaker;

  // Worker threads for the accuracy phase (sample-level fan-out through the
  // reference executor).  0 = hardware concurrency, 1 = serial.  Accuracy
  // results are bit-identical for any value; the performance phase's
  // virtual-clock simulation is unaffected.
  int threads = 1;

  // Kernel ISA for the accuracy-plane executors (kernels/registry.h).
  // kAuto dispatches to the best table the host supports; kScalar forces
  // the bit-exact portable kernels; a forced ISA unavailable on this host
  // falls back to scalar (lint reports it as RUN007 before the run).  The
  // FP32 reference is scored with the same ISA, so ratio_to_fp32 compares
  // numerics, not kernels.
  infer::kernels::KernelIsa kernel_isa = infer::kernels::KernelIsa::kAuto;

  // Opt-in verified graph-transform stage (DESIGN.md §14).  The accuracy
  // executors run the rewrite pipeline's output instead of the raw reference
  // graph; every rewrite is invariant-checked before commit and the prepared
  // model is probe-checked for equivalence against the untransformed one
  // (TaskBundle::Prepare), falling back transparently on any disagreement.
  // The FP32 reference score stays untransformed, so ratio_to_fp32 keeps
  // its meaning.  Off by default: scores are byte-identical to prior runs.
  bool transform = false;

  // Opt-in tiled, fused pipeline execution (DESIGN.md §15).  When
  // `tiling.enabled`, the accuracy-plane executors run fusable conv/dw
  // chains crop-by-crop through per-worker tile slabs instead of
  // materializing full intermediates; results are bit-identical to the
  // whole-op path for every numerics mode and thread count, so accuracy
  // scores are unchanged.  `tiling.rows` forces the tile height (-1 = auto
  // against tiling.cache_bytes); rows == 0 is invalid and lint-gated
  // (RUN008).  The memory-plan figures reported for the full-scale graph
  // become tile-aware.  Off by default: byte-identical to prior runs.
  infer::TileOptions tiling;

  // Static verification gate run before each task (model IR, quantization
  // recipe, SoC mapping, run configuration).  Never touches the timed path:
  // all passes complete before the LoadGen starts.
  LintMode lint = LintMode::kReport;

  // Observability (DESIGN.md §11).  Either field enables the process-wide
  // obs::TraceRecorder for the submission: every executor node, simulated
  // IP step and LoadGen query lands on the shared timeline, and the report
  // gains per-op aggregate + metrics tables.  `trace_path` additionally
  // tells the caller (headless_cli) where to write the Chrome trace JSON.
  // Off by default: a disabled recorder costs one atomic load per
  // instrumentation point and records nothing.
  bool profile = false;
  std::string trace_path;

  // Crash-safe journaling (DESIGN.md §12).  When `journal_path` is set,
  // RunSubmission appends one fsync'd, checksummed record per finished
  // task.  With `resume` additionally set, intact records from a previous
  // run of the *same* configuration (chipset, version, seed, config hash)
  // are replayed instead of re-run; torn or errored records re-run.  The
  // resumed submission is field-identical to an uninterrupted one.
  std::string journal_path;
  bool resume = false;

  // Cooperative cancellation: checked between tasks.  When it returns
  // true the submission stops early with SubmissionResult::interrupted
  // set (already-journaled tasks survive for a later --resume).
  std::function<bool()> cancel;
};

// How a task run ended, from the harness's point of view.
//   kValid          — clean run, no faults observed;
//   kValidDegraded  — usable result produced *through* faults (retries,
//                     CPU fallback, expired samples);
//   kInvalid        — the performance test stayed structurally invalid
//                     after all allowed retries;
//   kErrored        — the task threw; other tasks keep running.
enum class TaskStatus : std::uint8_t {
  kValid,
  kValidDegraded,
  kInvalid,
  kErrored,
};

[[nodiscard]] constexpr std::string_view ToString(TaskStatus s) {
  switch (s) {
    case TaskStatus::kValid: return "valid";
    case TaskStatus::kValidDegraded: return "valid-degraded";
    case TaskStatus::kInvalid: return "invalid";
    case TaskStatus::kErrored: return "errored";
  }
  return "?";
}

struct TaskRunResult {
  models::BenchmarkEntry entry;
  DataType numerics = DataType::kInt8;
  std::string framework_name;
  std::string accelerator_label;
  // The resolved kernel ISA the accuracy executors dispatched to ("scalar",
  // "avx2", "neon") — the concrete table, never "auto".
  std::string kernel_isa;

  // Accuracy phase.
  double accuracy = 0.0;
  double fp32_reference = 0.0;
  double ratio_to_fp32 = 0.0;
  bool quality_passed = false;
  std::vector<std::size_t> calibration_indices;
  // Accuracy-mode coverage: samples scored vs the data set size (the rules
  // require the *entire* validation set in accuracy mode, §4.1).
  std::size_t accuracy_sample_count = 0;
  std::size_t dataset_size = 0;

  // Performance phase.
  std::optional<loadgen::TestResult> single_stream;
  std::optional<loadgen::TestResult> offline;
  double energy_per_inference_j = 0.0;
  double peak_temperature_c = 0.0;

  // Static activation memory plan over the full-scale graph (DESIGN.md §10):
  // the packed arena footprint vs the naive sum of all activation tensors.
  // Planner-only figures (no execution); 0 when the plan was not computed.
  // With tiling applied the arena figure is tile-aware (segment interiors
  // move out of the arena into tile_slab_bytes).
  std::size_t peak_arena_bytes = 0;
  std::size_t naive_activation_bytes = 0;

  // Tiled, fused pipeline execution (DESIGN.md §15).  `tiling_applied`
  // means the accuracy executors actually ran tiled segments (requested
  // and at least one fusable chain existed); figures are from the
  // full-scale graph's tile plan.  All zero/false when tiling is off.
  bool tiling_requested = false;
  bool tiling_applied = false;
  std::size_t tile_segments = 0;   // fused chains in the full-scale plan
  std::int64_t tile_rows = 0;      // requested rows (-1 = auto)
  std::size_t tile_slab_bytes = 0; // one worker's peak slab block

  // Fault / degradation accounting.
  TaskStatus status = TaskStatus::kValid;
  std::string status_detail;          // invalid_reason / exception text
  std::size_t fault_count = 0;        // injected faults observed
  std::size_t degradation_count = 0;  // recovery actions taken
  // Admission-control accounting across the task's performance tests.
  std::size_t shed_count = 0;      // refused by LoadGen admission control
  std::size_t rejected_count = 0;  // fast-failed by the circuit breaker
  std::size_t breaker_trips = 0;   // closed/half-open -> open transitions
  bool degraded_to_cpu = false;
  int performance_attempts = 0;       // test runs incl. retries (0 if skipped)
  // Concatenated injector + recovery event logs; byte-identical across
  // same-seed runs (the reproducibility artifact for fault studies).
  std::string fault_log;

  // Static-verification gate (DESIGN.md §9).  Populated unless
  // RunOptions::lint == LintMode::kOff; under kStrict, a task with
  // lint_error_count > 0 is marked invalid and never executed.
  std::size_t lint_error_count = 0;
  std::size_t lint_warning_count = 0;
  // ToText() rendering of the diagnostics, empty when the task lints clean.
  std::string lint_log;

  // Verified graph-transform stage (DESIGN.md §14).  `transform_applied`
  // means the accuracy executor actually ran the rewritten graph;
  // requested-but-fallen-back runs keep it false and explain why in
  // `transform_detail`.  All zero/empty when RunOptions::transform is off.
  bool transform_requested = false;
  bool transform_applied = false;
  std::string transform_passes;  // resolved pass list, comma-joined
  std::size_t transform_rewrites = 0;
  std::size_t transform_nodes_before = 0;  // canonical-form node count
  std::size_t transform_nodes_after = 0;   // executed node count
  std::string transform_detail;            // fallback reason, if any
};

struct SubmissionResult {
  std::string chipset_name;
  models::SuiteVersion version = models::SuiteVersion::kV1_0;
  std::vector<TaskRunResult> tasks;
  // True when RunOptions::cancel stopped the run before the suite finished;
  // `tasks` then holds only the completed prefix.
  bool interrupted = false;
  // Tasks replayed from the journal instead of executed (--resume).
  std::size_t resumed_tasks = 0;
};

// Runs the full suite for one chipset.  `bundles` may be shared across
// calls; it is populated on demand.
[[nodiscard]] SubmissionResult RunSubmission(const soc::ChipsetDesc& chipset,
                                             models::SuiteVersion version,
                                             SuiteBundles& bundles,
                                             const RunOptions& options = {});

// Performance-only single-task run (used by the delegate-comparison and
// ablation benches).  Returns the LoadGen result for the compiled plan.
[[nodiscard]] loadgen::TestResult RunSingleStreamPerformance(
    const soc::ChipsetDesc& chipset, const backends::SubmissionConfig& config,
    const graph::Graph& full_graph, const datasets::TaskDataset& dataset,
    const loadgen::TestSettings& settings = {});

}  // namespace mlpm::harness
