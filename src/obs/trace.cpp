#include "obs/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace mlpm::obs {
namespace {

// Compact numeric formatting for JSON: integers stay integral, fractional
// values keep nanosecond resolution (3 decimals of a microsecond) without
// the trailing-zero noise of a fixed precision.
std::string FormatNumber(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

constexpr char PhaseChar(EventPhase p) {
  switch (p) {
    case EventPhase::kComplete: return 'X';
    case EventPhase::kInstant: return 'i';
    case EventPhase::kCounter: return 'C';
    case EventPhase::kAsyncBegin: return 'b';
    case EventPhase::kAsyncEnd: return 'e';
  }
  return '?';
}

void AppendArgs(std::ostringstream& os, const std::vector<TraceArg>& args) {
  os << ",\"args\":{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << JsonEscape(args[i].key) << "\":";
    if (args[i].numeric)
      os << args[i].value;
    else
      os << '"' << JsonEscape(args[i].value) << '"';
  }
  os << '}';
}

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

TraceArg Arg(std::string key, double value) {
  return TraceArg{std::move(key), FormatNumber(value), true};
}

TraceArg Arg(std::string key, std::uint64_t value) {
  return TraceArg{std::move(key), std::to_string(value), true};
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::Enable() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (auto& [id, buffer] : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_release);
}

void TraceRecorder::Disable() {
  enabled_.store(false, std::memory_order_release);
}

double TraceRecorder::NowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceRecorder::ThreadBuffer& TraceRecorder::BufferForThisThread() {
  const std::thread::id self = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = buffers_.find(self);
  if (it == buffers_.end()) {
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->auto_lane = "cpu-" + std::to_string(buffers_.size());
    it = buffers_.emplace(self, std::move(buffer)).first;
  }
  return *it->second;
}

int TraceRecorder::LaneTid(Domain domain, std::string_view lane) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  const auto key = std::make_pair(static_cast<int>(domain),
                                  std::string(lane));
  const auto it = lanes_.find(key);
  if (it != lanes_.end()) return it->second;
  const int tid = next_tid_++;
  lanes_.emplace(key, tid);
  return tid;
}

void TraceRecorder::Append(TraceEvent event, std::string_view lane) {
  ThreadBuffer& buffer = BufferForThisThread();
  event.tid = LaneTid(event.domain, lane.empty() ? buffer.auto_lane : lane);
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(std::move(event));
}

void TraceRecorder::AddComplete(Domain domain, std::string_view lane,
                                std::string name, double ts_us, double dur_us,
                                std::vector<TraceArg> args,
                                std::string category) {
  if (!enabled()) return;
  Expects(dur_us >= 0.0, "negative span duration");
  TraceEvent e;
  e.phase = EventPhase::kComplete;
  e.domain = domain;
  e.name = std::move(name);
  e.category = std::move(category);
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.args = std::move(args);
  Append(std::move(e), lane);
}

void TraceRecorder::AddInstant(Domain domain, std::string_view lane,
                               std::string name, double ts_us,
                               std::vector<TraceArg> args,
                               std::string category) {
  if (!enabled()) return;
  TraceEvent e;
  e.phase = EventPhase::kInstant;
  e.domain = domain;
  e.name = std::move(name);
  e.category = std::move(category);
  e.ts_us = ts_us;
  e.args = std::move(args);
  Append(std::move(e), lane);
}

void TraceRecorder::AddCounter(Domain domain, std::string_view lane,
                               std::string name, double ts_us, double value) {
  if (!enabled()) return;
  TraceEvent e;
  e.phase = EventPhase::kCounter;
  e.domain = domain;
  e.name = std::move(name);
  e.ts_us = ts_us;
  e.value = value;
  Append(std::move(e), lane);
}

void TraceRecorder::AddAsyncBegin(Domain domain, std::string_view lane,
                                  std::string name, std::string category,
                                  std::uint64_t id, double ts_us,
                                  std::vector<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent e;
  e.phase = EventPhase::kAsyncBegin;
  e.domain = domain;
  e.name = std::move(name);
  e.category = std::move(category);
  e.async_id = id;
  e.ts_us = ts_us;
  e.args = std::move(args);
  Append(std::move(e), lane);
}

void TraceRecorder::AddAsyncEnd(Domain domain, std::string_view lane,
                                std::string name, std::string category,
                                std::uint64_t id, double ts_us,
                                std::vector<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent e;
  e.phase = EventPhase::kAsyncEnd;
  e.domain = domain;
  e.name = std::move(name);
  e.category = std::move(category);
  e.async_id = id;
  e.ts_us = ts_us;
  e.args = std::move(args);
  Append(std::move(e), lane);
}

TraceRecorder::Span::Span(TraceRecorder& recorder, std::string_view name,
                          std::vector<TraceArg> args,
                          std::string_view category) {
  if (!recorder.enabled()) return;
  recorder_ = &recorder;
  name_ = std::string(name);
  category_ = std::string(category);
  args_ = std::move(args);
  t0_us_ = recorder.NowUs();
}

TraceRecorder::Span::~Span() {
  if (recorder_ == nullptr) return;
  // A span opened while recording stays valid even if the recorder was
  // disabled mid-flight: AddComplete drops it silently in that case.
  recorder_->AddComplete(Domain::kHost, {}, std::move(name_), t0_us_,
                         recorder_->NowUs() - t0_us_, std::move(args_),
                         std::move(category_));
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  std::size_t n = 0;
  for (const auto& [id, buffer] : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    n += buffer->events.size();
  }
  return n;
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<TraceEvent> merged;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (const auto& [id, buffer] : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      merged.insert(merged.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.domain != b.domain) return a.domain < b.domain;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.dur_us > b.dur_us;  // parents before children
                   });
  return merged;
}

std::string TraceRecorder::LaneName(Domain domain, int tid) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& [key, lane_tid] : lanes_)
    if (key.first == static_cast<int>(domain) && lane_tid == tid)
      return key.second;
  return "?";
}

std::string TraceRecorder::ToChromeJson() const {
  return ChromeTraceJson(Snapshot(), [this](Domain d, int tid) {
    return LaneName(d, tid);
  });
}

std::string ChromeTraceJson(
    std::span<const TraceEvent> events,
    const std::function<std::string(Domain, int)>& lane_name) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto meta = [&](Domain domain, int tid, std::string_view what,
                        std::string_view value) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"M\",\"pid\":" << static_cast<int>(domain);
    if (tid >= 0) os << ",\"tid\":" << tid;
    os << ",\"name\":\"" << what << "\",\"args\":{\"name\":\""
       << JsonEscape(value) << "\"}}";
  };

  // process_name per domain seen, thread_name per (domain, tid) seen.
  std::vector<std::pair<int, int>> seen;
  for (const TraceEvent& e : events) {
    const auto key = std::make_pair(static_cast<int>(e.domain), e.tid);
    if (std::find(seen.begin(), seen.end(),
                  std::make_pair(key.first, -1)) == seen.end()) {
      seen.emplace_back(key.first, -1);
      meta(e.domain, -1, "process_name", ToString(e.domain));
    }
    if (std::find(seen.begin(), seen.end(), key) == seen.end()) {
      seen.push_back(key);
      meta(e.domain, e.tid, "thread_name", lane_name(e.domain, e.tid));
    }
  }

  for (const TraceEvent& e : events) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"" << PhaseChar(e.phase)
       << "\",\"pid\":" << static_cast<int>(e.domain)
       << ",\"tid\":" << e.tid << ",\"name\":\"" << JsonEscape(e.name)
       << "\",\"ts\":" << FormatNumber(e.ts_us);
    if (!e.category.empty())
      os << ",\"cat\":\"" << JsonEscape(e.category) << '"';
    switch (e.phase) {
      case EventPhase::kComplete:
        os << ",\"dur\":" << FormatNumber(e.dur_us);
        if (!e.args.empty()) AppendArgs(os, e.args);
        break;
      case EventPhase::kInstant:
        os << ",\"s\":\"t\"";
        if (!e.args.empty()) AppendArgs(os, e.args);
        break;
      case EventPhase::kCounter:
        os << ",\"args\":{\"value\":" << FormatNumber(e.value) << '}';
        break;
      case EventPhase::kAsyncBegin:
      case EventPhase::kAsyncEnd: {
        char idbuf[24];
        std::snprintf(idbuf, sizeof idbuf, "0x%llx",
                      static_cast<unsigned long long>(e.async_id));
        os << ",\"id\":\"" << idbuf << '"';
        if (!e.args.empty()) AppendArgs(os, e.args);
        break;
      }
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace mlpm::obs
