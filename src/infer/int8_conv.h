// True-integer INT8 convolution: im2col + uint8 GEMM with INT32
// accumulation and float requantization — the production-style kernel path
// mobile inference stacks actually execute (the accuracy plane's fake-quant
// float kernels model its *numerics*; this is the *arithmetic*).
//
// Padding inserts the input zero-point (the quantized representation of
// 0.0), exactly as TFLite does, so SAME-padded borders stay exact.
#pragma once

#include <cstdint>

#include "graph/ops.h"
#include "infer/tensor.h"

namespace mlpm::infer {

struct QuantizationParams {
  float scale = 1.0f;
  std::int32_t zero_point = 0;
};

// Derives asymmetric uint8 quantization parameters covering [min, max]
// (range widened to include zero; zero-point exact).
[[nodiscard]] QuantizationParams ChooseQuantParams(float min, float max);

// Integer conv on float tensors: input [1,H,W,C] and weights [O,KH,KW,C]
// are quantized with the given parameters (weights symmetric around
// `weight_zero_point` 128), the GEMM runs in uint8/int32, and the result is
// dequantized back to float with the bias added.  Only SAME/VALID padding,
// square kernels, dilation 1.
[[nodiscard]] Tensor ConvInt8NHWC(const Tensor& input, const Tensor& weights,
                                  const Tensor& bias, int stride,
                                  graph::Padding padding,
                                  const QuantizationParams& input_params,
                                  const QuantizationParams& weight_params);

}  // namespace mlpm::infer
