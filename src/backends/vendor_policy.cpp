#include "backends/vendor_policy.h"

#include "common/check.h"

namespace mlpm::backends {
namespace {

using models::TaskType;
using soc::ExecutionPolicy;

ExecutionPolicy OnEngine(std::string engine) {
  ExecutionPolicy p;
  p.engines.push_back(std::move(engine));
  return p;
}

// Toolchain maturity per (vendor, task, round): the fraction of the
// hardware roofline the vendor's compiler sustains for that network family.
// Calibrated so the simulated results land on the paper's anchors (Table 3,
// Figure 6 speedups incl. the Exynos 12.7x segmentation jump, Figure 7
// orderings); see EXPERIMENTS.md for paper-vs-simulated values.
struct VendorTau {
  double ic, od, is, nlp;
};

VendorTau TauFor(std::string_view vendor, models::SuiteVersion version) {
  const bool v07 = version == models::SuiteVersion::kV0_7;
  if (vendor == "mediatek")
    return v07 ? VendorTau{0.795, 0.785, 0.321, 1.0}
               : VendorTau{0.826, 0.425, 0.298, 1.0};
  if (vendor == "samsung")
    // v0.7 segmentation: ENN's DeepLab support was effectively broken —
    // together with per-layer NPU<->GPU transfers this produces the 12.7x
    // deficit the Exynos 2100 erased (App. C).
    return v07 ? VendorTau{0.894, 1.0, 0.10, 1.0}
               : VendorTau{1.0, 0.278, 0.418, 1.0};
  if (vendor == "qualcomm")
    return v07 ? VendorTau{0.964, 0.55, 0.268, 1.0}
               : VendorTau{1.0, 0.409, 0.316, 1.0};
  // intel: the v0.7 NLP path lacked the OpenVINO quantized kernel (§7.1).
  return v07 ? VendorTau{1.0, 1.0, 0.984, 0.428}
             : VendorTau{1.0, 0.813, 1.0, 1.0};
}

double TaskTau(const VendorTau& t, TaskType task) {
  switch (task) {
    case TaskType::kImageClassification: return t.ic;
    case TaskType::kObjectDetection: return t.od;
    case TaskType::kImageSegmentation: return t.is;
    case TaskType::kQuestionAnswering: return t.nlp;
  }
  return 1.0;
}

SubmissionConfig MediaTekSubmission(TaskType task,
                                    models::SuiteVersion version) {
  SubmissionConfig s;
  s.task = task;
  if (task == TaskType::kQuestionAnswering) {
    // FP16 on the Mali GPU through the TFLite delegate (Table 2).
    s.numerics = DataType::kFloat16;
    s.framework = TfliteGpuDelegateTraits();
    s.accelerator_label = "Mali-GPU";
    s.single_stream = OnEngine("gpu");
    return s;
  }
  // Vision tasks: UINT8 on the APU.  v0.7 went through NNAPI with the
  // neuron-ann driver; v1.0 switched to the Neuron delegate (vendor path)
  // where possible (§7.1, Table 3).
  s.numerics = DataType::kUInt8;
  s.framework = version == models::SuiteVersion::kV0_7
                    ? NnapiTraits("neuron-ann")
                    : VendorSdkTraits("Neuron Delegate");
  s.accelerator_label = "APU";
  s.single_stream = OnEngine("apu");
  s.single_stream.force_partition_every = s.framework.force_partition_every;
  return s;
}

SubmissionConfig SamsungSubmission(TaskType task,
                                   models::SuiteVersion version) {
  SubmissionConfig s;
  s.task = task;
  s.framework = VendorSdkTraits("ENN");
  switch (task) {
    case TaskType::kImageClassification: {
      s.numerics = DataType::kInt8;
      s.accelerator_label = "NPU+CPU";
      // The tail of the graph (pooling/FC) runs on the CPU; boundary
      // tensors there are tiny so the split is nearly free.
      s.single_stream.engines = {"npu", "cpu"};
      s.single_stream.tail_nodes_on_secondary = 3;
      // Offline IC: genuine ALP — NPU and CPU each chew on samples.
      s.offline_replicas = {OnEngine("npu"), OnEngine("cpu")};
      break;
    }
    case TaskType::kObjectDetection: {
      s.numerics = DataType::kInt8;
      s.accelerator_label = "NPU+CPU";
      // ENN places the SSD prediction heads on the CPU; the v1.0 compiler
      // moved most of them back onto the NPU.
      s.single_stream.engines = {"npu", "cpu"};
      s.single_stream.tail_nodes_on_secondary =
          version == models::SuiteVersion::kV0_7 ? 20 : 8;
      break;
    }
    case TaskType::kImageSegmentation: {
      s.numerics = DataType::kInt8;
      s.accelerator_label = "NPU+GPU";
      // The scheduler bounces DeepLab between NPU and GPU.  On the Exynos
      // 990's slow inter-IP path this is the 12.7x pathology the 2100
      // fixed with faster transfers and coarser scheduling (App. C).
      s.single_stream.engines = {"npu", "gpu"};
      s.single_stream.alternate_every =
          version == models::SuiteVersion::kV0_7 ? 1 : 12;
      break;
    }
    case TaskType::kQuestionAnswering: {
      s.numerics = DataType::kFloat16;
      s.accelerator_label = "GPU";
      s.single_stream = OnEngine("gpu");
      break;
    }
  }
  return s;
}

SubmissionConfig QualcommSubmission(TaskType task, models::SuiteVersion) {
  SubmissionConfig s;
  s.task = task;
  if (task == TaskType::kQuestionAnswering) {
    s.numerics = DataType::kFloat16;
    s.framework = TfliteGpuDelegateTraits();
    s.accelerator_label = "GPU";
    s.single_stream = OnEngine("gpu");
    return s;
  }
  s.numerics = DataType::kUInt8;
  s.framework = VendorSdkTraits("SNPE");
  s.accelerator_label = "HTA";
  s.single_stream = OnEngine("hta");
  if (task == TaskType::kImageClassification) {
    // Offline: the AIP cluster — HTA and HVX concurrently (Table 2).
    s.accelerator_label = "HTA / AIP (HTA+HVX) offline";
    s.offline_replicas = {OnEngine("hta"), OnEngine("hvx")};
  }
  return s;
}

SubmissionConfig IntelSubmission(TaskType task, models::SuiteVersion) {
  SubmissionConfig s;
  s.task = task;
  s.numerics = DataType::kInt8;  // all laptop submissions are INT8 (§7.4)
  s.framework = OpenVinoTraits();
  switch (task) {
    case TaskType::kImageClassification:
      // Small models cannot fill the iGPU from one sample: CPU for
      // single-stream, CPU+GPU for offline (§7.4).
      s.accelerator_label = "CPU / CPU+GPU offline";
      s.single_stream = OnEngine("cpu");
      s.offline_replicas = {OnEngine("cpu"), OnEngine("igpu")};
      break;
    case TaskType::kObjectDetection:
      s.accelerator_label = "CPU";
      s.single_stream = OnEngine("cpu");
      break;
    case TaskType::kImageSegmentation:
    case TaskType::kQuestionAnswering:
      // Heavier models want the iGPU's TOPs (§7.1).
      s.accelerator_label = "GPU";
      s.single_stream = OnEngine("igpu");
      break;
  }
  return s;
}

SubmissionConfig AppleSubmission(TaskType task, models::SuiteVersion) {
  // iOS extension (App. E): Core ML schedules vision onto the ANE and
  // keeps NLP in FP16 where the ANE is natively fast.
  SubmissionConfig s;
  s.task = task;
  s.framework = VendorSdkTraits("Core ML");
  if (task == TaskType::kQuestionAnswering) {
    s.numerics = DataType::kFloat16;
    s.accelerator_label = "ANE";
    s.single_stream = OnEngine("ane");
    return s;
  }
  s.numerics = DataType::kInt8;
  s.accelerator_label = "ANE";
  s.single_stream = OnEngine("ane");
  s.single_stream.toolchain_efficiency = 0.7;  // young MLPerf port
  if (task == TaskType::kImageClassification)
    s.offline_replicas = {OnEngine("ane"), OnEngine("gpu")};
  return s;
}

}  // namespace

SubmissionConfig GetSubmission(const soc::ChipsetDesc& chipset,
                               models::TaskType task,
                               models::SuiteVersion version) {
  SubmissionConfig s;
  std::string_view vendor;
  if (chipset.name.starts_with("Dimensity")) {
    s = MediaTekSubmission(task, version);
    vendor = "mediatek";
  } else if (chipset.name.starts_with("Exynos")) {
    s = SamsungSubmission(task, version);
    vendor = "samsung";
  } else if (chipset.name.starts_with("Snapdragon")) {
    s = QualcommSubmission(task, version);
    vendor = "qualcomm";
  } else if (chipset.name.starts_with("Core i7")) {
    s = IntelSubmission(task, version);
    vendor = "intel";
  } else if (chipset.name.starts_with("Apple")) {
    // Extension chipset: the toolchain factor is set inside the policy.
    s = AppleSubmission(task, version);
    s.chipset_name = chipset.name;
    for (auto& replica : s.offline_replicas)
      replica.toolchain_efficiency = 1.0;
    return s;
  } else {
    Expects(false, "no vendor policy for chipset " + chipset.name);
  }
  s.chipset_name = chipset.name;
  const double tau = TaskTau(TauFor(vendor, version), task);
  s.single_stream.toolchain_efficiency = tau;
  // Offline compilation saturates the roofline: large fixed batches let the
  // toolchain hide the inefficiencies that cost it in single-stream mode.
  for (auto& replica : s.offline_replicas)
    replica.toolchain_efficiency = 1.0;
  return s;
}

soc::CompiledModel CompileSubmission(const soc::ChipsetDesc& chipset,
                                     const SubmissionConfig& config,
                                     const graph::Graph& model) {
  return soc::Compile(model, config.numerics, chipset, config.single_stream,
                      config.framework.ToOverheads());
}

std::vector<soc::CompiledModel> CompileOfflineReplicas(
    const soc::ChipsetDesc& chipset, const SubmissionConfig& config,
    const graph::Graph& model) {
  std::vector<soc::CompiledModel> replicas;
  if (config.offline_replicas.empty()) return replicas;
  // Without multi-accelerator support (NNAPI), only the primary replica runs.
  const std::size_t count = config.framework.multi_accelerator_offline
                                ? config.offline_replicas.size()
                                : 1;
  for (std::size_t i = 0; i < count; ++i)
    replicas.push_back(soc::Compile(model, config.numerics, chipset,
                                    config.offline_replicas[i],
                                    config.framework.ToOverheads(),
                                    /*batched=*/true));
  return replicas;
}

}  // namespace mlpm::backends
