
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_governor.cpp" "bench/CMakeFiles/bench_ablation_governor.dir/bench_ablation_governor.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_governor.dir/bench_ablation_governor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/mlpm_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/CMakeFiles/mlpm_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/mlpm_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mlpm_loadgen.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/mlpm_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/mlpm_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mlpm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/mlpm_models.dir/DependInfo.cmake"
  "/root/repo/build/src/infer/CMakeFiles/mlpm_infer.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mlpm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
