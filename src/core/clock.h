// Time source abstraction for the LoadGen.
//
// The LoadGen's control flow is identical whether the SUT is a functional
// backend measured in wall-clock time or the SoC simulator measured in
// virtual time; only the Clock differs (DESIGN.md §1).
#pragma once

#include <chrono>
#include <thread>

#include "common/check.h"

namespace mlpm::loadgen {

// All LoadGen timing is in seconds as a double-precision duration.
using Seconds = std::chrono::duration<double>;

class Clock {
 public:
  virtual ~Clock() = default;
  // Monotonic time since an arbitrary epoch.
  [[nodiscard]] virtual Seconds Now() const = 0;
  // Blocks (or advances virtual time) until at least `t`.  Used by the
  // server scenario to pace Poisson arrivals; a no-op if `t` has passed.
  virtual void WaitUntil(Seconds t) = 0;
};

// Wall-clock time (steady), for functional backends.
class RealClock final : public Clock {
 public:
  RealClock() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] Seconds Now() const override {
    return std::chrono::duration_cast<Seconds>(
        std::chrono::steady_clock::now() - start_);
  }
  void WaitUntil(Seconds t) override {
    while (Now() < t) {
      // Sleep in small slices so short waits stay accurate.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Manually-advanced time, for the SoC simulator.  The simulator SUT advances
// the clock by each inference's simulated latency before completing the
// query; the LoadGen observes latencies exactly as it would wall-clock ones.
class VirtualClock final : public Clock {
 public:
  [[nodiscard]] Seconds Now() const override { return now_; }
  void WaitUntil(Seconds t) override {
    if (t > now_) now_ = t;
  }

  void Advance(Seconds delta) {
    Expects(delta.count() >= 0.0, "cannot advance time backwards");
    now_ += delta;
  }
  void AdvanceTo(Seconds t) {
    Expects(t >= now_, "cannot advance time backwards");
    now_ = t;
  }

 private:
  Seconds now_{0.0};
};

}  // namespace mlpm::loadgen
