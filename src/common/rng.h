// Deterministic, splittable random number generation.
//
// The LoadGen rules (paper §4.1) require a fixed seed so sample selection is
// reproducible and auditable; every stochastic component in this repo
// (synthetic weights, dataset generation, sample scheduling) derives its
// stream from an explicit seed, never from global state.
#pragma once

#include <cstdint>
#include <vector>

namespace mlpm {

// xoshiro256** by Blackman & Vigna; small, fast, and good enough for
// benchmark workload generation.  Seeded via splitmix64 so that nearby seeds
// give independent streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform on [0, 2^64).
  std::uint64_t NextU64();

  // Uniform on [0, bound).  bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform on [0, 1).
  double NextDouble();

  // Uniform on [lo, hi).
  double NextUniform(double lo, double hi);

  // Standard normal via Box-Muller (cached second value).
  double NextGaussian();

  // A child generator whose stream is independent of this one; `tag`
  // distinguishes children of the same parent.
  [[nodiscard]] Rng Split(std::uint64_t tag) const;

  // k distinct indices drawn uniformly from [0, n) (Floyd's algorithm).
  [[nodiscard]] std::vector<std::size_t> SampleWithoutReplacement(
      std::size_t n, std::size_t k);

 private:
  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace mlpm
