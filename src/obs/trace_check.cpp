#include "obs/trace_check.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <memory>
#include <optional>
#include <utility>
#include <variant>

namespace mlpm::obs {
namespace {

// Minimal recursive-descent JSON reader.  Only what a trace file needs:
// objects, arrays, strings with the common escapes, numbers, literals.
struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v = nullptr;

  [[nodiscard]] const JsonObject* object() const {
    const auto* p = std::get_if<std::shared_ptr<JsonObject>>(&v);
    return p ? p->get() : nullptr;
  }
  [[nodiscard]] const JsonArray* array() const {
    const auto* p = std::get_if<std::shared_ptr<JsonArray>>(&v);
    return p ? p->get() : nullptr;
  }
  [[nodiscard]] const std::string* string() const {
    return std::get_if<std::string>(&v);
  }
  [[nodiscard]] const double* number() const {
    return std::get_if<double>(&v);
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> Parse(std::string& error) {
    std::optional<JsonValue> v = Value();
    if (!v) {
      error = error_;
      return std::nullopt;
    }
    Skip();
    if (pos_ != text_.size()) {
      error = "trailing characters after the top-level value at byte " +
              std::to_string(pos_);
      return std::nullopt;
    }
    return v;
  }

 private:
  void Skip() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool Fail(std::string what) {
    if (error_.empty())
      error_ = std::move(what) + " at byte " + std::to_string(pos_);
    return false;
  }

  std::optional<JsonValue> Value() {
    Skip();
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') {
      std::string s;
      if (!String(s)) return std::nullopt;
      return JsonValue{s};
    }
    if (c == 't' || c == 'f' || c == 'n') return Literal();
    return Number();
  }

  std::optional<JsonValue> Object() {
    ++pos_;  // '{'
    auto obj = std::make_shared<JsonObject>();
    Skip();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return JsonValue{obj};
    }
    while (true) {
      Skip();
      std::string key;
      if (!String(key)) return std::nullopt;
      Skip();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        Fail("expected ':' in object");
        return std::nullopt;
      }
      ++pos_;
      std::optional<JsonValue> v = Value();
      if (!v) return std::nullopt;
      obj->emplace(std::move(key), std::move(*v));
      Skip();
      if (pos_ >= text_.size()) {
        Fail("unterminated object");
        return std::nullopt;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return JsonValue{obj};
      }
      Fail("expected ',' or '}' in object");
      return std::nullopt;
    }
  }

  std::optional<JsonValue> Array() {
    ++pos_;  // '['
    auto arr = std::make_shared<JsonArray>();
    Skip();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return JsonValue{arr};
    }
    while (true) {
      std::optional<JsonValue> v = Value();
      if (!v) return std::nullopt;
      arr->push_back(std::move(*v));
      Skip();
      if (pos_ >= text_.size()) {
        Fail("unterminated array");
        return std::nullopt;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return JsonValue{arr};
      }
      Fail("expected ',' or ']' in array");
      return std::nullopt;
    }
  }

  bool String(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"')
      return Fail("expected string");
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
          // Control characters only in our emitter; keep the low byte.
          const std::string hex = text_.substr(pos_, 4);
          out += static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
          pos_ += 4;
          break;
        }
        default: return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  std::optional<JsonValue> Literal() {
    const auto take = [&](std::string_view word) {
      if (text_.compare(pos_, word.size(), word) != 0) return false;
      pos_ += word.size();
      return true;
    };
    if (take("true")) return JsonValue{true};
    if (take("false")) return JsonValue{false};
    if (take("null")) return JsonValue{nullptr};
    Fail("unknown literal");
    return std::nullopt;
  }

  std::optional<JsonValue> Number() {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) {
      Fail("expected number");
      return std::nullopt;
    }
    pos_ += static_cast<std::size_t>(end - begin);
    return JsonValue{v};
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

struct SpanRef {
  double ts = 0.0;
  double dur = 0.0;
  const std::string* name = nullptr;
};

constexpr double kEpsUs = 5e-3;  // JSON round-trips at 1 ns resolution

}  // namespace

std::vector<std::string> ValidateChromeTrace(const std::string& json,
                                             TraceCheckStats* stats) {
  std::vector<std::string> problems;
  TraceCheckStats local;
  const auto problem = [&](std::string what) {
    // The first few problems identify the failure; thousands of copies of
    // the same structural issue would drown the report.
    if (problems.size() < 32) problems.push_back(std::move(what));
  };

  std::string parse_error;
  const std::optional<JsonValue> root = JsonParser(json).Parse(parse_error);
  if (!root) {
    problems.push_back("JSON parse error: " + parse_error);
    if (stats) *stats = local;
    return problems;
  }

  const JsonArray* events = nullptr;
  if (const JsonObject* top = root->object()) {
    const auto it = top->find("traceEvents");
    if (it != top->end()) events = it->second.array();
    if (events == nullptr)
      problems.push_back("top-level object has no \"traceEvents\" array");
  } else if (root->array() != nullptr) {
    events = root->array();  // the bare-array flavor is also legal
  } else {
    problems.push_back("top level is neither an object nor an array");
  }
  if (events == nullptr) {
    if (stats) *stats = local;
    return problems;
  }

  std::map<std::pair<int, int>, std::vector<SpanRef>> spans_by_lane;
  std::map<std::string, int> async_open;  // "(cat)#(id)" -> open count
  std::size_t index = 0;
  for (const JsonValue& ev : *events) {
    const std::size_t i = index++;
    const JsonObject* e = ev.object();
    if (e == nullptr) {
      problem("event " + std::to_string(i) + " is not an object");
      continue;
    }
    const auto field = [&](const char* key) -> const JsonValue* {
      const auto it = e->find(key);
      return it == e->end() ? nullptr : &it->second;
    };
    const JsonValue* ph = field("ph");
    if (ph == nullptr || ph->string() == nullptr) {
      problem("event " + std::to_string(i) + " has no \"ph\" string");
      continue;
    }
    const std::string& phase = *ph->string();
    const JsonValue* pid = field("pid");
    const JsonValue* tid = field("tid");
    if (pid == nullptr || pid->number() == nullptr)
      problem("event " + std::to_string(i) + " (ph " + phase +
              ") has no numeric \"pid\"");
    if (phase != "M" && (tid == nullptr || tid->number() == nullptr))
      problem("event " + std::to_string(i) + " (ph " + phase +
              ") has no numeric \"tid\"");
    if (phase == "M") continue;  // metadata carries no timestamp

    local.event_count++;
    local.per_phase[phase]++;
    if (pid != nullptr && pid->number() != nullptr)
      local.per_pid[static_cast<int>(*pid->number())]++;
    if (const JsonValue* cat = field("cat"); cat && cat->string())
      local.per_category[*cat->string()]++;

    const JsonValue* ts = field("ts");
    if (ts == nullptr || ts->number() == nullptr) {
      problem("event " + std::to_string(i) + " (ph " + phase +
              ") has no numeric \"ts\"");
      continue;
    }
    const JsonValue* name = field("name");
    if (name == nullptr || name->string() == nullptr)
      problem("event " + std::to_string(i) + " has no \"name\"");

    if (phase == "X") {
      const JsonValue* dur = field("dur");
      if (dur == nullptr || dur->number() == nullptr) {
        problem("complete event " + std::to_string(i) +
                " has no numeric \"dur\"");
        continue;
      }
      if (*dur->number() < 0.0)
        problem("complete event " + std::to_string(i) + " has negative dur");
      if (pid && pid->number() && tid && tid->number())
        spans_by_lane[{static_cast<int>(*pid->number()),
                       static_cast<int>(*tid->number())}]
            .push_back(SpanRef{*ts->number(), *dur->number(),
                               name ? name->string() : nullptr});
    } else if (phase == "b" || phase == "e") {
      const JsonValue* cat = field("cat");
      const JsonValue* id = field("id");
      if (cat == nullptr || cat->string() == nullptr)
        problem("async event " + std::to_string(i) + " has no \"cat\"");
      if (id == nullptr || id->string() == nullptr)
        problem("async event " + std::to_string(i) + " has no \"id\"");
      if (cat && cat->string() && id && id->string()) {
        const std::string key = *cat->string() + "#" + *id->string();
        if (phase == "b") {
          if (++async_open[key] > 1)
            problem("async id " + key + " begun twice without an end");
        } else {
          if (--async_open[key] < 0)
            problem("async id " + key + " ended without a begin");
        }
      }
    } else if (phase == "C") {
      const JsonValue* args = field("args");
      if (args == nullptr || args->object() == nullptr ||
          args->object()->empty())
        problem("counter event " + std::to_string(i) + " has no args");
    } else if (phase != "i") {
      problem("event " + std::to_string(i) + " has unsupported ph \"" +
              phase + "\"");
    }
  }

  // A query that legitimately never completed (faulted run) leaves an open
  // async begin; an end without a begin is always a bug.
  for (const auto& [key, open] : async_open)
    if (open > 0) local.unmatched_async_begins += static_cast<size_t>(open);

  // Per-lane nesting: sorted by (ts, longer first), every span must lie
  // entirely inside the enclosing open span.
  for (auto& [lane, spans] : spans_by_lane) {
    std::stable_sort(spans.begin(), spans.end(),
                     [](const SpanRef& a, const SpanRef& b) {
                       if (a.ts != b.ts) return a.ts < b.ts;
                       return a.dur > b.dur;
                     });
    std::vector<const SpanRef*> stack;
    for (const SpanRef& s : spans) {
      while (!stack.empty() &&
             stack.back()->ts + stack.back()->dur <= s.ts + kEpsUs)
        stack.pop_back();
      if (!stack.empty()) {
        const SpanRef& top = *stack.back();
        if (s.ts + s.dur > top.ts + top.dur + kEpsUs)
          problem("span \"" + (s.name ? *s.name : "?") + "\" (pid " +
                  std::to_string(lane.first) + " tid " +
                  std::to_string(lane.second) +
                  ") overlaps \"" + (top.name ? *top.name : "?") +
                  "\" without nesting inside it");
      }
      stack.push_back(&s);
    }
  }

  if (stats) *stats = local;
  return problems;
}

}  // namespace mlpm::obs
