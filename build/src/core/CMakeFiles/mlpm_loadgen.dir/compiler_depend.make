# Empty compiler generated dependencies file for mlpm_loadgen.
# This may be replaced when dependencies are built.
