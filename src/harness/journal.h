// Crash-safe submission journal (DESIGN.md §12): an append-only write-ahead
// log with one fsync'd, checksummed record per completed task, so a run
// killed mid-submission can resume where it stopped instead of starting
// over.
//
// File layout (all text, line-oriented):
//
//   mlpm_journal v1\n
//   meta <len> <fnv64-hex>\n
//   <len bytes of meta payload>\n
//   rec <len> <fnv64-hex>\n
//   <len bytes of task-record payload>\n
//   ... more rec frames ...
//
// `len` counts the payload bytes (excluding the trailing newline) and the
// checksum is FNV-1a 64 over exactly those bytes.  Payloads are themselves
// line-oriented tag/key/value entries; multi-line strings (test logs, fault
// logs) are length-prefixed so arbitrary bytes round-trip.  Doubles are
// encoded as C hexfloats, which round-trip bit-exactly — a replayed record
// reproduces the original report byte for byte.
//
// Durability contract: a record is flushed *and* fsync'd before Append
// returns, so a record is either completely on disk or it is the torn tail
// the loader truncates.  The loader never throws on a damaged file: it
// recovers the longest valid prefix and reports what it cut.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/frame_log.h"
#include "harness/run_session.h"
#include "models/zoo.h"
#include "soc/chipset.h"

namespace mlpm::harness {

// Identity of the run configuration a journal belongs to.  A journal only
// resumes a run whose meta matches on every field: replaying a record from
// a different seed or config would silently mix incompatible results.
struct JournalMeta {
  std::string chipset;
  std::string version;  // ToString(models::SuiteVersion)
  std::uint64_t seed = 0;
  std::uint64_t config_hash = 0;

  [[nodiscard]] bool Matches(const JournalMeta& other) const {
    return chipset == other.chipset && version == other.version &&
           seed == other.seed && config_hash == other.config_hash;
  }
};

// Deterministic digest of everything that shapes a submission's results:
// chipset, suite version, LoadGen settings, fault plan, recovery and
// breaker options, run flags.  Observability knobs (profile/trace) and the
// accuracy-phase thread count are excluded — they never change results.
[[nodiscard]] std::uint64_t HashRunConfig(const soc::ChipsetDesc& chipset,
                                          models::SuiteVersion version,
                                          const RunOptions& options);

// Record payload codecs, exposed for tests and the mlpm_journal tool.
// DecodeTaskRecord throws CheckError on malformed payloads; the decoded
// result carries only entry.id (the caller rebinds the live suite entry).
[[nodiscard]] std::string EncodeTaskRecord(const TaskRunResult& tr);
[[nodiscard]] TaskRunResult DecodeTaskRecord(const std::string& payload);
[[nodiscard]] std::string EncodeMeta(const JournalMeta& meta);
[[nodiscard]] JournalMeta DecodeMeta(const std::string& payload);
// LoadGen result codec (every TestResult field except accuracy_outputs),
// shared with the fleet journal's shard records.
[[nodiscard]] std::string EncodeTestResult(const loadgen::TestResult& r);
[[nodiscard]] loadgen::TestResult DecodeTestResult(const std::string& payload);

// What LoadJournal recovered from a file.
struct JournalLoad {
  JournalMeta meta;
  bool meta_valid = false;  // header + meta frame intact
  // Tasks decoded from intact records, in file order.
  std::vector<TaskRunResult> tasks;
  std::size_t intact_records = 0;
  // Bytes past the last intact frame (a torn append, or corruption).
  bool torn_tail = false;
  std::size_t torn_bytes = 0;
  // Offset where the valid prefix ends; a resuming writer truncates here.
  std::size_t valid_prefix_bytes = 0;
  // Human-readable findings (torn record, checksum mismatch, ...).
  std::vector<std::string> notes;
};

// Reads and validates a journal.  Never throws on damaged or missing
// files — the damage is described in `notes` and the valid prefix is
// returned.
[[nodiscard]] JournalLoad LoadJournal(const std::string& path);

// Append-side handle.  Open() either starts a fresh journal (truncating
// whatever was at `path`) or, with `resume`, re-opens an existing one:
// the torn tail, if any, is cut and appends continue after the last
// intact record.  Each Append is flushed and fsync'd before returning.
class JournalWriter {
 public:
  [[nodiscard]] static JournalWriter Open(const std::string& path,
                                          const JournalMeta& meta,
                                          bool resume = false);

  void Append(const TaskRunResult& tr);
  [[nodiscard]] const std::string& path() const { return log_.path(); }

 private:
  explicit JournalWriter(FrameLogWriter log) : log_(std::move(log)) {}

  FrameLogWriter log_;
};

}  // namespace mlpm::harness
