#include "common/statistics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mlpm {

double PercentileOfSorted(std::span<const double> sorted, double p) {
  Expects(!sorted.empty(), "Percentile of empty sample set");
  Expects(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

double Percentile(std::span<const double> values, double p) {
  Expects(!values.empty(), "Percentile of empty sample set");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return PercentileOfSorted(sorted, p);
}

std::vector<double> Percentiles(std::span<const double> values,
                                std::span<const double> ps) {
  Expects(!values.empty(), "Percentiles of empty sample set");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(ps.size());
  for (double p : ps) out.push_back(PercentileOfSorted(sorted, p));
  return out;
}

SampleStats Summarize(std::span<const double> values) {
  Expects(!values.empty(), "Summarize of empty sample set");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());

  SampleStats s;
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  double var = 0.0;
  for (double v : sorted) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(s.count));

  s.p50 = PercentileOfSorted(sorted, 50.0);
  s.p90 = PercentileOfSorted(sorted, 90.0);
  s.p97 = PercentileOfSorted(sorted, 97.0);
  s.p99 = PercentileOfSorted(sorted, 99.0);
  return s;
}

double GeometricMean(std::span<const double> values) {
  Expects(!values.empty(), "GeometricMean of empty sample set");
  double log_sum = 0.0;
  for (double v : values) {
    Expects(v > 0.0, "GeometricMean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace mlpm
