# Empty dependencies file for mlpm_common.
# This may be replaced when dependencies are built.
