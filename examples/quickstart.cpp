// Quickstart: measure image classification on one simulated chipset.
//
// Shows the minimal API path: pick a chipset from the catalog, look up the
// vendor's submission configuration (numerics + framework + accelerator,
// i.e. a Table 2 cell), compile the full-scale reference model onto the
// chipset, and let the LoadGen run the single-stream scenario against the
// simulator.
#include <cstdio>

#include "backends/simulated_backend.h"
#include "backends/vendor_policy.h"
#include "core/dataset_qsl.h"
#include "core/loadgen.h"
#include "datasets/classification_dataset.h"
#include "models/mobilenet_edgetpu.h"
#include "models/zoo.h"
#include "soc/chipset.h"

int main() {
  using namespace mlpm;

  // The system under test: a Snapdragon 888 running the SNPE vendor stack.
  const soc::ChipsetDesc chipset = soc::Snapdragon888();
  const backends::SubmissionConfig submission = backends::GetSubmission(
      chipset, models::TaskType::kImageClassification,
      models::SuiteVersion::kV1_0);

  // Full-scale MobileNetEdgeTPU, compiled onto the chipset.
  const graph::Graph model =
      models::BuildMobileNetEdgeTpu(models::ModelScale::kFull);
  std::printf("model: %s, %.2fM parameters\n", model.name().c_str(),
              static_cast<double>(model.ParameterCount()) / 1e6);

  // A small synthetic ImageNet stand-in provides the query sample library.
  const graph::Graph mini =
      models::BuildMobileNetEdgeTpu(models::ModelScale::kMini);
  const infer::WeightStore weights = infer::InitializeWeights(mini, 7);
  const datasets::ClassificationDataset dataset(mini, weights, {});
  loadgen::DatasetQsl qsl(dataset);

  // LoadGen + simulator share a virtual clock.
  loadgen::VirtualClock clock;
  backends::SimulatedBackend sut(
      chipset.name, soc::SocSimulator(chipset),
      backends::CompileSubmission(chipset, submission, model),
      backends::CompileOfflineReplicas(chipset, submission, model), clock);

  loadgen::TestSettings settings;  // single-stream run rules by default
  const loadgen::TestResult result =
      loadgen::RunTest(sut, qsl, settings, clock);

  std::printf(
      "%s / %s / %s\n  samples: %zu   duration: %.1f s (virtual)\n"
      "  90th-percentile latency: %.2f ms   mean: %.2f ms\n",
      chipset.name.c_str(), submission.framework.name.c_str(),
      submission.accelerator_label.c_str(), result.sample_count,
      result.duration_s, result.percentile_latency_s * 1e3,
      result.mean_latency_s * 1e3);
  std::printf("  run rules met: %s\n",
              result.min_duration_met && result.min_query_count_met ? "yes"
                                                                    : "no");
  return 0;
}
