# Empty compiler generated dependencies file for bench_extension_speech.
# This may be replaced when dependencies are built.
