// Ablation — accelerator-level parallelism (paper §7.3 / DESIGN.md §4.4):
// offline image-classification throughput with the full ALP replica set vs
// each accelerator alone, for every chipset that submitted offline.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "soc/simulator.h"

namespace {

using namespace mlpm;

double OfflineFps(const soc::ChipsetDesc& chipset,
                  std::span<const soc::CompiledModel> replicas) {
  soc::SocSimulator sim(chipset);
  const soc::BatchResult r = sim.RunBatch(replicas, 24'576);
  return 24'576.0 / r.makespan_s;
}

}  // namespace

int main() {
  const models::SuiteVersion version = models::SuiteVersion::kV0_7;
  const models::BenchmarkEntry ic = models::SuiteFor(version)[0];
  const graph::Graph model = models::BuildReferenceGraph(
      ic, version, models::ModelScale::kFull);

  TextTable t("ALP ablation — offline IC throughput (FPS), v0.7");
  t.SetHeader({"Chipset", "ALP (all engines)", "primary engine only",
               "secondary engine only", "ALP gain"});

  for (const soc::ChipsetDesc& chipset : soc::CatalogV07()) {
    const backends::SubmissionConfig sub = backends::GetSubmission(
        chipset, models::TaskType::kImageClassification, version);
    if (sub.offline_replicas.empty()) continue;
    const std::vector<soc::CompiledModel> replicas =
        backends::CompileOfflineReplicas(chipset, sub, model);
    Expects(replicas.size() >= 2, "ALP ablation expects >= 2 replicas");

    const double alp = OfflineFps(chipset, replicas);
    const double primary = OfflineFps(chipset, {&replicas[0], 1});
    const double secondary = OfflineFps(chipset, {&replicas[1], 1});
    t.AddRow({chipset.name,
              FormatDouble(alp, 1) + " (" + sub.accelerator_label + ")",
              FormatDouble(primary, 1), FormatDouble(secondary, 1),
              FormatPercent(alp / primary - 1.0, 1)});
  }
  std::printf("%s", t.Render().c_str());
  std::printf(
      "\nrunning engines concurrently buys the offline gain the paper "
      "reports;\nthe latency-bound single-stream scenario cannot use ALP "
      "because managing\nconcurrent accelerators becomes the bottleneck "
      "(§7.3).\n");
  return 0;
}
