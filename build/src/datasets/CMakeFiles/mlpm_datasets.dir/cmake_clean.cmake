file(REMOVE_RECURSE
  "CMakeFiles/mlpm_datasets.dir/calibration_set.cpp.o"
  "CMakeFiles/mlpm_datasets.dir/calibration_set.cpp.o.d"
  "CMakeFiles/mlpm_datasets.dir/classification_dataset.cpp.o"
  "CMakeFiles/mlpm_datasets.dir/classification_dataset.cpp.o.d"
  "CMakeFiles/mlpm_datasets.dir/detection_dataset.cpp.o"
  "CMakeFiles/mlpm_datasets.dir/detection_dataset.cpp.o.d"
  "CMakeFiles/mlpm_datasets.dir/preprocess.cpp.o"
  "CMakeFiles/mlpm_datasets.dir/preprocess.cpp.o.d"
  "CMakeFiles/mlpm_datasets.dir/qa_dataset.cpp.o"
  "CMakeFiles/mlpm_datasets.dir/qa_dataset.cpp.o.d"
  "CMakeFiles/mlpm_datasets.dir/segmentation_dataset.cpp.o"
  "CMakeFiles/mlpm_datasets.dir/segmentation_dataset.cpp.o.d"
  "CMakeFiles/mlpm_datasets.dir/speech_dataset.cpp.o"
  "CMakeFiles/mlpm_datasets.dir/speech_dataset.cpp.o.d"
  "CMakeFiles/mlpm_datasets.dir/superres_dataset.cpp.o"
  "CMakeFiles/mlpm_datasets.dir/superres_dataset.cpp.o.d"
  "CMakeFiles/mlpm_datasets.dir/synthetic_image.cpp.o"
  "CMakeFiles/mlpm_datasets.dir/synthetic_image.cpp.o.d"
  "libmlpm_datasets.a"
  "libmlpm_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlpm_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
