file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_numerics.dir/bench_ablation_numerics.cpp.o"
  "CMakeFiles/bench_ablation_numerics.dir/bench_ablation_numerics.cpp.o.d"
  "bench_ablation_numerics"
  "bench_ablation_numerics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
