// Structural validation of a graph, used by the audit flow before a
// submitted model is accepted for execution (paper §6.2: the audit reviews
// submitted models and code for compliance and validity).
//
// GraphBuilder cannot construct most of these defects, but models arriving
// through deserialization or composition could; the validator re-checks the
// invariants from first principles.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"

namespace mlpm::graph {

struct ValidationReport {
  bool valid = true;
  std::vector<std::string> problems;

  void Problem(std::string what) {
    valid = false;
    problems.push_back(std::move(what));
  }
};

// Checks:
//  * every node input/weight/output id is in range;
//  * activations are produced before use (topological order);
//  * node inputs reference activation tensors, node weights reference
//    weight tensors;
//  * every non-input tensor consumed somewhere or marked as output
//    (no dead ends), and every graph output exists;
//  * graph inputs are not produced by any node.
[[nodiscard]] ValidationReport Validate(const Graph& g);

}  // namespace mlpm::graph
