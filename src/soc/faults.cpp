#include "soc/faults.h"

#include <cstdio>
#include <utility>

#include "common/check.h"
#include "soc/trace.h"

namespace mlpm::soc {

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {
  for (const FaultSpec& s : plan_.specs)
    Expects(s.probability >= 0.0 && s.probability <= 1.0,
            "fault probability must be in [0, 1]");
}

const FaultSpec* FaultInjector::NextAttempt() {
  ++attempts_;
  const FaultSpec* fired = nullptr;
  // Always draw once per spec: the schedule must not depend on whether an
  // earlier spec fired, or same-seed runs with different plans would skew.
  for (const FaultSpec& spec : plan_.specs) {
    const double u = rng_.NextDouble();
    if (fired == nullptr && u < spec.probability) fired = &spec;
  }
  return fired;
}

void FaultInjector::RecordFault(const FaultSpec& spec, double time_s,
                                double penalty_s) {
  events_.push_back(FaultEvent{spec.kind, attempts_, time_s, penalty_s});
}

std::string FaultInjector::EventLogText() const {
  std::string out;
  char line[128];
  for (const FaultEvent& e : events_) {
    std::snprintf(line, sizeof line, "fault %s attempt=%llu t=%.9f dt=%.9f\n",
                  std::string(ToString(e.kind)).c_str(),
                  static_cast<unsigned long long>(e.attempt_index), e.time_s,
                  e.penalty_s);
    out += line;
  }
  return out;
}

void FaultInjector::AppendToTrace(ExecutionTrace& trace) const {
  for (const FaultEvent& e : events_)
    trace.Add(TraceEvent{std::string(ToString(e.kind)), "faults", e.time_s,
                         e.penalty_s});
}

}  // namespace mlpm::soc
