#include "models/mobilenet_v2.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace mlpm::models {

using graph::Activation;
using graph::GraphBuilder;
using graph::TensorId;

namespace {

// Round channels to a multiple of 8 after width scaling (standard MobileNet
// "make divisible" rule; keeps vector units fully used).
std::int64_t Scale(std::int64_t ch, double width) {
  const auto scaled = static_cast<std::int64_t>(
      std::llround(static_cast<double>(ch) * width));
  return std::max<std::int64_t>(8, (scaled + 4) / 8 * 8);
}

struct StageSpec {
  std::int64_t out_ch;
  int expand;
  int stride;
  int repeat;
};

}  // namespace

BackboneFeatures BuildMobileNetV2Backbone(GraphBuilder& b, TensorId input,
                                          const MobileNetV2Options& opts) {
  const double w = opts.width;
  std::vector<StageSpec> stages;
  std::int64_t stem = 0;
  if (opts.scale == ModelScale::kFull) {
    stem = Scale(32, w);
    stages = {
        {Scale(16, w), 1, 1, 1},  {Scale(24, w), 6, 2, 2},
        {Scale(32, w), 6, 2, 3},  {Scale(64, w), 6, 2, 4},
        {Scale(96, w), 6, 1, 3},  {Scale(160, w), 6, 2, 3},
        {Scale(320, w), 6, 1, 1},
    };
  } else {
    stem = Scale(8, w);
    stages = {
        {Scale(8, w), 1, 1, 1},
        {Scale(16, w), 4, 2, 2},
        {Scale(24, w), 4, 2, 2},
        {Scale(32, w), 4, 1, 1},
    };
  }

  BackboneFeatures f;
  TensorId x = b.Conv2d(input, stem, 3, 2, Activation::kRelu6,
                        graph::Padding::kSame, 1, "mnv2_stem");

  int stage_index = 0;
  int dilation = 1;
  for (const StageSpec& s : stages) {
    int stride = s.stride;
    // Output-stride-16 mode (DeepLab): convert the stride-2 of the
    // 160-channel stage (full) / last stage (mini) into dilation.
    const bool is_os16_stage =
        opts.output_stride16 &&
        ((opts.scale == ModelScale::kFull && stage_index == 5) ||
         (opts.scale == ModelScale::kMini && stage_index == 3));
    if (is_os16_stage && stride == 2) {
      stride = 1;
      dilation = 2;
    }
    for (int r = 0; r < s.repeat; ++r)
      x = InvertedBottleneck(b, x, s.out_ch, s.expand, r == 0 ? stride : 1, 3,
                             /*fused=*/false, dilation);

    // Feature taps: low after the stride-4 stage, mid after stride-16.
    if ((opts.scale == ModelScale::kFull && stage_index == 1) ||
        (opts.scale == ModelScale::kMini && stage_index == 1))
      f.low = x;
    if ((opts.scale == ModelScale::kFull && stage_index == 4) ||
        (opts.scale == ModelScale::kMini && stage_index == 2))
      f.mid = x;
    ++stage_index;
  }
  f.high = x;
  return f;
}

}  // namespace mlpm::models
