// ThreadPool contract tests: startup/shutdown, full-coverage static
// partitioning, exception propagation, nested-submit safety, concurrent
// callers, and determinism of chunk boundaries across thread counts.
#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace mlpm {
namespace {

TEST(ThreadPool, ConstructsAndDestructsAcrossSizes) {
  for (const std::size_t n : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.thread_count(), n);
  }
  // 0 picks hardware concurrency (>= 1).
  ThreadPool autosized(0);
  EXPECT_GE(autosized.thread_count(), 1u);
}

TEST(ThreadPool, IdlePoolDestructsWithoutWork) {
  ThreadPool pool(4);  // never submits; destructor must not hang
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (const std::int64_t len : {1, 2, 3, 4, 5, 63, 64, 1000}) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(len));
    pool.ParallelFor(0, len, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i)
        hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (std::int64_t i = 0; i < len; ++i)
      EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, EmptyAndNegativeRangesAreNoops) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](std::int64_t, std::int64_t) { ++calls; });
  pool.ParallelFor(7, 3, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, StaticPartitionIsDeterministic) {
  // The chunk boundaries depend only on (range, chunk_count), never on
  // scheduling: collect them twice and compare.
  const auto boundaries = [](ThreadPool& pool, std::int64_t len) {
    std::mutex mu;
    std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
    pool.ParallelFor(0, len, [&](std::int64_t lo, std::int64_t hi) {
      std::scoped_lock lock(mu);
      chunks.emplace_back(lo, hi);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  ThreadPool pool(3);
  const auto a = boundaries(pool, 100);
  const auto b = boundaries(pool, 100);
  EXPECT_EQ(a, b);
  // Chunks tile the range contiguously.
  std::int64_t expect_lo = 0;
  for (const auto& [lo, hi] : a) {
    EXPECT_EQ(lo, expect_lo);
    EXPECT_LT(lo, hi);
    expect_lo = hi;
  }
  EXPECT_EQ(expect_lo, 100);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100,
                       [&](std::int64_t lo, std::int64_t) {
                         if (lo == 0) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPool, PoolStaysUsableAfterException) {
  ThreadPool pool(4);
  try {
    pool.ParallelFor(0, 100, [&](std::int64_t, std::int64_t) {
      throw std::runtime_error("boom");
    });
  } catch (const std::runtime_error&) {
  }
  std::atomic<std::int64_t> sum{0};
  pool.ParallelFor(0, 100, [&](std::int64_t lo, std::int64_t hi) {
    std::int64_t local = 0;
    for (std::int64_t i = lo; i < hi; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 100 * 99 / 2);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> outer_chunks{0};
  std::atomic<int> inner_total{0};
  pool.ParallelFor(0, 8, [&](std::int64_t lo, std::int64_t hi) {
    outer_chunks.fetch_add(1);
    EXPECT_TRUE(ThreadPool::InParallelRegion());
    // A nested submit must not deadlock; it runs inline on this thread.
    pool.ParallelFor(0, 10, [&](std::int64_t ilo, std::int64_t ihi) {
      inner_total.fetch_add(static_cast<int>(ihi - ilo));
    });
    (void)lo;
    (void)hi;
  });
  EXPECT_FALSE(ThreadPool::InParallelRegion());
  EXPECT_GT(outer_chunks.load(), 0);
  EXPECT_EQ(inner_total.load(), outer_chunks.load() * 10);
}

TEST(ThreadPool, ConcurrentCallersSerialize) {
  ThreadPool pool(3);
  std::atomic<std::int64_t> total{0};
  const auto submit = [&] {
    for (int rep = 0; rep < 20; ++rep)
      pool.ParallelFor(0, 50, [&](std::int64_t lo, std::int64_t hi) {
        total.fetch_add(hi - lo);
      });
  };
  std::thread t1(submit), t2(submit);
  submit();
  t1.join();
  t2.join();
  EXPECT_EQ(total.load(), 3 * 20 * 50);
}

TEST(ThreadPool, ParallelForRangeHelperFallsBackInline) {
  // Null pool and single-thread pool both run the body once, inline.
  int calls = 0;
  ParallelForRange(nullptr, 0, 10, [&](std::int64_t lo, std::int64_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 10);
  });
  EXPECT_EQ(calls, 1);
  ThreadPool serial(1);
  ParallelForRange(&serial, 0, 10, [&](std::int64_t lo, std::int64_t hi) {
    ++calls;
    EXPECT_EQ(hi - lo, 10);
  });
  EXPECT_EQ(calls, 2);
}

TEST(ThreadPool, StressManySmallSubmits) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  for (int rep = 0; rep < 500; ++rep)
    pool.ParallelFor(0, 7, [&](std::int64_t lo, std::int64_t hi) {
      total.fetch_add(hi - lo);
    });
  EXPECT_EQ(total.load(), 500 * 7);
}

TEST(ThreadPool, GlobalPoolIsConfigurable) {
  ThreadPool::SetGlobalThreadCount(2);
  EXPECT_EQ(ThreadPool::Global().thread_count(), 2u);
  ThreadPool::SetGlobalThreadCount(0);  // back to hardware concurrency
  EXPECT_GE(ThreadPool::Global().thread_count(), 1u);
}

}  // namespace
}  // namespace mlpm
