#include "core/loadgen.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <deque>
#include <numeric>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/rng.h"
#include "common/statistics.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mlpm::loadgen {
namespace {

// Distinguishes queries of successive tests on the shared recorder: query
// ids restart at 1 every RunTest, so the async (cat, id) pairing namespaces
// them by a process-wide test sequence number (deterministic — tests run in
// submission order on one thread).
std::atomic<std::uint64_t> g_test_sequence{0};

// Collects completions and pairs them with issue timestamps.  Hostile or
// faulty SUT behavior (duplicate completions, completions for queries that
// were never issued, completions past the watchdog deadline, completions
// that never arrive) is counted and logged rather than thrown: one bad
// inference must not kill the whole submission (paper App. D).
class Collector final : public ResponseSink {
 public:
  Collector(const Clock& clock, TestLog& log, bool keep_outputs,
            Seconds query_timeout, std::uint64_t test_sequence)
      : clock_(clock),
        log_(log),
        keep_outputs_(keep_outputs),
        timeout_(query_timeout),
        test_sequence_(test_sequence) {}

  void ExpectSample(const QuerySample& s) { ExpectSampleAt(s, clock_.Now()); }

  // Server scenario: latency counts from the scheduled (Poisson) arrival,
  // which includes any time the query spent queued behind earlier work.
  void ExpectSampleAt(const QuerySample& s, Seconds scheduled) {
    issue_time_[s.id] = scheduled;
    sample_index_[s.id] = s.index;
    if (issue_time_.size() == 1 || scheduled < first_issue_)
      first_issue_ = scheduled;
    log_.Record(LogEventKind::kQueryIssued, s.id, scheduled);
    if (obs::TraceRecorder& rec = obs::TraceRecorder::Global();
        rec.enabled())
      rec.AddAsyncBegin(obs::Domain::kLoadGen, "queries", "query", "query",
                        AsyncId(s.id), scheduled.count() * 1e6,
                        {obs::Arg("sample", static_cast<std::uint64_t>(
                                                s.index))});
  }

  // Timestamp of the earliest issued query (the duration window start the
  // checker re-derives from the raw events).
  [[nodiscard]] Seconds first_issue() const { return first_issue_; }

  // Admission control refused this arrival before issue: log it under the
  // `shed` taxonomy class.  The sample never reaches the SUT, so there is
  // nothing for the watchdog to wait on.
  void Shed(const QuerySample& s, Seconds scheduled) {
    ++shed_count_;
    log_.Record(LogEventKind::kQueryShed, s.id, scheduled);
    Error("query " + std::to_string(s.id) +
          " shed by admission control (issue queue full)");
    if (obs::TraceRecorder& rec = obs::TraceRecorder::Global();
        rec.enabled())
      rec.AddInstant(obs::Domain::kLoadGen, "admission", "shed",
                     scheduled.count() * 1e6,
                     {obs::Arg("query", s.id),
                      obs::Arg("sample", static_cast<std::uint64_t>(s.index))},
                     "admission");
    obs::MetricsRegistry::Global().Increment("loadgen.queries_shed");
  }

  // SUT-side fast-fail (open circuit breaker): the query was issued but the
  // backend refused to run it.  Counts under `rejected`, never as a drop or
  // timeout — the watchdog must not wait on a completion that will never
  // arrive.
  void Reject(std::uint64_t id, std::string_view reason) override {
    const Seconds now = clock_.Now();
    const auto it = issue_time_.find(id);
    if (it == issue_time_.end() || completed_.contains(id) ||
        rejected_.contains(id)) {
      ++unknown_count_;
      Error("rejection for query " + std::to_string(id) +
            " that is not outstanding (ignored)");
      return;
    }
    rejected_.insert(id);
    ++rejected_count_;
    log_.Record(LogEventKind::kQueryRejected, id, now);
    Error("query " + std::to_string(id) + " rejected by SUT: " +
          std::string(reason));
    if (obs::TraceRecorder& rec = obs::TraceRecorder::Global();
        rec.enabled())
      rec.AddAsyncEnd(obs::Domain::kLoadGen, "queries", "query", "query",
                      AsyncId(id), now.count() * 1e6,
                      {obs::Arg("outcome", "rejected"),
                       obs::Arg("reason", std::string(reason))});
    obs::MetricsRegistry::Global().Increment("loadgen.queries_rejected");
  }

  void Complete(QuerySampleResponse response) override {
    const Seconds now = clock_.Now();
    const auto it = issue_time_.find(response.id);
    if (it == issue_time_.end()) {
      ++unknown_count_;
      Error("completion for query " + std::to_string(response.id) +
            ", which was never issued (ignored)");
      return;
    }
    if (rejected_.contains(response.id)) {
      ++duplicate_count_;
      Error("query " + std::to_string(response.id) +
            " completed after being rejected (ignored)");
      return;
    }
    if (completed_.contains(response.id)) {
      ++duplicate_count_;
      Error("query " + std::to_string(response.id) +
            " completed more than once (ignored)");
      return;
    }
    completed_.insert(response.id);
    log_.Record(LogEventKind::kQueryCompleted, response.id, now);
    const Seconds latency = now - it->second;
    last_completion_ = std::max(last_completion_, now);
    const bool expired = timeout_.count() > 0.0 && latency > timeout_;
    if (obs::TraceRecorder& rec = obs::TraceRecorder::Global();
        rec.enabled())
      rec.AddAsyncEnd(obs::Domain::kLoadGen, "queries", "query", "query",
                      AsyncId(response.id), now.count() * 1e6,
                      {obs::Arg("outcome", expired ? "timed_out" : "ok"),
                       obs::Arg("latency_ms", latency.count() * 1e3)});
    if (expired) {
      // Watchdog: the deadline passed before the completion arrived; the
      // query already counts as expired, the late result is discarded.
      ++timed_out_count_;
      Error("query " + std::to_string(response.id) + " completed " +
            std::to_string(latency.count()) + " s after issue, past the " +
            std::to_string(timeout_.count()) + " s deadline (expired)");
      return;
    }
    latencies_s_.push_back(latency.count());
    if (keep_outputs_)
      outputs_.emplace_back(sample_index_[response.id],
                            std::move(response.outputs));
  }

  // End of test: expire every query whose completion never arrived.  With
  // the watchdog configured they count as timed out (the deadline has
  // passed — the test is over); without it they are dropped.
  void ExpireOutstanding() {
    for (const auto& [id, issued_at] : issue_time_) {
      if (completed_.contains(id) || rejected_.contains(id)) continue;
      if (timeout_.count() > 0.0) {
        ++timed_out_count_;
        Error("query " + std::to_string(id) +
              " never completed (watchdog deadline " +
              std::to_string(timeout_.count()) + " s)");
      } else {
        ++dropped_count_;
        Error("query " + std::to_string(id) + " never completed (dropped)");
      }
    }
  }

  [[nodiscard]] std::size_t completed_count() const {
    return completed_.size();
  }
  // Queries that reached a terminal state through the sink (completed or
  // rejected) — the progress measure the stall detector watches, since a
  // breaker that fast-fails every query is making (degenerate) progress.
  [[nodiscard]] std::size_t resolved_count() const {
    return completed_.size() + rejected_.size();
  }
  [[nodiscard]] std::size_t issued_count() const { return issue_time_.size(); }
  [[nodiscard]] const std::vector<double>& latencies() const {
    return latencies_s_;
  }
  [[nodiscard]] Seconds last_completion() const { return last_completion_; }
  [[nodiscard]] std::vector<std::pair<std::size_t,
                                      std::vector<infer::Tensor>>>&&
  TakeOutputs() {
    return std::move(outputs_);
  }

  [[nodiscard]] std::size_t dropped_count() const { return dropped_count_; }
  [[nodiscard]] std::size_t timed_out_count() const {
    return timed_out_count_;
  }
  [[nodiscard]] std::size_t duplicate_count() const {
    return duplicate_count_;
  }
  [[nodiscard]] std::size_t unknown_count() const { return unknown_count_; }
  [[nodiscard]] std::size_t shed_count() const { return shed_count_; }
  [[nodiscard]] std::size_t rejected_count() const { return rejected_count_; }
  [[nodiscard]] std::vector<std::string>&& TakeErrors() {
    return std::move(errors_);
  }

 private:
  void Error(std::string what) { errors_.push_back(std::move(what)); }

  // Process-unique async-event id for a query of this test.
  [[nodiscard]] std::uint64_t AsyncId(std::uint64_t query_id) const {
    return (test_sequence_ << 32) | query_id;
  }

  const Clock& clock_;
  TestLog& log_;
  bool keep_outputs_;
  Seconds timeout_;
  std::uint64_t test_sequence_;
  std::unordered_map<std::uint64_t, Seconds> issue_time_;
  std::unordered_map<std::uint64_t, std::size_t> sample_index_;
  Seconds first_issue_{0.0};
  std::unordered_set<std::uint64_t> completed_;
  std::unordered_set<std::uint64_t> rejected_;
  std::vector<double> latencies_s_;
  Seconds last_completion_{0.0};
  std::vector<std::pair<std::size_t, std::vector<infer::Tensor>>> outputs_;
  std::size_t dropped_count_ = 0;
  std::size_t timed_out_count_ = 0;
  std::size_t duplicate_count_ = 0;
  std::size_t unknown_count_ = 0;
  std::size_t shed_count_ = 0;
  std::size_t rejected_count_ = 0;
  std::vector<std::string> errors_;
};

void FillSummary(TestResult& r, const TestSettings& settings,
                 const Collector& collector, Seconds start, Seconds end) {
  r.latencies_s = collector.latencies();
  r.sample_count = r.latencies_s.size();
  r.duration_s = (end - start).count();
  if (!r.latencies_s.empty()) {
    r.percentile_latency_s =
        Percentile(r.latencies_s, settings.latency_percentile);
    r.mean_latency_s =
        std::accumulate(r.latencies_s.begin(), r.latencies_s.end(), 0.0) /
        static_cast<double>(r.latencies_s.size());
  }
  if (r.duration_s > 0.0)
    r.throughput_sps =
        static_cast<double>(r.sample_count) / r.duration_s;
}

// Expires outstanding queries, moves the anomaly counters and error log
// into the result, and decides structural validity.
void FinalizeErrors(TestResult& r, Collector& collector) {
  collector.ExpireOutstanding();
  r.dropped_count = collector.dropped_count();
  r.timed_out_count = collector.timed_out_count();
  r.duplicate_count = collector.duplicate_count();
  r.unknown_count = collector.unknown_count();
  r.shed_count = collector.shed_count();
  r.rejected_count = collector.rejected_count();
  r.issued_count = collector.issued_count();
  r.error_log = collector.TakeErrors();
  if (r.invalid_reason.empty() && r.latencies_s.empty())
    r.invalid_reason = "no queries completed within the run";
  if (!r.invalid_reason.empty()) {
    r.log.SetField("invalid_reason", r.invalid_reason);
  }
  if (r.AnomalyCount() > 0) {
    r.log.SetField("result_dropped_count", std::to_string(r.dropped_count));
    r.log.SetField("result_timed_out_count",
                   std::to_string(r.timed_out_count));
    r.log.SetField("result_duplicate_count",
                   std::to_string(r.duplicate_count));
    r.log.SetField("result_unknown_count", std::to_string(r.unknown_count));
    r.log.SetField("result_shed_count", std::to_string(r.shed_count));
    r.log.SetField("result_rejected_count",
                   std::to_string(r.rejected_count));
  }

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.Increment("loadgen.tests");
  metrics.Increment("loadgen.queries_issued", collector.issued_count());
  metrics.Increment("loadgen.queries_completed",
                    collector.completed_count());
  metrics.Increment("loadgen.queries_errored", r.AnomalyCount());
}

}  // namespace

TestResult RunTest(SystemUnderTest& sut, QuerySampleLibrary& qsl,
                   const TestSettings& settings, Clock& clock) {
  Expects(qsl.TotalSampleCount() > 0, "QSL is empty");
  TestResult result;
  result.scenario = settings.scenario;
  result.mode = settings.mode;

  TestLog& log = result.log;
  log.SetField("loadgen_version", "mlpm-1.0");
  log.SetField("sut", std::string(sut.name()));
  log.SetField("qsl", std::string(qsl.name()));
  log.SetField("scenario", std::string(ToString(settings.scenario)));
  log.SetField("mode", std::string(ToString(settings.mode)));
  log.SetField("seed", std::to_string(settings.seed));
  log.SetField("min_query_count", std::to_string(settings.min_query_count));
  log.SetField("min_duration_s",
               std::to_string(settings.min_duration.count()));
  log.SetField("offline_sample_count",
               std::to_string(settings.offline_sample_count));
  log.SetField("latency_percentile",
               std::to_string(settings.latency_percentile));
  if (settings.query_timeout.count() > 0.0)
    log.SetField("query_timeout_s",
                 std::to_string(settings.query_timeout.count()));
  if (settings.scenario == TestScenario::kServer &&
      settings.server_max_queue_depth > 0) {
    log.SetField("server_max_queue_depth",
                 std::to_string(settings.server_max_queue_depth));
    log.SetField("server_max_shed_fraction",
                 std::to_string(settings.server_max_shed_fraction));
  }

  const bool accuracy = settings.mode == TestMode::kAccuracyOnly;
  Collector collector(clock, log, accuracy, settings.query_timeout,
                      g_test_sequence.fetch_add(1) + 1);
  std::uint64_t next_id = 1;

  // Scenario phase marks on the test-clock timeline; their order is part of
  // the conformance surface (tests/loadgen_test.cpp).
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  const auto mark = [&](std::string_view what) {
    if (!rec.enabled()) return;
    rec.AddInstant(obs::Domain::kLoadGen, "phases",
                   "phase:" + std::string(what), clock.Now().count() * 1e6,
                   {obs::Arg("scenario",
                             std::string(ToString(settings.scenario))),
                    obs::Arg("mode", std::string(ToString(settings.mode)))},
                   "phase");
  };

  if (accuracy) {
    // Accuracy mode: the entire data set, in order (paper §4.1).
    const std::size_t total = qsl.TotalSampleCount();
    std::vector<std::size_t> all(total);
    std::iota(all.begin(), all.end(), std::size_t{0});
    mark("load_samples");
    qsl.LoadSamplesToRam(all);
    const Seconds start = clock.Now();
    mark("issue");
    for (std::size_t i = 0; i < total; ++i) {
      const QuerySample s{next_id++, i};
      collector.ExpectSample(s);
      sut.IssueQuery({&s, 1}, collector);
    }
    mark("flush");
    sut.FlushQueries();
    qsl.UnloadSamplesFromRam(all);
    FillSummary(result, settings, collector, start,
                collector.last_completion());
    if (collector.completed_count() != total)
      result.invalid_reason =
          "accuracy run incomplete: " +
          std::to_string(collector.completed_count()) + " of " +
          std::to_string(total) + " samples completed";
    FinalizeErrors(result, collector);
    // Order outputs by dataset index.
    auto outs = collector.TakeOutputs();
    std::sort(outs.begin(), outs.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    result.accuracy_outputs.reserve(outs.size());
    for (auto& [idx, tensors] : outs)
      result.accuracy_outputs.push_back(std::move(tensors));
    result.min_duration_met = true;
    result.min_query_count_met = true;
    mark("done");
    return result;
  }

  // Performance mode: a seeded random subset of the data set.
  const std::size_t perf_count =
      settings.performance_sample_count > 0
          ? std::min(settings.performance_sample_count,
                     qsl.TotalSampleCount())
          : std::min(qsl.PerformanceSampleCount(), qsl.TotalSampleCount());
  Expects(perf_count > 0, "performance sample count must be positive");
  Rng rng(settings.seed);
  std::vector<std::size_t> loaded(perf_count);
  std::iota(loaded.begin(), loaded.end(), std::size_t{0});
  mark("load_samples");
  qsl.LoadSamplesToRam(loaded);

  const Seconds start = clock.Now();
  mark("issue");
  if (settings.scenario == TestScenario::kSingleStream) {
    // Issue one query, wait for completion, repeat (paper §4.2) until both
    // the sample floor and the duration floor are met.  A query whose
    // completion never arrives is expired; an SUT that makes no progress
    // at all (no completion *and* no clock movement) would loop forever,
    // so that run is cut short and marked invalid.
    std::size_t issued = 0;
    while (issued < settings.min_query_count ||
           (clock.Now() - start) < settings.min_duration) {
      const QuerySample s{next_id++,
                          static_cast<std::size_t>(rng.NextBelow(perf_count))};
      const Seconds before = clock.Now();
      const std::size_t resolved_before = collector.resolved_count();
      collector.ExpectSample(s);
      sut.IssueQuery({&s, 1}, collector);
      ++issued;
      if (collector.resolved_count() == resolved_before &&
          clock.Now() == before) {
        result.invalid_reason =
            "SUT stalled: no completion and no clock progress after query " +
            std::to_string(s.id);
        break;
      }
    }
  } else if (settings.scenario == TestScenario::kOffline) {
    // Offline: the whole burst in one query (paper §4.2).
    std::vector<QuerySample> burst;
    burst.reserve(settings.offline_sample_count);
    for (std::size_t i = 0; i < settings.offline_sample_count; ++i) {
      burst.push_back(QuerySample{
          next_id++, static_cast<std::size_t>(rng.NextBelow(perf_count))});
      collector.ExpectSample(burst.back());
    }
    sut.IssueQuery(burst, collector);
  } else if (settings.scenario == TestScenario::kMultiStream) {
    // Multi-stream: a query of N samples every fixed interval (camera
    // frames from N concurrent streams).  Per-query latency counts from
    // the scheduled tick; the run is valid if the percentile latency fits
    // inside the interval.
    Expects(settings.multistream_samples_per_query > 0,
            "multi-stream needs at least one sample per query");
    std::vector<double> query_latencies;
    query_latencies.reserve(settings.multistream_query_count);
    for (std::size_t q = 0; q < settings.multistream_query_count; ++q) {
      const Seconds scheduled =
          start + settings.multistream_interval * static_cast<double>(q);
      clock.WaitUntil(scheduled);
      std::vector<QuerySample> query;
      query.reserve(settings.multistream_samples_per_query);
      for (std::size_t i = 0; i < settings.multistream_samples_per_query;
           ++i) {
        query.push_back(QuerySample{
            next_id++,
            static_cast<std::size_t>(rng.NextBelow(perf_count))});
        collector.ExpectSampleAt(query.back(), scheduled);
      }
      sut.IssueQuery(query, collector);
      query_latencies.push_back((clock.Now() - scheduled).count());
    }
    mark("flush");
    sut.FlushQueries();
    qsl.UnloadSamplesFromRam(loaded);
    FillSummary(result, settings, collector, collector.first_issue(),
                collector.last_completion());
    FinalizeErrors(result, collector);
    // The multi-stream metric is per-query, not per-sample.
    result.latencies_s = query_latencies;
    result.percentile_latency_s =
        Percentile(query_latencies, settings.latency_percentile);
    result.min_query_count_met = true;
    result.min_duration_met = true;
    result.latency_bound_met =
        !result.Errored() &&
        Seconds{result.percentile_latency_s} <=
            settings.multistream_interval;
    log.SetField("result_sample_count",
                 std::to_string(result.sample_count));
    log.SetField("result_percentile_latency_s",
                 std::to_string(result.percentile_latency_s));
    log.SetField("result_throughput_sps",
                 std::to_string(result.throughput_sps));
    mark("done");
    return result;
  } else {
    // Server: seeded Poisson arrivals at the target rate; queries queue
    // behind in-flight work and latency counts from the scheduled arrival.
    // With admission control enabled (server_max_queue_depth > 0) an
    // arrival that would find the issue queue full is shed instead of
    // queueing without bound: the decision depends only on the seeded
    // arrival process and the SUT's (deterministic) service times, so the
    // shed set is identical run-to-run for the same seed.  The sample
    // index is drawn before the shed decision so the RNG stream — and
    // therefore every later query's sample — is unchanged by shedding.
    Expects(settings.server_target_qps > 0.0,
            "server scenario needs a positive target QPS");
    Rng arrival_rng = rng.Split(0xA11);
    Seconds arrival = start;
    // Completion times of admitted-but-possibly-unfinished queries, in
    // issue order (the SUT runs them serially on the test clock).
    std::deque<Seconds> admitted;
    for (std::size_t i = 0; i < settings.server_query_count; ++i) {
      const double gap = -std::log(1.0 - arrival_rng.NextDouble()) /
                         settings.server_target_qps;
      arrival += Seconds{gap};
      const QuerySample s{next_id++,
                          static_cast<std::size_t>(rng.NextBelow(perf_count))};
      while (!admitted.empty() && admitted.front() <= arrival)
        admitted.pop_front();
      if (settings.server_max_queue_depth > 0 &&
          admitted.size() >= settings.server_max_queue_depth) {
        collector.Shed(s, arrival);
        continue;
      }
      collector.ExpectSampleAt(s, arrival);
      // If the device is free before the arrival, idle until it.
      clock.WaitUntil(arrival);
      sut.IssueQuery({&s, 1}, collector);
      admitted.push_back(clock.Now());
    }
  }
  mark("flush");
  sut.FlushQueries();
  qsl.UnloadSamplesFromRam(loaded);

  const Seconds end = collector.last_completion();
  FillSummary(result, settings, collector, collector.first_issue(), end);
  FinalizeErrors(result, collector);
  result.min_query_count_met =
      settings.scenario != TestScenario::kSingleStream ||
      result.sample_count >= settings.min_query_count;
  result.min_duration_met =
      settings.scenario != TestScenario::kSingleStream ||
      Seconds{result.duration_s} >= settings.min_duration;
  result.latency_bound_met =
      settings.scenario != TestScenario::kServer ||
      (!result.Errored() &&
       Seconds{result.percentile_latency_s} <= settings.server_latency_bound);
  // Shedding keeps the accepted-query percentile honest, but a run that
  // refuses too much of the offered load is not serving the target rate.
  result.shed_bound_met =
      settings.scenario != TestScenario::kServer ||
      static_cast<double>(result.shed_count + result.rejected_count) <=
          settings.server_max_shed_fraction *
                  static_cast<double>(settings.server_query_count) +
              1e-9;

  log.SetField("result_sample_count", std::to_string(result.sample_count));
  log.SetField("result_duration_s", std::to_string(result.duration_s));
  log.SetField("result_percentile_latency_s",
               std::to_string(result.percentile_latency_s));
  log.SetField("result_throughput_sps",
               std::to_string(result.throughput_sps));
  mark("done");
  return result;
}

double FindMaxServerQps(
    const std::function<TestResult(double qps)>& run_at_qps, double lo,
    double hi, int iterations) {
  Expects(lo > 0.0 && hi > lo, "invalid QPS search bounds");
  // A probe passes only if it is structurally valid *and* meets both
  // server bounds: an errored run (all samples dropped, stalled SUT)
  // reports a garbage percentile and must not steer the search, and a run
  // that holds the accepted-query percentile only by shedding past the
  // allowed fraction is not actually serving that rate.
  const auto passes = [](const TestResult& r) {
    return !r.Errored() && r.latency_bound_met && r.shed_bound_met;
  };
  const TestResult at_lo = run_at_qps(lo);
  // `lo` errored structurally: the SUT cannot produce a valid run at any
  // rate — probing higher rates would only re-run a broken configuration.
  if (at_lo.Errored()) return 0.0;
  if (!passes(at_lo)) return 0.0;
  if (passes(run_at_qps(hi))) return hi;
  double good = lo, bad = hi;
  for (int i = 0; i < iterations; ++i) {
    const double mid = (good + bad) / 2.0;
    if (passes(run_at_qps(mid)))
      good = mid;
    else
      bad = mid;
  }
  return good;
}

}  // namespace mlpm::loadgen
