#include "soc/trace.h"

#include <map>
#include <sstream>

namespace mlpm::soc {

void ExecutionTrace::Add(TraceEvent event) {
  Expects(event.duration_s >= 0.0, "negative trace duration");
  events_.push_back(std::move(event));
}

double ExecutionTrace::TotalDuration() const {
  double end = 0.0;
  for (const TraceEvent& e : events_)
    end = std::max(end, e.begin_s + e.duration_s);
  return end;
}

std::string ExecutionTrace::ToChromeJson() const {
  // Stable tid per lane, then the shared obs emitter: standalone SoC
  // traces and full-stack recordings serialize identically.
  std::map<std::string, int> lanes;
  for (const TraceEvent& e : events_)
    lanes.try_emplace(e.lane, static_cast<int>(lanes.size()) + 1);
  std::map<int, std::string> names;
  for (const auto& [lane, tid] : lanes) names.emplace(tid, lane);

  std::vector<obs::TraceEvent> events;
  events.reserve(events_.size());
  for (const TraceEvent& e : events_) {
    obs::TraceEvent oe;
    oe.domain = obs::Domain::kSim;
    oe.tid = lanes.at(e.lane);
    oe.name = e.name;
    oe.category = "soc";
    oe.ts_us = e.begin_s * 1e6;
    oe.dur_us = e.duration_s * 1e6;
    events.push_back(std::move(oe));
  }
  return obs::ChromeTraceJson(
      events, [&](obs::Domain, int tid) { return names.at(tid); });
}

void ExecutionTrace::AppendTo(obs::TraceRecorder& recorder,
                              std::string_view lane_prefix) const {
  for (const TraceEvent& e : events_) {
    const std::string lane =
        lane_prefix.empty() ? e.lane : std::string(lane_prefix) + e.lane;
    recorder.AddComplete(obs::Domain::kSim, lane, e.name, e.begin_s * 1e6,
                         e.duration_s * 1e6, {}, "soc");
  }
}

ExecutionTrace TraceInference(const CompiledModel& model,
                              const ChipsetDesc& chipset,
                              double throttle_factor, double t0_s) {
  Expects(throttle_factor > 0.0 && throttle_factor <= 1.0,
          "throttle factor must be in (0,1]");
  ExecutionTrace trace;
  double t = t0_s;
  if (model.overheads.per_inference_s > 0.0) {
    trace.Add(TraceEvent{"runtime dispatch", "runtime", t,
                         model.overheads.per_inference_s});
    t += model.overheads.per_inference_s;
  }
  for (std::size_t i = 0; i < model.segments.size(); ++i) {
    const CompiledSegment& seg = model.segments[i];
    const std::string& engine =
        chipset.engines[seg.engine_index].name;
    const double dur =
        seg.roofline_s / throttle_factor + seg.dispatch_s;
    trace.Add(TraceEvent{"segment " + std::to_string(i), engine, t, dur});
    t += dur;
    if (i + 1 < model.segments.size()) {
      if (model.overheads.per_partition_sync_s > 0.0) {
        trace.Add(TraceEvent{"partition sync", "runtime", t,
                             model.overheads.per_partition_sync_s});
        t += model.overheads.per_partition_sync_s;
      }
      const bool engine_change =
          model.segments[i + 1].engine_index != seg.engine_index;
      if (model.overheads.copy_boundary_tensors || engine_change) {
        const double copy =
            seg.boundary_bytes / (model.interconnect_gbps * 1e9);
        if (copy > 0.0) {
          trace.Add(TraceEvent{"tensor transfer", "interconnect", t, copy});
          t += copy;
        }
      }
    }
  }
  return trace;
}

}  // namespace mlpm::soc
