file(REMOVE_RECURSE
  "libmlpm_models.a"
)
