#include "fleet/mix.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "common/check.h"

namespace mlpm::fleet {
namespace {

// Task-id aliases accepted in mix specs.
[[nodiscard]] std::string CanonicalTaskId(const std::string& token) {
  if (token == "ic") return "image_classification";
  if (token == "od") return "object_detection";
  if (token == "is") return "image_segmentation";
  if (token == "qa") return "question_answering";
  return token;
}

[[nodiscard]] std::string Trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  std::size_t e = s.find_last_not_of(" \t");
  if (b == std::string::npos) return {};
  return s.substr(b, e - b + 1);
}

}  // namespace

std::vector<FleetMixEntry> ParseFleetMix(const std::string& spec) {
  std::vector<FleetMixEntry> mix;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t end = std::min(spec.find(';', pos), spec.size());
    const std::string part = Trim(spec.substr(pos, end - pos));
    pos = end + 1;
    if (part.empty()) continue;

    const std::size_t c1 = part.find(':');
    Expects(c1 != std::string::npos,
            "fleet mix entry needs '<chipset>:<task>[:<weight>]': " + part);
    const std::size_t c2 = part.find(':', c1 + 1);

    FleetMixEntry e;
    e.chipset = Trim(part.substr(0, c1));
    e.task_id = CanonicalTaskId(
        Trim(part.substr(c1 + 1, (c2 == std::string::npos ? part.size() : c2) -
                                     c1 - 1)));
    Expects(!e.chipset.empty(), "empty chipset in fleet mix entry: " + part);
    Expects(!e.task_id.empty(), "empty task in fleet mix entry: " + part);
    if (c2 != std::string::npos) {
      const std::string w = Trim(part.substr(c2 + 1));
      char* rest = nullptr;
      e.weight = std::strtod(w.c_str(), &rest);
      Expects(rest != nullptr && *rest == '\0' && std::isfinite(e.weight) &&
                  e.weight > 0.0,
              "fleet mix weight must be a positive number: " + part);
    }
    mix.push_back(std::move(e));
  }
  Expects(!mix.empty(), "fleet mix spec has no entries");
  return mix;
}

std::vector<FleetMixEntry> DefaultFleetMix(models::SuiteVersion version) {
  const std::vector<soc::ChipsetDesc> catalog =
      version == models::SuiteVersion::kV0_7 ? soc::CatalogV07()
                                             : soc::CatalogV10();
  std::vector<FleetMixEntry> mix;
  for (const soc::ChipsetDesc& chipset : catalog)
    for (const models::BenchmarkEntry& e : models::SuiteFor(version))
      mix.push_back(FleetMixEntry{chipset.name, e.id, 1.0});
  return mix;
}

std::string FormatFleetMix(const std::vector<FleetMixEntry>& mix) {
  std::string out;
  for (const FleetMixEntry& e : mix) {
    if (!out.empty()) out += ';';
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", e.weight);
    out += e.chipset + ':' + e.task_id + ':' + buf;
  }
  return out;
}

std::vector<std::size_t> AssignShardCounts(
    const std::vector<FleetMixEntry>& mix, std::size_t shard_count) {
  Expects(!mix.empty(), "fleet mix is empty");
  Expects(shard_count > 0, "fleet needs at least one shard");
  double total = 0.0;
  for (const FleetMixEntry& e : mix) {
    Expects(std::isfinite(e.weight) && e.weight > 0.0,
            "fleet mix weight must be positive");
    total += e.weight;
  }

  // Largest remainder: floors first, then hand out the leftover shards in
  // decreasing fractional-part order (ties toward the earlier entry).
  std::vector<std::size_t> counts(mix.size(), 0);
  std::vector<double> frac(mix.size(), 0.0);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    const double exact =
        static_cast<double>(shard_count) * mix[i].weight / total;
    counts[i] = static_cast<std::size_t>(exact);
    frac[i] = exact - static_cast<double>(counts[i]);
    assigned += counts[i];
  }
  std::vector<std::size_t> order(mix.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return frac[a] > frac[b];
  });
  for (std::size_t k = 0; assigned < shard_count; ++k)
    ++counts[order[k % order.size()]], ++assigned;
  return counts;
}

std::vector<ResolvedMixEntry> ResolveMix(
    const std::vector<FleetMixEntry>& mix, models::SuiteVersion version) {
  const std::vector<soc::ChipsetDesc> catalog =
      version == models::SuiteVersion::kV0_7 ? soc::CatalogV07()
                                             : soc::CatalogV10();
  const std::vector<models::BenchmarkEntry> suite = models::SuiteFor(version);

  std::vector<ResolvedMixEntry> out;
  out.reserve(mix.size());
  for (const FleetMixEntry& e : mix) {
    ResolvedMixEntry r;
    r.spec = e;
    const auto chip = std::find_if(
        catalog.begin(), catalog.end(),
        [&](const soc::ChipsetDesc& c) { return c.name == e.chipset; });
    Expects(chip != catalog.end(), "chipset not in the " +
                                       std::string(ToString(version)) +
                                       " catalog: " + e.chipset);
    const auto entry = std::find_if(
        suite.begin(), suite.end(),
        [&](const models::BenchmarkEntry& s) { return s.id == e.task_id; });
    Expects(entry != suite.end(), "task not in the " +
                                      std::string(ToString(version)) +
                                      " suite: " + e.task_id);
    r.chipset = *chip;
    r.entry = *entry;
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace mlpm::fleet
