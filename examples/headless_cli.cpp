// The headless native command-line application (paper §4.3: "for laptops,
// submitters can build a native command-line application. The LoadGen
// integrates this application... The only difference is the absence of a
// graphical user interface").
//
// Usage:
//   headless_cli [--chipset NAME] [--version v0.7|v1.0]
//                [--scenario single_stream|offline|server|multi_stream]
//                [--task all|ic|od|is|nlp] [--accuracy] [--e2e]
//                [--cooldown SECONDS] [--csv FILE] [--log FILE]
//                [--faults CRASH_PROB] [--fault-seed N] [--threads N]
//                [--kernel-isa auto|scalar|avx2|neon]
//                [--lint off|report|strict] [--transform]
//                [--tile auto|off|N]
//                [--trace FILE] [--profile]
//                [--journal FILE] [--resume FILE]
//
// Examples:
//   headless_cli --chipset "Core i7-11375H" --version v1.0
//   headless_cli --chipset "Exynos 2100" --task is --accuracy
//   headless_cli --chipset "Dimensity 1100" --performance-only --faults 0.9
//   headless_cli --trace run.trace.json --profile   # open in ui.perfetto.dev
//   headless_cli --journal run.mjl        # crash-safe WAL (DESIGN.md §12)
//   headless_cli --resume run.mjl         # replay finished tasks, run rest
//
// Fleet serving mode (DESIGN.md §16): N device-simulator shards, each a
// LoadGen Server-scenario instance, sharing prepared models per distinct
// (chipset, task) config:
//   headless_cli --fleet 64
//   headless_cli --fleet 16 --fleet-mix "Snapdragon 865+:ic:3;Exynos 990:qa:1"
//   headless_cli --fleet 64 --fleet-qps 200 --fleet-slo-ms 50 --fleet-depth 8
//   headless_cli --fleet 64 --journal fleet.mjl   # kill -INT, then --resume
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "common/check.h"
#include "fleet/fleet.h"
#include "fleet/report.h"
#include "harness/app.h"
#include "harness/export.h"
#include "harness/report.h"
#include "obs/aggregate.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace mlpm;

// SIGINT/SIGTERM request a graceful stop: the run loop checks this flag
// between suite tasks, journals everything finished so far, and emits a
// partial report with an explicit "interrupted" run state (DESIGN.md §12).
// std::sig_atomic_t keeps the handler async-signal-safe.
volatile std::sig_atomic_t g_interrupted = 0;

extern "C" void HandleStopSignal(int /*signum*/) { g_interrupted = 1; }

struct CliOptions {
  std::string chipset = "Core i7-11375H";
  models::SuiteVersion version = models::SuiteVersion::kV1_0;
  std::optional<models::TaskType> only_task;
  bool accuracy = true;
  bool end_to_end = false;
  double cooldown_s = 60.0;
  std::string csv_path;
  std::string log_path;
  // Fault injection: driver-crash probability per accelerated inference
  // (<= 0 disables; see soc/faults.h for the full plan vocabulary).
  double crash_probability = 0.0;
  std::uint64_t fault_seed = 0x464C54;
  // Accuracy-phase worker threads (defaults to hardware concurrency when
  // the flag is absent; an explicit --threads value must be >= 1).
  // Results are bit-identical for any value.
  int threads = 0;
  // Kernel table for the accuracy-phase executors: auto picks the best the
  // host supports (AVX2 > NEON > scalar); scalar forces the portable
  // bit-exact kernels; a forced ISA the host lacks falls back to scalar
  // with a RUN007 lint diagnostic.
  infer::kernels::KernelIsa kernel_isa = infer::kernels::KernelIsa::kAuto;
  harness::LintMode lint = harness::LintMode::kReport;
  // Verified graph-transform stage (DESIGN.md §14): accuracy executors run
  // the rewrite pipeline's invariant-checked output; falls back to the
  // untransformed graph on any equivalence-probe disagreement.
  bool transform = false;
  // Tiled, fused pipeline execution (DESIGN.md §15): --tile auto sizes row
  // bands against the cache budget, --tile N forces N output rows per tile.
  // Bit-identical results; changes the memory/locality profile only.
  infer::TileOptions tiling;
  // Observability (DESIGN.md §11): --trace writes a Chrome trace_event JSON
  // (open with ui.perfetto.dev or chrome://tracing); --profile appends the
  // per-op aggregate tables + process metrics to the report and CSV.
  std::string trace_path;
  bool profile = false;
  // Crash safety (DESIGN.md §12): --journal appends one fsync'd record per
  // completed task; --resume replays intact records from FILE (and keeps
  // journaling to it) so an interrupted run finishes where it left off.
  std::string journal_path;
  bool resume = false;
  // Fleet serving mode (DESIGN.md §16): --fleet N runs N sharded device
  // simulators under per-shard Server-scenario LoadGens.  0 = off.
  std::size_t fleet_shards = 0;
  std::string fleet_mix;       // "<chipset>:<task>[:<weight>];..."
  double fleet_qps = 0.0;      // per-shard Poisson rate (0 = default)
  double fleet_slo_ms = 0.0;   // per-shard latency bound (0 = default)
  std::size_t fleet_queries = 0;  // offered queries per shard (0 = default)
  std::size_t fleet_depth = 0;    // admission queue depth (0 = unbounded)
  std::size_t fleet_workers = 0;  // worker threads (0 = hw concurrency)
  // --accuracy was passed explicitly (fleet accuracy is opt-in; the
  // submission path keeps its accuracy-on default).
  bool accuracy_explicit = false;
};

// Strict positive-integer parse for --threads: rejects empty input, trailing
// garbage ("4x"), zero and negatives, each with a targeted message.
std::optional<int> ParseThreadCount(const std::string& s) {
  if (s.empty()) {
    std::fprintf(stderr, "--threads: missing value\n");
    return std::nullopt;
  }
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "--threads: '%s' is not a number\n", s.c_str());
    return std::nullopt;
  }
  if (v < 1 || v > 4096) {
    std::fprintf(stderr,
                 "--threads: %ld is out of range (need 1..4096; omit the "
                 "flag for hardware concurrency)\n",
                 v);
    return std::nullopt;
  }
  return static_cast<int>(v);
}

std::optional<CliOptions> Parse(int argc, char** argv) {
  CliOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) return {};
      return argv[++i];
    };
    if (arg == "--chipset") {
      o.chipset = value();
    } else if (arg == "--version") {
      const std::string v = value();
      if (v == "v0.7") o.version = models::SuiteVersion::kV0_7;
      else if (v == "v1.0") o.version = models::SuiteVersion::kV1_0;
      else return std::nullopt;
    } else if (arg == "--task") {
      const std::string t = value();
      if (t == "ic") o.only_task = models::TaskType::kImageClassification;
      else if (t == "od") o.only_task = models::TaskType::kObjectDetection;
      else if (t == "is") o.only_task = models::TaskType::kImageSegmentation;
      else if (t == "nlp") o.only_task = models::TaskType::kQuestionAnswering;
      else if (t != "all") return std::nullopt;
    } else if (arg == "--accuracy") {
      o.accuracy = true;
      o.accuracy_explicit = true;
    } else if (arg == "--performance-only") {
      o.accuracy = false;
    } else if (arg == "--e2e") {
      o.end_to_end = true;
    } else if (arg == "--cooldown") {
      o.cooldown_s = std::atof(value().c_str());
    } else if (arg == "--csv") {
      o.csv_path = value();
    } else if (arg == "--log") {
      o.log_path = value();
    } else if (arg == "--faults") {
      o.crash_probability = std::atof(value().c_str());
      if (o.crash_probability <= 0.0 || o.crash_probability > 1.0)
        return std::nullopt;
    } else if (arg == "--fault-seed") {
      o.fault_seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--threads") {
      const std::optional<int> t = ParseThreadCount(value());
      if (!t) return std::nullopt;
      o.threads = *t;
    } else if (arg == "--kernel-isa") {
      const std::string name = value();
      const std::optional<infer::kernels::KernelIsa> isa =
          infer::kernels::ParseKernelIsa(name);
      if (!isa) {
        std::fprintf(stderr,
                     "--kernel-isa: unknown ISA '%s' (use auto, scalar, "
                     "avx2 or neon)\n",
                     name.c_str());
        return std::nullopt;
      }
      o.kernel_isa = *isa;
    } else if (arg == "--lint") {
      const std::string m = value();
      if (m == "off") o.lint = harness::LintMode::kOff;
      else if (m == "report") o.lint = harness::LintMode::kReport;
      else if (m == "strict") o.lint = harness::LintMode::kStrict;
      else return std::nullopt;
    } else if (arg == "--transform") {
      o.transform = true;
    } else if (arg == "--tile") {
      const std::string t = value();
      if (t == "off") {
        o.tiling.enabled = false;
      } else if (t == "auto") {
        o.tiling.enabled = true;
        o.tiling.rows = -1;
      } else {
        char* end = nullptr;
        errno = 0;
        const long long rows = std::strtoll(t.c_str(), &end, 10);
        if (t.empty() || end == t.c_str() || *end != '\0' ||
            errno == ERANGE || rows < 1) {
          std::fprintf(stderr,
                       "--tile: '%s' is not a tile height (use auto, off, "
                       "or a positive row count)\n",
                       t.c_str());
          return std::nullopt;
        }
        o.tiling.enabled = true;
        o.tiling.rows = rows;
      }
    } else if (arg == "--trace") {
      o.trace_path = value();
      if (o.trace_path.empty()) return std::nullopt;
    } else if (arg == "--profile") {
      o.profile = true;
    } else if (arg == "--journal") {
      o.journal_path = value();
      if (o.journal_path.empty()) return std::nullopt;
    } else if (arg == "--resume") {
      o.journal_path = value();
      if (o.journal_path.empty()) return std::nullopt;
      o.resume = true;
    } else if (arg == "--fleet") {
      const long long n = std::strtoll(value().c_str(), nullptr, 10);
      if (n < 1 || n > 65536) {
        std::fprintf(stderr, "--fleet: shard count must be 1..65536\n");
        return std::nullopt;
      }
      o.fleet_shards = static_cast<std::size_t>(n);
    } else if (arg == "--fleet-mix") {
      o.fleet_mix = value();
      if (o.fleet_mix.empty()) return std::nullopt;
    } else if (arg == "--fleet-qps") {
      o.fleet_qps = std::atof(value().c_str());
      if (o.fleet_qps <= 0.0) return std::nullopt;
    } else if (arg == "--fleet-slo-ms") {
      o.fleet_slo_ms = std::atof(value().c_str());
      if (o.fleet_slo_ms <= 0.0) return std::nullopt;
    } else if (arg == "--fleet-queries") {
      const long long n = std::strtoll(value().c_str(), nullptr, 10);
      if (n < 1) return std::nullopt;
      o.fleet_queries = static_cast<std::size_t>(n);
    } else if (arg == "--fleet-depth") {
      const long long n = std::strtoll(value().c_str(), nullptr, 10);
      if (n < 0) return std::nullopt;
      o.fleet_depth = static_cast<std::size_t>(n);
    } else if (arg == "--fleet-workers") {
      const long long n = std::strtoll(value().c_str(), nullptr, 10);
      if (n < 0 || n > 4096) return std::nullopt;
      o.fleet_workers = static_cast<std::size_t>(n);
    } else {
      return std::nullopt;
    }
  }
  return o;
}

// Fleet serving mode: builds FleetOptions from the CLI flags, runs the
// fleet, prints the byte-stable aggregated report, and maps the outcome to
// an exit status (invalid shards -> 1, interrupted -> 130).
int RunFleetMode(const CliOptions& opts) {
  fleet::FleetOptions fo;
  fo.shard_count = opts.fleet_shards;
  fo.version = opts.version;
  fo.workers = opts.fleet_workers;
  fo.accuracy = opts.accuracy_explicit;
  fo.kernel_isa = opts.kernel_isa;
  fo.journal_path = opts.journal_path;
  fo.resume = opts.resume;
  if (!opts.fleet_mix.empty()) fo.mix = fleet::ParseFleetMix(opts.fleet_mix);
  if (opts.fleet_qps > 0.0) fo.settings.server_target_qps = opts.fleet_qps;
  if (opts.fleet_slo_ms > 0.0)
    fo.settings.server_latency_bound = loadgen::Seconds{opts.fleet_slo_ms *
                                                        1e-3};
  if (opts.fleet_queries > 0)
    fo.settings.server_query_count = opts.fleet_queries;
  fo.settings.server_max_queue_depth = opts.fleet_depth;
  if (opts.crash_probability > 0.0) {
    soc::FaultPlan plan;
    plan.seed = opts.fault_seed;
    plan.DriverCrashes(opts.crash_probability);
    fo.fault_plan = std::move(plan);
    fo.settings.query_timeout = loadgen::Seconds{10.0};
  }
  if (!opts.journal_path.empty()) {
    std::signal(SIGINT, HandleStopSignal);
    std::signal(SIGTERM, HandleStopSignal);
    fo.cancel = [] { return g_interrupted != 0; };
  }

  const bool tracing = opts.profile || !opts.trace_path.empty();
  if (tracing) obs::TraceRecorder::Global().Enable();
  const fleet::FleetReport report = fleet::RunFleet(fo);
  if (tracing) obs::TraceRecorder::Global().Disable();

  std::string text = fleet::FormatFleetReport(report);
  if (opts.profile)
    text += "\n" +
            obs::RenderMetricsTable(obs::MetricsRegistry::Global().Snap());
  std::printf("%s", text.c_str());

  if (!opts.trace_path.empty()) {
    std::ofstream trace(opts.trace_path);
    trace << obs::TraceRecorder::Global().ToChromeJson();
    std::printf("wrote %s (Chrome trace; open with ui.perfetto.dev)\n",
                opts.trace_path.c_str());
  }
  if (report.interrupted) {
    std::fprintf(stderr,
                 "interrupted after %zu shard(s); resume with: headless_cli "
                 "--fleet %zu --resume %s\n",
                 report.shards.size(), opts.fleet_shards,
                 opts.journal_path.c_str());
    return 130;
  }
  return report.invalid_count == 0 ? 0 : 1;
}

std::optional<soc::ChipsetDesc> FindChipset(const std::string& name) {
  for (auto catalog : {soc::CatalogV07(), soc::CatalogV10()})
    for (soc::ChipsetDesc& c : catalog)
      if (c.name == name) return c;
  if (name == "Apple A14") return soc::AppleA14();
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<CliOptions> opts = Parse(argc, argv);
  if (!opts) {
    std::fprintf(stderr,
                 "usage: headless_cli [--chipset NAME] [--version v0.7|v1.0]"
                 " [--task all|ic|od|is|nlp]\n"
                 "                    [--accuracy|--performance-only] [--e2e]"
                 " [--cooldown S] [--csv FILE] [--log FILE]\n"
                 "                    [--faults CRASH_PROB] [--fault-seed N]"
                 " [--threads N] [--kernel-isa auto|scalar|avx2|neon]\n"
                 "                    [--lint off|report|strict]"
                 " [--transform] [--tile auto|off|N]\n"
                 "                    [--trace FILE] [--profile]"
                 " [--journal FILE] [--resume FILE]\n"
                 "                    [--fleet N] [--fleet-mix SPEC]"
                 " [--fleet-qps X] [--fleet-slo-ms X]\n"
                 "                    [--fleet-queries N] [--fleet-depth N]"
                 " [--fleet-workers N]\n");
    return 2;
  }
  if (opts->fleet_shards > 0) {
    try {
      return RunFleetMode(*opts);
    } catch (const CheckError& e) {
      std::fprintf(stderr, "fleet: %s\n", e.what());
      return 2;
    }
  }
  const std::optional<soc::ChipsetDesc> chipset = FindChipset(opts->chipset);
  if (!chipset) {
    std::fprintf(stderr, "unknown chipset '%s'; known chipsets:\n",
                 opts->chipset.c_str());
    for (auto catalog : {soc::CatalogV07(), soc::CatalogV10()})
      for (const soc::ChipsetDesc& c : catalog)
        std::fprintf(stderr, "  %s\n", c.name.c_str());
    std::fprintf(stderr, "  Apple A14\n");
    return 2;
  }

  harness::RunOptions run;
  run.run_accuracy = opts->accuracy;
  run.end_to_end = opts->end_to_end;
  run.cooldown_s = opts->cooldown_s;
  run.threads = opts->threads;
  run.kernel_isa = opts->kernel_isa;
  run.lint = opts->lint;
  run.transform = opts->transform;
  run.tiling = opts->tiling;
  run.trace_path = opts->trace_path;
  run.profile = opts->profile;
  run.journal_path = opts->journal_path;
  run.resume = opts->resume;
  if (!opts->journal_path.empty()) {
    std::signal(SIGINT, HandleStopSignal);
    std::signal(SIGTERM, HandleStopSignal);
    run.cancel = [] { return g_interrupted != 0; };
  }
  if (opts->crash_probability > 0.0) {
    soc::FaultPlan plan;
    plan.seed = opts->fault_seed;
    plan.DriverCrashes(opts->crash_probability);
    run.fault_plan = std::move(plan);
    run.performance_settings.query_timeout = loadgen::Seconds{10.0};
  }

  harness::SuiteBundles bundles;
  harness::AppRunOutput out =
      harness::RunMobileApp(*chipset, opts->version, bundles, run);

  // --task filters the displayed rows (the rules still run the full order).
  if (opts->only_task) {
    harness::SubmissionResult filtered;
    filtered.chipset_name = out.result.chipset_name;
    filtered.version = out.result.version;
    filtered.interrupted = out.result.interrupted;
    filtered.resumed_tasks = out.result.resumed_tasks;
    for (harness::TaskRunResult& t : out.result.tasks)
      if (t.entry.task == *opts->only_task)
        filtered.tasks.push_back(std::move(t));
    out.result = std::move(filtered);
    out.report_text = harness::FormatSubmission(out.result);
    // The rebuild above dropped the profiling tables; restore them.
    if (opts->profile) {
      const std::vector<obs::TraceEvent> events =
          obs::TraceRecorder::Global().Snapshot();
      const std::vector<obs::OpAggregate> host =
          obs::AggregateSpans(events, obs::Domain::kHost, "node");
      if (!host.empty())
        out.report_text +=
            "\n" + obs::RenderAggregateTable(host, "executor ops (host)");
      const std::vector<obs::OpAggregate> sim =
          obs::AggregateSpans(events, obs::Domain::kSim, "soc");
      if (!sim.empty())
        out.report_text +=
            "\n" + obs::RenderAggregateTable(sim, "simulated IP steps");
      out.report_text +=
          "\n" + obs::RenderMetricsTable(obs::MetricsRegistry::Global().Snap());
    }
  }

  std::printf("%s\n%s", out.report_text.c_str(), out.checker_text.c_str());

  if (!opts->trace_path.empty()) {
    std::ofstream trace(opts->trace_path);
    trace << obs::TraceRecorder::Global().ToChromeJson();
    std::printf("wrote %s (Chrome trace; open with ui.perfetto.dev)\n",
                opts->trace_path.c_str());
  }
  if (!opts->csv_path.empty()) {
    std::ofstream csv(opts->csv_path);
    csv << harness::ToCsv(out.result);
    if (opts->profile) {
      const std::vector<obs::TraceEvent> events =
          obs::TraceRecorder::Global().Snapshot();
      const std::vector<obs::OpAggregate> host =
          obs::AggregateSpans(events, obs::Domain::kHost, "node");
      if (!host.empty()) csv << "\n" << obs::AggregateCsv(host);
      const std::vector<obs::OpAggregate> sim =
          obs::AggregateSpans(events, obs::Domain::kSim, "soc");
      if (!sim.empty()) csv << "\n" << obs::AggregateCsv(sim);
    }
    std::printf("wrote %s\n", opts->csv_path.c_str());
  }
  if (!opts->log_path.empty() && !out.result.tasks.empty() &&
      out.result.tasks[0].single_stream) {
    std::ofstream log(opts->log_path);
    log << out.result.tasks[0].single_stream->log.Serialize();
    std::printf("wrote %s (unedited LoadGen log, first task)\n",
                opts->log_path.c_str());
  }
  // Conventional "terminated by SIGINT" exit status; the journal already
  // holds every finished task, so a --resume rerun completes the suite.
  if (out.result.interrupted) {
    std::fprintf(stderr,
                 "interrupted after %zu task(s); resume with: headless_cli "
                 "--resume %s\n",
                 out.result.tasks.size(), opts->journal_path.c_str());
    return 130;
  }
  return out.submission_valid ? 0 : 1;
}
