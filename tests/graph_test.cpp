// Unit + property tests for the graph IR: shapes, builder invariants, shape
// inference, structural fingerprints, and cost analysis.
#include <gtest/gtest.h>

#include "graph/cost.h"
#include "graph/graph.h"

namespace mlpm::graph {
namespace {

TEST(TensorShape, ElementsAndAccessors) {
  const TensorShape s({1, 8, 8, 3});
  EXPECT_EQ(s.rank(), 4u);
  EXPECT_EQ(s.elements(), 192);
  EXPECT_EQ(s.batch(), 1);
  EXPECT_EQ(s.height(), 8);
  EXPECT_EQ(s.width(), 8);
  EXPECT_EQ(s.channels(), 3);
}

TEST(TensorShape, RejectsNonPositiveDims) {
  EXPECT_THROW(TensorShape({1, 0, 3}), CheckError);
  EXPECT_THROW(TensorShape({-1}), CheckError);
}

TEST(TensorShape, NhwcAccessorRequiresRank4) {
  const TensorShape s({4, 4});
  EXPECT_THROW((void)s.height(), CheckError);
}

TEST(TensorShape, EqualityAndToString) {
  EXPECT_EQ(TensorShape({2, 3}), TensorShape({2, 3}));
  EXPECT_FALSE(TensorShape({2, 3}) == TensorShape({3, 2}));
  EXPECT_EQ(TensorShape({1, 224, 224, 3}).ToString(), "[1x224x224x3]");
}

// ---- ConvOutDim ----

struct ConvDimCase {
  std::int64_t in;
  int kernel, stride, dilation;
  Padding pad;
  std::int64_t expected;
};

class ConvOutDimTest : public ::testing::TestWithParam<ConvDimCase> {};

TEST_P(ConvOutDimTest, MatchesReference) {
  const ConvDimCase& c = GetParam();
  EXPECT_EQ(ConvOutDim(c.in, c.kernel, c.stride, c.dilation, c.pad),
            c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ConvOutDimTest,
    ::testing::Values(
        ConvDimCase{224, 3, 2, 1, Padding::kSame, 112},
        ConvDimCase{224, 3, 1, 1, Padding::kSame, 224},
        ConvDimCase{300, 3, 2, 1, Padding::kSame, 150},
        ConvDimCase{5, 3, 2, 1, Padding::kSame, 3},
        ConvDimCase{3, 3, 2, 1, Padding::kSame, 2},
        ConvDimCase{2, 3, 2, 1, Padding::kSame, 1},
        ConvDimCase{224, 3, 1, 1, Padding::kValid, 222},
        ConvDimCase{224, 3, 2, 1, Padding::kValid, 111},
        ConvDimCase{7, 7, 1, 1, Padding::kValid, 1},
        ConvDimCase{32, 3, 1, 2, Padding::kValid, 28},
        ConvDimCase{32, 3, 1, 2, Padding::kSame, 32}));

TEST(ConvOutDim, RejectsDegenerateInputs) {
  EXPECT_THROW(ConvOutDim(0, 3, 1, 1, Padding::kSame), CheckError);
  EXPECT_THROW(ConvOutDim(4, 3, 0, 1, Padding::kSame), CheckError);
  EXPECT_THROW(ConvOutDim(2, 3, 1, 1, Padding::kValid), CheckError);
}

// ---- builder ----

TEST(GraphBuilder, SimpleConvNetworkShapes) {
  GraphBuilder b("t");
  TensorId x = b.Input("in", {1, 16, 16, 3});
  x = b.Conv2d(x, 8, 3, 2, Activation::kRelu);
  EXPECT_EQ(b.ShapeOf(x), TensorShape({1, 8, 8, 8}));
  x = b.DepthwiseConv2d(x, 3, 1);
  EXPECT_EQ(b.ShapeOf(x), TensorShape({1, 8, 8, 8}));
  x = b.GlobalAvgPool(x);
  EXPECT_EQ(b.ShapeOf(x), TensorShape({1, 1, 1, 8}));
  x = b.Reshape(x, {1, 8});
  x = b.FullyConnected(x, 4);
  EXPECT_EQ(b.ShapeOf(x), TensorShape({1, 4}));
  b.MarkOutput(x);
  const Graph g = std::move(b).Build();
  EXPECT_EQ(g.input_ids().size(), 1u);
  EXPECT_EQ(g.output_ids().size(), 1u);
}

TEST(GraphBuilder, ConvRegistersWeightAndBias) {
  GraphBuilder b("t");
  TensorId x = b.Input("in", {1, 4, 4, 3});
  b.MarkOutput(b.Conv2d(x, 8, 3, 1, Activation::kNone, Padding::kSame, 1,
                        "c"));
  const Graph g = std::move(b).Build();
  // conv weight [8,3,3,3] + bias [8] = 224.
  EXPECT_EQ(g.ParameterCount(), 8 * 3 * 3 * 3 + 8);
}

TEST(GraphBuilder, AddRequiresEqualShapes) {
  GraphBuilder b("t");
  TensorId x = b.Input("a", {1, 4, 4, 3});
  TensorId y = b.Input("b", {1, 4, 4, 2});
  EXPECT_THROW((void)b.Add(x, y), CheckError);
}

TEST(GraphBuilder, ResidualAddWorks) {
  GraphBuilder b("t");
  TensorId x = b.Input("a", {1, 4, 4, 3});
  TensorId y = b.Conv2d(x, 3, 3, 1);
  EXPECT_NO_THROW(b.MarkOutput(b.Add(x, y)));
}

TEST(GraphBuilder, ConcatShapes) {
  GraphBuilder b("t");
  TensorId x = b.Input("a", {1, 4, 4, 3});
  TensorId y = b.Input("b", {1, 4, 4, 5});
  TensorId z = b.Concat({x, y}, -1);
  EXPECT_EQ(b.ShapeOf(z), TensorShape({1, 4, 4, 8}));
}

TEST(GraphBuilder, ConcatAxisZero) {
  GraphBuilder b("t");
  TensorId x = b.Input("a", {3, 4});
  TensorId y = b.Input("b", {5, 4});
  EXPECT_EQ(b.ShapeOf(b.Concat({x, y}, 0)), TensorShape({8, 4}));
}

TEST(GraphBuilder, ConcatRejectsMismatchedNonAxisDims) {
  GraphBuilder b("t");
  TensorId x = b.Input("a", {1, 4, 4, 3});
  TensorId y = b.Input("b", {1, 5, 4, 3});
  EXPECT_THROW((void)b.Concat({x, y}, -1), CheckError);
}

TEST(GraphBuilder, ConcatRejectsBadAxis) {
  GraphBuilder b("t");
  TensorId x = b.Input("a", {1, 4});
  EXPECT_THROW((void)b.Concat({x}, 2), CheckError);
  EXPECT_THROW((void)b.Concat({x}, -3), CheckError);
}

TEST(GraphBuilder, ReshapeMustPreserveElements) {
  GraphBuilder b("t");
  TensorId x = b.Input("a", {1, 4, 4, 3});
  EXPECT_NO_THROW((void)b.Reshape(x, {48, 1}));
  EXPECT_THROW((void)b.Reshape(x, {47}), CheckError);
}

TEST(GraphBuilder, AttentionRequiresDivisibleHeads) {
  GraphBuilder b("t");
  TensorId x = b.Input("a", {8, 64});
  EXPECT_NO_THROW((void)b.MultiHeadAttention(x, 4, 16));
  EXPECT_THROW((void)b.MultiHeadAttention(x, 4, 15), CheckError);
}

TEST(GraphBuilder, EmbeddingShape) {
  GraphBuilder b("t");
  TensorId ids = b.Input("ids", {12});
  TensorId e = b.Embedding(ids, 100, 16);
  EXPECT_EQ(b.ShapeOf(e), TensorShape({12, 16}));
}

TEST(GraphBuilder, BuildRequiresInputsAndOutputs) {
  GraphBuilder b1("t");
  EXPECT_THROW((void)std::move(b1).Build(), CheckError);
  GraphBuilder b2("t");
  (void)b2.Input("a", {1});
  EXPECT_THROW((void)std::move(b2).Build(), CheckError);
}

TEST(GraphBuilder, ResizeBilinearShape) {
  GraphBuilder b("t");
  TensorId x = b.Input("a", {1, 4, 4, 3});
  EXPECT_EQ(b.ShapeOf(b.ResizeBilinear(x, 16, 16)),
            TensorShape({1, 16, 16, 3}));
}

TEST(GraphBuilder, PoolShapes) {
  GraphBuilder b("t");
  TensorId x = b.Input("a", {1, 8, 8, 4});
  EXPECT_EQ(b.ShapeOf(b.MaxPool(x, 2, 2)), TensorShape({1, 4, 4, 4}));
  EXPECT_EQ(b.ShapeOf(b.AvgPool(x, 2, 2)), TensorShape({1, 4, 4, 4}));
}

// ---- fingerprint ----

Graph TwoLayerNet(std::int64_t mid) {
  GraphBuilder b("t");
  TensorId x = b.Input("in", {1, 8, 8, 3});
  x = b.Conv2d(x, mid, 3, 1, Activation::kRelu);
  x = b.Conv2d(x, 4, 1, 1);
  b.MarkOutput(x);
  return std::move(b).Build();
}

TEST(Fingerprint, StableAcrossIdenticalBuilds) {
  EXPECT_EQ(TwoLayerNet(8).StructuralFingerprint(),
            TwoLayerNet(8).StructuralFingerprint());
}

TEST(Fingerprint, DetectsChannelPruning) {
  // Pruning channels (the banned optimization, §5.1) changes the print.
  EXPECT_NE(TwoLayerNet(8).StructuralFingerprint(),
            TwoLayerNet(6).StructuralFingerprint());
}

TEST(Fingerprint, DetectsDroppedNode) {
  GraphBuilder b("t");
  TensorId x = b.Input("in", {1, 8, 8, 3});
  x = b.Conv2d(x, 4, 1, 1);
  b.MarkOutput(x);
  const Graph one = std::move(b).Build();
  EXPECT_NE(one.StructuralFingerprint(),
            TwoLayerNet(8).StructuralFingerprint());
}

// ---- cost ----

TEST(Cost, ConvMacsMatchFormula) {
  GraphBuilder b("t");
  TensorId x = b.Input("in", {1, 8, 8, 3});
  x = b.Conv2d(x, 16, 3, 1);
  b.MarkOutput(x);
  const Graph g = std::move(b).Build();
  const GraphCost c = AnalyzeGraph(g);
  // out 8*8*16 elems, each 3*3*3 MACs.
  EXPECT_EQ(c.total_macs, 8 * 8 * 16 * 27);
}

TEST(Cost, DepthwiseMacsMatchFormula) {
  GraphBuilder b("t");
  TensorId x = b.Input("in", {1, 8, 8, 6});
  x = b.DepthwiseConv2d(x, 3, 1);
  b.MarkOutput(x);
  const GraphCost c = AnalyzeGraph(std::move(b).Build());
  EXPECT_EQ(c.total_macs, 8 * 8 * 6 * 9);
}

TEST(Cost, FullyConnectedMacs) {
  GraphBuilder b("t");
  TensorId x = b.Input("in", {1, 32});
  x = b.FullyConnected(x, 10);
  b.MarkOutput(x);
  EXPECT_EQ(AnalyzeGraph(std::move(b).Build()).total_macs, 320);
}

TEST(Cost, AttentionMacsScaleQuadraticallyInSeqLen) {
  const auto macs_for = [](std::int64_t seq) {
    GraphBuilder b("t");
    TensorId x = b.Input("in", {seq, 32});
    x = b.MultiHeadAttention(x, 2, 16);
    b.MarkOutput(x);
    return AnalyzeGraph(std::move(b).Build()).total_macs;
  };
  const std::int64_t m8 = macs_for(8), m16 = macs_for(16);
  // Projections are linear, scores quadratic: ratio must exceed 2x.
  EXPECT_GT(m16, 2 * m8);
}

TEST(Cost, DilatedFlagPropagates) {
  GraphBuilder b("t");
  TensorId x = b.Input("in", {1, 8, 8, 3});
  x = b.Conv2d(x, 4, 3, 1, Activation::kNone, Padding::kSame, 2);
  b.MarkOutput(x);
  const Graph g = std::move(b).Build();
  const NodeCost nc = AnalyzeNode(g, g.nodes().back());
  EXPECT_TRUE(nc.dilated);
}

TEST(Cost, MemoryOpsHaveZeroMacs) {
  GraphBuilder b("t");
  TensorId x = b.Input("in", {1, 4, 4, 2});
  x = b.Reshape(x, {32});
  b.MarkOutput(x);
  const Graph g = std::move(b).Build();
  EXPECT_EQ(AnalyzeNode(g, g.nodes().back()).macs, 0);
}

TEST(Cost, TotalBytesScalesWithDtype) {
  NodeCost c;
  c.weight_elems = 10;
  c.input_elems = 20;
  c.output_elems = 30;
  EXPECT_EQ(c.TotalBytes(DataType::kInt8), 60);
  EXPECT_EQ(c.TotalBytes(DataType::kFloat16), 120);
  EXPECT_EQ(c.TotalBytes(DataType::kFloat32), 240);
}

TEST(OpClass, Classification) {
  EXPECT_EQ(ClassOf(OpType::kConv2d), OpClass::kConvDense);
  EXPECT_EQ(ClassOf(OpType::kDepthwiseConv2d), OpClass::kConvDepthwise);
  EXPECT_EQ(ClassOf(OpType::kFullyConnected), OpClass::kGemm);
  EXPECT_EQ(ClassOf(OpType::kMultiHeadAttention), OpClass::kAttention);
  EXPECT_EQ(ClassOf(OpType::kReshape), OpClass::kMemory);
  EXPECT_EQ(ClassOf(OpType::kSoftmax), OpClass::kElementwise);
}

}  // namespace
}  // namespace mlpm::graph
