# Empty dependencies file for headless_cli.
# This may be replaced when dependencies are built.
