#include "infer/int8_gemm.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mlpm::infer {

void QuantizeU8(std::span<const float> src, float scale,
                std::int32_t zero_point, std::span<std::uint8_t> dst) {
  Expects(src.size() == dst.size(), "quantize size mismatch");
  Expects(scale > 0.0f, "quantize scale must be positive");
  const float inv = 1.0f / scale;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const float q =
        std::round(src[i] * inv) + static_cast<float>(zero_point);
    dst[i] = static_cast<std::uint8_t>(std::clamp(q, 0.0f, 255.0f));
  }
}

float DequantizeAcc(std::int32_t acc, float lhs_scale, float rhs_scale) {
  return static_cast<float>(acc) * lhs_scale * rhs_scale;
}

void GemmU8U8I32(std::span<const std::uint8_t> a, std::int32_t a_zp,
                 std::span<const std::uint8_t> b_t, std::int32_t b_zp,
                 std::size_t m, std::size_t n, std::size_t k,
                 std::span<std::int32_t> c) {
  Expects(a.size() == m * k, "A size mismatch");
  Expects(b_t.size() == n * k, "B size mismatch");
  Expects(c.size() == m * n, "C size mismatch");
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint8_t* arow = a.data() + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint8_t* brow = b_t.data() + j * k;
      std::int32_t acc = 0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += (static_cast<std::int32_t>(arow[kk]) - a_zp) *
               (static_cast<std::int32_t>(brow[kk]) - b_zp);
      }
      c[i * n + j] = acc;
    }
  }
}

void GemmF32(std::span<const float> a, std::span<const float> b_t,
             std::size_t m, std::size_t n, std::size_t k,
             std::span<float> c) {
  Expects(a.size() == m * k, "A size mismatch");
  Expects(b_t.size() == n * k, "B size mismatch");
  Expects(c.size() == m * n, "C size mismatch");
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b_t.data() + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      c[i * n + j] = acc;
    }
  }
}

}  // namespace mlpm::infer
