// Fleet serving mode (DESIGN.md §16): prepared-model cache semantics,
// seeded determinism of the aggregated report, query-accounting
// conformance under overload, equivalence with the legacy single-stream
// path, and crash-safe journal resume.  Also pins loadgen::FindMaxServerQps
// bisection behavior (monotone convergence, errored probes, the shed
// bound).
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "backends/vendor_policy.h"
#include "common/check.h"
#include "core/dataset_qsl.h"
#include "core/loadgen.h"
#include "datasets/task_dataset.h"
#include "fleet/fleet.h"
#include "fleet/journal.h"
#include "fleet/mix.h"
#include "fleet/report.h"
#include "harness/run_session.h"
#include "infer/prepared_cache.h"
#include "models/zoo.h"
#include "soc/chipset.h"

namespace mlpm {
namespace {

// ---------------------------------------------------------------------------
// PreparedCache (unit)

TEST(PreparedCache, BuildsOnceUnderConcurrency) {
  infer::PreparedCache<int> cache;
  std::atomic<int> built{0};
  constexpr int kThreads = 16;
  std::vector<std::shared_ptr<const int>> held(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
      threads.emplace_back([&, t] {
        held[static_cast<std::size_t>(t)] = cache.Acquire("shared", [&] {
          built.fetch_add(1);
          return 42;
        });
      });
    for (std::thread& th : threads) th.join();
  }
  EXPECT_EQ(built.load(), 1);
  EXPECT_EQ(cache.builds(), 1u);
  EXPECT_EQ(cache.hits(), static_cast<std::uint64_t>(kThreads - 1));
  for (const auto& p : held) {
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, 42);
  }
  EXPECT_EQ(cache.UseCount("shared"), static_cast<std::size_t>(kThreads));
}

TEST(PreparedCache, RefcountTracksHoldersAndEvictionSparesThem) {
  infer::PreparedCache<std::string> cache;
  auto a = cache.Acquire("k", [] { return std::string("v"); });
  EXPECT_EQ(cache.UseCount("k"), 1u);
  auto b = a;
  EXPECT_EQ(cache.UseCount("k"), 2u);

  // A held entry survives eviction; releasing every holder frees it.
  EXPECT_EQ(cache.EvictUnused(), 0u);
  EXPECT_TRUE(cache.Contains("k"));
  a.reset();
  b.reset();
  EXPECT_EQ(cache.UseCount("k"), 0u);
  EXPECT_EQ(cache.EvictUnused(), 1u);
  EXPECT_FALSE(cache.Contains("k"));

  // Re-acquire after eviction is a fresh build, not a stale hit.
  const std::uint64_t builds_before = cache.builds();
  auto c = cache.Acquire("k", [] { return std::string("v2"); });
  EXPECT_EQ(*c, "v2");
  EXPECT_EQ(cache.builds(), builds_before + 1);
}

TEST(PreparedCache, DistinctKeysBuildIndependently) {
  infer::PreparedCache<int> cache;
  auto a = cache.Acquire("a", [] { return 1; });
  auto b = cache.Acquire("b", [] { return 2; });
  EXPECT_EQ(cache.builds(), 2u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.UseCount("a"), 1u);
  EXPECT_EQ(cache.UseCount("b"), 1u);
}

TEST(PreparedCache, FailedBuildCachesNothing) {
  infer::PreparedCache<int> cache;
  EXPECT_THROW(
      {
        auto p = cache.Acquire("k", []() -> int {
          throw CheckError("build exploded");
        });
      },
      CheckError);
  EXPECT_FALSE(cache.Contains("k"));
  EXPECT_EQ(cache.builds(), 0u);
  auto p = cache.Acquire("k", [] { return 7; });
  EXPECT_EQ(*p, 7);
  EXPECT_EQ(cache.builds(), 1u);
}

// ---------------------------------------------------------------------------
// Fleet determinism + sharing (property)

fleet::FleetOptions SmallFleet(std::size_t shards) {
  fleet::FleetOptions fo;
  fo.shard_count = shards;
  fo.settings.server_query_count = 256;
  fo.settings.server_max_queue_depth = 64;
  fo.settings.server_max_shed_fraction = 1.0;
  return fo;
}

TEST(Fleet, SameSeedSixtyFourShardsIsByteIdentical) {
  const fleet::FleetOptions fo = SmallFleet(64);
  const fleet::FleetReport a = fleet::RunFleet(fo);
  const fleet::FleetReport b = fleet::RunFleet(fo);
  EXPECT_EQ(fleet::FormatFleetReport(a), fleet::FormatFleetReport(b));
  EXPECT_EQ(a.shards.size(), 64u);
  EXPECT_FALSE(a.interrupted);
}

TEST(Fleet, ReportInvariantUnderWorkerCount) {
  fleet::FleetOptions fo = SmallFleet(16);
  fo.workers = 1;
  const std::string serial = fleet::FormatFleetReport(fleet::RunFleet(fo));
  fo.workers = 4;
  const std::string parallel = fleet::FormatFleetReport(fleet::RunFleet(fo));
  EXPECT_EQ(serial, parallel);
}

TEST(Fleet, DifferentSeedsDiverge) {
  fleet::FleetOptions fo = SmallFleet(8);
  const std::string a = fleet::FormatFleetReport(fleet::RunFleet(fo));
  fo.settings.seed = fo.settings.seed + 1;
  const std::string b = fleet::FormatFleetReport(fleet::RunFleet(fo));
  EXPECT_NE(a, b);
}

TEST(Fleet, SharesPreparedModelsAcrossShardsOfOneConfig) {
  const fleet::FleetReport r = fleet::RunFleet(SmallFleet(64));
  // Default v1.0 mix: full catalog x suite tasks, far fewer configs than
  // shards — and exactly one build per distinct config.
  EXPECT_GT(r.shard_count, r.distinct_configs);
  EXPECT_EQ(r.prepared_models_built, r.distinct_configs);
}

// ---------------------------------------------------------------------------
// Query-accounting conformance under 2x overload (conformance)

TEST(Fleet, OverloadAccountingIdentityHolds) {
  fleet::FleetOptions fo;
  fo.shard_count = 4;
  fo.mix = fleet::ParseFleetMix("Dimensity 1100:ic");
  fo.settings.server_query_count = 512;
  // Far past any mobile SoC's single-stream service rate: admission
  // control must shed, and the identity has to hold anyway.
  fo.settings.server_target_qps = 2000.0;
  fo.settings.server_max_queue_depth = 8;
  fo.settings.server_max_shed_fraction = 1.0;
  fo.settings.query_timeout = loadgen::Seconds{0.200};

  const fleet::FleetReport r = fleet::RunFleet(fo);
  ASSERT_EQ(r.shards.size(), 4u);
  std::size_t total_shed = 0;
  for (const fleet::ShardResult& s : r.shards) {
    const loadgen::TestResult& t = s.result;
    // Every offered query is either issued or shed...
    EXPECT_EQ(t.issued_count + t.shed_count,
              fo.settings.server_query_count)
        << "shard " << s.shard_id;
    // ...and every issued query resolves exactly once.
    EXPECT_EQ(t.issued_count, t.sample_count + t.timed_out_count +
                                  t.dropped_count + t.rejected_count)
        << "shard " << s.shard_id;
    total_shed += t.shed_count;
  }
  EXPECT_GT(total_shed, 0u) << "2x overload should trip admission control";
  EXPECT_EQ(r.offered, r.issued + r.shed);
  EXPECT_EQ(r.issued,
            r.completed + r.timed_out + r.dropped + r.rejected);
}

// ---------------------------------------------------------------------------
// Fleet path vs legacy single-stream path (property)

// Mirrors the fleet's internal performance-only stub QSL so the oracle run
// draws sample indices from an identically-sized library.
class OracleStubDataset final : public datasets::TaskDataset {
 public:
  [[nodiscard]] std::size_t size() const override { return 8; }
  [[nodiscard]] std::vector<infer::Tensor> InputsFor(
      std::size_t) const override {
    std::vector<infer::Tensor> v;
    v.emplace_back(graph::TensorShape({1}));
    return v;
  }
  [[nodiscard]] double ScoreOutputs(
      std::span<const std::vector<infer::Tensor>>) const override {
    return 0.0;
  }
  [[nodiscard]] std::string_view metric_name() const override {
    return "none";
  }
  [[nodiscard]] std::vector<infer::Tensor> CalibrationInputsFor(
      std::size_t index) const override {
    return InputsFor(index);
  }
};

TEST(Fleet, SingleShardMatchesLegacySingleStreamPath) {
  const models::SuiteVersion version = models::SuiteVersion::kV1_0;
  const std::string chipset_name = "Dimensity 1100";

  fleet::FleetOptions fo;
  fo.shard_count = 1;
  fo.version = version;
  fo.mix = fleet::ParseFleetMix(chipset_name + ":ic");
  fo.settings.scenario = loadgen::TestScenario::kSingleStream;
  fo.settings.min_query_count = 256;
  fo.settings.min_duration = loadgen::Seconds{1.0};
  fo.split_seed_per_shard = false;  // oracle uses the same seed verbatim
  const fleet::FleetReport r = fleet::RunFleet(fo);
  ASSERT_EQ(r.shards.size(), 1u);
  const loadgen::TestResult& via_fleet = r.shards[0].result;

  // Legacy path: same chipset, task, graph, settings and seed on a fresh
  // simulator — per-query latencies must agree exactly.
  soc::ChipsetDesc chipset;
  for (const soc::ChipsetDesc& c : soc::CatalogV10())
    if (c.name == chipset_name) chipset = c;
  ASSERT_EQ(chipset.name, chipset_name);
  models::BenchmarkEntry entry;
  for (const models::BenchmarkEntry& e : models::SuiteFor(version))
    if (e.task == models::TaskType::kImageClassification) entry = e;
  const backends::SubmissionConfig config =
      backends::GetSubmission(chipset, entry.task, version);
  const graph::Graph full =
      models::BuildReferenceGraph(entry, version, models::ModelScale::kFull);
  const OracleStubDataset stub;
  const loadgen::TestResult oracle = harness::RunSingleStreamPerformance(
      chipset, config, full, stub, fo.settings);

  ASSERT_EQ(via_fleet.latencies_s.size(), oracle.latencies_s.size());
  for (std::size_t i = 0; i < oracle.latencies_s.size(); ++i)
    EXPECT_DOUBLE_EQ(via_fleet.latencies_s[i], oracle.latencies_s[i])
        << "query " << i;
  EXPECT_DOUBLE_EQ(via_fleet.throughput_sps, oracle.throughput_sps);
  EXPECT_DOUBLE_EQ(via_fleet.percentile_latency_s,
                   oracle.percentile_latency_s);
  EXPECT_EQ(via_fleet.sample_count, oracle.sample_count);
}

TEST(Fleet, AccuracyPlaneMatchesTaskBundleScores) {
  const models::SuiteVersion version = models::SuiteVersion::kV1_0;
  fleet::FleetOptions fo;
  fo.shard_count = 2;  // two shards, one config: scored once, stamped twice
  fo.mix = fleet::ParseFleetMix("Dimensity 1100:ic");
  fo.settings.server_query_count = 128;
  fo.accuracy = true;
  const fleet::FleetReport r = fleet::RunFleet(fo);
  ASSERT_EQ(r.shards.size(), 2u);
  EXPECT_GT(r.shards[0].accuracy, 0.0);
  EXPECT_EQ(r.shards[0].accuracy, r.shards[1].accuracy);
  EXPECT_EQ(r.shards[0].ratio_to_fp32, r.shards[1].ratio_to_fp32);

  // Oracle: the same scores the harness accuracy plane computes.
  models::BenchmarkEntry entry;
  for (const models::BenchmarkEntry& e : models::SuiteFor(version))
    if (e.task == models::TaskType::kImageClassification) entry = e;
  harness::SuiteBundles bundles;
  const harness::TaskBundle& bundle = bundles.Get(entry, version);
  const harness::TaskBundle::PreparedModel prepared =
      bundle.Prepare(infer::NumericsMode::kInt8, false);
  ASSERT_NE(prepared.executor, nullptr);
  const double accuracy = bundle.ScoreAccuracy(*prepared.executor, nullptr);
  const double fp32 = bundle.Fp32Score(nullptr);
  EXPECT_DOUBLE_EQ(r.shards[0].accuracy, accuracy);
  EXPECT_DOUBLE_EQ(r.shards[0].fp32_reference, fp32);
  EXPECT_EQ(r.shards[0].quality_passed,
            fp32 > 0 && accuracy / fp32 >= entry.quality_target);
}

// ---------------------------------------------------------------------------
// Journal kill-and-resume (property)

TEST(Fleet, KillAndResumeReplaysIntactShardsToIdenticalReport) {
  const std::string path = testing::TempDir() + "/fleet_resume.journal";

  fleet::FleetOptions fo = SmallFleet(8);
  fo.workers = 1;  // deterministic interruption point

  // Uninterrupted reference run, no journal.
  const std::string reference =
      fleet::FormatFleetReport(fleet::RunFleet(fo));

  // Killed run: cancel after three shards started.
  fleet::FleetOptions killed = fo;
  killed.journal_path = path;
  std::atomic<int> starts{0};
  killed.cancel = [&] { return starts.fetch_add(1) >= 3; };
  const fleet::FleetReport partial = fleet::RunFleet(killed);
  EXPECT_TRUE(partial.interrupted);
  ASSERT_GT(partial.shards.size(), 0u);
  ASSERT_LT(partial.shards.size(), 8u);

  // The journal holds exactly the finished shards, intact.
  const fleet::FleetJournalLoad load = fleet::LoadFleetJournal(path);
  ASSERT_TRUE(load.meta_valid);
  EXPECT_FALSE(load.torn_tail);
  EXPECT_EQ(load.shards.size(), partial.shards.size());

  // Resumed run: replays the journal, runs the rest, matches byte-for-byte.
  fleet::FleetOptions resumed = fo;
  resumed.journal_path = path;
  resumed.resume = true;
  const fleet::FleetReport full = fleet::RunFleet(resumed);
  EXPECT_FALSE(full.interrupted);
  EXPECT_EQ(full.resumed_shards, partial.shards.size());
  EXPECT_EQ(fleet::FormatFleetReport(full), reference);
}

TEST(Fleet, ResumeIgnoresJournalOfDifferentConfiguration) {
  const std::string path = testing::TempDir() + "/fleet_mismatch.journal";
  fleet::FleetOptions fo = SmallFleet(4);
  fo.journal_path = path;
  const fleet::FleetReport first = fleet::RunFleet(fo);
  EXPECT_EQ(first.resumed_shards, 0u);

  // Different seed → different config identity → full re-run.
  fleet::FleetOptions other = fo;
  other.settings.seed = fo.settings.seed + 7;
  other.resume = true;
  const fleet::FleetReport second = fleet::RunFleet(other);
  EXPECT_EQ(second.resumed_shards, 0u);
  EXPECT_EQ(second.shards.size(), 4u);
}

// ---------------------------------------------------------------------------
// FindMaxServerQps bisection behavior (unit)

loadgen::TestResult ProbeResult(bool latency_ok, bool shed_ok,
                                bool errored = false) {
  loadgen::TestResult r;
  r.scenario = loadgen::TestScenario::kServer;
  r.sample_count = 1;
  r.latency_bound_met = latency_ok;
  r.shed_bound_met = shed_ok;
  if (errored) r.invalid_reason = "synthetic probe failure";
  return r;
}

TEST(FindMaxServerQps, ConvergesOnMonotonePredicate) {
  const double capacity = 37.5;
  int probes = 0;
  const double qps = loadgen::FindMaxServerQps(
      [&](double q) {
        ++probes;
        return ProbeResult(q <= capacity, true);
      },
      1.0, 100.0, 20);
  EXPECT_LE(qps, capacity);
  EXPECT_NEAR(qps, capacity, (100.0 - 1.0) / (1 << 20) * 4);
  EXPECT_EQ(probes, 22);  // lo + hi + 20 bisection probes
}

TEST(FindMaxServerQps, ReturnsHiWhenHiPasses) {
  const double qps = loadgen::FindMaxServerQps(
      [](double) { return ProbeResult(true, true); }, 1.0, 64.0);
  EXPECT_DOUBLE_EQ(qps, 64.0);
}

TEST(FindMaxServerQps, ErroredLoProbeStopsSearchImmediately) {
  int probes = 0;
  const double qps = loadgen::FindMaxServerQps(
      [&](double) {
        ++probes;
        return ProbeResult(true, true, /*errored=*/true);
      },
      1.0, 100.0);
  EXPECT_DOUBLE_EQ(qps, 0.0);
  EXPECT_EQ(probes, 1);
}

TEST(FindMaxServerQps, AlwaysFailingPredicateReturnsZero) {
  const double qps = loadgen::FindMaxServerQps(
      [](double) { return ProbeResult(false, true); }, 1.0, 100.0);
  EXPECT_DOUBLE_EQ(qps, 0.0);
}

TEST(FindMaxServerQps, ErroredMidProbeCountsAsFailure) {
  // Valid at low rates, structurally broken above 30: the search must
  // treat errored probes as failures and stay below the error cliff.
  const double qps = loadgen::FindMaxServerQps(
      [](double q) { return ProbeResult(true, true, /*errored=*/q > 30.0); },
      1.0, 100.0, 20);
  EXPECT_LE(qps, 30.0);
  EXPECT_NEAR(qps, 30.0, 0.01);
}

TEST(FindMaxServerQps, ShedBoundViolationIsNotServingTheRate) {
  // The SUT "meets latency" at any rate by refusing most of the load past
  // 20 qps; the search must not count those probes as passes.
  const double qps = loadgen::FindMaxServerQps(
      [](double q) { return ProbeResult(true, /*shed_ok=*/q <= 20.0); },
      1.0, 100.0, 20);
  EXPECT_LE(qps, 20.0);
  EXPECT_NEAR(qps, 20.0, 0.01);
}

// ---------------------------------------------------------------------------
// Mix parsing (unit)

TEST(FleetMix, ParsesSpecWithAliasesAndWeights) {
  const std::vector<fleet::FleetMixEntry> mix =
      fleet::ParseFleetMix("Dimensity 1100:ic:2;Exynos 2100:qa");
  ASSERT_EQ(mix.size(), 2u);
  EXPECT_EQ(mix[0].chipset, "Dimensity 1100");
  EXPECT_EQ(mix[0].task_id, "image_classification");
  EXPECT_DOUBLE_EQ(mix[0].weight, 2.0);
  EXPECT_EQ(mix[1].task_id, "question_answering");
  EXPECT_DOUBLE_EQ(mix[1].weight, 1.0);
}

TEST(FleetMix, ShardCountsFollowWeightsExactly) {
  std::vector<fleet::FleetMixEntry> mix =
      fleet::ParseFleetMix("A:ic:3;B:ic:1");
  const std::vector<std::size_t> counts =
      fleet::AssignShardCounts(mix, 8);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 6u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[0] + counts[1], 8u);
}

TEST(FleetMix, UnknownChipsetThrows) {
  fleet::FleetOptions fo;
  fo.shard_count = 1;
  fo.mix = fleet::ParseFleetMix("No Such SoC:ic");
  EXPECT_THROW({ auto r = fleet::RunFleet(fo); }, CheckError);
}

}  // namespace
}  // namespace mlpm
