# Empty dependencies file for mlpm_datasets.
# This may be replaced when dependencies are built.
