file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_governor.dir/bench_ablation_governor.cpp.o"
  "CMakeFiles/bench_ablation_governor.dir/bench_ablation_governor.cpp.o.d"
  "bench_ablation_governor"
  "bench_ablation_governor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
