# Empty compiler generated dependencies file for mlpm_harness.
# This may be replaced when dependencies are built.
