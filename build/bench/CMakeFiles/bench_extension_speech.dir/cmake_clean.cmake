file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_speech.dir/bench_extension_speech.cpp.o"
  "CMakeFiles/bench_extension_speech.dir/bench_extension_speech.cpp.o.d"
  "bench_extension_speech"
  "bench_extension_speech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_speech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
