// Graph IR: a static dataflow graph of tensors and nodes.
//
// A Graph is immutable once built (paper §5.1: submissions must start from
// the frozen reference graph; the submission checker compares structural
// fingerprints).  Construction goes through GraphBuilder, which performs
// shape inference eagerly so any malformed model fails at build time.
//
// Weights are *described* in the graph (shape, dtype, parameter count) but
// their values live in a WeightStore owned by the executor layer; the timing
// simulator never touches values.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "graph/ops.h"
#include "graph/shape.h"

namespace mlpm::graph {

// Index of a tensor within its Graph.
using TensorId = std::int32_t;
inline constexpr TensorId kInvalidTensor = -1;

enum class TensorKind : std::uint8_t { kActivation, kWeight };

struct TensorInfo {
  std::string name;
  TensorShape shape;
  TensorKind kind = TensorKind::kActivation;
  // Producing node (kInvalidNode for graph inputs and weights).
  std::int32_t producer = -1;
};

struct Node {
  std::string name;
  OpType op = OpType::kInput;
  OpAttrs attrs;
  std::vector<TensorId> inputs;   // activation inputs
  std::vector<TensorId> weights;  // weight tensors (kernel, bias, ...)
  TensorId output = kInvalidTensor;
};

class Graph {
 public:
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<TensorInfo>& tensors() const {
    return tensors_;
  }
  [[nodiscard]] const TensorInfo& tensor(TensorId id) const;
  [[nodiscard]] const std::vector<TensorId>& input_ids() const {
    return inputs_;
  }
  [[nodiscard]] const std::vector<TensorId>& output_ids() const {
    return outputs_;
  }

  // Total trainable parameter count (elements of all weight tensors).
  [[nodiscard]] std::int64_t ParameterCount() const;

  // A structural fingerprint: hashes op types, attrs-relevant dims and
  // connectivity.  Used by the submission checker to verify that a submitted
  // model is the frozen reference graph (rules forbid pruning etc., §5.1).
  [[nodiscard]] std::uint64_t StructuralFingerprint() const;

 private:
  friend class GraphBuilder;
  friend Graph ParseGraph(const std::string& text);
  friend Graph ParseGraphUnchecked(const std::string& text);
  friend Graph AssembleGraphUnchecked(std::string name, std::vector<Node> nodes,
                                      std::vector<TensorInfo> tensors,
                                      std::vector<TensorId> inputs,
                                      std::vector<TensorId> outputs);
  std::string name_;
  std::vector<Node> nodes_;  // already in topological (construction) order
  std::vector<TensorInfo> tensors_;
  std::vector<TensorId> inputs_;
  std::vector<TensorId> outputs_;
};

// Builds graphs with eager shape inference.  All builder methods return the
// TensorId of the op's output.  Layer names are auto-generated (op type +
// ordinal) unless given.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::string graph_name);

  TensorId Input(const std::string& name, TensorShape shape);

  // A materialized constant (OpType::kConstant): one weight tensor named
  // `<node>/value` holds the payload; the node copies it to its output.
  // Used by transform-layer tests; reference models never call this.
  TensorId Constant(TensorShape shape, const std::string& name = {});

  TensorId Conv2d(TensorId in, std::int64_t out_channels, int kernel,
                  int stride, Activation act = Activation::kNone,
                  Padding pad = Padding::kSame, int dilation = 1,
                  const std::string& name = {});
  TensorId DepthwiseConv2d(TensorId in, int kernel, int stride,
                           Activation act = Activation::kNone,
                           Padding pad = Padding::kSame, int dilation = 1,
                           const std::string& name = {});
  TensorId FullyConnected(TensorId in, std::int64_t out_features,
                          Activation act = Activation::kNone,
                          const std::string& name = {});
  TensorId Add(TensorId a, TensorId b, const std::string& name = {});
  TensorId Mul(TensorId a, TensorId b, const std::string& name = {});
  TensorId AvgPool(TensorId in, int kernel, int stride,
                   const std::string& name = {});
  TensorId MaxPool(TensorId in, int kernel, int stride,
                   const std::string& name = {});
  TensorId GlobalAvgPool(TensorId in, const std::string& name = {});
  TensorId ResizeBilinear(TensorId in, std::int64_t out_h, std::int64_t out_w,
                          const std::string& name = {});
  TensorId Concat(std::vector<TensorId> ins, int axis,
                  const std::string& name = {});
  TensorId Reshape(TensorId in, std::vector<std::int64_t> dims,
                   const std::string& name = {});
  TensorId Softmax(TensorId in, int axis = -1, const std::string& name = {});
  TensorId Activate(TensorId in, Activation act,
                    const std::string& name = {});
  TensorId LayerNorm(TensorId in, const std::string& name = {});
  TensorId Embedding(TensorId token_ids, std::int64_t vocab,
                     std::int64_t dim, const std::string& name = {});
  TensorId MultiHeadAttention(TensorId in, int num_heads,
                              std::int64_t head_dim,
                              const std::string& name = {});
  // Fused LSTM layer over a [seq_len, features] sequence; output
  // [seq_len, hidden].  Weights: wx [4H, D], wh [4H, H], bias [4H]
  // (gate order: input, forget, cell, output).
  TensorId Lstm(TensorId in, std::int64_t hidden_dim,
                const std::string& name = {});

  // Marks a tensor as a graph output (callable multiple times).
  void MarkOutput(TensorId id);

  // Finalizes the graph.  The builder is left empty.
  [[nodiscard]] Graph Build() &&;

  // Shape of an intermediate tensor (handy while building models).  The
  // reference points into the builder's tensor table and is invalidated by
  // the next AddTensor/op call — copy it if you add tensors before using it.
  [[nodiscard]] const TensorShape& ShapeOf(TensorId id) const;

 private:
  TensorId AddTensor(std::string name, TensorShape shape, TensorKind kind);
  TensorId AddNode(OpType op, OpAttrs attrs, std::vector<TensorId> inputs,
                   std::vector<TensorId> weights, TensorShape out_shape,
                   const std::string& name);
  [[nodiscard]] std::string AutoName(OpType op, const std::string& given);

  Graph g_;
  std::int32_t op_counter_ = 0;
};

// Output spatial size for a conv/pool window in one dimension.
[[nodiscard]] std::int64_t ConvOutDim(std::int64_t in, int kernel, int stride,
                                      int dilation, Padding pad);

// Assembles a Graph directly from its parts, without shape inference or
// structural validation.  This is the freeze step of the transform layer's
// MutableGraph (src/transform/ir_edit.h): the PassManager re-runs the full
// analysis suite on the result, so validation happens there, not here.
// Producer fields in `tensors` must already be consistent with `nodes`.
[[nodiscard]] Graph AssembleGraphUnchecked(std::string name,
                                           std::vector<Node> nodes,
                                           std::vector<TensorInfo> tensors,
                                           std::vector<TensorId> inputs,
                                           std::vector<TensorId> outputs);

}  // namespace mlpm::graph
