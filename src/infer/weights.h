// Weight storage and deterministic synthetic initialization.
//
// The paper's reference models ship as frozen FP32 checkpoints (§5.1); this
// repo substitutes seeded, structured synthetic weights (see DESIGN.md §1).
// Weights are fan-in-scaled Gaussians, which gives well-conditioned
// activations through deep stacks — enough for the quantization experiments,
// whose ground truth is teacher-derived from this very FP32 model.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "infer/tensor.h"

namespace mlpm::infer {

class WeightStore {
 public:
  // Returns the weight tensor registered under `name`; throws if absent.
  [[nodiscard]] const Tensor& Get(const std::string& name) const;
  [[nodiscard]] bool Contains(const std::string& name) const;

  void Put(std::string name, Tensor t);

  [[nodiscard]] std::size_t size() const { return store_.size(); }

  // Read-only view of the underlying map (serialization / inspection).
  [[nodiscard]] const std::unordered_map<std::string, Tensor>& raw() const {
    return store_;
  }

 private:
  std::unordered_map<std::string, Tensor> store_;
};

// Creates a WeightStore for every weight tensor in `g`, seeded by `seed`.
// The same (graph, seed) always produces identical weights — this is the
// repo's stand-in for the frozen reference checkpoint.
[[nodiscard]] WeightStore InitializeWeights(const graph::Graph& g,
                                            std::uint64_t seed);

// Checkpoint (de)serialization: a text format whose float values round-trip
// exactly (hexfloat).  Together with graph::SerializeGraph this makes the
// frozen reference checkpoint a pair of files the audit can inspect.
[[nodiscard]] std::string SerializeWeights(const WeightStore& store);
// Throws CheckError on malformed input.
[[nodiscard]] WeightStore ParseWeights(const std::string& text);

}  // namespace mlpm::infer
