file(REMOVE_RECURSE
  "CMakeFiles/headless_cli.dir/headless_cli.cpp.o"
  "CMakeFiles/headless_cli.dir/headless_cli.cpp.o.d"
  "headless_cli"
  "headless_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headless_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
