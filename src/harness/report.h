// Result rendering: the transparency layer of the app (paper App. A) —
// results always appear together with the numerics, framework and
// accelerator that produced them.
#pragma once

#include <string>

#include "harness/audit.h"
#include "harness/checker.h"
#include "harness/run_session.h"

namespace mlpm::harness {

// Per-task result table for one submission (latency, throughput, accuracy,
// configuration columns).
[[nodiscard]] std::string FormatSubmission(const SubmissionResult& result);

// Checker report as text.
[[nodiscard]] std::string FormatCheckReport(const CheckReport& report);

// Audit report as text.
[[nodiscard]] std::string FormatAuditReport(const AuditReport& report);

}  // namespace mlpm::harness
