// Quantization parameter records shared between the executor (which applies
// fake quantization) and the quantizer (src/quant, which derives the
// parameters from a calibration run — paper §5.1).
#pragma once

#include <unordered_map>

#include "graph/graph.h"

namespace mlpm::infer {

// Observed value range of one activation tensor.
struct TensorRange {
  float min = 0.0f;
  float max = 0.0f;

  void Update(float v) {
    if (v < min) min = v;
    if (v > max) max = v;
  }
  void Merge(const TensorRange& o) {
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
  }
};

// Full post-training-quantization recipe for one graph.
struct QuantParams {
  // Activation ranges keyed by tensor id; derived from the calibration set.
  std::unordered_map<graph::TensorId, TensorRange> activation_ranges;
  // Per-output-channel symmetric weight quantization (TFLite convention)
  // versus per-tensor.  Per-channel loses less accuracy.
  bool per_channel_weights = true;
  // Asymmetric activation quantization bit width (8 == UINT8/INT8).
  int activation_bits = 8;
  int weight_bits = 8;
};

// Rounds `v` through an asymmetric uint-style quantized grid for the given
// range.  Degenerate ranges (min==max) pass values through unchanged.
[[nodiscard]] float FakeQuantActivation(float v, const TensorRange& r,
                                        int bits);

}  // namespace mlpm::infer
