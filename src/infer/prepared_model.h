// A model prepared once, executed many times.
//
// PreparedModel owns an Executor whose weights were transformed
// (fp16-rounded / fake-quantized) exactly once at construction, plus the
// graph/weight references it needs; callers share it via shared_ptr and run
// it concurrently — Run is const and uses a per-call arena context, so a
// single PreparedModel serves any number of threads.  Callers that run many
// samples on one thread should CreateContext() once and pass it to Run to
// amortize the arena allocation.
//
// RunSamplesParallel is the sample-level fan-out used by the accuracy
// harness: independent samples evaluate on pool threads while per-op
// parallelism inside each sample collapses to inline execution (nested
// ParallelFor), so the same pool serves both regimes without deadlock and
// results stay bit-identical to a serial loop.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "infer/executor.h"

namespace mlpm {
class ThreadPool;
}

namespace mlpm::infer {

class PreparedModel {
 public:
  // Same contract as Executor: `graph` and `weights` must outlive this.
  // `isa` selects the SIMD kernel table for every run on this model (and
  // the ISA-specialized prepack done at construction).
  // `tiling` (tile_planner.h) opts every Run into fused tiled segment
  // execution — bit-identical to the untiled path (DESIGN.md §15).
  PreparedModel(const graph::Graph& graph, const WeightStore& weights,
                NumericsMode mode = NumericsMode::kFp32,
                const QuantParams* quant = nullptr,
                kernels::KernelIsa isa = kernels::KernelIsa::kAuto,
                const TileOptions& tiling = {})
      : executor_(graph, weights, mode, quant, isa, tiling) {}

  [[nodiscard]] const Executor& executor() const { return executor_; }

  [[nodiscard]] std::vector<Tensor> Run(std::span<const Tensor> inputs,
                                        const ThreadPool* pool = nullptr) const {
    ExecutionContext ctx = executor_.CreateContext();
    return executor_.Run(inputs, ctx, NodeObserver{}, pool);
  }

  // Arena-context overload: reuses `ctx`'s arena across calls (one context
  // per thread; a context is not thread-safe).
  [[nodiscard]] std::vector<Tensor> Run(std::span<const Tensor> inputs,
                                        ExecutionContext& ctx,
                                        const ThreadPool* pool = nullptr) const {
    return executor_.Run(inputs, ctx, NodeObserver{}, pool);
  }

  [[nodiscard]] ExecutionContext CreateContext() const {
    return executor_.CreateContext();
  }

 private:
  Executor executor_;
};

// Evaluates `count` independent samples, parallelized over samples when
// `pool` is non-null.  `inputs_for(i)` must be safe to call concurrently
// and returns the sample's input tensors by value.  Output order matches
// sample order and every tensor is bit-identical to a serial loop (samples
// are independent; no shared mutable state).
[[nodiscard]] std::vector<std::vector<Tensor>> RunSamplesParallel(
    const Executor& executor, std::size_t count,
    const std::function<std::vector<Tensor>(std::size_t)>& inputs_for,
    const ThreadPool* pool);

}  // namespace mlpm::infer
