// Per-backend circuit breaker (DESIGN.md §12): an admission layer between
// the LoadGen and a fault-tolerant SUT that stops hammering a backend which
// has stopped answering.  Classic three-state machine:
//
//   closed    — queries pass through; `trip_threshold` *consecutive*
//               no-completion outcomes (FaultTolerantBackend kGaveUp, lost
//               completions, watchdog-bound drops) trip it open;
//   open      — queries are fast-failed through ResponseSink::Reject (the
//               `rejected` taxonomy class) at a small fixed virtual-clock
//               cost until a seeded, jittered reopen deadline passes;
//   half-open — exactly one probe query passes through; success closes the
//               breaker, failure reopens it with an exponentially longer
//               window.
//
// All timing is on the test's VirtualClock and the probe schedule comes
// from a seeded Rng, so the transition log is byte-identical across
// same-seed runs — the same determinism contract the fault-tolerant
// backend keeps for its recovery log.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "core/clock.h"
#include "core/query.h"

namespace mlpm::backends {

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

[[nodiscard]] constexpr std::string_view ToString(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "?";
}

struct CircuitBreakerOptions {
  // Consecutive failed (never-completed) queries that trip the breaker.
  int trip_threshold = 3;
  // First open window, seconds of virtual time; each consecutive reopen
  // multiplies it by backoff_factor, capped at max_open_duration_s.
  double open_duration_s = 1.0;
  double backoff_factor = 2.0;
  double max_open_duration_s = 30.0;
  // Reopen deadlines are jittered by ±(probe_jitter_frac/2), drawn from a
  // stream seeded by `seed`, so fleets of breakers don't probe in lockstep.
  double probe_jitter_frac = 0.2;
  std::uint64_t seed = 0xB4EA;
  // Virtual-clock cost of a fast-fail rejection.  Must be positive: it is
  // what keeps the single-stream issue loop's clock moving while the
  // breaker is open.
  double rejection_latency_s = 0.0005;
};

struct BreakerTransition {
  BreakerState from = BreakerState::kClosed;
  BreakerState to = BreakerState::kOpen;
  double time_s = 0.0;        // virtual-clock time of the transition
  std::uint64_t query_id = 0; // query whose outcome caused it
};

// Wraps any SystemUnderTest.  Single-sample queries are breaker-managed;
// multi-sample (offline) bursts pass through untouched — the burst path
// has its own replica-level fault handling and no per-query flow control.
class CircuitBreakerBackend final : public loadgen::SystemUnderTest {
 public:
  CircuitBreakerBackend(loadgen::SystemUnderTest& inner,
                        loadgen::VirtualClock& clock,
                        CircuitBreakerOptions options = {});

  [[nodiscard]] std::string_view name() const override { return name_; }
  void IssueQuery(std::span<const loadgen::QuerySample> samples,
                  loadgen::ResponseSink& sink) override;
  void FlushQueries() override { inner_.FlushQueries(); }

  struct Stats {
    std::size_t passed = 0;     // queries forwarded to the inner SUT
    std::size_t rejected = 0;   // fast-failed while open
    std::size_t probes = 0;     // half-open probe queries
    std::size_t trips = 0;      // closed/half-open -> open transitions
    std::size_t failures = 0;   // forwarded queries that never completed
    std::size_t successes = 0;  // forwarded queries that completed
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] BreakerState state() const { return state_; }
  [[nodiscard]] const std::vector<BreakerTransition>& transitions() const {
    return transitions_;
  }
  // One line per state transition; byte-identical across same-seed runs.
  [[nodiscard]] std::string EventLogText() const;

 private:
  void Transition(BreakerState to, std::uint64_t query_id);
  void TripOpen(std::uint64_t query_id);

  std::string name_;
  loadgen::SystemUnderTest& inner_;
  loadgen::VirtualClock& clock_;
  CircuitBreakerOptions options_;
  Rng rng_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int open_streak_ = 0;       // consecutive opens without a closed in between
  double reopen_at_s_ = 0.0;  // half-open probe deadline while open
  Stats stats_;
  std::vector<BreakerTransition> transitions_;
};

}  // namespace mlpm::backends
