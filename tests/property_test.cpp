// Cross-cutting property tests: invariants that must hold over parameter
// sweeps rather than single examples.
#include <gtest/gtest.h>

#include <cmath>

#include "backends/vendor_policy.h"
#include "common/rng.h"
#include "datasets/preprocess.h"
#include "infer/executor.h"
#include "infer/weights.h"
#include "models/deeplab.h"
#include "models/detection.h"
#include "models/mobilebert.h"
#include "models/mobilenet_edgetpu.h"
#include "models/rnnt.h"
#include "models/ssd.h"
#include "models/zoo.h"
#include "quant/calibration.h"
#include "soc/simulator.h"

namespace mlpm {
namespace {

// ---- executor determinism & numerics bounds across the whole zoo ----

struct ModelCase {
  std::string name;
  graph::Graph g;
};

std::vector<ModelCase> MiniZoo() {
  std::vector<ModelCase> v;
  v.push_back({"classifier",
               models::BuildMobileNetEdgeTpu(models::ModelScale::kMini)});
  v.push_back({"ssd",
               models::BuildSsdMobileNetV2(models::ModelScale::kMini).graph});
  v.push_back({"mobiledet",
               models::BuildMobileDetSsd(models::ModelScale::kMini).graph});
  v.push_back({"deeplab",
               models::BuildDeepLabV3Plus(models::ModelScale::kMini)});
  v.push_back({"mobilebert",
               models::BuildMobileBert(models::ModelScale::kMini)});
  v.push_back({"rnnt", models::BuildMobileRnnt(models::ModelScale::kMini)});
  return v;
}

std::vector<infer::Tensor> RandomInputs(const graph::Graph& g,
                                        std::uint64_t seed) {
  std::vector<infer::Tensor> inputs;
  Rng rng(seed);
  for (const graph::TensorId id : g.input_ids()) {
    infer::Tensor t(g.tensor(id).shape);
    const bool integer_ids = g.tensor(id).name == "token_ids";
    for (auto& v : t.values())
      v = integer_ids ? static_cast<float>(rng.NextBelow(32))
                      : static_cast<float>(rng.NextUniform(-1.0, 1.0));
    inputs.push_back(std::move(t));
  }
  return inputs;
}

TEST(ZooProperty, ExecutionIsDeterministicAcrossExecutors) {
  for (const ModelCase& m : MiniZoo()) {
    const infer::WeightStore w = infer::InitializeWeights(m.g, 7);
    const auto in = RandomInputs(m.g, 3);
    const infer::Executor a(m.g, w);
    const infer::Executor b(m.g, w);
    const auto oa = a.Run(in);
    const auto ob = b.Run(in);
    ASSERT_EQ(oa.size(), ob.size()) << m.name;
    for (std::size_t t = 0; t < oa.size(); ++t)
      for (std::size_t i = 0; i < oa[t].size(); ++i)
        EXPECT_EQ(oa[t].data()[i], ob[t].data()[i]) << m.name;
  }
}

TEST(ZooProperty, Fp16OutputsTrackFp32) {
  for (const ModelCase& m : MiniZoo()) {
    const infer::WeightStore w = infer::InitializeWeights(m.g, 7);
    const auto in = RandomInputs(m.g, 3);
    const auto o32 = infer::Executor(m.g, w).Run(in);
    const auto o16 =
        infer::Executor(m.g, w, infer::NumericsMode::kFp16).Run(in);
    double scale = 1e-6, err = 0.0;
    for (std::size_t t = 0; t < o32.size(); ++t)
      for (std::size_t i = 0; i < o32[t].size(); ++i) {
        scale = std::max(scale,
                         static_cast<double>(std::abs(o32[t].data()[i])));
        err = std::max(err, static_cast<double>(std::abs(
                                o32[t].data()[i] - o16[t].data()[i])));
      }
    EXPECT_LT(err, 0.05 * scale + 1e-3) << m.name;
  }
}

TEST(ZooProperty, OutputsAreFinite) {
  for (const ModelCase& m : MiniZoo()) {
    const infer::WeightStore w = infer::InitializeWeights(m.g, 7);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const auto outs =
          infer::Executor(m.g, w).Run(RandomInputs(m.g, seed));
      for (const auto& o : outs)
        for (const float v : o.values())
          EXPECT_TRUE(std::isfinite(v)) << m.name;
    }
  }
}

TEST(ZooProperty, Int8WithSingleCalibrationSampleStillRuns) {
  for (const ModelCase& m : MiniZoo()) {
    const infer::WeightStore w = infer::InitializeWeights(m.g, 7);
    std::vector<quant::CalibrationSample> one;
    one.push_back(RandomInputs(m.g, 99));
    const infer::QuantParams qp = quant::CalibratePtq(m.g, w, one);
    const infer::Executor int8(m.g, w, infer::NumericsMode::kInt8, &qp);
    const auto outs = int8.Run(RandomInputs(m.g, 3));
    for (const auto& o : outs)
      for (const float v : o.values()) EXPECT_TRUE(std::isfinite(v));
  }
}

// ---- fake quantization ----

TEST(QuantProperty, FakeQuantIsIdempotent) {
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const infer::TensorRange r{
        static_cast<float>(rng.NextUniform(-4.0, 0.0)),
        static_cast<float>(rng.NextUniform(0.0, 4.0))};
    const float v = static_cast<float>(rng.NextUniform(-5.0, 5.0));
    const float once = infer::FakeQuantActivation(v, r, 8);
    EXPECT_FLOAT_EQ(infer::FakeQuantActivation(once, r, 8), once);
  }
}

TEST(QuantProperty, FakeQuantIsMonotone) {
  const infer::TensorRange r{-2.0f, 3.0f};
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const float a = static_cast<float>(rng.NextUniform(-3.0, 4.0));
    const float b = a + static_cast<float>(rng.NextUniform(0.0, 1.0));
    EXPECT_LE(infer::FakeQuantActivation(a, r, 8),
              infer::FakeQuantActivation(b, r, 8) + 1e-7f);
  }
}

// ---- preprocessing ----

TEST(PreprocessProperty, ResizeToSameSizeIsIdentity) {
  Rng rng(6);
  infer::Tensor img(graph::TensorShape({1, 9, 7, 3}));
  for (auto& v : img.values()) v = static_cast<float>(rng.NextDouble());
  const infer::Tensor out = datasets::ResizeBilinear(img, 9, 7);
  for (std::size_t i = 0; i < img.size(); ++i)
    EXPECT_NEAR(out.data()[i], img.data()[i], 1e-5f);
}

TEST(PreprocessProperty, ResizeStaysInValueRange) {
  Rng rng(7);
  infer::Tensor img(graph::TensorShape({1, 8, 8, 1}));
  for (auto& v : img.values()) v = static_cast<float>(rng.NextDouble());
  for (const std::int64_t target : {3, 5, 16, 33}) {
    const infer::Tensor out = datasets::ResizeBilinear(img, target, target);
    for (const float v : out.values()) {
      EXPECT_GE(v, -1e-5f);
      EXPECT_LE(v, 1.0f + 1e-5f);  // interpolation cannot overshoot
    }
  }
}

// ---- NMS invariants ----

TEST(NmsProperty, OutputIsSubsetAndNonOverlapping) {
  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<models::Detection> dets;
    for (int i = 0; i < 40; ++i) {
      const float y = static_cast<float>(rng.NextUniform(0.0, 0.8));
      const float x = static_cast<float>(rng.NextUniform(0.0, 0.8));
      const float h = static_cast<float>(rng.NextUniform(0.05, 0.2));
      const float w = static_cast<float>(rng.NextUniform(0.05, 0.2));
      dets.push_back(models::Detection{
          models::BBox{y, x, y + h, x + w},
          static_cast<int>(rng.NextBelow(3)) + 1,
          static_cast<float>(rng.NextDouble())});
    }
    const std::vector<models::Detection> input = dets;
    const auto kept = models::Nms(std::move(dets), 0.4f, 25);
    // Subset property: every kept detection appears in the input.
    for (const auto& k : kept) {
      const bool found = std::any_of(
          input.begin(), input.end(), [&](const models::Detection& d) {
            return d.score == k.score && d.class_id == k.class_id &&
                   d.box.ymin == k.box.ymin;
          });
      EXPECT_TRUE(found);
    }
    // Pairwise same-class IoU below the threshold.
    for (std::size_t i = 0; i < kept.size(); ++i)
      for (std::size_t j = i + 1; j < kept.size(); ++j)
        if (kept[i].class_id == kept[j].class_id)
          EXPECT_LE(kept[i].box.IoU(kept[j].box), 0.4f + 1e-6f);
  }
}

// ---- thermal model ----

TEST(ThermalProperty, StepIsComposable) {
  soc::ThermalModel a{soc::ThermalParams{}};
  soc::ThermalModel b{soc::ThermalParams{}};
  a.Step(2.5, 10.0);
  a.Step(2.5, 14.0);
  b.Step(2.5, 24.0);
  EXPECT_NEAR(a.temperature_c(), b.temperature_c(), 1e-9);
}

TEST(ThermalProperty, HotterNeverFasterUnderConstantPower) {
  soc::ThermalModel t{soc::ThermalParams{}};
  double prev_factor = t.ThrottleFactor();
  for (int i = 0; i < 50; ++i) {
    t.Step(3.0, 5.0);
    const double f = t.ThrottleFactor();
    EXPECT_LE(f, prev_factor + 1e-12);
    prev_factor = f;
  }
}

// ---- compiled plans ----

TEST(CompileProperty, SegmentsPartitionTheGraph) {
  // Across every v1.0 submission plan: segment node counts sum to the
  // non-input node count of the graph.
  for (const soc::ChipsetDesc& chip : soc::CatalogV10()) {
    for (const auto& e : models::SuiteFor(models::SuiteVersion::kV1_0)) {
      const graph::Graph g = models::BuildReferenceGraph(
          e, models::SuiteVersion::kV1_0, models::ModelScale::kFull);
      const backends::SubmissionConfig sub =
          backends::GetSubmission(chip, e.task, models::SuiteVersion::kV1_0);
      const soc::CompiledModel m =
          backends::CompileSubmission(chip, sub, g);
      std::size_t nodes_in_segments = 0;
      for (const soc::CompiledSegment& seg : m.segments)
        nodes_in_segments += seg.node_count;
      std::size_t non_input = 0;
      for (const graph::Node& n : g.nodes())
        if (n.op != graph::OpType::kInput) ++non_input;
      EXPECT_EQ(nodes_in_segments, non_input) << chip.name << " " << e.id;
    }
  }
}

TEST(CompileProperty, LatencyMonotoneInThrottle) {
  const soc::ChipsetDesc chip = soc::Snapdragon888();
  const graph::Graph g =
      models::BuildMobileNetEdgeTpu(models::ModelScale::kFull);
  const backends::SubmissionConfig sub = backends::GetSubmission(
      chip, models::TaskType::kImageClassification,
      models::SuiteVersion::kV1_0);
  const soc::CompiledModel m = backends::CompileSubmission(chip, sub, g);
  double prev = 0.0;
  for (double f = 1.0; f >= 0.45; f -= 0.05) {
    const double t = m.LatencySeconds(f);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(CompileProperty, CompilationIsDeterministic) {
  const soc::ChipsetDesc chip = soc::Exynos2100();
  const graph::Graph g =
      models::BuildDeepLabV3Plus(models::ModelScale::kFull);
  const backends::SubmissionConfig sub = backends::GetSubmission(
      chip, models::TaskType::kImageSegmentation,
      models::SuiteVersion::kV1_0);
  const soc::CompiledModel a = backends::CompileSubmission(chip, sub, g);
  const soc::CompiledModel b = backends::CompileSubmission(chip, sub, g);
  EXPECT_EQ(a.segments.size(), b.segments.size());
  EXPECT_DOUBLE_EQ(a.LatencySeconds(), b.LatencySeconds());
  EXPECT_DOUBLE_EQ(a.EnergyJoules(), b.EnergyJoules());
}

// ---- detection decode ----

TEST(DecodeProperty, HigherScoreThresholdNeverAddsDetections) {
  const models::DetectionModel m =
      models::BuildSsdMobileNetV2(models::ModelScale::kMini);
  const infer::WeightStore w = infer::InitializeWeights(m.graph, 7);
  const infer::Executor exec(m.graph, w);
  const auto out = exec.Run(RandomInputs(m.graph, 21));
  std::size_t prev = SIZE_MAX;
  for (const float thresh : {0.1f, 0.3f, 0.5f, 0.7f, 0.9f}) {
    models::DecodeConfig cfg;
    cfg.score_threshold = thresh;
    cfg.max_detections = 100;
    const auto dets = models::DecodeDetections(
        out[0].values(), out[1].values(), m.anchors, m.num_classes, cfg);
    EXPECT_LE(dets.size(), prev);
    prev = dets.size();
  }
}

}  // namespace
}  // namespace mlpm
