// Rolling-submission result store (paper App. E: "rolling submissions"
// would allow vendors to submit continuously, with up-to-date
// latest-per-device reporting).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "harness/run_session.h"

namespace mlpm::harness {

struct DatedSubmission {
  std::string date_iso;  // "2021-04-28"
  SubmissionResult result;
};

class ResultStore {
 public:
  // Rejects submissions whose checker report is invalid if one is given.
  void Add(std::string date_iso, SubmissionResult result);

  [[nodiscard]] std::size_t size() const { return submissions_.size(); }
  [[nodiscard]] const std::vector<DatedSubmission>& all() const {
    return submissions_;
  }

  // Latest submission per (chipset, version) by date — the rolling view.
  [[nodiscard]] std::vector<DatedSubmission> LatestPerDevice() const;

  // All submissions for one chipset, oldest first (generational history).
  [[nodiscard]] std::vector<DatedSubmission> HistoryFor(
      const std::string& chipset_name) const;

 private:
  std::vector<DatedSubmission> submissions_;
};

}  // namespace mlpm::harness
