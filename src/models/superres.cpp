#include "models/superres.h"

#include <string>

namespace mlpm::models {

using graph::Activation;
using graph::GraphBuilder;
using graph::TensorId;

SuperResConfig MiniSuperResConfig() {
  SuperResConfig c;
  c.lr_size = 16;
  c.channels = 12;
  c.residual_blocks = 3;
  return c;
}

graph::Graph BuildSuperResolution(ModelScale scale) {
  return BuildSuperResolution(scale == ModelScale::kFull
                                  ? SuperResConfig{}
                                  : MiniSuperResConfig());
}

graph::Graph BuildSuperResolution(const SuperResConfig& cfg) {
  Expects(cfg.upscale == 2, "only 2x upscaling is implemented");
  GraphBuilder b("superres_edsr");
  TensorId input = b.Input("lr_image", {1, cfg.lr_size, cfg.lr_size, 3});

  TensorId x = b.Conv2d(input, cfg.channels, 3, 1, Activation::kNone,
                        graph::Padding::kSame, 1, "feat");
  const TensorId skip = x;
  for (int i = 0; i < cfg.residual_blocks; ++i) {
    const std::string p = "res" + std::to_string(i);
    TensorId y = b.Conv2d(x, cfg.channels, 3, 1, Activation::kRelu,
                          graph::Padding::kSame, 1, p + "/a");
    y = b.Conv2d(y, cfg.channels, 3, 1, Activation::kNone,
                 graph::Padding::kSame, 1, p + "/b");
    x = b.Add(x, y, p + "/add");
  }
  x = b.Add(x, skip, "global_skip");

  // Upsample in feature space, then reconstruct; finally add the bilinear
  // upsample of the input so the network only learns the residual detail.
  x = b.ResizeBilinear(x, cfg.lr_size * 2, cfg.lr_size * 2, "up");
  x = b.Conv2d(x, cfg.channels, 3, 1, Activation::kRelu,
               graph::Padding::kSame, 1, "up_conv");
  x = b.Conv2d(x, 3, 3, 1, Activation::kNone, graph::Padding::kSame, 1,
               "reconstruct");
  const TensorId base =
      b.ResizeBilinear(input, cfg.lr_size * 2, cfg.lr_size * 2, "base_up");
  x = b.Add(x, base, "residual_out");
  b.MarkOutput(x);
  return std::move(b).Build();
}

infer::WeightStore InitializeSuperResWeights(const graph::Graph& g,
                                             std::uint64_t seed) {
  infer::WeightStore w = infer::InitializeWeights(g, seed);
  infer::Tensor rec = w.Get("reconstruct/w");
  for (auto& v : rec.values()) v *= 0.02f;
  w.Put("reconstruct/w", std::move(rec));
  return w;
}

}  // namespace mlpm::models
