// Lightweight runtime-check helpers.
//
// Per the C++ Core Guidelines (I.6/I.8, E.12), preconditions and invariants
// are expressed as named check functions that throw on violation rather than
// as macros.  All library code uses these; callers that cannot tolerate
// exceptions can catch `mlpm::CheckError` at the API boundary.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace mlpm {

// Thrown when a runtime precondition or invariant check fails.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void FailCheck(const char* kind, const std::string& what,
                                   const std::source_location& loc) {
  throw CheckError(std::string(kind) + " failed at " + loc.file_name() + ":" +
                   std::to_string(loc.line()) + " in " + loc.function_name() +
                   ": " + what);
}
}  // namespace detail

// Precondition check: argument contracts at API boundaries.
inline void Expects(bool cond, const std::string& what = "precondition",
                    const std::source_location loc =
                        std::source_location::current()) {
  if (!cond) detail::FailCheck("Expects", what, loc);
}

// Postcondition / invariant check inside implementations.
inline void Ensures(bool cond, const std::string& what = "invariant",
                    const std::source_location loc =
                        std::source_location::current()) {
  if (!cond) detail::FailCheck("Ensures", what, loc);
}

// Null-pointer precondition: returns the pointer unchanged so call sites can
// check and dereference in one expression,
//   backend(*NotNull(prepared.executor, "prepared model lost its executor"));
// Used at backend/harness API boundaries where a pointer is a contract, not
// an option — a null there must fail loudly at the boundary, not as UB at
// the eventual dereference.
template <typename T>
[[nodiscard]] T* NotNull(T* ptr,
                         const std::string& what = "pointer must not be null",
                         const std::source_location loc =
                             std::source_location::current()) {
  if (ptr == nullptr) detail::FailCheck("NotNull", what, loc);
  return ptr;
}

}  // namespace mlpm
