file(REMOVE_RECURSE
  "CMakeFiles/validate_trace_test.dir/validate_trace_test.cpp.o"
  "CMakeFiles/validate_trace_test.dir/validate_trace_test.cpp.o.d"
  "validate_trace_test"
  "validate_trace_test.pdb"
  "validate_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
