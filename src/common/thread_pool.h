// Fixed-size worker pool with a deterministic parallel-for.
//
// The execution engine parallelizes over *independent* output elements
// (GEMM row blocks, conv output rows, accuracy samples), so results are
// bit-identical regardless of thread count: ParallelFor statically
// partitions the index range into contiguous chunks and every element is
// computed by exactly one thread with the same serial code and the same
// per-element operation order.  No cross-thread reductions exist anywhere
// in the engine.
//
// Guarantees:
//   - Exceptions thrown by the body are captured and rethrown on the
//     calling thread (first one wins); the pool stays usable afterwards.
//   - Nested ParallelFor calls (a kernel inside an already-parallel
//     region, e.g. per-op parallelism under per-sample parallelism) run
//     inline on the calling thread, so they can never deadlock.
//   - Concurrent ParallelFor calls from different threads serialize.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mlpm {

class ThreadPool {
 public:
  // `thread_count` of 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t thread_count = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total execution lanes, including the calling thread.
  [[nodiscard]] std::size_t thread_count() const { return lanes_; }

  // Observability (DESIGN.md §11): parallel jobs dispatched to the worker
  // set (inline fast paths excluded) and the largest chunk fan-out seen —
  // the static-partition pool's analog of a queue depth.  Plain relaxed
  // atomics; snapshotted into the obs::MetricsRegistry by the harness.
  [[nodiscard]] std::uint64_t jobs_dispatched() const {
    return jobs_dispatched_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t peak_chunks() const {
    return peak_chunks_.load(std::memory_order_relaxed);
  }

  // body(chunk_begin, chunk_end) over a static partition of [begin, end)
  // into at most thread_count() contiguous chunks.  The calling thread
  // participates.  Blocks until every chunk has finished.
  using RangeBody = std::function<void(std::int64_t, std::int64_t)>;
  void ParallelFor(std::int64_t begin, std::int64_t end,
                   const RangeBody& body) const;

  // True while the calling thread is executing a ParallelFor chunk (of any
  // pool).  Nested calls detect this and run inline.
  [[nodiscard]] static bool InParallelRegion();

  // Process-wide shared pool (lazily created).  SetGlobalThreadCount
  // replaces it at the next Global() call; configure before parallel work
  // starts (e.g. CLI flag parsing), not while a run is in flight.
  [[nodiscard]] static ThreadPool& Global();
  static void SetGlobalThreadCount(std::size_t thread_count);

 private:
  struct Job {
    const RangeBody* body = nullptr;
    std::int64_t begin = 0;
    std::int64_t end = 0;
    std::size_t chunk_count = 0;
    std::atomic<std::size_t> next_chunk{0};
    // Guarded by the pool mutex.
    std::size_t chunks_done = 0;
    std::size_t entered = 0;
    std::size_t exited = 0;
    std::exception_ptr first_error;
  };

  void WorkerLoop();
  void RunChunks(Job& job) const;

  std::size_t lanes_ = 1;
  mutable std::atomic<std::uint64_t> jobs_dispatched_{0};
  mutable std::atomic<std::uint64_t> peak_chunks_{0};
  mutable std::mutex mu_;
  mutable std::condition_variable work_cv_;  // workers wait for a job
  mutable std::condition_variable done_cv_;  // the caller waits for finish
  mutable std::mutex submit_mu_;             // serializes concurrent callers
  mutable Job* job_ = nullptr;               // guarded by mu_
  mutable std::uint64_t generation_ = 0;     // guarded by mu_
  bool stop_ = false;                        // guarded by mu_
  std::vector<std::thread> workers_;
};

// Convenience wrapper used by kernels: runs inline when `pool` is null,
// single-threaded, or the range is trivial.
inline void ParallelForRange(const ThreadPool* pool, std::int64_t begin,
                             std::int64_t end,
                             const ThreadPool::RangeBody& body) {
  if (begin >= end) return;
  if (pool == nullptr || pool->thread_count() <= 1 || end - begin <= 1) {
    body(begin, end);
    return;
  }
  pool->ParallelFor(begin, end, body);
}

}  // namespace mlpm
