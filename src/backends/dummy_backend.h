// The "dummy" backend (paper §4.1: "We also provide a 'dummy' back end as
// an example reference for proprietary back ends; submitters replace it
// with whatever corresponds to their system" — Qualcomm with SNPE, Samsung
// with ENN).
//
// It documents the full SUT contract a vendor must implement:
//   * name() identifies the backend in logs and reports;
//   * IssueQuery() must complete every sample exactly once, after the
//     backend's real work, against the test clock;
//   * accuracy mode requires real output tensors; performance mode may
//     drop them.
// This implementation answers instantly with empty outputs — it will pass
// the LoadGen's protocol checks and fail every accuracy target, which is
// exactly what a skeleton should do.
#pragma once

#include <string>

#include "core/query.h"

namespace mlpm::backends {

class DummyBackend final : public loadgen::SystemUnderTest {
 public:
  explicit DummyBackend(std::string vendor_name = "dummy")
      : name_("dummy(" + std::move(vendor_name) + ")") {}

  [[nodiscard]] std::string_view name() const override { return name_; }

  void IssueQuery(std::span<const loadgen::QuerySample> samples,
                  loadgen::ResponseSink& sink) override {
    // A real backend would: stage inputs -> run the compiled model on the
    // vendor runtime -> complete with the outputs.  The dummy completes
    // immediately with nothing.
    for (const loadgen::QuerySample& s : samples) {
      sink.Complete(loadgen::QuerySampleResponse{s.id, {}});
      ++queries_answered_;
    }
  }

  [[nodiscard]] std::size_t queries_answered() const {
    return queries_answered_;
  }

 private:
  std::string name_;
  std::size_t queries_answered_ = 0;
};

}  // namespace mlpm::backends
