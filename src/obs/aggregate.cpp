#include "obs/aggregate.h"

#include <algorithm>
#include <limits>
#include <map>
#include <sstream>

#include "common/statistics.h"
#include "common/table.h"

namespace mlpm::obs {
namespace {

struct OpenSpan {
  std::size_t index;      // into the per-lane event list
  double end_us;
  double child_dur_us = 0.0;
};

}  // namespace

std::vector<OpAggregate> AggregateSpans(std::span<const TraceEvent> events,
                                        Domain domain,
                                        std::optional<std::string> category) {
  // Per-lane sorted span lists; self-time needs the nesting structure.
  std::map<int, std::vector<const TraceEvent*>> lanes;
  for (const TraceEvent& e : events) {
    if (e.phase != EventPhase::kComplete || e.domain != domain) continue;
    if (category && e.category != *category) continue;
    lanes[e.tid].push_back(&e);
  }

  std::map<std::string, std::pair<std::size_t, std::vector<double>>> by_name;
  for (auto& [tid, spans] : lanes) {
    std::stable_sort(spans.begin(), spans.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                       if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
                       return a->dur_us > b->dur_us;
                     });
    // Sweep with an enclosing-span stack: when a span closes, its duration
    // is charged to the parent's child time, and its own self time is its
    // duration minus its children's.
    std::vector<OpenSpan> stack;
    std::vector<double> self(spans.size());
    const auto close = [&](double up_to) {
      while (!stack.empty() && stack.back().end_us <= up_to + 1e-9) {
        const OpenSpan top = stack.back();
        stack.pop_back();
        const TraceEvent& e = *spans[top.index];
        self[top.index] = std::max(0.0, e.dur_us - top.child_dur_us);
        if (!stack.empty()) stack.back().child_dur_us += e.dur_us;
      }
    };
    for (std::size_t i = 0; i < spans.size(); ++i) {
      close(spans[i]->ts_us);
      stack.push_back(OpenSpan{i, spans[i]->ts_us + spans[i]->dur_us});
    }
    close(std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < spans.size(); ++i) {
      auto& [count, samples] = by_name[spans[i]->name];
      ++count;
      samples.push_back(self[i]);
    }
  }

  std::vector<OpAggregate> out;
  out.reserve(by_name.size());
  for (auto& [name, entry] : by_name) {
    auto& [count, samples] = entry;
    OpAggregate a;
    a.name = name;
    a.count = count;
    for (double s : samples) a.total_self_us += s;
    constexpr double kPercentiles[] = {50.0, 99.0};
    const std::vector<double> p = Percentiles(samples, kPercentiles);
    a.p50_self_us = p[0];
    a.p99_self_us = p[1];
    out.push_back(std::move(a));
  }
  std::sort(out.begin(), out.end(),
            [](const OpAggregate& a, const OpAggregate& b) {
              if (a.total_self_us != b.total_self_us)
                return a.total_self_us > b.total_self_us;
              return a.name < b.name;
            });
  return out;
}

std::string RenderAggregateTable(const std::vector<OpAggregate>& aggregates,
                                 const std::string& title) {
  if (aggregates.empty()) return {};
  TextTable t(title);
  t.SetHeader({"Op", "Count", "Total self", "p50 self", "p99 self"});
  for (const OpAggregate& a : aggregates)
    t.AddRow({a.name, std::to_string(a.count),
              FormatMs(a.total_self_us * 1e-6), FormatMs(a.p50_self_us * 1e-6),
              FormatMs(a.p99_self_us * 1e-6)});
  return t.Render();
}

std::string AggregateCsv(const std::vector<OpAggregate>& aggregates) {
  std::ostringstream os;
  os << "op,count,total_self_ms,p50_self_ms,p99_self_ms\n";
  os.precision(6);
  for (const OpAggregate& a : aggregates)
    os << a.name << ',' << a.count << ',' << a.total_self_us * 1e-3 << ','
       << a.p50_self_us * 1e-3 << ',' << a.p99_self_us * 1e-3 << '\n';
  return os.str();
}

}  // namespace mlpm::obs
