#include "core/dataset_qsl.h"

namespace mlpm::loadgen {

DatasetQsl::DatasetQsl(const datasets::TaskDataset& dataset,
                       std::size_t performance_sample_count)
    : dataset_(dataset),
      performance_sample_count_(performance_sample_count == 0
                                    ? dataset.size()
                                    : performance_sample_count) {}

std::size_t DatasetQsl::TotalSampleCount() const { return dataset_.size(); }

std::size_t DatasetQsl::PerformanceSampleCount() const {
  return performance_sample_count_;
}

void DatasetQsl::LoadSamplesToRam(std::span<const std::size_t> indices) {
  for (std::size_t i : indices) loaded_.try_emplace(i, dataset_.InputsFor(i));
}

void DatasetQsl::UnloadSamplesFromRam(std::span<const std::size_t> indices) {
  for (std::size_t i : indices) loaded_.erase(i);
}

const std::vector<infer::Tensor>& DatasetQsl::Loaded(std::size_t index) const {
  const auto it = loaded_.find(index);
  Expects(it != loaded_.end(),
          "sample " + std::to_string(index) + " not staged in RAM");
  return it->second;
}

}  // namespace mlpm::loadgen
