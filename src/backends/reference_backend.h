// The functional reference backend: runs mini-scale models numerically on
// the host CPU through the reference executor.  This is the repo's analogue
// of the paper's poorly-optimized reference TFLite backend (§3.3/§4.1) and
// is what accuracy mode runs against (model outputs are real tensors the
// data set can score).
//
// With a ThreadPool the backend defers samples at IssueQuery and evaluates
// the whole batch in FlushQueries, fanned out over pool threads; responses
// complete sequentially in issue order, so accuracy results are
// bit-identical to the serial path.  Deferred mode is only meant for
// accuracy runs: performance mode's virtual-clock latency accounting needs
// completion inside IssueQuery, so pass a null pool there.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/dataset_qsl.h"
#include "core/query.h"
#include "infer/executor.h"

namespace mlpm {
class ThreadPool;
}

namespace mlpm::backends {

class ReferenceBackend final : public loadgen::SystemUnderTest {
 public:
  // `executor` runs the model at the submission's numerics; `qsl` stages
  // the inputs.  Both must outlive the backend, as must `pool` (optional).
  ReferenceBackend(std::string name, const infer::Executor& executor,
                   const loadgen::DatasetQsl& qsl,
                   const ThreadPool* pool = nullptr);

  [[nodiscard]] std::string_view name() const override { return name_; }
  void IssueQuery(std::span<const loadgen::QuerySample> samples,
                  loadgen::ResponseSink& sink) override;
  void FlushQueries() override;

 private:
  std::string name_;
  const infer::Executor& executor_;
  const loadgen::DatasetQsl& qsl_;
  const ThreadPool* pool_;
  // Arena context for the serial IssueQuery path, created on first use and
  // reused for every sample.  IssueQuery is called sequentially per the SUT
  // contract, so one context suffices; the deferred path makes its own
  // per-worker contexts inside RunSamplesParallel.
  std::optional<infer::ExecutionContext> ctx_;
  // Deferred-mode state: samples queued by IssueQuery, completed in batch
  // by FlushQueries.
  std::vector<loadgen::QuerySample> pending_;
  loadgen::ResponseSink* sink_ = nullptr;
};

}  // namespace mlpm::backends
