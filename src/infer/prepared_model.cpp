#include "infer/prepared_model.h"

#include "common/thread_pool.h"

namespace mlpm::infer {

std::vector<std::vector<Tensor>> RunSamplesParallel(
    const Executor& executor, std::size_t count,
    const std::function<std::vector<Tensor>(std::size_t)>& inputs_for,
    const ThreadPool* pool) {
  std::vector<std::vector<Tensor>> results(count);
  // One arena context per chunk: each worker allocates its arena once and
  // reuses it for every sample in its range, so the steady state does no
  // per-sample activation allocation.
  ParallelForRange(pool, 0, static_cast<std::int64_t>(count),
                   [&](std::int64_t lo, std::int64_t hi) {
                     ExecutionContext ctx = executor.CreateContext();
                     for (std::int64_t i = lo; i < hi; ++i) {
                       const auto idx = static_cast<std::size_t>(i);
                       const std::vector<Tensor> inputs = inputs_for(idx);
                       results[idx] = executor.Run(inputs, ctx);
                     }
                   });
  return results;
}

}  // namespace mlpm::infer
