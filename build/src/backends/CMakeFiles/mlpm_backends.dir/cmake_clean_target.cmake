file(REMOVE_RECURSE
  "libmlpm_backends.a"
)
