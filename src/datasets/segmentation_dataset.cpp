#include "datasets/segmentation_dataset.h"

#include "common/rng.h"
#include "datasets/preprocess.h"
#include "datasets/synthetic_image.h"
#include "infer/executor.h"
#include "metrics/classification.h"

namespace mlpm::datasets {
namespace {
constexpr std::uint64_t kValidationSpace = 0;
constexpr std::uint64_t kCalibrationSpace = 1'000'000;

// Per-pixel argmax over the class dimension of [1,H,W,C] logits.
std::vector<int> ArgmaxMap(const infer::Tensor& logits) {
  const auto& s = logits.shape();
  const std::int64_t pixels = s.height() * s.width();
  const std::int64_t c = s.channels();
  std::vector<int> out(static_cast<std::size_t>(pixels));
  const float* p = logits.data();
  for (std::int64_t i = 0; i < pixels; ++i) {
    const float* px = p + i * c;
    int best = 0;
    for (std::int64_t k = 1; k < c; ++k)
      if (px[k] > px[best]) best = static_cast<int>(k);
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

}  // namespace

SegmentationDataset::SegmentationDataset(const graph::Graph& model,
                                         const infer::WeightStore& weights,
                                         SegmentationDatasetConfig config)
    : cfg_(config) {
  Expects(cfg_.num_samples > 0, "dataset must be non-empty");
  Expects(cfg_.num_classes >= 2, "need at least two classes");
  const infer::Executor teacher(model, weights, infer::NumericsMode::kFp32);
  Rng rng = Rng(cfg_.seed).Split(0x5EC5);
  const int ignore = static_cast<int>(cfg_.num_classes) - 1;

  labels_.reserve(cfg_.num_samples);
  for (std::size_t i = 0; i < cfg_.num_samples; ++i) {
    const std::vector<infer::Tensor> in = {MakeInput(kValidationSpace, i)};
    const std::vector<infer::Tensor> out = teacher.Run(in);
    std::vector<int> lab = ArgmaxMap(out[0]);
    if (cfg_.min_pixel_margin > 0.0) {
      // Relabel low-margin pixels to the catch-all class.
      const auto& s = out[0].shape();
      const std::int64_t pixels = s.height() * s.width();
      const std::int64_t c = s.channels();
      const float* p = out[0].data();
      for (std::int64_t px = 0; px < pixels; ++px) {
        float top1 = -1e30f, top2 = -1e30f;
        for (std::int64_t k = 0; k < c; ++k) {
          const float v = p[px * c + k];
          if (v > top1) {
            top2 = top1;
            top1 = v;
          } else if (v > top2) {
            top2 = v;
          }
        }
        if (top1 - top2 < cfg_.min_pixel_margin)
          lab[static_cast<std::size_t>(px)] = ignore;
      }
    }
    for (int& v : lab) {
      const double u = rng.NextDouble();
      if (u < cfg_.ignore_rate) {
        v = ignore;
      } else if (u < cfg_.ignore_rate + cfg_.pixel_flip_rate) {
        auto other = static_cast<int>(
            rng.NextBelow(static_cast<std::uint64_t>(cfg_.num_classes - 1)));
        if (other >= v) ++other;
        v = other;
      }
    }
    labels_.push_back(std::move(lab));
  }
}

infer::Tensor SegmentationDataset::MakeInput(std::uint64_t name_space,
                                             std::size_t index) const {
  SyntheticImageConfig img;
  img.height = img.width = cfg_.input_size + cfg_.input_size / 4;
  img.control_grid = 6;  // segmentation wants richer spatial structure
  infer::Tensor raw = GenerateImage(img, cfg_.seed + name_space,
                                    static_cast<std::uint64_t>(index));
  return DirectResizePreprocess(raw, cfg_.input_size);
}

std::vector<infer::Tensor> SegmentationDataset::InputsFor(
    std::size_t index) const {
  Expects(index < labels_.size(), "sample index out of range");
  std::vector<infer::Tensor> v;
  v.push_back(MakeInput(kValidationSpace, index));
  return v;
}

std::vector<infer::Tensor> SegmentationDataset::CalibrationInputsFor(
    std::size_t index) const {
  std::vector<infer::Tensor> v;
  v.push_back(MakeInput(kCalibrationSpace, index));
  return v;
}

const std::vector<int>& SegmentationDataset::LabelMapFor(
    std::size_t index) const {
  Expects(index < labels_.size(), "sample index out of range");
  return labels_[index];
}

double SegmentationDataset::ScoreOutputs(
    std::span<const std::vector<infer::Tensor>> outputs) const {
  Expects(outputs.size() == labels_.size(),
          "output count does not cover the dataset");
  // The catch-all class is scored per the paper: ground truth restricted to
  // the 31 frequent classes -> ignore the last class.
  metrics::MIoUAccumulator acc(static_cast<int>(cfg_.num_classes),
                               static_cast<int>(cfg_.num_classes) - 1);
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    Expects(!outputs[i].empty(), "missing model output");
    const std::vector<int> pred = ArgmaxMap(outputs[i][0]);
    acc.Add(pred, labels_[i]);
  }
  return acc.MeanIoU();
}

}  // namespace mlpm::datasets
