// Plain-text table rendering for the benchmark report generators.
//
// Every bench binary reproduces one of the paper's tables/figures as an
// aligned ASCII table so `bench_output.txt` reads like the paper's evaluation
// section.
#pragma once

#include <string>
#include <vector>

namespace mlpm {

class TextTable {
 public:
  // `title` is printed above the table; may be empty.
  explicit TextTable(std::string title = {});

  void SetHeader(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);
  // Inserts a horizontal rule before the next added row.
  void AddSeparator();

  // Render with column alignment.  Columns are sized to the widest cell.
  [[nodiscard]] std::string Render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

// Fixed-precision float formatting helpers for table cells.
[[nodiscard]] std::string FormatDouble(double v, int precision);
[[nodiscard]] std::string FormatMs(double seconds, int precision = 2);
[[nodiscard]] std::string FormatPercent(double fraction, int precision = 2);

}  // namespace mlpm
