#include "metrics/f1.h"

#include <algorithm>

#include "common/check.h"

namespace mlpm::metrics {

double SpanF1(const TokenSpan& prediction, const TokenSpan& truth) {
  const int overlap_start = std::max(prediction.start, truth.start);
  const int overlap_end = std::min(prediction.end, truth.end);
  const int overlap =
      overlap_end >= overlap_start ? overlap_end - overlap_start + 1 : 0;
  if (overlap == 0) return 0.0;
  const double p =
      static_cast<double>(overlap) / std::max(prediction.length(), 1);
  const double r = static_cast<double>(overlap) / std::max(truth.length(), 1);
  return 2.0 * p * r / (p + r);
}

double MeanSpanF1(std::span<const TokenSpan> predictions,
                  std::span<const TokenSpan> truths) {
  Expects(predictions.size() == truths.size(), "size mismatch");
  Expects(!predictions.empty(), "empty evaluation set");
  double sum = 0.0;
  for (std::size_t i = 0; i < predictions.size(); ++i)
    sum += SpanF1(predictions[i], truths[i]);
  return sum / static_cast<double>(predictions.size());
}

double ExactMatch(std::span<const TokenSpan> predictions,
                  std::span<const TokenSpan> truths) {
  Expects(predictions.size() == truths.size(), "size mismatch");
  Expects(!predictions.empty(), "empty evaluation set");
  std::size_t hits = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i)
    if (predictions[i].start == truths[i].start &&
        predictions[i].end == truths[i].end)
      ++hits;
  return static_cast<double>(hits) / static_cast<double>(predictions.size());
}

TokenSpan BestSpan(std::span<const float> start_logits,
                   std::span<const float> end_logits, int max_length) {
  Expects(start_logits.size() == end_logits.size(), "logit size mismatch");
  Expects(!start_logits.empty(), "empty logits");
  const int n = static_cast<int>(start_logits.size());
  TokenSpan best{0, 0};
  float best_score = start_logits[0] + end_logits[0];
  for (int s = 0; s < n; ++s) {
    const int last = std::min(n - 1, s + max_length - 1);
    for (int e = s; e <= last; ++e) {
      const float score = start_logits[static_cast<std::size_t>(s)] +
                          end_logits[static_cast<std::size_t>(e)];
      if (score > best_score) {
        best_score = score;
        best = TokenSpan{s, e};
      }
    }
  }
  return best;
}

}  // namespace mlpm::metrics
