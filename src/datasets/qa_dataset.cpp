#include "datasets/qa_dataset.h"

#include <algorithm>

#include "common/rng.h"
#include "infer/executor.h"

namespace mlpm::datasets {
namespace {
constexpr std::uint64_t kValidationSpace = 0;
constexpr std::uint64_t kCalibrationSpace = 1'000'000;

// Score gap between the chosen span and the best span that does not overlap
// it (a measure of how decisively the model answers).
double SpanMargin(const infer::Tensor& logits, const metrics::TokenSpan& best) {
  const std::int64_t seq = logits.shape().dim(0);
  const auto start = [&](std::int64_t s) { return logits.data()[s * 2 + 0]; };
  const auto end = [&](std::int64_t s) { return logits.data()[s * 2 + 1]; };
  const double best_score = start(best.start) + end(best.end);
  double alt = -1e30;
  for (std::int64_t s = 0; s < seq; ++s) {
    for (std::int64_t e = s; e < std::min(seq, s + 8); ++e) {
      const bool overlaps = !(e < best.start || s > best.end);
      if (overlaps) continue;
      alt = std::max(alt, static_cast<double>(start(s) + end(e)));
    }
  }
  return best_score - alt;
}

}  // namespace

QaDataset::QaDataset(const graph::Graph& model,
                     const infer::WeightStore& weights,
                     models::MobileBertConfig model_cfg,
                     QaDatasetConfig config)
    : model_cfg_(model_cfg), cfg_(config) {
  Expects(cfg_.num_samples > 0, "dataset must be non-empty");
  const infer::Executor teacher(model, weights, infer::NumericsMode::kFp32);
  Rng rng = Rng(cfg_.seed).Split(0xF1F1);

  truths_.reserve(cfg_.num_samples);
  token_indices_.reserve(cfg_.num_samples);
  std::size_t gen = 0;
  const std::size_t max_candidates = cfg_.num_samples * 64;
  while (truths_.size() < cfg_.num_samples) {
    Expects(gen < max_candidates,
            "min_teacher_margin too strict: candidate pool exhausted");
    const std::size_t i = gen++;
    const std::vector<infer::Tensor> in = {MakeTokens(kValidationSpace, i)};
    const std::vector<infer::Tensor> out = teacher.Run(in);
    metrics::TokenSpan span = SpanFromLogits(out[0]);
    if (cfg_.min_teacher_margin > 0.0 &&
        SpanMargin(out[0], span) < cfg_.min_teacher_margin)
      continue;
    token_indices_.push_back(i);
    if (rng.NextDouble() >= cfg_.teacher_agreement) {
      // Shift the truth span by a few tokens; partial overlap remains.
      const int shift =
          1 + static_cast<int>(rng.NextBelow(
                  static_cast<std::uint64_t>(cfg_.max_shift)));
      const int sign = rng.NextDouble() < 0.5 ? -1 : 1;
      const int seq = static_cast<int>(model_cfg_.seq_len);
      span.start = std::clamp(span.start + sign * shift, 0, seq - 1);
      span.end = std::clamp(span.end + sign * shift, span.start, seq - 1);
    }
    truths_.push_back(span);
  }
}

infer::Tensor QaDataset::MakeTokens(std::uint64_t name_space,
                                    std::size_t index) const {
  Rng rng = Rng(cfg_.seed + name_space).Split(index);
  infer::Tensor t(graph::TensorShape({model_cfg_.seq_len}));
  for (auto& v : t.values())
    v = static_cast<float>(rng.NextBelow(
        static_cast<std::uint64_t>(model_cfg_.vocab_size)));
  return t;
}

std::vector<infer::Tensor> QaDataset::InputsFor(std::size_t index) const {
  Expects(index < truths_.size(), "sample index out of range");
  std::vector<infer::Tensor> v;
  v.push_back(MakeTokens(kValidationSpace, token_indices_[index]));
  return v;
}

std::vector<infer::Tensor> QaDataset::CalibrationInputsFor(
    std::size_t index) const {
  std::vector<infer::Tensor> v;
  v.push_back(MakeTokens(kCalibrationSpace, index));
  return v;
}

metrics::TokenSpan QaDataset::TruthFor(std::size_t index) const {
  Expects(index < truths_.size(), "sample index out of range");
  return truths_[index];
}

metrics::TokenSpan QaDataset::SpanFromLogits(
    const infer::Tensor& logits) const {
  // Logits are [seq, 2]: column 0 start, column 1 end.
  const std::int64_t seq = logits.shape().dim(0);
  std::vector<float> start(static_cast<std::size_t>(seq));
  std::vector<float> end(static_cast<std::size_t>(seq));
  for (std::int64_t s = 0; s < seq; ++s) {
    start[static_cast<std::size_t>(s)] = logits.data()[s * 2 + 0];
    end[static_cast<std::size_t>(s)] = logits.data()[s * 2 + 1];
  }
  return metrics::BestSpan(start, end, cfg_.max_answer_length);
}

double QaDataset::ScoreOutputs(
    std::span<const std::vector<infer::Tensor>> outputs) const {
  Expects(outputs.size() == truths_.size(),
          "output count does not cover the dataset");
  std::vector<metrics::TokenSpan> preds;
  preds.reserve(outputs.size());
  for (const auto& out : outputs) {
    Expects(!out.empty(), "missing model output");
    preds.push_back(SpanFromLogits(out[0]));
  }
  return metrics::MeanSpanF1(preds, truths_);
}

}  // namespace mlpm::datasets
