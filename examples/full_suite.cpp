// Full benchmark session: the headless equivalent of the MLPerf Mobile app
// (paper App. A) — accuracy + performance for all four tasks under the run
// rules, followed by the submission checker and the independent audit.
//
// Usage: full_suite [chipset-index 0..7]
//   0 Dimensity 820    4 Dimensity 1100
//   1 Exynos 990       5 Exynos 2100
//   2 Snapdragon 865+  6 Snapdragon 888
//   3 Core i7-1165G7   7 Core i7-11375H
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harness/app.h"
#include "harness/audit.h"
#include "harness/report.h"

int main(int argc, char** argv) {
  using namespace mlpm;

  std::vector<soc::ChipsetDesc> all = soc::CatalogV07();
  for (soc::ChipsetDesc& c : soc::CatalogV10()) all.push_back(std::move(c));
  const std::size_t pick =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 5;
  if (pick >= all.size()) {
    std::fprintf(stderr, "chipset index must be 0..%zu\n", all.size() - 1);
    return 1;
  }
  const soc::ChipsetDesc& chipset = all[pick];
  const models::SuiteVersion version = pick < 4
                                           ? models::SuiteVersion::kV0_7
                                           : models::SuiteVersion::kV1_0;

  std::printf("running the full MLPerf Mobile %s suite on %s ...\n\n",
              std::string(ToString(version)).c_str(), chipset.name.c_str());

  harness::SuiteBundles bundles;
  const harness::AppRunOutput out =
      harness::RunMobileApp(chipset, version, bundles);
  std::printf("%s\n%s\n", out.report_text.c_str(), out.checker_text.c_str());

  // Independent audit: re-run and require agreement within 5% (§6.2).
  const harness::AuditReport audit =
      harness::AuditSubmission(chipset, out.result, bundles);
  std::printf("%s\n", harness::FormatAuditReport(audit).c_str());
  return out.submission_valid && audit.accepted ? 0 : 1;
}
