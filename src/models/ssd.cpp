#include "models/ssd.h"

#include <string>
#include <vector>

#include "models/mobilenet_v2.h"

namespace mlpm::models {

using graph::Activation;
using graph::GraphBuilder;
using graph::TensorId;

namespace {

// One SSD prediction head over a feature map.  Returns reshaped
// ([n,4], [n,classes]) tensors.  `separable` selects SSDLite-style
// depthwise-separable prediction convs.
struct HeadOut {
  TensorId boxes;
  TensorId classes;
};

HeadOut PredictionHead(GraphBuilder& b, TensorId feat,
                       std::int64_t anchors_per_cell, std::int64_t num_classes,
                       bool separable, const std::string& name) {
  const auto& s = b.ShapeOf(feat);
  const std::int64_t cells = s.height() * s.width();

  const auto head_conv = [&](std::int64_t out_ch, const std::string& n) {
    if (separable) {
      const TensorId dw =
          b.DepthwiseConv2d(feat, 3, 1, Activation::kRelu6,
                            graph::Padding::kSame, 1, n + "_dw");
      return b.Conv2d(dw, out_ch, 1, 1, Activation::kNone,
                      graph::Padding::kSame, 1, n + "_pw");
    }
    return b.Conv2d(feat, out_ch, 3, 1, Activation::kNone,
                    graph::Padding::kSame, 1, n);
  };

  TensorId boxes = head_conv(anchors_per_cell * 4, name + "_box");
  boxes = b.Reshape(boxes, {cells * anchors_per_cell, 4}, name + "_box_r");
  TensorId cls = head_conv(anchors_per_cell * num_classes, name + "_cls");
  cls = b.Reshape(cls, {cells * anchors_per_cell, num_classes},
                  name + "_cls_r");
  return HeadOut{boxes, cls};
}

DetectionModel FinishSsd(GraphBuilder&& b,
                         const std::vector<TensorId>& feature_maps,
                         const std::vector<AnchorSet::FeatureMapSpec>& specs,
                         std::int64_t num_classes, std::int64_t input_size,
                         bool separable_heads, std::size_t regular_head_count) {
  Expects(feature_maps.size() == specs.size(),
          "feature map / anchor spec mismatch");
  std::vector<TensorId> box_parts;
  std::vector<TensorId> cls_parts;
  for (std::size_t i = 0; i < feature_maps.size(); ++i) {
    const bool separable = separable_heads && i >= regular_head_count;
    const HeadOut h = PredictionHead(
        b, feature_maps[i], AnchorSet::PerCell(specs[i]), num_classes,
        separable, "head" + std::to_string(i));
    box_parts.push_back(h.boxes);
    cls_parts.push_back(h.classes);
  }
  const TensorId boxes = b.Concat(box_parts, 0, "all_boxes");
  const TensorId classes = b.Concat(cls_parts, 0, "all_classes");
  b.MarkOutput(boxes);
  b.MarkOutput(classes);

  DetectionModel m{std::move(b).Build(), AnchorSet::Build(specs), num_classes,
                   input_size};
  // Output row count must equal the anchor count.
  const auto& g = m.graph;
  Ensures(g.tensor(g.output_ids()[0]).shape.dim(0) ==
              static_cast<std::int64_t>(m.anchors.size()),
          "anchor grid does not match model heads");
  return m;
}

}  // namespace

DetectionModel BuildSsdMobileNetV2(ModelScale scale) {
  if (scale == ModelScale::kMini) {
    GraphBuilder b("ssd_mobilenet_v2_mini");
    TensorId x = b.Input("images", {1, 32, 32, 3});
    x = b.Conv2d(x, 8, 3, 2, Activation::kRelu6);       // 16x16
    x = InvertedBottleneck(b, x, 16, 4, 2);             // 8x8
    TensorId f0 = InvertedBottleneck(b, x, 24, 4, 2);   // 4x4
    f0 = InvertedBottleneck(b, f0, 24, 4, 1);
    TensorId f1 = b.Conv2d(f0, 32, 3, 2, Activation::kRelu6);  // 2x2

    std::vector<AnchorSet::FeatureMapSpec> specs = {
        {4, {0.3f}, {1.0f, 2.0f, 0.5f}},
        {2, {0.7f}, {1.0f, 2.0f, 0.5f}},
    };
    return FinishSsd(std::move(b), {f0, f1}, specs, /*num_classes=*/8,
                     /*input_size=*/32, /*separable_heads=*/false,
                     /*regular_head_count=*/2);
  }

  GraphBuilder b("ssd_mobilenet_v2");
  TensorId input = b.Input("images", {1, 300, 300, 3});
  MobileNetV2Options opts;
  const BackboneFeatures f = BuildMobileNetV2Backbone(b, input, opts);

  // Feature 1: stride-16 (19x19) tap; Feature 2: final 1x1 1280 conv (10x10).
  const TensorId feat1 = f.mid;
  const TensorId feat2 =
      b.Conv2d(f.high, 1280, 1, 1, Activation::kRelu6, graph::Padding::kSame,
               1, "feat2_conv");

  // Extra SSD feature layers: 1x1 squeeze + 3x3 stride-2 expand.
  const auto extra = [&b](TensorId in, std::int64_t squeeze,
                          std::int64_t out_ch, const std::string& n) {
    TensorId y = b.Conv2d(in, squeeze, 1, 1, Activation::kRelu6,
                          graph::Padding::kSame, 1, n + "_sq");
    return b.Conv2d(y, out_ch, 3, 2, Activation::kRelu6,
                    graph::Padding::kSame, 1, n + "_ex");
  };
  const TensorId feat3 = extra(feat2, 256, 512, "extra3");  // 5x5
  const TensorId feat4 = extra(feat3, 128, 256, "extra4");  // 3x3
  const TensorId feat5 = extra(feat4, 128, 256, "extra5");  // 2x2
  const TensorId feat6 = extra(feat5, 64, 128, "extra6");   // 1x1

  // SSD300 anchor layout: 3 anchors on the first map, 6 on the rest.
  const std::vector<float> ar3 = {1.0f, 2.0f, 0.5f};
  const std::vector<float> ar6 = {1.0f, 2.0f, 0.5f, 3.0f, 1.0f / 3.0f, 1.3f};
  std::vector<AnchorSet::FeatureMapSpec> specs = {
      {19, {0.2f}, ar3},  {10, {0.35f}, ar6}, {5, {0.5f}, ar6},
      {3, {0.65f}, ar6},  {2, {0.8f}, ar6},   {1, {0.95f}, ar6},
  };
  // Regular (non-separable) heads everywhere: this is the 17M-parameter
  // v0.7 reference variant (Table 1).
  return FinishSsd(std::move(b), {feat1, feat2, feat3, feat4, feat5, feat6},
                   specs, /*num_classes=*/91, /*input_size=*/300,
                   /*separable_heads=*/false, /*regular_head_count=*/6);
}

DetectionModel BuildMobileDetSsd(ModelScale scale) {
  if (scale == ModelScale::kMini) {
    GraphBuilder b("mobiledet_ssd_mini");
    TensorId x = b.Input("images", {1, 32, 32, 3});
    x = b.Conv2d(x, 8, 3, 2, Activation::kRelu6);               // 16x16
    x = InvertedBottleneck(b, x, 16, 4, 2, 3, /*fused=*/true);  // 8x8
    TensorId f0 = InvertedBottleneck(b, x, 24, 4, 2);           // 4x4
    f0 = b.Conv2d(f0, 24, 3, 1, Activation::kRelu6);  // regular conv inject
    TensorId f1 = b.Conv2d(f0, 32, 3, 2, Activation::kRelu6);   // 2x2

    std::vector<AnchorSet::FeatureMapSpec> specs = {
        {4, {0.3f}, {1.0f, 2.0f, 0.5f}},
        {2, {0.7f}, {1.0f, 2.0f, 0.5f}},
    };
    return FinishSsd(std::move(b), {f0, f1}, specs, /*num_classes=*/8,
                     /*input_size=*/32, /*separable_heads=*/true,
                     /*regular_head_count=*/0);
  }

  GraphBuilder b("mobiledet_ssd");
  TensorId x = b.Input("images", {1, 320, 320, 3});
  // MobileDet backbone: fused IBNs early, regular convolutions injected at
  // accuracy-latency sweet spots (paper §3.2), depthwise IBNs later.
  x = b.Conv2d(x, 32, 3, 2, Activation::kRelu6, graph::Padding::kSame, 1,
               "stem");                                          // 160
  x = InvertedBottleneck(b, x, 16, 1, 1, 3, /*fused=*/true);
  x = InvertedBottleneck(b, x, 32, 4, 2, 3, /*fused=*/true);     // 80
  x = InvertedBottleneck(b, x, 32, 4, 1, 3, /*fused=*/true);
  x = InvertedBottleneck(b, x, 48, 4, 2, 3, /*fused=*/true);     // 40
  x = b.Conv2d(x, 48, 3, 1, Activation::kRelu6, graph::Padding::kSame, 1,
               "reg_inject1");  // regular conv injection
  x = InvertedBottleneck(b, x, 96, 4, 2);                        // 20
  x = InvertedBottleneck(b, x, 96, 4, 1);
  x = InvertedBottleneck(b, x, 136, 4, 1);
  TensorId feat1 = InvertedBottleneck(b, x, 136, 4, 1);          // 20x20
  x = InvertedBottleneck(b, feat1, 160, 8, 2);                   // 10
  x = b.Conv2d(x, 160, 3, 1, Activation::kRelu6, graph::Padding::kSame, 1,
               "reg_inject2");
  x = InvertedBottleneck(b, x, 384, 8, 1);
  const TensorId feat2 = b.Conv2d(x, 1280, 1, 1, Activation::kRelu6,
                                  graph::Padding::kSame, 1,
                                  "endpoint_conv");               // 10x10

  const auto extra = [&b](TensorId in, std::int64_t squeeze,
                          std::int64_t out_ch, const std::string& n) {
    TensorId y = b.Conv2d(in, squeeze, 1, 1, Activation::kRelu6,
                          graph::Padding::kSame, 1, n + "_sq");
    TensorId dw = b.DepthwiseConv2d(y, 3, 2, Activation::kRelu6,
                                    graph::Padding::kSame, 1, n + "_dw");
    return b.Conv2d(dw, out_ch, 1, 1, Activation::kRelu6,
                    graph::Padding::kSame, 1, n + "_pw");
  };
  const TensorId feat3 = extra(feat2, 192, 384, "extra3");  // 5x5
  const TensorId feat4 = extra(feat3, 128, 256, "extra4");  // 3x3
  const TensorId feat5 = extra(feat4, 128, 256, "extra5");  // 2x2
  const TensorId feat6 = extra(feat5, 96, 192, "extra6");   // 1x1

  const std::vector<float> ar3 = {1.0f, 2.0f, 0.5f};
  const std::vector<float> ar6 = {1.0f, 2.0f, 0.5f, 3.0f, 1.0f / 3.0f, 1.3f};
  std::vector<AnchorSet::FeatureMapSpec> specs = {
      {20, {0.2f}, ar3},  {10, {0.35f}, ar6}, {5, {0.5f}, ar6},
      {3, {0.65f}, ar6},  {2, {0.8f}, ar6},   {1, {0.95f}, ar6},
  };
  // SSDLite: all heads separable (this is what keeps MobileDet at ~4M).
  return FinishSsd(std::move(b), {feat1, feat2, feat3, feat4, feat5, feat6},
                   specs, /*num_classes=*/91, /*input_size=*/320,
                   /*separable_heads=*/true, /*regular_head_count=*/0);
}

}  // namespace mlpm::models
