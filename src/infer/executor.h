// Reference numeric executor.
//
// Executes a graph::Graph on the CPU with straightforward NHWC kernels.
// This is the stand-in for the paper's poorly-optimized reference TFLite
// implementation (§3.3): correct, simple, and the source of FP32 ground
// truth for the teacher-labelled datasets.
//
// Numerics modes (paper §5.1/§7.5):
//   kFp32 — plain float.
//   kFp16 — weights and every node output rounded through binary16.
//   kInt8 — weights fake-quantized symmetric (per-channel by default);
//           activations fake-quantized asymmetric using calibrated ranges.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "infer/memory_plan.h"
#include "infer/quant_params.h"
#include "infer/tensor.h"
#include "infer/weights.h"

namespace mlpm {
class ThreadPool;
}

namespace mlpm::infer {

class Executor;

// Reusable execution state for the arena path: one contiguous activation
// arena sized by the executor's MemoryPlan, plus prebuilt view tensors for
// every planned activation.  Create one per thread (a context is not
// thread-safe) and reuse it across samples — every kernel fully overwrites
// its output range, so nothing is cleared between runs.  The executor must
// outlive the context.
class ExecutionContext {
 public:
  explicit ExecutionContext(const Executor& executor);

  [[nodiscard]] const MemoryPlan& plan() const { return *plan_; }
  [[nodiscard]] std::size_t arena_bytes() const {
    return arena_.size() * sizeof(float);
  }

 private:
  friend class Executor;
  const MemoryPlan* plan_;
  std::vector<float> arena_;
  // Arena views indexed by TensorId (default tensors for unplanned slots).
  std::vector<Tensor> slots_;
  // Graph inputs bound for the current Run, indexed by TensorId.
  std::vector<const Tensor*> external_;
};

enum class NumericsMode : std::uint8_t { kFp32, kFp16, kInt8 };

[[nodiscard]] constexpr std::string_view ToString(NumericsMode m) {
  switch (m) {
    case NumericsMode::kFp32: return "FP32";
    case NumericsMode::kFp16: return "FP16";
    case NumericsMode::kInt8: return "INT8";
  }
  return "?";
}

// Called after each node executes, with the node's output tensor.  Used by
// the quantizer to record activation ranges during calibration.
using NodeObserver =
    std::function<void(graph::TensorId, const Tensor&)>;

class Executor {
 public:
  // `graph` and `weights` must outlive the executor.  For kInt8 mode,
  // `quant` must be non-null and is copied.
  Executor(const graph::Graph& graph, const WeightStore& weights,
           NumericsMode mode = NumericsMode::kFp32,
           const QuantParams* quant = nullptr);

  // Runs the graph; `inputs` must match graph.input_ids() in order and
  // shape.  Returns one tensor per graph output.
  [[nodiscard]] std::vector<Tensor> Run(std::span<const Tensor> inputs) const;

  // As Run, but invokes `observer` on every node output (pre-quantization).
  [[nodiscard]] std::vector<Tensor> Run(std::span<const Tensor> inputs,
                                        const NodeObserver& observer) const;

  // As above, additionally parallelizing kernels over independent output
  // elements on `pool` (may be null).  Results are bit-identical to the
  // serial overloads for any thread count: each output element is computed
  // by exactly one thread with the same per-element operation order, and no
  // cross-thread reductions exist.  The observer runs on the calling thread.
  [[nodiscard]] std::vector<Tensor> Run(std::span<const Tensor> inputs,
                                        const NodeObserver& observer,
                                        const ThreadPool* pool) const;

  // Arena execution: activations live in `ctx`'s preplanned arena instead
  // of per-node heap allocations; graph inputs are bound as read-only
  // views (never copied).  Bit-identical to the legacy overloads above for
  // every numerics mode and thread count.  `ctx` must have been created
  // from this executor; reuse it across calls on one thread.
  [[nodiscard]] std::vector<Tensor> Run(std::span<const Tensor> inputs,
                                        ExecutionContext& ctx,
                                        const NodeObserver& observer = {},
                                        const ThreadPool* pool = nullptr) const;

  [[nodiscard]] ExecutionContext CreateContext() const {
    return ExecutionContext(*this);
  }

  [[nodiscard]] NumericsMode mode() const { return mode_; }
  [[nodiscard]] const graph::Graph& graph() const { return graph_; }
  // The static activation plan (built once at construction).
  [[nodiscard]] const MemoryPlan& memory_plan() const { return plan_; }

 private:
  [[nodiscard]] const Tensor& WeightFor(graph::TensorId id) const;

  const graph::Graph& graph_;
  NumericsMode mode_;
  QuantParams quant_;
  MemoryPlan plan_;
  // Weights transformed once for the executor's numerics mode, indexed by
  // TensorId (nullptr for activation slots).
  std::vector<std::unique_ptr<Tensor>> prepared_weights_;
};

}  // namespace mlpm::infer
