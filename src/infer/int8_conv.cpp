#include "infer/int8_conv.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/thread_pool.h"
#include "graph/graph.h"
#include "infer/int8_gemm.h"

namespace mlpm::infer {

QuantizationParams ChooseQuantParams(float min, float max) {
  min = std::min(min, 0.0f);
  max = std::max(max, 0.0f);
  QuantizationParams p;
  if (max - min < 1e-12f) {
    p.scale = 1.0f;
    p.zero_point = 0;
    return p;
  }
  p.scale = (max - min) / 255.0f;
  p.zero_point = static_cast<std::int32_t>(std::lround(-min / p.scale));
  p.zero_point = std::clamp(p.zero_point, 0, 255);
  return p;
}

PackedConvWeights PackConvWeights(const Tensor& weights,
                                  const QuantizationParams& weight_params) {
  const auto& ws = weights.shape();
  Expects(ws.rank() == 4, "weights must be [O,KH,KW,C]");
  Expects(ws.dim(1) == ws.dim(2), "square kernels only");
  PackedConvWeights packed;
  packed.params = weight_params;
  packed.out_channels = ws.dim(0);
  packed.kernel = static_cast<int>(ws.dim(1));
  packed.in_channels = ws.dim(3);
  packed.data.resize(weights.size());
  QuantizeU8(weights.values(), weight_params.scale, weight_params.zero_point,
             packed.data);
  return packed;
}

Tensor ConvInt8NHWC(const Tensor& input, const PackedConvWeights& packed,
                    const Tensor& bias, int stride, graph::Padding padding,
                    const QuantizationParams& input_params,
                    ConvScratch* scratch, const ThreadPool* pool,
                    const kernels::KernelTable* table) {
  const auto& is = input.shape();
  Expects(is.rank() == 4 && is.batch() == 1, "input must be [1,H,W,C]");
  Expects(packed.in_channels == is.channels(), "channel mismatch");
  const std::int64_t ih = is.height(), iw = is.width(), c = is.channels();
  const std::int64_t oc = packed.out_channels;
  const int k = packed.kernel;
  const std::int64_t oh = graph::ConvOutDim(ih, k, stride, 1, padding);
  const std::int64_t ow = graph::ConvOutDim(iw, k, stride, 1, padding);
  Expects(static_cast<std::int64_t>(bias.size()) == oc,
          "bias size mismatch");

  ConvScratch local;
  ConvScratch& s = scratch != nullptr ? *scratch : local;

  // Quantize the input.
  s.input_q.resize(input.size());
  QuantizeU8(input.values(), input_params.scale, input_params.zero_point,
             s.input_q);

  // im2col: rows = output pixels, cols = k*k*c patch; padding cells hold
  // the input zero-point (exact quantized 0).  Each output row y writes a
  // disjoint slice of `cols`, so rows parallelize independently.
  const std::int64_t patch = static_cast<std::int64_t>(k) * k * c;
  const std::int64_t rows = oh * ow;
  s.cols.assign(static_cast<std::size_t>(rows * patch),
                static_cast<std::uint8_t>(input_params.zero_point));
  const std::int64_t pad_h =
      padding == graph::Padding::kSame
          ? std::max<std::int64_t>(0, ((oh - 1) * stride + k - ih) / 2)
          : 0;
  const std::int64_t pad_w =
      padding == graph::Padding::kSame
          ? std::max<std::int64_t>(0, ((ow - 1) * stride + k - iw) / 2)
          : 0;
  ParallelForRange(pool, 0, oh, [&](std::int64_t y_lo, std::int64_t y_hi) {
    for (std::int64_t y = y_lo; y < y_hi; ++y) {
      for (std::int64_t x = 0; x < ow; ++x) {
        std::uint8_t* row = s.cols.data() + (y * ow + x) * patch;
        for (int ky = 0; ky < k; ++ky) {
          const std::int64_t sy = y * stride - pad_h + ky;
          if (sy < 0 || sy >= ih) continue;
          for (int kx = 0; kx < k; ++kx) {
            const std::int64_t sx = x * stride - pad_w + kx;
            if (sx < 0 || sx >= iw) continue;
            std::copy_n(s.input_q.data() + (sy * iw + sx) * c, c,
                        row + (static_cast<std::int64_t>(ky) * k + kx) * c);
          }
        }
      }
    }
  });

  // GEMM: [rows, patch] x [oc, patch]^T -> int32 accumulators.
  s.acc.resize(static_cast<std::size_t>(rows * oc));
  GemmU8U8I32(s.cols, input_params.zero_point, packed.data,
              packed.params.zero_point, static_cast<std::size_t>(rows),
              static_cast<std::size_t>(oc), static_cast<std::size_t>(patch),
              s.acc, table != nullptr ? *table : kernels::ScalarKernels(),
              pool);

  // Requantize to float and add the (float/INT32-precision) bias.
  Tensor out(graph::TensorShape({1, oh, ow, oc}));
  ParallelForRange(pool, 0, rows, [&](std::int64_t r_lo, std::int64_t r_hi) {
    for (std::int64_t r = r_lo; r < r_hi; ++r)
      for (std::int64_t o = 0; o < oc; ++o)
        out.data()[r * oc + o] =
            DequantizeAcc(s.acc[static_cast<std::size_t>(r * oc + o)],
                          input_params.scale, packed.params.scale) +
            bias.data()[o];
  });
  return out;
}

Tensor ConvInt8NHWC(const Tensor& input, const Tensor& weights,
                    const Tensor& bias, int stride, graph::Padding padding,
                    const QuantizationParams& input_params,
                    const QuantizationParams& weight_params) {
  const PackedConvWeights packed = PackConvWeights(weights, weight_params);
  return ConvInt8NHWC(input, packed, bias, stride, padding, input_params);
}

}  // namespace mlpm::infer
