// Frozen-model serialization (paper §5.1: "the reference models are frozen
// TensorFlow FP32 checkpoints, and valid submissions must begin from these
// frozen graphs").  This is the repo's checkpoint format: a line-oriented
// text encoding of the graph structure that round-trips exactly, so the
// audit can load a submitted model file and fingerprint-compare it against
// the reference.
//
// Weights are serialized separately (infer/weights.h side); the graph file
// carries structure only — which is precisely what the equivalence rules
// constrain.
#pragma once

#include <string>

#include "graph/graph.h"

namespace mlpm::graph {

// Serializes the full structure: tensors (name/shape/kind), nodes
// (op/attrs/inputs/weights/output), graph inputs/outputs.
[[nodiscard]] std::string SerializeGraph(const Graph& g);

// Parses a serialized graph; throws CheckError on malformed input.  The
// result satisfies Validate() and has the same StructuralFingerprint() as
// the original.
[[nodiscard]] Graph ParseGraph(const std::string& text);

}  // namespace mlpm::graph
