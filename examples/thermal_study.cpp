// Thermal-throttling study (paper §6.1): why the run rules mandate
// room temperature, ventilation and cooldown intervals.
//
// Runs back-to-back single-stream segmentation bursts on a phone SoC and
// reports latency drift and die temperature, with and without the
// prescribed cooldown between bursts.
#include <cstdio>

#include "backends/vendor_policy.h"
#include "common/table.h"
#include "models/zoo.h"
#include "soc/simulator.h"

namespace {

using namespace mlpm;

struct BurstStats {
  double first_ms = 0.0;
  double last_ms = 0.0;
  double temp_c = 0.0;
};

BurstStats RunBurst(soc::SocSimulator& sim, const soc::CompiledModel& model,
                    int inferences) {
  BurstStats s;
  for (int i = 0; i < inferences; ++i) {
    const soc::InferenceResult r = sim.RunInference(model);
    if (i == 0) s.first_ms = r.latency_s * 1e3;
    s.last_ms = r.latency_s * 1e3;
  }
  s.temp_c = sim.thermal().temperature_c();
  return s;
}

}  // namespace

int main() {
  const soc::ChipsetDesc chipset = soc::Snapdragon888();
  const models::BenchmarkEntry seg =
      models::SuiteFor(models::SuiteVersion::kV1_0)[2];
  const graph::Graph model = models::BuildReferenceGraph(
      seg, models::SuiteVersion::kV1_0, models::ModelScale::kFull);
  const backends::SubmissionConfig sub = backends::GetSubmission(
      chipset, seg.task, models::SuiteVersion::kV1_0);
  const soc::CompiledModel plan =
      backends::CompileSubmission(chipset, sub, model);

  constexpr int kBursts = 6;
  constexpr int kInferencesPerBurst = 2000;

  for (const double cooldown_s : {0.0, 60.0, 300.0}) {
    soc::SocSimulator sim(chipset);
    TextTable table("segmentation bursts on " + chipset.name +
                    ", cooldown between bursts = " +
                    FormatDouble(cooldown_s, 0) + " s");
    table.SetHeader({"Burst", "first latency", "last latency", "die temp"});
    for (int b = 0; b < kBursts; ++b) {
      const BurstStats s = RunBurst(sim, plan, kInferencesPerBurst);
      table.AddRow({std::to_string(b + 1), FormatDouble(s.first_ms, 2) + " ms",
                    FormatDouble(s.last_ms, 2) + " ms",
                    FormatDouble(s.temp_c, 1) + " C"});
      sim.Cooldown(cooldown_s);
    }
    std::printf("%s\n", table.Render().c_str());
  }
  std::printf(
      "without cooldown the SoC saturates its thermal envelope and the\n"
      "steady-state latency is set by the throttle floor — the paper's\n"
      "reason for mandating cooldown intervals and 20-25 degC ambient.\n");
  return 0;
}
