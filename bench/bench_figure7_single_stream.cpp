// Figure 7 — v0.7 single-stream results for the three smartphone chipsets
// across the four tasks: latency and throughput, with the winner per task.
//
// Paper shape: MediaTek Dimensity scores highest throughput on object
// detection and image segmentation; Samsung Exynos wins image
// classification and NLP; Qualcomm Snapdragon is competitive on image
// segmentation and NLP.  The same general trend holds in v1.0.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "common/barchart.h"
#include "common/table.h"

int main() {
  using namespace mlpm;

  const models::TaskType tasks[] = {
      models::TaskType::kImageClassification,
      models::TaskType::kObjectDetection,
      models::TaskType::kImageSegmentation,
      models::TaskType::kQuestionAnswering,
  };
  const char* task_names[] = {"classification", "detection", "segmentation",
                              "NLP"};

  for (const models::SuiteVersion version :
       {models::SuiteVersion::kV0_7, models::SuiteVersion::kV1_0}) {
    std::vector<soc::ChipsetDesc> phones;
    for (soc::ChipsetDesc& c : version == models::SuiteVersion::kV0_7
                                   ? soc::CatalogV07()
                                   : soc::CatalogV10())
      if (!c.name.starts_with("Core i7")) phones.push_back(std::move(c));

    TextTable t("Figure 7 — " + std::string(ToString(version)) +
                " smartphone single-stream (p90 latency / throughput q/s)");
    t.SetHeader({"Chipset", "classification", "detection", "segmentation",
                 "NLP"});
    std::map<std::size_t, std::pair<std::string, double>> winner;
    for (const soc::ChipsetDesc& chipset : phones) {
      std::vector<std::string> row{chipset.name};
      for (std::size_t i = 0; i < 4; ++i) {
        const benchutil::PerfOutcome p =
            benchutil::RunSingleStream(chipset, version, tasks[i]);
        const double qps = 1.0 / p.p90_latency_s;
        row.push_back(FormatMs(p.p90_latency_s) + " / " +
                      FormatDouble(qps, 1));
        if (!winner.contains(i) || qps > winner[i].second)
          winner[i] = {chipset.name, qps};
      }
      t.AddRow(std::move(row));
    }
    std::vector<std::string> wrow{"highest throughput"};
    for (std::size_t i = 0; i < 4; ++i) wrow.push_back(winner[i].first);
    t.AddSeparator();
    t.AddRow(std::move(wrow));
    std::printf("%s\n", t.Render().c_str());

    // The figure itself: throughput bars per task (as in the paper).
    BarChart chart("throughput (queries/second), " +
                       std::string(ToString(version)),
                   "q/s");
    for (std::size_t i = 0; i < 4; ++i) {
      for (const soc::ChipsetDesc& chipset : phones) {
        const benchutil::PerfOutcome p =
            benchutil::RunSingleStream(chipset, version, tasks[i]);
        chart.Add(std::string(task_names[i]) + " " + chipset.name,
                  1.0 / p.p90_latency_s);
      }
      chart.AddGap();
    }
    std::printf("%s\n", chart.Render().c_str());
  }
  std::printf(
      "paper shape: no one chipset dominates (insight 2) — MediaTek wins\n"
      "detection + segmentation, Samsung wins classification + NLP,\n"
      "Qualcomm stays competitive on segmentation + NLP.\n");
  return 0;
}
