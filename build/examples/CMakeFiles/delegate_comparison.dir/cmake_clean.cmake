file(REMOVE_RECURSE
  "CMakeFiles/delegate_comparison.dir/delegate_comparison.cpp.o"
  "CMakeFiles/delegate_comparison.dir/delegate_comparison.cpp.o.d"
  "delegate_comparison"
  "delegate_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delegate_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
