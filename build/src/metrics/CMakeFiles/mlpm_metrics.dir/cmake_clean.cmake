file(REMOVE_RECURSE
  "CMakeFiles/mlpm_metrics.dir/classification.cpp.o"
  "CMakeFiles/mlpm_metrics.dir/classification.cpp.o.d"
  "CMakeFiles/mlpm_metrics.dir/f1.cpp.o"
  "CMakeFiles/mlpm_metrics.dir/f1.cpp.o.d"
  "CMakeFiles/mlpm_metrics.dir/map.cpp.o"
  "CMakeFiles/mlpm_metrics.dir/map.cpp.o.d"
  "CMakeFiles/mlpm_metrics.dir/miou.cpp.o"
  "CMakeFiles/mlpm_metrics.dir/miou.cpp.o.d"
  "CMakeFiles/mlpm_metrics.dir/psnr.cpp.o"
  "CMakeFiles/mlpm_metrics.dir/psnr.cpp.o.d"
  "CMakeFiles/mlpm_metrics.dir/wer.cpp.o"
  "CMakeFiles/mlpm_metrics.dir/wer.cpp.o.d"
  "libmlpm_metrics.a"
  "libmlpm_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlpm_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
