// A task bundle: everything the functional accuracy plane needs for one
// benchmark task — the mini-scale reference model (frozen synthetic
// weights), its data set, and numerics preparation (PTQ against the
// approved calibration set, FP16 rounding, optional QAT-agreed weights).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "datasets/task_dataset.h"
#include "infer/executor.h"
#include "infer/prepared_model.h"
#include "models/ssd.h"
#include "models/zoo.h"
#include "transform/pass_manager.h"

namespace mlpm {
class ThreadPool;
}

namespace mlpm::harness {

// The approved calibration set size (paper §5.1: "typically 500 samples");
// scaled to the mini data plane.
inline constexpr std::size_t kCalibrationSetSize = 128;
inline constexpr std::size_t kCalibrationPoolSize = 1000;
inline constexpr std::uint64_t kCalibrationSeed = 0xCA11B;

class TaskBundle {
 public:
  // Builds the mini reference model + data set for a suite entry.
  // `weight_seed` is the frozen-checkpoint seed (fixed per suite release).
  static std::unique_ptr<TaskBundle> Create(const models::BenchmarkEntry& e,
                                            models::SuiteVersion version,
                                            std::uint64_t weight_seed = 7);

  [[nodiscard]] const models::BenchmarkEntry& entry() const { return entry_; }
  [[nodiscard]] const graph::Graph& mini_graph() const {
    return *NotNull(graph_, "task bundle has no model graph");
  }
  [[nodiscard]] const infer::WeightStore& weights() const { return weights_; }
  [[nodiscard]] const datasets::TaskDataset& dataset() const {
    return *NotNull(dataset_.get(), "task bundle has no data set");
  }

  // Outcome of the opt-in transform stage for one prepared model.
  struct TransformInfo {
    bool requested = false;  // Prepare() was asked to transform
    bool applied = false;    // executor runs the transformed graph
    std::string passes;      // resolved pass list (comma-joined)
    std::size_t rewrites = 0;
    std::size_t nodes_before = 0;  // canonical-form input node count
    std::size_t nodes_after = 0;   // executed node count
    // Why the stage fell back to the untransformed graph ("" when applied
    // or never requested).
    std::string detail;
  };

  struct PreparedModel {
    // Shared so repeated Prepare() calls at the same numerics reuse one
    // prepack (weight transform + PTQ) instead of redoing it.
    std::shared_ptr<const infer::PreparedModel> model;
    // Convenience view of model->executor(); never null.
    const infer::Executor* executor = nullptr;
    // Calibration sample indices consumed (for the checker); empty unless
    // INT8.
    std::vector<std::size_t> calibration_indices;
    // Owns the rewritten graph + weights `model` references when the
    // transform stage applied; null otherwise.  Must live as long as
    // `model`, which is why it rides in the same cache entry.
    std::shared_ptr<const transform::TransformResult> transformed;
    TransformInfo transform;
  };

  // Prepares an executor at the given numerics.  INT8 runs PTQ over the
  // approved calibration subset; `use_qat_weights` selects the
  // mutually-agreed QAT-equivalent weights instead of the plain frozen ones.
  // `isa` forces the kernel table (kAuto = best available).  Results are
  // cached per (mode, qat, isa, transform) tuple: weights are
  // quantized/packed once per graph and reused across runs.
  //
  // With `transform` set, the verified rewrite pipeline (DESIGN.md §14) runs
  // on the reference graph first and the executor is built over the rewritten
  // graph.  Equivalence is enforced, not assumed: probe samples run through
  // both executors and must agree bit-for-bit under INT8's u8-stable
  // simulated quantization, and within 1e-6 max-abs under FP32/FP16 (the
  // committed rewrites commute exactly with those roundings; the tolerance
  // absorbs only compiler-level FP reassociation).  Any disagreement falls
  // back to the untransformed model and records why in `transform.detail`.
  //
  // `tiling` opts the prepared executors into fused tiled segment execution
  // (DESIGN.md §15) — bit-identical to whole-op execution, so accuracy
  // scores are unchanged; only memory footprint and locality differ.  The
  // FP32 reference (Fp32Score) always runs untiled as the oracle.
  [[nodiscard]] PreparedModel Prepare(
      infer::NumericsMode mode, bool use_qat_weights = false,
      infer::kernels::KernelIsa isa = infer::kernels::KernelIsa::kAuto,
      bool transform = false, const infer::TileOptions& tiling = {}) const;

  // Runs the full validation set through `executor` and scores it, fanning
  // samples out over `pool` when given (bit-identical to the serial path).
  [[nodiscard]] double ScoreAccuracy(const infer::Executor& executor,
                                     const ThreadPool* pool = nullptr) const;

  // FP32 reference score, computed with the same kernel ISA as the run
  // under test so the ratio compares numerics, not kernels (cached per ISA
  // after first call).
  [[nodiscard]] double Fp32Score(
      const ThreadPool* pool = nullptr,
      infer::kernels::KernelIsa isa = infer::kernels::KernelIsa::kAuto) const;

 private:
  TaskBundle() = default;

  // Transform-enabled arm of Prepare(): runs the pipeline, rebuilds INT8
  // calibration on the rewritten graph, and gates on the probe-sample
  // equivalence check.  Falls back to the untransformed model on any
  // disagreement.
  [[nodiscard]] PreparedModel PrepareTransformed(
      infer::NumericsMode mode, bool use_qat_weights,
      infer::kernels::KernelIsa isa, const infer::TileOptions& tiling) const;

  models::BenchmarkEntry entry_;
  models::SuiteVersion version_ = models::SuiteVersion::kV1_0;
  // For detection tasks the graph lives inside detection_model_.
  std::unique_ptr<models::DetectionModel> detection_model_;
  std::unique_ptr<graph::Graph> owned_graph_;
  const graph::Graph* graph_ = nullptr;
  infer::WeightStore weights_;
  mutable std::optional<infer::WeightStore> qat_weights_;  // lazy
  std::unique_ptr<datasets::TaskDataset> dataset_;
  // FP32 reference scores keyed by kernel ISA.
  mutable std::map<int, double> fp32_scores_;
  // Prepack cache, keyed by ((mode, use_qat_weights, isa, transform),
  // tile-rows) — the second component is the tiling request (-2 = untiled),
  // so differently-tiled executors never share an entry.
  mutable std::map<std::pair<int, std::int64_t>, PreparedModel>
      prepared_cache_;
};

}  // namespace mlpm::harness
