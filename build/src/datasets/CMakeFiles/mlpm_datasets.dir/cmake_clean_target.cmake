file(REMOVE_RECURSE
  "libmlpm_datasets.a"
)
