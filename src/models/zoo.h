// The benchmark suite registry: Table 1 of the paper as data.
//
// Each entry binds a task to its reference model, data set, input
// resolution, quality metric and minimum quality target (a fraction of the
// FP32 score — accuracy comes first in MLPerf, performance is only valid
// above the threshold).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "models/common.h"

namespace mlpm::models {

// Benchmark suite versions covered by the paper.
enum class SuiteVersion : std::uint8_t { kV0_7, kV1_0 };

[[nodiscard]] constexpr std::string_view ToString(SuiteVersion v) {
  return v == SuiteVersion::kV0_7 ? "v0.7" : "v1.0";
}

struct BenchmarkEntry {
  std::string id;             // stable identifier, e.g. "image_classification"
  TaskType task;
  std::string model_name;     // e.g. "MobileNetEdgeTPU"
  std::string dataset_name;   // e.g. "ImageNet 2012"
  std::string metric_name;    // "Top-1" / "mAP" / "mIoU" / "F1"
  std::int64_t input_size;    // square image side, or sequence length
  double quality_target;      // min fraction of FP32 score (e.g. 0.98)
  double fp32_reference_score;  // the paper's published FP32 score
  std::int64_t approx_params;   // Table 1 parameter count
};

// The suite for a given version.  v1.0 swaps SSD-MobileNet v2 for
// MobileDet-SSD with a tighter target (93% -> 95%) and 320x320 input.
[[nodiscard]] std::vector<BenchmarkEntry> SuiteFor(SuiteVersion v);

// Builds the reference graph for a suite entry at the requested scale.
// Detection entries return only the graph here; use BuildSsdMobileNetV2 /
// BuildMobileDetSsd directly when the anchor set is needed.
[[nodiscard]] graph::Graph BuildReferenceGraph(const BenchmarkEntry& e,
                                               SuiteVersion v,
                                               ModelScale scale);

}  // namespace mlpm::models
