// Observability layer tests (DESIGN.md §11): recorder thread safety and
// span nesting, Chrome trace-event schema validation (positive and
// negative), metrics registry semantics, aggregate determinism on the
// simulated timeline, the zero-cost-when-disabled guarantee (no events AND
// bit-identical executor outputs), and the cross-layer property that traced
// per-IP self times reconstruct the simulator's reported latency.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "graph/graph.h"
#include "infer/executor.h"
#include "infer/weights.h"
#include "obs/aggregate.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_check.h"
#include "soc/chipset.h"
#include "soc/compile.h"
#include "soc/simulator.h"

namespace mlpm {
namespace {

using obs::Domain;
using obs::EventPhase;
using obs::TraceEvent;
using obs::TraceRecorder;

// ---- recorder basics ----

TEST(TraceRecorder, DisabledRecordsNothing) {
  TraceRecorder rec;
  ASSERT_FALSE(rec.enabled());
  rec.AddComplete(Domain::kHost, {}, "op", 0.0, 1.0);
  rec.AddInstant(Domain::kSim, "faults", "fault", 2.0);
  rec.AddCounter(Domain::kSim, "dvfs", "throttle", 0.0, 1.0);
  { TraceRecorder::Span span(rec, "scoped"); }
  EXPECT_EQ(rec.event_count(), 0u);
  EXPECT_TRUE(rec.Snapshot().empty());
}

TEST(TraceRecorder, EnableClearsPreviousEvents) {
  TraceRecorder rec;
  rec.Enable();
  rec.AddComplete(Domain::kHost, {}, "first", 0.0, 1.0);
  EXPECT_EQ(rec.event_count(), 1u);
  rec.Enable();  // restart
  EXPECT_EQ(rec.event_count(), 0u);
  rec.AddComplete(Domain::kHost, {}, "second", 0.0, 1.0);
  const std::vector<TraceEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "second");
}

TEST(TraceRecorder, DisableKeepsEventsForExport) {
  TraceRecorder rec;
  rec.Enable();
  rec.AddComplete(Domain::kHost, {}, "kept", 0.0, 1.0);
  rec.Disable();
  EXPECT_EQ(rec.event_count(), 1u);
  rec.AddComplete(Domain::kHost, {}, "ignored", 2.0, 1.0);
  EXPECT_EQ(rec.event_count(), 1u);
}

TEST(TraceRecorder, LanesGetStableTidsPerDomain) {
  TraceRecorder rec;
  rec.Enable();
  rec.AddComplete(Domain::kSim, "npu", "a", 0.0, 1.0);
  rec.AddComplete(Domain::kSim, "cpu", "b", 1.0, 1.0);
  rec.AddComplete(Domain::kSim, "npu", "c", 2.0, 1.0);
  rec.AddComplete(Domain::kHost, "npu", "d", 0.0, 1.0);  // distinct domain
  const std::vector<TraceEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  int npu_tid = 0;
  for (const TraceEvent& e : events)
    if (e.domain == Domain::kSim && e.name == "a") npu_tid = e.tid;
  ASSERT_NE(npu_tid, 0);
  for (const TraceEvent& e : events) {
    if (e.domain == Domain::kSim && (e.name == "a" || e.name == "c")) {
      EXPECT_EQ(e.tid, npu_tid);
    }
    if (e.domain == Domain::kHost) {
      EXPECT_NE(e.tid, npu_tid) << "lanes must be namespaced by domain";
    }
  }
  EXPECT_EQ(rec.LaneName(Domain::kSim, npu_tid), "npu");
}

TEST(TraceRecorder, SnapshotSortsParentsBeforeChildren) {
  TraceRecorder rec;
  rec.Enable();
  // Appended child-first: the sort must put the enclosing span first so
  // downstream nesting sweeps (validator, aggregator) see parents first.
  rec.AddComplete(Domain::kSim, "npu", "child", 0.0, 1.0);
  rec.AddComplete(Domain::kSim, "npu", "parent", 0.0, 4.0);
  const std::vector<TraceEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "parent");
  EXPECT_EQ(events[1].name, "child");
}

// ---- span nesting + thread safety (property) ----

TEST(TraceRecorderProperty, ConcurrentNestedSpansProduceAValidTrace) {
  TraceRecorder rec;
  rec.Enable();
  ThreadPool pool(4);
  constexpr std::int64_t kIterations = 200;
  pool.ParallelFor(0, kIterations, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      TraceRecorder::Span outer(rec, "outer",
                                {obs::Arg("i", static_cast<int>(i))}, "work");
      {
        TraceRecorder::Span mid(rec, "mid", {}, "work");
        TraceRecorder::Span inner(rec, "inner", {}, "work");
      }
      rec.AddCounter(Domain::kHost, "depth", "nesting", rec.NowUs(), 3.0);
    }
  });
  rec.Disable();
  EXPECT_EQ(rec.event_count(), static_cast<std::size_t>(kIterations) * 4);

  // Structural validity: every thread's spans nest on its own lane.
  obs::TraceCheckStats stats;
  const std::vector<std::string> problems =
      obs::ValidateChromeTrace(rec.ToChromeJson(), &stats);
  for (const std::string& p : problems) ADD_FAILURE() << p;
  EXPECT_EQ(stats.per_phase["X"], static_cast<std::size_t>(kIterations) * 3);
  EXPECT_EQ(stats.per_phase["C"], static_cast<std::size_t>(kIterations));

  // Nesting invariant, checked directly on the snapshot as well: within a
  // lane, spans either nest or are disjoint, and "inner" sits inside "mid"
  // sits inside "outer".
  const std::vector<TraceEvent> events = rec.Snapshot();
  std::vector<const TraceEvent*> stack;
  int current_tid = -1;
  for (const TraceEvent& e : events) {
    if (e.phase != EventPhase::kComplete) continue;
    if (e.tid != current_tid) {
      stack.clear();
      current_tid = e.tid;
    }
    while (!stack.empty() &&
           e.ts_us >= stack.back()->ts_us + stack.back()->dur_us - 1e-6)
      stack.pop_back();
    if (!stack.empty()) {
      EXPECT_GE(e.ts_us, stack.back()->ts_us - 1e-6);
      EXPECT_LE(e.ts_us + e.dur_us,
                stack.back()->ts_us + stack.back()->dur_us + 1e-6);
      const std::string& parent = stack.back()->name;
      if (e.name == "inner") {
        EXPECT_EQ(parent, "mid");
      }
      if (e.name == "mid") {
        EXPECT_EQ(parent, "outer");
      }
    } else {
      EXPECT_EQ(e.name, "outer");
    }
    stack.push_back(&e);
  }
}

TEST(TraceRecorderProperty, ConcurrentWritersLoseNoEvents) {
  TraceRecorder rec;
  rec.Enable();
  ThreadPool pool(8);
  constexpr std::int64_t kEvents = 5000;
  pool.ParallelFor(0, kEvents, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      std::string name = "e";
      name += std::to_string(i);
      rec.AddComplete(Domain::kHost, {}, std::move(name),
                      static_cast<double>(i), 0.5);
    }
  });
  rec.Disable();
  EXPECT_EQ(rec.event_count(), static_cast<std::size_t>(kEvents));
  EXPECT_EQ(rec.Snapshot().size(), static_cast<std::size_t>(kEvents));
}

// ---- Chrome JSON schema ----

TEST(ChromeJson, RecorderOutputPassesValidator) {
  TraceRecorder rec;
  rec.Enable();
  rec.AddComplete(Domain::kHost, {}, "op", 0.0, 5.0,
                  {obs::Arg("bytes", std::uint64_t{128})}, "node");
  rec.AddInstant(Domain::kLoadGen, "phases", "phase:issue", 1.0, {}, "phase");
  rec.AddCounter(Domain::kSim, "thermal", "temperature_c", 2.0, 41.5);
  const std::uint64_t id = rec.NextAsyncId();
  rec.AddAsyncBegin(Domain::kLoadGen, "queries", "query", "query", id, 0.0);
  rec.AddAsyncEnd(Domain::kLoadGen, "queries", "query", "query", id, 3.0);
  obs::TraceCheckStats stats;
  const std::vector<std::string> problems =
      obs::ValidateChromeTrace(rec.ToChromeJson(), &stats);
  for (const std::string& p : problems) ADD_FAILURE() << p;
  EXPECT_EQ(stats.event_count, 5u);
  EXPECT_EQ(stats.per_phase["X"], 1u);
  EXPECT_EQ(stats.per_phase["i"], 1u);
  EXPECT_EQ(stats.per_phase["C"], 1u);
  EXPECT_EQ(stats.per_phase["b"], 1u);
  EXPECT_EQ(stats.per_phase["e"], 1u);
  EXPECT_EQ(stats.per_category["node"], 1u);
  EXPECT_EQ(stats.unmatched_async_begins, 0u);
}

TEST(ChromeJson, EscapesControlAndQuoteCharacters) {
  TraceRecorder rec;
  rec.Enable();
  rec.AddComplete(Domain::kHost, "lane \"x\"\n", "op\t\"quoted\"", 0.0, 1.0,
                  {obs::Arg("note", "line1\nline2")});
  const std::string json = rec.ToChromeJson();
  EXPECT_TRUE(obs::ValidateChromeTrace(json).empty()) << json;
  EXPECT_EQ(json.find('\t'), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\\""), std::string::npos);
}

TEST(ChromeJson, ValidatorRejectsMalformedTraces) {
  // Not JSON at all.
  EXPECT_FALSE(obs::ValidateChromeTrace("{\"traceEvents\":[").empty());
  // Complete span without dur.
  EXPECT_FALSE(
      obs::ValidateChromeTrace(
          R"({"traceEvents":[{"ph":"X","pid":1,"tid":1,"ts":0,"name":"a"}]})")
          .empty());
  // Unknown phase letter.
  EXPECT_FALSE(
      obs::ValidateChromeTrace(
          R"({"traceEvents":[{"ph":"Q","pid":1,"tid":1,"ts":0,"name":"a"}]})")
          .empty());
  // Counter without args.
  EXPECT_FALSE(
      obs::ValidateChromeTrace(
          R"({"traceEvents":[{"ph":"C","pid":1,"tid":1,"ts":0,"name":"a"}]})")
          .empty());
  // Async end without a matching begin.
  EXPECT_FALSE(obs::ValidateChromeTrace(
                   R"({"traceEvents":[{"ph":"e","pid":3,"tid":1,"ts":1,)"
                   R"("name":"q","cat":"query","id":"0x1"}]})")
                   .empty());
  // Overlapping non-nesting spans on one lane.
  EXPECT_FALSE(obs::ValidateChromeTrace(
                   R"({"traceEvents":[)"
                   R"({"ph":"X","pid":1,"tid":1,"ts":0,"dur":10,"name":"a"},)"
                   R"({"ph":"X","pid":1,"tid":1,"ts":5,"dur":10,"name":"b"}]})")
                   .empty());
}

TEST(ChromeJson, ValidatorAllowsUnmatchedAsyncBegins) {
  // A faulted run legitimately leaves queries that never completed; the
  // validator counts them instead of failing.
  obs::TraceCheckStats stats;
  const std::vector<std::string> problems = obs::ValidateChromeTrace(
      R"({"traceEvents":[{"ph":"b","pid":3,"tid":1,"ts":0,)"
      R"("name":"q","cat":"query","id":"0x7"}]})",
      &stats);
  for (const std::string& p : problems) ADD_FAILURE() << p;
  EXPECT_EQ(stats.unmatched_async_begins, 1u);
}

// ---- metrics registry ----

TEST(MetricsRegistry, CountersAndGaugesBehave) {
  obs::MetricsRegistry reg;
  reg.Increment("queries", 3);
  reg.Increment("queries");
  EXPECT_EQ(reg.counter("queries"), 4u);
  EXPECT_EQ(reg.counter("never_touched"), 0u);
  reg.SetGauge("temp", 40.0);
  reg.SetGauge("temp", 35.0);
  EXPECT_DOUBLE_EQ(reg.gauge("temp"), 35.0);
  reg.MaxGauge("peak", 10.0);
  reg.MaxGauge("peak", 7.0);
  EXPECT_DOUBLE_EQ(reg.gauge("peak"), 10.0);
  const obs::MetricsRegistry::Snapshot snap = reg.Snap();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "queries");
  ASSERT_EQ(snap.gauges.size(), 2u);
  EXPECT_EQ(snap.gauges[0].first, "peak");  // name order
  const std::string table = obs::RenderMetricsTable(snap);
  EXPECT_NE(table.find("queries"), std::string::npos);
  EXPECT_NE(table.find("gauge"), std::string::npos);
  reg.Reset();
  EXPECT_EQ(reg.counter("queries"), 0u);
  EXPECT_TRUE(reg.Snap().counters.empty());
  EXPECT_EQ(obs::RenderMetricsTable(reg.Snap()), "");
}

TEST(MetricsRegistry, ConcurrentIncrementsAreLossless) {
  obs::MetricsRegistry reg;
  ThreadPool pool(8);
  pool.ParallelFor(0, 10000,
                   [&](std::int64_t lo, std::int64_t hi) {
                     for (std::int64_t i = lo; i < hi; ++i)
                       reg.Increment("n");
                   });
  EXPECT_EQ(reg.counter("n"), 10000u);
}

// ---- aggregates ----

TEST(Aggregate, SelfTimeExcludesNestedChildren) {
  TraceRecorder rec;
  rec.Enable();
  // parent [0,100] with children [10,30] and [40,80] -> self 40.
  rec.AddComplete(Domain::kSim, "npu", "parent", 0.0, 100.0, {}, "soc");
  rec.AddComplete(Domain::kSim, "npu", "child", 10.0, 20.0, {}, "soc");
  rec.AddComplete(Domain::kSim, "npu", "child", 40.0, 40.0, {}, "soc");
  const std::vector<obs::OpAggregate> agg =
      obs::AggregateSpans(rec.Snapshot(), Domain::kSim, std::string("soc"));
  ASSERT_EQ(agg.size(), 2u);
  // Children total 60 > parent self 40: order by descending total self.
  EXPECT_EQ(agg[0].name, "child");
  EXPECT_EQ(agg[0].count, 2u);
  EXPECT_DOUBLE_EQ(agg[0].total_self_us, 60.0);
  EXPECT_EQ(agg[1].name, "parent");
  EXPECT_DOUBLE_EQ(agg[1].total_self_us, 40.0);
  const std::string csv = obs::AggregateCsv(agg);
  EXPECT_NE(csv.find("op,count,total_self_ms,p50_self_ms,p99_self_ms"),
            std::string::npos);
  EXPECT_NE(csv.find("child,2,"), std::string::npos);
}

TEST(Aggregate, FiltersByDomainAndCategory) {
  TraceRecorder rec;
  rec.Enable();
  rec.AddComplete(Domain::kHost, {}, "host op", 0.0, 1.0, {}, "node");
  rec.AddComplete(Domain::kSim, "npu", "sim op", 0.0, 1.0, {}, "soc");
  rec.AddComplete(Domain::kSim, "npu", "other cat", 5.0, 1.0, {}, "other");
  const auto sim =
      obs::AggregateSpans(rec.Snapshot(), Domain::kSim, std::string("soc"));
  ASSERT_EQ(sim.size(), 1u);
  EXPECT_EQ(sim[0].name, "sim op");
  const auto all_sim = obs::AggregateSpans(rec.Snapshot(), Domain::kSim);
  EXPECT_EQ(all_sim.size(), 2u);
}

// Deterministic graph for the simulator-based tests.
graph::Graph SmallConvNet() {
  graph::GraphBuilder b("obs_net");
  graph::TensorId x = b.Input("in", graph::TensorShape({1, 16, 16, 4}));
  for (int i = 0; i < 3; ++i)
    x = b.Conv2d(x, 4, 3, 1, graph::Activation::kRelu);
  b.MarkOutput(x);
  return std::move(b).Build();
}

TEST(Aggregate, SimulatedTimelineTablesAreDeterministic) {
  // The simulated plane runs on virtual time, so a fixed-seed rerun must
  // reproduce the aggregate table byte for byte (unlike wall-clock host
  // tables, which are only structurally stable).
  const auto run = [] {
    obs::TraceRecorder& rec = obs::TraceRecorder::Global();
    rec.Enable();
    soc::SocSimulator sim(soc::Dimensity1100());
    soc::ExecutionPolicy p;
    p.engines = {"apu"};
    soc::RuntimeOverheads o;
    o.per_inference_s = 1e-4;
    const soc::CompiledModel m =
        soc::Compile(SmallConvNet(), DataType::kInt8, sim.chipset(), p, o);
    for (int i = 0; i < 50; ++i) (void)sim.RunInference(m);
    rec.Disable();
    return obs::RenderAggregateTable(
        obs::AggregateSpans(rec.Snapshot(), Domain::kSim, std::string("soc")),
        "simulated IP steps");
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// ---- disabled tracing: zero events, bit-identical outputs ----

std::vector<infer::Tensor> GraphInputs(const graph::Graph& g,
                                       std::uint64_t seed) {
  std::vector<infer::Tensor> inputs;
  Rng rng(seed);
  for (const graph::TensorId id : g.input_ids()) {
    infer::Tensor t(g.tensor(id).shape);
    for (auto& v : t.values())
      v = static_cast<float>(rng.NextUniform(0.0, 1.0));
    inputs.push_back(std::move(t));
  }
  return inputs;
}

TEST(ObsExecutor, DisabledTracingRecordsNothingAndOutputsBitIdentical) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  const graph::Graph g = SmallConvNet();
  const infer::WeightStore w = infer::InitializeWeights(g, 7);
  const infer::Executor exec(g, w);
  const std::vector<infer::Tensor> inputs = GraphInputs(g, 13);

  // Establish an empty enabled epoch, then disable: the run must add zero
  // events on top of it.
  rec.Enable();
  rec.Disable();
  const std::vector<infer::Tensor> untraced = exec.Run(inputs);
  EXPECT_EQ(rec.event_count(), 0u);

  rec.Enable();
  const std::vector<infer::Tensor> traced = exec.Run(inputs);
  rec.Disable();
  EXPECT_GT(rec.event_count(), 0u);

  ASSERT_EQ(untraced.size(), traced.size());
  for (std::size_t o = 0; o < untraced.size(); ++o) {
    ASSERT_EQ(untraced[o].size(), traced[o].size());
    for (std::size_t i = 0; i < untraced[o].size(); ++i)
      ASSERT_EQ(untraced[o].at(i), traced[o].at(i))
          << "tracing perturbed output " << o << " element " << i;
  }
}

TEST(ObsExecutor, NodeSpansCoverEveryGraphNode) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  const graph::Graph g = SmallConvNet();
  const infer::WeightStore w = infer::InitializeWeights(g, 7);
  const infer::Executor exec(g, w);
  rec.Enable();
  (void)exec.Run(GraphInputs(g, 13));
  rec.Disable();
  std::size_t node_spans = 0;
  for (const TraceEvent& e : rec.Snapshot())
    if (e.domain == Domain::kHost && e.category == "node") {
      ++node_spans;
      EXPECT_GE(e.dur_us, 0.0);
      bool has_bytes = false;
      for (const obs::TraceArg& a : e.args) has_bytes |= a.key == "bytes";
      EXPECT_TRUE(has_bytes) << e.name;
    }
  EXPECT_EQ(node_spans, g.nodes().size());
}

// ---- property: traced self times reconstruct simulator latency ----

// Random graphs in the memory-plan style: shape-preserving ops so any
// earlier tensor is a legal operand.
graph::Graph RandomGraph(std::uint64_t seed) {
  Rng rng(seed);
  graph::GraphBuilder b("random_" + std::to_string(seed));
  const graph::TensorShape shape({1, 8, 8, 4});
  std::vector<graph::TensorId> pool{b.Input("in", shape)};
  const int steps = 4 + static_cast<int>(rng.NextBelow(8));
  for (int s = 0; s < steps; ++s) {
    const graph::TensorId a =
        pool[static_cast<std::size_t>(rng.NextBelow(pool.size()))];
    const graph::TensorId c =
        pool[static_cast<std::size_t>(rng.NextBelow(pool.size()))];
    switch (rng.NextBelow(5)) {
      case 0: pool.push_back(b.Conv2d(a, 4, 3, 1)); break;
      case 1: pool.push_back(b.DepthwiseConv2d(a, 3, 1)); break;
      case 2: pool.push_back(b.Add(a, c)); break;
      case 3:
        pool.push_back(b.Activate(a, graph::Activation::kRelu));
        break;
      case 4: pool.push_back(b.Mul(a, c)); break;
    }
  }
  b.MarkOutput(pool.back());
  return std::move(b).Build();
}

TEST(ObsProperty, TracedSelfTimesSumToSimulatorLatency) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const graph::Graph g = RandomGraph(seed);
    soc::SocSimulator sim(seed % 2 == 0 ? soc::Dimensity1100()
                                        : soc::Snapdragon888());
    soc::ExecutionPolicy p;
    p.engines = {seed % 2 == 0 ? "apu" : "hta"};
    soc::RuntimeOverheads o;
    o.per_inference_s = 5e-5;
    const soc::CompiledModel m =
        soc::Compile(g, DataType::kInt8, sim.chipset(), p, o);

    rec.Enable();
    double reported_s = 0.0;
    for (int i = 0; i < 20; ++i) reported_s += sim.RunInference(m).latency_s;
    rec.Disable();

    // Sum of per-span self times over the simulated plane == total busy
    // time the simulator reported.  Self time (not raw duration) makes the
    // identity hold even with enclosing parent spans present.
    double traced_s = 0.0;
    for (const obs::OpAggregate& a : obs::AggregateSpans(
             rec.Snapshot(), Domain::kSim, std::string("soc")))
      traced_s += a.total_self_us * 1e-6;
    EXPECT_NEAR(traced_s, reported_s, reported_s * 1e-6 + 1e-12)
        << "seed " << seed;
    EXPECT_NEAR(sim.busy_time_s(), reported_s, 1e-12);
  }
}

TEST(ObsProperty, FaultedAttemptsStillAccountAllBusyTime) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  const graph::Graph g = RandomGraph(3);
  soc::SocSimulator sim(soc::Dimensity1100());
  soc::FaultPlan plan;
  plan.seed = 99;
  plan.DriverCrashes(0.5);
  sim.InjectFaults(plan);
  soc::ExecutionPolicy p;
  p.engines = {"apu"};
  const soc::CompiledModel m = soc::Compile(g, DataType::kInt8, sim.chipset(),
                                            p, soc::RuntimeOverheads{});
  rec.Enable();
  double reported_s = 0.0;
  std::size_t faults = 0;
  for (int i = 0; i < 40; ++i) {
    const soc::InferenceResult r = sim.RunInference(m);
    reported_s += r.latency_s;
    faults += r.outcome != soc::InferenceOutcome::kOk;
  }
  rec.Disable();
  ASSERT_GT(faults, 0u) << "fault plan never fired; test is vacuous";

  double traced_s = 0.0;
  for (const obs::OpAggregate& a :
       obs::AggregateSpans(rec.Snapshot(), Domain::kSim, std::string("soc")))
    traced_s += a.total_self_us * 1e-6;
  EXPECT_NEAR(traced_s, reported_s, reported_s * 1e-6 + 1e-12);

  // Fault instants were stamped for the non-ok outcomes.
  std::size_t fault_marks = 0;
  for (const TraceEvent& e : rec.Snapshot())
    fault_marks += e.category == "fault";
  EXPECT_EQ(fault_marks, faults);
}

}  // namespace
}  // namespace mlpm
