// True integer INT8 GEMM with INT32 accumulation.
//
// The accuracy plane simulates INT8 with fake quantization (one float kernel
// set), but a credible mobile-inference library also needs a real integer
// path: this is it, used by the kernel microbenchmarks (bench_kernels) to
// demonstrate the INT8-vs-FP32 arithmetic-throughput gap that motivates the
// paper's numerics discussion (§7.5).
#pragma once

#include <cstdint>
#include <span>

namespace mlpm::infer {

// Quantizes `src` to uint8 with the given scale/zero-point.
void QuantizeU8(std::span<const float> src, float scale,
                std::int32_t zero_point, std::span<std::uint8_t> dst);

// Dequantizes an INT32 accumulator given input scales.
[[nodiscard]] float DequantizeAcc(std::int32_t acc, float lhs_scale,
                                  float rhs_scale);

// C[m,n] = sum_k (A[m,k]-a_zp) * (B[n,k]-b_zp), INT32 accumulators.
// B is stored row-major transposed ([n, k]) to keep inner loops contiguous.
void GemmU8U8I32(std::span<const std::uint8_t> a, std::int32_t a_zp,
                 std::span<const std::uint8_t> b_t, std::int32_t b_zp,
                 std::size_t m, std::size_t n, std::size_t k,
                 std::span<std::int32_t> c);

// Float reference for validation / speed comparison (same B-transposed
// layout).
void GemmF32(std::span<const float> a, std::span<const float> b_t,
             std::size_t m, std::size_t n, std::size_t k,
             std::span<float> c);

}  // namespace mlpm::infer
