// Per-op aggregate profile derived from trace spans: count / total / p50 /
// p99 *self* time per span name (self = duration minus directly nested
// child spans on the same lane).  This is the table form of the timeline —
// the paper's Table-3-style "where does the time go" summary — appended to
// the run report and CSV export.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace mlpm::obs {

struct OpAggregate {
  std::string name;
  std::size_t count = 0;
  double total_self_us = 0.0;
  double p50_self_us = 0.0;
  double p99_self_us = 0.0;
};

// Aggregates complete events of `domain` (optionally restricted to one
// category) by name, ordered by descending total self time, ties by name.
// Nesting is recomputed per (domain, tid) so a parent span is not charged
// for time already attributed to its children.
[[nodiscard]] std::vector<OpAggregate> AggregateSpans(
    std::span<const TraceEvent> events, Domain domain,
    std::optional<std::string> category = std::nullopt);

// Text table ("" when empty) and CSV (header + one row per op).
[[nodiscard]] std::string RenderAggregateTable(
    const std::vector<OpAggregate>& aggregates, const std::string& title);
[[nodiscard]] std::string AggregateCsv(
    const std::vector<OpAggregate>& aggregates);

}  // namespace mlpm::obs
