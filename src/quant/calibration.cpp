#include "quant/calibration.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace mlpm::quant {
namespace {

infer::TensorRange RangeOf(const infer::Tensor& t) {
  infer::TensorRange r{std::numeric_limits<float>::infinity(),
                       -std::numeric_limits<float>::infinity()};
  for (float v : t.values()) r.Update(v);
  if (r.min > r.max) r = {0.0f, 0.0f};  // empty tensor
  return r;
}

}  // namespace

infer::QuantParams CalibratePtq(const graph::Graph& graph,
                                const infer::WeightStore& weights,
                                std::span<const CalibrationSample> samples,
                                const CalibrationConfig& config) {
  Expects(!samples.empty(), "calibration requires at least one sample");
  infer::QuantParams params;
  params.per_channel_weights = config.per_channel_weights;
  params.activation_bits = config.activation_bits;
  params.weight_bits = config.weight_bits;

  const infer::Executor fp32(graph, weights, infer::NumericsMode::kFp32);
  std::unordered_map<graph::TensorId, bool> seen;

  for (const CalibrationSample& sample : samples) {
    (void)fp32.Run(sample, [&](graph::TensorId id, const infer::Tensor& t) {
      const infer::TensorRange r = RangeOf(t);
      auto [it, inserted] = params.activation_ranges.try_emplace(id, r);
      if (inserted) return;
      switch (config.method) {
        case RangeMethod::kMinMax:
          it->second.Merge(r);
          break;
        case RangeMethod::kMovingAverage: {
          const auto d = static_cast<float>(config.ema_decay);
          it->second.min = d * it->second.min + (1 - d) * r.min;
          it->second.max = d * it->second.max + (1 - d) * r.max;
          break;
        }
      }
    });
  }
  return params;
}

infer::WeightStore RefineWeightsMseOptimal(const graph::Graph& graph,
                                           const infer::WeightStore& weights,
                                           int weight_bits) {
  infer::WeightStore refined;
  const float qmax = static_cast<float>((1 << (weight_bits - 1)) - 1);

  for (const auto& info : graph.tensors()) {
    if (info.kind != graph::TensorKind::kWeight) continue;
    infer::Tensor t = weights.Get(info.name);  // copy
    // Skip 1-D params (biases, norm scales) — they stay high precision.
    if (t.shape().rank() > 1) {
      const std::int64_t channels = t.shape().dim(0);
      const std::int64_t stride =
          static_cast<std::int64_t>(t.size()) / channels;
      for (std::int64_t c = 0; c < channels; ++c) {
        float* chan = t.data() + c * stride;
        float amax = 0.0f;
        for (std::int64_t i = 0; i < stride; ++i)
          amax = std::max(amax, std::abs(chan[i]));
        if (amax == 0.0f) continue;

        // Search clipping thresholds in [0.5, 1.0] * amax for the one that
        // minimizes quantization MSE, then clip the channel to it.  This is
        // the training-free core of what QAT achieves for weights.
        float best_clip = amax;
        double best_mse = std::numeric_limits<double>::infinity();
        for (int step = 0; step <= 20; ++step) {
          const float clip =
              amax * (0.5f + 0.025f * static_cast<float>(step));
          const float scale = clip / qmax;
          double mse = 0.0;
          for (std::int64_t i = 0; i < stride; ++i) {
            const float q =
                std::clamp(std::round(chan[i] / scale), -qmax, qmax) * scale;
            const double e = static_cast<double>(q) - chan[i];
            mse += e * e;
          }
          if (mse < best_mse) {
            best_mse = mse;
            best_clip = clip;
          }
        }
        for (std::int64_t i = 0; i < stride; ++i)
          chan[i] = std::clamp(chan[i], -best_clip, best_clip);
      }
    }
    refined.Put(info.name, std::move(t));
  }
  return refined;
}

}  // namespace mlpm::quant
