// Horizontal text bar charts for the figure-reproduction benches: the
// paper's Figures 6 and 7 are bar charts, so their regenerated outputs
// render as bars too (plain monospace text, no dependencies).
#pragma once

#include <string>
#include <vector>

namespace mlpm {

class BarChart {
 public:
  // `title` printed above; `unit` appended to each value label.
  BarChart(std::string title, std::string unit);

  void Add(std::string label, double value);
  // Inserts a blank separator row (group boundary).
  void AddGap();

  // Renders with bars scaled so the maximum value spans `max_width` cells.
  [[nodiscard]] std::string Render(std::size_t max_width = 48) const;

 private:
  struct Row {
    std::string label;
    double value = 0.0;
    bool gap = false;
  };
  std::string title_;
  std::string unit_;
  std::vector<Row> rows_;
};

}  // namespace mlpm
