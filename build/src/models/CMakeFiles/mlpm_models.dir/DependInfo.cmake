
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/common.cpp" "src/models/CMakeFiles/mlpm_models.dir/common.cpp.o" "gcc" "src/models/CMakeFiles/mlpm_models.dir/common.cpp.o.d"
  "/root/repo/src/models/deeplab.cpp" "src/models/CMakeFiles/mlpm_models.dir/deeplab.cpp.o" "gcc" "src/models/CMakeFiles/mlpm_models.dir/deeplab.cpp.o.d"
  "/root/repo/src/models/detection.cpp" "src/models/CMakeFiles/mlpm_models.dir/detection.cpp.o" "gcc" "src/models/CMakeFiles/mlpm_models.dir/detection.cpp.o.d"
  "/root/repo/src/models/mobilebert.cpp" "src/models/CMakeFiles/mlpm_models.dir/mobilebert.cpp.o" "gcc" "src/models/CMakeFiles/mlpm_models.dir/mobilebert.cpp.o.d"
  "/root/repo/src/models/mobilenet_edgetpu.cpp" "src/models/CMakeFiles/mlpm_models.dir/mobilenet_edgetpu.cpp.o" "gcc" "src/models/CMakeFiles/mlpm_models.dir/mobilenet_edgetpu.cpp.o.d"
  "/root/repo/src/models/mobilenet_v2.cpp" "src/models/CMakeFiles/mlpm_models.dir/mobilenet_v2.cpp.o" "gcc" "src/models/CMakeFiles/mlpm_models.dir/mobilenet_v2.cpp.o.d"
  "/root/repo/src/models/rnnt.cpp" "src/models/CMakeFiles/mlpm_models.dir/rnnt.cpp.o" "gcc" "src/models/CMakeFiles/mlpm_models.dir/rnnt.cpp.o.d"
  "/root/repo/src/models/ssd.cpp" "src/models/CMakeFiles/mlpm_models.dir/ssd.cpp.o" "gcc" "src/models/CMakeFiles/mlpm_models.dir/ssd.cpp.o.d"
  "/root/repo/src/models/superres.cpp" "src/models/CMakeFiles/mlpm_models.dir/superres.cpp.o" "gcc" "src/models/CMakeFiles/mlpm_models.dir/superres.cpp.o.d"
  "/root/repo/src/models/zoo.cpp" "src/models/CMakeFiles/mlpm_models.dir/zoo.cpp.o" "gcc" "src/models/CMakeFiles/mlpm_models.dir/zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/infer/CMakeFiles/mlpm_infer.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mlpm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
