#include "transform/ir_edit.h"

#include <algorithm>

#include "common/check.h"

namespace mlpm::transform {

using graph::Node;
using graph::TensorId;
using graph::TensorInfo;

MutableGraph::MutableGraph(const graph::Graph& g)
    : name_(g.name()),
      nodes_(g.nodes()),
      alive_(g.nodes().size(), true),
      tensors_(g.tensors()),
      inputs_(g.input_ids()),
      outputs_(g.output_ids()) {}

const TensorInfo& MutableGraph::tensor(TensorId id) const {
  Expects(id >= 0 && static_cast<std::size_t>(id) < tensors_.size(),
          "MutableGraph: tensor id out of range");
  return tensors_[static_cast<std::size_t>(id)];
}

std::size_t MutableGraph::live_node_count() const {
  return static_cast<std::size_t>(
      std::count(alive_.begin(), alive_.end(), true));
}

std::vector<std::int32_t> MutableGraph::BuildProducers() const {
  std::vector<std::int32_t> producer(tensors_.size(), -1);
  for (std::size_t ni = 0; ni < nodes_.size(); ++ni) {
    if (!alive_[ni]) continue;
    const TensorId out = nodes_[ni].output;
    if (out >= 0 && static_cast<std::size_t>(out) < tensors_.size())
      producer[static_cast<std::size_t>(out)] = static_cast<std::int32_t>(ni);
  }
  return producer;
}

std::vector<std::vector<std::size_t>> MutableGraph::BuildConsumers() const {
  std::vector<std::vector<std::size_t>> consumers(tensors_.size());
  for (std::size_t ni = 0; ni < nodes_.size(); ++ni) {
    if (!alive_[ni]) continue;
    for (const TensorId in : nodes_[ni].inputs)
      if (in >= 0 && static_cast<std::size_t>(in) < tensors_.size())
        consumers[static_cast<std::size_t>(in)].push_back(ni);
  }
  return consumers;
}

bool MutableGraph::IsGraphInput(TensorId id) const {
  return std::find(inputs_.begin(), inputs_.end(), id) != inputs_.end();
}

bool MutableGraph::IsGraphOutput(TensorId id) const {
  return std::find(outputs_.begin(), outputs_.end(), id) != outputs_.end();
}

TensorId MutableGraph::AddTensor(std::string name, graph::TensorShape shape,
                                 graph::TensorKind kind) {
  tensors_.push_back(TensorInfo{std::move(name), std::move(shape), kind, -1});
  return static_cast<TensorId>(tensors_.size() - 1);
}

std::size_t MutableGraph::InsertNodeAfter(std::size_t index, Node n) {
  Expects(index < nodes_.size(), "InsertNodeAfter: index out of range");
  const auto at = static_cast<std::ptrdiff_t>(index + 1);
  nodes_.insert(nodes_.begin() + at, std::move(n));
  alive_.insert(alive_.begin() + at, true);
  return index + 1;
}

void MutableGraph::Kill(std::size_t node_index) {
  Expects(node_index < nodes_.size(), "Kill: index out of range");
  alive_[node_index] = false;
}

void MutableGraph::RedirectUses(TensorId from, TensorId to) {
  for (std::size_t ni = 0; ni < nodes_.size(); ++ni) {
    if (!alive_[ni]) continue;
    for (TensorId& in : nodes_[ni].inputs)
      if (in == from) in = to;
  }
  for (TensorId& out : outputs_)
    if (out == from) out = to;
}

FrozenGraph MutableGraph::Freeze() const {
  // Referenced tensors: graph inputs/outputs plus everything a live node
  // touches.  Everything else (outputs of killed nodes, orphaned weights)
  // is dropped.
  std::vector<bool> keep(tensors_.size(), false);
  const auto mark = [&](TensorId id) {
    if (id >= 0 && static_cast<std::size_t>(id) < tensors_.size())
      keep[static_cast<std::size_t>(id)] = true;
  };
  for (const TensorId id : inputs_) mark(id);
  for (const TensorId id : outputs_) mark(id);
  for (std::size_t ni = 0; ni < nodes_.size(); ++ni) {
    if (!alive_[ni]) continue;
    const Node& n = nodes_[ni];
    for (const TensorId id : n.inputs) mark(id);
    for (const TensorId id : n.weights) mark(id);
    mark(n.output);
  }

  FrozenGraph out;
  out.tensor_map.assign(tensors_.size(), graph::kInvalidTensor);
  std::vector<TensorInfo> tensors;
  for (std::size_t ti = 0; ti < tensors_.size(); ++ti) {
    if (!keep[ti]) continue;
    out.tensor_map[ti] = static_cast<TensorId>(tensors.size());
    TensorInfo info = tensors_[ti];
    info.producer = -1;  // re-derived from the compacted node list below
    tensors.push_back(std::move(info));
  }

  const auto remap = [&](TensorId id) {
    return (id >= 0 && static_cast<std::size_t>(id) < out.tensor_map.size())
               ? out.tensor_map[static_cast<std::size_t>(id)]
               : graph::kInvalidTensor;
  };

  std::vector<Node> nodes;
  nodes.reserve(live_node_count());
  for (std::size_t ni = 0; ni < nodes_.size(); ++ni) {
    if (!alive_[ni]) continue;
    Node n = nodes_[ni];
    for (TensorId& id : n.inputs) id = remap(id);
    for (TensorId& id : n.weights) id = remap(id);
    n.output = remap(n.output);
    if (n.output >= 0 &&
        static_cast<std::size_t>(n.output) < tensors.size())
      tensors[static_cast<std::size_t>(n.output)].producer =
          static_cast<std::int32_t>(nodes.size());
    nodes.push_back(std::move(n));
  }

  std::vector<TensorId> inputs = inputs_;
  for (TensorId& id : inputs) id = remap(id);
  std::vector<TensorId> outputs = outputs_;
  for (TensorId& id : outputs) id = remap(id);

  out.graph = graph::AssembleGraphUnchecked(name_, std::move(nodes),
                                            std::move(tensors),
                                            std::move(inputs),
                                            std::move(outputs));
  return out;
}

}  // namespace mlpm::transform
