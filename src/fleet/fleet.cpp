#include "fleet/fleet.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <utility>

#include "backends/vendor_policy.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "common/thread_pool.h"
#include "core/dataset_qsl.h"
#include "datasets/task_dataset.h"
#include "fleet/journal.h"
#include "fleet/prepared.h"
#include "infer/prepared_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "soc/simulator.h"

namespace mlpm::fleet {
namespace {

// Performance-only query source: the simulated plane never reads sample
// contents (latency comes from the compiled model), so tiny tensors
// suffice.  Mirrors benchutil::StubDataset; sample indices drawn against it
// don't affect timing, which is what makes the fleet path latency-identical
// to the legacy RunSubmission path for the same seed and settings.
class StubDataset final : public datasets::TaskDataset {
 public:
  [[nodiscard]] std::size_t size() const override { return 8; }
  [[nodiscard]] std::vector<infer::Tensor> InputsFor(
      std::size_t) const override {
    std::vector<infer::Tensor> v;
    v.emplace_back(graph::TensorShape({1}));
    return v;
  }
  [[nodiscard]] double ScoreOutputs(
      std::span<const std::vector<infer::Tensor>>) const override {
    return 0.0;
  }
  [[nodiscard]] std::string_view metric_name() const override {
    return "none";
  }
  [[nodiscard]] std::vector<infer::Tensor> CalibrationInputsFor(
      std::size_t index) const override {
    return InputsFor(index);
  }
};

// The shard-side SUT: SimulatedBackend's single-stream semantics, but the
// compiled plan is a shared immutable PreparedShardModel from the fleet
// cache instead of a per-device copy — N shards of one config hold one
// plan.  The simulator (thermal/DVFS state) stays per-shard: devices share
// weights, not temperature.
class ShardSut final : public loadgen::SystemUnderTest {
 public:
  ShardSut(std::string name, soc::SocSimulator simulator,
           std::shared_ptr<const PreparedShardModel> model,
           loadgen::VirtualClock& clock)
      : name_(std::move(name)),
        simulator_(std::move(simulator)),
        model_(std::move(model)),
        clock_(clock) {}

  [[nodiscard]] std::string_view name() const override { return name_; }

  void IssueQuery(std::span<const loadgen::QuerySample> samples,
                  loadgen::ResponseSink& sink) override {
    Expects(samples.size() == 1,
            "fleet shards serve single-sample queries only");
    const soc::InferenceResult r =
        simulator_.RunInference(model_->single_stream);
    total_energy_j_ += r.energy_j;
    clock_.Advance(loadgen::Seconds{r.latency_s});
    if (r.completed)
      sink.Complete(loadgen::QuerySampleResponse{samples[0].id, {}});
  }

  [[nodiscard]] const soc::SocSimulator& simulator() const {
    return simulator_;
  }
  [[nodiscard]] double total_energy_j() const { return total_energy_j_; }

 private:
  std::string name_;
  soc::SocSimulator simulator_;
  std::shared_ptr<const PreparedShardModel> model_;
  loadgen::VirtualClock& clock_;
  double total_energy_j_ = 0.0;
};

// One shard's static identity, fixed before any worker runs.
struct ShardSpec {
  std::size_t id = 0;
  soc::ChipsetDesc chipset;
  models::BenchmarkEntry entry;
  std::string config_key;
  std::uint64_t seed = 0;  // per-shard LoadGen seed
};

[[nodiscard]] std::uint64_t DeriveSeed(std::uint64_t base, std::uint64_t tag,
                                       std::size_t shard_id) {
  Rng r = Rng(base).Split(tag).Split(shard_id);
  return r.NextU64();
}

[[nodiscard]] infer::NumericsMode ModeFor(DataType numerics) {
  switch (numerics) {
    case DataType::kInt8:
    case DataType::kUInt8:
      return infer::NumericsMode::kInt8;
    case DataType::kFloat16:
      return infer::NumericsMode::kFp16;
    default:
      return infer::NumericsMode::kFp32;
  }
}

[[nodiscard]] ShardResult RunOneShard(
    const ShardSpec& spec, const FleetOptions& options,
    infer::PreparedCache<PreparedShardModel>& cache) {
  ShardResult out;
  out.shard_id = spec.id;
  out.chipset = spec.chipset.name;
  out.task_id = spec.entry.id;
  out.config_key = spec.config_key;

  const std::shared_ptr<const PreparedShardModel> model =
      cache.Acquire(spec.config_key, [&] {
        PreparedShardModel m;
        m.sub = backends::GetSubmission(spec.chipset, spec.entry.task,
                                        options.version);
        const graph::Graph full = models::BuildReferenceGraph(
            spec.entry, options.version, models::ModelScale::kFull);
        m.single_stream =
            backends::CompileSubmission(spec.chipset, m.sub, full);
        return m;
      });
  out.numerics = model->sub.numerics;

  loadgen::TestSettings settings = options.settings;
  settings.mode = loadgen::TestMode::kPerformanceOnly;
  if (options.split_seed_per_shard)
    settings.seed = spec.seed;

  loadgen::VirtualClock clock;
  soc::SocSimulator sim(spec.chipset);
  sim.SetTraceLanePrefix("shard-" + std::to_string(spec.id) + "/");
  if (options.fault_plan.has_value()) {
    soc::FaultPlan plan = *options.fault_plan;
    if (options.split_seed_per_shard)
      plan.seed = DeriveSeed(plan.seed, 0xFA17, spec.id);
    sim.InjectFaults(std::move(plan));
  }

  ShardSut sut(spec.chipset.name + "/" + model->sub.framework.name,
               std::move(sim), model, clock);
  StubDataset stub;
  loadgen::DatasetQsl qsl(stub);

  if (options.circuit_breaker.has_value()) {
    backends::CircuitBreakerOptions cb = *options.circuit_breaker;
    if (options.split_seed_per_shard)
      cb.seed = DeriveSeed(cb.seed, 0xCB, spec.id);
    backends::CircuitBreakerBackend breaker(sut, clock, cb);
    out.result = loadgen::RunTest(breaker, qsl, settings, clock);
    out.breaker_trips = breaker.stats().trips;
  } else {
    out.result = loadgen::RunTest(sut, qsl, settings, clock);
  }

  out.fault_count = sut.simulator().fault_count();
  out.energy_j = sut.total_energy_j();
  out.peak_temperature_c = sut.simulator().thermal().temperature_c();
  out.slo_met = !out.result.Errored() && out.result.latency_bound_met &&
                out.result.shed_bound_met;
  if (out.result.Errored()) {
    out.state = harness::TaskStatus::kInvalid;
  } else if (out.result.AnomalyCount() > 0 || out.fault_count > 0 ||
             out.breaker_trips > 0) {
    out.state = harness::TaskStatus::kValidDegraded;
  } else {
    out.state = harness::TaskStatus::kValid;
  }
  return out;
}

// Scores each distinct (task, numerics) config once on the functional
// plane and stamps the result onto every shard of that config — including
// replayed shards, so a journal cut before the accuracy plane ran still
// resumes to a field-identical report (scores are deterministic per
// config).  Serial by design: TaskBundle preparation caches through an
// unguarded map, so the accuracy plane stays on the coordinator thread.
void RunAccuracyPlane(const FleetOptions& options,
                      const std::vector<ShardSpec>& specs,
                      std::vector<std::optional<ShardResult>>& slots) {
  harness::SuiteBundles bundles;
  struct Scores {
    double accuracy = 0.0;
    double fp32 = 0.0;
    double ratio = 0.0;
    bool passed = false;
  };
  std::map<std::string, Scores> scored;
  for (const ShardSpec& spec : specs) {
    std::optional<ShardResult>& slot = slots[spec.id];
    if (!slot.has_value()) continue;
    const std::string key =
        spec.entry.id + "|" + std::string(ToString(slot->numerics));
    auto it = scored.find(key);
    if (it == scored.end()) {
      const harness::TaskBundle& bundle =
          bundles.Get(spec.entry, options.version);
      const infer::NumericsMode mode = ModeFor(slot->numerics);
      const harness::TaskBundle::PreparedModel prepared =
          bundle.Prepare(mode, false, options.kernel_isa);
      Scores s;
      s.accuracy = bundle.ScoreAccuracy(
          *NotNull(prepared.executor,
                   "TaskBundle::Prepare returned no executor"),
          nullptr);
      s.fp32 = bundle.Fp32Score(nullptr, options.kernel_isa);
      s.ratio = s.fp32 > 0 ? s.accuracy / s.fp32 : 0.0;
      s.passed = s.ratio >= spec.entry.quality_target;
      it = scored.emplace(key, s).first;
    }
    slot->accuracy = it->second.accuracy;
    slot->fp32_reference = it->second.fp32;
    slot->ratio_to_fp32 = it->second.ratio;
    slot->quality_passed = it->second.passed;
  }
}

}  // namespace

FleetReport RunFleet(const FleetOptions& options) {
  Expects(options.shard_count > 0, "fleet needs at least one shard");
  Expects(options.settings.scenario == loadgen::TestScenario::kServer ||
              options.settings.scenario ==
                  loadgen::TestScenario::kSingleStream,
          "fleet shards run the server or single-stream scenario");
  Expects(!options.resume || !options.journal_path.empty(),
          "--resume needs a journal path");

  const std::vector<FleetMixEntry> mix =
      options.mix.empty() ? DefaultFleetMix(options.version) : options.mix;
  const std::vector<ResolvedMixEntry> resolved =
      ResolveMix(mix, options.version);
  const std::vector<std::size_t> counts =
      AssignShardCounts(mix, options.shard_count);

  // Shards 0..N-1 in mix order; each knows its config and derived seed
  // before any worker runs, so nothing depends on scheduling.
  std::vector<ShardSpec> specs;
  specs.reserve(options.shard_count);
  for (std::size_t m = 0; m < resolved.size(); ++m) {
    for (std::size_t k = 0; k < counts[m]; ++k) {
      ShardSpec spec;
      spec.id = specs.size();
      spec.chipset = resolved[m].chipset;
      spec.entry = resolved[m].entry;
      spec.config_key = std::string(ToString(options.version)) + "|" +
                        spec.entry.id + "|" + spec.chipset.name;
      spec.seed = DeriveSeed(options.settings.seed, 0xF1EE7, spec.id);
      specs.push_back(std::move(spec));
    }
  }
  Ensures(specs.size() == options.shard_count, "shard apportioning bug");

  FleetReport report;
  report.version = options.version;
  report.seed = options.settings.seed;
  report.shard_count = options.shard_count;
  report.mix_spec = FormatFleetMix(mix);

  // Journal: replay intact shard records of a matching previous run, then
  // append freshly-run shards.
  FleetJournalMeta meta;
  meta.version = std::string(ToString(options.version));
  meta.seed = options.settings.seed;
  meta.shard_count = options.shard_count;
  meta.config_hash = HashFleetConfig(options, mix);

  std::vector<std::optional<ShardResult>> slots(options.shard_count);
  std::unique_ptr<FleetJournalWriter> journal;
  if (!options.journal_path.empty()) {
    bool resumed = false;
    if (options.resume) {
      FleetJournalLoad existing = LoadFleetJournal(options.journal_path);
      if (existing.meta_valid && existing.meta.Matches(meta)) {
        for (auto& [id, shard] : existing.shards) {
          if (id >= options.shard_count) continue;
          shard.resumed = true;
          slots[id] = std::move(shard);
          ++report.resumed_shards;
        }
        journal = FleetJournalWriter::Resume(options.journal_path,
                                             existing.valid_prefix_bytes);
        resumed = true;
      }
    }
    if (!resumed) journal = FleetJournalWriter::Create(options.journal_path,
                                                       meta);
  }

  infer::PreparedCache<PreparedShardModel> cache;
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  std::atomic<std::size_t> active{0};
  std::atomic<std::size_t> started{0};
  std::atomic<bool> interrupted{false};
  std::mutex cancel_mu;
  const auto cancelled = [&] {
    if (!options.cancel) return false;
    std::scoped_lock lock(cancel_mu);
    return options.cancel();
  };
  metrics.SetGauge("fleet.queue_depth",
                   static_cast<double>(options.shard_count));

  const ThreadPool pool(options.workers);
  pool.ParallelFor(
      0, static_cast<std::int64_t>(options.shard_count),
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          const ShardSpec& spec = specs[static_cast<std::size_t>(i)];
          if (slots[spec.id].has_value()) continue;  // replayed
          if (interrupted.load(std::memory_order_relaxed) || cancelled()) {
            interrupted.store(true, std::memory_order_relaxed);
            continue;
          }
          const std::size_t now_started =
              started.fetch_add(1, std::memory_order_relaxed) + 1;
          metrics.SetGauge(
              "fleet.queue_depth",
              static_cast<double>(options.shard_count - now_started));
          const std::size_t now_active =
              active.fetch_add(1, std::memory_order_relaxed) + 1;
          metrics.SetGauge("fleet.shards.active",
                           static_cast<double>(now_active));
          metrics.MaxGauge("fleet.shards.active.peak",
                           static_cast<double>(now_active));

          const std::uint64_t span_id = recorder.NextAsyncId();
          const std::string span_name = "shard-" + std::to_string(spec.id);
          recorder.AddAsyncBegin(obs::Domain::kHost, "fleet", span_name,
                                 "fleet", span_id, recorder.NowUs());
          ShardResult shard = RunOneShard(spec, options, cache);
          recorder.AddAsyncEnd(obs::Domain::kHost, "fleet", span_name,
                               "fleet", span_id, recorder.NowUs());

          // Shards journal as they finish unless the accuracy plane still
          // has fields to stamp (then the coordinator journals after it).
          if (journal != nullptr && !options.accuracy)
            journal->Append(shard);
          slots[spec.id] = std::move(shard);
          metrics.SetGauge(
              "fleet.shards.active",
              static_cast<double>(
                  active.fetch_sub(1, std::memory_order_relaxed) - 1));
        }
      });

  report.interrupted = interrupted.load();
  if (options.accuracy && !report.interrupted)
    RunAccuracyPlane(options, specs, slots);
  if (journal != nullptr && options.accuracy) {
    for (const std::optional<ShardResult>& slot : slots)
      if (slot.has_value() && !slot->resumed) journal->Append(*slot);
  }

  // Aggregate from the sorted shard vector; a resumed run aggregates
  // identically to an uninterrupted one.
  std::set<std::string> distinct;
  for (const ShardSpec& spec : specs) distinct.insert(spec.config_key);
  report.distinct_configs = distinct.size();
  report.prepared_models_built = cache.builds();

  std::vector<double> merged_latencies;
  std::size_t slo_met = 0;
  for (const std::optional<ShardResult>& slot : slots) {
    if (!slot.has_value()) continue;
    const ShardResult& s = *slot;
    report.shards.push_back(s);
    const loadgen::TestResult& r = s.result;
    report.offered += r.issued_count + r.shed_count;
    report.issued += r.issued_count;
    report.completed += r.sample_count;
    report.shed += r.shed_count;
    report.rejected += r.rejected_count;
    report.timed_out += r.timed_out_count;
    report.dropped += r.dropped_count;
    report.breaker_trips += s.breaker_trips;
    report.fleet_qps += r.throughput_sps;
    if (s.slo_met) ++slo_met;
    switch (s.state) {
      case harness::TaskStatus::kValid: ++report.valid_count; break;
      case harness::TaskStatus::kValidDegraded:
        ++report.degraded_count;
        break;
      default: ++report.invalid_count; break;
    }
    merged_latencies.insert(merged_latencies.end(), r.latencies_s.begin(),
                            r.latencies_s.end());
  }
  if (!report.shards.empty())
    report.slo_met_fraction = static_cast<double>(slo_met) /
                              static_cast<double>(report.shards.size());
  if (!merged_latencies.empty()) {
    const double ps[] = {50.0, 90.0, 99.0};
    const std::vector<double> v = Percentiles(merged_latencies, ps);
    report.p50_ms = v[0] * 1e3;
    report.p90_ms = v[1] * 1e3;
    report.p99_ms = v[2] * 1e3;
  }

  metrics.SetGauge("fleet.shards.active", 0.0);
  metrics.SetGauge("fleet.queue_depth", 0.0);
  metrics.SetGauge("fleet.qps", report.fleet_qps);
  return report;
}

}  // namespace mlpm::fleet
