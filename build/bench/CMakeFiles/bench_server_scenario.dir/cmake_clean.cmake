file(REMOVE_RECURSE
  "CMakeFiles/bench_server_scenario.dir/bench_server_scenario.cpp.o"
  "CMakeFiles/bench_server_scenario.dir/bench_server_scenario.cpp.o.d"
  "bench_server_scenario"
  "bench_server_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_server_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
