#include "backends/reference_backend.h"

#include "common/check.h"
#include "common/thread_pool.h"
#include "infer/prepared_model.h"

namespace mlpm::backends {

ReferenceBackend::ReferenceBackend(std::string name,
                                   const infer::Executor& executor,
                                   const loadgen::DatasetQsl& qsl,
                                   const ThreadPool* pool)
    : name_(std::move(name)), executor_(executor), qsl_(qsl), pool_(pool) {}

void ReferenceBackend::IssueQuery(
    std::span<const loadgen::QuerySample> samples,
    loadgen::ResponseSink& sink) {
  if (pool_ != nullptr && pool_->thread_count() > 1) {
    // Defer: accuracy mode issues samples one at a time, so evaluating here
    // would serialize.  FlushQueries sees the whole set and fans out.
    pending_.insert(pending_.end(), samples.begin(), samples.end());
    sink_ = &sink;
    return;
  }
  if (!ctx_.has_value()) ctx_.emplace(executor_.CreateContext());
  for (const loadgen::QuerySample& s : samples) {
    std::vector<infer::Tensor> outputs =
        executor_.Run(qsl_.Loaded(s.index), *ctx_);
    sink.Complete(loadgen::QuerySampleResponse{s.id, std::move(outputs)});
  }
}

void ReferenceBackend::FlushQueries() {
  if (pending_.empty()) return;
  std::vector<std::vector<infer::Tensor>> outputs = infer::RunSamplesParallel(
      executor_, pending_.size(),
      [&](std::size_t i) { return qsl_.Loaded(pending_[i].index); },
      pool_);
  // The sink is not thread-safe; complete sequentially in issue order.
  loadgen::ResponseSink& sink =
      *NotNull(sink_, "deferred samples pending but no response sink bound");
  for (std::size_t i = 0; i < pending_.size(); ++i)
    sink.Complete(loadgen::QuerySampleResponse{pending_[i].id,
                                               std::move(outputs[i])});
  pending_.clear();
  sink_ = nullptr;
}

}  // namespace mlpm::backends
