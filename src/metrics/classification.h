// Top-1 / Top-K classification accuracy (ImageNet task metric, Table 1).
#pragma once

#include <cstdint>
#include <span>

namespace mlpm::metrics {

// Index of the maximum logit (ties broken toward the lower index).
[[nodiscard]] int ArgMax(std::span<const float> logits);

// True if `label` is among the k highest logits.
[[nodiscard]] bool InTopK(std::span<const float> logits, int label, int k);

// Fraction of samples whose prediction equals the label.
[[nodiscard]] double TopOneAccuracy(std::span<const int> predictions,
                                    std::span<const int> labels);

}  // namespace mlpm::metrics
