// Structural graph diff used by the PassManager's subgraph-locality gate
// (XFM006): after a pass runs, every node it did NOT declare as touched must
// appear in both graphs with an identical signature and in the same relative
// storage order.  Signatures are keyed on tensor *names*, not ids, so the
// id renumbering MutableGraph::Freeze performs never reads as a change.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/graph.h"

namespace mlpm::transform {

// Canonical, id-independent description of one node: op token, attrs,
// operand/weight tensor names with shapes, output name with shape.
[[nodiscard]] std::string NodeSignature(const graph::Graph& g,
                                        const graph::Node& n);

// Violations of subgraph locality: human-readable strings, one per node
// that was added, removed, rewritten or reordered outside `touched`.
// Empty means the rewrite provably confined itself to its matched subgraph.
//
// `edge_renames` is the pass's declared set of edge replacements (old
// tensor name -> new tensor name); the before-side signatures are resolved
// through it (transitively) so a declared rewiring of an untouched
// consumer's input is legal, while an undeclared one — or a redirect onto a
// tensor whose shape differs — still reads as a violation.
[[nodiscard]] std::vector<std::string> DiffOutsideTouched(
    const graph::Graph& before, const graph::Graph& after,
    const std::unordered_set<std::string>& touched,
    const std::unordered_map<std::string, std::string>& edge_renames);

}  // namespace mlpm::transform
