#include "datasets/detection_dataset.h"

#include <algorithm>

#include "common/rng.h"
#include "datasets/preprocess.h"
#include "datasets/synthetic_image.h"
#include "infer/executor.h"

namespace mlpm::datasets {
namespace {
constexpr std::uint64_t kValidationSpace = 0;
constexpr std::uint64_t kCalibrationSpace = 1'000'000;
}  // namespace

DetectionDataset::DetectionDataset(const models::DetectionModel& model,
                                   const infer::WeightStore& weights,
                                   DetectionDatasetConfig config)
    : model_(model), cfg_(config) {
  Expects(cfg_.num_samples > 0, "dataset must be non-empty");
  const infer::Executor teacher(model_.graph, weights,
                                infer::NumericsMode::kFp32);
  Rng rng = Rng(cfg_.seed).Split(0xFACE);

  ground_truth_.reserve(cfg_.num_samples);
  for (std::size_t i = 0; i < cfg_.num_samples; ++i) {
    const std::vector<infer::Tensor> in = {MakeInput(kValidationSpace, i)};
    const std::vector<infer::Tensor> out = teacher.Run(in);
    const std::vector<models::Detection> dets = models::DecodeDetections(
        out[0].values(), out[1].values(), model_.anchors, model_.num_classes,
        cfg_.decode);

    metrics::ImageGroundTruth gt;
    for (const models::Detection& d : dets) {
      if (d.score < cfg_.gt_score_threshold) continue;
      if (rng.NextDouble() < cfg_.drop_rate) continue;
      models::BBox box = d.box;
      const float h = std::max(box.ymax - box.ymin, 0.02f);
      const float w = std::max(box.xmax - box.xmin, 0.02f);
      const auto jitter = [&](float extent) {
        return static_cast<float>(rng.NextGaussian() * cfg_.box_jitter) *
               extent;
      };
      box.ymin = std::clamp(box.ymin + jitter(h), 0.0f, 1.0f);
      box.ymax = std::clamp(box.ymax + jitter(h), box.ymin + 0.01f, 1.0f);
      box.xmin = std::clamp(box.xmin + jitter(w), 0.0f, 1.0f);
      box.xmax = std::clamp(box.xmax + jitter(w), box.xmin + 0.01f, 1.0f);

      int cls = d.class_id;
      if (rng.NextDouble() >= cfg_.class_agreement) {
        // Random *other* foreground class.
        auto other = static_cast<int>(rng.NextBelow(
            static_cast<std::uint64_t>(model_.num_classes - 2)));
        if (other + 1 >= cls) ++other;
        cls = other + 1;
      }
      gt.push_back(metrics::GroundTruthBox{box, cls});
    }
    ground_truth_.push_back(std::move(gt));
  }
}

infer::Tensor DetectionDataset::MakeInput(std::uint64_t name_space,
                                          std::size_t index) const {
  SyntheticImageConfig img;
  img.height = img.width = model_.input_size + model_.input_size / 4;
  img.control_grid = 5;  // a little more spatial structure for detection
  infer::Tensor raw = GenerateImage(img, cfg_.seed + name_space,
                                    static_cast<std::uint64_t>(index));
  return DirectResizePreprocess(raw, model_.input_size);
}

std::vector<infer::Tensor> DetectionDataset::InputsFor(
    std::size_t index) const {
  Expects(index < ground_truth_.size(), "sample index out of range");
  std::vector<infer::Tensor> v;
  v.push_back(MakeInput(kValidationSpace, index));
  return v;
}

std::vector<infer::Tensor> DetectionDataset::CalibrationInputsFor(
    std::size_t index) const {
  std::vector<infer::Tensor> v;
  v.push_back(MakeInput(kCalibrationSpace, index));
  return v;
}

const metrics::ImageGroundTruth& DetectionDataset::GroundTruthFor(
    std::size_t index) const {
  Expects(index < ground_truth_.size(), "sample index out of range");
  return ground_truth_[index];
}

double DetectionDataset::ScoreOutputs(
    std::span<const std::vector<infer::Tensor>> outputs) const {
  Expects(outputs.size() == ground_truth_.size(),
          "output count does not cover the dataset");
  std::vector<metrics::ImageDetections> dets;
  dets.reserve(outputs.size());
  for (const auto& out : outputs) {
    Expects(out.size() >= 2, "detection model must emit boxes and classes");
    dets.push_back(models::DecodeDetections(out[0].values(), out[1].values(),
                                            model_.anchors,
                                            model_.num_classes, cfg_.decode));
  }
  return metrics::CocoMap(dets, ground_truth_);
}

}  // namespace mlpm::datasets
