#include "soc/thermal.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mlpm::soc {

ThermalModel::ThermalModel(ThermalParams params)
    : p_(params), temp_c_(params.ambient_c) {
  Expects(p_.capacitance_j_per_c > 0 && p_.resistance_c_per_w > 0,
          "thermal parameters must be positive");
  Expects(p_.throttle_limit_c > p_.throttle_start_c,
          "throttle limit must exceed throttle start");
  Expects(p_.min_throttle_factor > 0 && p_.min_throttle_factor <= 1,
          "throttle factor must be in (0,1]");
}

void ThermalModel::Step(double power_w, double dt_s) {
  Expects(dt_s >= 0 && power_w >= 0, "negative time or power");
  // Exact solution of the first-order RC response over dt.
  const double tau = p_.resistance_c_per_w * p_.capacitance_j_per_c;
  const double steady = p_.ambient_c + power_w * p_.resistance_c_per_w;
  temp_c_ = steady + (temp_c_ - steady) * std::exp(-dt_s / tau);
}

double ThermalModel::ThrottleFactor() const {
  if (temp_c_ <= p_.throttle_start_c) return 1.0;
  const double span = p_.throttle_limit_c - p_.throttle_start_c;
  double frac = std::min((temp_c_ - p_.throttle_start_c) / span, 1.0);
  if (p_.governor == GovernorMode::kStepped) {
    // Quantize to the frequency ladder: crossing each trip point drops one
    // discrete step (ceil, so any excursion past a trip point bites).
    const double steps = static_cast<double>(p_.governor_steps);
    frac = std::ceil(frac * steps) / steps;
  }
  return 1.0 - frac * (1.0 - p_.min_throttle_factor);
}

void ThermalModel::Reset() { temp_c_ = p_.ambient_c; }

}  // namespace mlpm::soc
