// Post-training quantization (paper §5.1).
//
// Submitters may generate INT8 models from the frozen FP32 reference using
// PTQ with an approved ~500-sample calibration set; QAT (retraining) is
// forbidden, though mutually-agreed QAT reference models exist.  This module
// implements:
//   * min-max and moving-average activation-range calibration,
//   * MSE-optimal weight clipping, the stand-in for the agreed QAT models
//     (it recovers part of the PTQ accuracy loss without touching labels,
//     mirroring the paper's "QAT reduces accuracy loss relative to PTQ").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "infer/executor.h"
#include "infer/weights.h"

namespace mlpm::quant {

enum class RangeMethod : std::uint8_t {
  kMinMax,         // global min/max over all calibration samples
  kMovingAverage,  // EMA of per-sample min/max (TensorFlow-style)
};

struct CalibrationConfig {
  RangeMethod method = RangeMethod::kMinMax;
  double ema_decay = 0.9;  // only for kMovingAverage
  int activation_bits = 8;
  int weight_bits = 8;
  bool per_channel_weights = true;
};

// One calibration sample: the full set of graph inputs for one inference.
using CalibrationSample = std::vector<infer::Tensor>;

// Derives QuantParams by running the FP32 reference executor over the
// calibration set and recording activation ranges.  `samples` is typically
// the approved 500-sample subset of the training/validation data.
[[nodiscard]] infer::QuantParams CalibratePtq(
    const graph::Graph& graph, const infer::WeightStore& weights,
    std::span<const CalibrationSample> samples,
    const CalibrationConfig& config = {});

// "QAT-equivalent" weight refinement: returns a copy of `weights` whose
// weight tensors are re-clipped to the MSE-optimal symmetric range before
// quantization.  Used to build the mutually-agreed QAT reference models.
[[nodiscard]] infer::WeightStore RefineWeightsMseOptimal(
    const graph::Graph& graph, const infer::WeightStore& weights,
    int weight_bits = 8);

}  // namespace mlpm::quant
