#include "soc/simulator.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "soc/trace.h"

namespace mlpm::soc {
namespace {

// Process-wide high-water mark of the simulated timeline (seconds); guards
// the epoch hand-off between sequentially constructed simulators.
std::mutex& TraceEpochMutex() {
  static std::mutex mu;
  return mu;
}
double& TraceTimelineEnd() {
  static double end_s = 0.0;
  return end_s;
}

}  // namespace

SocSimulator::SocSimulator(ChipsetDesc chipset)
    : chipset_(std::move(chipset)), thermal_(chipset_.thermal) {}

double SocSimulator::TraceBaseSeconds() {
  if (trace_epoch_s_ < 0.0) {
    std::scoped_lock lock(TraceEpochMutex());
    trace_epoch_s_ = TraceTimelineEnd();
  }
  return trace_epoch_s_ + busy_time_s_;
}

void SocSimulator::PublishTraceEnd(double end_s) {
  std::scoped_lock lock(TraceEpochMutex());
  double& end = TraceTimelineEnd();
  end = std::max(end, end_s);
}

std::string SocSimulator::Lane(std::string_view lane) const {
  return trace_lane_prefix_ + std::string(lane);
}

bool SocSimulator::IsCpuOnly(const CompiledModel& model) const {
  for (const CompiledSegment& seg : model.segments) {
    const EngineClass cls = chipset_.engines[seg.engine_index].cls;
    if (cls != EngineClass::kCpuBig && cls != EngineClass::kCpuLittle)
      return false;
  }
  return true;
}

InferenceResult SocSimulator::RunInference(const CompiledModel& model) {
  InferenceResult r;
  r.throttle_factor = thermal_.ThrottleFactor();
  r.latency_s = model.LatencySeconds(r.throttle_factor);
  r.energy_j = model.EnergyJoules();

  // Fault decision: one draw per attempt, accelerator plans only (a pure
  // CPU plan has no driver to crash — that is what fallback relies on).
  const FaultSpec* fault =
      injector_ && !IsCpuOnly(model) ? injector_->NextAttempt() : nullptr;
  if (fault != nullptr) {
    switch (fault->kind) {
      case FaultKind::kTransientStall: {
        // The attempt hangs; the runtime watchdog kills it after
        // stall_scale x the nominal latency.  No result.
        const double nominal = r.latency_s;
        r.latency_s = nominal * fault->stall_scale;
        injector_->RecordFault(*fault, busy_time_s_, r.latency_s - nominal);
        r.outcome = InferenceOutcome::kStalledRetryable;
        r.completed = false;
        break;
      }
      case FaultKind::kDriverCrash:
        // The driver fails the partition part-way in.
        r.latency_s *= fault->crash_latency_fraction;
        r.energy_j *= fault->crash_latency_fraction;
        injector_->RecordFault(*fault, busy_time_s_, r.latency_s);
        r.outcome = InferenceOutcome::kDriverCrash;
        r.completed = false;
        break;
      case FaultKind::kThermalEmergency:
        // The inference completes but the die jumps to the hard limit;
        // the caller must cool down before continuing.
        injector_->RecordFault(*fault, busy_time_s_, 0.0);
        r.outcome = InferenceOutcome::kThermalEmergency;
        break;
      case FaultKind::kSampleDrop:
        // Full work done, completion signal lost.
        injector_->RecordFault(*fault, busy_time_s_, 0.0);
        r.outcome = InferenceOutcome::kDropped;
        r.completed = false;
        break;
    }
  }

  // Power is capped by the chipset TDP (Appendix E: ~3 W ceiling); the cap
  // manifests as extra heat-limited time already captured by throttling, so
  // here it only bounds the dissipation fed to the thermal mass.
  const double power =
      std::min(model.AveragePowerWatts(), chipset_.tdp_w);
  thermal_.Step(power, r.latency_s);
  if (r.outcome == InferenceOutcome::kThermalEmergency)
    thermal_.ForceTemperature(thermal_.throttle_limit_c());
  r.temperature_c = thermal_.temperature_c();

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.Increment("soc.inferences");
  if (r.throttle_factor < 1.0) metrics.Increment("soc.throttled_inferences");
  if (r.outcome != InferenceOutcome::kOk)
    metrics.Increment("soc.faults_injected");
  if (r.outcome == InferenceOutcome::kThermalEmergency)
    metrics.Increment("soc.thermal_emergencies");

  if (obs::TraceRecorder& rec = obs::TraceRecorder::Global();
      rec.enabled()) {
    const double t0_s = TraceBaseSeconds();
    const double t0_us = t0_s * 1e6;
    const bool full_run = r.outcome == InferenceOutcome::kOk ||
                          r.outcome == InferenceOutcome::kThermalEmergency ||
                          r.outcome == InferenceOutcome::kDropped;
    if (full_run) {
      // The attempt executed end to end at nominal latency: expand the
      // per-IP dispatch/segment/transfer detail onto the engine lanes.
      TraceInference(model, chipset_, r.throttle_factor, t0_s)
          .AppendTo(rec, trace_lane_prefix_);
    } else {
      // Stalls and crashes have no meaningful per-segment breakdown; one
      // span covers the time the attempt consumed.
      rec.AddComplete(obs::Domain::kSim, Lane("runtime"),
                      "attempt:" + std::string(ToString(r.outcome)), t0_us,
                      r.latency_s * 1e6, {}, "soc");
    }
    if (r.outcome != InferenceOutcome::kOk)
      rec.AddInstant(obs::Domain::kSim, Lane("faults"),
                     "fault:" + std::string(ToString(r.outcome)),
                     t0_us + r.latency_s * 1e6, {}, "fault");
    rec.AddCounter(obs::Domain::kSim, Lane("dvfs"), "throttle_factor", t0_us,
                   r.throttle_factor);
    rec.AddCounter(obs::Domain::kSim, Lane("thermal"), "temperature_c",
                   t0_us + r.latency_s * 1e6, r.temperature_c);
    PublishTraceEnd(t0_s + r.latency_s);
  }

  busy_time_s_ += r.latency_s;
  return r;
}

BatchResult SocSimulator::RunBatch(std::span<const CompiledModel> replicas,
                                   std::size_t sample_count,
                                   const BatchOptions& options) {
  Expects(!replicas.empty(), "batch needs at least one replica");
  Expects(sample_count > 0, "batch needs at least one sample");

  BatchResult r;
  r.completion_times_s.reserve(sample_count);

  // Batch-mode faults only make sense when at least one replica runs on an
  // accelerator; completion-signal loss and partition crashes surface as
  // lost samples (the batch keeps going — ALP replicas are independent).
  bool any_accelerated = false;
  for (const auto& m : replicas)
    if (!IsCpuOnly(m)) any_accelerated = true;
  const bool inject = injector_.has_value() && any_accelerated;
  if (inject) r.completed.assign(sample_count, 1);

  // Concurrent power of all replicas, TDP-capped.
  double raw_power = 0.0;
  for (const auto& m : replicas) raw_power += m.AveragePowerWatts();
  const double power = std::min(raw_power, chipset_.tdp_w);

  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  const bool traced = rec.enabled();
  const double batch_base_s = traced ? TraceBaseSeconds() : 0.0;

  double now = 0.0;
  double produced = 0.0;  // fractional samples completed so far
  std::size_t emitted = 0;
  while (emitted < sample_count) {
    const double throttle = thermal_.ThrottleFactor();
    double rate = 0.0;  // samples per second across all replicas
    for (const auto& m : replicas) {
      const double t = m.LatencySeconds(throttle, options.dispatch_scale) -
                       m.overheads.per_inference_s *
                           (1.0 - options.per_inference_overhead_scale);
      Ensures(t > 0.0, "non-positive batched latency");
      rate += options.batched_efficiency_gain / t;
    }
    const double remaining = static_cast<double>(sample_count) - produced;
    const double dt = std::min(options.step_s, remaining / rate);
    const double before = produced;
    produced += rate * dt;
    // Emit completion timestamps for the integer completions in this step.
    while (emitted < sample_count &&
           static_cast<double>(emitted + 1) <= produced + 1e-9) {
      const double frac =
          (static_cast<double>(emitted + 1) - before) / (produced - before);
      r.completion_times_s.push_back(now + frac * dt);
      if (inject) {
        if (const FaultSpec* fault = injector_->NextAttempt();
            fault != nullptr && (fault->kind == FaultKind::kSampleDrop ||
                                 fault->kind == FaultKind::kDriverCrash)) {
          r.completed[emitted] = 0;
          injector_->RecordFault(*fault, busy_time_s_ + now + frac * dt, 0.0);
          if (traced)
            rec.AddInstant(obs::Domain::kSim, Lane("faults"),
                           "fault:" + std::string(ToString(fault->kind)),
                           (batch_base_s + now + frac * dt) * 1e6, {},
                           "fault");
        }
      }
      ++emitted;
    }
    now += dt;
    thermal_.Step(power, dt);
    r.energy_j += power * dt;
    if (traced) {
      // One span per ALP integration step: the DVFS/thermal staircase of a
      // long offline burst, visible on the simulator timeline.
      rec.AddComplete(obs::Domain::kSim, Lane("batch"), "alp step",
                      (batch_base_s + now - dt) * 1e6, dt * 1e6,
                      {obs::Arg("rate_sps", rate),
                       obs::Arg("throttle", throttle)},
                      "soc");
      rec.AddCounter(obs::Domain::kSim, Lane("dvfs"), "throttle_factor",
                     (batch_base_s + now - dt) * 1e6, throttle);
      rec.AddCounter(obs::Domain::kSim, Lane("thermal"), "temperature_c",
                     (batch_base_s + now) * 1e6, thermal_.temperature_c());
    }
  }
  r.makespan_s = r.completion_times_s.back();
  r.final_temperature_c = thermal_.temperature_c();

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.Increment("soc.batches");
  metrics.Increment("soc.batch_samples", sample_count);
  if (traced) {
    rec.AddComplete(obs::Domain::kSim, Lane("batch"), "offline batch",
                    batch_base_s * 1e6, now * 1e6,
                    {obs::Arg("samples", static_cast<std::uint64_t>(
                                             sample_count)),
                     obs::Arg("replicas", static_cast<std::uint64_t>(
                                              replicas.size()))},
                    "soc");
    PublishTraceEnd(batch_base_s + now);
  }
  busy_time_s_ += now;
  return r;
}

}  // namespace mlpm::soc
