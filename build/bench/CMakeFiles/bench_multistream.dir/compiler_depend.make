# Empty compiler generated dependencies file for bench_multistream.
# This may be replaced when dependencies are built.
