file(REMOVE_RECURSE
  "CMakeFiles/bench_multistream.dir/bench_multistream.cpp.o"
  "CMakeFiles/bench_multistream.dir/bench_multistream.cpp.o.d"
  "bench_multistream"
  "bench_multistream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multistream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
