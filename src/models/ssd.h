// SSD object-detection reference models (paper §3.2):
//   * SSD-MobileNet v2 (v0.7): MobileNet v2 feature extractor, SSD heads,
//     300x300 input, ~17M parameters.
//   * MobileDet-SSD (v1.0): MobileDet backbone that mixes fused-IBN /
//     regular convolutions with SSDLite separable heads, 320x320 input,
//     ~4M parameters — the update "more geared toward stressing mobile
//     hardware accelerators".
#pragma once

#include "graph/graph.h"
#include "models/common.h"
#include "models/detection.h"

namespace mlpm::models {

// A detection model is the graph plus the anchor grid its outputs are
// relative to.  Graph outputs: [num_anchors,4] box deltas, then
// [num_anchors,num_classes] class logits.
struct DetectionModel {
  graph::Graph graph;
  AnchorSet anchors;
  std::int64_t num_classes = 0;
  std::int64_t input_size = 0;
};

[[nodiscard]] DetectionModel BuildSsdMobileNetV2(ModelScale scale);
[[nodiscard]] DetectionModel BuildMobileDetSsd(ModelScale scale);

}  // namespace mlpm::models
