// Static passes over the model IR and the run configuration (DESIGN.md §9).
//
// Each pass re-checks a family of rules from first principles and reports
// coded diagnostics instead of throwing: the point of the layer is to prove
// a model / run configuration well-formed *before* anything executes, and
// to explain every way in which it is not.  Passes never mutate the graph
// and tolerate arbitrarily corrupt input (they are the gate that corrupt
// input must pass through).
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "analysis/diagnostics.h"
#include "common/types.h"
#include "graph/graph.h"
#include "infer/quant_params.h"
#include "soc/chipset.h"
#include "soc/compile.h"

namespace mlpm::analysis {

// --- Model IR passes -------------------------------------------------------

// Graph structure lints (GRAPH001-GRAPH005): id ranges and tensor kinds,
// aliasing writes, dataflow cycles, dead tensors, unreachable nodes.  Goes
// beyond graph/validate by accepting any input and by classifying findings
// by severity instead of collapsing them into one bool.
void CheckGraphStructure(const graph::Graph& g, DiagnosticEngine& de);

// Shape dataflow inference (SHAPE001-SHAPE004): recomputes every node's
// output shape from its inputs and attributes and checks per-edge operand
// legality (ranks, matching shapes, axes, arity, weight shapes).  Assumes
// in-range tensor ids; RunModelPasses gates it on CheckGraphStructure.
void CheckShapeDataflow(const graph::Graph& g, DiagnosticEngine& de);

// Runs CheckGraphStructure, then CheckShapeDataflow when the graph is
// structurally sound enough for shape inference to be meaningful (no
// GRAPH005 corruption).
void RunModelPasses(const graph::Graph& g, DiagnosticEngine& de);

// --- Quantization legality (QUANT001-QUANT008) -----------------------------

// The quantization recipe of one submission, as the rules see it.  The
// defaults mirror the executor's convention: symmetric per-channel INT8
// weights (axis 0 = output channels), asymmetric 8-bit activations.
struct QuantConfigView {
  // Submission numerics for activations; pass the submission DataType even
  // when it is FP16/FP32 so QAT misuse is still caught.
  DataType activation_dtype = DataType::kUInt8;
  DataType weight_dtype = DataType::kInt8;
  int activation_bits = 8;
  int weight_bits = 8;
  bool per_channel_weights = true;
  int per_channel_axis = 0;  // output-channel axis of weight tensors
  // Mutually-agreed QAT weights requested (paper §5.1: legal for INT8 only;
  // submitters may not retrain).
  bool qat_weights = false;
  // Calibrated activation ranges to check, if available.
  const infer::QuantParams* params = nullptr;
  // Calibration legality (paper §5.1: only the approved subset may be
  // used).  Both empty = not checked.
  std::span<const std::size_t> approved_calibration;
  std::span<const std::size_t> used_calibration;
};

void CheckQuantLegality(const graph::Graph& g, const QuantConfigView& q,
                        DiagnosticEngine& de);

// --- SoC mapping feasibility (SOC001-SOC005) -------------------------------

// One execution policy about to be compiled onto a chipset.  The pass
// answers the paper's fallback-to-CPU hazard question statically: is every
// op of the graph placeable on the engine the policy gives it?
struct MappingConfigView {
  const soc::ChipsetDesc* chipset = nullptr;
  const soc::ExecutionPolicy* policy = nullptr;
  DataType numerics = DataType::kInt8;
  // Config-key prefix used in diagnostic sources, e.g.
  // "Snapdragon 888/image_classification/single_stream".
  std::string label = "policy";
};

void CheckSocMapping(const graph::Graph& g, const MappingConfigView& m,
                     DiagnosticEngine& de);

// --- Run-configuration determinism lints (RUN001-RUN007) -------------------

struct RunConfigView {
  int threads = 1;
  double cooldown_s = 60.0;
  int max_test_retries = 1;
  // Requested kernel ISA name ("auto", "scalar", "avx2", "neon") and
  // whether the host's kernel registry can honor it.  The caller resolves
  // availability (infer::kernels::KernelRegistry) so this layer stays free
  // of an infer dependency; an unknown name or an unavailable ISA is
  // RUN007 (the run would silently fall back to the portable kernels).
  std::string kernel_isa = "auto";
  bool kernel_isa_available = true;
  // Tiled-execution request (DESIGN.md §15).  `tile_rows` follows
  // infer::TileOptions: -1 = auto, >= 1 = explicit tile height; anything
  // else is an invalid configuration (RUN008 error).  The caller resolves
  // `graph_has_fusable_segment` (infer::HasFusableSegment) so this layer
  // stays free of an infer dependency; tiling requested on a graph with no
  // fusable segment is a RUN008 warning — the run silently executes
  // whole-op and any memory/latency expectations from tiling are void.
  bool tiling_requested = false;
  std::int64_t tile_rows = -1;
  bool graph_has_fusable_segment = false;
  // Named per-inference fault probabilities from the fault plan.
  std::vector<std::pair<std::string, double>> fault_probabilities;
  // Declared threading properties of the execution engine driving the run.
  // The in-tree engine uses a ThreadPool with static deterministic
  // partitioning and per-task scratch; these flags exist so external or
  // experimental engines can be linted against the same rules.
  bool shared_scratch_across_threads = false;
  bool uses_thread_pool = true;
};

void CheckRunConfig(const RunConfigView& rc, DiagnosticEngine& de);

}  // namespace mlpm::analysis
