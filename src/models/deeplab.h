// DeepLab v3+ with MobileNet v2 backbone — the semantic-segmentation
// reference model (paper §3.2).
//
// Encoder/decoder with atrous spatial pyramid pooling on an output-stride-16
// MobileNet v2.  The 2M-parameter mobile variant (Table 1) uses the slim
// ASPP (1x1 branch + image pooling, no heavy 3x3 atrous branches) and a
// direct classifier, matching the TFLite deployment of this model.  Trained
// to predict 32 classes: the 31 most frequent ADE20K classes plus a
// catch-all (paper §3.2).
#pragma once

#include "graph/graph.h"
#include "models/common.h"

namespace mlpm::models {

struct SegmentationConfig {
  std::int64_t input_size = 512;
  std::int64_t num_classes = 32;
  std::int64_t aspp_channels = 256;
};

[[nodiscard]] SegmentationConfig MiniSegmentationConfig();

// Graph output: [1, input, input, num_classes] per-pixel logits.
[[nodiscard]] graph::Graph BuildDeepLabV3Plus(ModelScale scale);
[[nodiscard]] graph::Graph BuildDeepLabV3Plus(const SegmentationConfig& cfg,
                                              ModelScale scale);

}  // namespace mlpm::models
