#include "datasets/classification_dataset.h"

#include "common/rng.h"
#include "datasets/preprocess.h"
#include "datasets/synthetic_image.h"
#include "metrics/classification.h"

namespace mlpm::datasets {
namespace {
// Seed namespaces so validation / calibration images never collide.
constexpr std::uint64_t kValidationSpace = 0;
constexpr std::uint64_t kCalibrationSpace = 1'000'000;
}  // namespace

ClassificationDataset::ClassificationDataset(
    const graph::Graph& model, const infer::WeightStore& weights,
    ClassificationDatasetConfig config)
    : cfg_(config) {
  Expects(cfg_.num_samples > 0, "dataset must be non-empty");
  const infer::Executor teacher(model, weights, infer::NumericsMode::kFp32);
  Rng label_rng = Rng(cfg_.seed).Split(0xBEEF);

  labels_.reserve(cfg_.num_samples);
  image_indices_.reserve(cfg_.num_samples);
  std::size_t gen = 0;
  // Cap candidate generation so a too-strict margin cannot loop forever.
  const std::size_t max_candidates = cfg_.num_samples * 64;
  while (labels_.size() < cfg_.num_samples) {
    Expects(gen < max_candidates,
            "min_teacher_margin too strict: candidate pool exhausted");
    const std::size_t i = gen++;
    const std::vector<infer::Tensor> in = {MakeInput(kValidationSpace, i)};
    const std::vector<infer::Tensor> out = teacher.Run(in);
    const int teacher_label = metrics::ArgMax(out[0].values());
    if (cfg_.min_teacher_margin > 0.0) {
      // Top1-top2 logit gap.
      float top1 = -1e30f, top2 = -1e30f;
      for (float v : out[0].values()) {
        if (v > top1) {
          top2 = top1;
          top1 = v;
        } else if (v > top2) {
          top2 = v;
        }
      }
      if (top1 - top2 < cfg_.min_teacher_margin) continue;
    }
    image_indices_.push_back(i);
    if (label_rng.NextDouble() < cfg_.teacher_agreement) {
      labels_.push_back(teacher_label);
    } else {
      // A random class different from the teacher's.
      auto other = static_cast<int>(
          label_rng.NextBelow(static_cast<std::uint64_t>(cfg_.num_classes - 1)));
      if (other >= teacher_label) ++other;
      labels_.push_back(other);
    }
  }
}

infer::Tensor ClassificationDataset::MakeInput(std::uint64_t name_space,
                                               std::size_t index) const {
  // Raw image slightly larger than the model input, then the standard
  // resize/crop/normalize pipeline.
  SyntheticImageConfig img;
  img.height = img.width = cfg_.input_size + cfg_.input_size / 4;
  infer::Tensor raw = GenerateImage(img, cfg_.seed + name_space,
                                    static_cast<std::uint64_t>(index));
  return ClassificationPreprocess(raw, cfg_.input_size);
}

std::vector<infer::Tensor> ClassificationDataset::InputsFor(
    std::size_t index) const {
  Expects(index < labels_.size(), "sample index out of range");
  std::vector<infer::Tensor> v;
  v.push_back(MakeInput(kValidationSpace, image_indices_[index]));
  return v;
}

std::vector<infer::Tensor> ClassificationDataset::CalibrationInputsFor(
    std::size_t index) const {
  std::vector<infer::Tensor> v;
  v.push_back(MakeInput(kCalibrationSpace, index));
  return v;
}

int ClassificationDataset::LabelFor(std::size_t index) const {
  Expects(index < labels_.size(), "sample index out of range");
  return labels_[index];
}

double ClassificationDataset::ScoreOutputs(
    std::span<const std::vector<infer::Tensor>> outputs) const {
  Expects(outputs.size() == labels_.size(),
          "output count does not cover the dataset");
  std::vector<int> preds;
  preds.reserve(outputs.size());
  for (const auto& out : outputs) {
    Expects(!out.empty(), "missing model output");
    preds.push_back(metrics::ArgMax(out[0].values()));
  }
  return metrics::TopOneAccuracy(preds, labels_);
}

}  // namespace mlpm::datasets
