file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fallback.dir/bench_ablation_fallback.cpp.o"
  "CMakeFiles/bench_ablation_fallback.dir/bench_ablation_fallback.cpp.o.d"
  "bench_ablation_fallback"
  "bench_ablation_fallback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fallback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
