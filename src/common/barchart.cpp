#include "common/barchart.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/table.h"

namespace mlpm {

BarChart::BarChart(std::string title, std::string unit)
    : title_(std::move(title)), unit_(std::move(unit)) {}

void BarChart::Add(std::string label, double value) {
  Expects(value >= 0.0, "bar values must be non-negative");
  rows_.emplace_back(std::move(label), value, false);
}

void BarChart::AddGap() { rows_.emplace_back(std::string{}, 0.0, true); }

std::string BarChart::Render(std::size_t max_width) const {
  Expects(max_width >= 4, "chart too narrow");
  double max_value = 0.0;
  std::size_t label_width = 0;
  for (const Row& r : rows_) {
    if (r.gap) continue;
    max_value = std::max(max_value, r.value);
    label_width = std::max(label_width, r.label.size());
  }

  std::ostringstream os;
  if (!title_.empty()) os << title_ << '\n';
  for (const Row& r : rows_) {
    if (r.gap) {
      os << '\n';
      continue;
    }
    const auto cells =
        max_value > 0.0
            ? static_cast<std::size_t>(r.value / max_value *
                                       static_cast<double>(max_width))
            : 0;
    os << "  " << r.label << std::string(label_width - r.label.size(), ' ')
       << " |" << std::string(cells, '#')
       << (cells == 0 && r.value > 0.0 ? "|" : "") << ' '
       << FormatDouble(r.value, 2) << (unit_.empty() ? "" : " ") << unit_
       << '\n';
  }
  return os.str();
}

}  // namespace mlpm
