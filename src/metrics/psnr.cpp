#include "metrics/psnr.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace mlpm::metrics {

double MeanSquaredError(const infer::Tensor& a, const infer::Tensor& b) {
  Expects(a.shape() == b.shape(), "MSE requires equal shapes");
  Expects(a.size() > 0, "MSE of empty tensors");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a.data()[i]) - b.data()[i];
    acc += d * d;
  }
  return acc / static_cast<double>(a.size());
}

double Psnr(const infer::Tensor& image, const infer::Tensor& reference,
            double peak) {
  Expects(peak > 0.0, "peak must be positive");
  const double mse = MeanSquaredError(image, reference);
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(peak * peak / mse);
}

}  // namespace mlpm::metrics
