// Constant folding: a node whose every activation input comes from a
// kConstant node is evaluated once, at transform time, through the same
// reference executor the runtime uses, and replaced by a kConstant holding
// the result.  Evaluating through the executor (not a private re-impl)
// keeps folded values bit-identical to what the runtime would have computed.
//
// FP32 only: under FP16/INT8 the executor applies per-node output numerics,
// and folding collapses intermediate rounding/fake-quant points.

#include <string>
#include <utility>
#include <vector>

#include "infer/executor.h"
#include "infer/weights.h"
#include "transform/pass_util.h"
#include "transform/passes.h"

namespace mlpm::transform {
namespace {

using graph::Node;
using graph::TensorId;
using graph::TensorInfo;

class ConstantFoldPass final : public TransformPass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "constant-fold";
  }
  [[nodiscard]] std::span<const Invariant> preserved() const override {
    return kAllInvariants;
  }

  void Run(MutableGraph& g, PassContext& ctx) const override {
    const std::vector<std::int32_t> producers = g.BuildProducers();
    for (std::size_t i = 0; i < g.nodes().size(); ++i) {
      if (!g.alive(i)) continue;
      const Node& n = g.nodes()[i];
      if (n.op == graph::OpType::kConstant ||
          n.op == graph::OpType::kInput || n.inputs.empty())
        continue;

      bool all_const = true;
      for (const TensorId in : n.inputs) {
        const std::int32_t p =
            (in >= 0 && static_cast<std::size_t>(in) < producers.size())
                ? producers[static_cast<std::size_t>(in)]
                : -1;
        if (p < 0 || g.nodes()[static_cast<std::size_t>(p)].op !=
                         graph::OpType::kConstant) {
          all_const = false;
          break;
        }
      }
      if (!all_const) continue;

      if (ctx.mode != infer::NumericsMode::kFp32) {
        ctx.Skip("folding '" + n.name +
                 "' would collapse per-node numerics points under " +
                 std::string(ToString(ctx.mode)));
        continue;
      }
      const std::vector<TensorId> former_inputs = n.inputs;
      if (TryFold(g, ctx, i, producers)) {
        ++ctx.rewrites;
        ReapOrphanedConstants(g, ctx, former_inputs, producers);
      }
    }
  }

 private:
  // Folding detaches the node from its constant operands; an operand whose
  // tensor now has no live consumer (and is not a graph output) leaves its
  // producing kConstant orphaned — which would read as a *new*
  // GRAPH001/GRAPH002 finding and trip the XFM007 gate.  Those producers
  // are part of the fold's matched subgraph, so the pass reaps them itself
  // (declaring them touched) rather than leaning on dead-node-elim.
  static void ReapOrphanedConstants(
      MutableGraph& g, PassContext& ctx,
      const std::vector<TensorId>& former_inputs,
      const std::vector<std::int32_t>& producers) {
    const std::vector<std::vector<std::size_t>> consumers =
        g.BuildConsumers();
    for (const TensorId t : former_inputs) {
      if (g.IsGraphOutput(t)) continue;
      if (!consumers[static_cast<std::size_t>(t)].empty()) continue;
      const std::int32_t p = producers[static_cast<std::size_t>(t)];
      if (p < 0 || !g.alive(static_cast<std::size_t>(p))) continue;
      ctx.Touch(g.nodes()[static_cast<std::size_t>(p)].name);
      g.Kill(static_cast<std::size_t>(p));
    }
  }

  // Evaluate node `i` in an isolated single-node graph whose inputs are fed
  // the producing constants' values.  Returns false (leaving the graph
  // untouched) if any operand value is missing from the weight store.
  static bool TryFold(MutableGraph& g, PassContext& ctx, std::size_t i,
                      const std::vector<std::int32_t>& producers) {
    const Node& n = g.nodes()[i];

    std::vector<TensorInfo> tensors;
    std::vector<TensorId> graph_inputs;
    std::vector<infer::Tensor> input_values;
    infer::WeightStore store;
    Node probe = n;

    for (TensorId& in : probe.inputs) {
      const Node& cn =
          g.nodes()[static_cast<std::size_t>(producers[static_cast<std::size_t>(in)])];
      const infer::Tensor* value =
          ctx.FindWeight(g.tensor(cn.weights[0]).name);
      if (value == nullptr) return false;
      const TensorInfo& info = g.tensor(in);
      const auto id = static_cast<TensorId>(tensors.size());
      tensors.push_back(
          TensorInfo{info.name, info.shape, graph::TensorKind::kActivation, -1});
      graph_inputs.push_back(id);
      input_values.push_back(value->Clone());
      in = id;
    }
    for (TensorId& w : probe.weights) {
      const TensorInfo& info = g.tensor(w);
      const infer::Tensor* value = ctx.FindWeight(info.name);
      if (value == nullptr) return false;
      const auto id = static_cast<TensorId>(tensors.size());
      tensors.push_back(
          TensorInfo{info.name, info.shape, graph::TensorKind::kWeight, -1});
      store.Put(info.name, value->Clone());
      w = id;
    }
    const TensorInfo& out_info = g.tensor(probe.output);
    const auto out_id = static_cast<TensorId>(tensors.size());
    tensors.push_back(TensorInfo{out_info.name, out_info.shape,
                                 graph::TensorKind::kActivation, 0});
    probe.output = out_id;

    const graph::Graph isolated = graph::AssembleGraphUnchecked(
        "fold:" + n.name, {std::move(probe)}, std::move(tensors),
        std::move(graph_inputs), {out_id});
    const infer::Executor ex(isolated, store, infer::NumericsMode::kFp32);
    std::vector<infer::Tensor> outs = ex.Run(input_values);

    // Rewrite in place: the node becomes a kConstant over a staged weight.
    const std::string weight_name = n.name + "/folded";
    const TensorId wid = g.AddTensor(weight_name, out_info.shape,
                                     graph::TensorKind::kWeight);
    ctx.staged_weights.Put(weight_name, std::move(outs[0]));
    Node& folded = g.nodes()[i];
    folded.op = graph::OpType::kConstant;
    folded.attrs = graph::EmptyAttrs{};
    folded.inputs.clear();
    folded.weights = {wid};
    ctx.Touch(folded.name);
    return true;
  }
};

}  // namespace

std::unique_ptr<TransformPass> MakeConstantFoldPass() {
  return std::make_unique<ConstantFoldPass>();
}

}  // namespace mlpm::transform
