
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dataset_qsl.cpp" "src/core/CMakeFiles/mlpm_loadgen.dir/dataset_qsl.cpp.o" "gcc" "src/core/CMakeFiles/mlpm_loadgen.dir/dataset_qsl.cpp.o.d"
  "/root/repo/src/core/loadgen.cpp" "src/core/CMakeFiles/mlpm_loadgen.dir/loadgen.cpp.o" "gcc" "src/core/CMakeFiles/mlpm_loadgen.dir/loadgen.cpp.o.d"
  "/root/repo/src/core/logging.cpp" "src/core/CMakeFiles/mlpm_loadgen.dir/logging.cpp.o" "gcc" "src/core/CMakeFiles/mlpm_loadgen.dir/logging.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datasets/CMakeFiles/mlpm_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/infer/CMakeFiles/mlpm_infer.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlpm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mlpm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/mlpm_models.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/mlpm_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mlpm_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
