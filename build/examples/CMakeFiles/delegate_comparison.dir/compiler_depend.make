# Empty compiler generated dependencies file for delegate_comparison.
# This may be replaced when dependencies are built.
