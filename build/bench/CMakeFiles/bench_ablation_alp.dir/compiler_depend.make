# Empty compiler generated dependencies file for bench_ablation_alp.
# This may be replaced when dependencies are built.
