// Tests for the crash-safe submission journal (harness/journal.h): codec
// round trips (bit-exact doubles), writer/loader file round trips, the
// torn-write property (truncation at every byte offset of the last record
// recovers the longest valid prefix), corruption containment, and the
// headline crash/resume contract — a killed-and-resumed submission report
// is byte-identical to an uninterrupted same-seed run.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/app.h"
#include "harness/export.h"
#include "harness/journal.h"
#include "harness/report.h"

namespace mlpm::harness {
namespace {

std::string TmpPath(const std::string& name) {
  std::string p = testing::TempDir();
  if (!p.empty() && p.back() != '/') p += '/';
  return p + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

JournalMeta TestMeta() {
  JournalMeta m;
  m.chipset = "Test Chipset";
  m.version = "v1.0";
  m.seed = 0xC0FFEE;
  m.config_hash = 0x1234;
  return m;
}

// A task record exercising hostile content: multi-line logs, doubles that
// don't round-trip through decimal text, and every new counter.
TaskRunResult HostileTask(const std::string& id) {
  TaskRunResult t;
  t.entry.id = id;
  t.numerics = DataType::kInt8;
  t.framework_name = "TF,Lite \"nightly\"\nbuild";
  t.accelerator_label = "npu + dsp";
  t.accuracy = 1.0 / 3.0;  // no finite decimal representation
  t.fp32_reference = 0.1;
  t.ratio_to_fp32 = 0.9999999999999999;
  t.quality_passed = true;
  t.calibration_indices = {3, 1, 4, 1, 5};
  t.accuracy_sample_count = 128;
  t.dataset_size = 128;

  loadgen::TestResult ss;
  ss.sample_count = 3;
  ss.duration_s = 0.123456789123456789;
  ss.percentile_latency_s = 0x1.fffffffffffffp-7;  // exact hexfloat
  ss.mean_latency_s = 5e-324;                      // smallest denormal
  ss.latencies_s = {0.001, 1.0 / 7.0, 0x1.5p-3};
  ss.error_log = {"query 7 timed out", "line\nwith\nbreaks"};
  ss.log.SetField("seed", "123");
  ss.log.Record(loadgen::LogEventKind::kQueryIssued, 1, loadgen::Seconds{0.5});
  ss.log.Record(loadgen::LogEventKind::kQueryShed, 2, loadgen::Seconds{0.6});
  ss.log.Record(loadgen::LogEventKind::kQueryRejected, 1,
                loadgen::Seconds{0.7});
  t.single_stream = ss;

  t.energy_per_inference_j = 0.00123;
  t.peak_temperature_c = 43.5;
  t.peak_arena_bytes = 1 << 20;
  t.naive_activation_bytes = 1 << 22;
  t.status = TaskStatus::kValidDegraded;
  t.status_detail = "retried twice";
  t.fault_count = 5;
  t.degradation_count = 2;
  t.shed_count = 7;
  t.rejected_count = 3;
  t.breaker_trips = 1;
  t.degraded_to_cpu = true;
  t.performance_attempts = 2;
  t.fault_log = "fault stall q=1\nbreaker closed->open query=9\n";
  t.lint_error_count = 0;
  t.lint_warning_count = 4;
  t.lint_log = "warning: something\n";
  t.kernel_isa = "avx2";
  t.transform_requested = true;
  t.transform_applied = false;
  t.transform_passes = "split-activations,constant-fold\nwith\nbreaks";
  t.transform_rewrites = 42;
  t.transform_nodes_before = 103;
  t.transform_nodes_after = 70;
  t.transform_detail = "equivalence probe failed on sample 0";
  t.tiling_requested = true;
  t.tiling_applied = true;
  t.tile_segments = 19;
  t.tile_rows = -1;  // auto: exercises the signed u64 image round trip
  t.tile_slab_bytes = 465920;
  return t;
}

TEST(Journal, Fnv1a64MatchesKnownVectors) {
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Journal, TaskRecordRoundTripsBitExact) {
  const TaskRunResult original = HostileTask("ic_tf");
  const TaskRunResult decoded = DecodeTaskRecord(EncodeTaskRecord(original));

  EXPECT_EQ(decoded.entry.id, original.entry.id);
  EXPECT_EQ(decoded.numerics, original.numerics);
  EXPECT_EQ(decoded.framework_name, original.framework_name);
  EXPECT_EQ(decoded.accelerator_label, original.accelerator_label);
  // Bit-exact double round trip (hexfloat encoding), including values with
  // no finite decimal form and the smallest denormal.
  EXPECT_EQ(decoded.accuracy, original.accuracy);
  EXPECT_EQ(decoded.fp32_reference, original.fp32_reference);
  EXPECT_EQ(decoded.ratio_to_fp32, original.ratio_to_fp32);
  EXPECT_EQ(decoded.calibration_indices, original.calibration_indices);

  ASSERT_TRUE(decoded.single_stream.has_value());
  const loadgen::TestResult& a = *decoded.single_stream;
  const loadgen::TestResult& b = *original.single_stream;
  EXPECT_EQ(a.sample_count, b.sample_count);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.percentile_latency_s, b.percentile_latency_s);
  EXPECT_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_EQ(a.latencies_s, b.latencies_s);
  EXPECT_EQ(a.error_log, b.error_log);
  EXPECT_EQ(a.log.Serialize(), b.log.Serialize());
  EXPECT_FALSE(decoded.offline.has_value());

  EXPECT_EQ(decoded.status, original.status);
  EXPECT_EQ(decoded.status_detail, original.status_detail);
  EXPECT_EQ(decoded.shed_count, original.shed_count);
  EXPECT_EQ(decoded.rejected_count, original.rejected_count);
  EXPECT_EQ(decoded.breaker_trips, original.breaker_trips);
  EXPECT_EQ(decoded.degraded_to_cpu, original.degraded_to_cpu);
  EXPECT_EQ(decoded.performance_attempts, original.performance_attempts);
  EXPECT_EQ(decoded.fault_log, original.fault_log);
  EXPECT_EQ(decoded.lint_warning_count, original.lint_warning_count);
  EXPECT_EQ(decoded.lint_log, original.lint_log);
  EXPECT_EQ(decoded.kernel_isa, original.kernel_isa);
  EXPECT_EQ(decoded.transform_requested, original.transform_requested);
  EXPECT_EQ(decoded.transform_applied, original.transform_applied);
  EXPECT_EQ(decoded.transform_passes, original.transform_passes);
  EXPECT_EQ(decoded.transform_rewrites, original.transform_rewrites);
  EXPECT_EQ(decoded.transform_nodes_before, original.transform_nodes_before);
  EXPECT_EQ(decoded.transform_nodes_after, original.transform_nodes_after);
  EXPECT_EQ(decoded.transform_detail, original.transform_detail);
  EXPECT_EQ(decoded.tiling_requested, original.tiling_requested);
  EXPECT_EQ(decoded.tiling_applied, original.tiling_applied);
  EXPECT_EQ(decoded.tile_segments, original.tile_segments);
  EXPECT_EQ(decoded.tile_rows, original.tile_rows);
  EXPECT_EQ(decoded.tile_slab_bytes, original.tile_slab_bytes);
}

TEST(Journal, MetaRoundTrips) {
  const JournalMeta m = TestMeta();
  const JournalMeta back = DecodeMeta(EncodeMeta(m));
  EXPECT_TRUE(back.Matches(m));
}

TEST(Journal, DecodeRejectsGarbage) {
  EXPECT_THROW((void)DecodeTaskRecord("not a record"), CheckError);
  EXPECT_THROW((void)DecodeMeta("u seed not-a-number\n"), CheckError);
}

TEST(Journal, WriterThenLoaderRoundTripsAFile) {
  const std::string path = TmpPath("journal_roundtrip.mjl");
  std::remove(path.c_str());
  {
    JournalWriter w = JournalWriter::Open(path, TestMeta());
    w.Append(HostileTask("ic_tf"));
    w.Append(HostileTask("od_ssd"));
  }
  const JournalLoad load = LoadJournal(path);
  EXPECT_TRUE(load.meta_valid);
  EXPECT_TRUE(load.meta.Matches(TestMeta()));
  EXPECT_EQ(load.intact_records, 2u);
  EXPECT_FALSE(load.torn_tail);
  ASSERT_EQ(load.tasks.size(), 2u);
  EXPECT_EQ(load.tasks[0].entry.id, "ic_tf");
  EXPECT_EQ(load.tasks[1].entry.id, "od_ssd");
  std::remove(path.c_str());
}

TEST(Journal, MissingFileIsNotValid) {
  const JournalLoad load = LoadJournal(TmpPath("does_not_exist.mjl"));
  EXPECT_FALSE(load.meta_valid);
  EXPECT_EQ(load.intact_records, 0u);
}

// The torn-write property: truncate the file at *every* byte offset inside
// the last record's frame.  Whatever the cut, the loader must recover
// exactly the earlier record, flag the tail, and a resuming writer must be
// able to cut the tail and append successfully.
TEST(Journal, TruncationAtEveryByteOffsetOfLastRecordRecovers) {
  const std::string path = TmpPath("journal_torn.mjl");
  std::remove(path.c_str());
  std::size_t first_record_end = 0;
  {
    JournalWriter w = JournalWriter::Open(path, TestMeta());
    w.Append(HostileTask("ic_tf"));
    first_record_end = ReadFile(path).size();
    w.Append(HostileTask("od_ssd"));
  }
  const std::string full = ReadFile(path);
  ASSERT_GT(full.size(), first_record_end);

  const std::string torn_path = TmpPath("journal_torn_cut.mjl");
  for (std::size_t cut = first_record_end; cut < full.size(); ++cut) {
    WriteFile(torn_path, full.substr(0, cut));
    const JournalLoad load = LoadJournal(torn_path);
    ASSERT_TRUE(load.meta_valid) << "cut at " << cut;
    ASSERT_EQ(load.intact_records, 1u) << "cut at " << cut;
    ASSERT_EQ(load.tasks[0].entry.id, "ic_tf") << "cut at " << cut;
    ASSERT_EQ(load.torn_tail, cut != first_record_end) << "cut at " << cut;
    ASSERT_EQ(load.valid_prefix_bytes, first_record_end) << "cut at " << cut;

    // A resuming writer cuts the tail and appends cleanly.
    {
      JournalWriter w = JournalWriter::Open(torn_path, TestMeta(), true);
      w.Append(HostileTask("od_ssd"));
    }
    const JournalLoad healed = LoadJournal(torn_path);
    ASSERT_EQ(healed.intact_records, 2u) << "cut at " << cut;
    ASSERT_FALSE(healed.torn_tail) << "cut at " << cut;
  }
  std::remove(path.c_str());
  std::remove(torn_path.c_str());
}

TEST(Journal, CorruptedRecordInvalidatesOnlyTheSuffix) {
  const std::string path = TmpPath("journal_corrupt.mjl");
  std::remove(path.c_str());
  std::size_t first_record_end = 0;
  {
    JournalWriter w = JournalWriter::Open(path, TestMeta());
    w.Append(HostileTask("ic_tf"));
    first_record_end = ReadFile(path).size();
    w.Append(HostileTask("od_ssd"));
  }
  std::string bytes = ReadFile(path);
  // Flip one byte inside the *second* record's frame.
  bytes[first_record_end + 1] ^= 0x01;
  WriteFile(path, bytes);
  const JournalLoad load = LoadJournal(path);
  EXPECT_TRUE(load.meta_valid);
  EXPECT_EQ(load.intact_records, 1u);
  EXPECT_TRUE(load.torn_tail);
  EXPECT_FALSE(load.notes.empty());
  std::remove(path.c_str());
}

TEST(Journal, ResumeWithMismatchedMetaStartsFresh) {
  const std::string path = TmpPath("journal_mismatch.mjl");
  std::remove(path.c_str());
  {
    JournalWriter w = JournalWriter::Open(path, TestMeta());
    w.Append(HostileTask("ic_tf"));
  }
  JournalMeta other = TestMeta();
  other.seed = 999;  // different run configuration
  { JournalWriter w = JournalWriter::Open(path, other, true); }
  const JournalLoad load = LoadJournal(path);
  EXPECT_TRUE(load.meta_valid);
  EXPECT_TRUE(load.meta.Matches(other));
  EXPECT_EQ(load.intact_records, 0u);  // old records discarded
  std::remove(path.c_str());
}

// ---- crash / resume integration ----

SuiteBundles& Bundles() {
  static SuiteBundles bundles;
  return bundles;
}

RunOptions FastPerfOptions() {
  RunOptions o;
  o.run_accuracy = false;
  o.performance_settings.min_query_count = 64;
  o.performance_settings.min_duration = loadgen::Seconds{0.5};
  o.performance_settings.offline_sample_count = 2048;
  o.cooldown_s = 30.0;
  return o;
}

TEST(JournalResume, KilledRunResumesToAByteIdenticalReport) {
  // Baseline: an uninterrupted run.
  const SubmissionResult baseline =
      RunSubmission(soc::Exynos2100(), models::SuiteVersion::kV1_0, Bundles(),
                    FastPerfOptions());
  ASSERT_EQ(baseline.tasks.size(), 4u);

  // "Kill" the run after two tasks via cooperative cancellation (the CLI's
  // SIGINT handler drives the same RunOptions::cancel hook).
  const std::string path = TmpPath("journal_resume.mjl");
  std::remove(path.c_str());
  RunOptions interrupted_opts = FastPerfOptions();
  interrupted_opts.journal_path = path;
  int checks = 0;
  interrupted_opts.cancel = [&checks] { return ++checks > 2; };
  const SubmissionResult interrupted =
      RunSubmission(soc::Exynos2100(), models::SuiteVersion::kV1_0, Bundles(),
                    interrupted_opts);
  EXPECT_TRUE(interrupted.interrupted);
  ASSERT_EQ(interrupted.tasks.size(), 2u);
  // The partial report says so explicitly.
  EXPECT_NE(FormatSubmission(interrupted).find("run state: interrupted"),
            std::string::npos);

  // Resume from the journal: the two finished tasks replay from disk, the
  // other two run now.
  RunOptions resume_opts = FastPerfOptions();
  resume_opts.journal_path = path;
  resume_opts.resume = true;
  const SubmissionResult resumed =
      RunSubmission(soc::Exynos2100(), models::SuiteVersion::kV1_0, Bundles(),
                    resume_opts);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.resumed_tasks, 2u);
  ASSERT_EQ(resumed.tasks.size(), 4u);

  // The headline contract: report and CSV are byte-identical to the
  // uninterrupted run.
  EXPECT_EQ(FormatSubmission(resumed), FormatSubmission(baseline));
  EXPECT_EQ(ToCsv(resumed), ToCsv(baseline));
  std::remove(path.c_str());
}

TEST(JournalResume, ResumeIgnoresJournalFromDifferentConfig) {
  const std::string path = TmpPath("journal_other_config.mjl");
  std::remove(path.c_str());
  RunOptions first = FastPerfOptions();
  first.journal_path = path;
  int checks = 0;
  first.cancel = [&checks] { return ++checks > 1; };
  (void)RunSubmission(soc::Exynos2100(), models::SuiteVersion::kV1_0,
                      Bundles(), first);

  // Same journal path, different seed: nothing may replay.
  RunOptions second = FastPerfOptions();
  second.journal_path = path;
  second.resume = true;
  second.performance_settings.seed = 4242;
  const SubmissionResult r = RunSubmission(
      soc::Exynos2100(), models::SuiteVersion::kV1_0, Bundles(), second);
  EXPECT_EQ(r.resumed_tasks, 0u);
  EXPECT_EQ(r.tasks.size(), 4u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mlpm::harness
