
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/classification.cpp" "src/metrics/CMakeFiles/mlpm_metrics.dir/classification.cpp.o" "gcc" "src/metrics/CMakeFiles/mlpm_metrics.dir/classification.cpp.o.d"
  "/root/repo/src/metrics/f1.cpp" "src/metrics/CMakeFiles/mlpm_metrics.dir/f1.cpp.o" "gcc" "src/metrics/CMakeFiles/mlpm_metrics.dir/f1.cpp.o.d"
  "/root/repo/src/metrics/map.cpp" "src/metrics/CMakeFiles/mlpm_metrics.dir/map.cpp.o" "gcc" "src/metrics/CMakeFiles/mlpm_metrics.dir/map.cpp.o.d"
  "/root/repo/src/metrics/miou.cpp" "src/metrics/CMakeFiles/mlpm_metrics.dir/miou.cpp.o" "gcc" "src/metrics/CMakeFiles/mlpm_metrics.dir/miou.cpp.o.d"
  "/root/repo/src/metrics/psnr.cpp" "src/metrics/CMakeFiles/mlpm_metrics.dir/psnr.cpp.o" "gcc" "src/metrics/CMakeFiles/mlpm_metrics.dir/psnr.cpp.o.d"
  "/root/repo/src/metrics/wer.cpp" "src/metrics/CMakeFiles/mlpm_metrics.dir/wer.cpp.o" "gcc" "src/metrics/CMakeFiles/mlpm_metrics.dir/wer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/mlpm_models.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlpm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/infer/CMakeFiles/mlpm_infer.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mlpm_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
