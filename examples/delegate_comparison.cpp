// Framework-comparison mode (paper App. E "measuring software frameworks"):
// fixed hardware, sweep the runtime layer.  Reproduces the Table 3 setup —
// generic NNAPI vs the vendor's Neuron delegate on the Dimensity 1100 —
// and the worst-case buggy-driver pathology from §8/App. D where NNAPI can
// be 7x slower than the vendor path.
#include <cstdio>

#include "backends/vendor_policy.h"
#include "common/table.h"
#include "models/zoo.h"
#include "soc/chipset.h"

int main() {
  using namespace mlpm;

  const soc::ChipsetDesc chipset = soc::Dimensity1100();
  TextTable table("framework sweep on " + chipset.name +
                  " (single-stream latency)");
  table.SetHeader({"Task", "Neuron delegate", "NNAPI", "NNAPI delta",
                   "NNAPI w/ buggy ops", "buggy slowdown"});

  for (const models::BenchmarkEntry& e :
       models::SuiteFor(models::SuiteVersion::kV1_0)) {
    if (e.task == models::TaskType::kQuestionAnswering) continue;
    const graph::Graph model = models::BuildReferenceGraph(
        e, models::SuiteVersion::kV1_0, models::ModelScale::kFull);

    backends::SubmissionConfig neuron = backends::GetSubmission(
        chipset, e.task, models::SuiteVersion::kV1_0);

    backends::SubmissionConfig nnapi = neuron;
    nnapi.framework = backends::NnapiTraits("default");
    nnapi.single_stream.force_partition_every =
        nnapi.framework.force_partition_every;

    // The pathology: an op in every fifth node is buggy and falls back.
    backends::SubmissionConfig buggy = nnapi;
    buggy.framework = backends::NnapiBuggyTraits("default", 0.2);
    buggy.single_stream.cpu_fallback_fraction =
        buggy.framework.cpu_fallback_fraction;

    const double t_neuron =
        backends::CompileSubmission(chipset, neuron, model).LatencySeconds();
    const double t_nnapi =
        backends::CompileSubmission(chipset, nnapi, model).LatencySeconds();
    const double t_buggy =
        backends::CompileSubmission(chipset, buggy, model).LatencySeconds();

    table.AddRow({e.id, FormatMs(t_neuron), FormatMs(t_nnapi),
                  FormatPercent(t_nnapi / t_neuron - 1.0, 1),
                  FormatMs(t_buggy),
                  FormatDouble(t_buggy / t_neuron, 1) + "x"});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nvendor SDKs unlock the SoC (paper insight 4); a buggy generic\n"
      "driver can cost multiples of the vendor-path latency (App. D).\n");
  return 0;
}
