#include "metrics/wer.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace mlpm::metrics {

std::size_t EditDistance(std::span<const int> prediction,
                         std::span<const int> reference) {
  const std::size_t n = prediction.size();
  const std::size_t m = reference.size();
  // Single-row dynamic program.
  std::vector<std::size_t> row(m + 1);
  for (std::size_t j = 0; j <= m; ++j) row[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t up = row[j];
      const std::size_t sub =
          diag + (prediction[i - 1] == reference[j - 1] ? 0 : 1);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
      diag = up;
    }
  }
  return row[m];
}

double WordErrorRate(std::span<const std::vector<int>> predictions,
                     std::span<const std::vector<int>> references) {
  Expects(predictions.size() == references.size(),
          "prediction / reference count mismatch");
  std::size_t errors = 0, total = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    errors += EditDistance(predictions[i], references[i]);
    total += references[i].size();
  }
  return total > 0 ? static_cast<double>(errors) /
                         static_cast<double>(total)
                   : 0.0;
}

}  // namespace mlpm::metrics
