file(REMOVE_RECURSE
  "CMakeFiles/mlpm_models.dir/common.cpp.o"
  "CMakeFiles/mlpm_models.dir/common.cpp.o.d"
  "CMakeFiles/mlpm_models.dir/deeplab.cpp.o"
  "CMakeFiles/mlpm_models.dir/deeplab.cpp.o.d"
  "CMakeFiles/mlpm_models.dir/detection.cpp.o"
  "CMakeFiles/mlpm_models.dir/detection.cpp.o.d"
  "CMakeFiles/mlpm_models.dir/mobilebert.cpp.o"
  "CMakeFiles/mlpm_models.dir/mobilebert.cpp.o.d"
  "CMakeFiles/mlpm_models.dir/mobilenet_edgetpu.cpp.o"
  "CMakeFiles/mlpm_models.dir/mobilenet_edgetpu.cpp.o.d"
  "CMakeFiles/mlpm_models.dir/mobilenet_v2.cpp.o"
  "CMakeFiles/mlpm_models.dir/mobilenet_v2.cpp.o.d"
  "CMakeFiles/mlpm_models.dir/rnnt.cpp.o"
  "CMakeFiles/mlpm_models.dir/rnnt.cpp.o.d"
  "CMakeFiles/mlpm_models.dir/ssd.cpp.o"
  "CMakeFiles/mlpm_models.dir/ssd.cpp.o.d"
  "CMakeFiles/mlpm_models.dir/superres.cpp.o"
  "CMakeFiles/mlpm_models.dir/superres.cpp.o.d"
  "CMakeFiles/mlpm_models.dir/zoo.cpp.o"
  "CMakeFiles/mlpm_models.dir/zoo.cpp.o.d"
  "libmlpm_models.a"
  "libmlpm_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlpm_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
