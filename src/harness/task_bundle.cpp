#include "harness/task_bundle.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "datasets/calibration_set.h"
#include "datasets/classification_dataset.h"
#include "datasets/detection_dataset.h"
#include "datasets/qa_dataset.h"
#include "datasets/segmentation_dataset.h"
#include "models/deeplab.h"
#include "models/mobilebert.h"
#include "models/mobilenet_edgetpu.h"
#include "obs/metrics.h"
#include "quant/calibration.h"

namespace mlpm::harness {
namespace {

// Probe-sample equivalence gate for the transform stage (DESIGN.md §14):
// the rewritten executor must reproduce the untransformed one on real
// dataset inputs before the transformed model is allowed to score.  INT8's
// simulated quantization is deterministic, so it must match bit for bit;
// FP32/FP16 rewrites all commute exactly with their roundings, so the
// tolerance only absorbs compiler-level FP reassociation.
constexpr std::size_t kTransformProbeSamples = 4;
constexpr float kTransformProbeTolerance = 1e-6f;

// Empty string = outputs agree; otherwise a one-line description of the
// first disagreement.
std::string CompareProbeOutputs(const std::vector<infer::Tensor>& want,
                                const std::vector<infer::Tensor>& got,
                                infer::NumericsMode mode) {
  if (want.size() != got.size()) return "output count mismatch";
  const float tol =
      mode == infer::NumericsMode::kInt8 ? 0.0f : kTransformProbeTolerance;
  for (std::size_t o = 0; o < want.size(); ++o) {
    const std::span<const float> a = want[o].values();
    const std::span<const float> b = got[o].values();
    if (a.size() != b.size())
      return "output " + std::to_string(o) + " size mismatch";
    for (std::size_t i = 0; i < a.size(); ++i) {
      // Negated comparison so a NaN on either side counts as disagreement.
      if (!(std::fabs(a[i] - b[i]) <= tol))
        return "output " + std::to_string(o) + "[" + std::to_string(i) +
               "]: " + std::to_string(a[i]) + " vs " + std::to_string(b[i]);
    }
  }
  return {};
}

}  // namespace

std::unique_ptr<TaskBundle> TaskBundle::Create(
    const models::BenchmarkEntry& e, models::SuiteVersion version,
    std::uint64_t weight_seed) {
  auto b = std::unique_ptr<TaskBundle>(new TaskBundle());
  b->entry_ = e;
  b->version_ = version;

  switch (e.task) {
    case models::TaskType::kImageClassification: {
      b->owned_graph_ = std::make_unique<graph::Graph>(
          models::BuildMobileNetEdgeTpu(models::ModelScale::kMini));
      b->graph_ = b->owned_graph_.get();
      b->weights_ = infer::InitializeWeights(*b->graph_, weight_seed);
      b->dataset_ = std::make_unique<datasets::ClassificationDataset>(
          *b->graph_, b->weights_, datasets::ClassificationDatasetConfig{});
      break;
    }
    case models::TaskType::kObjectDetection: {
      b->detection_model_ = std::make_unique<models::DetectionModel>(
          version == models::SuiteVersion::kV0_7
              ? models::BuildSsdMobileNetV2(models::ModelScale::kMini)
              : models::BuildMobileDetSsd(models::ModelScale::kMini));
      b->graph_ = &b->detection_model_->graph;
      b->weights_ = infer::InitializeWeights(*b->graph_, weight_seed);
      b->dataset_ = std::make_unique<datasets::DetectionDataset>(
          *b->detection_model_, b->weights_,
          datasets::DetectionDatasetConfig{});
      break;
    }
    case models::TaskType::kImageSegmentation: {
      b->owned_graph_ = std::make_unique<graph::Graph>(
          models::BuildDeepLabV3Plus(models::ModelScale::kMini));
      b->graph_ = b->owned_graph_.get();
      b->weights_ = infer::InitializeWeights(*b->graph_, weight_seed);
      b->dataset_ = std::make_unique<datasets::SegmentationDataset>(
          *b->graph_, b->weights_, datasets::SegmentationDatasetConfig{});
      break;
    }
    case models::TaskType::kQuestionAnswering: {
      const models::MobileBertConfig cfg = models::MiniMobileBertConfig();
      b->owned_graph_ = std::make_unique<graph::Graph>(
          models::BuildMobileBert(cfg));
      b->graph_ = b->owned_graph_.get();
      b->weights_ = infer::InitializeWeights(*b->graph_, weight_seed);
      b->dataset_ = std::make_unique<datasets::QaDataset>(
          *b->graph_, b->weights_, cfg, datasets::QaDatasetConfig{});
      break;
    }
  }
  return b;
}

TaskBundle::PreparedModel TaskBundle::Prepare(
    infer::NumericsMode mode, bool use_qat_weights,
    infer::kernels::KernelIsa isa, bool transform,
    const infer::TileOptions& tiling) const {
  const std::pair<int, std::int64_t> key{
      (static_cast<int>(mode) * 2 + (use_qat_weights ? 1 : 0)) * 8 +
          static_cast<int>(isa) + (transform ? 64 : 0),
      tiling.enabled ? tiling.rows : -2};
  if (const auto it = prepared_cache_.find(key); it != prepared_cache_.end())
    return it->second;

  if (transform) {
    PreparedModel p = PrepareTransformed(mode, use_qat_weights, isa, tiling);
    prepared_cache_.emplace(key, p);
    return p;
  }

  PreparedModel p;
  const infer::WeightStore* weights = &weights_;
  if (use_qat_weights) {
    if (!qat_weights_)
      qat_weights_ = quant::RefineWeightsMseOptimal(*graph_, weights_);
    weights = &*qat_weights_;
  }
  if (mode == infer::NumericsMode::kInt8) {
    p.calibration_indices = datasets::ApprovedCalibrationIndices(
        kCalibrationPoolSize, kCalibrationSetSize, kCalibrationSeed);
    const std::vector<quant::CalibrationSample> samples =
        datasets::GatherCalibrationSamples(*dataset_, p.calibration_indices);
    const infer::QuantParams qp =
        quant::CalibratePtq(*graph_, *weights, samples);
    p.model = std::make_shared<infer::PreparedModel>(*graph_, *weights, mode,
                                                     &qp, isa, tiling);
  } else {
    p.model = std::make_shared<infer::PreparedModel>(*graph_, *weights, mode,
                                                     nullptr, isa, tiling);
  }
  p.executor = &p.model->executor();
  prepared_cache_.emplace(key, p);
  return p;
}

TaskBundle::PreparedModel TaskBundle::PrepareTransformed(
    infer::NumericsMode mode, bool use_qat_weights,
    infer::kernels::KernelIsa isa, const infer::TileOptions& tiling) const {
  // The untransformed model at identical numerics is both the equivalence
  // baseline and the fallback if any gate trips; the regular cache shares
  // its prepack with non-transform runs.
  PreparedModel base = Prepare(mode, use_qat_weights, isa,
                               /*transform=*/false, tiling);
  base.transform.requested = true;

  // Base Prepare() materialized qat_weights_ when requested.
  const infer::WeightStore* weights =
      use_qat_weights ? &*qat_weights_ : &weights_;

  auto tr = std::make_shared<transform::TransformResult>(
      transform::MakeDefaultPipeline(
          {.mode = mode, .metrics = &obs::MetricsRegistry::Global()})
          .Run(*graph_, *weights));

  TransformInfo info;
  info.requested = true;
  info.passes = tr->PassList();
  info.rewrites = tr->TotalRewrites();
  info.nodes_before = tr->nodes_canonical;
  info.nodes_after = tr->nodes_after;

  if (tr->diagnostics.HasErrors()) {
    // Every failing pass was rolled back, so the result graph is still
    // executable — but an error means a pass misbehaved; run the
    // untransformed graph and say so.
    base.transform = std::move(info);
    base.transform.detail =
        "transform verification reported errors; ran untransformed graph";
    return base;
  }

  PreparedModel p;
  if (mode == infer::NumericsMode::kInt8) {
    // Re-run PTQ over the same approved calibration subset, against the
    // rewritten graph: fused nodes removed intermediate tensors, so the
    // untransformed ranges no longer line up one-to-one.
    p.calibration_indices = base.calibration_indices;
    const std::vector<quant::CalibrationSample> samples =
        datasets::GatherCalibrationSamples(*dataset_, p.calibration_indices);
    const infer::QuantParams qp =
        quant::CalibratePtq(tr->graph, tr->weights, samples);
    p.model = std::make_shared<infer::PreparedModel>(tr->graph, tr->weights,
                                                     mode, &qp, isa, tiling);
  } else {
    p.model = std::make_shared<infer::PreparedModel>(tr->graph, tr->weights,
                                                     mode, nullptr, isa,
                                                     tiling);
  }
  p.executor = &p.model->executor();
  p.transformed = tr;  // keeps the graph/weights alive for p.model
  p.transform = info;

  const std::size_t probes =
      std::min<std::size_t>(kTransformProbeSamples, dataset_->size());
  for (std::size_t i = 0; i < probes; ++i) {
    const std::vector<infer::Tensor> inputs = dataset_->InputsFor(i);
    const std::string mismatch = CompareProbeOutputs(
        base.executor->Run(inputs), p.executor->Run(inputs), mode);
    if (!mismatch.empty()) {
      base.transform = std::move(info);
      base.transform.detail = "equivalence probe failed on sample " +
                              std::to_string(i) + " (" + mismatch +
                              "); ran untransformed graph";
      return base;
    }
  }
  p.transform.applied = true;
  return p;
}

double TaskBundle::ScoreAccuracy(const infer::Executor& executor,
                                 const ThreadPool* pool) const {
  std::vector<std::vector<infer::Tensor>> outputs = infer::RunSamplesParallel(
      executor, dataset_->size(),
      [&](std::size_t i) { return dataset_->InputsFor(i); }, pool);
  return dataset_->ScoreOutputs(outputs);
}

double TaskBundle::Fp32Score(const ThreadPool* pool,
                             infer::kernels::KernelIsa isa) const {
  const int key = static_cast<int>(isa);
  if (const auto it = fp32_scores_.find(key); it != fp32_scores_.end())
    return it->second;
  const infer::Executor fp32(*graph_, weights_, infer::NumericsMode::kFp32,
                             nullptr, isa);
  const double score = ScoreAccuracy(fp32, pool);
  fp32_scores_.emplace(key, score);
  return score;
}

}  // namespace mlpm::harness
