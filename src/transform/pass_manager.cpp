#include "transform/pass_manager.h"

#include <chrono>
#include <iomanip>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "analysis/passes.h"
#include "infer/memory_plan.h"
#include "transform/graph_diff.h"
#include "transform/passes.h"

namespace mlpm::transform {
namespace {

using analysis::DiagnosticEngine;
using graph::TensorId;

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Identity of a diagnostic that survives node-index renumbering: rewrites
// shift node indices, so keying on source.id would make a pre-existing
// finding on an untouched node read as "new".
std::string DiagKey(const analysis::Diagnostic& d) {
  std::string key = d.code;
  key += '\x1f';
  key += analysis::ToString(d.source.kind);
  key += '\x1f';
  key += d.source.name;
  return key;
}

// XFM001: every edge of the edited graph resolves, node names stay unique,
// storage order is executable (defs before uses) and every referenced
// weight has a value.  Runs on the MutableGraph *before* Freeze, because
// Freeze itself assumes these properties.
void VerifyEdges(const MutableGraph& mg, const PassContext& ctx,
                 std::string_view pass, DiagnosticEngine& de) {
  const auto report = [&](const graph::Node& n, std::size_t index,
                          std::string what) {
    de.Report("XFM001",
              analysis::NodeSource(n.name, static_cast<std::int32_t>(index)),
              std::string(pass) + ": " + std::move(what));
  };
  const auto in_range = [&](TensorId id) {
    return id >= 0 && static_cast<std::size_t>(id) < mg.tensors().size();
  };

  std::unordered_set<std::string_view> names;
  std::vector<bool> produced(mg.tensors().size(), false);
  for (const TensorId id : mg.input_ids())
    if (in_range(id)) produced[static_cast<std::size_t>(id)] = true;

  for (std::size_t i = 0; i < mg.nodes().size(); ++i) {
    if (!mg.alive(i)) continue;
    const graph::Node& n = mg.nodes()[i];
    if (!names.insert(n.name).second)
      report(n, i, "duplicate node name after rewrite");
    for (const TensorId in : n.inputs) {
      if (!in_range(in))
        report(n, i, "dangling input edge (tensor id out of range)");
      else if (!produced[static_cast<std::size_t>(in)])
        report(n, i, "consumes '" + mg.tensor(in).name +
                         "' before it is produced (dangling edge or broken "
                         "storage order)");
    }
    for (const TensorId w : n.weights) {
      if (!in_range(w)) {
        report(n, i, "dangling weight edge (tensor id out of range)");
      } else if (mg.tensor(w).kind == graph::TensorKind::kWeight &&
                 ctx.FindWeight(mg.tensor(w).name) == nullptr) {
        report(n, i, "weight '" + mg.tensor(w).name +
                         "' has no value in the weight store");
      }
    }
    if (!in_range(n.output))
      report(n, i, "dangling output edge (tensor id out of range)");
    else
      produced[static_cast<std::size_t>(n.output)] = true;
  }
  for (const TensorId out : mg.output_ids())
    if (!in_range(out) || !produced[static_cast<std::size_t>(out)])
      de.Report("XFM001", analysis::GraphSource(std::string(mg.name())),
                std::string(pass) + ": graph output is dangling");
}

// XFM002/XFM003/XFM005/XFM006/XFM007 on the frozen candidate.
void VerifyFrozen(const graph::Graph& before, const FrozenGraph& frozen,
                  const PassContext& ctx, std::string_view pass,
                  const std::unordered_set<std::string>& baseline,
                  DiagnosticEngine& de) {
  const graph::Graph& after = frozen.graph;

  // XFM003: outputs keep count, position and shape.
  if (before.output_ids().size() != after.output_ids().size()) {
    de.Report("XFM003", analysis::GraphSource(std::string(after.name())),
              std::string(pass) + ": output count changed from " +
                  std::to_string(before.output_ids().size()) + " to " +
                  std::to_string(after.output_ids().size()));
  } else {
    for (std::size_t i = 0; i < before.output_ids().size(); ++i) {
      const auto& bs =
          before.tensors()[static_cast<std::size_t>(before.output_ids()[i])]
              .shape;
      const auto& as =
          after.tensors()[static_cast<std::size_t>(after.output_ids()[i])]
              .shape;
      if (!(bs == as))
        de.Report("XFM003", analysis::GraphSource(std::string(after.name())),
                  std::string(pass) + ": output #" + std::to_string(i) +
                      " changed shape from " + bs.ToString() + " to " +
                      as.ToString());
    }
  }

  // XFM002: surviving tensors keep name and shape.  Pre-pass tensor ids are
  // stable in the MutableGraph (edits only append), so tensor_map[i] maps a
  // pre-pass id to its post-freeze id.
  const std::size_t surviving =
      std::min(before.tensors().size(), frozen.tensor_map.size());
  for (std::size_t ti = 0; ti < surviving; ++ti) {
    const TensorId ni = frozen.tensor_map[ti];
    if (ni == graph::kInvalidTensor) continue;
    const auto& bt = before.tensors()[ti];
    const auto& at = after.tensors()[static_cast<std::size_t>(ni)];
    if (bt.name != at.name)
      de.Report("XFM002",
                analysis::TensorSource(bt.name, static_cast<std::int32_t>(ti)),
                std::string(pass) + ": tensor renamed to '" + at.name + "'");
    else if (!(bt.shape == at.shape))
      de.Report("XFM002",
                analysis::TensorSource(bt.name, static_cast<std::int32_t>(ti)),
                std::string(pass) + ": tensor changed shape from " +
                    bt.shape.ToString() + " to " + at.shape.ToString());
  }

  // XFM006: structural diff proves subgraph locality.
  for (const std::string& v :
       DiffOutsideTouched(before, after, ctx.touched, ctx.edge_renames))
    de.Report("XFM006", analysis::GraphSource(std::string(after.name())),
              std::string(pass) + ": " + v);

  // XFM007: the full analysis suite finds nothing it did not already find
  // on the original graph.
  DiagnosticEngine post;
  analysis::RunModelPasses(after, post);
  for (const analysis::Diagnostic& d : post.diagnostics())
    if (!baseline.contains(DiagKey(d)))
      de.Report("XFM007", d.source,
                std::string(pass) + ": new " + d.code +
                    " after rewrite: " + d.message);

  // XFM005: alias safety for the PR 4 memory planner.  Only meaningful on a
  // structurally sound graph, so gate on the checks above.
  if (de.HasErrors()) return;
  const infer::MemoryPlan plan = infer::MemoryPlan::Build(after);
  for (std::size_t ti = 0; ti < plan.placements().size(); ++ti) {
    if (plan.placements()[ti].kind != infer::PlacementKind::kAlias) continue;
    const std::int32_t producer =
        after.tensors()[ti].producer;
    if (producer < 0 ||
        !infer::SupportsInPlace(
            after.nodes()[static_cast<std::size_t>(producer)].op))
      de.Report("XFM005",
                analysis::TensorSource(after.tensors()[ti].name,
                                       static_cast<std::int32_t>(ti)),
                std::string(pass) +
                    ": memory plan aliases a buffer whose producer is "
                    "outside the planner's in-place set");
  }
}

}  // namespace

std::size_t TransformResult::TotalRewrites() const {
  std::size_t n = 0;
  for (const PassStats& p : passes)
    if (!p.rolled_back) n += p.rewrites;
  return n;
}

bool TransformResult::AnyRolledBack() const {
  for (const PassStats& p : passes)
    if (p.rolled_back) return true;
  return false;
}

std::string TransformResult::PassList() const {
  std::string out;
  for (const PassStats& p : passes) {
    if (p.rolled_back) continue;  // only committed passes are "resolved"
    if (!out.empty()) out += ',';
    out += p.name;
  }
  return out;
}

std::string TransformResult::Summary() const {
  std::ostringstream os;
  os << "  " << std::left << std::setw(22) << "pass" << std::right
     << std::setw(9) << "rewrites" << std::setw(9) << "skipped"
     << std::setw(8) << "status" << std::setw(10) << "apply_ms"
     << std::setw(10) << "check_ms" << std::setw(7) << "nodes" << '\n';
  for (const PassStats& p : passes) {
    os << "  " << std::left << std::setw(22) << p.name << std::right
       << std::setw(9) << p.rewrites << std::setw(9) << p.skipped
       << std::setw(8) << (p.rolled_back ? "ROLLED" : "ok") << std::setw(10)
       << std::fixed << std::setprecision(2) << p.apply_ms << std::setw(10)
       << p.verify_ms << std::setw(7) << p.nodes_after << '\n';
  }
  os << "  nodes: " << nodes_before << " -> " << nodes_canonical
     << " (canonical) -> " << nodes_after << '\n';
  return os.str();
}

void PassManager::AddPass(std::unique_ptr<TransformPass> pass) {
  passes_.push_back(std::move(pass));
}

TransformResult PassManager::Run(const graph::Graph& g,
                                 const infer::WeightStore& weights) const {
  TransformResult res;
  res.nodes_before = g.nodes().size();
  res.nodes_canonical = g.nodes().size();
  res.weights = weights;

  // Diagnostic baseline: what the analysis suite already says about the
  // untransformed graph.  Computed once; XFM007 is "nothing NEW appears".
  DiagnosticEngine base;
  analysis::RunModelPasses(g, base);
  std::unordered_set<std::string> baseline;
  for (const analysis::Diagnostic& d : base.diagnostics())
    baseline.insert(DiagKey(d));

  graph::Graph current = g;

  PassContext ctx;
  ctx.mode = options_.mode;
  ctx.weights = &res.weights;

  for (const auto& pass : passes_) {
    PassStats st;
    st.name = std::string(pass->name());

    ctx.rewrites = 0;
    ctx.skipped = 0;
    ctx.skip_notes.clear();
    ctx.touched.clear();
    ctx.edge_renames.clear();
    ctx.staged_weights = infer::WeightStore{};

    const auto t0 = std::chrono::steady_clock::now();
    MutableGraph mg(current);
    pass->Run(mg, ctx);
    st.apply_ms = MsSince(t0);
    st.rewrites = ctx.rewrites;
    st.skipped = ctx.skipped;

    if (ctx.skipped > 0) {
      // Aggregated: one note per pass, not one per refused site.
      res.diagnostics.Report(
          "XFM004", analysis::GraphSource(std::string(g.name())),
          st.name + ": " + std::to_string(ctx.skipped) +
              " rewrite(s) gated under " +
              std::string(ToString(options_.mode)) +
              "; first: " + ctx.skip_notes.front());
    }

    if (ctx.rewrites > 0) {
      const auto t1 = std::chrono::steady_clock::now();
      DiagnosticEngine verdict;
      VerifyEdges(mg, ctx, pass->name(), verdict);
      FrozenGraph frozen;
      if (!verdict.HasErrors()) {
        frozen = mg.Freeze();
        VerifyFrozen(current, frozen, ctx, pass->name(), baseline, verdict);
      }
      st.verify_ms = MsSince(t1);

      if (verdict.HasErrors()) {
        st.rolled_back = true;
        for (const analysis::Diagnostic& d : verdict.diagnostics())
          res.diagnostics.Report(d.code, d.severity, d.source, d.message);
        res.diagnostics.Report(
            "XFM008", analysis::GraphSource(std::string(g.name())),
            st.name + ": rolled back (" +
                std::to_string(verdict.error_count()) +
                " invariant violation(s)); graph left unchanged");
      } else {
        current = std::move(frozen.graph);
        for (const auto& [name, tensor] : ctx.staged_weights.raw())
          res.weights.Put(name, tensor);
      }
    }

    st.nodes_after = current.nodes().size();
    if (!st.rolled_back && st.name == "split-activations")
      res.nodes_canonical = current.nodes().size();

    if (options_.metrics != nullptr) {
      const std::string prefix = "transform.pass." + st.name;
      options_.metrics->Increment(prefix + ".rewrites",
                                  static_cast<std::uint64_t>(st.rewrites));
      if (st.skipped > 0)
        options_.metrics->Increment(prefix + ".skipped",
                                    static_cast<std::uint64_t>(st.skipped));
      if (st.rolled_back)
        options_.metrics->Increment(prefix + ".rolled_back", 1);
      options_.metrics->SetGauge(prefix + ".apply_ms", st.apply_ms);
      options_.metrics->SetGauge(prefix + ".verify_ms", st.verify_ms);
    }
    res.passes.push_back(std::move(st));
  }

  res.graph = std::move(current);
  res.nodes_after = res.graph.nodes().size();
  if (options_.metrics != nullptr) {
    options_.metrics->SetGauge("transform.nodes_before",
                               static_cast<double>(res.nodes_before));
    options_.metrics->SetGauge("transform.nodes_after",
                               static_cast<double>(res.nodes_after));
    options_.metrics->Increment("transform.runs", 1);
  }
  return res;
}

PassManager MakeDefaultPipeline(TransformOptions options) {
  PassManager pm(options);
  pm.AddPass(MakeSplitActivationsPass());
  pm.AddPass(MakeConstantFoldPass());
  pm.AddPass(MakeIdentityCancelPass());
  pm.AddPass(MakeElementwiseChainPass());
  pm.AddPass(MakeFuseConvActivationPass());
  pm.AddPass(MakeDeadNodeElimPass());
  return pm;
}

}  // namespace mlpm::transform
