// Refcounted shared-artifact cache for prepared models (DESIGN.md §16).
//
// A fleet of simulated devices running the same (model, numerics, ISA)
// config must not hold one prepacked-weight copy per device: preparation is
// expensive (graph build + compile + weight prepack) and the artifacts are
// immutable after construction, so every shard with the same key can share
// one instance.  Acquire() hands out std::shared_ptr<const T>; the cache
// keeps one reference of its own, so use_count()==1 inside the cache means
// "no shard holds this any more" and EvictUnused() may drop it.
//
// Concurrency contract: the key space is striped over a fixed set of
// mutexes and the builder runs *under* its stripe lock, so a key is built
// exactly once no matter how many shards race on it, while keys on
// different stripes build concurrently.  T itself must be safe to read from
// many threads once constructed (immutability is the cheapest way there).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "common/check.h"

namespace mlpm::infer {

template <typename T>
class PreparedCache {
 public:
  PreparedCache() = default;
  PreparedCache(const PreparedCache&) = delete;
  PreparedCache& operator=(const PreparedCache&) = delete;

  // Returns the cached instance for `key`, building it with `build` on the
  // first acquisition.  `build` may throw; nothing is cached in that case
  // and the exception propagates to exactly the caller that ran it (racing
  // acquirers of the same key retry the build themselves).
  [[nodiscard]] std::shared_ptr<const T> Acquire(
      const std::string& key, const std::function<T()>& build) {
    Stripe& stripe = StripeFor(key);
    const std::scoped_lock lock(stripe.mu);
    auto it = stripe.entries.find(key);
    if (it != stripe.entries.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
    auto built = std::make_shared<const T>(build());
    stripe.entries.emplace(key, built);
    builds_.fetch_add(1, std::memory_order_relaxed);
    return built;
  }

  // True if `key` is currently cached (no build).
  [[nodiscard]] bool Contains(const std::string& key) {
    Stripe& stripe = StripeFor(key);
    const std::scoped_lock lock(stripe.mu);
    return stripe.entries.count(key) != 0;
  }

  // Shards still referencing `key`, excluding the cache's own reference;
  // 0 if absent.  Test/report hook, inherently racy under concurrent
  // acquire/release — call it from a quiesced coordinator.
  [[nodiscard]] std::size_t UseCount(const std::string& key) {
    Stripe& stripe = StripeFor(key);
    const std::scoped_lock lock(stripe.mu);
    const auto it = stripe.entries.find(key);
    if (it == stripe.entries.end()) return 0;
    const long uses = it->second.use_count();
    Expects(uses >= 1, "cache entry lost its own reference");
    return static_cast<std::size_t>(uses - 1);
  }

  // Drops every entry no shard references any more; returns how many were
  // evicted.  Entries still shared out survive.
  std::size_t EvictUnused() {
    std::size_t evicted = 0;
    for (Stripe& stripe : stripes_) {
      const std::scoped_lock lock(stripe.mu);
      for (auto it = stripe.entries.begin(); it != stripe.entries.end();) {
        if (it->second.use_count() == 1) {
          it = stripe.entries.erase(it);
          ++evicted;
        } else {
          ++it;
        }
      }
    }
    return evicted;
  }

  // Unconditionally forgets every entry (outstanding shared_ptrs stay
  // valid — shared ownership, not weak).
  void Clear() {
    for (Stripe& stripe : stripes_) {
      const std::scoped_lock lock(stripe.mu);
      stripe.entries.clear();
    }
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const Stripe& stripe : stripes_) {
      const std::scoped_lock lock(stripe.mu);
      n += stripe.entries.size();
    }
    return n;
  }

  // Lifetime totals: builds() is the number of distinct constructions the
  // cache ran (fleet asserts builds() == #distinct configs), hits() the
  // acquisitions served without building.
  [[nodiscard]] std::uint64_t builds() const {
    return builds_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }

  static constexpr std::size_t kStripes = 8;

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::map<std::string, std::shared_ptr<const T>> entries;
  };

  [[nodiscard]] Stripe& StripeFor(const std::string& key) {
    return stripes_[std::hash<std::string>{}(key) % kStripes];
  }

  std::array<Stripe, kStripes> stripes_;
  std::atomic<std::uint64_t> builds_{0};
  std::atomic<std::uint64_t> hits_{0};
};

}  // namespace mlpm::infer
