// Structured synthetic image generation.
//
// Stand-in for ImageNet / COCO / ADE20K images (DESIGN.md §1): each image is
// deterministic in (seed, index) and is built from low-frequency content
// (bilinearly upsampled control grids) plus mild high-frequency noise.  The
// low-frequency structure matters: it gives activation distributions with
// realistic dynamic range so PTQ calibration behaves the way it does on
// natural images (white noise would flatten every activation histogram).
#pragma once

#include <cstdint>

#include "infer/tensor.h"

namespace mlpm::datasets {

struct SyntheticImageConfig {
  std::int64_t height = 0;
  std::int64_t width = 0;
  std::int64_t channels = 3;
  int control_grid = 4;     // control points per side for the smooth field
  float noise_level = 0.05f;  // high-frequency additive noise amplitude
};

// Pixel values in [0, 1].  Deterministic in (seed, index).
[[nodiscard]] infer::Tensor GenerateImage(const SyntheticImageConfig& cfg,
                                          std::uint64_t seed,
                                          std::uint64_t index);

}  // namespace mlpm::datasets
