#include "common/table.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace mlpm {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.emplace_back(std::move(row), pending_separator_);
  pending_separator_ = false;
}

void TextTable::AddSeparator() { pending_separator_ = true; }

std::string TextTable::Render() const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.cells.size());
  Ensures(cols > 0, "table has no columns");

  std::vector<std::size_t> width(cols, 0);
  const auto account = [&width](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  account(header_);
  for (const auto& r : rows_) account(r.cells);

  std::ostringstream out;
  const auto rule = [&] {
    out << '+';
    for (std::size_t w : width) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      out << ' ' << c << std::string(width[i] - c.size(), ' ') << " |";
    }
    out << '\n';
  };

  if (!title_.empty()) out << title_ << '\n';
  rule();
  if (!header_.empty()) {
    line(header_);
    rule();
  }
  for (const auto& r : rows_) {
    if (r.separator_before) rule();
    line(r.cells);
  }
  rule();
  return out.str();
}

std::string FormatDouble(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string FormatMs(double seconds, int precision) {
  return FormatDouble(seconds * 1e3, precision) + " ms";
}

std::string FormatPercent(double fraction, int precision) {
  return FormatDouble(fraction * 100.0, precision) + "%";
}

}  // namespace mlpm
