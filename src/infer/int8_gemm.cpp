#include "infer/int8_gemm.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "infer/kernels/registry.h"

// The tiled row workers live in kernels/portable.cpp (and their SIMD
// counterparts in kernels/avx2.cpp / kernels/neon.cpp); this file owns the
// public entry points, which validate shapes, precompute the zero-point row
// sums, and split the row range across the thread pool.  The table-less
// overloads run the scalar table and are bit-identical to the pre-registry
// kernels.

namespace mlpm::infer {

void QuantizeU8(std::span<const float> src, float scale,
                std::int32_t zero_point, std::span<std::uint8_t> dst) {
  Expects(src.size() == dst.size(), "quantize size mismatch");
  Expects(scale > 0.0f, "quantize scale must be positive");
  const float inv = 1.0f / scale;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const float q =
        std::round(src[i] * inv) + static_cast<float>(zero_point);
    dst[i] = static_cast<std::uint8_t>(std::clamp(q, 0.0f, 255.0f));
  }
}

float DequantizeAcc(std::int32_t acc, float lhs_scale, float rhs_scale) {
  return static_cast<float>(acc) * lhs_scale * rhs_scale;
}

void GemmU8U8I32(std::span<const std::uint8_t> a, std::int32_t a_zp,
                 std::span<const std::uint8_t> b_t, std::int32_t b_zp,
                 std::size_t m, std::size_t n, std::size_t k,
                 std::span<std::int32_t> c, const kernels::KernelTable& table,
                 const ThreadPool* pool) {
  Expects(a.size() == m * k, "A size mismatch");
  Expects(b_t.size() == n * k, "B size mismatch");
  Expects(c.size() == m * n, "C size mismatch");
  std::vector<std::uint32_t> b_sums(n);
  ParallelForRange(pool, 0, static_cast<std::int64_t>(n),
                   [&](std::int64_t lo, std::int64_t hi) {
                     table.row_sums_u8(b_t.data(), lo, hi, k, b_sums.data());
                   });
  ParallelForRange(pool, 0, static_cast<std::int64_t>(m),
                   [&](std::int64_t lo, std::int64_t hi) {
                     table.gemm_u8_rows(a.data(), b_t.data(), lo, hi, n, k,
                                        static_cast<std::uint32_t>(a_zp),
                                        static_cast<std::uint32_t>(b_zp),
                                        b_sums.data(), c.data());
                   });
}

void GemmU8U8I32(std::span<const std::uint8_t> a, std::int32_t a_zp,
                 std::span<const std::uint8_t> b_t, std::int32_t b_zp,
                 std::size_t m, std::size_t n, std::size_t k,
                 std::span<std::int32_t> c, const ThreadPool* pool) {
  GemmU8U8I32(a, a_zp, b_t, b_zp, m, n, k, c, kernels::ScalarKernels(), pool);
}

void GemmF32(std::span<const float> a, std::span<const float> b_t,
             std::size_t m, std::size_t n, std::size_t k, std::span<float> c,
             const kernels::KernelTable& table, const ThreadPool* pool) {
  Expects(a.size() == m * k, "A size mismatch");
  Expects(b_t.size() == n * k, "B size mismatch");
  Expects(c.size() == m * n, "C size mismatch");
  // Partition over quads of rows, not rows: vectorized tables tile four rows
  // at a time relative to i_begin, and bit-identical-across-thread-counts
  // (DESIGN.md §8) requires the tile/remainder split to be absolute.
  const std::int64_t rows = static_cast<std::int64_t>(m);
  constexpr std::int64_t kB = kernels::kF32RowBlock;
  ParallelForRange(pool, 0, (rows + kB - 1) / kB,
                   [&](std::int64_t lo, std::int64_t hi) {
                     table.gemm_f32_rows(a.data(), b_t.data(), lo * kB,
                                         std::min(hi * kB, rows), n, k,
                                         c.data());
                   });
}

void GemmF32(std::span<const float> a, std::span<const float> b_t,
             std::size_t m, std::size_t n, std::size_t k, std::span<float> c,
             const ThreadPool* pool) {
  GemmF32(a, b_t, m, n, k, c, kernels::ScalarKernels(), pool);
}

void GemmU8U8I32Ref(std::span<const std::uint8_t> a, std::int32_t a_zp,
                    std::span<const std::uint8_t> b_t, std::int32_t b_zp,
                    std::size_t m, std::size_t n, std::size_t k,
                    std::span<std::int32_t> c) {
  Expects(a.size() == m * k, "A size mismatch");
  Expects(b_t.size() == n * k, "B size mismatch");
  Expects(c.size() == m * n, "C size mismatch");
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint8_t* arow = a.data() + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint8_t* brow = b_t.data() + j * k;
      std::int32_t acc = 0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += (static_cast<std::int32_t>(arow[kk]) - a_zp) *
               (static_cast<std::int32_t>(brow[kk]) - b_zp);
      }
      c[i * n + j] = acc;
    }
  }
}

void GemmF32Ref(std::span<const float> a, std::span<const float> b_t,
                std::size_t m, std::size_t n, std::size_t k,
                std::span<float> c) {
  Expects(a.size() == m * k, "A size mismatch");
  Expects(b_t.size() == n * k, "B size mismatch");
  Expects(c.size() == m * n, "C size mismatch");
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b_t.data() + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      c[i * n + j] = acc;
    }
  }
}

}  // namespace mlpm::infer
