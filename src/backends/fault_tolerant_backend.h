// A fault-tolerant system under test: wraps the simulated vendor backend
// with the recovery behavior a production mobile harness needs when the
// runtime underneath it misbehaves (paper §8 / App. D: NNAPI driver holes
// forcing CPU fallback, buggy delegates, watchdog-killed inferences).
//
// Recovery policy per inference attempt:
//   * transient stall  -> retry with exponential backoff, up to a budget;
//   * driver crash     -> retry; after N *consecutive* crashes the
//                         accelerator plan is abandoned and the backend
//                         degrades to the CPU-fallback CompiledModel
//                         (compiled via the same soc::Compile + NNAPI
//                         machinery as App. D's fallback path) and keeps
//                         serving — degraded beats dead;
//   * thermal emergency -> complete the query, then an immediate emergency
//                         cooldown before the next one (run rules §6.1);
//   * sample drop      -> nothing to retry (the work ran, the signal was
//                         lost); the LoadGen watchdog expires the query.
// Every recovery action is recorded as a DegradationEvent; the event log
// text is byte-identical across same-seed runs.
#pragma once

#include <string>
#include <vector>

#include "backends/simulated_backend.h"
#include "common/rng.h"
#include "core/clock.h"
#include "core/query.h"
#include "soc/simulator.h"

namespace mlpm::backends {

struct FaultToleranceOptions {
  // Attempts per inference (first try + retries) before giving up.
  int max_attempts = 4;
  // Exponential backoff: wait backoff_base_s * 2^k before retry k.
  double backoff_base_s = 0.001;
  // Consecutive driver crashes tolerated before degrading to CPU.
  int crash_fallback_threshold = 3;
  // Cooldown applied immediately after a thermal emergency, seconds.
  double emergency_cooldown_s = 5.0;
  // Deterministic backoff jitter: retry k waits
  // backoff_base_s * 2^k * (1 + backoff_jitter_frac * (u - 0.5)) with u
  // drawn from a stream seeded by backoff_seed.  Pure base*2^k would
  // synchronize retry storms across fleet shards; the seeded draw keeps
  // the event log byte-identical per seed.  Must be in [0, 2).
  double backoff_jitter_frac = 0.5;
  std::uint64_t backoff_seed = 0xB0FF;
};

enum class RecoveryAction : std::uint8_t {
  kRetry,              // re-issued after a stall or crash (with backoff)
  kCpuFallback,        // abandoned the accelerator plan for the CPU model
  kEmergencyCooldown,  // cooled down after a thermal emergency
  kGaveUp,             // attempt budget exhausted; query left to the watchdog
  kLostCompletion,     // sample drop observed; nothing to recover
};

[[nodiscard]] constexpr std::string_view ToString(RecoveryAction a) {
  switch (a) {
    case RecoveryAction::kRetry: return "retry";
    case RecoveryAction::kCpuFallback: return "cpu_fallback";
    case RecoveryAction::kEmergencyCooldown: return "emergency_cooldown";
    case RecoveryAction::kGaveUp: return "gave_up";
    case RecoveryAction::kLostCompletion: return "lost_completion";
  }
  return "?";
}

struct DegradationEvent {
  RecoveryAction action = RecoveryAction::kRetry;
  std::uint64_t query_id = 0;
  double time_s = 0.0;  // virtual-clock time of the recovery action
  int attempt = 1;      // which attempt triggered it
};

class FaultTolerantBackend final : public loadgen::SystemUnderTest {
 public:
  FaultTolerantBackend(std::string name, soc::SocSimulator simulator,
                       soc::CompiledModel primary,
                       soc::CompiledModel cpu_fallback,
                       std::vector<soc::CompiledModel> offline_replicas,
                       loadgen::VirtualClock& clock,
                       FaultToleranceOptions options = {},
                       EndToEndCosts end_to_end = {});

  [[nodiscard]] std::string_view name() const override { return name_; }
  void IssueQuery(std::span<const loadgen::QuerySample> samples,
                  loadgen::ResponseSink& sink) override;

  // Run-rule cooldown hook for the harness.
  void Cooldown(double seconds) { simulator_.Cooldown(seconds); }

  struct Stats {
    std::size_t completed = 0;
    std::size_t transient_stalls = 0;
    std::size_t driver_crashes = 0;
    std::size_t thermal_emergencies = 0;
    std::size_t lost_completions = 0;
    std::size_t retries = 0;
    std::size_t gave_up = 0;
    bool degraded_to_cpu = false;
    // Total recovery actions taken (retries + fallback + cooldowns).
    [[nodiscard]] std::size_t DegradationCount() const {
      return retries + thermal_emergencies + (degraded_to_cpu ? 1 : 0);
    }
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] bool degraded_to_cpu() const { return stats_.degraded_to_cpu; }
  [[nodiscard]] const std::vector<DegradationEvent>& events() const {
    return events_;
  }
  // One line per recovery action; byte-identical across same-seed runs.
  [[nodiscard]] std::string EventLogText() const;

  [[nodiscard]] const soc::SocSimulator& simulator() const {
    return simulator_;
  }
  [[nodiscard]] double total_energy_j() const { return total_energy_j_; }

 private:
  void RunOne(const loadgen::QuerySample& sample,
              loadgen::ResponseSink& sink);
  void Record(RecoveryAction action, std::uint64_t query_id, int attempt);

  std::string name_;
  soc::SocSimulator simulator_;
  soc::CompiledModel primary_;
  soc::CompiledModel cpu_fallback_;
  std::vector<soc::CompiledModel> offline_replicas_;
  loadgen::VirtualClock& clock_;
  FaultToleranceOptions options_;
  EndToEndCosts end_to_end_;
  Stats stats_;
  std::vector<DegradationEvent> events_;
  Rng backoff_rng_;
  int consecutive_crashes_ = 0;
  double total_energy_j_ = 0.0;
};

// Compiles the CPU-fallback plan the backend degrades to: the whole graph
// on the chipset's CPU through the generic NNAPI runtime path (the only
// stack guaranteed to exist when a vendor driver is broken, App. D).
// Falls back to FP32 numerics if the CPU does not support `preferred`.
[[nodiscard]] soc::CompiledModel CompileCpuFallback(
    const soc::ChipsetDesc& chipset, const graph::Graph& model,
    DataType preferred);

}  // namespace mlpm::backends
