#include "transform/pass.h"

namespace mlpm::transform {

std::string_view ToString(Invariant inv) {
  switch (inv) {
    case Invariant::kNoDanglingEdges: return "no-dangling-edges";
    case Invariant::kShapeContract: return "shape-contract";
    case Invariant::kGraphOutputs: return "graph-outputs";
    case Invariant::kQuantContract: return "quant-contract";
    case Invariant::kAliasSafety: return "alias-safety";
    case Invariant::kSubgraphLocality: return "subgraph-locality";
    case Invariant::kCleanDiagnostics: return "clean-diagnostics";
  }
  return "?";
}

}  // namespace mlpm::transform
