// Activation liveness over the node order.
//
// Graphs are stored in topological (construction) order, so a tensor's
// lifetime is a contiguous interval of node indices: it is defined when its
// producer executes and dies after its last consumer.  Graph inputs are
// live from before the first node; graph outputs are pinned live to the end
// of execution.  The static activation memory planner (infer::MemoryPlan)
// packs buffers from these intervals.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace mlpm::graph {

// Live interval of one tensor, in node indices of Graph::nodes().
struct LiveInterval {
  // Node index that defines the tensor.  -1 for tensors live at entry
  // (graph inputs) and for weights.
  std::int32_t def = -1;
  // Last node index that reads the tensor.  Graph outputs are pinned to
  // nodes().size() (they must survive the whole run); -1 if never read.
  std::int32_t last_use = -1;
  // True for activation-kind tensors; weights carry no interval.
  bool is_activation = false;

  [[nodiscard]] bool Overlaps(const LiveInterval& o) const {
    return def <= o.last_use && o.def <= last_use;
  }
};

// Intervals for every tensor of `g`, indexed by TensorId.
[[nodiscard]] std::vector<LiveInterval> ComputeLiveness(const Graph& g);

}  // namespace mlpm::graph
