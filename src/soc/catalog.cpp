#include "soc/chipset.h"

#include <algorithm>

#include "common/check.h"

namespace mlpm::soc {

const AcceleratorDesc& ChipsetDesc::Engine(std::string_view engine) const {
  const auto it = std::find_if(
      engines.begin(), engines.end(),
      [&](const AcceleratorDesc& a) { return a.name == engine; });
  Expects(it != engines.end(),
          name + " has no engine named " + std::string(engine));
  return *it;
}

bool ChipsetDesc::HasEngine(std::string_view engine) const {
  return std::any_of(engines.begin(), engines.end(), [&](const auto& a) {
    return a.name == engine;
  });
}

namespace {

AcceleratorDesc PhoneBigCpu(double gmacs_fp32) {
  AcceleratorDesc a;
  a.name = "cpu";
  a.cls = EngineClass::kCpuBig;
  a.peak_gmacs_fp32 = gmacs_fp32;
  a.peak_gmacs_fp16 = gmacs_fp32 * 1.6;
  a.peak_gmacs_int8 = gmacs_fp32 * 2.8;  // dot-product instructions
  a.mem_bw_gbps = 18.0;
  a.efficiency = {0.55, 0.45, 0.55, 0.35, 0.5, 0.7};
  a.per_layer_overhead_us = 0.5;
  a.active_power_w = 2.0;
  a.idle_power_w = 0.08;
  return a;
}

}  // namespace

ChipsetDesc Dimensity820() {
  ChipsetDesc c;
  c.name = "Dimensity 820";
  c.generation = "v0.7";
  c.interconnect_gbps = 6.0;

  AcceleratorDesc apu;  // single-core MDLA (APU 3.0)
  apu.name = "apu";
  apu.cls = EngineClass::kNpu;
  apu.peak_gmacs_int8 = 430.0;
  apu.peak_gmacs_fp16 = 160.0;  // FP16/INT16-capable (Appendix C)
  apu.mem_bw_gbps = 28.0;
  apu.efficiency = {0.8, 0.6, 0.4, 0.15, 0.55};
  apu.efficiency.dilated_scale = 0.12;
  apu.per_layer_overhead_us = 1.5;
  apu.active_power_w = 2.4;
  c.engines.push_back(apu);

  AcceleratorDesc gpu;  // Mali-G57 MC5
  gpu.name = "gpu";
  gpu.cls = EngineClass::kGpu;
  gpu.peak_gmacs_fp16 = 105.0;
  gpu.peak_gmacs_fp32 = 55.0;
  gpu.peak_gmacs_int8 = 105.0;  // quantized models run via the FP16 ALUs
  gpu.mem_bw_gbps = 22.0;
  gpu.efficiency = {0.6, 0.35, 0.72, 0.5, 0.5, 0.5};
  gpu.per_layer_overhead_us = 3.0;
  gpu.active_power_w = 2.4;
  c.engines.push_back(gpu);

  c.engines.push_back(PhoneBigCpu(40.0));
  return c;
}

ChipsetDesc Exynos990() {
  ChipsetDesc c;
  c.name = "Exynos 990";
  c.generation = "v0.7";
  // Poor inter-IP transfer path: the very thing the 2100 fixed (App. C).
  c.interconnect_gbps = 0.35;

  AcceleratorDesc npu;  // dual-core NPU
  npu.name = "npu";
  npu.cls = EngineClass::kNpu;
  npu.peak_gmacs_int8 = 700.0;
  npu.mem_bw_gbps = 20.0;
  // Strong on dense/fused convolution, weak on depthwise — exactly the
  // profile MobileNetEdgeTPU was designed for (paper §3.2).
  npu.efficiency = {0.8, 0.15, 0.45, 0.1, 0.45};
  npu.efficiency.dilated_scale = 0.08;
  npu.per_layer_overhead_us = 1.5;
  npu.active_power_w = 2.4;
  c.engines.push_back(npu);

  AcceleratorDesc gpu;  // Mali-G77 MP11
  gpu.name = "gpu";
  gpu.cls = EngineClass::kGpu;
  gpu.peak_gmacs_fp16 = 240.0;
  gpu.peak_gmacs_fp32 = 120.0;
  gpu.peak_gmacs_int8 = 240.0;  // quantized models run via the FP16 ALUs
  gpu.mem_bw_gbps = 25.0;
  gpu.efficiency = {0.6, 0.35, 0.72, 0.52, 0.5, 0.5};
  gpu.per_layer_overhead_us = 3.0;
  gpu.active_power_w = 2.4;
  c.engines.push_back(gpu);

  c.engines.push_back(PhoneBigCpu(48.0));
  return c;
}

ChipsetDesc Snapdragon865Plus() {
  ChipsetDesc c;
  c.name = "Snapdragon 865+";
  c.generation = "v0.7";
  c.interconnect_gbps = 7.0;

  AcceleratorDesc hta;  // Hexagon Tensor Accelerator
  hta.name = "hta";
  hta.cls = EngineClass::kAip;
  hta.peak_gmacs_int8 = 560.0;
  hta.mem_bw_gbps = 25.0;
  hta.efficiency = {0.7, 0.4, 0.45, 0.15, 0.5};
  hta.efficiency.dilated_scale = 0.12;
  hta.per_layer_overhead_us = 1.8;
  hta.active_power_w = 2.2;
  c.engines.push_back(hta);

  AcceleratorDesc hvx;  // Hexagon Vector eXtensions
  hvx.name = "hvx";
  hvx.cls = EngineClass::kDsp;
  hvx.peak_gmacs_int8 = 260.0;
  hvx.mem_bw_gbps = 20.0;
  hvx.efficiency = {0.55, 0.5, 0.4, 0.1, 0.5, 0.2};
  hvx.per_layer_overhead_us = 2.0;
  hvx.active_power_w = 1.6;
  c.engines.push_back(hvx);

  AcceleratorDesc gpu;  // Adreno 650
  gpu.name = "gpu";
  gpu.cls = EngineClass::kGpu;
  gpu.peak_gmacs_fp16 = 220.0;
  gpu.peak_gmacs_fp32 = 110.0;
  gpu.peak_gmacs_int8 = 220.0;  // quantized models run via the FP16 ALUs
  gpu.mem_bw_gbps = 25.0;
  gpu.efficiency = {0.6, 0.35, 0.66, 0.46, 0.5, 0.5};
  gpu.per_layer_overhead_us = 2.8;
  gpu.active_power_w = 2.4;
  c.engines.push_back(gpu);

  c.engines.push_back(PhoneBigCpu(46.0));
  return c;
}

ChipsetDesc CoreI7_1165G7() {
  ChipsetDesc c;
  c.name = "Core i7-1165G7";
  c.generation = "v0.7";
  c.interconnect_gbps = 30.0;
  c.tdp_w = 28.0;
  c.thermal.capacitance_j_per_c = 60.0;
  c.thermal.resistance_c_per_w = 1.5;
  c.thermal.throttle_start_c = 70.0;
  c.thermal.throttle_limit_c = 95.0;

  AcceleratorDesc cpu;  // 4C/8T Willow Cove with VNNI
  cpu.name = "cpu";
  cpu.cls = EngineClass::kCpuBig;
  cpu.peak_gmacs_int8 = 620.0;
  cpu.peak_gmacs_fp16 = 180.0;
  cpu.peak_gmacs_fp32 = 160.0;
  cpu.mem_bw_gbps = 45.0;
  cpu.efficiency = {0.6, 0.5, 0.6, 0.45, 0.55, 0.7};
  cpu.per_layer_overhead_us = 0.4;
  cpu.active_power_w = 15.0;
  cpu.idle_power_w = 1.0;
  c.engines.push_back(cpu);

  AcceleratorDesc igpu;  // Xe-LP 96 EU
  igpu.name = "igpu";
  igpu.cls = EngineClass::kIGpu;
  igpu.peak_gmacs_int8 = 1100.0;
  igpu.peak_gmacs_fp16 = 550.0;
  igpu.peak_gmacs_fp32 = 280.0;
  igpu.mem_bw_gbps = 45.0;
  igpu.efficiency = {0.55, 0.35, 0.5, 0.35, 0.5, 0.5};
  igpu.per_layer_overhead_us = 3.5;
  igpu.active_power_w = 12.0;
  igpu.idle_power_w = 0.8;
  c.engines.push_back(igpu);
  return c;
}

ChipsetDesc Dimensity1100() {
  ChipsetDesc c = Dimensity820();
  c.name = "Dimensity 1100";
  c.generation = "v1.0";
  c.interconnect_gbps = 8.0;
  // Dual-core MDLA on 6nm: roughly doubled sustained rate (Appendix C).
  auto& apu = c.engines[0];
  apu.peak_gmacs_int8 = 860.0;
  apu.peak_gmacs_fp16 = 300.0;
  apu.per_layer_overhead_us = 1.2;
  // More powerful GPU, "helpful for ML-task acceleration".
  auto& gpu = c.engines[1];
  gpu.peak_gmacs_fp16 = 210.0;
  gpu.peak_gmacs_fp32 = 105.0;
  gpu.peak_gmacs_int8 = 210.0;
  return c;
}

ChipsetDesc Exynos2100() {
  ChipsetDesc c = Exynos990();
  c.name = "Exynos 2100";
  c.generation = "v1.0";
  // The headline fix: data transfer between IP blocks (Appendix C).
  c.interconnect_gbps = 14.0;
  auto& npu = c.engines[0];  // triple-core NPU + DSP, 5nm EUV
  npu.peak_gmacs_int8 = 1550.0;
  // Depthwise support materially improved.
  npu.efficiency = {0.8, 0.45, 0.5, 0.15, 0.55};
  npu.efficiency.dilated_scale = 0.22;
  npu.per_layer_overhead_us = 1.0;
  auto& gpu = c.engines[1];  // Mali-G78 MP14, >40% faster
  gpu.peak_gmacs_fp16 = 520.0;
  gpu.peak_gmacs_fp32 = 260.0;
  gpu.peak_gmacs_int8 = 520.0;
  auto& cpu = c.engines[2];  // tri-cluster CPU, >30% faster multicore
  cpu.peak_gmacs_fp32 = 64.0;
  cpu.peak_gmacs_fp16 = 64.0 * 1.6;
  cpu.peak_gmacs_int8 = 64.0 * 2.8;
  return c;
}

ChipsetDesc Snapdragon888() {
  ChipsetDesc c = Snapdragon865Plus();
  c.name = "Snapdragon 888";
  c.generation = "v1.0";
  c.interconnect_gbps = 9.0;
  // Hexagon 780: scalar/vector/tensor fused into one IP — 73% more
  // throughput and lower cross-engine overhead (Appendix C).
  auto& hta = c.engines[0];
  hta.peak_gmacs_int8 = 560.0 * 1.73;
  hta.per_layer_overhead_us = 1.2;
  hta.efficiency = {0.72, 0.45, 0.5, 0.18, 0.55};
  hta.efficiency.dilated_scale = 0.16;
  auto& hvx = c.engines[1];
  hvx.peak_gmacs_int8 = 330.0;
  auto& gpu = c.engines[2];  // Adreno 660
  gpu.peak_gmacs_fp16 = 420.0;
  gpu.peak_gmacs_fp32 = 210.0;
  gpu.peak_gmacs_int8 = 420.0;
  return c;
}

ChipsetDesc CoreI7_11375H() {
  ChipsetDesc c = CoreI7_1165G7();
  c.name = "Core i7-11375H";
  c.generation = "v1.0";
  auto& cpu = c.engines[0];  // ~1.1x CPU frequency (Appendix C)
  cpu.peak_gmacs_int8 *= 1.1;
  cpu.peak_gmacs_fp16 *= 1.1;
  cpu.peak_gmacs_fp32 *= 1.1;
  auto& igpu = c.engines[1];  // ~1.04x GPU frequency
  igpu.peak_gmacs_int8 *= 1.04;
  igpu.peak_gmacs_fp16 *= 1.04;
  igpu.peak_gmacs_fp32 *= 1.04;
  return c;
}

ChipsetDesc AppleA14() {
  ChipsetDesc c;
  c.name = "Apple A14";
  c.generation = "extension";
  c.interconnect_gbps = 16.0;  // unified-memory fabric

  AcceleratorDesc ane;  // 16-core Apple Neural Engine
  ane.name = "ane";
  ane.cls = EngineClass::kNpu;
  ane.peak_gmacs_int8 = 1400.0;
  ane.peak_gmacs_fp16 = 1400.0;  // the ANE is natively FP16
  ane.mem_bw_gbps = 34.0;
  ane.efficiency = {0.8, 0.5, 0.55, 0.3, 0.55};
  ane.efficiency.dilated_scale = 0.25;
  ane.per_layer_overhead_us = 1.0;
  ane.active_power_w = 2.4;
  c.engines.push_back(ane);

  AcceleratorDesc gpu;  // 4-core Apple GPU
  gpu.name = "gpu";
  gpu.cls = EngineClass::kGpu;
  gpu.peak_gmacs_fp16 = 450.0;
  gpu.peak_gmacs_fp32 = 225.0;
  gpu.peak_gmacs_int8 = 450.0;
  gpu.mem_bw_gbps = 34.0;
  gpu.efficiency = {0.6, 0.35, 0.7, 0.5, 0.5, 0.5};
  gpu.per_layer_overhead_us = 2.5;
  gpu.active_power_w = 2.4;
  c.engines.push_back(gpu);

  c.engines.push_back(PhoneBigCpu(70.0));  // Firestorm cores
  return c;
}

std::vector<ChipsetDesc> CatalogV07() {
  return {Dimensity820(), Exynos990(), Snapdragon865Plus(), CoreI7_1165G7()};
}

std::vector<ChipsetDesc> CatalogV10() {
  return {Dimensity1100(), Exynos2100(), Snapdragon888(), CoreI7_11375H()};
}

}  // namespace mlpm::soc
