// Runtime tensor: a shape plus an owning float buffer.
//
// All functional execution keeps storage in float regardless of the model's
// declared numerics; FP16 and INT8 behaviour is *simulated* by rounding
// values through the target format (fake quantization).  This matches how
// accuracy is affected on real hardware while keeping one set of kernels.
#pragma once

#include <span>
#include <vector>

#include "common/check.h"
#include "graph/shape.h"

namespace mlpm::infer {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(graph::TensorShape shape)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.elements()), 0.0f) {}
  Tensor(graph::TensorShape shape, std::vector<float> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    Expects(static_cast<std::int64_t>(data_.size()) == shape_.elements(),
            "tensor data size does not match shape");
  }

  [[nodiscard]] const graph::TensorShape& shape() const { return shape_; }
  [[nodiscard]] std::span<float> values() { return data_; }
  [[nodiscard]] std::span<const float> values() const { return data_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] float& at(std::size_t i) {
    Expects(i < data_.size(), "tensor index out of range");
    return data_[i];
  }
  [[nodiscard]] float at(std::size_t i) const {
    Expects(i < data_.size(), "tensor index out of range");
    return data_[i];
  }

  // Unchecked linear access for kernel inner loops.
  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }

 private:
  graph::TensorShape shape_;
  std::vector<float> data_;
};

}  // namespace mlpm::infer
