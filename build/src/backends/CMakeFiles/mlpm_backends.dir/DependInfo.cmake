
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backends/framework.cpp" "src/backends/CMakeFiles/mlpm_backends.dir/framework.cpp.o" "gcc" "src/backends/CMakeFiles/mlpm_backends.dir/framework.cpp.o.d"
  "/root/repo/src/backends/reference_backend.cpp" "src/backends/CMakeFiles/mlpm_backends.dir/reference_backend.cpp.o" "gcc" "src/backends/CMakeFiles/mlpm_backends.dir/reference_backend.cpp.o.d"
  "/root/repo/src/backends/simulated_backend.cpp" "src/backends/CMakeFiles/mlpm_backends.dir/simulated_backend.cpp.o" "gcc" "src/backends/CMakeFiles/mlpm_backends.dir/simulated_backend.cpp.o.d"
  "/root/repo/src/backends/vendor_policy.cpp" "src/backends/CMakeFiles/mlpm_backends.dir/vendor_policy.cpp.o" "gcc" "src/backends/CMakeFiles/mlpm_backends.dir/vendor_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/soc/CMakeFiles/mlpm_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mlpm_loadgen.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/mlpm_models.dir/DependInfo.cmake"
  "/root/repo/build/src/infer/CMakeFiles/mlpm_infer.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlpm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/mlpm_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mlpm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/mlpm_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mlpm_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
