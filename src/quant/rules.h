// Model-equivalence and numerics legality checks (paper §5.1, §6.2).
//
// The run rules forbid altering model computational complexity (channel /
// filter pruning, weight skipping) and forbid quantization-aware retraining
// by submitters; submissions must start from the frozen reference graph and
// may only use the approved calibration subset.  The audit re-runs these
// checks over submitted artifacts.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace mlpm::quant {

struct LegalityReport {
  bool legal = true;
  std::vector<std::string> violations;

  void Violate(std::string what) {
    legal = false;
    violations.push_back(std::move(what));
  }
};

// A submitted model is legal iff its structural fingerprint matches the
// frozen reference graph (same ops, shapes, connectivity — catches pruning
// and weight skipping, which change shapes or drop nodes).
[[nodiscard]] LegalityReport CheckModelEquivalence(
    const graph::Graph& reference, const graph::Graph& submitted);

// Calibration legality: every index used must come from the approved set
// (paper: "submitters can only use the approved calibration data set",
// typically 500 samples).
[[nodiscard]] LegalityReport CheckCalibrationSet(
    std::span<const std::size_t> approved,
    std::span<const std::size_t> used);

}  // namespace mlpm::quant
