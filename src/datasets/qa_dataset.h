// Synthetic SQuAD-v1.1 stand-in for the question-answering task.
//
// Samples are seeded token sequences; the ground-truth answer span is the
// FP32 teacher's best span, shifted by a small seeded offset for a fraction
// of samples so FP32 F1 lands near the paper's 93.98.
#pragma once

#include <cstdint>
#include <vector>

#include "datasets/task_dataset.h"
#include "graph/graph.h"
#include "infer/weights.h"
#include "metrics/f1.h"
#include "models/mobilebert.h"

namespace mlpm::datasets {

struct QaDatasetConfig {
  std::size_t num_samples = 96;
  // Fraction of samples whose truth equals the teacher span exactly; the
  // rest get a +/- shift of up to `max_shift` tokens (partial F1 credit).
  double teacher_agreement = 0.88;
  int max_shift = 3;
  int max_answer_length = 8;
  // Minimum margin between the teacher's best span score and the best
  // *non-overlapping* alternative span for a sample to enter the set.
  // SQuAD models answer most dev questions decisively; the filter
  // reproduces that margin structure so INT8 span flips stay rare enough
  // for the 93%-of-FP32 target to be reachable by PTQ (paper §5.1).
  double min_teacher_margin = 0.3;
  std::uint64_t seed = 0x50AD11;
};

class QaDataset final : public TaskDataset {
 public:
  QaDataset(const graph::Graph& model, const infer::WeightStore& weights,
            models::MobileBertConfig model_cfg, QaDatasetConfig config);

  [[nodiscard]] std::size_t size() const override { return truths_.size(); }
  [[nodiscard]] std::vector<infer::Tensor> InputsFor(
      std::size_t index) const override;
  [[nodiscard]] double ScoreOutputs(
      std::span<const std::vector<infer::Tensor>> outputs) const override;
  [[nodiscard]] std::string_view metric_name() const override { return "F1"; }
  [[nodiscard]] std::vector<infer::Tensor> CalibrationInputsFor(
      std::size_t index) const override;

  [[nodiscard]] metrics::TokenSpan TruthFor(std::size_t index) const;

  // Extracts the prediction span from [seq,2] start/end logits.
  [[nodiscard]] metrics::TokenSpan SpanFromLogits(
      const infer::Tensor& logits) const;

 private:
  [[nodiscard]] infer::Tensor MakeTokens(std::uint64_t name_space,
                                         std::size_t index) const;

  models::MobileBertConfig model_cfg_;
  QaDatasetConfig cfg_;
  std::vector<metrics::TokenSpan> truths_;
  // Generator index per accepted sample (margin filtering may skip some).
  std::vector<std::size_t> token_indices_;
};

}  // namespace mlpm::datasets
