// Byte-stable text rendering of a FleetReport: fixed-precision numbers and
// shard rows in shard-id order, so two same-seed fleet runs (and a resumed
// run vs an uninterrupted one) produce byte-identical text — the artifact
// the determinism tests diff.
#pragma once

#include <string>

#include "fleet/fleet.h"

namespace mlpm::fleet {

[[nodiscard]] std::string FormatFleetReport(const FleetReport& report);

}  // namespace mlpm::fleet
