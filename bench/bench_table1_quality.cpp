// Table 1 — the MLPerf Mobile benchmark suite with its quality targets,
// regenerated: for every suite entry we report the measured parameter count
// of the full-scale reference model and whether INT8 PTQ / FP16 clear the
// minimum quality target on the functional plane.
//
// Paper values: MobileNetEdgeTPU 4M params / 98% of FP32; SSD-MobileNet v2
// 17M / 93%; MobileDET-SSD 4M / 95%; DeepLab v3+ 2M / 97%; MobileBERT
// 25M / 93%.
#include <cstdio>

#include "common/table.h"
#include "harness/run_session.h"

int main() {
  using namespace mlpm;
  harness::SuiteBundles bundles;

  for (const models::SuiteVersion version :
       {models::SuiteVersion::kV0_7, models::SuiteVersion::kV1_0}) {
    TextTable t("Table 1 — MLPerf Mobile suite " +
                std::string(ToString(version)));
    t.SetHeader({"Task", "Reference model", "Params (measured)", "Data set",
                 "Quality target", "FP32 score", "INT8 PTQ", "FP16",
                 "INT8 passes"});
    for (const models::BenchmarkEntry& e : models::SuiteFor(version)) {
      const graph::Graph full =
          models::BuildReferenceGraph(e, version, models::ModelScale::kFull);
      const harness::TaskBundle& bundle = bundles.Get(e, version);
      const double fp32 = bundle.Fp32Score();

      const harness::TaskBundle::PreparedModel int8 =
          bundle.Prepare(infer::NumericsMode::kInt8);
      const double r_int8 = bundle.ScoreAccuracy(*int8.executor) / fp32;
      const harness::TaskBundle::PreparedModel fp16 =
          bundle.Prepare(infer::NumericsMode::kFp16);
      const double r_fp16 = bundle.ScoreAccuracy(*fp16.executor) / fp32;

      t.AddRow({e.id, e.model_name,
                FormatDouble(static_cast<double>(full.ParameterCount()) / 1e6,
                             2) +
                    "M",
                e.dataset_name,
                FormatPercent(e.quality_target, 0) + " of FP32",
                FormatDouble(fp32, 4) + " " + e.metric_name,
                FormatPercent(r_int8, 1), FormatPercent(r_fp16, 1),
                r_int8 >= e.quality_target ? "PASS" : "FAIL"});
    }
    std::printf("%s\n", t.Render().c_str());
  }
  std::printf(
      "paper parameter counts: 4M / 17M (v0.7 SSD) / 4M (v1.0 MobileDet) / "
      "2M / 25M.\nquality is measured relative to FP32, as in the paper; "
      "the mini functional\nplane sets the absolute FP32 scores "
      "(DESIGN.md).\n");
  return 0;
}
