#include "harness/frame_log.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#if __has_include(<unistd.h>)
#include <unistd.h>
#define MLPM_JOURNAL_HAS_FSYNC 1
#else
#define MLPM_JOURNAL_HAS_FSYNC 0
#endif

namespace mlpm::harness {

std::uint64_t Fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {
constexpr std::string_view kHeader = "mlpm_journal v1";
}  // namespace

namespace wire {

std::string HexDouble(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

void PutU(std::string& out, std::string_view key, std::uint64_t v) {
  out += "u ";
  out += key;
  out += ' ';
  out += std::to_string(v);
  out += '\n';
}

void PutD(std::string& out, std::string_view key, double v) {
  out += "d ";
  out += key;
  out += ' ';
  out += HexDouble(v);
  out += '\n';
}

void PutB(std::string& out, std::string_view key, bool v) {
  out += "b ";
  out += key;
  out += v ? " 1\n" : " 0\n";
}

void PutS(std::string& out, std::string_view key, std::string_view bytes) {
  out += "s ";
  out += key;
  out += ' ';
  out += std::to_string(bytes.size());
  out += '\n';
  out += bytes;
  out += '\n';
}

void PutDV(std::string& out, std::string_view key,
           const std::vector<double>& v) {
  out += "D ";
  out += key;
  out += ' ';
  out += std::to_string(v.size());
  for (const double d : v) {
    out += ' ';
    out += HexDouble(d);
  }
  out += '\n';
}

void PutUV(std::string& out, std::string_view key,
           const std::vector<std::size_t>& v) {
  out += "U ";
  out += key;
  out += ' ';
  out += std::to_string(v.size());
  for (const std::size_t u : v) {
    out += ' ';
    out += std::to_string(u);
  }
  out += '\n';
}

void PutL(std::string& out, std::string_view key,
          const std::vector<std::string>& v) {
  out += "L ";
  out += key;
  out += ' ';
  out += std::to_string(v.size());
  out += '\n';
  for (const std::string& s : v) {
    out += std::to_string(s.size());
    out += '\n';
    out += s;
    out += '\n';
  }
}

std::uint64_t ParseU64(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  Expects(errno == 0 && end != text.c_str() && *end == '\0',
          "journal: bad integer '" + text + "'");
  return v;
}

double ParseDouble(const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  Expects(end != text.c_str() && *end == '\0',
          "journal: bad double '" + text + "'");
  return v;
}

bool PayloadParser::Next(Field& f) {
  if (pos_ >= payload_.size()) return false;
  const std::string line = TakeLine();
  std::istringstream ls(line);
  std::string tag;
  ls >> tag;
  Expects(tag.size() == 1, "journal: bad entry tag '" + tag + "'");
  f = Field{};
  f.tag = tag[0];
  ls >> f.key;
  Expects(!f.key.empty(), "journal: entry without key");
  switch (f.tag) {
    case 'u':
    case 'd':
    case 'b': {
      ls >> f.scalar;
      Expects(!ls.fail(), "journal: missing value for key " + f.key);
      break;
    }
    case 's': {
      std::string len_text;
      ls >> len_text;
      f.bytes = TakeBlock(ParseU64(len_text));
      break;
    }
    case 'D': {
      std::string n_text;
      ls >> n_text;
      const std::uint64_t n = ParseU64(n_text);
      f.doubles.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        std::string v;
        ls >> v;
        Expects(!ls.fail(), "journal: short double list for " + f.key);
        f.doubles.push_back(ParseDouble(v));
      }
      break;
    }
    case 'U': {
      std::string n_text;
      ls >> n_text;
      const std::uint64_t n = ParseU64(n_text);
      f.uints.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        std::string v;
        ls >> v;
        Expects(!ls.fail(), "journal: short uint list for " + f.key);
        f.uints.push_back(ParseU64(v));
      }
      break;
    }
    case 'L': {
      std::string n_text;
      ls >> n_text;
      const std::uint64_t n = ParseU64(n_text);
      f.strings.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::string len_line = TakeLine();
        f.strings.push_back(TakeBlock(ParseU64(len_line)));
      }
      break;
    }
    default:
      Expects(false,
              "journal: unknown entry tag '" + std::string(1, f.tag) + "'");
  }
  return true;
}

std::string PayloadParser::TakeLine() {
  const std::size_t nl = payload_.find('\n', pos_);
  Expects(nl != std::string::npos, "journal: unterminated entry line");
  std::string line = payload_.substr(pos_, nl - pos_);
  pos_ = nl + 1;
  return line;
}

std::string PayloadParser::TakeBlock(std::uint64_t len) {
  Expects(pos_ + len + 1 <= payload_.size(),
          "journal: block runs past the payload");
  std::string bytes = payload_.substr(pos_, len);
  pos_ += len;
  Expects(payload_[pos_] == '\n', "journal: block missing terminator");
  ++pos_;
  return bytes;
}

}  // namespace wire

// ---- frame-level loader ------------------------------------------------

namespace {

// One frame header line: "<kind> <len> <hash-hex>".  Returns false when
// the bytes at `pos` cannot possibly be an intact frame.  The kind is any
// short lowercase word — which kinds are *meaningful* is the caller's
// business, but arbitrary binary garbage must not parse as a header.
struct FrameHeader {
  std::string kind;
  std::uint64_t len = 0;
  std::uint64_t hash = 0;
  std::size_t payload_pos = 0;  // offset of the first payload byte
};

bool IsFrameKind(const std::string& kind) {
  if (kind.empty() || kind.size() > 16) return false;
  for (const char c : kind)
    if ((c < 'a' || c > 'z') && c != '_') return false;
  return true;
}

bool ParseFrameHeader(const std::string& data, std::size_t pos,
                      FrameHeader& out, std::string& why) {
  const std::size_t nl = data.find('\n', pos);
  if (nl == std::string::npos) {
    why = "unterminated frame header";
    return false;
  }
  std::istringstream ls(data.substr(pos, nl - pos));
  std::string kind, len_text, hash_text;
  ls >> kind >> len_text >> hash_text;
  if (ls.fail() || !IsFrameKind(kind)) {
    why = "malformed frame header";
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const std::uint64_t len = std::strtoull(len_text.c_str(), &end, 10);
  if (errno != 0 || *end != '\0') {
    why = "bad frame length";
    return false;
  }
  errno = 0;
  const std::uint64_t hash = std::strtoull(hash_text.c_str(), &end, 16);
  if (errno != 0 || *end != '\0') {
    why = "bad frame checksum";
    return false;
  }
  out.kind = kind;
  out.len = len;
  out.hash = hash;
  out.payload_pos = nl + 1;
  return true;
}

}  // namespace

FrameLogLoad LoadFrameLog(const std::string& path) {
  FrameLogLoad load;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    load.notes.push_back("cannot open journal: " + path);
    return load;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();
  load.file_size = data.size();

  // Header line.
  const std::size_t header_end = data.find('\n');
  if (header_end == std::string::npos ||
      data.substr(0, header_end) != kHeader) {
    load.notes.push_back("not a journal: missing '" + std::string(kHeader) +
                         "' header");
    load.torn_tail = !data.empty();
    load.torn_bytes = data.size();
    return load;
  }
  load.header_valid = true;

  std::size_t pos = header_end + 1;
  while (pos < data.size()) {
    FrameHeader frame;
    std::string why;
    if (!ParseFrameHeader(data, pos, frame, why)) {
      load.notes.push_back("torn tail at byte " + std::to_string(pos) + ": " +
                           why);
      break;
    }
    // Payload must be fully present, terminated, and checksum-clean.
    if (frame.payload_pos + frame.len + 1 > data.size()) {
      load.notes.push_back("torn tail at byte " + std::to_string(pos) +
                           ": frame truncated mid-payload");
      break;
    }
    if (data[frame.payload_pos + frame.len] != '\n') {
      load.notes.push_back("torn tail at byte " + std::to_string(pos) +
                           ": frame payload unterminated");
      break;
    }
    std::string payload = data.substr(frame.payload_pos, frame.len);
    if (Fnv1a64(payload) != frame.hash) {
      load.notes.push_back("torn tail at byte " + std::to_string(pos) +
                           ": checksum mismatch on '" + frame.kind +
                           "' frame");
      break;
    }
    RawFrame raw;
    raw.kind = frame.kind;
    raw.payload = std::move(payload);
    raw.offset = pos;
    raw.end = frame.payload_pos + frame.len + 1;
    pos = raw.end;
    load.frames.push_back(std::move(raw));
  }

  load.valid_prefix_bytes = pos;
  load.torn_bytes = data.size() - pos;
  load.torn_tail = load.torn_bytes > 0;
  return load;
}

// ---- writer ------------------------------------------------------------

FrameLogWriter FrameLogWriter::Create(const std::string& path) {
  std::unique_ptr<std::FILE, FileCloser> file(std::fopen(path.c_str(), "wb"));
  Expects(file != nullptr, "cannot create journal: " + path);
  FrameLogWriter writer(path, std::move(file));
  const std::string header = std::string(kHeader) + "\n";
  Expects(std::fwrite(header.data(), 1, header.size(), writer.file_.get()) ==
              header.size(),
          "journal header write failed: " + path);
  return writer;
}

FrameLogWriter FrameLogWriter::OpenAt(const std::string& path,
                                      std::size_t valid_prefix_bytes) {
  // Cut anything past the valid prefix so the next append starts on a
  // frame boundary.  Rewriting the prefix is equivalent to (and simpler
  // than) platform truncate(), and the prefix is small — a handful of
  // records.
  std::ifstream in(path, std::ios::binary);
  Expects(static_cast<bool>(in), "cannot reopen journal: " + path);
  std::string prefix(valid_prefix_bytes, '\0');
  in.read(prefix.data(), static_cast<std::streamsize>(prefix.size()));
  Expects(static_cast<std::size_t>(in.gcount()) == prefix.size(),
          "journal shrank while truncating: " + path);
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  Expects(static_cast<bool>(out), "cannot truncate journal: " + path);
  out.write(prefix.data(), static_cast<std::streamsize>(prefix.size()));
  Expects(static_cast<bool>(out), "cannot rewrite journal: " + path);
  out.close();

  std::unique_ptr<std::FILE, FileCloser> file(std::fopen(path.c_str(), "ab"));
  Expects(file != nullptr, "cannot append to journal: " + path);
  return FrameLogWriter(path, std::move(file));
}

void FrameLogWriter::AppendFrame(std::string_view kind,
                                 const std::string& payload) {
  char head[64];
  std::snprintf(head, sizeof head, "%.*s %zu %016llx\n",
                static_cast<int>(kind.size()), kind.data(), payload.size(),
                static_cast<unsigned long long>(Fnv1a64(payload)));
  std::string frame = head;
  frame += payload;
  frame += '\n';
  Expects(std::fwrite(frame.data(), 1, frame.size(), file_.get()) ==
              frame.size(),
          "journal write failed: " + path_);

  // Durability point: the record is not "appended" until it has hit the
  // disk.  fsync latency is the price of crash safety — surface it.
  const auto t0 = std::chrono::steady_clock::now();
  Expects(std::fflush(file_.get()) == 0, "journal flush failed: " + path_);
#if MLPM_JOURNAL_HAS_FSYNC
  Expects(::fsync(::fileno(file_.get())) == 0,
          "journal fsync failed: " + path_);
#endif
  const double fsync_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.Increment("journal.records");
  metrics.MaxGauge("journal.fsync_seconds_max", fsync_s);
  if (obs::TraceRecorder& rec = obs::TraceRecorder::Global(); rec.enabled())
    rec.AddInstant(
        obs::Domain::kHost, "journal", "journal:append", rec.NowUs(),
        {obs::Arg("bytes", static_cast<std::uint64_t>(frame.size())),
         obs::Arg("fsync_ms", fsync_s * 1e3)},
        "journal");
}

}  // namespace mlpm::harness
