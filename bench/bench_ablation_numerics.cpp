// Ablation — numerics (paper §7.5 / insight 5): INT8 vs FP16 vs FP32 per
// task, on both planes:
//   * simulated latency of the full model on one phone (Dimensity 1100 APU
//     for vision, Mali GPU for NLP),
//   * functional accuracy ratio of the mini model.
// Reproduces "not everything needs INT8": vision profits massively, NLP
// needs FP16 to stay deployable.
#include <cstdio>

#include "backends/vendor_policy.h"
#include "common/table.h"
#include "harness/run_session.h"

int main() {
  using namespace mlpm;
  const soc::ChipsetDesc chipset = soc::Dimensity1100();
  const models::SuiteVersion version = models::SuiteVersion::kV1_0;
  harness::SuiteBundles bundles;

  TextTable t("numerics ablation on " + chipset.name +
              " (latency sim / accuracy ratio functional)");
  t.SetHeader({"Task", "INT8 latency", "FP16 latency", "FP32 latency",
               "INT8 acc ratio", "FP16 acc ratio", "quality target"});

  for (const models::BenchmarkEntry& e : models::SuiteFor(version)) {
    const graph::Graph model =
        models::BuildReferenceGraph(e, version, models::ModelScale::kFull);
    backends::SubmissionConfig sub =
        backends::GetSubmission(chipset, e.task, version);
    // Vision runs on the APU; it has no FP32 path, so FP32 falls back to
    // the GPU — itself a faithful mobile behaviour.
    const auto latency = [&](DataType numerics) -> std::string {
      backends::SubmissionConfig cfg = sub;
      cfg.numerics = numerics;
      const std::string engine = cfg.single_stream.engines.front();
      if (!chipset.Engine(engine).Supports(numerics)) {
        cfg.single_stream.engines = {"gpu"};
        cfg.single_stream.alternate_every = 0;
        cfg.single_stream.tail_nodes_on_secondary = 0;
      }
      return FormatMs(backends::CompileSubmission(chipset, cfg, model)
                          .LatencySeconds()) +
             (cfg.single_stream.engines != sub.single_stream.engines
                  ? " (gpu)"
                  : "");
    };

    const harness::TaskBundle& bundle = bundles.Get(e, version);
    const double fp32 = bundle.Fp32Score();
    const auto ratio = [&](infer::NumericsMode mode) {
      const auto prepared = bundle.Prepare(mode);
      return FormatPercent(bundle.ScoreAccuracy(*prepared.executor) / fp32,
                           1);
    };

    t.AddRow({e.id, latency(DataType::kUInt8), latency(DataType::kFloat16),
              latency(DataType::kFloat32),
              ratio(infer::NumericsMode::kInt8),
              ratio(infer::NumericsMode::kFp16),
              FormatPercent(e.quality_target, 0)});
  }
  std::printf("%s", t.Render().c_str());
  std::printf(
      "\nINT8 buys the vision tasks their speed at negligible quality "
      "loss;\nNLP keeps more accuracy in FP16 and most mobile AI engines "
      "lack efficient\nnon-vision INT8 support — hence FP16-on-GPU "
      "submissions (insight 5).\n");
  return 0;
}
