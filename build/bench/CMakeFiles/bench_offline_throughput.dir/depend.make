# Empty dependencies file for bench_offline_throughput.
# This may be replaced when dependencies are built.
