// Table 3 — vendor-optimized delegates vs generic NNAPI on the MediaTek
// Dimensity 1100 (v1.0 vision tasks, single-stream).
//
// Paper values: IC 2.48 -> 2.23 ms (10.08%), OD 5.05 -> 4.77 ms (5.54%),
// IS 20.56 -> 20.02 ms (2.70%).
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace mlpm;
  const soc::ChipsetDesc chipset = soc::Dimensity1100();
  const models::SuiteVersion version = models::SuiteVersion::kV1_0;

  struct PaperRow {
    models::TaskType task;
    double paper_nnapi_ms, paper_neuron_ms;
  };
  const PaperRow paper[] = {
      {models::TaskType::kImageClassification, 2.48, 2.23},
      {models::TaskType::kObjectDetection, 5.05, 4.77},
      {models::TaskType::kImageSegmentation, 20.56, 20.02},
  };

  TextTable t("Table 3 — NNAPI vs Neuron delegate on " + chipset.name +
              " (simulated vs paper)");
  t.SetHeader({"Task", "NNAPI (sim)", "Neuron (sim)", "improvement (sim)",
               "NNAPI (paper)", "Neuron (paper)", "improvement (paper)"});

  for (const PaperRow& row : paper) {
    backends::SubmissionConfig neuron =
        backends::GetSubmission(chipset, row.task, version);
    backends::SubmissionConfig nnapi = neuron;
    nnapi.framework = backends::NnapiTraits("default");
    nnapi.single_stream.force_partition_every =
        nnapi.framework.force_partition_every;

    const std::vector<models::BenchmarkEntry> suite =
        models::SuiteFor(version);
    const models::BenchmarkEntry* entry = nullptr;
    for (const auto& e : suite)
      if (e.task == row.task) entry = &e;
    Expects(entry != nullptr, "task missing from suite");
    const graph::Graph model = models::BuildReferenceGraph(
        *entry, version, models::ModelScale::kFull);

    const double t_neuron =
        backends::CompileSubmission(chipset, neuron, model).LatencySeconds();
    const double t_nnapi =
        backends::CompileSubmission(chipset, nnapi, model).LatencySeconds();

    t.AddRow({entry->id, FormatMs(t_nnapi), FormatMs(t_neuron),
              FormatPercent(t_nnapi / t_neuron - 1.0, 2),
              FormatDouble(row.paper_nnapi_ms, 2) + " ms",
              FormatDouble(row.paper_neuron_ms, 2) + " ms",
              FormatPercent(row.paper_nnapi_ms / row.paper_neuron_ms - 1.0,
                            2)});
  }
  std::printf("%s", t.Render().c_str());
  std::printf(
      "\nthe vendor delegate always wins; the delta comes from NNAPI's HAL\n"
      "partition synchronization and buffer copies (paper §7.4).\n");
  return 0;
}
