// Tests for the reference model zoo: Table 1 parameter fidelity, output
// shapes, anchor/head consistency, and detection post-processing.
#include <gtest/gtest.h>

#include "graph/cost.h"
#include "models/deeplab.h"
#include "models/detection.h"
#include "models/mobilebert.h"
#include "models/mobilenet_edgetpu.h"
#include "models/ssd.h"
#include "models/zoo.h"

namespace mlpm::models {
namespace {

TEST(Zoo, SuiteV07HasFourTasks) {
  const auto suite = SuiteFor(SuiteVersion::kV0_7);
  ASSERT_EQ(suite.size(), 4u);
  EXPECT_EQ(suite[1].model_name, "SSD-MobileNet v2");
  EXPECT_EQ(suite[1].input_size, 300);
  EXPECT_DOUBLE_EQ(suite[1].quality_target, 0.93);
}

TEST(Zoo, SuiteV10SwapsDetectionModel) {
  const auto suite = SuiteFor(SuiteVersion::kV1_0);
  EXPECT_EQ(suite[1].model_name, "MobileDET-SSD");
  EXPECT_EQ(suite[1].input_size, 320);
  EXPECT_DOUBLE_EQ(suite[1].quality_target, 0.95);  // tightened in v1.0
}

TEST(Zoo, QualityTargetsMatchTable1) {
  const auto suite = SuiteFor(SuiteVersion::kV1_0);
  EXPECT_DOUBLE_EQ(suite[0].quality_target, 0.98);
  EXPECT_DOUBLE_EQ(suite[2].quality_target, 0.97);
  EXPECT_DOUBLE_EQ(suite[3].quality_target, 0.93);
}

// Parameter fidelity: measured counts within 15% of Table 1.
struct ParamCase {
  SuiteVersion version;
  std::size_t index;
  double expected_millions;
};

class Table1Params : public ::testing::TestWithParam<ParamCase> {};

TEST_P(Table1Params, WithinFifteenPercent) {
  const ParamCase& c = GetParam();
  const auto suite = SuiteFor(c.version);
  const graph::Graph g =
      BuildReferenceGraph(suite[c.index], c.version, ModelScale::kFull);
  const double millions =
      static_cast<double>(g.ParameterCount()) / 1e6;
  EXPECT_GT(millions, c.expected_millions * 0.85);
  EXPECT_LT(millions, c.expected_millions * 1.15);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, Table1Params,
    ::testing::Values(ParamCase{SuiteVersion::kV0_7, 0, 4.0},
                      ParamCase{SuiteVersion::kV0_7, 1, 17.0},
                      ParamCase{SuiteVersion::kV1_0, 1, 4.0},
                      ParamCase{SuiteVersion::kV0_7, 2, 2.0},
                      ParamCase{SuiteVersion::kV0_7, 3, 25.0}));

TEST(MobileNetEdgeTpu, FullOutputShape) {
  const graph::Graph g = BuildMobileNetEdgeTpu(ModelScale::kFull);
  EXPECT_EQ(g.tensor(g.output_ids()[0]).shape,
            graph::TensorShape({1, 1000}));
}

TEST(MobileNetEdgeTpu, MiniOutputShape) {
  const graph::Graph g = BuildMobileNetEdgeTpu(ModelScale::kMini);
  EXPECT_EQ(g.tensor(g.output_ids()[0]).shape, graph::TensorShape({1, 16}));
}

TEST(MobileNetEdgeTpu, EarlyStagesAreFused) {
  // The fused-IBN design point: no depthwise convs before the first
  // depthwise stage, and some 3x3 dense convs beyond the stem.
  const graph::Graph g = BuildMobileNetEdgeTpu(ModelScale::kFull);
  int first_dw = -1, dense3x3 = 0;
  for (std::size_t i = 0; i < g.nodes().size(); ++i) {
    if (g.nodes()[i].op == graph::OpType::kDepthwiseConv2d && first_dw < 0)
      first_dw = static_cast<int>(i);
    if (g.nodes()[i].op == graph::OpType::kConv2d) {
      const auto& a = std::get<graph::Conv2dAttrs>(g.nodes()[i].attrs);
      if (a.kernel_h == 3) ++dense3x3;
    }
  }
  EXPECT_GT(first_dw, 10);  // fused stages come first
  EXPECT_GT(dense3x3, 8);
}

TEST(MobileNetEdgeTpu, FullModelAboutOneGmac) {
  const graph::GraphCost c =
      graph::AnalyzeGraph(BuildMobileNetEdgeTpu(ModelScale::kFull));
  EXPECT_GT(c.TotalGMacs(), 0.7);
  EXPECT_LT(c.TotalGMacs(), 1.5);
}

TEST(Ssd, AnchorsMatchHeadOutputs) {
  for (const DetectionModel& m :
       {BuildSsdMobileNetV2(ModelScale::kFull),
        BuildMobileDetSsd(ModelScale::kFull),
        BuildSsdMobileNetV2(ModelScale::kMini),
        BuildMobileDetSsd(ModelScale::kMini)}) {
    const auto& boxes = m.graph.tensor(m.graph.output_ids()[0]).shape;
    const auto& classes = m.graph.tensor(m.graph.output_ids()[1]).shape;
    EXPECT_EQ(boxes.dim(0), static_cast<std::int64_t>(m.anchors.size()));
    EXPECT_EQ(boxes.dim(1), 4);
    EXPECT_EQ(classes.dim(0), static_cast<std::int64_t>(m.anchors.size()));
    EXPECT_EQ(classes.dim(1), m.num_classes);
  }
}

TEST(Ssd, Ssd300AnchorCountMatchesReference) {
  // 19^2*3 + 6*(10^2 + 5^2 + 3^2 + 2^2 + 1^2) anchors = 1917.
  const DetectionModel m = BuildSsdMobileNetV2(ModelScale::kFull);
  EXPECT_EQ(m.anchors.size(), 1917u);
}

TEST(Ssd, MobileDetUsesSeparableHeads) {
  // SSDLite: the prediction convs are depthwise+pointwise, so MobileDet has
  // far fewer parameters despite the bigger input.
  const auto ssd = BuildSsdMobileNetV2(ModelScale::kFull);
  const auto mobiledet = BuildMobileDetSsd(ModelScale::kFull);
  EXPECT_LT(mobiledet.graph.ParameterCount(),
            ssd.graph.ParameterCount() / 3);
  EXPECT_GT(mobiledet.input_size, ssd.input_size);
}

TEST(DeepLab, OutputIsPerPixelLogits) {
  const graph::Graph g = BuildDeepLabV3Plus(ModelScale::kFull);
  EXPECT_EQ(g.tensor(g.output_ids()[0]).shape,
            graph::TensorShape({1, 512, 512, 32}));
}

TEST(DeepLab, MiniOutputShape) {
  const graph::Graph g = BuildDeepLabV3Plus(ModelScale::kMini);
  EXPECT_EQ(g.tensor(g.output_ids()[0]).shape,
            graph::TensorShape({1, 32, 32, 8}));
}

TEST(DeepLab, ContainsDilatedConvs) {
  const graph::Graph g = BuildDeepLabV3Plus(ModelScale::kFull);
  const graph::GraphCost c = graph::AnalyzeGraph(g);
  bool any_dilated = false;
  for (const auto& nc : c.per_node) any_dilated |= nc.dilated;
  EXPECT_TRUE(any_dilated);
}

TEST(MobileBert, OutputIsSpanLogits) {
  const graph::Graph g = BuildMobileBert(ModelScale::kFull);
  EXPECT_EQ(g.tensor(g.output_ids()[0]).shape,
            graph::TensorShape({384, 2}));
}

TEST(MobileBert, BlockCountMatchesConfig) {
  const MobileBertConfig cfg;  // 24 blocks
  const graph::Graph g = BuildMobileBert(cfg);
  int attention_nodes = 0;
  for (const auto& n : g.nodes())
    if (n.op == graph::OpType::kMultiHeadAttention) ++attention_nodes;
  EXPECT_EQ(attention_nodes, cfg.num_blocks);
}

TEST(MobileBert, RejectsIndivisibleHeads) {
  MobileBertConfig cfg = MiniMobileBertConfig();
  cfg.num_heads = 3;  // bottleneck 32 not divisible by 3
  EXPECT_THROW((void)BuildMobileBert(cfg), CheckError);
}

TEST(Zoo, ReferenceGraphDispatchesPerVersion) {
  const auto v07 = SuiteFor(SuiteVersion::kV0_7);
  const auto v10 = SuiteFor(SuiteVersion::kV1_0);
  const graph::Graph od07 =
      BuildReferenceGraph(v07[1], SuiteVersion::kV0_7, ModelScale::kFull);
  const graph::Graph od10 =
      BuildReferenceGraph(v10[1], SuiteVersion::kV1_0, ModelScale::kFull);
  EXPECT_EQ(od07.name(), "ssd_mobilenet_v2");
  EXPECT_EQ(od10.name(), "mobiledet_ssd");
}

// ---- detection post-processing ----

TEST(Anchors, GridCenteredAndNormalized) {
  const AnchorSet::FeatureMapSpec spec{2, {0.5f}, {1.0f}};
  const AnchorSet set = AnchorSet::Build({&spec, 1});
  ASSERT_EQ(set.size(), 4u);
  EXPECT_FLOAT_EQ(set.anchors()[0].cy, 0.25f);
  EXPECT_FLOAT_EQ(set.anchors()[0].cx, 0.25f);
  EXPECT_FLOAT_EQ(set.anchors()[3].cy, 0.75f);
  EXPECT_FLOAT_EQ(set.anchors()[3].cx, 0.75f);
}

TEST(Anchors, AspectRatioPreservesArea) {
  const AnchorSet::FeatureMapSpec spec{1, {0.4f}, {2.0f}};
  const AnchorSet set = AnchorSet::Build({&spec, 1});
  const Anchor& a = set.anchors()[0];
  EXPECT_NEAR(a.h * a.w, 0.4f * 0.4f, 1e-5f);
  EXPECT_NEAR(a.w / a.h, 2.0f, 1e-4f);
}

TEST(Decode, ZeroDeltasRecoverAnchors) {
  const AnchorSet::FeatureMapSpec spec{1, {0.5f}, {1.0f}};
  const AnchorSet set = AnchorSet::Build({&spec, 1});
  // logits: background low, class1 high.
  const std::vector<float> deltas(4, 0.0f);
  const std::vector<float> logits{0.0f, 5.0f};
  const auto dets = DecodeDetections(deltas, logits, set, 2);
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_EQ(dets[0].class_id, 1);
  EXPECT_NEAR(dets[0].box.ymin, 0.25f, 1e-4f);
  EXPECT_NEAR(dets[0].box.ymax, 0.75f, 1e-4f);
}

TEST(Decode, BackgroundOnlyYieldsNothing) {
  const AnchorSet::FeatureMapSpec spec{1, {0.5f}, {1.0f}};
  const AnchorSet set = AnchorSet::Build({&spec, 1});
  const std::vector<float> deltas(4, 0.0f);
  const std::vector<float> logits{5.0f, 0.0f};
  EXPECT_TRUE(DecodeDetections(deltas, logits, set, 2).empty());
}

TEST(Decode, ScoreThresholdFilters) {
  const AnchorSet::FeatureMapSpec spec{1, {0.5f}, {1.0f}};
  const AnchorSet set = AnchorSet::Build({&spec, 1});
  const std::vector<float> deltas(4, 0.0f);
  const std::vector<float> logits{0.0f, 0.1f};  // weak foreground
  DecodeConfig cfg;
  cfg.score_threshold = 0.9f;
  EXPECT_TRUE(DecodeDetections(deltas, logits, set, 2, cfg).empty());
}

TEST(Decode, BoxesStayNormalized) {
  const AnchorSet::FeatureMapSpec spec{1, {0.9f}, {1.0f}};
  const AnchorSet set = AnchorSet::Build({&spec, 1});
  const std::vector<float> deltas{5.0f, 5.0f, 10.0f, 10.0f};  // blow up
  const std::vector<float> logits{0.0f, 5.0f};
  const auto dets = DecodeDetections(deltas, logits, set, 2);
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_GE(dets[0].box.ymin, 0.0f);
  EXPECT_LE(dets[0].box.ymax, 1.0f);
  EXPECT_GE(dets[0].box.xmin, 0.0f);
  EXPECT_LE(dets[0].box.xmax, 1.0f);
}

TEST(Nms, SuppressesOverlappingSameClass) {
  std::vector<Detection> dets{
      {BBox{0.1f, 0.1f, 0.5f, 0.5f}, 1, 0.9f},
      {BBox{0.12f, 0.12f, 0.52f, 0.52f}, 1, 0.8f},
  };
  const auto kept = Nms(std::move(dets), 0.5f, 10);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_FLOAT_EQ(kept[0].score, 0.9f);
}

TEST(Nms, KeepsDifferentClasses) {
  std::vector<Detection> dets{
      {BBox{0.1f, 0.1f, 0.5f, 0.5f}, 1, 0.9f},
      {BBox{0.1f, 0.1f, 0.5f, 0.5f}, 2, 0.8f},
  };
  EXPECT_EQ(Nms(std::move(dets), 0.5f, 10).size(), 2u);
}

TEST(Nms, RespectsMaxDetections) {
  std::vector<Detection> dets;
  for (int i = 0; i < 20; ++i)
    dets.push_back({BBox{0.05f * i, 0.0f, 0.05f * i + 0.02f, 0.02f}, 1,
                    1.0f - 0.01f * i});
  EXPECT_EQ(Nms(std::move(dets), 0.5f, 5).size(), 5u);
}

TEST(Nms, OutputSortedByScore) {
  std::vector<Detection> dets{
      {BBox{0.0f, 0.0f, 0.1f, 0.1f}, 1, 0.3f},
      {BBox{0.5f, 0.5f, 0.6f, 0.6f}, 1, 0.9f},
      {BBox{0.8f, 0.8f, 0.9f, 0.9f}, 1, 0.6f},
  };
  const auto kept = Nms(std::move(dets), 0.5f, 10);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_GE(kept[0].score, kept[1].score);
  EXPECT_GE(kept[1].score, kept[2].score);
}

}  // namespace
}  // namespace mlpm::models
