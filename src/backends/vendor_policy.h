// Table 2 of the paper as data: which numerics, framework and accelerators
// each vendor used per task, per benchmark round.
//
// These choices are the paper's central transparency artifact — "myriad
// combinations of numerics, software run times, and hardware" — and they
// drive everything the simulator reports: no one engine wins every task
// (Insight 2), vision runs INT8 on NPUs/DSPs while NLP runs FP16 on GPUs
// (Insight 5), offline mode exercises ALP (Insight 3).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "backends/framework.h"
#include "common/types.h"
#include "models/common.h"
#include "models/zoo.h"
#include "soc/chipset.h"
#include "soc/compile.h"

namespace mlpm::backends {

struct SubmissionConfig {
  std::string chipset_name;
  models::TaskType task = models::TaskType::kImageClassification;
  DataType numerics = DataType::kInt8;
  FrameworkTraits framework;
  // Display string for the accelerator cell of Table 2 (e.g. "AIP (HTA+HVX)").
  std::string accelerator_label;

  soc::ExecutionPolicy single_stream;
  // One replica policy per concurrently-used engine in offline mode; empty
  // means the vendor did not submit this task in the offline scenario.
  std::vector<soc::ExecutionPolicy> offline_replicas;
};

// The submission a vendor made for (chipset, task) in the given round.
// Throws CheckError for chipsets not in that round's catalog.
[[nodiscard]] SubmissionConfig GetSubmission(const soc::ChipsetDesc& chipset,
                                             models::TaskType task,
                                             models::SuiteVersion version);

// Convenience: compile the submission's model onto the chipset.
[[nodiscard]] soc::CompiledModel CompileSubmission(
    const soc::ChipsetDesc& chipset, const SubmissionConfig& config,
    const graph::Graph& model);

// Offline replicas compiled per engine (empty if no offline submission).
[[nodiscard]] std::vector<soc::CompiledModel> CompileOfflineReplicas(
    const soc::ChipsetDesc& chipset, const SubmissionConfig& config,
    const graph::Graph& model);

}  // namespace mlpm::backends
