file(REMOVE_RECURSE
  "CMakeFiles/mlpm_common.dir/barchart.cpp.o"
  "CMakeFiles/mlpm_common.dir/barchart.cpp.o.d"
  "CMakeFiles/mlpm_common.dir/fp16.cpp.o"
  "CMakeFiles/mlpm_common.dir/fp16.cpp.o.d"
  "CMakeFiles/mlpm_common.dir/rng.cpp.o"
  "CMakeFiles/mlpm_common.dir/rng.cpp.o.d"
  "CMakeFiles/mlpm_common.dir/statistics.cpp.o"
  "CMakeFiles/mlpm_common.dir/statistics.cpp.o.d"
  "CMakeFiles/mlpm_common.dir/table.cpp.o"
  "CMakeFiles/mlpm_common.dir/table.cpp.o.d"
  "libmlpm_common.a"
  "libmlpm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlpm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
