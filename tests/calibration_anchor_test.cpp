// Paper-anchor regression tests: the simulator must keep reproducing the
// numbers the paper publishes (see EXPERIMENTS.md).  These tests pin the
// calibration so refactors of the cost model cannot silently drift away
// from the reproduced results.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "backends/vendor_policy.h"
#include "models/zoo.h"
#include "soc/simulator.h"

namespace mlpm {
namespace {

double SingleStreamMs(const soc::ChipsetDesc& chipset,
                      models::TaskType task, models::SuiteVersion version) {
  const auto suite = models::SuiteFor(version);
  const models::BenchmarkEntry* entry = nullptr;
  for (const auto& e : suite)
    if (e.task == task) entry = &e;
  const graph::Graph model = models::BuildReferenceGraph(
      *entry, version, models::ModelScale::kFull);
  const backends::SubmissionConfig sub =
      backends::GetSubmission(chipset, task, version);
  return backends::CompileSubmission(chipset, sub, model).LatencySeconds() *
         1e3;
}

double OfflineFps(const soc::ChipsetDesc& chipset,
                  models::SuiteVersion version) {
  const auto suite = models::SuiteFor(version);
  const graph::Graph model = models::BuildReferenceGraph(
      suite[0], version, models::ModelScale::kFull);
  const backends::SubmissionConfig sub = backends::GetSubmission(
      chipset, models::TaskType::kImageClassification, version);
  const auto replicas =
      backends::CompileOfflineReplicas(chipset, sub, model);
  soc::SocSimulator sim(chipset);
  const soc::BatchResult r = sim.RunBatch(replicas, 24'576);
  return 24'576.0 / r.makespan_s;
}

// Table 3 anchors (exact paper numbers, 5% tolerance).
struct Table3Case {
  models::TaskType task;
  double paper_neuron_ms;
  double paper_nnapi_ms;
};

class Table3Anchor : public ::testing::TestWithParam<Table3Case> {};

TEST_P(Table3Anchor, NeuronLatencyMatchesPaper) {
  const Table3Case& c = GetParam();
  const double sim = SingleStreamMs(soc::Dimensity1100(), c.task,
                                    models::SuiteVersion::kV1_0);
  EXPECT_NEAR(sim, c.paper_neuron_ms, c.paper_neuron_ms * 0.05);
}

TEST_P(Table3Anchor, NnapiIsSlowerButBounded) {
  const Table3Case& c = GetParam();
  const soc::ChipsetDesc chip = soc::Dimensity1100();
  backends::SubmissionConfig nnapi = backends::GetSubmission(
      chip, c.task, models::SuiteVersion::kV1_0);
  nnapi.framework = backends::NnapiTraits("default");
  nnapi.single_stream.force_partition_every =
      nnapi.framework.force_partition_every;
  const auto suite = models::SuiteFor(models::SuiteVersion::kV1_0);
  const models::BenchmarkEntry* entry = nullptr;
  for (const auto& e : suite)
    if (e.task == c.task) entry = &e;
  const graph::Graph model = models::BuildReferenceGraph(
      *entry, models::SuiteVersion::kV1_0, models::ModelScale::kFull);
  const double nnapi_ms =
      backends::CompileSubmission(chip, nnapi, model).LatencySeconds() * 1e3;
  EXPECT_NEAR(nnapi_ms, c.paper_nnapi_ms, c.paper_nnapi_ms * 0.06);
  EXPECT_GT(nnapi_ms,
            SingleStreamMs(chip, c.task, models::SuiteVersion::kV1_0));
}

INSTANTIATE_TEST_SUITE_P(
    PaperValues, Table3Anchor,
    ::testing::Values(
        Table3Case{models::TaskType::kImageClassification, 2.23, 2.48},
        Table3Case{models::TaskType::kObjectDetection, 4.77, 5.05},
        Table3Case{models::TaskType::kImageSegmentation, 20.02, 20.56}));

TEST(OfflineAnchor, Exynos990MatchesPaper674) {
  EXPECT_NEAR(OfflineFps(soc::Exynos990(), models::SuiteVersion::kV0_7),
              674.4, 674.4 * 0.05);
}

TEST(OfflineAnchor, Snapdragon865MatchesPaper605) {
  EXPECT_NEAR(OfflineFps(soc::Snapdragon865Plus(),
                         models::SuiteVersion::kV0_7),
              605.37, 605.37 * 0.05);
}

TEST(Figure6Anchor, ExynosSegmentationJumpIsTwelvePointSeven) {
  const double v07 = SingleStreamMs(soc::Exynos990(),
                                    models::TaskType::kImageSegmentation,
                                    models::SuiteVersion::kV0_7);
  const double v10 = SingleStreamMs(soc::Exynos2100(),
                                    models::TaskType::kImageSegmentation,
                                    models::SuiteVersion::kV1_0);
  EXPECT_NEAR(v07 / v10, 12.7, 1.0);
}

TEST(Figure6Anchor, MeanSpeedupAboutTwoX) {
  const std::vector<std::pair<soc::ChipsetDesc, soc::ChipsetDesc>> families =
      {{soc::Dimensity820(), soc::Dimensity1100()},
       {soc::Exynos990(), soc::Exynos2100()},
       {soc::Snapdragon865Plus(), soc::Snapdragon888()},
       {soc::CoreI7_1165G7(), soc::CoreI7_11375H()}};
  double log_sum = 0.0;
  int n = 0;
  for (const auto& [v07, v10] : families) {
    for (const models::TaskType task :
         {models::TaskType::kImageClassification,
          models::TaskType::kObjectDetection,
          models::TaskType::kImageSegmentation,
          models::TaskType::kQuestionAnswering}) {
      const double speedup =
          SingleStreamMs(v07, task, models::SuiteVersion::kV0_7) /
          SingleStreamMs(v10, task, models::SuiteVersion::kV1_0);
      EXPECT_GE(speedup, 1.0);  // nobody regressed
      log_sum += std::log(speedup);
      ++n;
    }
  }
  const double geo_mean = std::exp(log_sum / n);
  EXPECT_GT(geo_mean, 1.6);
  EXPECT_LT(geo_mean, 2.4);
}

TEST(Figure7Anchor, V07WinnersMatchPaper) {
  const auto v = models::SuiteVersion::kV0_7;
  const soc::ChipsetDesc d = soc::Dimensity820();
  const soc::ChipsetDesc e = soc::Exynos990();
  const soc::ChipsetDesc s = soc::Snapdragon865Plus();

  // Samsung wins classification and NLP.
  EXPECT_LT(SingleStreamMs(e, models::TaskType::kImageClassification, v),
            SingleStreamMs(d, models::TaskType::kImageClassification, v));
  EXPECT_LT(SingleStreamMs(e, models::TaskType::kImageClassification, v),
            SingleStreamMs(s, models::TaskType::kImageClassification, v));
  EXPECT_LT(SingleStreamMs(e, models::TaskType::kQuestionAnswering, v),
            SingleStreamMs(d, models::TaskType::kQuestionAnswering, v));
  EXPECT_LT(SingleStreamMs(e, models::TaskType::kQuestionAnswering, v),
            SingleStreamMs(s, models::TaskType::kQuestionAnswering, v));
  // MediaTek wins detection and segmentation.
  EXPECT_LT(SingleStreamMs(d, models::TaskType::kObjectDetection, v),
            SingleStreamMs(e, models::TaskType::kObjectDetection, v));
  EXPECT_LT(SingleStreamMs(d, models::TaskType::kObjectDetection, v),
            SingleStreamMs(s, models::TaskType::kObjectDetection, v));
  EXPECT_LT(SingleStreamMs(d, models::TaskType::kImageSegmentation, v),
            SingleStreamMs(e, models::TaskType::kImageSegmentation, v));
  EXPECT_LT(SingleStreamMs(d, models::TaskType::kImageSegmentation, v),
            SingleStreamMs(s, models::TaskType::kImageSegmentation, v));
  // Qualcomm competitive (within 15%) on segmentation.
  EXPECT_LT(SingleStreamMs(s, models::TaskType::kImageSegmentation, v),
            1.15 * SingleStreamMs(d, models::TaskType::kImageSegmentation,
                                  v));
}

TEST(NoOneSizeFitsAll, NoChipsetDominatesEverywhere) {
  // Paper insight 2, as an invariant over both rounds.
  for (const auto version :
       {models::SuiteVersion::kV0_7, models::SuiteVersion::kV1_0}) {
    const auto catalog = version == models::SuiteVersion::kV0_7
                             ? soc::CatalogV07()
                             : soc::CatalogV10();
    std::vector<std::string> winners;
    for (const models::TaskType task :
         {models::TaskType::kImageClassification,
          models::TaskType::kObjectDetection,
          models::TaskType::kImageSegmentation,
          models::TaskType::kQuestionAnswering}) {
      double best = 1e9;
      std::string who;
      for (const soc::ChipsetDesc& c : catalog) {
        if (c.name.starts_with("Core i7")) continue;  // phones only
        const double ms = SingleStreamMs(c, task, version);
        if (ms < best) {
          best = ms;
          who = c.name;
        }
      }
      winners.push_back(who);
    }
    const bool all_same =
        std::all_of(winners.begin(), winners.end(),
                    [&](const std::string& w) { return w == winners[0]; });
    EXPECT_FALSE(all_same) << "one chipset dominates " <<
        std::string(ToString(version));
  }
}

}  // namespace
}  // namespace mlpm
