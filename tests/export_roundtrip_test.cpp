// Round-trip tests for the CSV exporter (harness/export.h): RFC 4180
// quoting of hostile fields, stable column order, and the ParseCsv inverse.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/export.h"
#include "harness/result_store.h"
#include "models/zoo.h"

namespace mlpm::harness {
namespace {

// The documented column order — any change to this list is a breaking
// change for downstream consumers and must be deliberate.
const std::vector<std::string> kColumns = {
    "chipset",        "version",
    "task",           "model",
    "numerics",       "framework",
    "accelerator",    "accuracy",
    "fp32_reference", "ratio_to_fp32",
    "quality_passed", "p90_latency_ms",
    "mean_latency_ms", "offline_fps",
    "energy_mj_per_inference", "status",
    "fault_count",    "degradation_count",
    "dropped",        "timed_out",
    "lint_errors",    "lint_warnings",
    "peak_arena_bytes", "naive_activation_bytes",
    "shed",           "rejected",
    "breaker_trips",  "kernel_isa",
    "transform_applied", "transform_passes",
    "transform_rewrites", "tiling_applied",
    "tile_segments",  "tile_rows",
    "tile_slab_bytes"};

// A submission whose string fields exercise every character RFC 4180
// forces into quotes: commas, double quotes, LF, CR and CRLF.
SubmissionResult HostileResult() {
  SubmissionResult result;
  result.chipset_name = "Snap,dragon \"888\"\nrev\r\n2";
  result.version = models::SuiteVersion::kV1_0;

  TaskRunResult task;
  task.entry = models::SuiteFor(models::SuiteVersion::kV1_0).front();
  task.entry.model_name = "MobileNet,Edge\"TPU\"";
  task.framework_name = "TF,Lite \"nightly\"\r\nbuild";
  task.accelerator_label = "npu\r+ gpu";
  task.accuracy = 0.75;
  task.fp32_reference = 0.76;
  task.ratio_to_fp32 = 0.9868;
  task.quality_passed = true;

  loadgen::TestResult ss;
  ss.percentile_latency_s = 0.0123;
  ss.mean_latency_s = 0.0101;
  task.single_stream = ss;
  loadgen::TestResult off;
  off.throughput_sps = 512.5;
  task.offline = off;

  task.energy_per_inference_j = 0.0042;
  task.fault_count = 3;
  task.degradation_count = 1;
  task.lint_error_count = 0;
  task.lint_warning_count = 2;
  task.peak_arena_bytes = 1 << 20;
  task.naive_activation_bytes = 1 << 22;
  task.shed_count = 7;
  task.rejected_count = 4;
  task.breaker_trips = 2;
  task.kernel_isa = "avx2,\"simd\"";
  task.transform_requested = true;
  task.transform_applied = true;
  task.transform_passes = "split-activations,\"fuse\",\r\nconstant-fold";
  task.transform_rewrites = 9;
  task.tiling_requested = true;
  task.tiling_applied = true;
  task.tile_segments = 19;
  task.tile_rows = -1;  // auto
  task.tile_slab_bytes = 465920;
  result.tasks.push_back(std::move(task));
  return result;
}

// The writer's quoting rule, restated independently for the round-trip
// re-serialization check.
std::string Quote(const std::string& v) {
  if (v.find_first_of(",\"\n\r") == std::string::npos) return v;
  std::string q = "\"";
  for (char c : v) {
    if (c == '"') q += '"';
    q += c;
  }
  q += '"';
  return q;
}

TEST(ExportCsv, HeaderHasStableColumnOrder) {
  const auto records = ParseCsv(ToCsv(HostileResult()));
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records[0], kColumns);
}

TEST(ExportCsv, HostileFieldsRoundTripByteForByte) {
  const SubmissionResult result = HostileResult();
  const auto records = ParseCsv(ToCsv(result));
  ASSERT_EQ(records.size(), 2u);  // header + one task row
  const std::vector<std::string>& row = records[1];
  ASSERT_EQ(row.size(), kColumns.size());
  EXPECT_EQ(row[0], result.chipset_name);
  EXPECT_EQ(row[2], result.tasks[0].entry.id);
  EXPECT_EQ(row[3], result.tasks[0].entry.model_name);
  EXPECT_EQ(row[5], result.tasks[0].framework_name);
  EXPECT_EQ(row[6], result.tasks[0].accelerator_label);
  EXPECT_EQ(row[10], "true");
  EXPECT_EQ(row[16], "3");   // fault_count
  EXPECT_EQ(row[17], "1");   // degradation_count
  EXPECT_EQ(row[24], "7");   // shed
  EXPECT_EQ(row[25], "4");   // rejected
  EXPECT_EQ(row[26], "2");   // breaker_trips
  EXPECT_EQ(row[27], result.tasks[0].kernel_isa);
  EXPECT_EQ(row[28], "true");  // transform_applied
  EXPECT_EQ(row[29], result.tasks[0].transform_passes);
  EXPECT_EQ(row[30], "9");   // transform_rewrites
  EXPECT_EQ(row[31], "true");    // tiling_applied
  EXPECT_EQ(row[32], "19");      // tile_segments
  EXPECT_EQ(row[33], "-1");      // tile_rows (auto)
  EXPECT_EQ(row[34], "465920");  // tile_slab_bytes
}

TEST(ExportCsv, EveryRowHasHeaderWidth) {
  // A field with an embedded newline must not split its record.
  const auto records = ParseCsv(ToCsv(HostileResult()));
  for (const auto& r : records) EXPECT_EQ(r.size(), kColumns.size());
}

TEST(ExportCsv, ReserializingParsedRecordsReproducesTheFile) {
  const std::string csv = ToCsv(HostileResult());
  std::string rebuilt;
  for (const auto& record : ParseCsv(csv)) {
    for (std::size_t i = 0; i < record.size(); ++i) {
      if (i != 0) rebuilt += ',';
      rebuilt += Quote(record[i]);
    }
    rebuilt += '\n';
  }
  EXPECT_EQ(rebuilt, csv);
}

TEST(ExportCsv, StoreExportPrependsDateColumn) {
  ResultStore store;
  store.Add("2021-04-28", HostileResult());
  const auto records = ParseCsv(ToCsv(store));
  ASSERT_EQ(records.size(), 2u);
  ASSERT_EQ(records[0].size(), kColumns.size() + 1);
  EXPECT_EQ(records[0][0], "date");
  EXPECT_EQ(records[1][0], "2021-04-28");
  EXPECT_EQ(records[1][1], HostileResult().chipset_name);
}

// ---- ParseCsv unit cases ----

TEST(ParseCsv, DoubledQuotesBecomeLiteralQuotes) {
  const auto r = ParseCsv("\"a\"\"b\",c\n");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], (std::vector<std::string>{"a\"b", "c"}));
}

TEST(ParseCsv, QuotedFieldsKeepCommasAndLineBreaks) {
  const auto r = ParseCsv("\"a,b\",\"c\nd\",\"e\r\nf\"\n");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], (std::vector<std::string>{"a,b", "c\nd", "e\r\nf"}));
}

TEST(ParseCsv, CrlfAndLfRecordEndsBothWork) {
  const auto r = ParseCsv("a,b\r\nc,d\ne,f");
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(r[1], (std::vector<std::string>{"c", "d"}));
  EXPECT_EQ(r[2], (std::vector<std::string>{"e", "f"}));
}

TEST(ParseCsv, TrailingNewlineProducesNoEmptyRecord) {
  EXPECT_EQ(ParseCsv("a\n").size(), 1u);
  EXPECT_EQ(ParseCsv("a").size(), 1u);
  EXPECT_TRUE(ParseCsv("").empty());
}

TEST(ParseCsv, EmptyFieldsSurvive) {
  const auto r = ParseCsv(",,\na,,b\n");
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], (std::vector<std::string>{"", "", ""}));
  EXPECT_EQ(r[1], (std::vector<std::string>{"a", "", "b"}));
}

TEST(ParseCsv, QuotedEmptyFieldIsOneEmptyField) {
  const auto r = ParseCsv("\"\"\n");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], (std::vector<std::string>{""}));
}

}  // namespace
}  // namespace mlpm::harness
