// Fleet-scale serving mode (DESIGN.md §16): N device-simulator shards, each
// driven by its own LoadGen Server-scenario instance with seeded Poisson
// arrivals and a per-shard latency SLO, executed concurrently on a bounded
// worker pool.  Shards that reference the same (chipset, task, version)
// configuration share one immutable prepared model through a refcounted
// PreparedCache, so fleet memory scales with distinct configs, not devices.
//
// Determinism contract: for a fixed seed, mix and shard count the aggregated
// FleetReport is byte-identical across runs and worker counts.  Each shard
// derives its own seed from the fleet seed and its shard id, runs on a fresh
// virtual clock and simulator, and writes only its own result slot; nothing
// a shard computes depends on scheduling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "backends/circuit_breaker.h"
#include "common/types.h"
#include "core/loadgen.h"
#include "fleet/mix.h"
#include "harness/run_session.h"
#include "infer/kernels/registry.h"
#include "models/zoo.h"
#include "soc/faults.h"

namespace mlpm::fleet {

struct FleetOptions {
  std::size_t shard_count = 1;
  models::SuiteVersion version = models::SuiteVersion::kV1_0;
  // Device populations; empty means DefaultFleetMix(version).
  std::vector<FleetMixEntry> mix;

  // Per-shard LoadGen settings template.  mode is forced to
  // kPerformanceOnly; the scenario defaults to kServer (a fleet is a
  // serving system) but single-stream is allowed for oracle comparisons.
  // With `split_seed_per_shard` (default) shard i runs at seed
  // Rng(settings.seed).Split(i).NextU64() so shards draw independent
  // Poisson processes; without it every shard uses settings.seed verbatim
  // (the fleet-vs-RunSubmission equivalence tests rely on this).
  loadgen::TestSettings settings = [] {
    loadgen::TestSettings s;
    s.scenario = loadgen::TestScenario::kServer;
    return s;
  }();
  bool split_seed_per_shard = true;

  // Worker threads driving shards (0 = hardware concurrency).  Results are
  // identical for any value; only wall-clock time changes.
  std::size_t workers = 0;

  // Optional accuracy plane: score each distinct (task, numerics) config
  // once through the reference executor and stamp the scores onto every
  // shard of that config.  Runs serially on the coordinator (TaskBundle
  // preparation is not thread-safe).  Off by default — a serving fleet
  // measures latency, not accuracy.
  bool accuracy = false;
  infer::kernels::KernelIsa kernel_isa = infer::kernels::KernelIsa::kAuto;

  // Optional seeded runtime pathologies per shard (soc/faults.h); each
  // shard reseeds the plan from its shard seed so fleets don't fail in
  // lockstep.  Failed attempts surface as dropped/timed-out queries in
  // that shard's accounting.
  std::optional<soc::FaultPlan> fault_plan;
  // Optional per-shard circuit breaker wrapping the shard SUT; reseeded
  // per shard like the fault plan.
  std::optional<backends::CircuitBreakerOptions> circuit_breaker;

  // Crash-safe fleet journal (fleet/journal.h): one fsync'd record per
  // finished shard.  With `resume`, intact records from a previous run of
  // the same fleet configuration are replayed instead of re-run.
  std::string journal_path;
  bool resume = false;

  // Cooperative cancellation, checked before each shard starts.  May be
  // invoked from worker threads; calls are serialized by the coordinator.
  std::function<bool()> cancel;
};

// Outcome of one shard.
struct ShardResult {
  std::size_t shard_id = 0;
  std::string chipset;
  std::string task_id;
  DataType numerics = DataType::kInt8;
  // Prepared-model cache key this shard shares ("v1.0|task|chipset").
  std::string config_key;

  loadgen::TestResult result;
  harness::TaskStatus state = harness::TaskStatus::kValid;
  // Latency bound + shed bound met on a structurally valid run.
  bool slo_met = false;

  std::size_t breaker_trips = 0;
  std::size_t fault_count = 0;
  double energy_j = 0.0;
  double peak_temperature_c = 0.0;

  // Accuracy plane (FleetOptions::accuracy); zero/false otherwise.
  double accuracy = 0.0;
  double fp32_reference = 0.0;
  double ratio_to_fp32 = 0.0;
  bool quality_passed = false;

  // Replayed from the journal instead of executed this run.
  bool resumed = false;
};

// Aggregated outcome of a fleet run.  All derived figures are recomputed
// from the sorted shard vector, so a resumed run aggregates identically to
// an uninterrupted one.
struct FleetReport {
  models::SuiteVersion version = models::SuiteVersion::kV1_0;
  std::uint64_t seed = 0;
  std::size_t shard_count = 0;
  std::string mix_spec;  // canonical FormatFleetMix rendering
  std::vector<ShardResult> shards;  // sorted by shard_id; may be a prefix
                                    // subset when interrupted

  // Sum of per-shard sustained throughput (each shard serves on its own
  // virtual timeline, so fleet capacity is the sum of shard rates).
  double fleet_qps = 0.0;
  double slo_met_fraction = 0.0;
  std::size_t valid_count = 0;
  std::size_t degraded_count = 0;
  std::size_t invalid_count = 0;

  // Query accounting across all shards.  offered = issued + shed;
  // issued = completed + timed_out + dropped + rejected.
  std::size_t offered = 0;
  std::size_t issued = 0;
  std::size_t completed = 0;
  std::size_t shed = 0;
  std::size_t rejected = 0;
  std::size_t timed_out = 0;
  std::size_t dropped = 0;
  std::size_t breaker_trips = 0;

  // Percentiles over the merged per-sample latency distribution.
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;

  // Prepared-model sharing: distinct configs across all shards vs models
  // actually built this run (resumed shards build nothing).
  std::size_t distinct_configs = 0;
  std::uint64_t prepared_models_built = 0;

  std::size_t resumed_shards = 0;
  bool interrupted = false;
};

// Runs the fleet.  Throws CheckError on invalid options (unknown chipset or
// task names, zero shards).
[[nodiscard]] FleetReport RunFleet(const FleetOptions& options);

}  // namespace mlpm::fleet
