// Unit + property tests for src/common: rng, fp16, statistics, table, check.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.h"
#include "common/fp16.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "common/barchart.h"
#include "common/table.h"
#include "common/types.h"

namespace mlpm {
namespace {

TEST(Check, ExpectsThrowsOnViolation) {
  EXPECT_THROW(Expects(false, "boom"), CheckError);
  EXPECT_NO_THROW(Expects(true));
}

TEST(Check, EnsuresThrowsWithMessage) {
  try {
    Ensures(false, "specific invariant");
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("specific invariant"),
              std::string::npos);
  }
}

TEST(Types, ByteSizes) {
  EXPECT_EQ(ByteSize(DataType::kFloat32), 4u);
  EXPECT_EQ(ByteSize(DataType::kFloat16), 2u);
  EXPECT_EQ(ByteSize(DataType::kInt8), 1u);
  EXPECT_EQ(ByteSize(DataType::kUInt8), 1u);
  EXPECT_EQ(ByteSize(DataType::kInt32), 4u);
}

TEST(Types, QuantizedPredicate) {
  EXPECT_TRUE(IsQuantized(DataType::kInt8));
  EXPECT_TRUE(IsQuantized(DataType::kUInt8));
  EXPECT_FALSE(IsQuantized(DataType::kFloat16));
  EXPECT_FALSE(IsQuantized(DataType::kFloat32));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.NextU64() == b.NextU64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBelow(bound), bound);
  }
}

TEST(Rng, NextBelowRejectsZero) {
  Rng rng(7);
  EXPECT_THROW(rng.NextBelow(0), CheckError);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.NextUniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sq / kN, 1.0, 0.05);
}

TEST(Rng, SplitIsIndependentOfParentConsumption) {
  Rng parent(5);
  const Rng child1 = parent.Split(1);
  // Consuming the parent must not change what Split would have produced...
  Rng parent2(5);
  const Rng child2 = parent2.Split(1);
  Rng c1 = child1, c2 = child2;
  for (int i = 0; i < 16; ++i) EXPECT_EQ(c1.NextU64(), c2.NextU64());
}

TEST(Rng, SplitTagsProduceDistinctStreams) {
  const Rng parent(5);
  Rng a = parent.Split(1), b = parent.Split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.NextU64() == b.NextU64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(21);
  const auto idx = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(idx.size(), 30u);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t i : idx) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleWithoutReplacementFullPopulation) {
  Rng rng(22);
  const auto idx = rng.SampleWithoutReplacement(10, 10);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(23);
  EXPECT_THROW(rng.SampleWithoutReplacement(5, 6), CheckError);
}

// ---- fp16 ----

TEST(Fp16, ExactSmallIntegers) {
  for (float f : {0.0f, 1.0f, -1.0f, 2.0f, 1024.0f, -2048.0f})
    EXPECT_EQ(RoundToHalf(f), f);
}

TEST(Fp16, SignedZeroPreserved) {
  EXPECT_EQ(FloatToHalfBits(-0.0f), 0x8000u);
  EXPECT_EQ(FloatToHalfBits(0.0f), 0x0000u);
}

TEST(Fp16, OverflowGoesToInfinity) {
  EXPECT_TRUE(std::isinf(RoundToHalf(70000.0f)));
  EXPECT_TRUE(std::isinf(RoundToHalf(-70000.0f)));
  EXPECT_LT(RoundToHalf(-70000.0f), 0.0f);
}

TEST(Fp16, MaxFiniteHalf) {
  EXPECT_EQ(RoundToHalf(65504.0f), 65504.0f);
}

TEST(Fp16, NanPropagates) {
  EXPECT_TRUE(std::isnan(RoundToHalf(std::nanf(""))));
}

TEST(Fp16, SubnormalsRepresented) {
  const float tiny = 6e-8f;  // within half subnormal range
  const float rt = RoundToHalf(tiny);
  EXPECT_GT(rt, 0.0f);
  EXPECT_NEAR(rt, tiny, 6e-8f);
}

TEST(Fp16, UnderflowToZero) {
  EXPECT_EQ(RoundToHalf(1e-12f), 0.0f);
}

TEST(Fp16, RoundTripIsIdempotent) {
  Rng rng(31);
  for (int i = 0; i < 2000; ++i) {
    const float f = static_cast<float>(rng.NextGaussian() * 10.0);
    const float once = RoundToHalf(f);
    EXPECT_EQ(RoundToHalf(once), once);
  }
}

// Property: relative rounding error of normal values <= 2^-11.
class Fp16Property : public ::testing::TestWithParam<float> {};

TEST_P(Fp16Property, RelativeErrorBounded) {
  const float f = GetParam();
  const float rt = RoundToHalf(f);
  EXPECT_LE(std::abs(rt - f), std::abs(f) * (1.0f / 2048.0f) + 1e-12f);
}

INSTANTIATE_TEST_SUITE_P(ValueGrid, Fp16Property,
                         ::testing::Values(0.001f, 0.1f, 0.5f, 0.9999f, 1.5f,
                                           3.14159f, 42.0f, 123.456f,
                                           -0.001f, -0.1f, -1.5f, -3.14159f,
                                           -42.0f, 999.9f, -999.9f,
                                           60000.0f, -60000.0f));

// ---- statistics ----

TEST(Statistics, PercentileOfSingleton) {
  const double v[] = {5.0};
  EXPECT_EQ(Percentile(v, 0.0), 5.0);
  EXPECT_EQ(Percentile(v, 90.0), 5.0);
  EXPECT_EQ(Percentile(v, 100.0), 5.0);
}

TEST(Statistics, PercentileEndpoints) {
  const double v[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_EQ(Percentile(v, 100.0), 4.0);
}

TEST(Statistics, MedianInterpolates) {
  const double v[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 2.5);
}

TEST(Statistics, PercentileUnsortedInput) {
  const double v[] = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 2.5);
}

TEST(Statistics, PercentileRejectsEmptyAndBadP) {
  const std::vector<double> empty;
  EXPECT_THROW((void)Percentile(empty, 50.0), CheckError);
  const double v[] = {1.0};
  EXPECT_THROW((void)Percentile(v, -1.0), CheckError);
  EXPECT_THROW((void)Percentile(v, 101.0), CheckError);
}

TEST(Statistics, PercentileOfSortedMatchesPercentile) {
  const double sorted[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(PercentileOfSorted(sorted, 50.0), Percentile(sorted, 50.0));
  EXPECT_DOUBLE_EQ(PercentileOfSorted(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(sorted, 100.0), 4.0);
  EXPECT_THROW((void)PercentileOfSorted(sorted, 101.0), CheckError);
}

TEST(Statistics, PercentilesMatchIndividualCalls) {
  const double v[] = {4.0, 1.0, 3.0, 2.0, 9.0, 0.5};  // unsorted on purpose
  const double ps[] = {0.0, 50.0, 90.0, 97.0, 99.0, 100.0};
  const std::vector<double> got = Percentiles(v, ps);
  ASSERT_EQ(got.size(), 6u);
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_DOUBLE_EQ(got[i], Percentile(v, ps[i])) << "p" << ps[i];
}

TEST(Statistics, PercentilesRejectEmptyInput) {
  const std::vector<double> empty;
  const double ps[] = {50.0};
  EXPECT_THROW((void)Percentiles(empty, ps), CheckError);
}

TEST(Statistics, SummaryMatchesManualComputation) {
  const double v[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const SampleStats s = Summarize(v);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);
  EXPECT_DOUBLE_EQ(s.p50, Percentile(v, 50.0));
  EXPECT_DOUBLE_EQ(s.p97, Percentile(v, 97.0));
  EXPECT_DOUBLE_EQ(s.p99, Percentile(v, 99.0));
}

TEST(Statistics, GeometricMeanOfPowers) {
  const double v[] = {1.0, 4.0};
  EXPECT_NEAR(GeometricMean(v), 2.0, 1e-12);
}

TEST(Statistics, GeometricMeanRejectsNonPositive) {
  const double v[] = {1.0, 0.0};
  EXPECT_THROW((void)GeometricMean(v), CheckError);
}

// Property: percentile is monotone in p.
class PercentileMonotone : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotone, MonotoneInP) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> v(101);
  for (auto& x : v) x = rng.NextDouble() * 100.0;
  double prev = -1.0;
  for (double p = 0.0; p <= 100.0; p += 5.0) {
    const double q = Percentile(v, p);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotone,
                         ::testing::Range(1, 11));

// ---- table ----


TEST(BarChart, ScalesToMaxValue) {
  BarChart c("t", "ms");
  c.Add("a", 10.0);
  c.Add("b", 5.0);
  const std::string out = c.Render(10);
  EXPECT_NE(out.find(std::string(10, '#')), std::string::npos);
  EXPECT_NE(out.find(std::string(5, '#') + " 5.00 ms"), std::string::npos);
}

TEST(BarChart, TinyNonZeroValueStillVisible) {
  BarChart c("", "");
  c.Add("big", 1000.0);
  c.Add("tiny", 0.001);
  const std::string out = c.Render(20);
  // Tiny bars render a "||" marker rather than vanishing entirely.
  EXPECT_NE(out.find("tiny || 0.00"), std::string::npos);
}

TEST(BarChart, RejectsNegativeValues) {
  BarChart c("", "");
  EXPECT_THROW(c.Add("x", -1.0), CheckError);
}

TEST(BarChart, GapInsertsBlankLine) {
  BarChart c("", "");
  c.Add("a", 1.0);
  c.AddGap();
  c.Add("b", 1.0);
  const std::string out = c.Render(8);
  EXPECT_NE(out.find("\n\n"), std::string::npos);
}

TEST(Table, RendersHeaderAndRows) {
  TextTable t("title");
  t.SetHeader({"a", "bb"});
  t.AddRow({"1", "2"});
  const std::string s = t.Render();
  EXPECT_NE(s.find("title"), std::string::npos);
  EXPECT_NE(s.find("| a "), std::string::npos);
  EXPECT_NE(s.find("| 1 "), std::string::npos);
}

TEST(Table, PadsRaggedRows) {
  TextTable t;
  t.SetHeader({"a", "b", "c"});
  t.AddRow({"only-one"});
  EXPECT_NO_THROW((void)t.Render());
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatMs(0.00223), "2.23 ms");
  EXPECT_EQ(FormatPercent(0.985, 1), "98.5%");
}

}  // namespace
}  // namespace mlpm
