// Portable scalar microkernels — the fallback table and the bit-exactness
// oracle.  The GEMM row workers are the register-tiled kernels that used to
// live in int8_gemm.cpp, moved here verbatim; dot4_f32 and dw_madd_f32
// reproduce the executor's original conv/FC/depthwise accumulation order
// element for element, so a forced scalar run matches the pre-registry
// engine bit for bit.
#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "infer/kernels/registry.h"

namespace mlpm::infer::kernels {
namespace {

// Register tile: 4x4 output blocks, 16 independent accumulators.  Each
// accumulator sums its k terms in increasing order, so every output element
// sees exactly the same operation sequence as the scalar reference kernel.
constexpr std::size_t kTile = 4;
// K-blocking keeps the streamed A/B row segments L1-resident for large k.
// Accumulators round-trip through C between blocks, which preserves values
// exactly (a float store/load is value-preserving).
constexpr std::size_t kKBlock = 512;

void GemmF32RowsPortable(const float* a, const float* b_t,
                         std::int64_t i_begin, std::int64_t i_end,
                         std::size_t n, std::size_t k, float* c) {
  std::fill(c + static_cast<std::size_t>(i_begin) * n,
            c + static_cast<std::size_t>(i_end) * n, 0.0f);
  for (std::size_t kb = 0; kb < k; kb += kKBlock) {
    const std::size_t kc = std::min(kKBlock, k - kb);
    std::int64_t i = i_begin;
    for (; i + static_cast<std::int64_t>(kTile) <= i_end; i += kTile) {
      const float* a0 = a + static_cast<std::size_t>(i) * k + kb;
      const float* a1 = a0 + k;
      const float* a2 = a1 + k;
      const float* a3 = a2 + k;
      std::size_t j = 0;
      for (; j + kTile <= n; j += kTile) {
        const float* b0 = b_t + j * k + kb;
        const float* b1 = b0 + k;
        const float* b2 = b1 + k;
        const float* b3 = b2 + k;
        float* c0 = c + static_cast<std::size_t>(i) * n + j;
        float* c1 = c0 + n;
        float* c2 = c1 + n;
        float* c3 = c2 + n;
        float acc00 = c0[0], acc01 = c0[1], acc02 = c0[2], acc03 = c0[3];
        float acc10 = c1[0], acc11 = c1[1], acc12 = c1[2], acc13 = c1[3];
        float acc20 = c2[0], acc21 = c2[1], acc22 = c2[2], acc23 = c2[3];
        float acc30 = c3[0], acc31 = c3[1], acc32 = c3[2], acc33 = c3[3];
        for (std::size_t kk = 0; kk < kc; ++kk) {
          const float av0 = a0[kk], av1 = a1[kk], av2 = a2[kk], av3 = a3[kk];
          const float bv0 = b0[kk], bv1 = b1[kk], bv2 = b2[kk], bv3 = b3[kk];
          acc00 += av0 * bv0; acc01 += av0 * bv1;
          acc02 += av0 * bv2; acc03 += av0 * bv3;
          acc10 += av1 * bv0; acc11 += av1 * bv1;
          acc12 += av1 * bv2; acc13 += av1 * bv3;
          acc20 += av2 * bv0; acc21 += av2 * bv1;
          acc22 += av2 * bv2; acc23 += av2 * bv3;
          acc30 += av3 * bv0; acc31 += av3 * bv1;
          acc32 += av3 * bv2; acc33 += av3 * bv3;
        }
        c0[0] = acc00; c0[1] = acc01; c0[2] = acc02; c0[3] = acc03;
        c1[0] = acc10; c1[1] = acc11; c1[2] = acc12; c1[3] = acc13;
        c2[0] = acc20; c2[1] = acc21; c2[2] = acc22; c2[3] = acc23;
        c3[0] = acc30; c3[1] = acc31; c3[2] = acc32; c3[3] = acc33;
      }
      for (; j < n; ++j) {
        const float* bj = b_t + j * k + kb;
        float s0 = c[static_cast<std::size_t>(i) * n + j];
        float s1 = c[static_cast<std::size_t>(i + 1) * n + j];
        float s2 = c[static_cast<std::size_t>(i + 2) * n + j];
        float s3 = c[static_cast<std::size_t>(i + 3) * n + j];
        for (std::size_t kk = 0; kk < kc; ++kk) {
          const float bv = bj[kk];
          s0 += a0[kk] * bv;
          s1 += a1[kk] * bv;
          s2 += a2[kk] * bv;
          s3 += a3[kk] * bv;
        }
        c[static_cast<std::size_t>(i) * n + j] = s0;
        c[static_cast<std::size_t>(i + 1) * n + j] = s1;
        c[static_cast<std::size_t>(i + 2) * n + j] = s2;
        c[static_cast<std::size_t>(i + 3) * n + j] = s3;
      }
    }
    for (; i < i_end; ++i) {
      const float* ai = a + static_cast<std::size_t>(i) * k + kb;
      for (std::size_t j = 0; j < n; ++j) {
        const float* bj = b_t + j * k + kb;
        float s = c[static_cast<std::size_t>(i) * n + j];
        for (std::size_t kk = 0; kk < kc; ++kk) s += ai[kk] * bj[kk];
        c[static_cast<std::size_t>(i) * n + j] = s;
      }
    }
  }
}

// The integer kernel folds the zero points out of the inner loop:
//   sum_k (a-az)(b-bz) = sum_k a*b - az*sum_k b - bz*sum_k a + k*az*bz.
// All arithmetic runs modulo 2^32 in uint32 (the final value fits int32
// exactly as in the reference kernel; C++20 defines the modular
// unsigned->signed conversion), leaving a plain u8*u8 dot product inside.
void GemmU8RowsPortable(const std::uint8_t* a, const std::uint8_t* b_t,
                        std::int64_t i_begin, std::int64_t i_end,
                        std::size_t n, std::size_t k, std::uint32_t a_zp,
                        std::uint32_t b_zp, const std::uint32_t* b_sums,
                        std::int32_t* c) {
  const std::uint32_t kzz =
      static_cast<std::uint32_t>(k) * a_zp * b_zp;
  const auto row_sum = [k](const std::uint8_t* row) {
    std::uint32_t s = 0;
    for (std::size_t kk = 0; kk < k; ++kk) s += row[kk];
    return s;
  };
  std::int64_t i = i_begin;
  for (; i + static_cast<std::int64_t>(kTile) <= i_end; i += kTile) {
    const std::uint8_t* a0 = a + static_cast<std::size_t>(i) * k;
    const std::uint8_t* a1 = a0 + k;
    const std::uint8_t* a2 = a1 + k;
    const std::uint8_t* a3 = a2 + k;
    const std::uint32_t base0 = kzz - b_zp * row_sum(a0);
    const std::uint32_t base1 = kzz - b_zp * row_sum(a1);
    const std::uint32_t base2 = kzz - b_zp * row_sum(a2);
    const std::uint32_t base3 = kzz - b_zp * row_sum(a3);
    std::size_t j = 0;
    for (; j + kTile <= n; j += kTile) {
      const std::uint8_t* b0 = b_t + j * k;
      const std::uint8_t* b1 = b0 + k;
      const std::uint8_t* b2 = b1 + k;
      const std::uint8_t* b3 = b2 + k;
      std::uint32_t acc[kTile][kTile] = {};
      for (std::size_t kk = 0; kk < k; ++kk) {
        const std::uint32_t av0 = a0[kk], av1 = a1[kk], av2 = a2[kk],
                            av3 = a3[kk];
        const std::uint32_t bv0 = b0[kk], bv1 = b1[kk], bv2 = b2[kk],
                            bv3 = b3[kk];
        acc[0][0] += av0 * bv0; acc[0][1] += av0 * bv1;
        acc[0][2] += av0 * bv2; acc[0][3] += av0 * bv3;
        acc[1][0] += av1 * bv0; acc[1][1] += av1 * bv1;
        acc[1][2] += av1 * bv2; acc[1][3] += av1 * bv3;
        acc[2][0] += av2 * bv0; acc[2][1] += av2 * bv1;
        acc[2][2] += av2 * bv2; acc[2][3] += av2 * bv3;
        acc[3][0] += av3 * bv0; acc[3][1] += av3 * bv1;
        acc[3][2] += av3 * bv2; acc[3][3] += av3 * bv3;
      }
      const std::uint32_t bases[kTile] = {base0, base1, base2, base3};
      for (std::size_t r = 0; r < kTile; ++r)
        for (std::size_t q = 0; q < kTile; ++q)
          c[(static_cast<std::size_t>(i) + r) * n + j + q] =
              static_cast<std::int32_t>(acc[r][q] + bases[r] -
                                        a_zp * b_sums[j + q]);
    }
    for (; j < n; ++j) {
      const std::uint8_t* bj = b_t + j * k;
      std::uint32_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const std::uint32_t bv = bj[kk];
        s0 += a0[kk] * bv;
        s1 += a1[kk] * bv;
        s2 += a2[kk] * bv;
        s3 += a3[kk] * bv;
      }
      const std::uint32_t col = a_zp * b_sums[j];
      c[static_cast<std::size_t>(i) * n + j] =
          static_cast<std::int32_t>(s0 + base0 - col);
      c[static_cast<std::size_t>(i + 1) * n + j] =
          static_cast<std::int32_t>(s1 + base1 - col);
      c[static_cast<std::size_t>(i + 2) * n + j] =
          static_cast<std::int32_t>(s2 + base2 - col);
      c[static_cast<std::size_t>(i + 3) * n + j] =
          static_cast<std::int32_t>(s3 + base3 - col);
    }
  }
  for (; i < i_end; ++i) {
    const std::uint8_t* ai = a + static_cast<std::size_t>(i) * k;
    const std::uint32_t base = kzz - b_zp * row_sum(ai);
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint8_t* bj = b_t + j * k;
      std::uint32_t s = 0;
      for (std::size_t kk = 0; kk < k; ++kk)
        s += static_cast<std::uint32_t>(ai[kk]) * bj[kk];
      c[static_cast<std::size_t>(i) * n + j] =
          static_cast<std::int32_t>(s + base - a_zp * b_sums[j]);
    }
  }
}

void RowSumsU8Portable(const std::uint8_t* b_t, std::int64_t j_begin,
                       std::int64_t j_end, std::size_t k,
                       std::uint32_t* sums) {
  for (std::int64_t j = j_begin; j < j_end; ++j) {
    const std::uint8_t* row = b_t + static_cast<std::size_t>(j) * k;
    std::uint32_t s = 0;
    for (std::size_t kk = 0; kk < k; ++kk) s += row[kk];
    sums[j] = s;
  }
}

// Accumulates directly into the four running sums, one element at a time —
// the exact order of the executor's original 4-output-channel loops.
void Dot4F32Portable(const float* x, const float* w0, const float* w1,
                     const float* w2, const float* w3, std::int64_t len,
                     float* acc) {
  float a0 = acc[0], a1 = acc[1], a2 = acc[2], a3 = acc[3];
  for (std::int64_t i = 0; i < len; ++i) {
    const float v = x[i];
    a0 += v * w0[i];
    a1 += v * w1[i];
    a2 += v * w2[i];
    a3 += v * w3[i];
  }
  acc[0] = a0;
  acc[1] = a1;
  acc[2] = a2;
  acc[3] = a3;
}

void DwMaddF32Portable(const float* x, const float* w, float* acc,
                       std::int64_t channels) {
  for (std::int64_t c = 0; c < channels; ++c) acc[c] += x[c] * w[c];
}

}  // namespace

const KernelTable& ScalarKernels() {
  static constexpr KernelTable kTable = {
      KernelIsa::kScalar, "scalar",       GemmF32RowsPortable,
      GemmU8RowsPortable, RowSumsU8Portable, Dot4F32Portable,
      DwMaddF32Portable};
  return kTable;
}

}  // namespace mlpm::infer::kernels
