// TransformPass interface and per-run pass context.
//
// A pass is a pattern-based rewrite over a MutableGraph.  Each pass declares
// the invariants it preserves; the declaration is the pass's side of the
// verification contract (DESIGN.md §14) — the PassManager's post-pass gate
// re-proves every declared invariant statically (XFM001-XFM007) and rolls
// the pass back on violation, so a declaration is never taken on faith.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "infer/executor.h"
#include "infer/weights.h"
#include "transform/ir_edit.h"

namespace mlpm::transform {

// Invariants a pass can declare.  Each maps to one XFM diagnostic the
// PassManager checks after the pass runs.
enum class Invariant : std::uint8_t {
  kNoDanglingEdges,   // XFM001: every edge resolves; storage order executable
  kShapeContract,     // XFM002: surviving tensors keep their shapes
  kGraphOutputs,      // XFM003: graph outputs keep position and shape
  kQuantContract,     // XFM004: no quantization point moves under INT8/FP16
  kAliasSafety,       // XFM005: memory-plan aliasing stays in the legal set
  kSubgraphLocality,  // XFM006: only the matched subgraph is touched
  kCleanDiagnostics,  // XFM007: no new analysis diagnostics
};

[[nodiscard]] std::string_view ToString(Invariant inv);

// Every shipped pass preserves the full set; a future pass that cannot
// (e.g. a layout rewrite that legally changes shapes) would declare less
// and the PassManager would refuse to gate what it cannot verify.
inline constexpr std::array<Invariant, 7> kAllInvariants = {
    Invariant::kNoDanglingEdges, Invariant::kShapeContract,
    Invariant::kGraphOutputs,    Invariant::kQuantContract,
    Invariant::kAliasSafety,     Invariant::kSubgraphLocality,
    Invariant::kCleanDiagnostics,
};

// State threaded through one PassManager invocation.  The numerics mode and
// the synthetic-activation set persist across passes; the per-pass fields
// (rewrites, skipped, touched, staged weights) are reset between passes.
struct PassContext {
  infer::NumericsMode mode = infer::NumericsMode::kFp32;

  // Values of the run's existing weights (constant folding reads operands).
  const infer::WeightStore* weights = nullptr;
  // Weights added by the current pass; merged into the run's store when the
  // pass commits, dropped when it rolls back.
  infer::WeightStore staged_weights;

  // kActivation nodes synthesized by the canonicalization split
  // (split-activations).  Re-fusing one of these is an exact round trip in
  // every numerics mode, so the fusion pass accepts them unconditionally.
  std::unordered_set<std::string> synthetic_activations;

  // Per-pass bookkeeping.
  std::size_t rewrites = 0;
  std::size_t skipped = 0;              // rewrites refused by a numerics gate
  std::vector<std::string> skip_notes;  // rendered as XFM004 notes
  std::unordered_set<std::string> touched;  // node names the pass edited

  // Edge replacements the pass performed (old tensor name -> new tensor
  // name).  The structural diff resolves untouched consumers' inputs through
  // this map, so a declared rewiring does not read as an illegal edit of the
  // consumer — while an undeclared one, or a redirect onto a tensor of a
  // different shape, still does.
  std::unordered_map<std::string, std::string> edge_renames;

  void Touch(const std::string& node_name) { touched.insert(node_name); }
  void Skip(std::string why) {
    ++skipped;
    skip_notes.push_back(std::move(why));
  }
  // Weight lookup across the run store and this pass's staged additions;
  // nullptr when the name is unknown to both.
  [[nodiscard]] const infer::Tensor* FindWeight(
      const std::string& name) const {
    if (staged_weights.Contains(name)) return &staged_weights.Get(name);
    if (weights != nullptr && weights->Contains(name))
      return &weights->Get(name);
    return nullptr;
  }
};

class TransformPass {
 public:
  TransformPass() = default;
  TransformPass(const TransformPass&) = delete;
  TransformPass& operator=(const TransformPass&) = delete;
  virtual ~TransformPass() = default;

  // Stable pass name ("fuse-conv-activation"); lands in the journal, the
  // CSV export and the metrics registry, so it is part of the repo's
  // artifact contract.
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual std::span<const Invariant> preserved() const = 0;
  virtual void Run(MutableGraph& g, PassContext& ctx) const = 0;
};

}  // namespace mlpm::transform
