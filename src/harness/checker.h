// Submission checker (paper §4.3, §6.2): validates a submission's unedited
// LoadGen logs and accuracy results against the run rules before it can be
// published.  The checker re-derives every summary statistic from the raw
// issue/completion events rather than trusting reported numbers.
#pragma once

#include <string>
#include <vector>

#include "core/loadgen.h"
#include "harness/run_session.h"
#include "quant/rules.h"

namespace mlpm::harness {

struct CheckReport {
  bool valid = true;
  std::vector<std::string> problems;

  void Problem(std::string what) {
    valid = false;
    problems.push_back(std::move(what));
  }
};

// Validates one performance log against the run rules:
//   * official seed, matching scenario/mode fields;
//   * every issued query completed exactly once, completions not before
//     issues, single-stream strictly serialized;
//   * minimum query count and duration met (single-stream);
//   * offline sample count == 24,576;
//   * reported percentile latency / throughput match values recomputed
//     from the raw events (within 0.1%).
[[nodiscard]] CheckReport CheckPerformanceLog(
    const std::string& serialized_log, const loadgen::TestSettings& expected);

// Validates a full task run: performance log(s), quality threshold, and
// the calibration set (must be a subset of the approved indices).
[[nodiscard]] CheckReport CheckTaskRun(const TaskRunResult& task,
                                       const loadgen::TestSettings& expected);

// Validates a whole submission; aggregates per-task reports.
[[nodiscard]] CheckReport CheckSubmission(
    const SubmissionResult& submission,
    const loadgen::TestSettings& expected);

}  // namespace mlpm::harness
