#include "graph/liveness.h"

namespace mlpm::graph {

std::vector<LiveInterval> ComputeLiveness(const Graph& g) {
  std::vector<LiveInterval> live(g.tensors().size());
  for (std::size_t id = 0; id < g.tensors().size(); ++id)
    live[id].is_activation =
        g.tensor(static_cast<TensorId>(id)).kind == TensorKind::kActivation;

  const auto node_count = static_cast<std::int32_t>(g.nodes().size());
  for (std::int32_t i = 0; i < node_count; ++i) {
    const Node& n = g.nodes()[static_cast<std::size_t>(i)];
    if (n.op != OpType::kInput)
      live[static_cast<std::size_t>(n.output)].def = i;
    for (const TensorId in : n.inputs) {
      auto& interval = live[static_cast<std::size_t>(in)];
      interval.last_use = std::max(interval.last_use, i);
    }
  }
  // Graph inputs are live at entry even though a kInput node "produces"
  // them; graph outputs must survive until after the last node.
  for (const TensorId id : g.input_ids())
    live[static_cast<std::size_t>(id)].def = -1;
  for (const TensorId id : g.output_ids())
    live[static_cast<std::size_t>(id)].last_use = node_count;
  return live;
}

}  // namespace mlpm::graph
