// QuerySampleLibrary adapter over a TaskDataset: stages sample inputs into
// RAM on LoadSamplesToRam so input generation never lands inside the timed
// region (paper Fig. 4 — the app "queries input samples for the task, loads
// them to memory").
#pragma once

#include <unordered_map>

#include "core/query.h"
#include "datasets/task_dataset.h"

namespace mlpm::loadgen {

class DatasetQsl final : public QuerySampleLibrary {
 public:
  // `dataset` must outlive the QSL.  `performance_sample_count` of 0 means
  // the whole data set fits.
  explicit DatasetQsl(const datasets::TaskDataset& dataset,
                      std::size_t performance_sample_count = 0);

  [[nodiscard]] std::string_view name() const override { return "dataset_qsl"; }
  [[nodiscard]] std::size_t TotalSampleCount() const override;
  [[nodiscard]] std::size_t PerformanceSampleCount() const override;
  void LoadSamplesToRam(std::span<const std::size_t> indices) override;
  void UnloadSamplesFromRam(std::span<const std::size_t> indices) override;

  // Staged inputs for a loaded sample; throws if the sample is not loaded
  // (catches SUT/LoadGen protocol violations in tests).
  [[nodiscard]] const std::vector<infer::Tensor>& Loaded(
      std::size_t index) const;

 private:
  const datasets::TaskDataset& dataset_;
  std::size_t performance_sample_count_;
  std::unordered_map<std::size_t, std::vector<infer::Tensor>> loaded_;
};

}  // namespace mlpm::loadgen
