# Empty dependencies file for calibration_anchor_test.
# This may be replaced when dependencies are built.
