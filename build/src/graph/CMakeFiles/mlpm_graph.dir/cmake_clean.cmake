file(REMOVE_RECURSE
  "CMakeFiles/mlpm_graph.dir/cost.cpp.o"
  "CMakeFiles/mlpm_graph.dir/cost.cpp.o.d"
  "CMakeFiles/mlpm_graph.dir/graph.cpp.o"
  "CMakeFiles/mlpm_graph.dir/graph.cpp.o.d"
  "CMakeFiles/mlpm_graph.dir/serialize.cpp.o"
  "CMakeFiles/mlpm_graph.dir/serialize.cpp.o.d"
  "CMakeFiles/mlpm_graph.dir/summary.cpp.o"
  "CMakeFiles/mlpm_graph.dir/summary.cpp.o.d"
  "CMakeFiles/mlpm_graph.dir/validate.cpp.o"
  "CMakeFiles/mlpm_graph.dir/validate.cpp.o.d"
  "libmlpm_graph.a"
  "libmlpm_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlpm_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
