file(REMOVE_RECURSE
  "libmlpm_harness.a"
)
