#include "metrics/miou.h"

#include "common/check.h"

namespace mlpm::metrics {

MIoUAccumulator::MIoUAccumulator(int num_classes, int ignore_label)
    : num_classes_(num_classes),
      ignore_label_(ignore_label),
      confusion_(static_cast<std::size_t>(num_classes) *
                     static_cast<std::size_t>(num_classes),
                 0) {
  Expects(num_classes > 0, "need at least one class");
}

void MIoUAccumulator::Add(std::span<const int> predictions,
                          std::span<const int> labels) {
  Expects(predictions.size() == labels.size(),
          "prediction / label size mismatch");
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const int gt = labels[i];
    const int pr = predictions[i];
    if (gt == ignore_label_) continue;
    Expects(gt >= 0 && gt < num_classes_, "label out of range");
    Expects(pr >= 0 && pr < num_classes_, "prediction out of range");
    ++confusion_[static_cast<std::size_t>(gt) *
                     static_cast<std::size_t>(num_classes_) +
                 static_cast<std::size_t>(pr)];
  }
}

std::vector<double> MIoUAccumulator::PerClassIoU() const {
  std::vector<double> iou(static_cast<std::size_t>(num_classes_), 0.0);
  for (int c = 0; c < num_classes_; ++c) {
    std::int64_t tp = 0, fp = 0, fn = 0;
    for (int o = 0; o < num_classes_; ++o) {
      const auto gt_c_pred_o =
          confusion_[static_cast<std::size_t>(c) *
                         static_cast<std::size_t>(num_classes_) +
                     static_cast<std::size_t>(o)];
      const auto gt_o_pred_c =
          confusion_[static_cast<std::size_t>(o) *
                         static_cast<std::size_t>(num_classes_) +
                     static_cast<std::size_t>(c)];
      if (o == c) {
        tp = gt_c_pred_o;
      } else {
        fn += gt_c_pred_o;
        fp += gt_o_pred_c;
      }
    }
    const std::int64_t uni = tp + fp + fn;
    iou[static_cast<std::size_t>(c)] =
        uni > 0 ? static_cast<double>(tp) / static_cast<double>(uni) : 0.0;
  }
  return iou;
}

double MIoUAccumulator::MeanIoU() const {
  double sum = 0.0;
  int present = 0;
  const std::vector<double> iou = PerClassIoU();
  for (int c = 0; c < num_classes_; ++c) {
    if (c == ignore_label_) continue;
    // A class participates if it appears in GT or predictions.
    std::int64_t uni = 0;
    for (int o = 0; o < num_classes_; ++o) {
      uni += confusion_[static_cast<std::size_t>(c) *
                            static_cast<std::size_t>(num_classes_) +
                        static_cast<std::size_t>(o)];
      if (o != c)
        uni += confusion_[static_cast<std::size_t>(o) *
                              static_cast<std::size_t>(num_classes_) +
                          static_cast<std::size_t>(c)];
    }
    if (uni == 0) continue;
    sum += iou[static_cast<std::size_t>(c)];
    ++present;
  }
  return present > 0 ? sum / present : 0.0;
}

}  // namespace mlpm::metrics
