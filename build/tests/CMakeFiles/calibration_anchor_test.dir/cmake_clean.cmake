file(REMOVE_RECURSE
  "CMakeFiles/calibration_anchor_test.dir/calibration_anchor_test.cpp.o"
  "CMakeFiles/calibration_anchor_test.dir/calibration_anchor_test.cpp.o.d"
  "calibration_anchor_test"
  "calibration_anchor_test.pdb"
  "calibration_anchor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibration_anchor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
