// IEEE-754 binary16 conversion used to *simulate* FP16 numerics.
//
// The executors keep all storage in float but round values through half
// precision when a model runs in FP16 mode (paper §7.5: NLP submissions use
// FP16 on mobile GPUs).  Round-to-nearest-even, with correct handling of
// overflow to infinity and subnormals.
#pragma once

#include <cstdint>

namespace mlpm {

// Convert a float to the nearest binary16 bit pattern.
[[nodiscard]] std::uint16_t FloatToHalfBits(float f);

// Convert a binary16 bit pattern back to float (exact).
[[nodiscard]] float HalfBitsToFloat(std::uint16_t h);

// Round-trip a float through binary16 (the FP16 simulation primitive).
[[nodiscard]] inline float RoundToHalf(float f) {
  return HalfBitsToFloat(FloatToHalfBits(f));
}

}  // namespace mlpm
