// Shape/dtype dataflow inference (SHAPE001-SHAPE004).
//
// Recomputes every node's output shape from its inputs and attributes —
// independently of GraphBuilder, which is the point: models arriving via
// deserialization or composition carry *recorded* shapes that nothing has
// re-derived.  Per node the pass checks, in order:
//   SHAPE002  input/weight arity and the attrs variant match the op;
//   SHAPE003  operands satisfy the op's rank/shape/axis constraints;
//   SHAPE004  weight tensor shapes agree with the attributes;
//   SHAPE001  the recorded output shape equals the inferred one.
// A node that fails an earlier stage skips the later ones (the inferred
// shape would be meaningless), but every node is always visited.
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "analysis/passes.h"

namespace mlpm::analysis {
namespace {

using graph::Graph;
using graph::Node;
using graph::OpType;
using graph::Padding;
using graph::TensorShape;

// Per-node checking context; Fail* helpers report and mark the node bad.
class NodeChecker {
 public:
  NodeChecker(const Graph& g, const Node& n, std::size_t index,
              DiagnosticEngine& de)
      : g_(g), n_(n), de_(de),
        src_(NodeSource(n.name, static_cast<std::int32_t>(index))) {}

  [[nodiscard]] bool ok() const { return ok_; }

  bool RequireArity(std::size_t inputs, std::size_t weights) {
    if (n_.inputs.size() != inputs) {
      Fail("SHAPE002", std::string(ToString(n_.op)) + " expects " +
                           std::to_string(inputs) + " input(s), has " +
                           std::to_string(n_.inputs.size()));
      return false;
    }
    if (n_.weights.size() != weights) {
      Fail("SHAPE002", std::string(ToString(n_.op)) + " expects " +
                           std::to_string(weights) + " weight tensor(s), has " +
                           std::to_string(n_.weights.size()));
      return false;
    }
    return true;
  }

  template <typename Attrs>
  const Attrs* RequireAttrs() {
    const Attrs* a = std::get_if<Attrs>(&n_.attrs);
    if (a == nullptr)
      Fail("SHAPE002", std::string(ToString(n_.op)) +
                           " carries the wrong attribute record");
    return a;
  }

  [[nodiscard]] const TensorShape& In(std::size_t i) const {
    return g_.tensor(n_.inputs[i]).shape;
  }
  [[nodiscard]] const TensorShape& Weight(std::size_t i) const {
    return g_.tensor(n_.weights[i]).shape;
  }

  void Constraint(bool cond, const std::string& what) {
    if (!cond) Fail("SHAPE003", what);
  }

  void RequireWeightShape(std::size_t i, const TensorShape& expected,
                          const std::string& role) {
    if (!(Weight(i) == expected))
      Fail("SHAPE004", role + " weight '" + g_.tensor(n_.weights[i]).name +
                           "' has shape " + Weight(i).ToString() +
                           ", expected " + expected.ToString());
  }

  // Final stage: recorded output shape vs the inferred one.
  void Infer(const TensorShape& expected) {
    if (!ok_) return;
    const TensorShape& recorded = g_.tensor(n_.output).shape;
    if (!(recorded == expected))
      Fail("SHAPE001", "recorded output shape " + recorded.ToString() +
                           " disagrees with inferred " + expected.ToString());
  }

 private:
  void Fail(std::string_view code, std::string what) {
    ok_ = false;
    de_.Report(code, src_, std::move(what));
  }

  const Graph& g_;
  const Node& n_;
  DiagnosticEngine& de_;
  SourceRef src_;
  bool ok_ = true;
};

// ConvOutDim without the throwing preconditions; nullopt = infeasible.
std::optional<std::int64_t> SafeConvOutDim(std::int64_t in, int kernel,
                                           int stride, int dilation,
                                           Padding pad) {
  if (in <= 0 || kernel <= 0 || stride <= 0 || dilation <= 0)
    return std::nullopt;
  const std::int64_t eff_k =
      static_cast<std::int64_t>(dilation) * (kernel - 1) + 1;
  if (pad == Padding::kSame) return (in + stride - 1) / stride;
  if (in < eff_k) return std::nullopt;
  return (in - eff_k) / stride + 1;
}

void CheckConv2d(NodeChecker& c) {
  const auto* a = c.RequireAttrs<graph::Conv2dAttrs>();
  if (a == nullptr || !c.RequireArity(1, 2)) return;
  const TensorShape& in = c.In(0);
  c.Constraint(in.rank() == 4, "Conv2d input must be NHWC, got rank " +
                                   std::to_string(in.rank()));
  c.Constraint(a->out_channels > 0 && a->kernel_h > 0 && a->kernel_w > 0 &&
                   a->stride > 0 && a->dilation > 0,
               "Conv2d attributes must be positive");
  if (!c.ok()) return;
  const auto oh = SafeConvOutDim(in.height(), a->kernel_h, a->stride,
                                 a->dilation, a->padding);
  const auto ow = SafeConvOutDim(in.width(), a->kernel_w, a->stride,
                                 a->dilation, a->padding);
  c.Constraint(oh.has_value() && ow.has_value(),
               "valid padding requires input >= effective kernel");
  if (!c.ok()) return;
  c.RequireWeightShape(0,
                       TensorShape({a->out_channels, a->kernel_h, a->kernel_w,
                                    in.channels()}),
                       "kernel");
  c.RequireWeightShape(1, TensorShape({a->out_channels}), "bias");
  c.Infer(TensorShape({in.batch(), *oh, *ow, a->out_channels}));
}

void CheckDepthwiseConv2d(NodeChecker& c) {
  const auto* a = c.RequireAttrs<graph::DepthwiseConv2dAttrs>();
  if (a == nullptr || !c.RequireArity(1, 2)) return;
  const TensorShape& in = c.In(0);
  c.Constraint(in.rank() == 4, "DepthwiseConv2d input must be NHWC, got rank " +
                                   std::to_string(in.rank()));
  c.Constraint(a->kernel_h > 0 && a->kernel_w > 0 && a->stride > 0 &&
                   a->dilation > 0,
               "DepthwiseConv2d attributes must be positive");
  if (!c.ok()) return;
  const auto oh = SafeConvOutDim(in.height(), a->kernel_h, a->stride,
                                 a->dilation, a->padding);
  const auto ow = SafeConvOutDim(in.width(), a->kernel_w, a->stride,
                                 a->dilation, a->padding);
  c.Constraint(oh.has_value() && ow.has_value(),
               "valid padding requires input >= effective kernel");
  if (!c.ok()) return;
  c.RequireWeightShape(
      0, TensorShape({in.channels(), a->kernel_h, a->kernel_w}), "kernel");
  c.RequireWeightShape(1, TensorShape({in.channels()}), "bias");
  c.Infer(TensorShape({in.batch(), *oh, *ow, in.channels()}));
}

void CheckFullyConnected(NodeChecker& c) {
  const auto* a = c.RequireAttrs<graph::FullyConnectedAttrs>();
  if (a == nullptr || !c.RequireArity(1, 2)) return;
  const TensorShape& in = c.In(0);
  c.Constraint(in.rank() >= 1, "FullyConnected input must have rank >= 1");
  c.Constraint(a->out_features > 0,
               "FullyConnected out_features must be positive");
  if (!c.ok()) return;
  const std::int64_t in_features = in.dim(in.rank() - 1);
  c.RequireWeightShape(0, TensorShape({a->out_features, in_features}),
                       "kernel");
  c.RequireWeightShape(1, TensorShape({a->out_features}), "bias");
  std::vector<std::int64_t> dims = in.dims();
  dims.back() = a->out_features;
  c.Infer(TensorShape(std::move(dims)));
}

void CheckElementwiseBinary(NodeChecker& c) {
  if (!c.RequireArity(2, 0)) return;
  c.Constraint(c.In(0) == c.In(1),
               "elementwise operands must have equal shapes, got " +
                   c.In(0).ToString() + " vs " + c.In(1).ToString());
  if (!c.ok()) return;
  c.Infer(c.In(0));
}

void CheckPool(NodeChecker& c) {
  const auto* a = c.RequireAttrs<graph::PoolAttrs>();
  if (a == nullptr || !c.RequireArity(1, 0)) return;
  const TensorShape& in = c.In(0);
  c.Constraint(in.rank() == 4, "pool input must be NHWC, got rank " +
                                   std::to_string(in.rank()));
  c.Constraint(a->kernel > 0 && a->stride > 0,
               "pool kernel and stride must be positive");
  if (!c.ok()) return;
  const auto oh =
      SafeConvOutDim(in.height(), a->kernel, a->stride, 1, a->padding);
  const auto ow =
      SafeConvOutDim(in.width(), a->kernel, a->stride, 1, a->padding);
  c.Constraint(oh.has_value() && ow.has_value(),
               "valid padding requires input >= kernel");
  if (!c.ok()) return;
  c.Infer(TensorShape({in.batch(), *oh, *ow, in.channels()}));
}

void CheckGlobalAvgPool(NodeChecker& c) {
  if (!c.RequireArity(1, 0)) return;
  const TensorShape& in = c.In(0);
  c.Constraint(in.rank() == 4, "GlobalAvgPool input must be NHWC");
  if (!c.ok()) return;
  c.Infer(TensorShape({in.batch(), 1, 1, in.channels()}));
}

void CheckResize(NodeChecker& c) {
  const auto* a = c.RequireAttrs<graph::ResizeAttrs>();
  if (a == nullptr || !c.RequireArity(1, 0)) return;
  const TensorShape& in = c.In(0);
  c.Constraint(in.rank() == 4, "ResizeBilinear input must be NHWC");
  c.Constraint(a->out_h > 0 && a->out_w > 0,
               "resize target must be positive");
  if (!c.ok()) return;
  c.Infer(TensorShape({in.batch(), a->out_h, a->out_w, in.channels()}));
}

void CheckConcat(NodeChecker& c, const Node& n) {
  const auto* a = c.RequireAttrs<graph::ConcatAttrs>();
  if (a == nullptr) return;
  if (n.inputs.empty() || !n.weights.empty()) {
    c.RequireArity(n.inputs.empty() ? 1 : n.inputs.size(), 0);
    return;
  }
  const TensorShape& first = c.In(0);
  const auto rank = static_cast<int>(first.rank());
  c.Constraint(a->axis >= -rank && a->axis < rank,
               "Concat axis " + std::to_string(a->axis) +
                   " out of range for rank " + std::to_string(rank));
  if (!c.ok()) return;
  const auto ax =
      static_cast<std::size_t>(a->axis >= 0 ? a->axis : rank + a->axis);
  std::vector<std::int64_t> dims = first.dims();
  std::int64_t cat = 0;
  for (std::size_t i = 0; i < n.inputs.size(); ++i) {
    const TensorShape& s = c.In(i);
    c.Constraint(s.rank() == first.rank(),
                 "Concat operand " + std::to_string(i) + " has rank " +
                     std::to_string(s.rank()) + ", expected " +
                     std::to_string(first.rank()));
    if (!c.ok()) return;
    for (std::size_t d = 0; d < first.rank(); ++d)
      if (d != ax)
        c.Constraint(s.dim(d) == first.dim(d),
                     "Concat operand " + std::to_string(i) +
                         " differs on non-axis dim " + std::to_string(d));
    if (!c.ok()) return;
    cat += s.dim(ax);
  }
  dims[ax] = cat;
  c.Infer(TensorShape(std::move(dims)));
}

void CheckReshape(NodeChecker& c) {
  const auto* a = c.RequireAttrs<graph::ReshapeAttrs>();
  if (a == nullptr || !c.RequireArity(1, 0)) return;
  std::int64_t elements = 1;
  bool positive = true;
  for (const std::int64_t d : a->new_dims) {
    if (d <= 0) positive = false;
    elements *= d;
  }
  c.Constraint(positive, "Reshape dims must be positive");
  if (!c.ok()) return;
  c.Constraint(elements == c.In(0).elements(),
               "Reshape must preserve element count (" +
                   std::to_string(c.In(0).elements()) + " -> " +
                   std::to_string(elements) + ")");
  if (!c.ok()) return;
  c.Infer(TensorShape(a->new_dims));
}

void CheckSoftmax(NodeChecker& c) {
  const auto* a = c.RequireAttrs<graph::SoftmaxAttrs>();
  if (a == nullptr || !c.RequireArity(1, 0)) return;
  const auto rank = static_cast<int>(c.In(0).rank());
  c.Constraint(a->axis >= -rank && a->axis < rank,
               "Softmax axis " + std::to_string(a->axis) +
                   " out of range for rank " + std::to_string(rank));
  if (!c.ok()) return;
  c.Infer(c.In(0));
}

void CheckActivation(NodeChecker& c) {
  if (c.RequireAttrs<graph::ActivationAttrs>() == nullptr ||
      !c.RequireArity(1, 0))
    return;
  c.Infer(c.In(0));
}

void CheckLayerNorm(NodeChecker& c) {
  if (c.RequireAttrs<graph::LayerNormAttrs>() == nullptr ||
      !c.RequireArity(1, 2))
    return;
  const TensorShape& in = c.In(0);
  c.Constraint(in.rank() >= 1, "LayerNorm input must have rank >= 1");
  if (!c.ok()) return;
  const TensorShape feat({in.dim(in.rank() - 1)});
  c.RequireWeightShape(0, feat, "gamma");
  c.RequireWeightShape(1, feat, "beta");
  c.Infer(in);
}

void CheckEmbedding(NodeChecker& c) {
  const auto* a = c.RequireAttrs<graph::EmbeddingAttrs>();
  if (a == nullptr || !c.RequireArity(1, 1)) return;
  const TensorShape& in = c.In(0);
  c.Constraint(in.rank() == 1, "EmbeddingLookup expects [seq_len] token ids");
  c.Constraint(a->vocab_size > 0 && a->embed_dim > 0,
               "EmbeddingLookup dims must be positive");
  if (!c.ok()) return;
  c.RequireWeightShape(0, TensorShape({a->vocab_size, a->embed_dim}),
                       "table");
  c.Infer(TensorShape({in.dim(0), a->embed_dim}));
}

void CheckAttention(NodeChecker& c) {
  const auto* a = c.RequireAttrs<graph::AttentionAttrs>();
  if (a == nullptr || !c.RequireArity(1, 4)) return;
  const TensorShape& in = c.In(0);
  c.Constraint(in.rank() == 2,
               "MultiHeadAttention expects [seq_len, model_dim]");
  c.Constraint(a->num_heads > 0 && a->head_dim > 0,
               "attention dims must be positive");
  if (!c.ok()) return;
  const std::int64_t model_dim = in.dim(1);
  c.Constraint(static_cast<std::int64_t>(a->num_heads) * a->head_dim ==
                   model_dim,
               "heads*head_dim (" +
                   std::to_string(static_cast<std::int64_t>(a->num_heads) *
                                  a->head_dim) +
                   ") must equal model dim (" + std::to_string(model_dim) +
                   ")");
  if (!c.ok()) return;
  const TensorShape proj({model_dim, model_dim});
  const char* roles[] = {"wq", "wk", "wv", "wo"};
  for (std::size_t i = 0; i < 4; ++i) c.RequireWeightShape(i, proj, roles[i]);
  c.Infer(in);
}

void CheckLstm(NodeChecker& c) {
  const auto* a = c.RequireAttrs<graph::LstmAttrs>();
  if (a == nullptr || !c.RequireArity(1, 3)) return;
  const TensorShape& in = c.In(0);
  c.Constraint(in.rank() == 2, "Lstm expects [seq_len, features]");
  c.Constraint(a->hidden_dim > 0, "Lstm hidden dim must be positive");
  if (!c.ok()) return;
  const std::int64_t h = a->hidden_dim;
  c.RequireWeightShape(0, TensorShape({4 * h, in.dim(1)}), "wx");
  c.RequireWeightShape(1, TensorShape({4 * h, h}), "wh");
  c.RequireWeightShape(2, TensorShape({4 * h}), "bias");
  c.Infer(TensorShape({in.dim(0), h}));
}

void CheckConstant(NodeChecker& c) {
  if (c.RequireAttrs<graph::EmptyAttrs>() == nullptr || !c.RequireArity(0, 1))
    return;
  c.Infer(c.Weight(0));
}

}  // namespace

void CheckShapeDataflow(const Graph& g, DiagnosticEngine& de) {
  for (std::size_t ni = 0; ni < g.nodes().size(); ++ni) {
    const Node& n = g.nodes()[ni];
    NodeChecker c(g, n, ni, de);
    switch (n.op) {
      case OpType::kInput:
        de.Report("SHAPE003", NodeSource(n.name, static_cast<std::int32_t>(ni)),
                  "Input is a tensor marker, not an executable node");
        break;
      case OpType::kConv2d: CheckConv2d(c); break;
      case OpType::kDepthwiseConv2d: CheckDepthwiseConv2d(c); break;
      case OpType::kFullyConnected: CheckFullyConnected(c); break;
      case OpType::kAdd:
      case OpType::kMul: CheckElementwiseBinary(c); break;
      case OpType::kAvgPool:
      case OpType::kMaxPool: CheckPool(c); break;
      case OpType::kGlobalAvgPool: CheckGlobalAvgPool(c); break;
      case OpType::kResizeBilinear: CheckResize(c); break;
      case OpType::kConcat: CheckConcat(c, n); break;
      case OpType::kReshape: CheckReshape(c); break;
      case OpType::kSoftmax: CheckSoftmax(c); break;
      case OpType::kActivation: CheckActivation(c); break;
      case OpType::kLayerNorm: CheckLayerNorm(c); break;
      case OpType::kEmbeddingLookup: CheckEmbedding(c); break;
      case OpType::kMultiHeadAttention: CheckAttention(c); break;
      case OpType::kLstm: CheckLstm(c); break;
      case OpType::kConstant: CheckConstant(c); break;
    }
  }
}

}  // namespace mlpm::analysis
