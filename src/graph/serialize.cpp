#include "graph/serialize.h"

#include <sstream>
#include <unordered_map>
#include <variant>

#include "graph/validate.h"

namespace mlpm::graph {
namespace {

const char* OpToken(OpType t) {
  switch (t) {
    case OpType::kInput: return "input_op";
    case OpType::kConv2d: return "conv2d";
    case OpType::kDepthwiseConv2d: return "dwconv2d";
    case OpType::kFullyConnected: return "fc";
    case OpType::kAdd: return "add";
    case OpType::kMul: return "mul";
    case OpType::kAvgPool: return "avgpool";
    case OpType::kMaxPool: return "maxpool";
    case OpType::kGlobalAvgPool: return "gap";
    case OpType::kResizeBilinear: return "resize";
    case OpType::kConcat: return "concat";
    case OpType::kReshape: return "reshape";
    case OpType::kSoftmax: return "softmax";
    case OpType::kActivation: return "act";
    case OpType::kLayerNorm: return "layernorm";
    case OpType::kEmbeddingLookup: return "embedding";
    case OpType::kMultiHeadAttention: return "mha";
    case OpType::kLstm: return "lstm";
    case OpType::kConstant: return "const";
  }
  return "?";
}

OpType OpFromToken(const std::string& s) {
  static const std::unordered_map<std::string, OpType> map = {
      {"input_op", OpType::kInput},
      {"conv2d", OpType::kConv2d},
      {"dwconv2d", OpType::kDepthwiseConv2d},
      {"fc", OpType::kFullyConnected},
      {"add", OpType::kAdd},
      {"mul", OpType::kMul},
      {"avgpool", OpType::kAvgPool},
      {"maxpool", OpType::kMaxPool},
      {"gap", OpType::kGlobalAvgPool},
      {"resize", OpType::kResizeBilinear},
      {"concat", OpType::kConcat},
      {"reshape", OpType::kReshape},
      {"softmax", OpType::kSoftmax},
      {"act", OpType::kActivation},
      {"layernorm", OpType::kLayerNorm},
      {"embedding", OpType::kEmbeddingLookup},
      {"mha", OpType::kMultiHeadAttention},
      {"lstm", OpType::kLstm},
      {"const", OpType::kConstant},
  };
  const auto it = map.find(s);
  Expects(it != map.end(), "unknown op token: " + s);
  return it->second;
}

int ActToInt(Activation a) { return static_cast<int>(a); }
Activation ActFromInt(int v) {
  Expects(v >= 0 && v <= static_cast<int>(Activation::kGelu),
          "bad activation code");
  return static_cast<Activation>(v);
}

void WriteAttrs(std::ostream& os, const Node& n) {
  switch (n.op) {
    case OpType::kConv2d: {
      const auto& a = std::get<Conv2dAttrs>(n.attrs);
      os << "oc=" << a.out_channels << " k=" << a.kernel_h
         << " s=" << a.stride << " d=" << a.dilation
         << " p=" << (a.padding == Padding::kSame ? 1 : 0)
         << " a=" << ActToInt(a.activation);
      break;
    }
    case OpType::kDepthwiseConv2d: {
      const auto& a = std::get<DepthwiseConv2dAttrs>(n.attrs);
      os << "k=" << a.kernel_h << " s=" << a.stride << " d=" << a.dilation
         << " p=" << (a.padding == Padding::kSame ? 1 : 0)
         << " a=" << ActToInt(a.activation);
      break;
    }
    case OpType::kFullyConnected: {
      const auto& a = std::get<FullyConnectedAttrs>(n.attrs);
      os << "of=" << a.out_features << " a=" << ActToInt(a.activation);
      break;
    }
    case OpType::kAvgPool:
    case OpType::kMaxPool: {
      const auto& a = std::get<PoolAttrs>(n.attrs);
      os << "k=" << a.kernel << " s=" << a.stride;
      break;
    }
    case OpType::kResizeBilinear: {
      const auto& a = std::get<ResizeAttrs>(n.attrs);
      os << "h=" << a.out_h << " w=" << a.out_w;
      break;
    }
    case OpType::kConcat: {
      os << "axis=" << std::get<ConcatAttrs>(n.attrs).axis;
      break;
    }
    case OpType::kReshape: {
      const auto& a = std::get<ReshapeAttrs>(n.attrs);
      os << "rank=" << a.new_dims.size();
      for (auto d : a.new_dims) os << " dim=" << d;
      break;
    }
    case OpType::kSoftmax: {
      os << "axis=" << std::get<SoftmaxAttrs>(n.attrs).axis;
      break;
    }
    case OpType::kActivation: {
      os << "a=" << ActToInt(std::get<ActivationAttrs>(n.attrs).activation);
      break;
    }
    case OpType::kEmbeddingLookup: {
      const auto& a = std::get<EmbeddingAttrs>(n.attrs);
      os << "vocab=" << a.vocab_size << " dim=" << a.embed_dim;
      break;
    }
    case OpType::kMultiHeadAttention: {
      const auto& a = std::get<AttentionAttrs>(n.attrs);
      os << "heads=" << a.num_heads << " hd=" << a.head_dim;
      break;
    }
    case OpType::kLstm: {
      os << "hidden=" << std::get<LstmAttrs>(n.attrs).hidden_dim;
      break;
    }
    case OpType::kInput:
    case OpType::kAdd:
    case OpType::kMul:
    case OpType::kGlobalAvgPool:
    case OpType::kLayerNorm:
    case OpType::kConstant:
      break;  // no attrs
  }
}

// Key=value attribute scanner.
class AttrScanner {
 public:
  explicit AttrScanner(std::istream& is) : is_(is) {}

  // Reads "key=value"; throws if the key differs.
  std::int64_t Expect(const std::string& key) {
    std::string tok;
    Expects(static_cast<bool>(is_ >> tok), "missing attr " + key);
    const auto eq = tok.find('=');
    Expects(eq != std::string::npos && tok.substr(0, eq) == key,
            "expected attr " + key + ", got " + tok);
    return std::stoll(tok.substr(eq + 1));
  }

 private:
  std::istream& is_;
};

OpAttrs ReadAttrs(OpType op, std::istream& is) {
  AttrScanner scan(is);
  switch (op) {
    case OpType::kConv2d: {
      Conv2dAttrs a;
      a.out_channels = scan.Expect("oc");
      a.kernel_h = a.kernel_w = static_cast<int>(scan.Expect("k"));
      a.stride = static_cast<int>(scan.Expect("s"));
      a.dilation = static_cast<int>(scan.Expect("d"));
      a.padding = scan.Expect("p") == 1 ? Padding::kSame : Padding::kValid;
      a.activation = ActFromInt(static_cast<int>(scan.Expect("a")));
      return a;
    }
    case OpType::kDepthwiseConv2d: {
      DepthwiseConv2dAttrs a;
      a.kernel_h = a.kernel_w = static_cast<int>(scan.Expect("k"));
      a.stride = static_cast<int>(scan.Expect("s"));
      a.dilation = static_cast<int>(scan.Expect("d"));
      a.padding = scan.Expect("p") == 1 ? Padding::kSame : Padding::kValid;
      a.activation = ActFromInt(static_cast<int>(scan.Expect("a")));
      return a;
    }
    case OpType::kFullyConnected: {
      FullyConnectedAttrs a;
      a.out_features = scan.Expect("of");
      a.activation = ActFromInt(static_cast<int>(scan.Expect("a")));
      return a;
    }
    case OpType::kAvgPool:
    case OpType::kMaxPool: {
      PoolAttrs a;
      a.kernel = static_cast<int>(scan.Expect("k"));
      a.stride = static_cast<int>(scan.Expect("s"));
      return a;
    }
    case OpType::kResizeBilinear: {
      ResizeAttrs a;
      a.out_h = scan.Expect("h");
      a.out_w = scan.Expect("w");
      return a;
    }
    case OpType::kConcat:
      return ConcatAttrs{static_cast<int>(scan.Expect("axis"))};
    case OpType::kReshape: {
      ReshapeAttrs a;
      const std::int64_t rank = scan.Expect("rank");
      for (std::int64_t i = 0; i < rank; ++i)
        a.new_dims.push_back(scan.Expect("dim"));
      return a;
    }
    case OpType::kSoftmax:
      return SoftmaxAttrs{static_cast<int>(scan.Expect("axis"))};
    case OpType::kActivation:
      return ActivationAttrs{
          ActFromInt(static_cast<int>(scan.Expect("a")))};
    case OpType::kEmbeddingLookup: {
      EmbeddingAttrs a;
      a.vocab_size = scan.Expect("vocab");
      a.embed_dim = scan.Expect("dim");
      return a;
    }
    case OpType::kMultiHeadAttention: {
      AttentionAttrs a;
      a.num_heads = static_cast<int>(scan.Expect("heads"));
      a.head_dim = scan.Expect("hd");
      return a;
    }
    case OpType::kLstm:
      return LstmAttrs{scan.Expect("hidden")};
    case OpType::kInput:
    case OpType::kAdd:
    case OpType::kMul:
    case OpType::kGlobalAvgPool:
    case OpType::kLayerNorm:
    case OpType::kConstant:
      return EmptyAttrs{};
  }
  return EmptyAttrs{};
}

}  // namespace

std::string SerializeGraph(const Graph& g) {
  std::ostringstream os;
  os << "mlpm_graph v1\n";
  os << "name " << g.name() << '\n';
  for (std::size_t i = 0; i < g.tensors().size(); ++i) {
    const TensorInfo& t = g.tensors()[i];
    os << "tensor " << i << ' '
       << (t.kind == TensorKind::kWeight ? 'w' : 'a') << ' '
       << t.shape.rank();
    for (auto d : t.shape.dims()) os << ' ' << d;
    os << ' ' << t.name << '\n';
  }
  for (const Node& n : g.nodes()) {
    os << "node " << n.name << ' ' << OpToken(n.op) << " [";
    WriteAttrs(os, n);
    os << "] in " << n.inputs.size();
    for (auto id : n.inputs) os << ' ' << id;
    os << " w " << n.weights.size();
    for (auto id : n.weights) os << ' ' << id;
    os << " out " << n.output << '\n';
  }
  for (auto id : g.input_ids()) os << "graph_input " << id << '\n';
  for (auto id : g.output_ids()) os << "graph_output " << id << '\n';
  return os.str();
}

Graph ParseGraphUnchecked(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  Expects(static_cast<bool>(std::getline(is, line)) &&
              line == "mlpm_graph v1",
          "unknown graph format");

  Graph g;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "name") {
      ls >> g.name_;
    } else if (tag == "tensor") {
      std::size_t id = 0;
      char kind = 'a';
      std::size_t rank = 0;
      ls >> id >> kind >> rank;
      Expects(!ls.fail(), "malformed tensor line: " + line);
      Expects(id == g.tensors_.size(), "tensor ids must be dense");
      std::vector<std::int64_t> dims(rank);
      for (auto& d : dims) ls >> d;
      TensorInfo info;
      ls >> info.name;
      Expects(!ls.fail(), "malformed tensor line: " + line);
      info.shape = TensorShape(std::move(dims));
      info.kind = kind == 'w' ? TensorKind::kWeight : TensorKind::kActivation;
      g.tensors_.push_back(std::move(info));
    } else if (tag == "node") {
      Node n;
      std::string op_token;
      ls >> n.name >> op_token;
      n.op = OpFromToken(op_token);
      // Attrs live between the brackets; splice them out.
      std::string rest;
      std::getline(ls, rest);
      const auto open = rest.find('[');
      const auto close = rest.find(']');
      Expects(open != std::string::npos && close != std::string::npos &&
                  open < close,
              "malformed node line: " + line);
      std::istringstream attrs(rest.substr(open + 1, close - open - 1));
      n.attrs = ReadAttrs(n.op, attrs);
      std::istringstream tail(rest.substr(close + 1));
      std::string kw;
      std::size_t count = 0;
      tail >> kw >> count;
      Expects(kw == "in", "malformed node inputs");
      n.inputs.resize(count);
      for (auto& id : n.inputs) tail >> id;
      tail >> kw >> count;
      Expects(kw == "w", "malformed node weights");
      n.weights.resize(count);
      for (auto& id : n.weights) tail >> id;
      tail >> kw >> n.output;
      Expects(kw == "out" && !tail.fail(), "malformed node output");
      if (n.output >= 0 &&
          static_cast<std::size_t>(n.output) < g.tensors_.size())
        g.tensors_[static_cast<std::size_t>(n.output)].producer =
            static_cast<std::int32_t>(g.nodes_.size());
      g.nodes_.push_back(std::move(n));
    } else if (tag == "graph_input") {
      TensorId id = kInvalidTensor;
      ls >> id;
      g.inputs_.push_back(id);
    } else if (tag == "graph_output") {
      TensorId id = kInvalidTensor;
      ls >> id;
      g.outputs_.push_back(id);
    } else {
      Expects(false, "unknown line tag: " + tag);
    }
  }
  return g;
}

Graph ParseGraph(const std::string& text) {
  Graph g = ParseGraphUnchecked(text);
  const ValidationReport report = Validate(g);
  Expects(report.valid, "parsed graph failed validation: " +
                            (report.problems.empty() ? std::string{}
                                                     : report.problems[0]));
  return g;
}

}  // namespace mlpm::graph
