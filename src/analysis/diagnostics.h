// Diagnostics engine for the static verification layer (DESIGN.md §9).
//
// The paper's comparability argument rests on the rules being
// machine-checkable (§5.1, §6.2: frozen graphs, legal quantization, audited
// configurations).  Every static pass in src/analysis reports its findings
// through this engine as *stable, coded* diagnostics: a submission checker,
// a CI gate and a human must all be able to key on "QUANT005" and get the
// same meaning across releases.
//
// A Diagnostic carries:
//   * a stable code ("SHAPE001", ...) from the catalogue below;
//   * a severity (error / warning / note) — the catalogue assigns defaults;
//   * a source: the graph node, tensor or configuration key at fault;
//   * free-form message text.
// The engine renders both human text and machine-readable JSON; the JSON
// form is snapshot-tested (tests/analysis_test.cpp) so its schema is frozen.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mlpm::analysis {

enum class Severity : std::uint8_t { kNote = 0, kWarning = 1, kError = 2 };

[[nodiscard]] constexpr std::string_view ToString(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

// What a diagnostic points at.
enum class SourceKind : std::uint8_t { kGraph, kNode, kTensor, kConfigKey };

[[nodiscard]] constexpr std::string_view ToString(SourceKind k) {
  switch (k) {
    case SourceKind::kGraph: return "graph";
    case SourceKind::kNode: return "node";
    case SourceKind::kTensor: return "tensor";
    case SourceKind::kConfigKey: return "config";
  }
  return "?";
}

struct SourceRef {
  SourceKind kind = SourceKind::kGraph;
  std::string name;      // node / tensor / config-key name; graph name
  std::int32_t id = -1;  // node index or tensor id; -1 when inapplicable
};

[[nodiscard]] SourceRef GraphSource(std::string name);
[[nodiscard]] SourceRef NodeSource(std::string name, std::int32_t index);
[[nodiscard]] SourceRef TensorSource(std::string name, std::int32_t id);
[[nodiscard]] SourceRef ConfigSource(std::string key);

struct Diagnostic {
  std::string code;
  Severity severity = Severity::kError;
  SourceRef source;
  std::string message;
};

// Catalogue entry: the single source of truth for a code's default severity
// and one-line meaning (rendered by `mlpm_lint --codes` and DESIGN.md §9).
struct CodeInfo {
  std::string_view code;
  Severity default_severity = Severity::kError;
  std::string_view summary;
};

// All registered diagnostic codes, sorted by code.
[[nodiscard]] std::span<const CodeInfo> DiagnosticCatalogue();

// Catalogue lookup; nullptr for unknown codes.
[[nodiscard]] const CodeInfo* FindCode(std::string_view code);

class DiagnosticEngine {
 public:
  // Reports with the catalogue's default severity for `code`; the code must
  // be registered (Expects).
  void Report(std::string_view code, SourceRef source, std::string message);
  // Explicit-severity overload (strictness policies, tests).
  void Report(std::string_view code, Severity severity, SourceRef source,
              std::string message);

  // Always ordered by (code, source id), insertion-stable for ties —
  // emission order is deterministic regardless of pass-internal iteration
  // order.  ToText/ToJson render in this order.
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diagnostics_;
  }
  [[nodiscard]] bool empty() const { return diagnostics_.empty(); }
  [[nodiscard]] std::size_t error_count() const { return Count(Severity::kError); }
  [[nodiscard]] std::size_t warning_count() const {
    return Count(Severity::kWarning);
  }
  [[nodiscard]] std::size_t note_count() const { return Count(Severity::kNote); }
  [[nodiscard]] bool HasErrors() const { return error_count() > 0; }
  // Highest severity seen; kNote when no diagnostics were reported.
  [[nodiscard]] Severity MaxSeverity() const;
  [[nodiscard]] bool SeenCode(std::string_view code) const;

  // One line per diagnostic ("error SHAPE001 node 'conv0': ...") followed
  // by a count summary.  Empty string when clean.
  [[nodiscard]] std::string ToText() const;
  // Deterministic machine-readable form:
  //   {"diagnostics":[{"code":...,"severity":...,"source":{...},
  //    "message":...},...],"counts":{"error":N,"warning":N,"note":N}}
  [[nodiscard]] std::string ToJson() const;

 private:
  [[nodiscard]] std::size_t Count(Severity s) const;

  std::vector<Diagnostic> diagnostics_;
};

}  // namespace mlpm::analysis
