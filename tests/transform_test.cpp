// Unit tests for the verified graph-transform pipeline (DESIGN.md §14):
// MutableGraph editing, each shipped pass's rewrite and numerics gate, the
// PassManager's invariant verification + rollback, the structural diff
// behind the subgraph-locality gate, and the end-to-end harness wiring
// (TaskBundle::Prepare with the transform stage on).
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/diagnostics.h"
#include "analysis/passes.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "harness/task_bundle.h"
#include "infer/executor.h"
#include "infer/weights.h"
#include "models/deeplab.h"
#include "models/mobilebert.h"
#include "models/mobilenet_edgetpu.h"
#include "models/ssd.h"
#include "models/zoo.h"
#include "transform/graph_diff.h"
#include "transform/ir_edit.h"
#include "transform/pass.h"
#include "transform/pass_manager.h"
#include "transform/passes.h"

namespace mlpm {
namespace {

using transform::Invariant;
using transform::kAllInvariants;
using transform::MakeDefaultPipeline;
using transform::MutableGraph;
using transform::PassContext;
using transform::TransformOptions;
using transform::TransformResult;

std::vector<infer::Tensor> GraphInputs(const graph::Graph& g,
                                       std::uint64_t seed) {
  std::vector<infer::Tensor> inputs;
  Rng rng(seed);
  for (const graph::TensorId id : g.input_ids()) {
    infer::Tensor t(g.tensor(id).shape);
    for (auto& v : t.values())
      v = static_cast<float>(rng.NextUniform(-1.0, 1.0));
    inputs.push_back(std::move(t));
  }
  return inputs;
}

void ExpectBitIdentical(const std::vector<infer::Tensor>& want,
                        const std::vector<infer::Tensor>& got,
                        const std::string& what) {
  ASSERT_EQ(want.size(), got.size()) << what;
  for (std::size_t o = 0; o < want.size(); ++o) {
    ASSERT_EQ(want[o].size(), got[o].size()) << what;
    for (std::size_t i = 0; i < want[o].size(); ++i)
      ASSERT_EQ(want[o].at(i), got[o].at(i))
          << what << " output " << o << " element " << i;
  }
}

// FP32 outputs of `g` with `w` on a fixed probe input.
std::vector<infer::Tensor> Fp32Outputs(const graph::Graph& g,
                                       const infer::WeightStore& w,
                                       std::uint64_t seed) {
  const infer::Executor ex(g, w);
  return ex.Run(GraphInputs(g, seed));
}

// A small pre-fused model: the shape the frozen reference models ship in.
graph::Graph PreFusedModel() {
  graph::GraphBuilder b("prefused");
  const auto in = b.Input("in", graph::TensorShape({1, 8, 8, 4}));
  const auto c1 = b.Conv2d(in, 8, 3, 1, graph::Activation::kRelu);
  const auto c2 = b.DepthwiseConv2d(c1, 3, 1, graph::Activation::kRelu6);
  const auto fc = b.FullyConnected(c2, 10, graph::Activation::kRelu);
  b.MarkOutput(fc);
  return std::move(b).Build();
}

TransformResult RunPipeline(const graph::Graph& g,
                            const infer::WeightStore& w,
                            infer::NumericsMode mode) {
  return MakeDefaultPipeline(TransformOptions{.mode = mode, .metrics = nullptr})
      .Run(g, w);
}

// ---- MutableGraph ----

TEST(MutableGraph, FreezeOfUneditedGraphIsTheIdentity) {
  const graph::Graph g = PreFusedModel();
  const MutableGraph m(g);
  const transform::FrozenGraph f = m.Freeze();
  EXPECT_EQ(f.graph.StructuralFingerprint(), g.StructuralFingerprint());
  ASSERT_EQ(f.tensor_map.size(), g.tensors().size());
  for (std::size_t i = 0; i < f.tensor_map.size(); ++i)
    EXPECT_EQ(f.tensor_map[i], static_cast<graph::TensorId>(i));
}

TEST(MutableGraph, KillAndRedirectCompactAwayTheDeadNode) {
  graph::GraphBuilder b("copychain");
  const auto in = b.Input("in", graph::TensorShape({1, 4}));
  const auto id = b.Activate(in, graph::Activation::kNone, "copy");
  const auto fc = b.FullyConnected(id, 3, graph::Activation::kNone, "fc");
  b.MarkOutput(fc);
  const graph::Graph g = std::move(b).Build();

  MutableGraph m(g);
  // Node 0 is "copy": bypass it and kill it.
  ASSERT_EQ(m.nodes()[0].name, "copy");
  m.RedirectUses(m.nodes()[0].output, m.nodes()[0].inputs[0]);
  m.Kill(0);
  EXPECT_EQ(m.live_node_count(), g.nodes().size() - 1);

  const transform::FrozenGraph f = m.Freeze();
  EXPECT_EQ(f.graph.nodes().size(), g.nodes().size() - 1);
  // The copy's output tensor is orphaned and dropped.
  EXPECT_EQ(f.tensor_map[static_cast<std::size_t>(g.nodes()[0].output)],
            graph::kInvalidTensor);
  // The surviving fc now consumes the graph input directly.
  EXPECT_EQ(f.graph.nodes()[0].inputs[0], f.graph.input_ids()[0]);
}

// ---- pipeline round trip + individual passes ----

TEST(TransformPipeline, Fp32RoundTripRestoresPreFusedForm) {
  const graph::Graph g = PreFusedModel();
  const infer::WeightStore w = infer::InitializeWeights(g, 3);
  const TransformResult res = RunPipeline(g, w, infer::NumericsMode::kFp32);

  // Split un-fuses three activations; fusion puts all three back.
  EXPECT_GE(res.TotalRewrites(), 6u);
  EXPECT_FALSE(res.AnyRolledBack());
  EXPECT_TRUE(res.diagnostics.diagnostics().empty()) <<
      res.diagnostics.ToText();
  EXPECT_EQ(res.nodes_before, g.nodes().size());
  EXPECT_EQ(res.nodes_canonical, g.nodes().size() + 3);
  EXPECT_EQ(res.nodes_after, g.nodes().size());
  EXPECT_EQ(res.graph.StructuralFingerprint(), g.StructuralFingerprint());
  ExpectBitIdentical(Fp32Outputs(g, w, 11),
                     Fp32Outputs(res.graph, res.weights, 11), "round trip");
}

TEST(TransformPipeline, ConstantFoldEvaluatesAndDeadCodeDisappears) {
  graph::GraphBuilder b("fold");
  const auto in = b.Input("in", graph::TensorShape({1, 2, 2, 4}));
  const auto k = b.Constant(graph::TensorShape({1, 2, 2, 4}), "k");
  const auto kr = b.Activate(k, graph::Activation::kRelu, "krelu");
  const auto sum = b.Add(in, kr, "sum");
  b.MarkOutput(sum);
  const graph::Graph g = std::move(b).Build();
  const infer::WeightStore w = infer::InitializeWeights(g, 5);

  const TransformResult res = RunPipeline(g, w, infer::NumericsMode::kFp32);
  EXPECT_FALSE(res.AnyRolledBack());
  EXPECT_TRUE(res.diagnostics.diagnostics().empty()) <<
      res.diagnostics.ToText();
  // "krelu" folded to a constant; the original "k" became dead and was
  // eliminated: 3 nodes -> 2.
  EXPECT_EQ(res.nodes_after, 2u);
  EXPECT_TRUE(res.weights.Contains("krelu/folded"));
  ExpectBitIdentical(Fp32Outputs(g, w, 7),
                     Fp32Outputs(res.graph, res.weights, 7), "fold");
}

TEST(TransformPipeline, IdentityCancelRemovesProvableCopies) {
  graph::GraphBuilder b("identities");
  const auto in = b.Input("in", graph::TensorShape({1, 4, 4, 2}));
  const auto id1 = b.Activate(in, graph::Activation::kNone, "noact");
  const auto rs = b.Reshape(id1, {1, 4, 4, 2}, "sameshape");
  const auto cat = b.Concat({rs}, 3, "onecat");
  const auto fc = b.FullyConnected(cat, 5, graph::Activation::kNone, "fc");
  b.MarkOutput(fc);
  const graph::Graph g = std::move(b).Build();
  const infer::WeightStore w = infer::InitializeWeights(g, 9);

  const TransformResult res = RunPipeline(g, w, infer::NumericsMode::kFp32);
  EXPECT_FALSE(res.AnyRolledBack());
  EXPECT_TRUE(res.diagnostics.diagnostics().empty()) <<
      res.diagnostics.ToText();
  EXPECT_EQ(res.nodes_after, 1u);  // only fc survives
  ExpectBitIdentical(Fp32Outputs(g, w, 13),
                     Fp32Outputs(res.graph, res.weights, 13), "identities");
}

TEST(TransformPipeline, ElementwiseChainComposesClampFamily) {
  graph::GraphBuilder b("clamps");
  const auto in = b.Input("in", graph::TensorShape({1, 16}));
  const auto r1 = b.Activate(in, graph::Activation::kRelu, "r1");
  const auto r2 = b.Activate(r1, graph::Activation::kRelu6, "r2");
  b.MarkOutput(r2);
  const graph::Graph g = std::move(b).Build();
  const infer::WeightStore w = infer::InitializeWeights(g, 2);

  const TransformResult res = RunPipeline(g, w, infer::NumericsMode::kFp32);
  EXPECT_FALSE(res.AnyRolledBack());
  EXPECT_TRUE(res.diagnostics.diagnostics().empty()) <<
      res.diagnostics.ToText();
  EXPECT_EQ(res.nodes_after, 1u);
  // relu6 dominates the composition.
  ASSERT_EQ(res.graph.nodes().size(), 1u);
  const auto* attrs =
      std::get_if<graph::ActivationAttrs>(&res.graph.nodes()[0].attrs);
  ASSERT_NE(attrs, nullptr);
  EXPECT_EQ(attrs->activation, graph::Activation::kRelu6);
  ExpectBitIdentical(Fp32Outputs(g, w, 17),
                     Fp32Outputs(res.graph, res.weights, 17), "clamps");
}

TEST(TransformPipeline, Int8GateRefusesRewritesAndNotesXfm004) {
  const graph::Graph g = PreFusedModel();
  const infer::WeightStore w = infer::InitializeWeights(g, 3);
  const TransformResult res = RunPipeline(g, w, infer::NumericsMode::kInt8);

  // Nothing in this graph is legally rewritable under INT8: the graph is
  // byte-identical and every refusal is on the record as an XFM004 note.
  EXPECT_EQ(res.TotalRewrites(), 0u);
  EXPECT_EQ(res.graph.StructuralFingerprint(), g.StructuralFingerprint());
  EXPECT_FALSE(res.diagnostics.HasErrors());
  EXPECT_NE(res.diagnostics.ToText().find("XFM004"), std::string::npos);
}

TEST(TransformPipeline, Fp16ClampRoundTripStillFuses) {
  const graph::Graph g = PreFusedModel();  // relu/relu6 only: clamp family
  const infer::WeightStore w = infer::InitializeWeights(g, 3);
  const TransformResult res = RunPipeline(g, w, infer::NumericsMode::kFp16);
  EXPECT_GE(res.TotalRewrites(), 6u);
  EXPECT_FALSE(res.AnyRolledBack());
  EXPECT_EQ(res.graph.StructuralFingerprint(), g.StructuralFingerprint());
}

// ---- verification gate: a misbehaving pass is rolled back ----

// Deliberately broken pass: claims the full invariant set, then kills the
// output-producing node without redirecting anything.
class BreakOutputsPass final : public transform::TransformPass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "break-outputs";
  }
  [[nodiscard]] std::span<const Invariant> preserved() const override {
    return kAllInvariants;
  }
  void Run(MutableGraph& g, PassContext& ctx) const override {
    for (std::size_t i = g.nodes().size(); i-- > 0;) {
      if (!g.alive(i)) continue;
      ctx.Touch(g.nodes()[i].name);
      g.Kill(i);
      ++ctx.rewrites;
      return;
    }
  }
};

// Deliberately sneaky pass: edits a node's attrs without declaring it
// touched — exactly what the locality diff (XFM006) exists to catch.
class UndeclaredEditPass final : public transform::TransformPass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "undeclared-edit";
  }
  [[nodiscard]] std::span<const Invariant> preserved() const override {
    return kAllInvariants;
  }
  void Run(MutableGraph& g, PassContext& ctx) const override {
    for (graph::Node& n : g.nodes()) {
      if (auto* a = std::get_if<graph::ActivationAttrs>(&n.attrs)) {
        a->activation = graph::Activation::kRelu6;
        ++ctx.rewrites;  // deliberately no ctx.Touch(n.name)
        return;
      }
    }
  }
};

TEST(PassManagerGate, BrokenPassIsRolledBackWithXfm008) {
  const graph::Graph g = PreFusedModel();
  const infer::WeightStore w = infer::InitializeWeights(g, 3);
  transform::PassManager pm(TransformOptions{});
  pm.AddPass(std::make_unique<BreakOutputsPass>());
  const TransformResult res = pm.Run(g, w);

  EXPECT_TRUE(res.AnyRolledBack());
  EXPECT_EQ(res.graph.StructuralFingerprint(), g.StructuralFingerprint());
  const std::string text = res.diagnostics.ToText();
  EXPECT_NE(text.find("XFM008"), std::string::npos) << text;
  // The committed pass list excludes the rolled-back pass.
  EXPECT_EQ(res.PassList(), "");
}

TEST(PassManagerGate, UndeclaredEditTripsLocalityAndRollsBack) {
  graph::GraphBuilder b("sneaky");
  const auto in = b.Input("in", graph::TensorShape({1, 8}));
  const auto act = b.Activate(in, graph::Activation::kRelu, "a");
  b.MarkOutput(act);
  const graph::Graph g = std::move(b).Build();
  const infer::WeightStore w = infer::InitializeWeights(g, 1);

  transform::PassManager pm(TransformOptions{});
  pm.AddPass(std::make_unique<UndeclaredEditPass>());
  const TransformResult res = pm.Run(g, w);

  EXPECT_TRUE(res.AnyRolledBack());
  EXPECT_EQ(res.graph.StructuralFingerprint(), g.StructuralFingerprint());
  const std::string text = res.diagnostics.ToText();
  EXPECT_NE(text.find("XFM006"), std::string::npos) << text;
  EXPECT_NE(text.find("XFM008"), std::string::npos) << text;
}

// ---- structural diff ----

TEST(GraphDiff, FlagsUndeclaredAttrEditAndAcceptsDeclaredOne) {
  const auto build = [](graph::Activation act) {
    graph::GraphBuilder b("d");
    const auto in = b.Input("in", graph::TensorShape({1, 8}));
    const auto a = b.Activate(in, act, "a");
    b.MarkOutput(a);
    return std::move(b).Build();
  };
  const graph::Graph before = build(graph::Activation::kRelu);
  const graph::Graph after = build(graph::Activation::kRelu6);

  const std::vector<std::string> undeclared =
      transform::DiffOutsideTouched(before, after, {}, {});
  ASSERT_FALSE(undeclared.empty());
  EXPECT_NE(undeclared[0].find("a"), std::string::npos);

  EXPECT_TRUE(transform::DiffOutsideTouched(before, after, {"a"}, {}).empty());
}

TEST(GraphDiff, NodeSignatureIsTensorIdIndependent) {
  // Same structure built twice must produce identical signatures even
  // though freeze-style renumbering could permute ids.
  const graph::Graph a = PreFusedModel();
  const graph::Graph b = PreFusedModel();
  for (std::size_t i = 0; i < a.nodes().size(); ++i)
    EXPECT_EQ(transform::NodeSignature(a, a.nodes()[i]),
              transform::NodeSignature(b, b.nodes()[i]));
}

// ---- determinism ----

TEST(TransformPipeline, ByteForByteDeterministic) {
  const graph::Graph g = PreFusedModel();
  const infer::WeightStore w = infer::InitializeWeights(g, 3);
  const TransformResult a = RunPipeline(g, w, infer::NumericsMode::kFp32);
  const TransformResult b = RunPipeline(g, w, infer::NumericsMode::kFp32);
  EXPECT_EQ(a.graph.StructuralFingerprint(), b.graph.StructuralFingerprint());
  EXPECT_EQ(a.PassList(), b.PassList());
  EXPECT_EQ(a.diagnostics.ToText(), b.diagnostics.ToText());
  EXPECT_EQ(a.TotalRewrites(), b.TotalRewrites());
}

// ---- reference models ----

TEST(TransformPipeline, ReferenceModelsRoundTripCleanAtFp32) {
  struct Case {
    std::string name;
    graph::Graph graph;
  };
  std::vector<Case> cases;
  cases.push_back(
      {"mobilenet", models::BuildMobileNetEdgeTpu(models::ModelScale::kMini)});
  cases.push_back(
      {"ssd_v2",
       models::BuildSsdMobileNetV2(models::ModelScale::kMini).graph});
  cases.push_back(
      {"mobiledet", models::BuildMobileDetSsd(models::ModelScale::kMini).graph});
  cases.push_back(
      {"deeplab", models::BuildDeepLabV3Plus(models::ModelScale::kMini)});
  cases.push_back(
      {"mobilebert", models::BuildMobileBert(models::MiniMobileBertConfig())});

  for (const Case& c : cases) {
    const infer::WeightStore w = infer::InitializeWeights(c.graph, 7);
    const TransformResult res =
        RunPipeline(c.graph, w, infer::NumericsMode::kFp32);
    EXPECT_TRUE(res.diagnostics.diagnostics().empty())
        << c.name << ":\n" << res.diagnostics.ToText();
    EXPECT_FALSE(res.AnyRolledBack()) << c.name;
    EXPECT_GT(res.TotalRewrites(), 0u) << c.name;
    // Fusion strictly reduces the executed node count vs canonical form.
    EXPECT_LT(res.nodes_after, res.nodes_canonical) << c.name;
    // The frozen references ship pre-fused, so the full pipeline is a
    // provable round trip: same fingerprint, same node count.
    EXPECT_EQ(res.nodes_after, res.nodes_before) << c.name;
    EXPECT_EQ(res.graph.StructuralFingerprint(),
              c.graph.StructuralFingerprint())
        << c.name;
    ExpectBitIdentical(Fp32Outputs(c.graph, w, 23),
                       Fp32Outputs(res.graph, res.weights, 23), c.name);
  }
}

// ---- harness wiring ----

TEST(TaskBundleTransform, PrepareAppliesAndScoresIdentically) {
  const models::BenchmarkEntry entry =
      models::SuiteFor(models::SuiteVersion::kV1_0).front();
  const auto bundle =
      harness::TaskBundle::Create(entry, models::SuiteVersion::kV1_0);

  const auto base = bundle->Prepare(infer::NumericsMode::kFp32);
  const auto transformed = bundle->Prepare(
      infer::NumericsMode::kFp32, false, infer::kernels::KernelIsa::kAuto,
      /*transform=*/true);

  EXPECT_FALSE(base.transform.requested);
  EXPECT_TRUE(transformed.transform.requested);
  EXPECT_TRUE(transformed.transform.applied)
      << transformed.transform.detail;
  EXPECT_GT(transformed.transform.rewrites, 0u);
  EXPECT_LT(transformed.transform.nodes_after,
            transformed.transform.nodes_before);
  EXPECT_FALSE(transformed.transform.passes.empty());

  // Accuracy over the full validation set is unchanged by the stage.
  EXPECT_EQ(bundle->ScoreAccuracy(*base.executor),
            bundle->ScoreAccuracy(*transformed.executor));
}

TEST(TaskBundleTransform, Int8PrepareIsGatedButStillValid) {
  const models::BenchmarkEntry entry =
      models::SuiteFor(models::SuiteVersion::kV1_0).front();
  const auto bundle =
      harness::TaskBundle::Create(entry, models::SuiteVersion::kV1_0);

  const auto p = bundle->Prepare(infer::NumericsMode::kInt8, false,
                                 infer::kernels::KernelIsa::kAuto,
                                 /*transform=*/true);
  EXPECT_TRUE(p.transform.requested);
  // Under INT8 every structural rewrite on this model is refused, so the
  // stage applies an unchanged graph (and the probe is trivially exact).
  EXPECT_TRUE(p.transform.applied) << p.transform.detail;
  EXPECT_EQ(p.transform.nodes_before, p.transform.nodes_after);
  EXPECT_FALSE(p.calibration_indices.empty());
}

}  // namespace
}  // namespace mlpm
