// Tests for the frozen-checkpoint serialization: graph structure and
// weights must round-trip exactly (the audit loads submitted files and
// fingerprint-compares them, paper §5.1/§6.2).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/serialize.h"
#include "graph/validate.h"
#include "infer/executor.h"
#include "infer/weights.h"
#include "models/deeplab.h"
#include "models/mobilebert.h"
#include "models/mobilenet_edgetpu.h"
#include "models/rnnt.h"
#include "models/ssd.h"

namespace mlpm {
namespace {

std::vector<graph::Graph> AllMiniModels() {
  std::vector<graph::Graph> v;
  v.push_back(models::BuildMobileNetEdgeTpu(models::ModelScale::kMini));
  v.push_back(models::BuildSsdMobileNetV2(models::ModelScale::kMini).graph);
  v.push_back(models::BuildMobileDetSsd(models::ModelScale::kMini).graph);
  v.push_back(models::BuildDeepLabV3Plus(models::ModelScale::kMini));
  v.push_back(models::BuildMobileBert(models::ModelScale::kMini));
  v.push_back(models::BuildMobileRnnt(models::ModelScale::kMini));
  return v;
}

TEST(GraphSerialize, RoundTripPreservesFingerprintForAllModels) {
  for (const graph::Graph& g : AllMiniModels()) {
    const graph::Graph back = graph::ParseGraph(graph::SerializeGraph(g));
    EXPECT_EQ(back.StructuralFingerprint(), g.StructuralFingerprint())
        << g.name();
    EXPECT_EQ(back.name(), g.name());
    EXPECT_EQ(back.nodes().size(), g.nodes().size());
    EXPECT_EQ(back.ParameterCount(), g.ParameterCount());
    EXPECT_TRUE(graph::Validate(back).valid);
  }
}

TEST(GraphSerialize, SerializationIsDeterministic) {
  const graph::Graph g =
      models::BuildMobileNetEdgeTpu(models::ModelScale::kMini);
  EXPECT_EQ(graph::SerializeGraph(g), graph::SerializeGraph(g));
}

TEST(GraphSerialize, ParsedGraphExecutesIdentically) {
  const graph::Graph g =
      models::BuildMobileNetEdgeTpu(models::ModelScale::kMini);
  const graph::Graph back = graph::ParseGraph(graph::SerializeGraph(g));
  const infer::WeightStore w = infer::InitializeWeights(g, 7);

  infer::Tensor input(g.tensor(g.input_ids()[0]).shape);
  Rng rng(5);
  for (auto& v : input.values()) v = static_cast<float>(rng.NextDouble());
  const std::vector<infer::Tensor> in{input};

  const infer::Executor a(g, w);
  const infer::Executor b(back, w);
  const auto oa = a.Run(in);
  const auto ob = b.Run(in);
  ASSERT_EQ(oa[0].size(), ob[0].size());
  for (std::size_t i = 0; i < oa[0].size(); ++i)
    EXPECT_EQ(oa[0].data()[i], ob[0].data()[i]);
}

TEST(GraphSerialize, RejectsGarbage) {
  EXPECT_THROW((void)graph::ParseGraph("not a graph"), CheckError);
  EXPECT_THROW((void)graph::ParseGraph(""), CheckError);
  EXPECT_THROW((void)graph::ParseGraph("mlpm_graph v1\nbogus stuff"),
               CheckError);
}

TEST(GraphSerialize, RejectsTamperedStructure) {
  const graph::Graph g =
      models::BuildMobileNetEdgeTpu(models::ModelScale::kMini);
  std::string text = graph::SerializeGraph(g);
  // Drop the last node line: its output becomes an undefined graph output.
  const auto last_node = text.rfind("\nnode ");
  ASSERT_NE(last_node, std::string::npos);
  const auto line_end = text.find('\n', last_node + 1);
  text.erase(last_node, line_end - last_node);
  EXPECT_THROW((void)graph::ParseGraph(text), CheckError);
}

TEST(GraphSerialize, DetectsPrunedSubmission) {
  // End-to-end audit flow: serialize reference, serialize a pruned variant,
  // parse both, fingerprint-compare.
  const graph::Graph reference =
      models::BuildMobileNetEdgeTpu(models::ModelScale::kMini);
  models::ClassifierConfig pruned_cfg = models::MiniClassifierConfig();
  pruned_cfg.num_classes = 12;  // smaller head = pruned
  const graph::Graph pruned =
      models::BuildMobileNetEdgeTpu(pruned_cfg, models::ModelScale::kMini);
  const graph::Graph ref_back =
      graph::ParseGraph(graph::SerializeGraph(reference));
  const graph::Graph sub_back =
      graph::ParseGraph(graph::SerializeGraph(pruned));
  EXPECT_NE(ref_back.StructuralFingerprint(),
            sub_back.StructuralFingerprint());
}

// ---- weights ----

TEST(WeightSerialize, ExactRoundTrip) {
  const graph::Graph g =
      models::BuildMobileNetEdgeTpu(models::ModelScale::kMini);
  const infer::WeightStore w = infer::InitializeWeights(g, 7);
  const infer::WeightStore back =
      infer::ParseWeights(infer::SerializeWeights(w));
  EXPECT_EQ(back.size(), w.size());
  for (const auto& [name, tensor] : w.raw()) {
    const infer::Tensor& bt = back.Get(name);
    ASSERT_EQ(bt.size(), tensor.size()) << name;
    EXPECT_EQ(bt.shape(), tensor.shape());
    for (std::size_t i = 0; i < tensor.size(); ++i)
      EXPECT_EQ(bt.data()[i], tensor.data()[i]) << name << "[" << i << "]";
  }
}

TEST(WeightSerialize, HandlesSpecialValues) {
  infer::WeightStore w;
  w.Put("t", infer::Tensor(graph::TensorShape({4}),
                           {0.0f, -0.0f, 1e-38f, -3.14159265f}));
  const infer::WeightStore back =
      infer::ParseWeights(infer::SerializeWeights(w));
  const auto& t = back.Get("t");
  EXPECT_EQ(t.data()[0], 0.0f);
  EXPECT_EQ(t.data()[2], 1e-38f);
  EXPECT_EQ(t.data()[3], -3.14159265f);
}

TEST(WeightSerialize, DeterministicOrdering) {
  infer::WeightStore w;
  w.Put("zzz", infer::Tensor(graph::TensorShape({1}), {1.0f}));
  w.Put("aaa", infer::Tensor(graph::TensorShape({1}), {2.0f}));
  const std::string s = infer::SerializeWeights(w);
  EXPECT_LT(s.find("aaa"), s.find("zzz"));
}

TEST(WeightSerialize, RejectsMalformed) {
  EXPECT_THROW((void)infer::ParseWeights("junk"), CheckError);
  EXPECT_THROW(
      (void)infer::ParseWeights("mlpm_weights v1\ntensor 1 2 t\n0x1p+0"),
      CheckError);  // too few values
}

}  // namespace
}  // namespace mlpm
