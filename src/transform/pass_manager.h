// Deterministic PassManager: runs an ordered pass pipeline over a graph,
// statically verifying every pass's declared invariants before committing
// its rewrites (DESIGN.md §14).
//
// Per pass the manager:
//   1. snapshots the current graph and runs the pass on a MutableGraph copy;
//   2. re-proves each declared invariant — XFM001 dangling edges / broken
//      storage order, XFM002 shape contract, XFM003 graph outputs, XFM005
//      memory-planner alias safety, XFM006 subgraph locality (structural
//      diff), XFM007 no new diagnostics from the full src/analysis suite;
//   3. commits the rewrite only if verification is clean — otherwise the
//      pass is rolled back wholesale and XFM008 records the event.
// Rewrites a pass refuses on numerics grounds surface as XFM004 notes.
//
// The manager itself is deterministic: same graph, same weights, same
// options -> same TransformResult, byte for byte.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "graph/graph.h"
#include "infer/weights.h"
#include "obs/metrics.h"
#include "transform/pass.h"

namespace mlpm::transform {

struct TransformOptions {
  infer::NumericsMode mode = infer::NumericsMode::kFp32;
  // When set, per-pass rewrite counts and verification timings are published
  // ("transform.pass.<name>.rewrites", ".apply_ms", ".verify_ms", ...).
  obs::MetricsRegistry* metrics = nullptr;
};

// Per-pass outcome, in pipeline order.
struct PassStats {
  std::string name;
  std::size_t rewrites = 0;     // rewrites applied (kept even if rolled back)
  std::size_t skipped = 0;      // rewrites refused by a numerics gate
  bool rolled_back = false;     // verification failed; graph unchanged
  double apply_ms = 0.0;        // time inside TransformPass::Run
  double verify_ms = 0.0;       // time inside the invariant gate
  std::size_t nodes_after = 0;  // committed graph size after this pass
};

struct TransformResult {
  graph::Graph graph;           // transformed graph (== input when inert)
  infer::WeightStore weights;   // run weights + committed folded constants
  std::vector<PassStats> passes;
  analysis::DiagnosticEngine diagnostics;  // XFM004/XFM008 + gate findings

  std::size_t nodes_before = 0;     // input graph
  std::size_t nodes_canonical = 0;  // after the canonicalization split
  std::size_t nodes_after = 0;      // final committed graph

  [[nodiscard]] std::size_t TotalRewrites() const;
  [[nodiscard]] bool AnyRolledBack() const;
  // Comma-joined committed pass names ("split-activations,constant-fold,...")
  // — the journal/report/CSV form of the resolved pipeline.
  [[nodiscard]] std::string PassList() const;
  // Fixed-width per-pass table for mlpm_lint --transform.
  [[nodiscard]] std::string Summary() const;
};

class PassManager {
 public:
  explicit PassManager(TransformOptions options = {})
      : options_(options) {}

  PassManager(const PassManager&) = delete;
  PassManager& operator=(const PassManager&) = delete;
  PassManager(PassManager&&) = default;
  PassManager& operator=(PassManager&&) = default;

  void AddPass(std::unique_ptr<TransformPass> pass);
  [[nodiscard]] const TransformOptions& options() const { return options_; }
  [[nodiscard]] std::size_t pass_count() const { return passes_.size(); }

  // Runs the pipeline.  Never throws on a bad rewrite — a pass that fails
  // verification is rolled back and reported; the returned graph is always
  // executable if the input was.
  [[nodiscard]] TransformResult Run(const graph::Graph& g,
                                    const infer::WeightStore& weights) const;

 private:
  TransformOptions options_;
  std::vector<std::unique_ptr<TransformPass>> passes_;
};

// The shipped pipeline in its canonical order (passes.h documents why).
[[nodiscard]] PassManager MakeDefaultPipeline(TransformOptions options = {});

}  // namespace mlpm::transform
