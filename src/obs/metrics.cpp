#include "obs/metrics.h"

#include <algorithm>

#include "common/table.h"

namespace mlpm::obs {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

void MetricsRegistry::Increment(std::string_view name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end())
    it->second += delta;
  else
    counters_.emplace(std::string(name), delta);
}

void MetricsRegistry::SetGauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end())
    it->second = value;
  else
    gauges_.emplace(std::string(name), value);
}

void MetricsRegistry::MaxGauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end())
    it->second = std::max(it->second, value);
  else
    gauges_.emplace(std::string(name), value);
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0;
}

double MetricsRegistry::gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second : 0.0;
}

MetricsRegistry::Snapshot MetricsRegistry::Snap() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  s.counters.assign(counters_.begin(), counters_.end());
  s.gauges.assign(gauges_.begin(), gauges_.end());
  return s;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
}

std::string RenderMetricsTable(const MetricsRegistry::Snapshot& snapshot) {
  if (snapshot.counters.empty() && snapshot.gauges.empty()) return {};
  TextTable t("process metrics");
  t.SetHeader({"Metric", "Kind", "Value"});
  for (const auto& [name, value] : snapshot.counters)
    t.AddRow({name, "counter", std::to_string(value)});
  for (const auto& [name, value] : snapshot.gauges)
    t.AddRow({name, "gauge", FormatDouble(value, 3)});
  return t.Render();
}

}  // namespace mlpm::obs
