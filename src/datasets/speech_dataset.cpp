#include "datasets/speech_dataset.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "infer/executor.h"
#include "metrics/wer.h"

namespace mlpm::datasets {
namespace {
constexpr std::uint64_t kValidationSpace = 0;
constexpr std::uint64_t kCalibrationSpace = 1'000'000;
}  // namespace

SpeechDataset::SpeechDataset(const graph::Graph& model,
                             const infer::WeightStore& weights,
                             models::RnntConfig model_cfg,
                             SpeechDatasetConfig config)
    : model_cfg_(model_cfg), cfg_(config) {
  Expects(cfg_.num_samples > 0, "dataset must be non-empty");
  const infer::Executor teacher(model, weights, infer::NumericsMode::kFp32);
  Rng rng = Rng(cfg_.seed).Split(0x3E);

  refs_.reserve(cfg_.num_samples);
  for (std::size_t i = 0; i < cfg_.num_samples; ++i) {
    const std::vector<infer::Tensor> in = {MakeFeatures(kValidationSpace, i)};
    const std::vector<infer::Tensor> out = teacher.Run(in);
    std::vector<int> tokens = models::GreedyCtcDecode(out[0]);

    // Corrupt the transcript to make FP32 imperfect.
    std::vector<int> ref;
    for (int tok : tokens) {
      const double u = rng.NextDouble();
      if (u < cfg_.token_drop_rate) continue;
      if (u < cfg_.token_drop_rate + cfg_.token_substitution_rate) {
        auto other = static_cast<int>(rng.NextBelow(
            static_cast<std::uint64_t>(model_cfg_.vocab_size - 2)));
        if (other + 1 >= tok) ++other;
        ref.push_back(other + 1);  // never the blank
      } else {
        ref.push_back(tok);
      }
    }
    refs_.push_back(std::move(ref));
  }
}

infer::Tensor SpeechDataset::MakeFeatures(std::uint64_t name_space,
                                          std::size_t index) const {
  // Smooth per-feature trajectories: control points every 8 frames,
  // linearly interpolated, plus mild noise — spectrogram-like structure.
  Rng rng = Rng(cfg_.seed + name_space).Split(index);
  const std::int64_t frames = model_cfg_.frames;
  const std::int64_t dim = model_cfg_.feature_dim;
  const std::int64_t ctrl_count = std::max<std::int64_t>(2, frames / 8 + 1);

  std::vector<float> ctrl(
      static_cast<std::size_t>(ctrl_count * dim));
  for (auto& v : ctrl) v = static_cast<float>(rng.NextUniform(-1.0, 1.0));

  infer::Tensor t(graph::TensorShape({frames, dim}));
  for (std::int64_t f = 0; f < frames; ++f) {
    const double pos = static_cast<double>(f) /
                       static_cast<double>(frames - 1) *
                       static_cast<double>(ctrl_count - 1);
    const auto lo = static_cast<std::int64_t>(pos);
    const auto hi = std::min(lo + 1, ctrl_count - 1);
    const float w = static_cast<float>(pos - static_cast<double>(lo));
    for (std::int64_t k = 0; k < dim; ++k) {
      const float a = ctrl[static_cast<std::size_t>(lo * dim + k)];
      const float b = ctrl[static_cast<std::size_t>(hi * dim + k)];
      t.data()[f * dim + k] =
          a * (1 - w) + b * w +
          0.05f * static_cast<float>(rng.NextGaussian());
    }
  }
  return t;
}

std::vector<infer::Tensor> SpeechDataset::InputsFor(std::size_t index) const {
  Expects(index < refs_.size(), "sample index out of range");
  std::vector<infer::Tensor> v;
  v.push_back(MakeFeatures(kValidationSpace, index));
  return v;
}

std::vector<infer::Tensor> SpeechDataset::CalibrationInputsFor(
    std::size_t index) const {
  std::vector<infer::Tensor> v;
  v.push_back(MakeFeatures(kCalibrationSpace, index));
  return v;
}

const std::vector<int>& SpeechDataset::ReferenceFor(std::size_t index) const {
  Expects(index < refs_.size(), "sample index out of range");
  return refs_[index];
}

double SpeechDataset::ScoreOutputs(
    std::span<const std::vector<infer::Tensor>> outputs) const {
  Expects(outputs.size() == refs_.size(),
          "output count does not cover the dataset");
  std::vector<std::vector<int>> preds;
  preds.reserve(outputs.size());
  for (const auto& out : outputs) {
    Expects(!out.empty(), "missing model output");
    preds.push_back(models::GreedyCtcDecode(out[0]));
  }
  return std::max(0.0, 1.0 - metrics::WordErrorRate(preds, refs_));
}

}  // namespace mlpm::datasets
