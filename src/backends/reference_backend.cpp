#include "backends/reference_backend.h"

namespace mlpm::backends {

ReferenceBackend::ReferenceBackend(std::string name,
                                   const infer::Executor& executor,
                                   const loadgen::DatasetQsl& qsl)
    : name_(std::move(name)), executor_(executor), qsl_(qsl) {}

void ReferenceBackend::IssueQuery(
    std::span<const loadgen::QuerySample> samples,
    loadgen::ResponseSink& sink) {
  for (const loadgen::QuerySample& s : samples) {
    std::vector<infer::Tensor> outputs =
        executor_.Run(qsl_.Loaded(s.index));
    sink.Complete(loadgen::QuerySampleResponse{s.id, std::move(outputs)});
  }
}

}  // namespace mlpm::backends
