
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datasets/calibration_set.cpp" "src/datasets/CMakeFiles/mlpm_datasets.dir/calibration_set.cpp.o" "gcc" "src/datasets/CMakeFiles/mlpm_datasets.dir/calibration_set.cpp.o.d"
  "/root/repo/src/datasets/classification_dataset.cpp" "src/datasets/CMakeFiles/mlpm_datasets.dir/classification_dataset.cpp.o" "gcc" "src/datasets/CMakeFiles/mlpm_datasets.dir/classification_dataset.cpp.o.d"
  "/root/repo/src/datasets/detection_dataset.cpp" "src/datasets/CMakeFiles/mlpm_datasets.dir/detection_dataset.cpp.o" "gcc" "src/datasets/CMakeFiles/mlpm_datasets.dir/detection_dataset.cpp.o.d"
  "/root/repo/src/datasets/preprocess.cpp" "src/datasets/CMakeFiles/mlpm_datasets.dir/preprocess.cpp.o" "gcc" "src/datasets/CMakeFiles/mlpm_datasets.dir/preprocess.cpp.o.d"
  "/root/repo/src/datasets/qa_dataset.cpp" "src/datasets/CMakeFiles/mlpm_datasets.dir/qa_dataset.cpp.o" "gcc" "src/datasets/CMakeFiles/mlpm_datasets.dir/qa_dataset.cpp.o.d"
  "/root/repo/src/datasets/segmentation_dataset.cpp" "src/datasets/CMakeFiles/mlpm_datasets.dir/segmentation_dataset.cpp.o" "gcc" "src/datasets/CMakeFiles/mlpm_datasets.dir/segmentation_dataset.cpp.o.d"
  "/root/repo/src/datasets/speech_dataset.cpp" "src/datasets/CMakeFiles/mlpm_datasets.dir/speech_dataset.cpp.o" "gcc" "src/datasets/CMakeFiles/mlpm_datasets.dir/speech_dataset.cpp.o.d"
  "/root/repo/src/datasets/superres_dataset.cpp" "src/datasets/CMakeFiles/mlpm_datasets.dir/superres_dataset.cpp.o" "gcc" "src/datasets/CMakeFiles/mlpm_datasets.dir/superres_dataset.cpp.o.d"
  "/root/repo/src/datasets/synthetic_image.cpp" "src/datasets/CMakeFiles/mlpm_datasets.dir/synthetic_image.cpp.o" "gcc" "src/datasets/CMakeFiles/mlpm_datasets.dir/synthetic_image.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/infer/CMakeFiles/mlpm_infer.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/mlpm_models.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mlpm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/mlpm_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlpm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mlpm_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
