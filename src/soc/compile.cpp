#include "soc/compile.h"

#include <algorithm>

namespace mlpm::soc {

LayerTiming LayerCost(const graph::NodeCost& cost, DataType numerics,
                      const AcceleratorDesc& engine,
                      double weight_traffic_scale) {
  LayerTiming t;
  const double peak = engine.PeakFor(numerics);
  Expects(peak > 0.0, engine.name + " does not support " +
                          std::string(ToString(numerics)));
  double eff = engine.efficiency.For(cost.op_class);
  if (cost.dilated) eff *= engine.efficiency.dilated_scale;
  double compute_s = 0.0;
  if (cost.macs > 0) {
    Expects(eff > 0.0, "op class disabled on engine " + engine.name);
    compute_s = static_cast<double>(cost.macs) / (peak * 1e9 * eff);
  }
  const double elem_sz = static_cast<double>(ByteSize(numerics));
  const double bytes =
      elem_sz * (static_cast<double>(cost.input_elems + cost.output_elems) +
                 static_cast<double>(cost.weight_elems) *
                     weight_traffic_scale);
  const double memory_s = bytes / (engine.mem_bw_gbps * 1e9);
  t.roofline_s = std::max(compute_s, memory_s);
  t.dispatch_s = engine.per_layer_overhead_us * 1e-6;
  t.seconds = t.roofline_s + t.dispatch_s;
  t.joules = t.seconds * engine.active_power_w;
  return t;
}

CompiledModel Compile(const graph::Graph& graph, DataType numerics,
                      const ChipsetDesc& chipset,
                      const ExecutionPolicy& policy,
                      const RuntimeOverheads& overheads, bool batched) {
  Expects(!policy.engines.empty(), "policy must list at least one engine");
  Expects(policy.cpu_fallback_fraction >= 0.0 &&
              policy.cpu_fallback_fraction <= 1.0,
          "fallback fraction must be in [0,1]");
  Expects(policy.toolchain_efficiency > 0.0 &&
              policy.toolchain_efficiency <= 1.0,
          "toolchain efficiency must be in (0,1]");

  // Resolve engine indices.
  std::vector<std::size_t> engine_idx;
  for (const std::string& name : policy.engines) {
    const auto& engines = chipset.engines;
    const auto it =
        std::find_if(engines.begin(), engines.end(),
                     [&](const AcceleratorDesc& a) { return a.name == name; });
    Expects(it != engines.end(),
            chipset.name + " has no engine named " + name);
    engine_idx.push_back(
        static_cast<std::size_t>(std::distance(engines.begin(), it)));
  }
  // CPU fallback target (first CPU-class engine), if needed.
  std::size_t cpu_idx = engine_idx.front();
  if (policy.cpu_fallback_fraction > 0.0) {
    const auto it = std::find_if(
        chipset.engines.begin(), chipset.engines.end(),
        [](const AcceleratorDesc& a) {
          return a.cls == EngineClass::kCpuBig ||
                 a.cls == EngineClass::kCpuLittle;
        });
    Expects(it != chipset.engines.end(),
            chipset.name + " needs a CPU engine for fallback");
    cpu_idx = static_cast<std::size_t>(
        std::distance(chipset.engines.begin(), it));
  }

  const graph::GraphCost gc = graph::AnalyzeGraph(graph);

  CompiledModel m;
  m.model_name = graph.name();
  m.chipset_name = chipset.name;
  m.numerics = numerics;
  m.overheads = overheads;
  m.interconnect_gbps = chipset.interconnect_gbps;
  m.node_count = graph.nodes().size();
  m.total_macs = static_cast<double>(gc.total_macs);

  // Assign each node to an engine.
  std::vector<std::size_t> assignment(graph.nodes().size());
  int block_counter = 0;
  std::size_t round_robin = 0;
  // Deterministic fallback selection: every k-th node falls back, where
  // k = 1/fraction (a buggy-op pattern repeats per graph, it is not random).
  const std::size_t fallback_stride =
      policy.cpu_fallback_fraction > 0.0
          ? static_cast<std::size_t>(1.0 / policy.cpu_fallback_fraction)
          : 0;
  for (std::size_t i = 0; i < graph.nodes().size(); ++i) {
    std::size_t e = engine_idx.front();
    if (policy.alternate_every > 0 && engine_idx.size() > 1) {
      e = engine_idx[round_robin % engine_idx.size()];
      if (++block_counter == policy.alternate_every) {
        block_counter = 0;
        ++round_robin;
      }
    }
    if (fallback_stride > 0 && (i % fallback_stride) == fallback_stride - 1)
      e = cpu_idx;
    if (policy.tail_nodes_on_secondary > 0 && engine_idx.size() > 1 &&
        i + static_cast<std::size_t>(policy.tail_nodes_on_secondary) >=
            graph.nodes().size())
      e = engine_idx[1];
    assignment[i] = e;
  }

  // Merge consecutive same-engine nodes into segments (subject to forced
  // HAL partitioning).
  int nodes_in_segment = 0;
  for (std::size_t i = 0; i < graph.nodes().size(); ++i) {
    const graph::Node& node = graph.nodes()[i];
    if (node.op == graph::OpType::kInput) continue;
    const std::size_t e = assignment[i];
    const bool force_split =
        policy.force_partition_every > 0 &&
        nodes_in_segment >= policy.force_partition_every;
    if (m.segments.empty() || m.segments.back().engine_index != e ||
        force_split) {
      m.segments.push_back(CompiledSegment{e, 0, 0.0, 0.0, 0.0, 0.0});
      nodes_in_segment = 0;
    }
    ++nodes_in_segment;
    ++m.segments.back().node_count;
    LayerTiming lt = LayerCost(gc.per_node[i], numerics, chipset.engines[e],
                               batched ? 0.1 : 1.0);
    // Elementwise fusion removes the separate kernel launch (the roofline
    // memory traffic remains — fused or not, the bytes move).
    if (overheads.fuse_elementwise &&
        (gc.per_node[i].op_class == graph::OpClass::kElementwise ||
         gc.per_node[i].op_class == graph::OpClass::kMemory))
      lt.dispatch_s = 0.0;
    m.segments.back().roofline_s +=
        lt.roofline_s / policy.toolchain_efficiency;
    m.segments.back().dispatch_s += lt.dispatch_s;
    // Energy follows the *actual* (toolchain-limited) execution time.
    m.segments.back().energy_j +=
        (lt.roofline_s / policy.toolchain_efficiency + lt.dispatch_s) *
        chipset.engines[e].active_power_w;
    // Track the running boundary: the last node's output size.
    m.segments.back().boundary_bytes =
        static_cast<double>(gc.per_node[i].output_elems) *
        static_cast<double>(ByteSize(numerics));
  }
  if (!m.segments.empty()) m.segments.back().boundary_bytes = 0.0;
  return m;
}

double CompiledModel::LatencySeconds(double throttle_factor,
                                     double dispatch_scale) const {
  Expects(throttle_factor > 0.0 && throttle_factor <= 1.0,
          "throttle factor must be in (0,1]");
  Expects(dispatch_scale >= 0.0, "dispatch scale must be non-negative");
  double t = overheads.per_inference_s;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    t += segments[i].roofline_s / throttle_factor +
         segments[i].dispatch_s * dispatch_scale;
    if (i + 1 < segments.size()) {
      t += overheads.per_partition_sync_s;
      // Boundary tensors cross the interconnect when the runtime copies
      // through a HAL (NNAPI) or when execution moves to another IP block.
      const bool engine_change =
          segments[i + 1].engine_index != segments[i].engine_index;
      if (overheads.copy_boundary_tensors || engine_change)
        t += segments[i].boundary_bytes / (interconnect_gbps * 1e9);
    }
  }
  return t;
}

double CompiledModel::EnergyJoules() const {
  double e = 0.0;
  for (const auto& s : segments) e += s.energy_j;
  return e;
}

double CompiledModel::AveragePowerWatts() const {
  const double t = LatencySeconds();
  return t > 0.0 ? EnergyJoules() / t : 0.0;
}

}  // namespace mlpm::soc
