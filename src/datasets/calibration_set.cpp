#include "datasets/calibration_set.h"

#include <algorithm>

#include "common/rng.h"

namespace mlpm::datasets {

std::vector<std::size_t> ApprovedCalibrationIndices(std::size_t pool_size,
                                                    std::size_t count,
                                                    std::uint64_t official_seed) {
  Expects(count <= pool_size, "calibration count exceeds pool");
  Rng rng(official_seed);
  std::vector<std::size_t> idx = rng.SampleWithoutReplacement(pool_size, count);
  std::sort(idx.begin(), idx.end());
  return idx;
}

std::vector<quant::CalibrationSample> GatherCalibrationSamples(
    const TaskDataset& dataset, std::span<const std::size_t> indices) {
  std::vector<quant::CalibrationSample> samples;
  samples.reserve(indices.size());
  for (std::size_t i : indices)
    samples.push_back(dataset.CalibrationInputsFor(i));
  return samples;
}

}  // namespace mlpm::datasets
