# Empty compiler generated dependencies file for bench_extension_ios.
# This may be replaced when dependencies are built.
