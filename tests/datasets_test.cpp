// Tests for the synthetic data sets: determinism, teacher-label
// construction, preprocessing, and calibration-set machinery.
#include <gtest/gtest.h>

#include "datasets/calibration_set.h"
#include "datasets/classification_dataset.h"
#include "datasets/detection_dataset.h"
#include "datasets/preprocess.h"
#include "datasets/qa_dataset.h"
#include "datasets/segmentation_dataset.h"
#include "datasets/synthetic_image.h"
#include "infer/executor.h"
#include "models/deeplab.h"
#include "models/mobilebert.h"
#include "models/mobilenet_edgetpu.h"
#include "models/ssd.h"

namespace mlpm::datasets {
namespace {

// ---- synthetic images ----

TEST(SyntheticImage, DeterministicInSeedAndIndex) {
  SyntheticImageConfig cfg;
  cfg.height = cfg.width = 16;
  const infer::Tensor a = GenerateImage(cfg, 1, 5);
  const infer::Tensor b = GenerateImage(cfg, 1, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.data()[i], b.data()[i]);
}

TEST(SyntheticImage, DifferentIndicesDiffer) {
  SyntheticImageConfig cfg;
  cfg.height = cfg.width = 16;
  const infer::Tensor a = GenerateImage(cfg, 1, 5);
  const infer::Tensor b = GenerateImage(cfg, 1, 6);
  bool differ = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a.data()[i] != b.data()[i]) differ = true;
  EXPECT_TRUE(differ);
}

TEST(SyntheticImage, PixelsInUnitRange) {
  SyntheticImageConfig cfg;
  cfg.height = cfg.width = 24;
  const infer::Tensor img = GenerateImage(cfg, 3, 0);
  for (float v : img.values()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(SyntheticImage, HasLowFrequencyStructure) {
  // Adjacent pixels should correlate far more than distant ones.
  SyntheticImageConfig cfg;
  cfg.height = cfg.width = 32;
  cfg.noise_level = 0.02f;
  const infer::Tensor img = GenerateImage(cfg, 3, 1);
  double adj_diff = 0.0, far_diff = 0.0;
  const auto px = [&](std::int64_t y, std::int64_t x) {
    return img.data()[(y * 32 + x) * 3];
  };
  for (int y = 0; y < 31; ++y) {
    adj_diff += std::abs(px(y, 5) - px(y + 1, 5));
    far_diff += std::abs(px(y, 2) - px(31 - y, 29));
  }
  EXPECT_LT(adj_diff, far_diff);
}

// ---- preprocessing ----

TEST(Preprocess, ResizePreservesConstantField) {
  infer::Tensor img(graph::TensorShape({1, 8, 8, 3}));
  for (auto& v : img.values()) v = 0.25f;
  const infer::Tensor out = ResizeBilinear(img, 5, 13);
  EXPECT_EQ(out.shape(), graph::TensorShape({1, 5, 13, 3}));
  for (float v : out.values()) EXPECT_NEAR(v, 0.25f, 1e-6f);
}

TEST(Preprocess, CenterCropTakesMiddle) {
  infer::Tensor img(graph::TensorShape({1, 4, 4, 1}));
  for (std::size_t i = 0; i < 16; ++i)
    img.data()[i] = static_cast<float>(i);
  const infer::Tensor out = CenterCrop(img, 2);
  EXPECT_FLOAT_EQ(out.data()[0], 5.0f);
  EXPECT_FLOAT_EQ(out.data()[1], 6.0f);
  EXPECT_FLOAT_EQ(out.data()[2], 9.0f);
  EXPECT_FLOAT_EQ(out.data()[3], 10.0f);
}

TEST(Preprocess, CenterCropRejectsUpscale) {
  infer::Tensor img(graph::TensorShape({1, 4, 4, 1}));
  EXPECT_THROW((void)CenterCrop(img, 5), CheckError);
}

TEST(Preprocess, NormalizeMapsUnitToSymmetric) {
  infer::Tensor img(graph::TensorShape({1, 1, 1, 3}));
  img.data()[0] = 0.0f;
  img.data()[1] = 0.5f;
  img.data()[2] = 1.0f;
  Normalize(img, 0.5f, 0.5f);
  EXPECT_FLOAT_EQ(img.data()[0], -1.0f);
  EXPECT_FLOAT_EQ(img.data()[1], 0.0f);
  EXPECT_FLOAT_EQ(img.data()[2], 1.0f);
}

TEST(Preprocess, ClassificationPipelineShapeAndRange) {
  infer::Tensor raw(graph::TensorShape({1, 40, 40, 3}));
  for (auto& v : raw.values()) v = 0.7f;
  const infer::Tensor out = ClassificationPreprocess(raw, 32);
  EXPECT_EQ(out.shape(), graph::TensorShape({1, 32, 32, 3}));
  for (float v : out.values()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
}

// ---- task data sets (shared fixtures keep teacher runs cheap) ----

class ClassificationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    g_ = new graph::Graph(
        models::BuildMobileNetEdgeTpu(models::ModelScale::kMini));
    w_ = new infer::WeightStore(infer::InitializeWeights(*g_, 7));
    ClassificationDatasetConfig cfg;
    cfg.num_samples = 32;
    ds_ = new ClassificationDataset(*g_, *w_, cfg);
  }
  static void TearDownTestSuite() {
    delete ds_;
    delete w_;
    delete g_;
    ds_ = nullptr;
    w_ = nullptr;
    g_ = nullptr;
  }
  static graph::Graph* g_;
  static infer::WeightStore* w_;
  static ClassificationDataset* ds_;
};
graph::Graph* ClassificationFixture::g_ = nullptr;
infer::WeightStore* ClassificationFixture::w_ = nullptr;
ClassificationDataset* ClassificationFixture::ds_ = nullptr;

TEST_F(ClassificationFixture, SizeAndLabelsInRange) {
  EXPECT_EQ(ds_->size(), 32u);
  for (std::size_t i = 0; i < ds_->size(); ++i) {
    EXPECT_GE(ds_->LabelFor(i), 0);
    EXPECT_LT(ds_->LabelFor(i), 16);
  }
}

TEST_F(ClassificationFixture, InputsDeterministic) {
  const auto a = ds_->InputsFor(3);
  const auto b = ds_->InputsFor(3);
  for (std::size_t i = 0; i < a[0].size(); ++i)
    EXPECT_EQ(a[0].data()[i], b[0].data()[i]);
}

TEST_F(ClassificationFixture, Fp32ScoreNearTeacherAgreement) {
  const infer::Executor fp32(*g_, *w_);
  std::vector<std::vector<infer::Tensor>> outs;
  for (std::size_t i = 0; i < ds_->size(); ++i)
    outs.push_back(fp32.Run(ds_->InputsFor(i)));
  const double acc = ds_->ScoreOutputs(outs);
  // With teacher-derived labels, FP32 accuracy tracks the agreement rate.
  EXPECT_GT(acc, 0.55);
  EXPECT_LT(acc, 0.98);
}

TEST_F(ClassificationFixture, CalibrationInputsDifferFromValidation) {
  const auto val = ds_->InputsFor(0);
  const auto cal = ds_->CalibrationInputsFor(0);
  bool differ = false;
  for (std::size_t i = 0; i < val[0].size(); ++i)
    if (val[0].data()[i] != cal[0].data()[i]) differ = true;
  EXPECT_TRUE(differ);
}

TEST_F(ClassificationFixture, ScoreRejectsWrongCount) {
  std::vector<std::vector<infer::Tensor>> outs(3);
  EXPECT_THROW((void)ds_->ScoreOutputs(outs), CheckError);
}

TEST(ClassificationDataset, TooStrictMarginThrows) {
  const graph::Graph g =
      models::BuildMobileNetEdgeTpu(models::ModelScale::kMini);
  const infer::WeightStore w = infer::InitializeWeights(g, 7);
  ClassificationDatasetConfig cfg;
  cfg.num_samples = 8;
  cfg.min_teacher_margin = 1e9;
  EXPECT_THROW((ClassificationDataset{g, w, cfg}), CheckError);
}

TEST(DetectionDataset, GroundTruthBoxesValid) {
  const models::DetectionModel m =
      models::BuildSsdMobileNetV2(models::ModelScale::kMini);
  const infer::WeightStore w = infer::InitializeWeights(m.graph, 7);
  DetectionDatasetConfig cfg;
  cfg.num_samples = 16;
  const DetectionDataset ds(m, w, cfg);
  std::size_t total = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    for (const auto& gt : ds.GroundTruthFor(i)) {
      EXPECT_GE(gt.box.ymin, 0.0f);
      EXPECT_LE(gt.box.ymax, 1.0f);
      EXPECT_LT(gt.box.ymin, gt.box.ymax);
      EXPECT_LT(gt.box.xmin, gt.box.xmax);
      EXPECT_GE(gt.class_id, 1);  // background never a GT class
      EXPECT_LT(gt.class_id, 8);
      ++total;
    }
  }
  EXPECT_GT(total, 10u);  // teacher produces a meaningful number of boxes
}

TEST(DetectionDataset, Fp32ScoresWellAgainstOwnTeacher) {
  const models::DetectionModel m =
      models::BuildSsdMobileNetV2(models::ModelScale::kMini);
  const infer::WeightStore w = infer::InitializeWeights(m.graph, 7);
  DetectionDatasetConfig cfg;
  cfg.num_samples = 16;
  const DetectionDataset ds(m, w, cfg);
  const infer::Executor fp32(m.graph, w);
  std::vector<std::vector<infer::Tensor>> outs;
  for (std::size_t i = 0; i < ds.size(); ++i)
    outs.push_back(fp32.Run(ds.InputsFor(i)));
  EXPECT_GT(ds.ScoreOutputs(outs), 0.1);  // jittered teacher -> moderate mAP
}

TEST(SegmentationDataset, LabelsInRangeAndIgnoreUsed) {
  const graph::Graph g =
      models::BuildDeepLabV3Plus(models::ModelScale::kMini);
  const infer::WeightStore w = infer::InitializeWeights(g, 7);
  SegmentationDatasetConfig cfg;
  cfg.num_samples = 4;
  const SegmentationDataset ds(g, w, cfg);
  std::size_t ignored = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    for (int v : ds.LabelMapFor(i)) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 8);
      if (v == 7) ++ignored;
    }
  }
  EXPECT_GT(ignored, 0u);  // ignore class actually appears
}

TEST(SegmentationDataset, Fp32MIoUHighAgainstOwnLabels) {
  const graph::Graph g =
      models::BuildDeepLabV3Plus(models::ModelScale::kMini);
  const infer::WeightStore w = infer::InitializeWeights(g, 7);
  SegmentationDatasetConfig cfg;
  cfg.num_samples = 8;
  const SegmentationDataset ds(g, w, cfg);
  const infer::Executor fp32(g, w);
  std::vector<std::vector<infer::Tensor>> outs;
  for (std::size_t i = 0; i < ds.size(); ++i)
    outs.push_back(fp32.Run(ds.InputsFor(i)));
  EXPECT_GT(ds.ScoreOutputs(outs), 0.2);
}

TEST(QaDataset, TruthSpansValid) {
  const models::MobileBertConfig cfg = models::MiniMobileBertConfig();
  const graph::Graph g = models::BuildMobileBert(cfg);
  const infer::WeightStore w = infer::InitializeWeights(g, 7);
  QaDatasetConfig dc;
  dc.num_samples = 16;
  const QaDataset ds(g, w, cfg, dc);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const metrics::TokenSpan s = ds.TruthFor(i);
    EXPECT_GE(s.start, 0);
    EXPECT_LE(s.start, s.end);
    EXPECT_LT(s.end, static_cast<int>(cfg.seq_len));
  }
}

TEST(QaDataset, TokensWithinVocab) {
  const models::MobileBertConfig cfg = models::MiniMobileBertConfig();
  const graph::Graph g = models::BuildMobileBert(cfg);
  const infer::WeightStore w = infer::InitializeWeights(g, 7);
  QaDatasetConfig dc;
  dc.num_samples = 4;
  const QaDataset ds(g, w, cfg, dc);
  const auto in = ds.InputsFor(0);
  for (float v : in[0].values()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, static_cast<float>(cfg.vocab_size));
  }
}

TEST(QaDataset, Fp32F1NearPaperValue) {
  const models::MobileBertConfig cfg = models::MiniMobileBertConfig();
  const graph::Graph g = models::BuildMobileBert(cfg);
  const infer::WeightStore w = infer::InitializeWeights(g, 7);
  const QaDataset ds(g, w, cfg, QaDatasetConfig{});
  const infer::Executor fp32(g, w);
  std::vector<std::vector<infer::Tensor>> outs;
  for (std::size_t i = 0; i < ds.size(); ++i)
    outs.push_back(fp32.Run(ds.InputsFor(i)));
  const double f1 = ds.ScoreOutputs(outs);
  EXPECT_GT(f1, 0.85);  // paper: 93.98 F1
  EXPECT_LT(f1, 1.0);
}

// ---- calibration set ----

TEST(CalibrationSet, DeterministicAndSorted) {
  const auto a = ApprovedCalibrationIndices(1000, 100, 42);
  const auto b = ApprovedCalibrationIndices(1000, 100, 42);
  EXPECT_EQ(a, b);
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_GT(a[i], a[i - 1]);
}

TEST(CalibrationSet, SeedChangesSelection) {
  EXPECT_NE(ApprovedCalibrationIndices(1000, 100, 1),
            ApprovedCalibrationIndices(1000, 100, 2));
}

TEST(CalibrationSet, RejectsOversizedCount) {
  EXPECT_THROW((void)ApprovedCalibrationIndices(10, 11, 1), CheckError);
}

}  // namespace
}  // namespace mlpm::datasets
