file(REMOVE_RECURSE
  "CMakeFiles/mlpm_loadgen.dir/dataset_qsl.cpp.o"
  "CMakeFiles/mlpm_loadgen.dir/dataset_qsl.cpp.o.d"
  "CMakeFiles/mlpm_loadgen.dir/loadgen.cpp.o"
  "CMakeFiles/mlpm_loadgen.dir/loadgen.cpp.o.d"
  "CMakeFiles/mlpm_loadgen.dir/logging.cpp.o"
  "CMakeFiles/mlpm_loadgen.dir/logging.cpp.o.d"
  "libmlpm_loadgen.a"
  "libmlpm_loadgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlpm_loadgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
