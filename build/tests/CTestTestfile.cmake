# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/infer_test[1]_include.cmake")
include("/root/repo/build/tests/quant_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/loadgen_test[1]_include.cmake")
include("/root/repo/build/tests/soc_test[1]_include.cmake")
include("/root/repo/build/tests/datasets_test[1]_include.cmake")
include("/root/repo/build/tests/backends_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/calibration_anchor_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/tooling_test[1]_include.cmake")
include("/root/repo/build/tests/validate_trace_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
