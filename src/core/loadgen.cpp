#include "core/loadgen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/rng.h"
#include "common/statistics.h"

namespace mlpm::loadgen {
namespace {

// Collects completions and pairs them with issue timestamps.
class Collector final : public ResponseSink {
 public:
  Collector(const Clock& clock, TestLog& log, bool keep_outputs)
      : clock_(clock), log_(log), keep_outputs_(keep_outputs) {}

  void ExpectSample(const QuerySample& s) { ExpectSampleAt(s, clock_.Now()); }

  // Server scenario: latency counts from the scheduled (Poisson) arrival,
  // which includes any time the query spent queued behind earlier work.
  void ExpectSampleAt(const QuerySample& s, Seconds scheduled) {
    issue_time_[s.id] = scheduled;
    sample_index_[s.id] = s.index;
    if (issue_time_.size() == 1 || scheduled < first_issue_)
      first_issue_ = scheduled;
    log_.Record(LogEventKind::kQueryIssued, s.id, scheduled);
  }

  // Timestamp of the earliest issued query (the duration window start the
  // checker re-derives from the raw events).
  [[nodiscard]] Seconds first_issue() const { return first_issue_; }

  void Complete(QuerySampleResponse response) override {
    const Seconds now = clock_.Now();
    const auto it = issue_time_.find(response.id);
    Expects(it != issue_time_.end(),
            "SUT completed a query that was never issued");
    Expects(!completed_.contains(response.id),
            "SUT completed the same query twice");
    completed_.insert(response.id);
    log_.Record(LogEventKind::kQueryCompleted, response.id, now);
    latencies_s_.push_back((now - it->second).count());
    last_completion_ = std::max(last_completion_, now);
    if (keep_outputs_)
      outputs_.emplace_back(sample_index_[response.id],
                            std::move(response.outputs));
  }

  [[nodiscard]] std::size_t completed_count() const {
    return completed_.size();
  }
  [[nodiscard]] const std::vector<double>& latencies() const {
    return latencies_s_;
  }
  [[nodiscard]] Seconds last_completion() const { return last_completion_; }
  [[nodiscard]] std::vector<std::pair<std::size_t,
                                      std::vector<infer::Tensor>>>&&
  TakeOutputs() {
    return std::move(outputs_);
  }

 private:
  const Clock& clock_;
  TestLog& log_;
  bool keep_outputs_;
  std::unordered_map<std::uint64_t, Seconds> issue_time_;
  std::unordered_map<std::uint64_t, std::size_t> sample_index_;
  Seconds first_issue_{0.0};
  std::unordered_set<std::uint64_t> completed_;
  std::vector<double> latencies_s_;
  Seconds last_completion_{0.0};
  std::vector<std::pair<std::size_t, std::vector<infer::Tensor>>> outputs_;
};

void FillSummary(TestResult& r, const TestSettings& settings,
                 const Collector& collector, Seconds start, Seconds end) {
  r.latencies_s = collector.latencies();
  r.sample_count = collector.completed_count();
  r.duration_s = (end - start).count();
  if (!r.latencies_s.empty()) {
    r.percentile_latency_s =
        Percentile(r.latencies_s, settings.latency_percentile);
    r.mean_latency_s =
        std::accumulate(r.latencies_s.begin(), r.latencies_s.end(), 0.0) /
        static_cast<double>(r.latencies_s.size());
  }
  if (r.duration_s > 0.0)
    r.throughput_sps =
        static_cast<double>(r.sample_count) / r.duration_s;
}

}  // namespace

TestResult RunTest(SystemUnderTest& sut, QuerySampleLibrary& qsl,
                   const TestSettings& settings, Clock& clock) {
  Expects(qsl.TotalSampleCount() > 0, "QSL is empty");
  TestResult result;
  result.scenario = settings.scenario;
  result.mode = settings.mode;

  TestLog& log = result.log;
  log.SetField("loadgen_version", "mlpm-1.0");
  log.SetField("sut", std::string(sut.name()));
  log.SetField("qsl", std::string(qsl.name()));
  log.SetField("scenario", std::string(ToString(settings.scenario)));
  log.SetField("mode", std::string(ToString(settings.mode)));
  log.SetField("seed", std::to_string(settings.seed));
  log.SetField("min_query_count", std::to_string(settings.min_query_count));
  log.SetField("min_duration_s",
               std::to_string(settings.min_duration.count()));
  log.SetField("offline_sample_count",
               std::to_string(settings.offline_sample_count));
  log.SetField("latency_percentile",
               std::to_string(settings.latency_percentile));

  const bool accuracy = settings.mode == TestMode::kAccuracyOnly;
  Collector collector(clock, log, accuracy);
  std::uint64_t next_id = 1;

  if (accuracy) {
    // Accuracy mode: the entire data set, in order (paper §4.1).
    const std::size_t total = qsl.TotalSampleCount();
    std::vector<std::size_t> all(total);
    std::iota(all.begin(), all.end(), std::size_t{0});
    qsl.LoadSamplesToRam(all);
    const Seconds start = clock.Now();
    for (std::size_t i = 0; i < total; ++i) {
      const QuerySample s{next_id++, i};
      collector.ExpectSample(s);
      sut.IssueQuery({&s, 1}, collector);
    }
    sut.FlushQueries();
    qsl.UnloadSamplesFromRam(all);
    FillSummary(result, settings, collector, start,
                collector.last_completion());
    Ensures(collector.completed_count() == total,
            "SUT did not complete every accuracy sample");
    // Order outputs by dataset index.
    auto outs = collector.TakeOutputs();
    std::sort(outs.begin(), outs.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    result.accuracy_outputs.reserve(outs.size());
    for (auto& [idx, tensors] : outs)
      result.accuracy_outputs.push_back(std::move(tensors));
    result.min_duration_met = true;
    result.min_query_count_met = true;
    return result;
  }

  // Performance mode: a seeded random subset of the data set.
  const std::size_t perf_count =
      settings.performance_sample_count > 0
          ? std::min(settings.performance_sample_count,
                     qsl.TotalSampleCount())
          : std::min(qsl.PerformanceSampleCount(), qsl.TotalSampleCount());
  Expects(perf_count > 0, "performance sample count must be positive");
  Rng rng(settings.seed);
  std::vector<std::size_t> loaded(perf_count);
  std::iota(loaded.begin(), loaded.end(), std::size_t{0});
  qsl.LoadSamplesToRam(loaded);

  const Seconds start = clock.Now();
  if (settings.scenario == TestScenario::kSingleStream) {
    // Issue one query, wait for completion, repeat (paper §4.2) until both
    // the sample floor and the duration floor are met.
    std::size_t issued = 0;
    while (issued < settings.min_query_count ||
           (clock.Now() - start) < settings.min_duration) {
      const QuerySample s{next_id++,
                          static_cast<std::size_t>(rng.NextBelow(perf_count))};
      collector.ExpectSample(s);
      sut.IssueQuery({&s, 1}, collector);
      ++issued;
      Ensures(collector.completed_count() == issued,
              "single-stream SUT must complete each query before the next");
    }
  } else if (settings.scenario == TestScenario::kOffline) {
    // Offline: the whole burst in one query (paper §4.2).
    std::vector<QuerySample> burst;
    burst.reserve(settings.offline_sample_count);
    for (std::size_t i = 0; i < settings.offline_sample_count; ++i) {
      burst.push_back(QuerySample{
          next_id++, static_cast<std::size_t>(rng.NextBelow(perf_count))});
      collector.ExpectSample(burst.back());
    }
    sut.IssueQuery(burst, collector);
    Ensures(collector.completed_count() == burst.size(),
            "offline SUT must complete the full burst");
  } else if (settings.scenario == TestScenario::kMultiStream) {
    // Multi-stream: a query of N samples every fixed interval (camera
    // frames from N concurrent streams).  Per-query latency counts from
    // the scheduled tick; the run is valid if the percentile latency fits
    // inside the interval.
    Expects(settings.multistream_samples_per_query > 0,
            "multi-stream needs at least one sample per query");
    std::vector<double> query_latencies;
    query_latencies.reserve(settings.multistream_query_count);
    for (std::size_t q = 0; q < settings.multistream_query_count; ++q) {
      const Seconds scheduled =
          start + settings.multistream_interval * static_cast<double>(q);
      clock.WaitUntil(scheduled);
      std::vector<QuerySample> query;
      query.reserve(settings.multistream_samples_per_query);
      for (std::size_t i = 0; i < settings.multistream_samples_per_query;
           ++i) {
        query.push_back(QuerySample{
            next_id++,
            static_cast<std::size_t>(rng.NextBelow(perf_count))});
        collector.ExpectSampleAt(query.back(), scheduled);
      }
      sut.IssueQuery(query, collector);
      query_latencies.push_back((clock.Now() - scheduled).count());
    }
    sut.FlushQueries();
    qsl.UnloadSamplesFromRam(loaded);
    FillSummary(result, settings, collector, collector.first_issue(),
                collector.last_completion());
    // The multi-stream metric is per-query, not per-sample.
    result.latencies_s = query_latencies;
    result.percentile_latency_s =
        Percentile(query_latencies, settings.latency_percentile);
    result.min_query_count_met = true;
    result.min_duration_met = true;
    result.latency_bound_met =
        Seconds{result.percentile_latency_s} <=
        settings.multistream_interval;
    log.SetField("result_sample_count",
                 std::to_string(result.sample_count));
    log.SetField("result_percentile_latency_s",
                 std::to_string(result.percentile_latency_s));
    log.SetField("result_throughput_sps",
                 std::to_string(result.throughput_sps));
    return result;
  } else {
    // Server: seeded Poisson arrivals at the target rate; queries queue
    // behind in-flight work and latency counts from the scheduled arrival.
    Expects(settings.server_target_qps > 0.0,
            "server scenario needs a positive target QPS");
    Rng arrival_rng = rng.Split(0xA11);
    Seconds arrival = start;
    for (std::size_t i = 0; i < settings.server_query_count; ++i) {
      const double gap = -std::log(1.0 - arrival_rng.NextDouble()) /
                         settings.server_target_qps;
      arrival += Seconds{gap};
      const QuerySample s{next_id++,
                          static_cast<std::size_t>(rng.NextBelow(perf_count))};
      collector.ExpectSampleAt(s, arrival);
      // If the device is free before the arrival, idle until it.
      clock.WaitUntil(arrival);
      sut.IssueQuery({&s, 1}, collector);
    }
  }
  sut.FlushQueries();
  qsl.UnloadSamplesFromRam(loaded);

  const Seconds end = collector.last_completion();
  FillSummary(result, settings, collector, collector.first_issue(), end);
  result.min_query_count_met =
      settings.scenario != TestScenario::kSingleStream ||
      result.sample_count >= settings.min_query_count;
  result.min_duration_met =
      settings.scenario != TestScenario::kSingleStream ||
      Seconds{result.duration_s} >= settings.min_duration;
  result.latency_bound_met =
      settings.scenario != TestScenario::kServer ||
      Seconds{result.percentile_latency_s} <= settings.server_latency_bound;

  log.SetField("result_sample_count", std::to_string(result.sample_count));
  log.SetField("result_duration_s", std::to_string(result.duration_s));
  log.SetField("result_percentile_latency_s",
               std::to_string(result.percentile_latency_s));
  log.SetField("result_throughput_sps",
               std::to_string(result.throughput_sps));
  return result;
}

double FindMaxServerQps(
    const std::function<TestResult(double qps)>& run_at_qps, double lo,
    double hi, int iterations) {
  Expects(lo > 0.0 && hi > lo, "invalid QPS search bounds");
  if (!run_at_qps(lo).latency_bound_met) return 0.0;
  if (run_at_qps(hi).latency_bound_met) return hi;
  double good = lo, bad = hi;
  for (int i = 0; i < iterations; ++i) {
    const double mid = (good + bad) / 2.0;
    if (run_at_qps(mid).latency_bound_met)
      good = mid;
    else
      bad = mid;
  }
  return good;
}

}  // namespace mlpm::loadgen
